#include "thermal/foster.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/dense.h"

namespace dsmt::thermal {

double FosterNetwork::evaluate(double t) const {
  double z = 0.0;
  for (const auto& s : stages) z += s.r * (1.0 - std::exp(-t / s.tau));
  return z;
}

double FosterNetwork::r_total() const {
  double r = 0.0;
  for (const auto& s : stages) r += s.r;
  return r;
}

double FosterNetwork::max_relative_error(const ZthCurve& curve) const {
  double worst = 0.0;
  for (std::size_t i = 0; i < curve.time.size(); ++i) {
    if (curve.zth[i] <= 0.0) continue;
    worst = std::max(worst, std::abs(evaluate(curve.time[i]) - curve.zth[i]) /
                                curve.zth[i]);
  }
  return worst;
}

namespace {

/// Non-negative LS for the R_i at fixed taus (relative weighting, one
/// most-negative clip per round). Returns the weighted residual too.
struct RFit {
  std::vector<double> r;
  double residual = 0.0;
};

RFit fit_r_at_taus(const ZthCurve& curve, const std::vector<double>& taus) {
  const std::size_t n = curve.time.size();
  const int n_stages = static_cast<int>(taus.size());
  std::vector<bool> active(n_stages, true);
  RFit out;
  out.r.assign(n_stages, 0.0);
  const double z_floor = 1e-9 * curve.zth.back();

  for (int round = 0; round < n_stages + 1; ++round) {
    std::vector<int> act;
    for (int k = 0; k < n_stages; ++k)
      if (active[k]) act.push_back(k);
    if (act.empty()) throw std::runtime_error("fit_foster: no active stages");

    const std::size_t m = act.size();
    numeric::Matrix ata(m, m, 0.0);
    std::vector<double> aty(m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double w = 1.0 / std::max(curve.zth[i], z_floor);
      const double w2 = w * w;
      std::vector<double> row(m);
      for (std::size_t a = 0; a < m; ++a)
        row[a] = 1.0 - std::exp(-curve.time[i] / taus[act[a]]);
      for (std::size_t a = 0; a < m; ++a) {
        aty[a] += w2 * row[a] * curve.zth[i];
        for (std::size_t b = 0; b < m; ++b)
          ata(a, b) += w2 * row[a] * row[b];
      }
    }
    for (std::size_t a = 0; a < m; ++a) ata(a, a) *= 1.0 + 1e-10;
    const auto sol = numeric::solve_dense(ata, aty);

    int worst = -1;
    double worst_val = 0.0;
    std::fill(out.r.begin(), out.r.end(), 0.0);
    for (std::size_t a = 0; a < m; ++a) {
      if (sol[a] < worst_val) {
        worst_val = sol[a];
        worst = act[a];
      }
      out.r[act[a]] = sol[a];
    }
    if (worst < 0) break;
    active[worst] = false;
    out.r[worst] = 0.0;
  }
  // Weighted residual for tau refinement.
  out.residual = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double z = 0.0;
    for (int k = 0; k < n_stages; ++k)
      if (out.r[k] > 0.0)
        z += out.r[k] * (1.0 - std::exp(-curve.time[i] / taus[k]));
    const double w = 1.0 / std::max(curve.zth[i], z_floor);
    const double e = w * (z - curve.zth[i]);
    out.residual += e * e;
  }
  return out;
}

}  // namespace

FosterNetwork fit_foster(const ZthCurve& curve, int n_stages) {
  const std::size_t n = curve.time.size();
  if (n < 4 || curve.zth.size() != n)
    throw std::invalid_argument("fit_foster: need a sampled curve");
  if (n_stages < 1 || static_cast<std::size_t>(n_stages) > n / 2)
    throw std::invalid_argument("fit_foster: bad stage count");

  // Log-spaced initial time constants spanning the sampled decades.
  std::vector<double> taus(n_stages);
  const double t_lo = curve.time.front();
  const double t_hi = curve.time.back();
  for (int k = 0; k < n_stages; ++k) {
    const double f = n_stages == 1 ? 0.5
                                   : static_cast<double>(k) / (n_stages - 1);
    taus[k] = t_lo * std::pow(t_hi / t_lo, f);
  }

  // Alternate: NNLS for the R_i, then coordinate-descent refinement of each
  // tau (log-scale scan) — a fixed grid cannot represent poles that fall
  // between its points.
  RFit best = fit_r_at_taus(curve, taus);
  for (int sweep = 0; sweep < 6; ++sweep) {
    bool improved = false;
    for (int k = 0; k < n_stages; ++k) {
      const double tau0 = taus[k];
      for (double f : {0.6, 0.8, 1.25, 1.6}) {
        taus[k] = tau0 * f;
        const RFit trial = fit_r_at_taus(curve, taus);
        if (trial.residual < best.residual * (1.0 - 1e-9)) {
          best = trial;
          improved = true;
          break;  // accept and move on
        }
        taus[k] = tau0;
      }
    }
    if (!improved) break;
  }

  FosterNetwork net;
  for (int k = 0; k < n_stages; ++k)
    if (best.r[k] > 0.0) net.stages.push_back({best.r[k], taus[k]});
  if (net.stages.empty())
    throw std::runtime_error("fit_foster: fit collapsed to zero stages");
  return net;
}

}  // namespace dsmt::thermal
