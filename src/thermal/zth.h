// Transient thermal impedance Z_th(t) of an interconnect into the
// substrate, and the pulsed current ratings it implies.
//
// The paper treats two extremes: steady-state self-heating (Eq. 9, uses
// the DC thermal resistance R'_th) and sub-200-ns adiabatic ESD heating.
// Real stress lives in between: a pulse of width t_p sees the *transient*
// impedance Z_th(t_p) <= R'_th, because heat is still soaking into the
// dielectric's heat capacity. This module computes Z_th(t) by solving the
// vertical 1-D diffusion through the layered dielectric stack (wire as a
// lumped heat capacity on top, substrate as the cold plate) and derives
// the duty-independent single-pulse current rating
//   j_max(t_p) = sqrt(dT_max / (rho t_m W_m Z'_th(t_p)))
// which sweeps continuously from the ESD regime (Z ~ t / C') to the DC
// design rule (Z -> R'_th).
#pragma once

#include <vector>

#include "materials/metal.h"
#include "tech/layer_stack.h"

namespace dsmt::thermal {

/// Vertical transient model of one line over its stack.
struct ZthSpec {
  materials::Metal metal;
  double w_m = 0.0;             ///< line width [m]
  double t_m = 0.0;             ///< line thickness [m]
  tech::DielectricStack stack;  ///< below the line (impedance.h semantics)
  double w_eff = 0.0;           ///< spreading width for the vertical path
  /// Volumetric heat capacity of the dielectric [J/(m^3 K)] (single value;
  /// the conductivities vary per slab, capacities differ little).
  double c_dielectric = 1.6e6;
  int nodes_per_slab = 24;
};

/// Sampled step response: per-unit-length transient impedance [K*m/W] at
/// the sampled times, for unit power per length injected in the wire at
/// t = 0. Monotonically rises to the DC R'_th.
struct ZthCurve {
  std::vector<double> time;  ///< [s]
  std::vector<double> zth;   ///< [K*m/W]
  double rth_dc = 0.0;       ///< the steady-state limit
  double tau_wire = 0.0;     ///< wire heat capacity x DC resistance [s]
};

/// Computes Z'_th(t) from `t_min` to `t_max` (log-spaced samples) with an
/// implicit vertical finite-difference solve.
ZthCurve zth_step_response(const ZthSpec& spec, double t_min, double t_max,
                           int samples = 40);

/// Interpolates a curve at pulse width t_p (clamped to the sampled range).
double zth_at(const ZthCurve& curve, double t_pulse);

/// Single-pulse current-density rating: the constant j that produces
/// `dt_max` kelvin of rise at the end of an isolated pulse of width t_p
/// (resistivity evaluated at t_ref + dt_max/2 for mild conservatism).
double pulsed_current_rating(const ZthSpec& spec, const ZthCurve& curve,
                             double t_pulse, double dt_max, double t_ref_k);

}  // namespace dsmt::thermal
