// Transient thermal impedance Z_th(t) of an interconnect into the
// substrate, and the pulsed current ratings it implies.
//
// The paper treats two extremes: steady-state self-heating (Eq. 9, uses
// the DC thermal resistance R'_th) and sub-200-ns adiabatic ESD heating.
// Real stress lives in between: a pulse of width t_p sees the *transient*
// impedance Z_th(t_p) <= R'_th, because heat is still soaking into the
// dielectric's heat capacity. This module computes Z_th(t) by solving the
// vertical 1-D diffusion through the layered dielectric stack (wire as a
// lumped heat capacity on top, substrate as the cold plate) and derives
// the duty-independent single-pulse current rating
//   j_max(t_p) = sqrt(dT_max / (rho t_m W_m Z'_th(t_p)))
// which sweeps continuously from the ESD regime (Z ~ t / C') to the DC
// design rule (Z -> R'_th).
#pragma once

#include <vector>

#include "core/units.h"
#include "materials/metal.h"
#include "tech/layer_stack.h"

namespace dsmt::thermal {

/// Vertical transient model of one line over its stack.
struct ZthSpec {
  materials::Metal metal;
  units::Metres w_m{};          ///< line width
  units::Metres t_m{};          ///< line thickness
  tech::DielectricStack stack;  ///< below the line (impedance.h semantics)
  units::Metres w_eff{};        ///< spreading width for the vertical path
  /// Volumetric heat capacity of the dielectric [J/(m^3*K)] (single value;
  /// the conductivities vary per slab, capacities differ little).
  double c_dielectric = 1.6e6;
  int nodes_per_slab = 24;
};

/// Sampled step response: per-unit-length transient impedance [K*m/W] at
/// the sampled times, for unit power per length injected in the wire at
/// t = 0. Monotonically rises to the DC R'_th.
struct ZthCurve {
  std::vector<double> time;  ///< sample times [s]
  std::vector<double> zth;   ///< impedance samples [K*m/W]
  units::ThermalResistancePerLength rth_dc{};  ///< the steady-state limit
  units::Seconds tau_wire{};  ///< wire heat capacity x DC resistance
};

/// Computes Z'_th(t) from `t_min` to `t_max` (log-spaced samples) with an
/// implicit vertical finite-difference solve.
ZthCurve zth_step_response(const ZthSpec& spec, units::Seconds t_min,
                           units::Seconds t_max, int samples = 40);

/// Interpolates a curve at pulse width t_p (clamped to the sampled range).
units::ThermalResistancePerLength zth_at(const ZthCurve& curve,
                                         units::Seconds t_pulse);

/// Single-pulse current-density rating: the constant j that produces
/// `dt_max` kelvin of rise at the end of an isolated pulse of width t_p
/// (resistivity evaluated at t_ref + dt_max/2 for mild conservatism).
units::CurrentDensity pulsed_current_rating(const ZthSpec& spec,
                                            const ZthCurve& curve,
                                            units::Seconds t_pulse,
                                            units::CelsiusDelta dt_max,
                                            units::Kelvin t_ref);

}  // namespace dsmt::thermal
