#include "thermal/fd2d.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "numeric/mesh.h"
#include "numeric/sparse.h"
#include "parallel/parallel_for.h"

namespace dsmt::thermal {

struct CrossSection2D::Mesh {
  std::vector<double> xe, ye;           // cell edges
  std::vector<double> xc, yc, dx, dy;   // centers and sizes
  std::vector<double> k;                // cell conductivity (nx*ny)
  std::vector<int> unknown_index;       // -1 for Dirichlet cells
  std::size_t n_unknowns = 0;
  numeric::CsrMatrix a;
  std::vector<std::vector<std::size_t>> wire_cells;  // cells per wire
  std::vector<double> wire_area;                     // painted area per wire

  std::size_t nx() const { return dx.size(); }
  std::size_t ny() const { return dy.size(); }
  std::size_t cell(std::size_t i, std::size_t j) const { return j * nx() + i; }
};

CrossSection2D::CrossSection2D(double width, double height,
                               double k_background)
    : width_(width), height_(height), k_background_(k_background) {
  if (width <= 0 || height <= 0 || k_background <= 0)
    throw std::invalid_argument("CrossSection2D: bad domain");
}

void CrossSection2D::add_material(const RectRegion& r, double k_thermal) {
  if (k_thermal <= 0) throw std::invalid_argument("add_material: k <= 0");
  if (r.width() <= 0 || r.height() <= 0)
    throw std::invalid_argument("add_material: empty region");
  paints_.push_back({r, k_thermal});
}

void CrossSection2D::add_band(double y0, double y1, double k_thermal) {
  add_material({0.0, width_, y0, y1}, k_thermal);
}

std::size_t CrossSection2D::add_wire(const RectRegion& r, double k_metal) {
  add_material(r, k_metal);
  wires_.push_back(r);
  return wires_.size() - 1;
}

CrossSection2D::Mesh CrossSection2D::build_mesh(const MeshOptions& opts) const {
  Mesh m;
  std::set<double> xb, yb;
  for (const auto& p : paints_) {
    xb.insert(std::clamp(p.r.x0, 0.0, width_));
    xb.insert(std::clamp(p.r.x1, 0.0, width_));
    yb.insert(std::clamp(p.r.y0, 0.0, height_));
    yb.insert(std::clamp(p.r.y1, 0.0, height_));
  }
  m.xe = numeric::graded_axis(xb, 0.0, width_, opts.h_min, opts.h_max);
  m.ye = numeric::graded_axis(yb, 0.0, height_, opts.h_min, opts.h_max);

  const std::size_t nx = m.xe.size() - 1, ny = m.ye.size() - 1;
  m.xc.resize(nx);
  m.dx.resize(nx);
  for (std::size_t i = 0; i < nx; ++i) {
    m.dx[i] = m.xe[i + 1] - m.xe[i];
    m.xc[i] = 0.5 * (m.xe[i] + m.xe[i + 1]);
  }
  m.yc.resize(ny);
  m.dy.resize(ny);
  for (std::size_t j = 0; j < ny; ++j) {
    m.dy[j] = m.ye[j + 1] - m.ye[j];
    m.yc[j] = 0.5 * (m.ye[j] + m.ye[j + 1]);
  }

  // Paint conductivities, later paints override. Paints stay serial (their
  // order is the override rule); each paint's row sweep is parallel — rows
  // touch disjoint cells, so the result is thread-count-invariant.
  m.k.assign(nx * ny, k_background_);
  for (const auto& p : paints_) {
    parallel::parallel_for(ny, [&](std::size_t j) {
      if (m.yc[j] < p.r.y0 || m.yc[j] > p.r.y1) return;
      for (std::size_t i = 0; i < nx; ++i) {
        if (m.xc[i] < p.r.x0 || m.xc[i] > p.r.x1) continue;
        m.k[m.cell(i, j)] = p.k;
      }
    });
  }

  // Wire cell lists and areas: one task per wire, each owning its own list,
  // scanned in row order so the cell ordering matches the serial build.
  m.wire_cells.resize(wires_.size());
  m.wire_area.assign(wires_.size(), 0.0);
  parallel::parallel_for(wires_.size(), [&](std::size_t w) {
    const RectRegion& r = wires_[w];
    for (std::size_t j = 0; j < ny; ++j) {
      if (m.yc[j] < r.y0 || m.yc[j] > r.y1) continue;
      for (std::size_t i = 0; i < nx; ++i) {
        if (m.xc[i] < r.x0 || m.xc[i] > r.x1) continue;
        m.wire_cells[w].push_back(m.cell(i, j));
        m.wire_area[w] += m.dx[i] * m.dy[j];
      }
    }
    if (m.wire_cells[w].empty())
      throw std::runtime_error("CrossSection2D: wire not resolved by mesh");
  });

  // Unknown numbering: bottom row (j = 0) is Dirichlet (substrate, rise 0).
  m.unknown_index.assign(nx * ny, -1);
  std::size_t next = 0;
  for (std::size_t j = 1; j < ny; ++j)
    for (std::size_t i = 0; i < nx; ++i)
      m.unknown_index[m.cell(i, j)] = static_cast<int>(next++);
  m.n_unknowns = next;

  // Assemble the 5-point finite-volume operator over the unknowns.
  numeric::SparseBuilder builder(m.n_unknowns);
  auto face_g = [&](std::size_t c1, std::size_t c2, double w1, double w2,
                    double area) {
    // Series (harmonic) conductance through the two half cells.
    const double k1 = m.k[c1], k2 = m.k[c2];
    return area / (0.5 * w1 / k1 + 0.5 * w2 / k2);
  };
  for (std::size_t j = 1; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const std::size_t c = m.cell(i, j);
      const int row = m.unknown_index[c];
      double diag = 0.0;
      // West/east faces.
      if (i > 0) {
        const std::size_t cw = m.cell(i - 1, j);
        const double g = face_g(c, cw, m.dx[i], m.dx[i - 1], m.dy[j]);
        diag += g;
        builder.add(row, m.unknown_index[cw], -g);
      }
      if (i + 1 < nx) {
        const std::size_t ce = m.cell(i + 1, j);
        const double g = face_g(c, ce, m.dx[i], m.dx[i + 1], m.dy[j]);
        diag += g;
        builder.add(row, m.unknown_index[ce], -g);
      }
      // South face (j-1 may be Dirichlet row: contributes only to diagonal,
      // the fixed rise is 0 so nothing reaches the RHS).
      {
        const std::size_t cs = m.cell(i, j - 1);
        const double g = face_g(c, cs, m.dy[j], m.dy[j - 1], m.dx[i]);
        diag += g;
        if (m.unknown_index[cs] >= 0) builder.add(row, m.unknown_index[cs], -g);
      }
      // North face (top row is adiabatic: no face).
      if (j + 1 < ny) {
        const std::size_t cn = m.cell(i, j + 1);
        const double g = face_g(c, cn, m.dy[j], m.dy[j + 1], m.dx[i]);
        diag += g;
        builder.add(row, m.unknown_index[cn], -g);
      }
      builder.add(row, row, diag);
    }
  }
  m.a = numeric::CsrMatrix(builder);
  return m;
}

CrossSection2D::Solution CrossSection2D::solve(
    const std::vector<double>& p_per_len, const MeshOptions& opts) const {
  if (p_per_len.size() != wires_.size())
    throw std::invalid_argument("CrossSection2D::solve: power vector size");
  const Mesh m = build_mesh(opts);

  std::vector<double> rhs(m.n_unknowns, 0.0);
  for (std::size_t w = 0; w < wires_.size(); ++w) {
    if (p_per_len[w] == 0.0) continue;
    const double q = p_per_len[w] / m.wire_area[w];  // W/m^3
    for (std::size_t c : m.wire_cells[w]) {
      const std::size_t i = c % m.nx();
      const std::size_t j = c / m.nx();
      const int row = m.unknown_index[c];
      if (row >= 0) rhs[row] += q * m.dx[i] * m.dy[j];
    }
  }

  std::vector<double> x(m.n_unknowns, 0.0);
  Solution sol;
  sol.diag.kernel = "thermal/fd2d";
  const auto cg = numeric::conjugate_gradient_robust(
      m.a, rhs, x, {opts.cg_rel_tol, opts.cg_max_iterations}, sol.diag);

  sol.cg_iterations = cg.iterations;
  sol.converged = cg.ok();
  sol.unknowns = m.n_unknowns;
  sol.wire_avg_rise.resize(wires_.size());
  sol.wire_peak_rise.resize(wires_.size());
  for (std::size_t w = 0; w < wires_.size(); ++w) {
    double acc = 0.0, peak = 0.0;
    for (std::size_t c : m.wire_cells[w]) {
      const std::size_t i = c % m.nx();
      const std::size_t j = c / m.nx();
      const int row = m.unknown_index[c];
      const double t = (row >= 0) ? x[row] : 0.0;
      acc += t * m.dx[i] * m.dy[j];
      peak = std::max(peak, t);
    }
    sol.wire_avg_rise[w] = acc / m.wire_area[w];
    sol.wire_peak_rise[w] = peak;
  }
  return sol;
}

numeric::Matrix CrossSection2D::coupling_matrix(const MeshOptions& opts) const {
  // Each column is an independent unit-power solve; fan the columns out and
  // assemble the matrix in column order afterwards.
  const std::size_t n = wires_.size();
  const auto columns = parallel::parallel_map<std::vector<double>>(
      n, [&](std::size_t j) {
        std::vector<double> p(n, 0.0);
        p[j] = 1.0;  // 1 W/m in wire j
        return solve(p, opts).wire_avg_rise;
      });
  numeric::Matrix theta(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) theta(i, j) = columns[j][i];
  return theta;
}

}  // namespace dsmt::thermal
