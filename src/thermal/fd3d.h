// 3-D steady heat-conduction solver for true interconnect arrays.
//
// The paper's Section 5 analyzes "real 3-D interconnect arrays" (Fig. 8:
// alternating routing directions per level) via external FEM [11]. The 2-D
// cross-section solver (fd2d.h) captures parallel-line coupling exactly but
// approximates orthogonal levels as continuous slabs. This voxel solver
// removes that approximation: boxes of arbitrary orientation, Dirichlet
// substrate at z = 0, adiabatic elsewhere, 7-point finite volumes with
// harmonic face conductances, preconditioned CG.
#pragma once

#include <cstddef>
#include <vector>

#include "core/status.h"
#include "materials/dielectric.h"
#include "tech/technology.h"

namespace dsmt::thermal {

/// Axis-aligned box [x0,x1]x[y0,y1]x[z0,z1] in metres; z is vertical.
struct Box {
  double x0 = 0, x1 = 0, y0 = 0, y1 = 0, z0 = 0, z1 = 0;
  double volume() const { return (x1 - x0) * (y1 - y0) * (z1 - z0); }
};

struct Mesh3DOptions {
  double h_min = 0.08e-6;
  double h_max = 0.8e-6;
  double cg_rel_tol = 1e-8;
  int cg_max_iterations = 20000;
};

class Volume3D {
 public:
  /// Domain [0,lx]x[0,ly]x[0,lz] filled with `k_background` [W/m*K].
  Volume3D(double lx, double ly, double lz, double k_background);

  /// Paints a material box (later overrides earlier).
  void add_material(const Box& b, double k_thermal);
  /// Full-extent horizontal slab [z0, z1].
  void add_slab(double z0, double z1, double k_thermal);
  /// Registers a heated wire box; returns its index.
  /// k_metal [W/(m*K)].
  std::size_t add_wire(const Box& b, double k_metal);

  std::size_t wire_count() const { return wires_.size(); }
  const Box& wire(std::size_t i) const { return wires_.at(i); }

  struct Solution {
    std::vector<double> wire_avg_rise;   ///< [K]
    std::vector<double> wire_peak_rise;  ///< [K]
    std::size_t unknowns = 0;
    int cg_iterations = 0;
    bool converged = false;
    core::SolverDiag diag;  ///< linear-solve history incl. recovery stages
  };
  /// Solves with total power `watts[i]` dissipated uniformly in wire i.
  Solution solve(const std::vector<double>& watts,
                 const Mesh3DOptions& options = {}) const;

 private:
  double lx_, ly_, lz_, k_background_;
  struct Paint {
    Box b;
    double k;
  };
  std::vector<Paint> paints_;
  std::vector<Box> wires_;
};

/// Fig.-8-style array with alternating routing directions: levels route
/// along x on odd levels and along y on even levels (wires span the full
/// domain). Returns the volume plus the wire index of the center line of
/// the top level.
struct Array3DSpec {
  tech::Technology technology;
  int max_level = 4;
  int lines_per_level = 5;
  materials::Dielectric gap_fill = materials::make_oxide();
  double margin = 2e-6;   ///< lateral margin beyond the line span
  double cap_above = 1.5e-6;
};

struct Array3D {
  Volume3D volume;
  struct WireRef {
    int level;
    int index;
    std::size_t id;
    double length;  ///< wire length in the volume [m]
  };
  std::vector<WireRef> wires;
  std::size_t center_wire(int level) const;
};

Array3D make_array_3d(const Array3DSpec& spec);

/// Heating coefficients (dT = j_rms^2 rho H) for the center line of
/// `level`, with every line heated at equal current density vs the victim
/// alone — the true-3-D counterpart of array_heating_coefficients.
struct Array3DHeating {
  double h_all_hot = 0.0;
  double h_isolated = 0.0;
};
Array3DHeating array3d_heating_coefficients(const Array3D& arr, int level,
                                            const Mesh3DOptions& options = {});

}  // namespace dsmt::thermal
