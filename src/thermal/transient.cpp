#include "thermal/transient.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "numeric/roots.h"

namespace dsmt::thermal {

namespace {
void check(const PulseLineSpec& s) {
  if (s.w_m <= 0 || s.t_m <= 0)
    throw std::invalid_argument("PulseLineSpec: non-positive geometry");
}
}  // namespace

double adiabatic_time_to_temperature(const PulseLineSpec& spec, double j,
                                     double t_target) {
  check(spec);
  if (j == 0.0) return std::numeric_limits<double>::infinity();
  if (t_target <= spec.t_ref) return 0.0;
  const auto& m = spec.metal;
  // C_v dT/dt = j^2 rho(T);  rho = rho_ref (1 + tcr (T - T_rho)).
  const double drho_dt = m.rho_ref * m.tcr;
  const double rho0 = m.resistivity(spec.t_ref);
  const double rho1 = m.resistivity(t_target);
  if (drho_dt <= 0.0) {
    // Temperature-independent resistivity: linear heating.
    return m.c_volumetric * (t_target - spec.t_ref) / (j * j * rho0);
  }
  return m.c_volumetric / (drho_dt * j * j) * std::log(rho1 / rho0);
}

double adiabatic_time_to_melt_onset(const PulseLineSpec& spec, double j) {
  return adiabatic_time_to_temperature(spec, j, spec.metal.t_melt);
}

double adiabatic_fusion_time(const PulseLineSpec& spec, double j) {
  check(spec);
  if (j == 0.0) return std::numeric_limits<double>::infinity();
  const double rho_melt = spec.metal.resistivity(spec.metal.t_melt);
  return spec.metal.latent_heat / (j * j * rho_melt);
}

double critical_current_density_adiabatic(const PulseLineSpec& spec,
                                          double pulse_width) {
  check(spec);
  if (pulse_width <= 0.0)
    throw std::invalid_argument("critical_current_density: width <= 0");
  const auto& m = spec.metal;
  const double drho_dt = m.rho_ref * m.tcr;
  const double rho0 = m.resistivity(spec.t_ref);
  const double rho1 = m.resistivity(m.t_melt);
  if (drho_dt <= 0.0)
    return std::sqrt(m.c_volumetric * (m.t_melt - spec.t_ref) /
                     (pulse_width * rho0));
  return std::sqrt(m.c_volumetric * std::log(rho1 / rho0) /
                   (drho_dt * pulse_width));
}

PulseResult simulate_pulse(const PulseLineSpec& spec,
                           const std::function<double(double)>& j_of_t,
                           double t_final) {
  check(spec);
  const auto& m = spec.metal;
  const double area = spec.w_m * spec.t_m;
  const double loss_g =
      spec.rth_per_len > 0.0 ? 1.0 / spec.rth_per_len : 0.0;  // W/(m*K)

  auto rhs = [&](double t, double temp) {
    const double j = j_of_t(t);
    const double heat = j * j * m.resistivity(temp) * area;       // W/m
    const double loss = loss_g * (temp - spec.t_ref);             // W/m
    return (heat - loss) / (m.c_volumetric * area);               // K/s
  };

  PulseResult res;
  res.trajectory = numeric::rkf45(
      rhs, 0.0, spec.t_ref, t_final, 1e-6, 1e-8,
      [&](double, double temp) { return temp >= m.t_melt; });

  for (std::size_t i = 0; i < res.trajectory.t.size(); ++i) {
    const double temp = res.trajectory.y[i];
    res.peak_temperature = std::max(res.peak_temperature, temp);
    if (!res.reached_melt && temp >= m.t_melt) {
      res.reached_melt = true;
      res.melt_onset_time = res.trajectory.t[i];
    }
  }
  return res;
}

double critical_current_density(const PulseLineSpec& spec,
                                double pulse_width) {
  check(spec);
  // Bracket around the adiabatic value; loss only raises the requirement.
  const double j_adiabatic = critical_current_density_adiabatic(spec, pulse_width);
  auto melts_in_time = [&](double j) {
    const auto r = simulate_pulse(spec, [j](double) { return j; },
                                  pulse_width);
    // Positive when the line melts before the pulse ends.
    return r.reached_melt ? (pulse_width - r.melt_onset_time)
                          : (r.peak_temperature - spec.metal.t_melt);
  };
  double lo = j_adiabatic;
  double hi = j_adiabatic;
  // Expand upward until melting happens within the pulse.
  for (int i = 0; i < 60 && melts_in_time(hi) < 0.0; ++i) hi *= 1.25;
  // Expand downward until it does not.
  for (int i = 0; i < 60 && melts_in_time(lo) > 0.0; ++i) lo *= 0.8;
  const auto r = numeric::bisect(melts_in_time, lo, hi,
                                 {.x_tol = 1e-4 * j_adiabatic, .f_tol = 0.0,
                                  .max_iterations = 80});
  if (!r.ok()) {
    core::SolverDiag diag;
    diag.record("numeric/bisect", r.status, r.iterations, r.f_at_root);
    diag.add_context("thermal/critical_current_density");
    throw SolveError("critical_current_density: bisection failed", diag);
  }
  return r.root;
}

}  // namespace dsmt::thermal
