#include "thermal/scenarios.h"

#include <cmath>
#include <stdexcept>

namespace dsmt::thermal {

CrossSection2D make_single_line_section(const SingleLineSpec& spec) {
  const double domain_w = spec.width + 2.0 * spec.lateral_margin;
  const double domain_h = spec.t_ox_below + spec.thickness + spec.cap_above;
  CrossSection2D cs(domain_w, domain_h, spec.ild.k_thermal);

  // Intra-level gap-fill band at the wire level.
  cs.add_band(spec.t_ox_below, spec.t_ox_below + spec.thickness,
              spec.gap_fill.k_thermal);
  // The wire itself (centered laterally).
  const double x0 = 0.5 * (domain_w - spec.width);
  cs.add_wire({x0, x0 + spec.width, spec.t_ox_below,
               spec.t_ox_below + spec.thickness},
              spec.metal.k_thermal);
  return cs;
}

double solve_rth_per_length(const SingleLineSpec& spec,
                            const MeshOptions& mesh) {
  CrossSection2D cs = make_single_line_section(spec);
  const auto sol = cs.solve({1.0}, mesh);  // 1 W/m
  if (!sol.diag.ok()) {
    core::SolverDiag diag = sol.diag;
    diag.add_context("solve_rth_per_length");
    throw SolveError("solve_rth_per_length: CG did not converge", diag);
  }
  return sol.wire_avg_rise[0];
}

double solve_theta_line(const SingleLineSpec& spec, double length,
                        const MeshOptions& mesh) {
  if (length <= 0.0) throw std::invalid_argument("solve_theta_line: L <= 0");
  return solve_rth_per_length(spec, mesh) / length;
}

double extract_phi(double rth_per_len, double w_m, double b, double k_ox) {
  if (rth_per_len <= 0.0 || w_m <= 0.0 || b <= 0.0 || k_ox <= 0.0)
    throw std::invalid_argument("extract_phi: bad parameters");
  const double w_eff = b / (k_ox * rth_per_len);
  return (w_eff - w_m) / b;
}

std::size_t ArraySection::center_wire(int level) const {
  int max_index = -1;
  for (const auto& w : wires)
    if (w.level == level) max_index = std::max(max_index, w.index);
  if (max_index < 0)
    throw std::out_of_range("ArraySection::center_wire: no such level");
  const int center = max_index / 2;
  for (const auto& w : wires)
    if (w.level == level && w.index == center) return w.id;
  throw std::logic_error("ArraySection::center_wire: center missing");
}

ArraySection make_array_section(const ArraySpec& spec) {
  if (spec.lines_per_level < 1)
    throw std::invalid_argument("ArraySpec: lines_per_level < 1");
  const auto& tech = spec.technology;

  // Vertical layout: y = 0 is the substrate; each level sits on its ILD.
  // Lateral extent sized by the widest level's span.
  double widest_span = 0.0;
  for (const auto& l : tech.layers) {
    if (l.level > spec.max_level) continue;
    const double span = spec.lines_per_level * l.pitch;
    widest_span = std::max(widest_span, span);
  }
  const double domain_w = widest_span + 2.0 * spec.lateral_margin;

  double y = 0.0;
  double top_of_stack = 0.0;
  for (const auto& l : tech.layers) {
    if (l.level > spec.max_level) continue;
    top_of_stack += l.ild_below + l.thickness;
  }
  const double domain_h = top_of_stack + spec.cap_above;

  ArraySection arr{CrossSection2D(domain_w, domain_h, tech.ild.k_thermal),
                   {}};

  y = 0.0;
  for (const auto& l : tech.layers) {
    if (l.level > spec.max_level) continue;
    y += l.ild_below;
    // Gap-fill band across the level.
    arr.section.add_band(y, y + l.thickness, spec.gap_fill.k_thermal);
    // Lines, centered in the domain.
    const double span = spec.lines_per_level * l.pitch;
    const double x_start = 0.5 * (domain_w - span) + 0.5 * (l.pitch - l.width);
    for (int i = 0; i < spec.lines_per_level; ++i) {
      const double x0 = x_start + i * l.pitch;
      const std::size_t id = arr.section.add_wire(
          {x0, x0 + l.width, y, y + l.thickness}, tech.metal.k_thermal);
      arr.wires.push_back({l.level, i, id});
    }
    y += l.thickness;
  }
  return arr;
}

ArrayHeating array_heating_coefficients(const ArraySection& arr, int level,
                                        const MeshOptions& mesh) {
  const std::size_t victim = arr.center_wire(level);
  const std::size_t n = arr.section.wire_count();

  // With every line at the same (j_rms, rho), P'_j = j^2 rho A_j, so the
  // victim's rise under P'_j = A_j [W/m per m^2] is exactly
  // H_all = sum_j Theta[victim][j] A_j. One linear solve per configuration
  // instead of the full coupling matrix.
  std::vector<double> p_all(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) p_all[j] = arr.section.wire(j).area();
  const auto sol_all = arr.section.solve(p_all, mesh);

  std::vector<double> p_iso(n, 0.0);
  p_iso[victim] = arr.section.wire(victim).area();
  const auto sol_iso = arr.section.solve(p_iso, mesh);

  if (!sol_all.diag.ok() || !sol_iso.diag.ok()) {
    core::SolverDiag diag = sol_all.diag.ok() ? sol_iso.diag : sol_all.diag;
    diag.add_context("array_heating_coefficients");
    throw SolveError("array_heating_coefficients: CG not converged", diag);
  }

  return {sol_all.wire_avg_rise[victim], sol_iso.wire_avg_rise[victim]};
}

}  // namespace dsmt::thermal
