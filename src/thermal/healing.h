// Thermal healing length and finite-line temperature profiles (Schafft [21]).
//
// Line ends terminate in vias/contacts that act as near-isothermal heat
// sinks, so the steady 1-D balance along the line is
//   K_m t_m W_m T'' - g (T - T_ref) + P' = 0,    g = W_eff K_ox / b
// whose solution decays from the ends with characteristic length
//   lambda = sqrt(K_m t_m W_m / g).
// Lines with L >> lambda are "thermally long" (the paper's worst case);
// lines with L ~ lambda are "thermally short" and run cooler.
#pragma once

#include <vector>

#include "materials/metal.h"
#include "tech/layer_stack.h"

namespace dsmt::thermal {

/// Healing length lambda [m]. `rth_per_len` is the stack's per-unit-length
/// thermal resistance (impedance.h); g = 1/rth_per_len.
double healing_length(const materials::Metal& metal, double w_m, double t_m,
                      double rth_per_len);

/// Classification threshold: L > `factor` * lambda is "thermally long".
bool is_thermally_long(double length, double lambda, double factor = 10.0);

/// Steady temperature profile of a uniformly heated line of length L whose
/// two ends are pinned at `t_end` (via temperature):
///   T(x) = T_inf - (T_inf - t_end) cosh(x/lambda)/cosh(L/2lambda)
/// with x in [-L/2, +L/2] and T_inf the infinite-line temperature.
struct LineProfile {
  std::vector<double> x;  ///< abscissae [m], from -L/2 to +L/2
  std::vector<double> t;  ///< temperature [K]
  double t_peak = 0.0;    ///< mid-line temperature [K]
  double t_avg = 0.0;     ///< length-averaged temperature [K]
  double lambda = 0.0;    ///< healing length used [m]
};

LineProfile finite_line_profile(const materials::Metal& metal, double w_m,
                                double t_m, double rth_per_len, double length,
                                double p_per_len, double t_ref_k,
                                double t_end_k, int samples = 201);

/// Peak-rise fraction relative to the infinite line:
///   (T_peak - T_ref)/(T_inf - T_ref) = 1 - cosh(0)/cosh(L/2lambda) ... for
/// t_end = t_ref this is 1 - 1/cosh(L/2lambda).
/// length, lambda [m]; result [1].
double peak_rise_fraction(double length, double lambda);

/// Average-rise fraction 1 - tanh(L/2lambda)/(L/2lambda) for t_end = t_ref.
/// length, lambda [m]; result [1].
double average_rise_fraction(double length, double lambda);

}  // namespace dsmt::thermal
