// Lumped (0-D) transient heating of an interconnect under high-current
// pulses — the substrate of the paper's Section 6 (ESD) analysis and of the
// short-pulse failure model of Banerjee et al. [8].
//
// Energy balance per unit length, uniform line temperature T(t):
//   C_v A dT/dt = j(t)^2 rho(T) A - (T - T_ref)/R'_th
// with A = W_m t_m. For ESD time scales (< 200 ns) the loss term is small
// (adiabatic limit) and, with rho linear in T, time-to-melt has the closed
// form
//   t_melt = C_v / (rho'_T j^2) * ln(rho(T_melt)/rho(T_0))
// where rho'_T = rho_ref * tcr is drho/dT.
#pragma once

#include <functional>

#include "materials/metal.h"
#include "numeric/ode.h"
#include "core/units.h"

namespace dsmt::thermal {

/// Geometry + environment for the lumped pulse model.
struct PulseLineSpec {
  materials::Metal metal;
  double w_m = 0.0;
  double t_m = 0.0;
  double rth_per_len = 0.0;  ///< vertical loss path [K*m/W]; <=0 -> adiabatic
  double t_ref = kTrefK;     ///< initial/ambient temperature [K]
};

/// Closed-form adiabatic time for the line to reach `t_target` under a
/// constant current density `j`. Returns +inf if j == 0.
double adiabatic_time_to_temperature(const PulseLineSpec& spec, double j,
                                     double t_target);

/// Closed-form adiabatic time to reach the metal's melting point (onset of
/// melting; latent heat not yet absorbed).
/// j [A/m^2]; result [s].
double adiabatic_time_to_melt_onset(const PulseLineSpec& spec, double j);

/// Additional time at constant j to supply the latent heat of fusion once
/// the melting point is reached (temperature clamped at T_melt).
/// j [A/m^2]; result [s].
double adiabatic_fusion_time(const PulseLineSpec& spec, double j);

/// The constant current density that reaches melt onset in exactly
/// `pulse_width` seconds (adiabatic inverse of time_to_melt_onset).
double critical_current_density_adiabatic(const PulseLineSpec& spec,
                                          double pulse_width);

/// Numerically integrates the lumped balance for an arbitrary current-
/// density waveform (uses adaptive RKF45 with a melt-onset stopping event).
struct PulseResult {
  numeric::OdeTrajectory trajectory;  ///< T(t) [K]
  bool reached_melt = false;
  double melt_onset_time = -1.0;      ///< [s], -1 if never reached
  double peak_temperature = 0.0;      ///< [K]
};
PulseResult simulate_pulse(const PulseLineSpec& spec,
                           const std::function<double(double)>& j_of_t,
                           double t_final);

/// The constant current density that reaches melt onset in exactly
/// `pulse_width` including vertical heat loss (numeric bisection over
/// simulate_pulse; reduces to the adiabatic value as rth -> infinity).
/// pulse_width [s]; result [A/m^2].
double critical_current_density(const PulseLineSpec& spec, double pulse_width);

}  // namespace dsmt::thermal
