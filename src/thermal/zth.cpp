#include "thermal/zth.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/tridiag.h"
#include "thermal/impedance.h"

namespace dsmt::thermal {

namespace {
void check(const ZthSpec& spec) {
  if (spec.w_m <= 0.0 || spec.t_m <= 0.0 || spec.w_eff <= 0.0 ||
      spec.stack.slabs.empty() || spec.nodes_per_slab < 2)
    throw std::invalid_argument("ZthSpec: bad parameters");
}
}  // namespace

ZthCurve zth_step_response(const ZthSpec& spec, units::Seconds t_min,
                           units::Seconds t_max, int samples) {
  check(spec);
  if (t_min <= 0.0 || t_max <= t_min || samples < 2)
    throw std::invalid_argument("zth_step_response: bad time range");

  // Vertical grid through the stack (top = wire, bottom = substrate).
  // Per-unit-length quantities; the path cross-section is w_eff wide.
  std::vector<double> dz, kz;  // cell height and conductivity
  for (auto it = spec.stack.slabs.rbegin(); it != spec.stack.slabs.rend();
       ++it) {
    const int n = spec.nodes_per_slab;
    for (int i = 0; i < n; ++i) {
      dz.push_back(it->thickness / n);
      kz.push_back(it->k_thermal);
    }
  }
  const std::size_t n = dz.size();

  // Capacities [J/(m K)] per unit length: dielectric cells + the wire lump.
  std::vector<double> cap(n);
  for (std::size_t i = 0; i < n; ++i)
    cap[i] = spec.c_dielectric * dz[i] * spec.w_eff;
  const double cap_wire =
      spec.metal.c_volumetric * spec.w_m * spec.t_m;
  cap[0] += cap_wire;  // wire rides on the top cell

  // Face conductances [W/(m K)] between cell i and i+1 (and to substrate).
  std::vector<double> g(n + 1, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i)
    g[i + 1] =
        spec.w_eff / (0.5 * dz[i] / kz[i] + 0.5 * dz[i + 1] / kz[i + 1]);
  g[n] = spec.w_eff * kz[n - 1] / (0.5 * dz[n - 1]);  // to the cold plate
  g[0] = 0.0;  // adiabatic above the wire

  const double rth_dc = rth_per_length(spec.stack, spec.w_eff);

  ZthCurve curve;
  curve.rth_dc = units::ThermalResistancePerLength{rth_dc};
  curve.tau_wire = units::Seconds{cap_wire * rth_dc};
  curve.time.resize(samples);
  const double lstep = std::log(t_max / t_min) / (samples - 1);
  for (int s = 0; s < samples; ++s)
    curve.time[s] = t_min * std::exp(s * lstep);

  // Implicit Euler march with sub-steps between the sample times.
  std::vector<double> temp(n, 0.0);
  std::vector<double> lo(n), di(n), up(n), rhs(n);
  double t_now = 0.0;
  curve.zth.resize(samples);
  for (int s = 0; s < samples; ++s) {
    const double t_target = curve.time[s];
    const int sub = 24;
    const double dt = (t_target - t_now) / sub;
    for (int k = 0; k < sub; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        const double g_up = g[i];        // toward the wire (adiabatic at 0)
        const double g_dn = g[i + 1];    // toward the substrate
        lo[i] = (i > 0) ? -dt * g_up : 0.0;
        up[i] = (i + 1 < n) ? -dt * g_dn : 0.0;
        di[i] = cap[i] + dt * (g_up + g_dn);
        rhs[i] = cap[i] * temp[i];
      }
      rhs[0] += dt * 1.0;  // unit power per length into the wire cell
      temp = numeric::solve_tridiagonal(lo, di, up, rhs);
    }
    t_now = t_target;
    curve.zth[s] = temp[0];
  }
  return curve;
}

units::ThermalResistancePerLength zth_at(const ZthCurve& curve,
                                         units::Seconds t_pulse) {
  if (curve.time.empty()) throw std::invalid_argument("zth_at: empty curve");
  if (t_pulse <= curve.time.front())
    return units::ThermalResistancePerLength{curve.zth.front()};
  if (t_pulse >= curve.time.back())
    return units::ThermalResistancePerLength{curve.zth.back()};
  const auto it =
      std::upper_bound(curve.time.begin(), curve.time.end(), t_pulse);
  const std::size_t i = static_cast<std::size_t>(it - curve.time.begin());
  // Log-time interpolation matches the sampling.
  const double f = std::log(t_pulse / curve.time[i - 1]) /
                   std::log(curve.time[i] / curve.time[i - 1]);
  return units::ThermalResistancePerLength{
      curve.zth[i - 1] + f * (curve.zth[i] - curve.zth[i - 1])};
}

units::CurrentDensity pulsed_current_rating(const ZthSpec& spec,
                                            const ZthCurve& curve,
                                            units::Seconds t_pulse,
                                            units::CelsiusDelta dt_max,
                                            units::Kelvin t_ref) {
  check(spec);
  if (dt_max <= 0.0)
    throw std::invalid_argument("pulsed_current_rating: dt_max <= 0");
  const double z = zth_at(curve, t_pulse);
  const double rho = spec.metal.resistivity(t_ref + 0.5 * dt_max);
  return A_per_m2(std::sqrt(dt_max / (rho * spec.t_m * spec.w_m * z)));
}

}  // namespace dsmt::thermal
