#include "thermal/fd1d.h"

#include <cmath>
#include <stdexcept>

#include "core/run_context.h"
#include "numeric/fault_injection.h"
#include "numeric/tridiag.h"

namespace dsmt::thermal {

namespace {
void check_spec(const Line1DSpec& s) {
  if (s.w_m <= 0 || s.t_m <= 0 || s.length <= 0 || s.rth_per_len <= 0)
    throw std::invalid_argument("Line1DSpec: non-positive geometry");
  if (s.nodes < 3) throw std::invalid_argument("Line1DSpec: nodes < 3");
}
}  // namespace

Steady1DResult solve_steady_line(const Line1DSpec& spec, double j_density) {
  check_spec(spec);
  const int n = spec.nodes;
  const double h = spec.length / (n - 1);
  const double area = spec.w_m * spec.t_m;
  const double ax_k = spec.metal.k_thermal * area;  // axial conductance*h
  const double g = 1.0 / spec.rth_per_len;          // vertical W/(m*K)

  Steady1DResult res;
  res.x.resize(n);
  for (int i = 0; i < n; ++i) res.x[i] = i * h;
  res.t.assign(n, spec.t_ref);
  res.t.front() = res.t.back() = spec.t_end;

  // Picard: freeze rho(T) from the previous iterate, solve the linear BVP
  //   K A T'' - g (T - T_ref) + j^2 rho A = 0.
  core::StatusCode stop = core::StatusCode::kMaxIterations;
  std::vector<double> lower(n), diag(n), upper(n), rhs(n);
  const int max_it = numeric::fault::clamp_iterations("thermal/fd1d", 100);
  for (int it = 0; it < max_it; ++it) {
    if (const auto rc = core::run_check(); rc != core::StatusCode::kOk) {
      res.diag.record("thermal/fd1d", rc, res.picard_iterations, 0.0,
                      "run interrupted mid-Picard");
      return res;
    }
    for (int i = 0; i < n; ++i) {
      if (i == 0 || i == n - 1) {
        lower[i] = upper[i] = 0.0;
        diag[i] = 1.0;
        rhs[i] = spec.t_end;
        continue;
      }
      const double rho = spec.metal.resistivity(res.t[i]);
      const double p = j_density * j_density * rho * area;  // W/m
      lower[i] = ax_k / (h * h);
      upper[i] = ax_k / (h * h);
      diag[i] = -2.0 * ax_k / (h * h) - g;
      rhs[i] = -g * spec.t_ref - p;
    }
    auto t_new = numeric::solve_tridiagonal(lower, diag, upper, rhs);
    double delta = 0.0;
    for (int i = 0; i < n; ++i) delta = std::max(delta, std::abs(t_new[i] - res.t[i]));
    res.t = std::move(t_new);
    res.picard_iterations = it + 1;
    delta = numeric::fault::filter_residual("thermal/fd1d", it + 1, delta);
    if (!std::isfinite(delta)) {
      stop = core::StatusCode::kNonFinite;
      res.diag.record("thermal/fd1d", stop, res.picard_iterations, delta);
      return res;
    }
    if (delta < 1e-8) {
      res.converged = true;
      stop = core::StatusCode::kOk;
      res.diag.record("thermal/fd1d", stop, res.picard_iterations, delta);
      break;
    }
  }
  if (stop != core::StatusCode::kOk)
    res.diag.record("thermal/fd1d", stop, res.picard_iterations, 0.0,
                    "Picard iteration exhausted");
  res.t_peak = 0.0;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    res.t_peak = std::max(res.t_peak, res.t[i]);
    sum += res.t[i];
  }
  res.t_avg = sum / n;
  return res;
}

Transient1DResult solve_transient_line(
    const Line1DSpec& spec, const std::function<double(double)>& j_of_t,
    double t_final, int steps) {
  check_spec(spec);
  if (steps < 1) throw std::invalid_argument("solve_transient_line: steps");
  const int n = spec.nodes;
  const double h = spec.length / (n - 1);
  const double area = spec.w_m * spec.t_m;
  const double cv = spec.metal.c_volumetric * area;  // J/(m*K) per length
  const double ax_k = spec.metal.k_thermal * area;
  const double g = 1.0 / spec.rth_per_len;
  const double dt = t_final / steps;

  Transient1DResult res;
  res.x.resize(n);
  for (int i = 0; i < n; ++i) res.x[i] = i * h;
  std::vector<double> t(n, spec.t_ref);
  t.front() = t.back() = spec.t_end;

  std::vector<double> lower(n), diag(n), upper(n), rhs(n);
  res.time.reserve(steps + 1);
  res.t_peak.reserve(steps + 1);
  res.time.push_back(0.0);
  res.t_peak.push_back(spec.t_ref);

  for (int s = 0; s < steps; ++s) {
    const double tn = (s + 1) * dt;
    const double j = j_of_t(tn);
    for (int i = 0; i < n; ++i) {
      if (i == 0 || i == n - 1) {
        lower[i] = upper[i] = 0.0;
        diag[i] = 1.0;
        rhs[i] = spec.t_end;
        continue;
      }
      const double rho = spec.metal.resistivity(t[i]);  // explicit in rho
      const double p = j * j * rho * area;
      lower[i] = -dt * ax_k / (h * h);
      upper[i] = -dt * ax_k / (h * h);
      diag[i] = cv + 2.0 * dt * ax_k / (h * h) + dt * g;
      rhs[i] = cv * t[i] + dt * (g * spec.t_ref + p);
    }
    t = numeric::solve_tridiagonal(lower, diag, upper, rhs);
    double peak = 0.0;
    for (double v : t) peak = std::max(peak, v);
    res.time.push_back(tn);
    res.t_peak.push_back(peak);
    if (!res.melted && peak >= spec.metal.t_melt) {
      res.melted = true;
      res.melt_time = tn;
    }
  }
  res.final_profile = std::move(t);
  return res;
}

}  // namespace dsmt::thermal
