// Foster thermal-network extraction.
//
// Package/board thermal tools consume compact RC ladders, not sampled
// Z_th(t) curves. This module fits an N-stage Foster network
//   Z(t) = sum_i R_i (1 - exp(-t / tau_i))
// to a solved step response (thermal/zth.h): the time constants are
// log-spaced over the curve's span and the R_i follow from non-negative
// linear least squares (active-set clipping on the normal equations).
#pragma once

#include <vector>

#include "thermal/zth.h"

namespace dsmt::thermal {

struct FosterStage {
  double r = 0.0;    ///< [K*m/W] (per-unit-length convention of ZthCurve)
  double tau = 0.0;  ///< [s]
};

struct FosterNetwork {
  std::vector<FosterStage> stages;

  /// Z(t) of the network.
  /// t [s]; result [K*m/W].
  double evaluate(double t) const;
  /// DC limit sum R_i.
  double r_total() const;
  /// Largest relative error of the fit against a reference curve.
  double max_relative_error(const ZthCurve& curve) const;
};

/// Fits `n_stages` Foster stages to the curve. Throws on degenerate input.
FosterNetwork fit_foster(const ZthCurve& curve, int n_stages);

}  // namespace dsmt::thermal
