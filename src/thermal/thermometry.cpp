#include "thermal/thermometry.h"

#include <cmath>
#include <stdexcept>

#include "numeric/polyfit.h"
#include "thermal/impedance.h"

namespace dsmt::thermal {

namespace {
void check(const ThermometrySetup& s) {
  if (s.w_m <= 0 || s.t_m <= 0 || s.length <= 0 || s.rth_per_len <= 0)
    throw std::invalid_argument("ThermometrySetup: non-positive geometry");
}

/// Deterministic xorshift noise in [-1, 1].
double pseudo_noise(unsigned& state) {
  state ^= state << 13;
  state ^= state >> 17;
  state ^= state << 5;
  return (static_cast<double>(state % 200001) / 100000.0) - 1.0;
}
}  // namespace

std::vector<ThermometryPoint> simulate_sweep(const ThermometrySetup& setup,
                                             double i_max, int points,
                                             double noise_fraction,
                                             unsigned seed) {
  check(setup);
  if (points < 2 || i_max <= 0.0)
    throw std::invalid_argument("simulate_sweep: bad sweep");
  unsigned rng = seed ? seed : 1;

  std::vector<ThermometryPoint> sweep;
  sweep.reserve(points);
  const double area = setup.w_m * setup.t_m;
  for (int k = 0; k < points; ++k) {
    ThermometryPoint pt;
    pt.current = i_max * (k + 1) / points;
    const double j = pt.current / area;
    const auto sol = solve_self_heating(
        A_per_m2(j), setup.metal, metres(setup.w_m), metres(setup.t_m),
        units::ThermalResistancePerLength{setup.rth_per_len},
        units::Kelvin{setup.t_chuck});
    pt.temperature = sol.t_metal;
    const double rho = setup.metal.resistivity(pt.temperature);
    pt.resistance = rho * setup.length / area;
    if (noise_fraction > 0.0)
      pt.resistance *= 1.0 + noise_fraction * pseudo_noise(rng);
    pt.power = pt.current * pt.current * pt.resistance;
    sweep.push_back(pt);
  }
  return sweep;
}

ThermometryExtraction extract_theta(
    const ThermometrySetup& setup,
    const std::vector<ThermometryPoint>& sweep) {
  check(setup);
  if (sweep.size() < 2)
    throw std::invalid_argument("extract_theta: need >=2 points");

  std::vector<double> p, r;
  p.reserve(sweep.size());
  r.reserve(sweep.size());
  for (const auto& pt : sweep) {
    p.push_back(pt.power);
    r.push_back(pt.resistance);
  }
  const auto fit = numeric::linear_fit(p, r);

  ThermometryExtraction out;
  out.r0 = fit.intercept;
  out.fit_r_squared = fit.r_squared;
  if (fit.intercept <= 0.0)
    throw std::runtime_error("extract_theta: non-physical R0 from fit");
  // R(P) = R0 (1 + tcr * theta * P): note the line's TCR must be referenced
  // to the chuck temperature; with rho linear in T the local tcr at T_chuck
  // is rho'_T / rho(T_chuck).
  const double tcr_local = setup.metal.rho_ref * setup.metal.tcr /
                           setup.metal.resistivity(setup.t_chuck);
  out.theta = fit.slope / (fit.intercept * tcr_local);
  out.rth_per_len = out.theta * setup.length;
  return out;
}

}  // namespace dsmt::thermal
