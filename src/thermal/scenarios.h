// Prebuilt cross-section scenarios reproducing the paper's thermal
// experiments:
//  - Fig. 5: a single level-1 line over t_ox of oxide, with oxide or low-k
//    intra-level gap-fill, from which theta(W) and the spreading parameter
//    phi are extracted;
//  - Fig. 8 / Table 7: a densely packed multi-level array whose coupling
//    matrix supplies the Eq. 18 empirical constant (Rzepka-style analysis).
#pragma once

#include <vector>

#include "materials/dielectric.h"
#include "materials/metal.h"
#include "tech/technology.h"
#include "thermal/fd2d.h"

namespace dsmt::thermal {

/// Single-line cross-section (Fig. 5 geometry).
struct SingleLineSpec {
  double width = 0.35e-6;       ///< line width W_m
  double thickness = 0.6e-6;    ///< metal thickness t_m
  double t_ox_below = 1.2e-6;   ///< oxide below the line (b)
  double cap_above = 1.0e-6;    ///< dielectric above the line
  double lateral_margin = 10e-6;///< half-domain width beyond the line edge
  materials::Metal metal = materials::make_alcu();
  materials::Dielectric ild = materials::make_oxide();       ///< below/above
  materials::Dielectric gap_fill = materials::make_oxide();  ///< at line level
};

CrossSection2D make_single_line_section(const SingleLineSpec& spec);

/// Solves the single-line section and returns the per-unit-length thermal
/// resistance R'_th = dT_avg / P' [K*m/W].
double solve_rth_per_length(const SingleLineSpec& spec,
                            const MeshOptions& mesh = {});

/// Whole-line thermal impedance theta = R'_th / L [K/W] for length L — the
/// quantity plotted in Fig. 5.
double solve_theta_line(const SingleLineSpec& spec, double length,
                        const MeshOptions& mesh = {});

/// Extracts the heat-spreading parameter phi from a solved/measured R'_th
/// assuming the homogeneous model R'_th = b/(K_ox (W + phi b)) (Eq. 10/14).
/// rth_per_len [K*m/W]; w_m, b [m]; k_ox [W/(m*K)]; result [1].
double extract_phi(double rth_per_len, double w_m, double b, double k_ox);

/// Multi-level dense-array cross-section (Fig. 8 geometry).
struct ArraySpec {
  tech::Technology technology;          ///< supplies per-level geometry
  int max_level = 4;                    ///< include M1..max_level
  int lines_per_level = 9;              ///< odd; center line is the victim
  materials::Dielectric gap_fill = materials::make_oxide();
  double lateral_margin = 8e-6;
  double cap_above = 1.5e-6;
};

/// A wire's identity inside the array section.
struct ArrayWire {
  int level = 0;    ///< metal level
  int index = 0;    ///< line index within the level (0 = leftmost)
  std::size_t id = 0;  ///< wire id in the CrossSection2D
};

struct ArraySection {
  CrossSection2D section;
  std::vector<ArrayWire> wires;

  /// Wire id of the center line of `level`; throws if absent.
  std::size_t center_wire(int level) const;
};

ArraySection make_array_section(const ArraySpec& spec);

/// Effective heating coefficients for the center line of `level`:
/// dT = j_rms^2 * rho(T) * H, with
///   H_all  = sum_j Theta[c][j] * A_j   (every line in the array heated)
///   H_iso  = Theta[c][c] * A_c         (victim heated alone)
/// where A_j = W_j t_j. These plug directly into the generalized
/// self-consistent solver (paper Eq. 18).
struct ArrayHeating {
  double h_all_hot = 0.0;   ///< [K m^4/W... dT = j^2 rho H] all lines hot
  double h_isolated = 0.0;  ///< victim alone
};
ArrayHeating array_heating_coefficients(const ArraySection& arr, int level,
                                        const MeshOptions& mesh = {});

}  // namespace dsmt::thermal
