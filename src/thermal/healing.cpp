#include "thermal/healing.h"

#include <cmath>
#include <stdexcept>

namespace dsmt::thermal {

double healing_length(const materials::Metal& metal, double w_m, double t_m,
                      double rth_per_len) {
  if (w_m <= 0.0 || t_m <= 0.0 || rth_per_len <= 0.0)
    throw std::invalid_argument("healing_length: bad parameters");
  // g = 1/R'_th  [W/(m*K)];  lambda^2 = K_m t W / g.
  return std::sqrt(metal.k_thermal * t_m * w_m * rth_per_len);
}

bool is_thermally_long(double length, double lambda, double factor) {
  return length > factor * lambda;
}

LineProfile finite_line_profile(const materials::Metal& metal, double w_m,
                                double t_m, double rth_per_len, double length,
                                double p_per_len, double t_ref_k,
                                double t_end_k, int samples) {
  if (samples < 3) throw std::invalid_argument("finite_line_profile: samples");
  if (length <= 0.0) throw std::invalid_argument("finite_line_profile: L<=0");
  LineProfile prof;
  prof.lambda = healing_length(metal, w_m, t_m, rth_per_len);
  const double t_inf = t_ref_k + p_per_len * rth_per_len;
  const double half = 0.5 * length;
  const double denom = std::cosh(half / prof.lambda);

  prof.x.resize(samples);
  prof.t.resize(samples);
  double sum = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double x = -half + length * i / (samples - 1);
    const double t =
        t_inf - (t_inf - t_end_k) * std::cosh(x / prof.lambda) / denom;
    prof.x[i] = x;
    prof.t[i] = t;
    sum += t;
  }
  prof.t_peak = t_inf - (t_inf - t_end_k) / denom;
  // Closed-form average: T_inf - (T_inf - T_end) tanh(L/2l)/(L/2l).
  const double u = half / prof.lambda;
  prof.t_avg = t_inf - (t_inf - t_end_k) * std::tanh(u) / u;
  (void)sum;
  return prof;
}

double peak_rise_fraction(double length, double lambda) {
  if (lambda <= 0.0 || length <= 0.0)
    throw std::invalid_argument("peak_rise_fraction: bad parameters");
  return 1.0 - 1.0 / std::cosh(0.5 * length / lambda);
}

double average_rise_fraction(double length, double lambda) {
  if (lambda <= 0.0 || length <= 0.0)
    throw std::invalid_argument("average_rise_fraction: bad parameters");
  const double u = 0.5 * length / lambda;
  return 1.0 - std::tanh(u) / u;
}

}  // namespace dsmt::thermal
