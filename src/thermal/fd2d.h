// 2-D steady heat-conduction solver on interconnect cross-sections.
//
// Solves div(k grad T) = -q on a rectilinear finite-volume mesh with
// heterogeneous conductivity (oxide / low-k gap-fill / metal), a Dirichlet
// substrate boundary at the bottom, and adiabatic side/top boundaries
// (worst case: all heat leaves through the silicon).
//
// This is the in-silico substitute for two things the paper obtained
// externally: the measured thermal impedances of Fig. 5 (from which the
// heat-spreading parameter phi = 2.45 is extracted) and the finite-element
// array simulations of Rzepka et al. [11] behind Table 7's 3-D coupling
// constant. Because the wires run perpendicular to the modeled plane, a
// per-unit-length 2-D solve captures exactly the line-to-line and
// level-to-level coupling the paper's empirical Eq. 18 constant encodes.
#pragma once

#include <cstddef>
#include <vector>

#include "core/status.h"
#include "numeric/dense.h"

namespace dsmt::thermal {

/// Axis-aligned rectangle in cross-section coordinates [m]; x spans the
/// lateral direction, y the vertical (y = 0 is the substrate surface).
struct RectRegion {
  double x0 = 0.0, x1 = 0.0, y0 = 0.0, y1 = 0.0;
  double width() const { return x1 - x0; }
  double height() const { return y1 - y0; }
  double area() const { return width() * height(); }
};

/// Mesh-resolution controls. Cell sizes grade between `h_min` (inside and
/// near wires) and `h_max` (far field).
struct MeshOptions {
  double h_min = 0.02e-6;
  double h_max = 0.25e-6;
  double cg_rel_tol = 1e-9;
  int cg_max_iterations = 40000;
};

/// A heterogeneous cross-section with embedded heated wires.
class CrossSection2D {
 public:
  /// Domain [0, width] x [0, height] filled with `k_background` [W/m*K].
  CrossSection2D(double width, double height, double k_background);

  /// Paints a material rectangle (later calls override earlier ones).
  void add_material(const RectRegion& r, double k_thermal);
  /// Paints a full-width horizontal band (intra-level gap-fill layers).
  void add_band(double y0, double y1, double k_thermal);
  /// Registers a wire (also paints it with the metal conductivity).
  /// Returns the wire index used by solve()/coupling_matrix().
  /// k_metal [W/(m*K)].
  std::size_t add_wire(const RectRegion& r, double k_metal);

  std::size_t wire_count() const { return wires_.size(); }
  const RectRegion& wire(std::size_t i) const { return wires_.at(i); }

  /// Per-wire steady temperatures for the given per-unit-length powers [W/m].
  /// Temperatures are rises above the substrate boundary (Dirichlet 0).
  struct Solution {
    std::vector<double> wire_avg_rise;   ///< [K] area-averaged per wire
    std::vector<double> wire_peak_rise;  ///< [K] hottest cell per wire
    int cg_iterations = 0;
    bool converged = false;
    std::size_t unknowns = 0;
    core::SolverDiag diag;  ///< linear-solve history incl. recovery stages
  };
  Solution solve(const std::vector<double>& p_per_len,
                 const MeshOptions& mesh = {}) const;

  /// Coupling matrix Theta[i][j] = average rise of wire i per unit W/m in
  /// wire j [K*m/W]. Symmetric up to discretization error (reciprocity).
  numeric::Matrix coupling_matrix(const MeshOptions& mesh = {}) const;

 private:
  struct Paint {
    RectRegion r;
    double k;
  };

  struct Mesh;  // internal rectilinear mesh + assembled operator
  Mesh build_mesh(const MeshOptions& opts) const;

  double width_, height_, k_background_;
  std::vector<Paint> paints_;
  std::vector<RectRegion> wires_;
};

}  // namespace dsmt::thermal
