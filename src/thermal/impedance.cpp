#include "thermal/impedance.h"

#include <cmath>
#include <stdexcept>

namespace dsmt::thermal {

double effective_width(double w_m, double b, double phi) {
  if (w_m <= 0.0) throw std::invalid_argument("effective_width: W_m <= 0");
  if (b < 0.0) throw std::invalid_argument("effective_width: b < 0");
  return w_m + phi * b;
}

double rth_per_length(const tech::DielectricStack& stack, double w_eff) {
  if (w_eff <= 0.0) throw std::invalid_argument("rth_per_length: W_eff <= 0");
  return stack.series_resistance_term() / w_eff;
}

double rth_per_length_uniform(double b, double k_thermal, double w_eff) {
  if (w_eff <= 0.0 || k_thermal <= 0.0)
    throw std::invalid_argument("rth_per_length_uniform: bad parameters");
  return b / (k_thermal * w_eff);
}

double theta_line(const tech::DielectricStack& stack, double w_eff,
                  double length) {
  if (length <= 0.0) throw std::invalid_argument("theta_line: length <= 0");
  return rth_per_length(stack, w_eff) / length;
}

double delta_t_at(double j_rms, const materials::Metal& metal,
                  double t_metal_k, double w_m, double t_m,
                  double rth_per_len) {
  const double p_per_len =
      j_rms * j_rms * metal.resistivity(t_metal_k) * t_m * w_m;
  return p_per_len * rth_per_len;
}

SelfHeatingSolution solve_self_heating(double j_rms,
                                       const materials::Metal& metal,
                                       double w_m, double t_m,
                                       double rth_per_len, double t_ref_k) {
  // T = T_ref + A * rho_ref * (1 + tcr*(T - T_rho)), A = j^2 t W R'_th.
  const double a = j_rms * j_rms * t_m * w_m * rth_per_len;
  const double gain = a * metal.rho_ref * metal.tcr;
  SelfHeatingSolution sol;
  if (gain >= 1.0) {
    sol.runaway = true;
    sol.t_metal = metal.t_melt;
    sol.delta_t = metal.t_melt - t_ref_k;
    return sol;
  }
  const double rho_at_ref = metal.resistivity(t_ref_k);
  sol.delta_t = a * rho_at_ref / (1.0 - gain);
  sol.t_metal = t_ref_k + sol.delta_t;
  return sol;
}

double jrms_for_temperature(const materials::Metal& metal, double t_metal_k,
                            double t_ref_k, double w_m, double t_m,
                            double rth_per_len) {
  if (t_metal_k <= t_ref_k) return 0.0;
  const double denom =
      metal.resistivity(t_metal_k) * t_m * w_m * rth_per_len;
  if (denom <= 0.0)
    throw std::domain_error("jrms_for_temperature: degenerate geometry");
  return std::sqrt((t_metal_k - t_ref_k) / denom);
}

}  // namespace dsmt::thermal
