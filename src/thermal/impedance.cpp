#include "thermal/impedance.h"

#include <cmath>
#include <stdexcept>

namespace dsmt::thermal {

units::Metres effective_width(units::Metres w_m, units::Metres b, double phi) {
  if (w_m <= 0.0) throw std::invalid_argument("effective_width: W_m <= 0");
  if (b < 0.0) throw std::invalid_argument("effective_width: b < 0");
  return w_m + phi * b;
}

units::ThermalResistancePerLength rth_per_length(
    const tech::DielectricStack& stack, units::Metres w_eff) {
  if (w_eff <= 0.0) throw std::invalid_argument("rth_per_length: W_eff <= 0");
  return units::ThermalResistancePerLength{stack.series_resistance_term() /
                                           w_eff.value()};
}

units::ThermalResistancePerLength rth_per_length_uniform(
    units::Metres b, units::ThermalConductivity k_thermal,
    units::Metres w_eff) {
  if (w_eff <= 0.0 || k_thermal <= 0.0)
    throw std::invalid_argument("rth_per_length_uniform: bad parameters");
  return b / (k_thermal * w_eff);
}

double theta_line(const tech::DielectricStack& stack, units::Metres w_eff,
                  units::Metres length) {
  if (length <= 0.0) throw std::invalid_argument("theta_line: length <= 0");
  return rth_per_length(stack, w_eff) / length;
}

units::CelsiusDelta delta_t_at(units::CurrentDensity j_rms,
                               const materials::Metal& metal,
                               units::Kelvin t_metal, units::Metres w_m,
                               units::Metres t_m,
                               units::ThermalResistancePerLength rth_per_len) {
  const double p_per_len =
      j_rms * j_rms * metal.resistivity(t_metal) * t_m * w_m;
  return units::CelsiusDelta{p_per_len * rth_per_len.value()};
}

SelfHeatingSolution solve_self_heating(
    units::CurrentDensity j_rms, const materials::Metal& metal,
    units::Metres w_m, units::Metres t_m,
    units::ThermalResistancePerLength rth_per_len, units::Kelvin t_ref) {
  // T = T_ref + A * rho_ref * (1 + tcr*(T - T_rho)), A = j^2 t W R'_th.
  const double a = j_rms * j_rms * t_m * w_m * rth_per_len;
  const double gain = a * metal.rho_ref * metal.tcr;
  SelfHeatingSolution sol;
  if (gain >= 1.0) {
    sol.runaway = true;
    sol.t_metal = metal.t_melt;
    sol.delta_t = metal.t_melt - t_ref;
    return sol;
  }
  const double rho_at_ref = metal.resistivity(t_ref);
  sol.delta_t = units::CelsiusDelta{a * rho_at_ref / (1.0 - gain)};
  sol.t_metal = t_ref + sol.delta_t;
  return sol;
}

units::CurrentDensity jrms_for_temperature(
    const materials::Metal& metal, units::Kelvin t_metal, units::Kelvin t_ref,
    units::Metres w_m, units::Metres t_m,
    units::ThermalResistancePerLength rth_per_len) {
  if (t_metal <= t_ref) return units::CurrentDensity{};
  const double denom = metal.resistivity(t_metal) * t_m * w_m * rth_per_len;
  if (denom <= 0.0)
    throw std::domain_error("jrms_for_temperature: degenerate geometry");
  return A_per_m2(std::sqrt((t_metal - t_ref) / denom));
}

}  // namespace dsmt::thermal
