// Analytic self-heating models (paper Eqs. 8-11, 14, 15).
//
// A line of width W_m and thickness t_m carrying RMS current density j_rms
// dissipates P' = j_rms^2 * rho(T_m) * t_m * W_m watts per metre. The heat
// crosses the underlying dielectric stack through an effective width
//   W_eff = W_m + phi * b          (b = total underlying dielectric thickness)
// where phi = 0.88 is Bilotti's quasi-1D value (valid W_m/b > 0.4) and
// phi = 2.45 is the paper's quasi-2D value extracted from 0.25-um data.
// The per-unit-length thermal resistance of a layered stack is
//   R'_th = sum_i(t_i / K_i) / W_eff                     (generalizes Eq. 15)
// and the temperature rise is dT = P' * R'_th.
//
// Geometry, temperatures, and current densities are strong-typed
// (core/units.h); dimensionless shape factors stay raw doubles.
#pragma once

#include "core/units.h"
#include "materials/metal.h"
#include "tech/layer_stack.h"

namespace dsmt::thermal {

/// Bilotti quasi-1D heat-spreading parameter (paper Eq. 10) [1].
inline constexpr double kPhiQuasi1D = 0.88;
/// Quasi-2D heat-spreading parameter extracted by the paper (Eq. 14) [1].
inline constexpr double kPhiQuasi2D = 2.45;

/// W_eff = W_m + phi * b with shape factor phi [1]. Throws
/// std::invalid_argument on non-positive W_m.
units::Metres effective_width(units::Metres w_m, units::Metres b, double phi);

/// Per-unit-length thermal resistance of a layered stack under a line with
/// effective width `w_eff` (paper Eq. 15 generalized).
units::ThermalResistancePerLength rth_per_length(
    const tech::DielectricStack& stack, units::Metres w_eff);

/// Convenience: R'_th for a homogeneous dielectric of thickness b and
/// conductivity k under effective width w_eff — Eq. 10's b/(K_ox * W_eff).
units::ThermalResistancePerLength rth_per_length_uniform(
    units::Metres b, units::ThermalConductivity k_thermal,
    units::Metres w_eff);

/// Whole-line thermal impedance theta [K/W] for a line of length L (Eq. 8).
double theta_line(const tech::DielectricStack& stack, units::Metres w_eff,
                  units::Metres length);

/// Temperature rise for a given j_rms with resistivity evaluated at the
/// supplied metal temperature (one evaluation of Eq. 9/11; no
/// self-consistency).
units::CelsiusDelta delta_t_at(units::CurrentDensity j_rms,
                               const materials::Metal& metal,
                               units::Kelvin t_metal, units::Metres w_m,
                               units::Metres t_m,
                               units::ThermalResistancePerLength rth_per_len);

/// Result of the electro-thermal fixed point T = T_ref + dT(T).
struct SelfHeatingSolution {
  units::Kelvin t_metal{};
  units::CelsiusDelta delta_t{};
  bool runaway = false;  ///< true if positive feedback diverges
};

/// Solves T_m = T_ref + j_rms^2 * rho(T_m) * t_m * W_m * R'_th exactly
/// (rho is linear in T, so the fixed point is closed-form). Flags thermal
/// runaway when the loop gain reaches unity.
SelfHeatingSolution solve_self_heating(
    units::CurrentDensity j_rms, const materials::Metal& metal,
    units::Metres w_m, units::Metres t_m,
    units::ThermalResistancePerLength rth_per_len, units::Kelvin t_ref);

/// Inverse of Eq. 9: the j_rms that produces metal temperature `t_metal`
/// (resistivity evaluated at t_metal).
units::CurrentDensity jrms_for_temperature(
    const materials::Metal& metal, units::Kelvin t_metal, units::Kelvin t_ref,
    units::Metres w_m, units::Metres t_m,
    units::ThermalResistancePerLength rth_per_len);

}  // namespace dsmt::thermal
