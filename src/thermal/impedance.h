// Analytic self-heating models (paper Eqs. 8-11, 14, 15).
//
// A line of width W_m and thickness t_m carrying RMS current density j_rms
// dissipates P' = j_rms^2 * rho(T_m) * t_m * W_m watts per metre. The heat
// crosses the underlying dielectric stack through an effective width
//   W_eff = W_m + phi * b          (b = total underlying dielectric thickness)
// where phi = 0.88 is Bilotti's quasi-1D value (valid W_m/b > 0.4) and
// phi = 2.45 is the paper's quasi-2D value extracted from 0.25-um data.
// The per-unit-length thermal resistance of a layered stack is
//   R'_th = sum_i(t_i / K_i) / W_eff                     (generalizes Eq. 15)
// and the temperature rise is dT = P' * R'_th.
#pragma once

#include "materials/metal.h"
#include "tech/layer_stack.h"

namespace dsmt::thermal {

/// Bilotti quasi-1D heat-spreading parameter (paper Eq. 10).
inline constexpr double kPhiQuasi1D = 0.88;
/// Quasi-2D heat-spreading parameter extracted by the paper (Eq. 14).
inline constexpr double kPhiQuasi2D = 2.45;

/// W_eff = W_m + phi * b. Throws std::invalid_argument on non-positive W_m.
double effective_width(double w_m, double b, double phi);

/// Per-unit-length thermal resistance [K*m/W] of a layered stack under a
/// line with effective width `w_eff` (paper Eq. 15 generalized).
double rth_per_length(const tech::DielectricStack& stack, double w_eff);

/// Convenience: R'_th for a homogeneous dielectric of thickness b and
/// conductivity k under effective width w_eff — Eq. 10's b/(K_ox * W_eff).
double rth_per_length_uniform(double b, double k_thermal, double w_eff);

/// Whole-line thermal impedance theta [K/W] for a line of length L (Eq. 8).
double theta_line(const tech::DielectricStack& stack, double w_eff,
                  double length);

/// Temperature rise for a given j_rms with resistivity evaluated at the
/// supplied metal temperature (one evaluation of Eq. 9/11; no
/// self-consistency).
double delta_t_at(double j_rms, const materials::Metal& metal,
                  double t_metal_k, double w_m, double t_m,
                  double rth_per_len);

/// Result of the electro-thermal fixed point T = T_ref + dT(T).
struct SelfHeatingSolution {
  double t_metal = 0.0;   ///< [K]
  double delta_t = 0.0;   ///< [K]
  bool runaway = false;   ///< true if positive feedback diverges
};

/// Solves T_m = T_ref + j_rms^2 * rho(T_m) * t_m * W_m * R'_th exactly
/// (rho is linear in T, so the fixed point is closed-form). Flags thermal
/// runaway when the loop gain reaches unity.
SelfHeatingSolution solve_self_heating(double j_rms,
                                       const materials::Metal& metal,
                                       double w_m, double t_m,
                                       double rth_per_len, double t_ref_k);

/// Inverse of Eq. 9: the j_rms that produces metal temperature `t_metal`
/// (resistivity evaluated at t_metal).
double jrms_for_temperature(const materials::Metal& metal, double t_metal_k,
                            double t_ref_k, double w_m, double t_m,
                            double rth_per_len);

}  // namespace dsmt::thermal
