// Electrical thermometry — the measurement technique behind the paper's
// Fig. 5 data. A metal line is its own thermometer: with a known TCR,
//   R(P) = R_0 (1 + tcr * dT) = R_0 + R_0 tcr theta P
// so sweeping DC power P and fitting R vs P yields the thermal impedance
//   theta = slope / (R_0 * tcr).
// This module simulates the *procedure* (current sweep, resistance
// readback, optional instrument noise) and performs the extraction, so the
// Fig. 5 pipeline can be exercised end to end, including its robustness to
// measurement error.
#pragma once

#include <vector>

#include "materials/metal.h"
#include "core/units.h"

namespace dsmt::thermal {

/// The line under test.
struct ThermometrySetup {
  materials::Metal metal;
  double w_m = 0.0;         ///< width [m]
  double t_m = 0.0;         ///< thickness [m]
  double length = 0.0;      ///< [m]
  double rth_per_len = 0.0; ///< true vertical thermal resistance [K*m/W]
  double t_chuck = kTrefK;  ///< stage/chuck temperature [K]
};

/// One sweep point.
struct ThermometryPoint {
  double current = 0.0;      ///< forced DC current [A]
  double power = 0.0;        ///< dissipated power [W]
  double resistance = 0.0;   ///< measured line resistance [Ohm]
  double temperature = 0.0;  ///< actual line temperature [K] (ground truth)
};

/// Simulates a DC current sweep. Each point solves the electro-thermal
/// fixed point exactly (resistance rises with the temperature it causes).
/// `noise_fraction` adds deterministic pseudo-random multiplicative noise
/// (seeded) to the resistance readings to emulate instrument error.
std::vector<ThermometryPoint> simulate_sweep(const ThermometrySetup& setup,
                                             double i_max, int points,
                                             double noise_fraction = 0.0,
                                             unsigned seed = 42);

/// Extraction result.
struct ThermometryExtraction {
  double r0 = 0.0;             ///< zero-power resistance [Ohm]
  double theta = 0.0;          ///< extracted thermal impedance [K/W]
  double rth_per_len = 0.0;    ///< theta * length [K*m/W]
  double fit_r_squared = 0.0;  ///< quality of the R-vs-P line
};

/// Fits R vs P and converts the slope to theta using the metal's TCR.
ThermometryExtraction extract_theta(const ThermometrySetup& setup,
                                    const std::vector<ThermometryPoint>& sweep);

}  // namespace dsmt::thermal
