// 1-D finite-difference solvers along the length of a line.
//
// Steady solver: validates/extends the analytic healing-length profile
// (healing.h) for lines with temperature-dependent resistivity and
// non-uniform geometry. Transient solver: temperature evolution under a
// time-dependent current with axial conduction and vertical loss — the
// distributed companion to the lumped ESD model (transient.h).
#pragma once

#include <functional>
#include <vector>

#include "core/status.h"
#include "core/units.h"
#include "materials/metal.h"

namespace dsmt::thermal {

/// Inputs common to the 1-D line solvers. The line spans [0, length]; both
/// ends are clamped at `t_end` (via/contact heat sinks).
struct Line1DSpec {
  materials::Metal metal;
  double w_m = 0.0;           ///< width [m]
  double t_m = 0.0;           ///< thickness [m]
  double length = 0.0;        ///< [m]
  double rth_per_len = 0.0;   ///< vertical K*m/W (impedance.h)
  double t_ref = kTrefK;      ///< ambient / substrate [K]
  double t_end = kTrefK;      ///< end-clamp temperature [K]
  int nodes = 201;            ///< FD nodes including ends
};

/// Steady profile under constant current density j (A/m^2), with
/// rho = rho(T) handled by Picard iteration on the linearized system.
struct Steady1DResult {
  std::vector<double> x;  ///< node positions [m]
  std::vector<double> t;  ///< temperatures [K]
  double t_peak = 0.0;
  double t_avg = 0.0;
  int picard_iterations = 0;
  bool converged = false;
  core::SolverDiag diag;  ///< Picard-iteration history
};
/// j_density [A/m^2].
Steady1DResult solve_steady_line(const Line1DSpec& spec, double j_density);

/// Transient evolution under a current-density waveform j(t). Explicit in
/// the Joule term, implicit (backward Euler + Thomas solve) in conduction.
/// Calls `observer(t, T)` after each accepted step when provided.
struct Transient1DResult {
  std::vector<double> time;    ///< accepted step times [s]
  std::vector<double> t_peak;  ///< mid/maximum temperature at each time [K]
  std::vector<double> final_profile;  ///< T(x) at t_end [K]
  std::vector<double> x;
  bool melted = false;         ///< any node reached the metal melting point
  double melt_time = -1.0;     ///< first time a node melted [s], -1 if none
};
Transient1DResult solve_transient_line(
    const Line1DSpec& spec, const std::function<double(double)>& j_of_t,
    double t_final, int steps);

}  // namespace dsmt::thermal
