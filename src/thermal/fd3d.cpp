#include "thermal/fd3d.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "numeric/mesh.h"
#include "numeric/sparse.h"
#include "parallel/parallel_for.h"

namespace dsmt::thermal {

Volume3D::Volume3D(double lx, double ly, double lz, double k_background)
    : lx_(lx), ly_(ly), lz_(lz), k_background_(k_background) {
  if (lx <= 0 || ly <= 0 || lz <= 0 || k_background <= 0)
    throw std::invalid_argument("Volume3D: bad domain");
}

void Volume3D::add_material(const Box& b, double k_thermal) {
  if (k_thermal <= 0) throw std::invalid_argument("add_material: k <= 0");
  if (b.volume() <= 0) throw std::invalid_argument("add_material: empty box");
  paints_.push_back({b, k_thermal});
}

void Volume3D::add_slab(double z0, double z1, double k_thermal) {
  add_material({0, lx_, 0, ly_, z0, z1}, k_thermal);
}

std::size_t Volume3D::add_wire(const Box& b, double k_metal) {
  add_material(b, k_metal);
  wires_.push_back(b);
  return wires_.size() - 1;
}

Volume3D::Solution Volume3D::solve(const std::vector<double>& watts,
                                   const Mesh3DOptions& opts) const {
  if (watts.size() != wires_.size())
    throw std::invalid_argument("Volume3D::solve: power vector size");

  std::set<double> xb, yb, zb;
  for (const auto& p : paints_) {
    xb.insert(std::clamp(p.b.x0, 0.0, lx_));
    xb.insert(std::clamp(p.b.x1, 0.0, lx_));
    yb.insert(std::clamp(p.b.y0, 0.0, ly_));
    yb.insert(std::clamp(p.b.y1, 0.0, ly_));
    zb.insert(std::clamp(p.b.z0, 0.0, lz_));
    zb.insert(std::clamp(p.b.z1, 0.0, lz_));
  }
  const auto xe = numeric::graded_axis(xb, 0.0, lx_, opts.h_min, opts.h_max);
  const auto ye = numeric::graded_axis(yb, 0.0, ly_, opts.h_min, opts.h_max);
  const auto ze = numeric::graded_axis(zb, 0.0, lz_, opts.h_min, opts.h_max);
  const auto xc = numeric::axis_cells(xe);
  const auto yc = numeric::axis_cells(ye);
  const auto zc = numeric::axis_cells(ze);
  const std::size_t nx = xc.center.size(), ny = yc.center.size(),
                    nz = zc.center.size();
  auto cell = [&](std::size_t i, std::size_t j, std::size_t k) {
    return (k * ny + j) * nx + i;
  };
  const std::size_t n_cells = nx * ny * nz;

  // Conductivity per voxel. Paints stay serial (their order is the override
  // rule); each paint's z-slice sweep is parallel over disjoint voxels.
  std::vector<float> kv(n_cells, static_cast<float>(k_background_));
  for (const auto& p : paints_) {
    parallel::parallel_for(nz, [&](std::size_t k) {
      if (zc.center[k] < p.b.z0 || zc.center[k] > p.b.z1) return;
      for (std::size_t j = 0; j < ny; ++j) {
        if (yc.center[j] < p.b.y0 || yc.center[j] > p.b.y1) continue;
        for (std::size_t i = 0; i < nx; ++i) {
          if (xc.center[i] < p.b.x0 || xc.center[i] > p.b.x1) continue;
          kv[cell(i, j, k)] = static_cast<float>(p.k);
        }
      }
    });
  }

  // Wire voxel lists: one task per wire, each scanning in slice order so
  // the voxel ordering (and hence the volume sum) matches the serial build.
  std::vector<std::vector<std::size_t>> wire_cells(wires_.size());
  std::vector<double> wire_vol(wires_.size(), 0.0);
  parallel::parallel_for(wires_.size(), [&](std::size_t w) {
    const auto& b = wires_[w];
    for (std::size_t k = 0; k < nz; ++k) {
      if (zc.center[k] < b.z0 || zc.center[k] > b.z1) continue;
      for (std::size_t j = 0; j < ny; ++j) {
        if (yc.center[j] < b.y0 || yc.center[j] > b.y1) continue;
        for (std::size_t i = 0; i < nx; ++i) {
          if (xc.center[i] < b.x0 || xc.center[i] > b.x1) continue;
          wire_cells[w].push_back(cell(i, j, k));
          wire_vol[w] += xc.size[i] * yc.size[j] * zc.size[k];
        }
      }
    }
    if (wire_cells[w].empty())
      throw std::runtime_error("Volume3D: wire not resolved by mesh");
  });

  // Unknowns: everything above the substrate plane (k = 0 row Dirichlet 0).
  std::vector<int> unk(n_cells, -1);
  std::size_t n_unk = 0;
  for (std::size_t k = 1; k < nz; ++k)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t i = 0; i < nx; ++i)
        unk[cell(i, j, k)] = static_cast<int>(n_unk++);

  numeric::SparseBuilder builder(n_unk);
  auto face_g = [&](std::size_t c1, std::size_t c2, double w1, double w2,
                    double area) {
    return area / (0.5 * w1 / kv[c1] + 0.5 * w2 / kv[c2]);
  };
  for (std::size_t k = 1; k < nz; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t c = cell(i, j, k);
        const int row = unk[c];
        double diag = 0.0;
        auto couple = [&](std::size_t cn, double g) {
          diag += g;
          if (unk[cn] >= 0) builder.add(row, unk[cn], -g);
          // else: substrate plane, contributes only to the diagonal.
        };
        if (i > 0)
          couple(cell(i - 1, j, k), face_g(c, cell(i - 1, j, k), xc.size[i],
                                           xc.size[i - 1],
                                           yc.size[j] * zc.size[k]));
        if (i + 1 < nx)
          couple(cell(i + 1, j, k), face_g(c, cell(i + 1, j, k), xc.size[i],
                                           xc.size[i + 1],
                                           yc.size[j] * zc.size[k]));
        if (j > 0)
          couple(cell(i, j - 1, k), face_g(c, cell(i, j - 1, k), yc.size[j],
                                           yc.size[j - 1],
                                           xc.size[i] * zc.size[k]));
        if (j + 1 < ny)
          couple(cell(i, j + 1, k), face_g(c, cell(i, j + 1, k), yc.size[j],
                                           yc.size[j + 1],
                                           xc.size[i] * zc.size[k]));
        couple(cell(i, j, k - 1),
               face_g(c, cell(i, j, k - 1), zc.size[k], zc.size[k - 1],
                      xc.size[i] * yc.size[j]));
        if (k + 1 < nz)
          couple(cell(i, j, k + 1), face_g(c, cell(i, j, k + 1), zc.size[k],
                                           zc.size[k + 1],
                                           xc.size[i] * yc.size[j]));
        builder.add(row, row, diag);
      }
    }
  }
  const numeric::CsrMatrix a(builder);

  std::vector<double> rhs(n_unk, 0.0);
  for (std::size_t w = 0; w < wires_.size(); ++w) {
    if (watts[w] == 0.0) continue;
    const double q = watts[w] / wire_vol[w];
    for (std::size_t c : wire_cells[w]) {
      const std::size_t i = c % nx;
      const std::size_t j = (c / nx) % ny;
      const std::size_t k = c / (nx * ny);
      if (unk[c] >= 0)
        rhs[unk[c]] += q * xc.size[i] * yc.size[j] * zc.size[k];
    }
  }

  std::vector<double> x(n_unk, 0.0);
  Solution sol;
  sol.diag.kernel = "thermal/fd3d";
  const auto cg = numeric::conjugate_gradient_robust(
      a, rhs, x, {opts.cg_rel_tol, opts.cg_max_iterations}, sol.diag);

  sol.unknowns = n_unk;
  sol.cg_iterations = cg.iterations;
  sol.converged = cg.ok();
  sol.wire_avg_rise.resize(wires_.size());
  sol.wire_peak_rise.resize(wires_.size());
  for (std::size_t w = 0; w < wires_.size(); ++w) {
    double acc = 0.0, peak = 0.0;
    for (std::size_t c : wire_cells[w]) {
      const std::size_t i = c % nx;
      const std::size_t j = (c / nx) % ny;
      const std::size_t k = c / (nx * ny);
      const double t = unk[c] >= 0 ? x[unk[c]] : 0.0;
      acc += t * xc.size[i] * yc.size[j] * zc.size[k];
      peak = std::max(peak, t);
    }
    sol.wire_avg_rise[w] = acc / wire_vol[w];
    sol.wire_peak_rise[w] = peak;
  }
  return sol;
}

std::size_t Array3D::center_wire(int level) const {
  int max_index = -1;
  for (const auto& w : wires)
    if (w.level == level) max_index = std::max(max_index, w.index);
  if (max_index < 0)
    throw std::out_of_range("Array3D::center_wire: no such level");
  for (const auto& w : wires)
    if (w.level == level && w.index == max_index / 2) return w.id;
  throw std::logic_error("Array3D::center_wire: center missing");
}

Array3D make_array_3d(const Array3DSpec& spec) {
  if (spec.lines_per_level < 1)
    throw std::invalid_argument("Array3DSpec: lines_per_level < 1");
  const auto& tech = spec.technology;

  double widest = 0.0, stack_top = 0.0;
  for (const auto& l : tech.layers) {
    if (l.level > spec.max_level) continue;
    widest = std::max(widest, spec.lines_per_level * l.pitch);
    stack_top += l.ild_below + l.thickness;
  }
  const double lxy = widest + 2.0 * spec.margin;
  const double lz = stack_top + spec.cap_above;

  Array3D arr{Volume3D(lxy, lxy, lz, tech.ild.k_thermal), {}};

  double z = 0.0;
  for (const auto& l : tech.layers) {
    if (l.level > spec.max_level) break;
    z += l.ild_below;
    arr.volume.add_slab(z, z + l.thickness, spec.gap_fill.k_thermal);
    const bool along_x = (l.level % 2 == 1);  // odd levels route in x
    const double span = spec.lines_per_level * l.pitch;
    const double start = 0.5 * (lxy - span) + 0.5 * (l.pitch - l.width);
    for (int i = 0; i < spec.lines_per_level; ++i) {
      const double c0 = start + i * l.pitch;
      Box b;
      if (along_x) {
        b = {0.0, lxy, c0, c0 + l.width, z, z + l.thickness};
      } else {
        b = {c0, c0 + l.width, 0.0, lxy, z, z + l.thickness};
      }
      const std::size_t id = arr.volume.add_wire(b, tech.metal.k_thermal);
      arr.wires.push_back({l.level, i, id, lxy});
    }
    z += l.thickness;
  }
  return arr;
}

Array3DHeating array3d_heating_coefficients(const Array3D& arr, int level,
                                            const Mesh3DOptions& opts) {
  const std::size_t victim = arr.center_wire(level);
  const std::size_t n = arr.volume.wire_count();

  // Equal j in every wire: P_w = j^2 rho A_w L_w; probe with unit j^2 rho.
  std::vector<double> p_all(n, 0.0);
  for (const auto& w : arr.wires) {
    const auto& b = arr.volume.wire(w.id);
    p_all[w.id] = b.volume();  // A_w * L_w
  }
  const auto sol_all = arr.volume.solve(p_all, opts);

  std::vector<double> p_iso(n, 0.0);
  p_iso[victim] = arr.volume.wire(victim).volume();
  const auto sol_iso = arr.volume.solve(p_iso, opts);

  if (!sol_all.diag.ok() || !sol_iso.diag.ok()) {
    core::SolverDiag diag = sol_all.diag.ok() ? sol_iso.diag : sol_all.diag;
    diag.add_context("array3d_heating_coefficients");
    throw SolveError("array3d_heating_coefficients: CG failed", diag);
  }
  return {sol_all.wire_avg_rise[victim], sol_iso.wire_avg_rise[victim]};
}

}  // namespace dsmt::thermal
