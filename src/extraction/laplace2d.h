// 2-D electrostatic field solver for capacitance extraction — the
// field-solver cross-check for the compact models in capmodel.h and the
// in-house substitute for the SPACE3D extraction the paper used.
//
// Solves div(eps grad V) = 0 on a rectilinear finite-volume mesh with
// embedded ideal conductors (internal Dirichlet regions) and a grounded
// bottom plane. The Maxwell capacitance matrix column for conductor j is
// obtained by setting V_j = 1 V, all others 0, and integrating the flux
// into each conductor.
#pragma once

#include <cstddef>
#include <vector>

#include "numeric/dense.h"
#include "thermal/fd2d.h"  // reuses RectRegion and MeshOptions

namespace dsmt::extraction {

using thermal::MeshOptions;
using thermal::RectRegion;

class CapExtractor {
 public:
  /// Domain [0,width]x[0,height] with background permittivity k_background
  /// (relative). The bottom edge (y = 0) is a grounded plane; other outer
  /// boundaries are Neumann (zero normal field).
  /// width, height [m]; k_background [1].
  CapExtractor(double width, double height, double k_background);

  /// Paints a dielectric rectangle (later overrides earlier).
  /// k_rel [1].
  void add_dielectric(const RectRegion& r, double k_rel);
  /// Adds an ideal conductor; returns its index.
  std::size_t add_conductor(const RectRegion& r);

  std::size_t conductor_count() const { return conductors_.size(); }

  /// Full Maxwell capacitance matrix [F/m]: C(i,j) = charge on conductor i
  /// with V_j = 1, others grounded. Diagonal positive, off-diagonal
  /// negative; -C(i,j) is the usual coupling capacitance.
  numeric::Matrix capacitance_matrix(const MeshOptions& mesh = {}) const;

  /// Total capacitance of conductor j (to ground + all others) = C(j,j).
  double total_capacitance(std::size_t j, const MeshOptions& mesh = {}) const;

 private:
  double width_, height_, k_background_;
  struct Paint {
    RectRegion r;
    double k;
  };
  std::vector<Paint> paints_;
  std::vector<RectRegion> conductors_;
};

}  // namespace dsmt::extraction
