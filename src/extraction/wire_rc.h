// Per-unit-length wire parasitics for a technology level — the `r` and `c`
// consumed by the repeater optimizer (paper Eqs. 16-17).
#pragma once

#include "extraction/capmodel.h"
#include "tech/technology.h"

namespace dsmt::extraction {

/// Distributed parasitics of a minimum-pitch wire on a level.
struct WireRC {
  double r_per_m = 0.0;        ///< [Ohm/m] at the evaluation temperature
  double c_per_m = 0.0;        ///< total [F/m] (ground + both neighbors)
  double c_ground_per_m = 0.0; ///< [F/m]
  double c_coupling_per_m = 0.0;  ///< to ONE neighbor [F/m]
};

/// Extracts r and c for the level's default width/pitch, with a homogeneous
/// insulator of relative permittivity `k_rel` (the paper's Tables 5-6 use
/// k = 4.0 for 0.25 um oxide and k = 2.0 for the 0.1 um low-k case). The
/// capacitance ground plane is the metal level below (distance = ild_below);
/// resistance is evaluated at `temperature_k`. Miller factor 1 (quiet
/// neighbors) is used for the delay-optimal c; crosstalk studies can rescale
/// with BusCapacitance::total.
WireRC extract_wire_rc(const tech::Technology& technology, int level,
                       double k_rel, double temperature_k);

}  // namespace dsmt::extraction
