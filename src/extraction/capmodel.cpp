#include "extraction/capmodel.h"

#include <cmath>
#include <stdexcept>

#include "numeric/constants.h"

namespace dsmt::extraction {

namespace {
void check_positive(double v, const char* what) {
  if (v <= 0.0)
    throw std::invalid_argument(std::string("capmodel: non-positive ") + what);
}
}  // namespace

double cap_ground_single(double width, double thickness, double height,
                         double k_rel) {
  check_positive(width, "width");
  check_positive(thickness, "thickness");
  check_positive(height, "height");
  check_positive(k_rel, "k_rel");
  const double eps = k_rel * kEpsilon0;
  return eps * (1.15 * (width / height) +
                2.80 * std::pow(thickness / height, 0.222));
}

double cap_coupling(double width, double thickness, double height,
                    double spacing, double k_rel) {
  check_positive(width, "width");
  check_positive(thickness, "thickness");
  check_positive(height, "height");
  check_positive(spacing, "spacing");
  check_positive(k_rel, "k_rel");
  const double eps = k_rel * kEpsilon0;
  const double term = 0.03 * (width / height) + 0.83 * (thickness / height) -
                      0.07 * std::pow(thickness / height, 0.222);
  const double value = eps * term * std::pow(spacing / height, -1.34);
  return std::max(value, 0.0);
}

BusCapacitance cap_bus(double width, double thickness, double height,
                       double spacing, double k_rel) {
  BusCapacitance c;
  c.c_ground = cap_ground_single(width, thickness, height, k_rel);
  c.c_coupling = cap_coupling(width, thickness, height, spacing, k_rel);
  return c;
}

double cap_parallel_plate(double width, double height, double k_rel) {
  check_positive(width, "width");
  check_positive(height, "height");
  check_positive(k_rel, "k_rel");
  return k_rel * kEpsilon0 * width / height;
}

double wire_inductance_per_m(double width, double thickness, double height) {
  check_positive(width, "width");
  check_positive(thickness, "thickness");
  check_positive(height, "height");
  constexpr double mu0_over_2pi = 2.0e-7;  // H/m
  const double w_eff = width + thickness;
  return mu0_over_2pi *
         std::log(8.0 * height / w_eff + w_eff / (4.0 * height));
}

}  // namespace dsmt::extraction
