#include "extraction/wire_rc.h"

namespace dsmt::extraction {

WireRC extract_wire_rc(const tech::Technology& technology, int level,
                       double k_rel, double temperature_k) {
  const auto& layer = technology.layer(level);
  WireRC rc;
  rc.r_per_m =
      technology.wire_resistance_per_m(level, layer.width, temperature_k);
  const auto bus = cap_bus(layer.width, layer.thickness, layer.ild_below,
                           layer.spacing(), k_rel);
  rc.c_ground_per_m = bus.c_ground;
  rc.c_coupling_per_m = bus.c_coupling;
  rc.c_per_m = bus.total(1.0);
  return rc;
}

}  // namespace dsmt::extraction
