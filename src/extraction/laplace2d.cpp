#include "extraction/laplace2d.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "numeric/constants.h"
#include "numeric/mesh.h"
#include "numeric/sparse.h"

namespace dsmt::extraction {

CapExtractor::CapExtractor(double width, double height, double k_background)
    : width_(width), height_(height), k_background_(k_background) {
  if (width <= 0 || height <= 0 || k_background <= 0)
    throw std::invalid_argument("CapExtractor: bad domain");
}

void CapExtractor::add_dielectric(const RectRegion& r, double k_rel) {
  if (k_rel <= 0) throw std::invalid_argument("add_dielectric: k <= 0");
  paints_.push_back({r, k_rel});
}

std::size_t CapExtractor::add_conductor(const RectRegion& r) {
  if (r.width() <= 0 || r.height() <= 0)
    throw std::invalid_argument("add_conductor: empty region");
  conductors_.push_back(r);
  return conductors_.size() - 1;
}

numeric::Matrix CapExtractor::capacitance_matrix(
    const MeshOptions& opts) const {
  const std::size_t nc = conductors_.size();
  if (nc == 0) throw std::logic_error("CapExtractor: no conductors");

  // Mesh.
  std::set<double> xb, yb;
  for (const auto& p : paints_) {
    xb.insert(std::clamp(p.r.x0, 0.0, width_));
    xb.insert(std::clamp(p.r.x1, 0.0, width_));
    yb.insert(std::clamp(p.r.y0, 0.0, height_));
    yb.insert(std::clamp(p.r.y1, 0.0, height_));
  }
  for (const auto& c : conductors_) {
    xb.insert(c.x0);
    xb.insert(c.x1);
    yb.insert(c.y0);
    yb.insert(c.y1);
  }
  const auto xe = numeric::graded_axis(xb, 0.0, width_, opts.h_min, opts.h_max);
  const auto ye = numeric::graded_axis(yb, 0.0, height_, opts.h_min, opts.h_max);
  const std::size_t nx = xe.size() - 1, ny = ye.size() - 1;
  std::vector<double> xc(nx), dx(nx), yc(ny), dy(ny);
  for (std::size_t i = 0; i < nx; ++i) {
    dx[i] = xe[i + 1] - xe[i];
    xc[i] = 0.5 * (xe[i] + xe[i + 1]);
  }
  for (std::size_t j = 0; j < ny; ++j) {
    dy[j] = ye[j + 1] - ye[j];
    yc[j] = 0.5 * (ye[j] + ye[j + 1]);
  }
  auto cell = [nx](std::size_t i, std::size_t j) { return j * nx + i; };

  // Permittivity per cell (relative; eps0 applied at the end).
  std::vector<double> eps(nx * ny, k_background_);
  for (const auto& p : paints_)
    for (std::size_t j = 0; j < ny; ++j) {
      if (yc[j] < p.r.y0 || yc[j] > p.r.y1) continue;
      for (std::size_t i = 0; i < nx; ++i)
        if (xc[i] >= p.r.x0 && xc[i] <= p.r.x1) eps[cell(i, j)] = p.k;
    }

  // Conductor ownership per cell: -1 free, else conductor index.
  std::vector<int> owner(nx * ny, -1);
  for (std::size_t c = 0; c < nc; ++c) {
    const auto& r = conductors_[c];
    bool hit = false;
    for (std::size_t j = 0; j < ny; ++j) {
      if (yc[j] < r.y0 || yc[j] > r.y1) continue;
      for (std::size_t i = 0; i < nx; ++i)
        if (xc[i] >= r.x0 && xc[i] <= r.x1) {
          owner[cell(i, j)] = static_cast<int>(c);
          hit = true;
        }
    }
    if (!hit) throw std::runtime_error("CapExtractor: conductor unresolved");
  }

  // Unknowns: free cells above the grounded bottom row.
  std::vector<int> unk(nx * ny, -1);
  std::size_t n_unk = 0;
  for (std::size_t j = 1; j < ny; ++j)
    for (std::size_t i = 0; i < nx; ++i) {
      const std::size_t c = cell(i, j);
      if (owner[c] < 0) unk[c] = static_cast<int>(n_unk++);
    }

  auto face_g = [&](std::size_t c1, std::size_t c2, double w1, double w2,
                    double area) {
    return area / (0.5 * w1 / eps[c1] + 0.5 * w2 / eps[c2]);
  };

  // Assemble once; RHS changes with the energized conductor.
  numeric::SparseBuilder builder(n_unk);
  // For the RHS we record, per unknown, its conductances to each conductor.
  std::vector<std::vector<std::pair<int, double>>> cond_links(n_unk);

  for (std::size_t j = 1; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const std::size_t c = cell(i, j);
      const int row = unk[c];
      if (row < 0) continue;
      double diag = 0.0;
      auto couple = [&](std::size_t cn, double g) {
        diag += g;
        if (unk[cn] >= 0) {
          builder.add(row, unk[cn], -g);
        } else if (owner[cn] >= 0) {
          cond_links[row].push_back({owner[cn], g});
        }
        // else: grounded bottom row — g contributes to diagonal only.
      };
      if (i > 0) couple(cell(i - 1, j), face_g(c, cell(i - 1, j), dx[i], dx[i - 1], dy[j]));
      if (i + 1 < nx) couple(cell(i + 1, j), face_g(c, cell(i + 1, j), dx[i], dx[i + 1], dy[j]));
      couple(cell(i, j - 1), face_g(c, cell(i, j - 1), dy[j], dy[j - 1], dx[i]));
      if (j + 1 < ny) couple(cell(i, j + 1), face_g(c, cell(i, j + 1), dy[j], dy[j + 1], dx[i]));
      builder.add(row, row, diag);
    }
  }
  const numeric::CsrMatrix a(builder);

  // Precompute, for every conductor i, the list of (free-cell unknown, g)
  // faces — needed for charge integration.
  // cond_links already maps unknown -> (conductor, g); invert it.
  std::vector<std::vector<std::pair<int, double>>> flux_faces(nc);
  for (std::size_t u = 0; u < n_unk; ++u)
    for (const auto& [ci, g] : cond_links[u])
      flux_faces[ci].push_back({static_cast<int>(u), g});

  // Conductor-to-ground and conductor-to-conductor direct faces: if two
  // conductor cells touch, the ideal conductors short — assume geometries
  // do not overlap. Direct conductor-to-bottom faces contribute to charge
  // when the conductor touches y=0 region; our conductors float above, so
  // we ignore that case.

  numeric::Matrix cap(nc, nc, 0.0);
  for (std::size_t energized = 0; energized < nc; ++energized) {
    std::vector<double> rhs(n_unk, 0.0);
    for (std::size_t u = 0; u < n_unk; ++u)
      for (const auto& [ci, g] : cond_links[u])
        if (ci == static_cast<int>(energized)) rhs[u] += g;  // V = 1

    std::vector<double> v(n_unk, 0.0);
    core::SolverDiag diag;
    diag.kernel = "extraction/laplace2d";
    const auto cg = numeric::conjugate_gradient_robust(
        a, rhs, v, {opts.cg_rel_tol, opts.cg_max_iterations}, diag);
    if (!cg.ok()) {
      diag.add_context("CapExtractor::capacitance_matrix");
      throw SolveError("CapExtractor: CG did not converge", diag);
    }

    for (std::size_t ci = 0; ci < nc; ++ci) {
      const double v_cond = (ci == energized) ? 1.0 : 0.0;
      double q = 0.0;
      for (const auto& [u, g] : flux_faces[ci]) q += g * (v_cond - v[u]);
      cap(ci, energized) = q * kEpsilon0;
    }
  }
  return cap;
}

double CapExtractor::total_capacitance(std::size_t j,
                                       const MeshOptions& mesh) const {
  const auto c = capacitance_matrix(mesh);
  return c(j, j);
}

}  // namespace dsmt::extraction
