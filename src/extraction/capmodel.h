// Compact per-unit-length capacitance models for VLSI interconnects.
//
// Implements Sakurai's closed-form coupled-line expressions (T. Sakurai,
// "Closed-form expressions for interconnection delay, coupling, and
// crosstalk in VLSIs", IEEE TED 40(1), 1993):
//   C_ground/eps   = 1.15 (W/h) + 2.80 (t/h)^0.222
//   C_coupling/eps = [0.03 (W/h) + 0.83 (t/h) - 0.07 (t/h)^0.222] (s/h)^-1.34
// where W = width, t = thickness, h = height above the ground plane and
// s = edge-to-edge spacing, eps = k_rel * eps0.
//
// These are the paper's SPACE3D substitute for computing the distributed
// line capacitance `c` in the repeater optimization (Eqs. 16-17); the 2-D
// Laplace extractor (laplace2d.h) provides the field-solver cross-check.
#pragma once

namespace dsmt::extraction {

/// Single line over a ground plane (Sakurai-Tamaru), [F/m].
double cap_ground_single(double width, double thickness, double height,
                         double k_rel);

/// Per-neighbor coupling capacitance of coupled lines, [F/m].
double cap_coupling(double width, double thickness, double height,
                    double spacing, double k_rel);

/// Components of the total capacitance of the center line of a 3-line bus
/// over a ground plane.
struct BusCapacitance {
  double c_ground = 0.0;    ///< to the plane below [F/m]
  double c_coupling = 0.0;  ///< to ONE neighbor [F/m]
  /// Effective switching capacitance with Miller factor `mcf` on both
  /// neighbors (1 = quiet neighbors, 2 = worst-case opposite switching).
  double total(double mcf = 1.0) const {
    return c_ground + 2.0 * mcf * c_coupling;
  }
};

/// Sakurai model for the center line of a bus at pitch = width + spacing.
/// width, thickness, height, spacing [m]; k_rel [1].
BusCapacitance cap_bus(double width, double thickness, double height,
                       double spacing, double k_rel);

/// Parallel-plate limit (sanity reference): eps * W / h.
/// width, height [m]; k_rel [1]; result [F/m].
double cap_parallel_plate(double width, double height, double k_rel);

/// Per-unit-length self-inductance of a wire over a ground plane
/// (microstrip approximation):
///   L' = (mu0 / 2pi) ln(8h/w_eff + w_eff/(4h)),  w_eff = w + t.
/// Used to test whether the paper's RC-only treatment of global lines is
/// justified (see bench_ablation_inductance).
/// width, thickness, height [m]; result [H/m].
double wire_inductance_per_m(double width, double thickness, double height);

}  // namespace dsmt::extraction
