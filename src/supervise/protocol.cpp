#include "supervise/protocol.h"

#include <cstring>

#include "cache/fnv.h"
#include "net/wire.h"

namespace dsmt::supervise {

namespace {

void put_u64_be(std::string& out, std::uint64_t value) {
  for (int shift = 56; shift >= 0; shift -= 8)
    out.push_back(static_cast<char>((value >> shift) & 0xffu));
}

std::uint64_t get_u64_be(const char* data) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < kSeqPrefixBytes; ++i)
    value = (value << 8) | static_cast<unsigned char>(data[i]);
  return value;
}

}  // namespace

std::uint64_t canonical_request_hash(const service::Request& request) {
  const std::string canonical =
      service::request_to_json(request).dump(-1);
  // FNV-1a over the full canonical serialization, from the one shared
  // primitive (cache/fnv.h). kCanonicalBasis is this function's historical
  // basis, frozen there: changing it would invalidate every quarantine
  // table and cache segment stamped by earlier binaries.
  return cache::fnv1a(canonical, cache::kCanonicalBasis);
}

std::string encode_request_message(std::uint64_t seq,
                                   const service::Request& request) {
  std::string out;
  put_u64_be(out, seq);
  out += net::encode_frame(service::request_to_json(request).dump(-1));
  return out;
}

std::string encode_response_message(std::uint64_t seq,
                                    const service::Response& response) {
  std::string out;
  put_u64_be(out, seq);
  out += net::encode_frame(service::response_to_json(response).dump(-1));
  return out;
}

bool split_message(const char* data, std::size_t size,
                   std::size_t max_payload_bytes, std::uint64_t& seq,
                   std::string& frame) {
  if (size < kSeqPrefixBytes + net::kFrameHeaderBytes) return false;
  seq = get_u64_be(data);
  const char* header = data + kSeqPrefixBytes;
  if (std::memcmp(header, net::kFrameMagic, sizeof net::kFrameMagic) != 0)
    return false;
  std::uint64_t declared = 0;
  for (std::size_t i = 4; i < net::kFrameHeaderBytes; ++i)
    declared = (declared << 8) | static_cast<unsigned char>(header[i]);
  if (declared > max_payload_bytes) return false;
  // SEQPACKET preserves message boundaries, so the declared length must
  // account for exactly the rest of the datagram — anything else is a
  // protocol violation, not a short read.
  if (size - kSeqPrefixBytes - net::kFrameHeaderBytes != declared)
    return false;
  frame.assign(header, net::kFrameHeaderBytes + declared);
  return true;
}

std::string frame_payload(const std::string& frame) {
  if (frame.size() < net::kFrameHeaderBytes) return std::string{};
  return frame.substr(net::kFrameHeaderBytes);
}

}  // namespace dsmt::supervise
