#include "supervise/pool.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <exception>
#include <string>
#include <thread>
#include <utility>

#include "cache/response.h"
#include "core/run_context.h"
#include "core/signoff.h"
#include "core/status.h"
#include "core/units.h"
#include "service/degrade.h"
#include "service/request.h"
#include "supervise/protocol.h"

namespace dsmt::supervise {

namespace {

using core::StatusCode;

std::string signal_label(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGFPE: return "SIGFPE";
    case SIGKILL: return "SIGKILL";  // OOM killer, RLIMIT hard cap, or us
    case SIGABRT: return "SIGABRT";
    case SIGXCPU: return "SIGXCPU";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGTERM: return "SIGTERM";
    default: return "signal " + std::to_string(sig);
  }
}

std::string hash_hex(std::uint64_t h) {
  constexpr const char* kDigits = "0123456789abcdef";
  std::string s = "0x";
  for (int shift = 60; shift >= 0; shift -= 4)
    s.push_back(kDigits[(h >> shift) & 0xfu]);
  return s;
}

/// Reverse of core::status_name for reply-frame peeking; an unknown name
/// degrades to kInvalidInput (strict codec: never guess kOk).
StatusCode status_from_name(const std::string& name) {
  constexpr StatusCode kCodes[] = {
      StatusCode::kOk,           StatusCode::kInvalidInput,
      StatusCode::kNoBracket,    StatusCode::kMaxIterations,
      StatusCode::kNonFinite,    StatusCode::kSingularSystem,
      StatusCode::kDeadlineExceeded, StatusCode::kCancelled,
      StatusCode::kRejectedOverload, StatusCode::kBreakerOpen,
      StatusCode::kWorkerCrashed,
  };
  for (const StatusCode code : kCodes)
    if (name == core::status_name(code)) return code;
  return StatusCode::kInvalidInput;
}

/// Status the parent reads out of a reply frame for metrics only — the
/// frame bytes themselves are forwarded to the client untouched.
StatusCode peek_status(const std::string& frame) {
  try {
    const report::Json root = report::Json::parse(frame_payload(frame));
    if (const report::Json* status = root.find("status"))
      return status_from_name(status->as_string());
  } catch (const std::exception&) {
  }
  return StatusCode::kInvalidInput;
}

/// Whole-datagram send on the parent side; mirrors the worker's helper.
/// Returns 0 on success, else the errno of the failure — the caller must
/// distinguish a dead peer (EPIPE/ECONNRESET) from an undeliverable
/// datagram on a LIVE child (EMSGSIZE, ENOBUFS), which must not be treated
/// as a crash.
int send_whole(int fd, const std::string& message) {
  for (;;) {
    const net::IoResult r =
        net::write_some(fd, message.data(), message.size());
    if (r.n == static_cast<long>(message.size())) return 0;
    if (r.n < 0 && r.would_block()) continue;
    if (r.n >= 0) return EPROTO;  // short SEQPACKET send: cannot happen
    return r.error != 0 ? r.error : EPIPE;
  }
}

/// Effective per-direction payload cap: `want_payload` clamped to the
/// single-datagram capacity a worker socketpair will actually grant. Probed
/// on a throwaway pair here so every later sizing decision — parent
/// pre-send check, read buffers, the worker's reply-elision threshold —
/// agrees with what the kernel enforces (the broker applies the same
/// SO_SNDBUF tuning to every real pair).
std::size_t probe_payload_cap(std::size_t want_payload) {
  const std::size_t overhead = kSeqPrefixBytes + net::kFrameHeaderBytes;
  int sv[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0, sv) != 0)
    return want_payload;  // unknowable: the sender's errno path protects
  net::Fd a;
  net::Fd b;
  a.reset(sv[0]);
  b.reset(sv[1]);
  const std::size_t datagram_cap =
      net::tune_datagram_capacity(a.get(), overhead + want_payload);
  if (datagram_cap <= overhead) return want_payload;
  const std::size_t granted = datagram_cap - overhead;
  return granted < want_payload ? granted : want_payload;
}

service::Response base_response(const service::Request& request,
                                StatusCode status, std::string error) {
  service::Response resp;
  resp.id = request.id;
  resp.kind = request.kind;
  resp.status = status;
  resp.error = std::move(error);
  return resp;
}

/// Encodes a parent-built response as the DSM1 frame the caller forwards.
ExecuteResult to_result(const service::Response& resp) {
  ExecuteResult result;
  result.status = resp.status;
  result.frame =
      net::encode_frame(service::response_to_json(resp).dump(-1));
  return result;
}

}  // namespace

namespace {

/// Children must never inherit the parent's solve cache: the AppendLog fd
/// would cross fork() and child publishes would interleave with the
/// parent's segment appends. The parent-side handle is config.solve_cache.
SuperviseConfig strip_child_cache(SuperviseConfig config) {
  config.service.solve_cache.reset();
  return config;
}

}  // namespace

WorkerPool::WorkerPool(SuperviseConfig config)
    : config_(strip_child_cache(std::move(config))) {
  payload_cap_ = probe_payload_cap(config_.max_payload_bytes);
  // The broker is forked HERE, in the constructor's single-threaded window
  // — the one point where fork() cannot race another thread holding a lock
  // the child would inherit locked. Every worker fork, initial fleet and
  // lazy refork alike, then happens inside the broker child, which stays
  // single-threaded for life; pool threads never fork.
  broker_ = std::make_unique<ForkBroker>(config_.service, config_.limits,
                                         payload_cap_);
  {
    MutexLock lock(mu_);
    slots_.resize(config_.workers == 0 ? 1 : config_.workers);
    // A slot whose initial spawn fails stays dead and is retried on first
    // lease.
    for (Slot& slot : slots_)
      if (spawn_slot(slot)) ++stats_.forks;
  }
  if (config_.publish_signoff)
    core::set_signoff_service_source(this, [this] {
      report::Json root = report::Json::object();
      root.set("supervise", supervise_json());
      return root;
    });
}

WorkerPool::~WorkerPool() {
  core::clear_signoff_service_source(this);
  shutdown();
}

ExecuteResult WorkerPool::execute(const service::Request& request,
                                  std::uint64_t seq) {
  const std::uint64_t hash = canonical_request_hash(request);
  // Shared-cache fast path, checked BEFORE the quarantine table: a
  // request whose canonical twin already solved is answered from the
  // verified cache without leasing a worker — poison repeats and
  // crashed-worker retries included. lookup() (not acquire()): the parent
  // must never park behind another request's solve.
  if (config_.solve_cache != nullptr) {
    cache::CachedSolve hit;
    if (config_.solve_cache->lookup(cache::canonical_key(request), hit)) {
      try {
        const service::LadderProblem ladder =
            service::build_problem(request);
        {
          MutexLock lock(mu_);
          ++stats_.requests;
          ++stats_.cache_hits;
        }
        return to_result(cache::hit_response(request, ladder, hit));
      } catch (const std::exception&) {
        // The key decodes but the problem no longer builds — fall through
        // to the normal path, which classifies the failure.
      }
    }
  }
  int quarantined_crashes = 0;
  {
    MutexLock lock(mu_);
    ++stats_.requests;
    const auto it = quarantine_.find(hash);
    if (it != quarantine_.end() &&
        it->second.crashes >= config_.quarantine_threshold) {
      ++it->second.refusals;
      ++stats_.quarantine_refusals;
      quarantined_crashes = it->second.crashes;
    }
  }
  if (quarantined_crashes > 0)
    return quarantined_result(request, hash, quarantined_crashes);

  const std::string message = encode_request_message(seq, request);
  if (message.size() >
      kSeqPrefixBytes + net::kFrameHeaderBytes + payload_cap_) {
    // Never offer the kernel a datagram it will refuse: an EMSGSIZE on a
    // live worker is not a crash, and must not be classified as one.
    {
      MutexLock lock(mu_);
      ++stats_.oversize_refusals;
    }
    service::Response resp = base_response(
        request, StatusCode::kInvalidInput,
        "request exceeds the supervision channel datagram capacity");
    resp.diag.record(
        "supervise/pool", StatusCode::kInvalidInput, 0, 0.0,
        "encoded request is " + std::to_string(message.size()) +
            " bytes; the channel carries at most " +
            std::to_string(kSeqPrefixBytes + net::kFrameHeaderBytes +
                           payload_cap_) +
            " (max_payload_bytes clamped to the socket buffer grant)");
    return to_result(resp);
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    Lease lease;
    ExecuteResult failure;
    if (!acquire(lease, failure, request)) return failure;
    const int send_error = send_whole(lease.fd, message);
    if (send_error == EPIPE || send_error == ECONNRESET) {
      // The worker died while idle — before it ever saw this request, so
      // the crash does not count against the request's hash. Reap, mark
      // the slot for restart, and try once more on a fresh worker.
      int sig = 0;
      int code = -1;
      long rss = 0;
      reap_crashed(lease, sig, code, rss);
      continue;
    }
    if (send_error != 0) {
      // The child is alive but the datagram was undeliverable (EMSGSIZE
      // past the kernel's grant, ENOBUFS/ENOMEM pressure). The worker
      // never saw the request: release the lease untouched — reaping a
      // live child here would block the slot forever — and answer typed.
      release(lease.index);
      const StatusCode st = send_error == EMSGSIZE
                                ? StatusCode::kInvalidInput
                                : StatusCode::kRejectedOverload;
      service::Response resp = base_response(
          request, st, "supervision channel send failed; request not run");
      resp.diag.record("supervise/pool", st, 0, 0.0,
                       "send to worker pid " + std::to_string(lease.pid) +
                           " failed with errno " +
                           std::to_string(send_error) +
                           "; worker left in service");
      return to_result(resp);
    }
    return await_reply(lease, request, hash, seq);
  }
  service::Response resp = base_response(
      request, StatusCode::kWorkerCrashed,
      "workers died before accepting the request");
  resp.diag.record("supervise/pool", StatusCode::kWorkerCrashed, 0, 0.0,
                   "two consecutive workers were dead at send time");
  return to_result(resp);
}

bool WorkerPool::acquire(Lease& lease, ExecuteResult& failure,
                         const service::Request& request) {
  std::size_t index = 0;
  bool needs_fork = false;
  {
    MutexLock lock(mu_);
    for (;;) {
      if (shut_down_) {
        failure = to_result(base_response(request, StatusCode::kCancelled,
                                          "worker pool is shut down"));
        return false;
      }
      index = slots_.size();
      // Prefer a live idle worker; only restart a dead slot when no live
      // one is free (keeps restart churn off the hot path).
      for (std::size_t i = 0; i < slots_.size(); ++i)
        if (!slots_[i].busy && !slots_[i].dead) {
          index = i;
          break;
        }
      if (index == slots_.size())
        for (std::size_t i = 0; i < slots_.size(); ++i)
          if (!slots_[i].busy && slots_[i].dead) {
            index = i;
            break;
          }
      if (index != slots_.size()) break;
      const StatusCode st = core::run_check();
      if (st != StatusCode::kOk) {
        failure = to_result(base_response(
            request, st,
            "no worker became available within the request budget"));
        return false;
      }
      slot_free_.wait_for(
          mu_, std::chrono::milliseconds(config_.poll_interval_ms));
    }
    Slot& slot = slots_[index];
    slot.busy = true;
    needs_fork = slot.dead;
    if (!needs_fork) lease = Lease{index, slot.channel.get(), slot.pid};
  }
  if (!needs_fork) return true;

  // Deterministic restart pacing: the PR 5 seeded-backoff schedule as a
  // pure function of (slot, consecutive restart count) — bitwise identical
  // across runs, with or without the sleep.
  int restart_attempt = 1;
  {
    MutexLock lock(mu_);
    restart_attempt = slots_[index].consecutive_restarts + 1;
  }
  const std::uint64_t delay_ns = service::backoff_ns(
      config_.restart_backoff,
      service::mix64(0x73757056u ^ static_cast<std::uint64_t>(index)),
      restart_attempt);
  if (config_.sleep_on_restart_backoff && delay_ns > 0) {
    // Sleep in poll-interval chunks so a drain cancel or deadline is not
    // blocked behind the backoff.
    std::uint64_t slept = 0;
    const std::uint64_t chunk =
        static_cast<std::uint64_t>(config_.poll_interval_ms) * 1000000ull;
    while (slept < delay_ns) {
      const StatusCode st = core::run_check();
      if (st != StatusCode::kOk) {
        release(index);
        failure = to_result(base_response(
            request, st, "request interrupted during worker restart"));
        return false;
      }
      const std::uint64_t step =
          (delay_ns - slept) < chunk ? (delay_ns - slept) : chunk;
      std::this_thread::sleep_for(std::chrono::nanoseconds(step));
      slept += step;
    }
  }

  MutexLock lock(mu_);
  Slot& slot = slots_[index];
  if (!spawn_slot(slot)) {
    slot.busy = false;
    slot_free_.notify_one();
    failure = to_result(base_response(request, StatusCode::kWorkerCrashed,
                                      "cannot fork a replacement worker"));
    return false;
  }
  ++stats_.forks;
  ++stats_.restarts;
  ++slot.consecutive_restarts;
  lease = Lease{index, slot.channel.get(), slot.pid};
  return true;
}

void WorkerPool::release(std::size_t index) {
  MutexLock lock(mu_);
  slots_[index].busy = false;
  slot_free_.notify_one();
}

ExecuteResult WorkerPool::await_reply(const Lease& lease,
                                      const service::Request& request,
                                      std::uint64_t hash,
                                      std::uint64_t seq) {
  const auto start = std::chrono::steady_clock::now();
  std::string buffer(kSeqPrefixBytes + net::kFrameHeaderBytes +
                         payload_cap_,
                     '\0');
  for (;;) {
    StatusCode st = core::run_check();
    bool pool_deadline = false;
    if (st == StatusCode::kOk && config_.reply_deadline_ns > 0) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      if (elapsed >= 0 && static_cast<std::uint64_t>(elapsed) >=
                              config_.reply_deadline_ns) {
        st = StatusCode::kDeadlineExceeded;
        pool_deadline = true;
      }
    }
    if (st != StatusCode::kOk) {
      // The worker is wedged past the caller's budget (or a drain cancel
      // arrived): kill it so the lane frees now, not eventually. Only a
      // POOL deadline — reply_deadline_ns, measured from the successful
      // send — counts toward quarantine: it proves the request wedged a
      // worker. An ambient budget may have been burnt queueing or in
      // restart backoff before the child ever started, and a cancel is the
      // caller's choice; neither indicts the request.
      (void)::kill(lease.pid, SIGKILL);
      int sig = 0;
      int code = -1;
      long rss = 0;
      reap_crashed(lease, sig, code, rss);
      {
        MutexLock lock(mu_);
        ++stats_.deadline_kills;
      }
      int crashes = 0;
      if (pool_deadline) crashes = note_crash(hash);
      service::Response resp = base_response(
          request, st,
          pool_deadline
              ? "worker exceeded the supervised reply deadline and was "
                "killed"
              : "request interrupted: worker killed by the supervisor");
      resp.diag.record(
          "supervise/pool", st, 0, 0.0,
          "worker pid " + std::to_string(lease.pid) +
              " killed (SIGKILL) while serving hash " + hash_hex(hash) +
              (crashes > 0 ? "; crash " + std::to_string(crashes) + "/" +
                                 std::to_string(config_.quarantine_threshold)
                           : std::string{}));
      return to_result(resp);
    }

    pollfd pfd{};
    pfd.fd = lease.fd;
    pfd.events = POLLIN;
    const int ready = net::poll_wait(&pfd, 1, config_.poll_interval_ms);
    if (ready <= 0) continue;

    const net::IoResult r =
        net::read_some(lease.fd, buffer.data(), buffer.size());
    if (r.n < 0 && r.would_block()) continue;
    if (r.n > 0) {
      std::uint64_t echoed = 0;
      std::string frame;
      if (split_message(buffer.data(), static_cast<std::size_t>(r.n),
                        payload_cap_, echoed, frame) &&
          echoed == seq) {
        const StatusCode status = peek_status(frame);
        {
          MutexLock lock(mu_);
          ++stats_.replies;
          slots_[lease.index].consecutive_restarts = 0;
          // A hash that just completed normally is demonstrably not
          // poison: clear its sub-threshold crash history so transient
          // causes (a since-fixed wedge, memory pressure) cannot slowly
          // accumulate into a permanent quarantine.
          const auto it = quarantine_.find(hash);
          if (it != quarantine_.end() &&
              it->second.crashes < config_.quarantine_threshold)
            quarantine_.erase(it);
        }
        release(lease.index);
        return ExecuteResult{status, std::move(frame)};
      }
      // A malformed datagram or wrong echo means the child is corrupted:
      // its reply cannot be trusted, so it is discarded and the worker
      // replaced.
      {
        MutexLock lock(mu_);
        ++stats_.protocol_errors;
      }
      (void)::kill(lease.pid, SIGKILL);
      int sig = 0;
      int code = -1;
      long rss = 0;
      reap_crashed(lease, sig, code, rss);
      const int crashes = note_crash(hash);
      service::Response resp = base_response(
          request, StatusCode::kWorkerCrashed,
          "worker IPC protocol violation: reply discarded");
      resp.diag.record("supervise/pool", StatusCode::kWorkerCrashed, 0, 0.0,
                       "worker pid " + std::to_string(lease.pid) +
                           " echoed a corrupt reply for hash " +
                           hash_hex(hash) + "; crash " +
                           std::to_string(crashes) + "/" +
                           std::to_string(config_.quarantine_threshold));
      return to_result(resp);
    }

    // EOF (or reset): the worker died serving this request.
    int sig = 0;
    int code = -1;
    long rss = 0;
    reap_crashed(lease, sig, code, rss);
    const int crashes = note_crash(hash);
    return crashed_result(request, lease, hash, sig, code, rss, crashes);
  }
}

void WorkerPool::reap_crashed(const Lease& lease, int& signal,
                              int& exit_code, long& maxrss_kb) {
  // SIGKILL before the blocking reap: a zombie discards signals, so this is
  // a no-op for the already-dead case, and it guarantees the reap can never
  // wait on a child that is in fact still alive.
  if (lease.pid > 0) (void)::kill(lease.pid, SIGKILL);
  WorkerDeath death;
  if (broker_) (void)broker_->reap_blocking(lease.pid, death);
  signal = death.reaped ? death.signal : 0;
  exit_code = death.reaped ? death.exit_code : -1;
  maxrss_kb = death.maxrss_kb;

  MutexLock lock(mu_);
  Slot& slot = slots_[lease.index];
  slot.channel.reset();
  slot.pid = -1;
  slot.dead = true;
  slot.busy = false;
  slot.last_signal = signal;
  slot.last_exit_code = exit_code;
  slot.last_maxrss_kb = maxrss_kb;
  slot_free_.notify_one();
}

int WorkerPool::note_crash(std::uint64_t hash) {
  MutexLock lock(mu_);
  QuarantineEntry& entry = quarantine_[hash];
  ++entry.crashes;
  ++stats_.crashes;
  if (entry.crashes == config_.quarantine_threshold)
    ++stats_.quarantined_hashes;
  return entry.crashes;
}

bool WorkerPool::spawn_slot(Slot& slot) {
  // The fork happens in the broker child (single-threaded for life), never
  // here: a pool thread that forked directly could hand the worker a heap
  // whose allocator lock some other thread held at fork time.
  net::Fd channel;
  ::pid_t pid = -1;
  if (!broker_ || !broker_->spawn(channel, pid)) return false;
  slot.pid = pid;
  slot.channel = std::move(channel);
  slot.dead = false;
  slot.last_signal = 0;
  slot.last_exit_code = -1;
  return true;
}

ExecuteResult WorkerPool::quarantined_result(const service::Request& request,
                                             std::uint64_t hash,
                                             int crashes) {
  service::Response resp =
      base_response(request, StatusCode::kWorkerCrashed, std::string{});
  if (config_.quarantine_analytic_bound &&
      config_.service.enable_analytic_bound) {
    // The analytic rung is closed-form and iteration-free: no crash
    // surface, so the parent can serve it directly — conservative by
    // construction, same semantics as the in-process rung 2.
    try {
      const service::LadderProblem ladder = service::build_problem(request);
      const service::AnalyticBound bound =
          service::analytic_quasi1d_bound(ladder.quasi1d);
      resp.status = StatusCode::kOk;
      resp.degraded = true;
      resp.degradation_level = service::DegradationLevel::kAnalyticBound;
      resp.conservative = true;
      resp.t_metal_c = kelvin_to_celsius(bound.t_metal.value());
      resp.delta_t_c =
          bound.t_metal.value() - celsius_to_kelvin(request.t_ref_c).value();
      resp.j_peak_MA_cm2 = to_MA_per_cm2(bound.j_peak.value());
      resp.j_rms_MA_cm2 = to_MA_per_cm2(bound.j_rms.value());
      resp.j_avg_MA_cm2 = to_MA_per_cm2(bound.j_avg.value());
      if (request.kind == service::RequestKind::kDutyCyclePoint)
        resp.jpeak_em_only_MA_cm2 = to_MA_per_cm2(
            selfconsistent::jpeak_em_only(ladder.full).value());
      resp.diag.record(
          "supervise/quarantine", StatusCode::kOk, 2, 0.0,
          "hash " + hash_hex(hash) + " quarantined after " +
              std::to_string(crashes) +
              " worker crashes; served by the parent's analytic rung");
      return to_result(resp);
    } catch (const std::exception& e) {
      resp.diag.record("supervise/quarantine", StatusCode::kInvalidInput, 0,
                       0.0, e.what());
    }
  }
  resp.status = StatusCode::kWorkerCrashed;
  resp.error = "request quarantined: its canonical hash crashed " +
               std::to_string(crashes) + " workers";
  resp.diag.record("supervise/quarantine", StatusCode::kWorkerCrashed, 0,
                   0.0,
                   "hash " + hash_hex(hash) +
                       ": refused without reaching a worker");
  return to_result(resp);
}

ExecuteResult WorkerPool::crashed_result(const service::Request& request,
                                         const Lease& lease,
                                         std::uint64_t hash, int signal,
                                         int exit_code, long maxrss_kb,
                                         int crash_count) {
  const std::string how =
      signal != 0 ? signal_label(signal)
                  : "exit code " + std::to_string(exit_code);
  service::Response resp =
      base_response(request, StatusCode::kWorkerCrashed,
                    "worker crashed serving the request (" + how + ")");
  resp.diag.record(
      "supervise/pool", StatusCode::kWorkerCrashed, 0, 0.0,
      "worker pid " + std::to_string(lease.pid) + " died: " + how +
          "; maxrss_kb=" + std::to_string(maxrss_kb) + "; crash " +
          std::to_string(crash_count) + "/" +
          std::to_string(config_.quarantine_threshold) + " for hash " +
          hash_hex(hash));
  return to_result(resp);
}

void WorkerPool::shutdown() {
  std::vector<::pid_t> pending;
  {
    MutexLock lock(mu_);
    if (shut_down_) return;
    shut_down_ = true;
    for (Slot& slot : slots_) {
      // Closing the channel is the shutdown signal: the child's read
      // returns EOF and its loop exits 0 — no signals needed for the
      // cooperative path.
      slot.channel.reset();
      if (!slot.dead && slot.pid > 0) pending.push_back(slot.pid);
      slot.dead = true;
    }
    slot_free_.notify_all();
  }

  // Bounded cooperative reap (~2 s of WNOHANG probes through the broker —
  // the workers are its children), then SIGKILL the stragglers and reap
  // them for real — no zombies left behind. A dead broker already killed
  // and reaped its workers in its own teardown.
  for (int tick = 0; tick < 200 && !pending.empty(); ++tick) {
    for (auto it = pending.begin(); it != pending.end();) {
      WorkerDeath death;
      if (!broker_ || !broker_->reap_poll(*it, death) || death.reaped)
        it = pending.erase(it);
      else
        ++it;
    }
    if (!pending.empty())
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (const ::pid_t pid : pending) {
    (void)::kill(pid, SIGKILL);
    WorkerDeath death;
    if (broker_) (void)broker_->reap_blocking(pid, death);
  }
  if (broker_) broker_->shutdown();

  MutexLock lock(mu_);
  for (Slot& slot : slots_) slot.pid = -1;
}

SuperviseStats WorkerPool::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::size_t WorkerPool::live_workers() const {
  MutexLock lock(mu_);
  std::size_t live = 0;
  for (const Slot& slot : slots_)
    if (!slot.dead) ++live;
  return live;
}

report::Json WorkerPool::supervise_json() const {
  using report::Json;
  MutexLock lock(mu_);
  std::size_t live = 0;
  for (const Slot& slot : slots_)
    if (!slot.dead) ++live;

  Json stats = Json::object();
  stats
      .set("forks", Json::integer(static_cast<long long>(stats_.forks)))
      .set("restarts",
           Json::integer(static_cast<long long>(stats_.restarts)))
      .set("requests",
           Json::integer(static_cast<long long>(stats_.requests)))
      .set("replies", Json::integer(static_cast<long long>(stats_.replies)))
      .set("crashes", Json::integer(static_cast<long long>(stats_.crashes)))
      .set("deadline_kills",
           Json::integer(static_cast<long long>(stats_.deadline_kills)))
      .set("quarantine_refusals",
           Json::integer(
               static_cast<long long>(stats_.quarantine_refusals)))
      .set("quarantined_hashes",
           Json::integer(
               static_cast<long long>(stats_.quarantined_hashes)))
      .set("protocol_errors",
           Json::integer(static_cast<long long>(stats_.protocol_errors)))
      .set("oversize_refusals",
           Json::integer(static_cast<long long>(stats_.oversize_refusals)))
      .set("cache_hits",
           Json::integer(static_cast<long long>(stats_.cache_hits)));

  Json quarantine = Json::array();
  for (const auto& [hash, entry] : quarantine_) {
    Json row = Json::object();
    row.set("hash", Json::string(hash_hex(hash)))
        .set("crashes", Json::integer(entry.crashes))
        .set("quarantined",
             Json::boolean(entry.crashes >= config_.quarantine_threshold))
        .set("refusals",
             Json::integer(static_cast<long long>(entry.refusals)));
    quarantine.push(std::move(row));
  }

  Json root = Json::object();
  root.set("workers", Json::integer(static_cast<long long>(slots_.size())))
      .set("live", Json::integer(static_cast<long long>(live)))
      .set("payload_cap_bytes",
           Json::integer(static_cast<long long>(payload_cap_)))
      .set("stats", std::move(stats))
      .set("quarantine", std::move(quarantine));
  if (config_.solve_cache != nullptr)
    root.set("cache", config_.solve_cache->cache_json());
  return root;
}

}  // namespace dsmt::supervise
