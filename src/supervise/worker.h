// The supervised worker child: rlimit rails, crash-fault opt-in, and the
// one-request-at-a-time serve loop over the SEQPACKET channel.
//
// Everything here runs in the FORKED CHILD. The loop owns a private
// service::Server (sign-off publication forced off — the parent owns the
// process-wide sign-off slot), reads one request datagram at a time,
// executes it, and writes back one response datagram. Parent closing the
// channel is the clean-shutdown signal: read returns EOF and the loop exits
// 0. A reply the parent will never read (EPIPE after a parent crash) exits
// nonzero — the child must never outlive its supervisor.
#pragma once

#include <cstddef>
#include <cstdint>

#include "numeric/fault_injection.h"
#include "service/server.h"

namespace dsmt::supervise {

/// Per-worker resource rails and chaos arming, applied in the child before
/// the first request is read.
struct WorkerLimits {
  /// RLIMIT_AS cap [bytes] (0 = unlimited): a runaway allocation dies in
  /// the child as bad_alloc -> kRejectedOverload, or by the kCrashOom arm.
  std::uint64_t rlimit_as_bytes = 0;
  /// RLIMIT_CPU cap [s] (0 = unlimited): a runaway compute lane is killed
  /// by the kernel (SIGXCPU/SIGKILL) in the child, never in the parent.
  std::uint64_t rlimit_cpu_seconds = 0;
  /// Crash-chaos plan armed IN THE CHILD ONLY (after allow_crash_faults());
  /// kNone leaves fault injection untouched.
  numeric::fault::FaultPlan child_fault{};
};

/// Child-side entry point: installs `limits`, arms the chaos plan (if any),
/// and serves `channel_fd` until EOF. Returns the child's exit code
/// (0 = clean shutdown on parent close). Never throws.
int run_worker(int channel_fd, service::ServerConfig service_config,
               const WorkerLimits& limits, std::size_t max_payload_bytes);

}  // namespace dsmt::supervise
