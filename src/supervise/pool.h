// Process-level supervisor: crash-contained solve workers behind SEQPACKET.
//
// A WorkerPool forks N worker children at construction; each child runs
// supervise::run_worker over its half of a SOCK_SEQPACKET socketpair. The
// parent leases one worker per request — serialize, send, poll, forward the
// reply frame verbatim — so a kernel SIGSEGV/SIGFPE, an OOM kill, or an
// RLIMIT rail firing takes down ONE child mid-request, never the front end:
//
//   detect     EOF on the channel while a reply is owed, confirmed by
//              wait4(), which also yields the terminating signal and the
//              child's rusage — both recorded in the SolverDiag chain of
//              the kWorkerCrashed response the caller gets instead of
//              silence.
//   restart    the slot is reforked on next lease, after the PR 5 seeded
//              backoff (service/retry.h: a pure function of slot index and
//              consecutive-restart count, bitwise reproducible). Rails
//              (WorkerLimits) are reinstalled in every new child. All forks
//              — initial fleet and lazy reforks alike — happen inside the
//              single-threaded ForkBroker child (broker.h), never on a pool
//              thread, so a refork cannot inherit a lock some other thread
//              held at fork time.
//   quarantine a request whose canonical content hash (protocol.h) crashed
//              workers `quarantine_threshold` times stops reaching workers:
//              it is answered conservatively from the parent — the
//              iteration-free analytic rung of the degradation ladder when
//              enabled (closed-form, no crash surface), else a typed
//              kWorkerCrashed error. No crash loops, no silent drops.
//
// Threading: execute() is safe from any number of pool threads. Slot
// leasing, the quarantine table, and the counters live behind one mutex;
// the leased channel fd is touched only by the leasing thread while the
// slot is marked busy. Parent-side waits poll core::run_check(), so a
// drain cancel or an ambient deadline kills the wedged child (SIGKILL) and
// answers with the interruption status instead of blocking forever.
//
// Determinism: a successful reply is the child's response bytes forwarded
// unmodified, and the child serves (request, seq) exactly as the in-process
// service would, so non-crashing lanes keep the byte-identical-replies-at-
// any-DSMT_THREADS invariant across the process boundary.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <memory>

#include "core/thread_annotations.h"
#include "net/socket_io.h"
#include "net/wire.h"
#include "report/json.h"
#include "service/retry.h"
#include "service/server.h"
#include "supervise/broker.h"
#include "supervise/worker.h"

namespace dsmt::supervise {

struct SuperviseConfig {
  std::size_t workers = 2;             ///< forked worker children
  service::ServerConfig service{};     ///< child-side service config
  /// Cap on one IPC message's JSON payload [bytes] (both directions). The
  /// pool clamps this to what the kernel's socket buffers can actually
  /// carry in one SEQPACKET datagram (see payload_cap()); a request over
  /// the clamped cap is refused with a typed kInvalidInput, never sent.
  std::size_t max_payload_bytes = net::kDefaultMaxFrameBytes;
  /// Crashes by one canonical request hash before it stops reaching workers.
  int quarantine_threshold = 2;
  /// Serve quarantined requests from the parent-side analytic rung
  /// (conservative, iteration-free) instead of a bare kWorkerCrashed error.
  bool quarantine_analytic_bound = true;
  /// Seeded backoff between consecutive reforks of one slot (PR 5 policy).
  service::RetryPolicy restart_backoff{};
  /// Actually sleep the restart backoff (tests disable it; the schedule is
  /// recorded in the diag chain either way).
  bool sleep_on_restart_backoff = true;
  WorkerLimits limits{};  ///< rlimit rails + chaos arming for every child
  /// Parent-side cap on one reply wait [ns] (0 = ambient RunContext only).
  std::uint64_t reply_deadline_ns = 0;
  /// Granularity [ms] of the parent's reply/lease polls (cancellation and
  /// deadline observation latency).
  int poll_interval_ms = 20;
  /// Publish the quarantine table + worker stats under the sign-off
  /// "service" key for the pool's lifetime.
  bool publish_signoff = true;
  /// Parent-side shared solve cache (cache/solve_cache.h): verified hits
  /// are answered before the quarantine table and the worker lease, so
  /// quarantined-poison repeats and crashed-worker retries whose canonical
  /// twin already solved never touch a child. Children NEVER inherit it —
  /// the constructor strips service.solve_cache before forking (a cache fd
  /// shared across fork would interleave segment appends).
  std::shared_ptr<cache::SolveCache> solve_cache;
};

/// Monotonic counters since construction (snapshot).
struct SuperviseStats {
  std::uint64_t forks = 0;        ///< children ever forked (initial + re-)
  std::uint64_t restarts = 0;     ///< reforks of a dead slot
  std::uint64_t requests = 0;     ///< execute() calls
  std::uint64_t replies = 0;      ///< worker replies forwarded verbatim
  std::uint64_t crashes = 0;      ///< workers that died serving a request
  std::uint64_t deadline_kills = 0;  ///< parent-killed wedged workers
  std::uint64_t quarantine_refusals = 0;  ///< requests refused by the table
  std::uint64_t quarantined_hashes = 0;   ///< hashes at/over the threshold
  std::uint64_t protocol_errors = 0;      ///< corrupted IPC echoes
  std::uint64_t oversize_refusals = 0;    ///< requests over the payload cap
  std::uint64_t cache_hits = 0;  ///< served from the shared solve cache
};

/// Outcome of one supervised request: the complete DSM1 reply frame for the
/// client plus the parsed status for metrics and tests.
struct ExecuteResult {
  core::StatusCode status = core::StatusCode::kOk;
  std::string frame;
};

class WorkerPool {
 public:
  explicit WorkerPool(SuperviseConfig config);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Serves one request through a leased worker. Always returns exactly one
  /// terminal result — forwarded reply, kWorkerCrashed, quarantine answer,
  /// or interruption — never throws for per-request failures. `seq` seeds
  /// the child's retry jitter exactly like the in-process path.
  ExecuteResult execute(const service::Request& request, std::uint64_t seq);

  /// Closes every channel (children exit on EOF), reaps with a bounded
  /// wait, SIGKILLs stragglers. Idempotent; called by the destructor.
  /// Callers must not race execute() against shutdown().
  void shutdown();

  SuperviseStats stats() const;
  std::size_t live_workers() const;
  const SuperviseConfig& config() const { return config_; }

  /// Effective per-direction IPC payload cap [bytes]: max_payload_bytes
  /// clamped to the single-datagram capacity the kernel granted the worker
  /// socketpairs (SO_SNDBUF is silently limited by wmem_max; a datagram
  /// past the grant dies with EMSGSIZE instead of fragmenting).
  std::size_t payload_cap() const { return payload_cap_; }

  /// Sign-off/ping section: worker states, counters, quarantine table.
  report::Json supervise_json() const;

 private:
  struct Slot {
    ::pid_t pid = -1;
    net::Fd channel;  ///< parent end; valid iff !dead
    bool busy = false;
    bool dead = true;
    int consecutive_restarts = 0;  ///< backoff attempt index, reset on reply
    int last_signal = 0;           ///< how the previous child died
    int last_exit_code = -1;
    long last_maxrss_kb = 0;
  };

  /// A leased slot, copied out of the table so the channel fd is used
  /// without holding the mutex (the slot is busy: nobody else touches it).
  struct Lease {
    std::size_t index = 0;
    int fd = -1;
    ::pid_t pid = -1;
  };

  struct QuarantineEntry {
    int crashes = 0;
    std::uint64_t refusals = 0;
  };

  bool acquire(Lease& lease, ExecuteResult& failure,
               const service::Request& request);
  void release(std::size_t index);
  /// Polls the leased channel for the reply to (request, seq); classifies
  /// EOF as a crash, a bad echo as a protocol violation, and interruption /
  /// reply-deadline expiry as grounds to SIGKILL the worker.
  ExecuteResult await_reply(const Lease& lease,
                            const service::Request& request,
                            std::uint64_t hash, std::uint64_t seq);
  /// Reaps the child of `lease` via the broker (SIGKILL first, so a live
  /// child can never block the reap), classifies the death, marks the slot
  /// dead.
  void reap_crashed(const Lease& lease, int& signal, int& exit_code,
                    long& maxrss_kb);
  /// Counts one crash against `hash`; returns the updated crash count.
  int note_crash(std::uint64_t hash);
  /// Leases a fresh worker from the broker into `slot`.
  bool spawn_slot(Slot& slot) DSMT_REQUIRES(mu_);
  ExecuteResult quarantined_result(const service::Request& request,
                                   std::uint64_t hash, int crashes);
  ExecuteResult crashed_result(const service::Request& request,
                               const Lease& lease, std::uint64_t hash,
                               int signal, int exit_code, long maxrss_kb,
                               int crash_count);

  const SuperviseConfig config_;
  // R10-ok: both set once in the constructor (single-threaded window) and
  // read-only afterwards; the broker serializes its own channel internally.
  std::size_t payload_cap_ = 0;
  std::unique_ptr<ForkBroker> broker_;
  mutable Mutex mu_;
  CondVar slot_free_;
  std::vector<Slot> slots_ DSMT_GUARDED_BY(mu_);
  std::map<std::uint64_t, QuarantineEntry> quarantine_ DSMT_GUARDED_BY(mu_);
  SuperviseStats stats_ DSMT_GUARDED_BY(mu_);
  bool shut_down_ DSMT_GUARDED_BY(mu_) = false;
};

}  // namespace dsmt::supervise
