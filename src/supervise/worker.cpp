#include "supervise/worker.h"

#include <sys/resource.h>

#include <new>
#include <string>
#include <vector>

#include "core/status.h"
#include "net/socket_io.h"
#include "net/wire.h"
#include "supervise/protocol.h"

namespace dsmt::supervise {

namespace {

/// Installs one soft+hard rlimit rail; failure is fatal for the child (a
/// worker that cannot honor its rails must not serve).
bool apply_rlimit(int resource, std::uint64_t value) {
  if (value == 0) return true;
  struct rlimit rl;
  rl.rlim_cur = static_cast<rlim_t>(value);
  rl.rlim_max = static_cast<rlim_t>(value);
  return ::setrlimit(resource, &rl) == 0;
}

/// Writes one whole datagram; SEQPACKET sends are all-or-nothing, but EINTR
/// retry lives in write_some and a would-block on a full buffer is retried
/// here (the parent reads one reply per request, so the buffer drains).
bool send_datagram(int fd, const std::string& message) {
  for (;;) {
    const net::IoResult r =
        net::write_some(fd, message.data(), message.size());
    if (r.n == static_cast<long>(message.size())) return true;
    if (r.n < 0 && r.would_block()) continue;
    return false;  // EPIPE (parent gone) or a short SEQPACKET send
  }
}

/// A response the worker can always afford to build: id/status/error only.
service::Response slim_error(const std::string& id, core::StatusCode status,
                             const std::string& note) {
  service::Response resp;
  resp.id = id;
  resp.status = status;
  resp.error = note;
  resp.diag.record("supervise/worker", status, 0, 0.0, note);
  return resp;
}

}  // namespace

int run_worker(int channel_fd, service::ServerConfig service_config,
               const WorkerLimits& limits, std::size_t max_payload_bytes) {
  // The parent owns the process-wide sign-off slot; a child that registered
  // into it would fight its siblings and dangle after exit.
  service_config.publish_signoff = false;

  if (!apply_rlimit(RLIMIT_AS, limits.rlimit_as_bytes) ||
      !apply_rlimit(RLIMIT_CPU, limits.rlimit_cpu_seconds))
    return 3;

  if (limits.child_fault.kind != numeric::fault::FaultKind::kNone) {
    // Crash faults stay inert without this per-process opt-in, so arming
    // the same plan in the parent (operator error) cannot kill the front
    // end — only forked workers ever die by it.
    numeric::fault::allow_crash_faults();
    numeric::fault::arm(limits.child_fault);
  }

  try {
    service::Server server(service_config);
    std::vector<char> buffer(kSeqPrefixBytes + net::kFrameHeaderBytes +
                             max_payload_bytes);
    for (;;) {
      const net::IoResult r =
          net::read_some(channel_fd, buffer.data(), buffer.size());
      if (r.n == 0) return 0;  // parent closed the channel: clean shutdown
      if (r.n < 0) {
        if (r.would_block()) continue;
        return r.reset() ? 0 : 3;
      }

      std::uint64_t seq = 0;
      std::string frame;
      service::Response response;
      if (!split_message(buffer.data(), static_cast<std::size_t>(r.n),
                         max_payload_bytes, seq, frame)) {
        response = slim_error("", core::StatusCode::kInvalidInput,
                              "malformed supervision datagram");
      } else {
        service::Request request;
        bool parsed = false;
        try {
          request =
              service::request_from_json(report::Json::parse(
                  frame_payload(frame)));
          parsed = true;
        } catch (const std::exception& e) {
          response = slim_error("", core::StatusCode::kInvalidInput,
                                std::string("bad request payload: ") +
                                    e.what());
        }
        if (parsed) {
          // Chaos hook: poison requests die HERE, in the child, by the
          // armed crash mechanism — the containment the supervisor exists
          // to prove.
          numeric::fault::crash_point("supervise/worker", request.id);
          try {
            response =
                server.handle(request, static_cast<std::size_t>(seq));
          } catch (const std::bad_alloc&) {
            response = slim_error(
                request.id, core::StatusCode::kRejectedOverload,
                "allocation failure in worker: request shed");
          } catch (const std::exception& e) {
            response = slim_error(request.id,
                                  core::StatusCode::kInvalidInput,
                                  std::string("worker error: ") + e.what());
          }
        }
      }

      std::string reply;
      try {
        const std::size_t message_cap =
            kSeqPrefixBytes + net::kFrameHeaderBytes + max_payload_bytes;
        reply = encode_response_message(seq, response);
        if (reply.size() > message_cap) {
          // Elide ONLY the diag chain (and the retry schedule riding with
          // it): the status and the numeric results the client asked for
          // are kept — a successful solve must not turn into a hollow kOk
          // with no temperatures just because its diagnostics grew.
          service::Response elided = response;
          elided.diag = core::SolverDiag{};
          elided.diag.record("supervise/worker", response.status,
                             response.diag.iterations,
                             response.diag.residual,
                             "diag chain elided: full reply exceeds the "
                             "supervision datagram cap");
          elided.backoff_ns.clear();
          reply = encode_response_message(seq, elided);
          if (reply.size() > message_cap)
            // Still over — only a pathological id can do this. Nothing
            // meaningful fits, so the status must say failure rather than
            // a success with every result field dropped.
            reply = encode_response_message(
                seq,
                slim_error(response.id.substr(0, 128),
                           core::StatusCode::kInvalidInput,
                           "response exceeds the supervision datagram cap"));
        }
      } catch (const std::exception& e) {
        reply = encode_response_message(
            seq, slim_error(response.id, core::StatusCode::kInvalidInput,
                            std::string("response encoding failed: ") +
                                e.what()));
      }
      if (!send_datagram(channel_fd, reply))
        return 4;  // parent vanished mid-reply: nothing left to serve
    }
  } catch (const std::bad_alloc&) {
    return 5;  // construction/loop allocation failure under the AS rail
  } catch (...) {
    return 6;
  }
}

}  // namespace dsmt::supervise
