// Wire protocol of the worker-supervision IPC channel.
//
// Parent and worker child exchange one SOCK_SEQPACKET datagram per message.
// A datagram is an 8-byte big-endian sequence number followed by one DSM1
// frame (net/wire.h) whose payload is the strict-JSON request or response
// codec of service/request.h — the exact same bytes the socket front end
// speaks, so the parent can forward a worker's reply frame to the client
// VERBATIM. That byte-level pass-through is what preserves the
// byte-identical-replies-at-any-DSMT_THREADS invariant through the process
// boundary: the parent never re-serializes a successful response, it only
// peeks at the status field for metrics.
//
// The sequence number is an integrity check, not a multiplexer: the channel
// carries one request at a time (the pool leases a worker per request), so
// a mismatched echo means the child is corrupted and must be restarted.
//
// canonical_request_hash() is the poison-quarantine key: FNV-1a over the
// request's canonical compact JSON, so two requests that serialize
// identically — same id, same physics — share one quarantine entry.
#pragma once

#include <cstdint>
#include <string>

#include "service/request.h"

namespace dsmt::supervise {

/// Bytes of the big-endian sequence prefix ahead of the DSM1 frame.
inline constexpr std::size_t kSeqPrefixBytes = 8;

/// FNV-1a (64-bit) over request_to_json(request).dump(-1): the canonical
/// content hash that keys the poison-quarantine table. Pure function of the
/// request — identical across processes, threads, and runs.
std::uint64_t canonical_request_hash(const service::Request& request);

/// One parent->child datagram: seq prefix + DSM1-framed request JSON.
std::string encode_request_message(std::uint64_t seq,
                                   const service::Request& request);

/// One child->parent datagram: seq prefix + DSM1-framed response JSON.
std::string encode_response_message(std::uint64_t seq,
                                    const service::Response& response);

/// Splits a datagram into its sequence number and the DSM1 frame bytes that
/// follow (header + payload, ready to forward). Returns false on anything
/// malformed: short datagram, bad magic, or a declared payload length that
/// disagrees with the datagram size or exceeds `max_payload_bytes`.
bool split_message(const char* data, std::size_t size,
                   std::size_t max_payload_bytes, std::uint64_t& seq,
                   std::string& frame);

/// JSON payload of a frame produced by split_message (bytes after the
/// 8-byte DSM1 header).
std::string frame_payload(const std::string& frame);

}  // namespace dsmt::supervise
