#include "supervise/broker.h"

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <thread>
#include <utility>
#include <vector>

#include "net/wire.h"
#include "supervise/protocol.h"

namespace dsmt::supervise {

namespace {

// Fixed-size, host-endian control messages: both ends share one process
// image (fork, no exec), so no portability framing is needed, and SEQPACKET
// delivers each struct whole or not at all.
struct BrokerCommand {
  char op = 0;  ///< 'F' spawn, 'R' blocking reap, 'W' WNOHANG reap probe
  ::pid_t pid = -1;
};

struct SpawnReply {
  ::pid_t pid = -1;  ///< > 0: success, channel fd rides along as SCM_RIGHTS
};

struct ReapReply {
  int reaped = 0;
  int signal = 0;
  int exit_code = -1;
  long maxrss_kb = 0;
};

/// The broker child's whole life: serve spawn/reap commands until the
/// control channel EOFs, then kill and reap every worker not yet collected.
/// Single-threaded by construction, so its forks are always safe.
int broker_main(net::Fd control, const service::ServerConfig& service,
                const WorkerLimits& limits, std::size_t payload_cap) {
  const std::size_t message_cap =
      kSeqPrefixBytes + net::kFrameHeaderBytes + payload_cap;
  std::vector<::pid_t> live;
  for (;;) {
    BrokerCommand cmd;
    int stray_fd = -1;
    const net::IoResult r =
        net::recv_with_fd(control.get(), reinterpret_cast<char*>(&cmd),
                          sizeof cmd, stray_fd);
    net::Fd stray(stray_fd);  // nothing legitimate sends us an fd: drop it
    if (r.n <= 0) break;      // EOF or broken channel: the pool is gone
    if (r.n != sizeof cmd) continue;

    if (cmd.op == 'F') {
      SpawnReply reply;
      net::Fd parent_end;
      net::Fd child_end;
      int sv[2] = {-1, -1};
      if (::socketpair(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0, sv) == 0) {
        parent_end.reset(sv[0]);
        child_end.reset(sv[1]);
        // Both directions must be able to carry one whole message, or a
        // legal datagram would die with EMSGSIZE mid-protocol.
        (void)net::tune_datagram_capacity(parent_end.get(), message_cap);
        (void)net::tune_datagram_capacity(child_end.get(), message_cap);
        const ::pid_t pid = ::fork();
        if (pid == 0) {
          // WORKER. Close the inherited broker state so channel EOFs keep
          // their one-owner meaning (the pool's EOF on parent_end must mean
          // THIS worker died, not that a stray copy lingers). Never unwind
          // back into broker code.
          control.reset();
          parent_end.reset();
          ::_exit(run_worker(child_end.get(), service, limits, payload_cap));
        }
        if (pid > 0) {
          child_end.reset();  // only the worker holds sv[1] from here on
          live.push_back(pid);
          reply.pid = pid;
        }
      }
      (void)net::send_with_fd(control.get(),
                              reinterpret_cast<const char*>(&reply),
                              sizeof reply,
                              reply.pid > 0 ? parent_end.get() : -1);
      // parent_end closes here: after the SCM_RIGHTS transfer the pool owns
      // the only live copy.
    } else if (cmd.op == 'R' || cmd.op == 'W') {
      ReapReply reply;
      int status = 0;
      struct rusage ru {};
      for (;;) {
        const ::pid_t got =
            ::wait4(cmd.pid, &status, cmd.op == 'W' ? WNOHANG : 0, &ru);
        if (got == cmd.pid) {
          reply.reaped = 1;
          reply.signal = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
          reply.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
          reply.maxrss_kb = ru.ru_maxrss;
          break;
        }
        if (got < 0 && errno == EINTR) continue;
        break;  // WNOHANG still-running, or ECHILD: nothing to report
      }
      if (reply.reaped != 0)
        for (auto it = live.begin(); it != live.end(); ++it)
          if (*it == cmd.pid) {
            live.erase(it);
            break;
          }
      (void)net::send_with_fd(control.get(),
                              reinterpret_cast<const char*>(&reply),
                              sizeof reply, -1);
    }
  }

  // Teardown: no worker outlives the supervisor, reaped or not.
  for (const ::pid_t pid : live) (void)::kill(pid, SIGKILL);
  for (const ::pid_t pid : live)
    for (;;) {
      int status = 0;
      const ::pid_t got = ::waitpid(pid, &status, 0);
      if (got == pid || (got < 0 && errno != EINTR)) break;
    }
  return 0;
}

}  // namespace

ForkBroker::ForkBroker(service::ServerConfig service, WorkerLimits limits,
                       std::size_t payload_cap) {
  int sv[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0, sv) != 0)
    return;  // !ok(): every spawn will fail typed, nothing hangs
  net::Fd ours;
  net::Fd theirs;
  ours.reset(sv[0]);
  theirs.reset(sv[1]);
  const ::pid_t pid = ::fork();
  if (pid < 0) return;
  if (pid == 0) {
    // BROKER CHILD: single-threaded forever. _exit keeps it from unwinding
    // into destructors of pool state it merely inherited.
    ours.reset();
    ::_exit(broker_main(std::move(theirs), service, limits, payload_cap));
  }
  theirs.reset();
  MutexLock lock(mu_);
  channel_ = std::move(ours);
  broker_pid_ = pid;
}

ForkBroker::~ForkBroker() { shutdown(); }

bool ForkBroker::ok() const {
  MutexLock lock(mu_);
  return channel_.valid();
}

bool ForkBroker::spawn(net::Fd& channel, ::pid_t& pid) {
  MutexLock lock(mu_);
  if (!channel_.valid()) return false;
  const BrokerCommand cmd{'F', -1};
  const net::IoResult sent = net::send_with_fd(
      channel_.get(), reinterpret_cast<const char*>(&cmd), sizeof cmd, -1);
  if (sent.n != static_cast<long>(sizeof cmd)) {
    channel_.reset();  // broker gone: fail every later call fast
    return false;
  }
  SpawnReply reply;
  int fd = -1;
  const net::IoResult got = net::recv_with_fd(
      channel_.get(), reinterpret_cast<char*>(&reply), sizeof reply, fd);
  net::Fd received(fd);
  if (got.n != static_cast<long>(sizeof reply)) {
    channel_.reset();
    return false;
  }
  if (reply.pid <= 0 || !received.valid()) return false;
  channel = std::move(received);
  pid = reply.pid;
  return true;
}

bool ForkBroker::reap(::pid_t pid, bool blocking, WorkerDeath& death) {
  MutexLock lock(mu_);
  death = WorkerDeath{};
  if (!channel_.valid()) return false;
  const BrokerCommand cmd{blocking ? 'R' : 'W', pid};
  const net::IoResult sent = net::send_with_fd(
      channel_.get(), reinterpret_cast<const char*>(&cmd), sizeof cmd, -1);
  if (sent.n != static_cast<long>(sizeof cmd)) {
    channel_.reset();
    return false;
  }
  ReapReply reply;
  int stray_fd = -1;
  const net::IoResult got = net::recv_with_fd(
      channel_.get(), reinterpret_cast<char*>(&reply), sizeof reply,
      stray_fd);
  net::Fd stray(stray_fd);
  if (got.n != static_cast<long>(sizeof reply)) {
    channel_.reset();
    return false;
  }
  death.reaped = reply.reaped != 0;
  death.signal = reply.signal;
  death.exit_code = reply.exit_code;
  death.maxrss_kb = reply.maxrss_kb;
  return true;
}

bool ForkBroker::reap_blocking(::pid_t pid, WorkerDeath& death) {
  return reap(pid, /*blocking=*/true, death);
}

bool ForkBroker::reap_poll(::pid_t pid, WorkerDeath& death) {
  return reap(pid, /*blocking=*/false, death);
}

void ForkBroker::shutdown() {
  ::pid_t pid = -1;
  {
    MutexLock lock(mu_);
    channel_.reset();  // EOF is the broker's shutdown signal
    pid = broker_pid_;
    broker_pid_ = -1;
  }
  if (pid <= 0) return;
  // Bounded cooperative wait (~2 s): the broker's teardown is trivial when
  // the pool reaped all workers first, so this normally returns on the
  // first probe. A wedged broker is SIGKILLed — its workers got SIGKILL
  // from the pool already or will die on their channels' EOF.
  for (int tick = 0; tick < 200; ++tick) {
    int status = 0;
    const ::pid_t got = ::waitpid(pid, &status, WNOHANG);
    if (got == pid || (got < 0 && errno != EINTR)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  (void)::kill(pid, SIGKILL);
  for (;;) {
    int status = 0;
    const ::pid_t got = ::waitpid(pid, &status, 0);
    if (got == pid || (got < 0 && errno != EINTR)) break;
  }
}

}  // namespace dsmt::supervise
