// Fork broker: the single-threaded proxy that makes runtime reforks safe.
//
// fork() in a multi-threaded process copies only the calling thread, but the
// WHOLE address space — including any lock another thread happened to hold
// at that instant. A child that then runs ordinary C++ (malloc, JSON, Server
// construction) can deadlock on an inherited, forever-locked allocator
// mutex. The WorkerPool therefore never forks from a pool thread: it forks
// ONE broker child inside its constructor's single-threaded window, and the
// broker — single-threaded for its whole life, so its heap and locks are
// consistent at every instant — forks every worker on the pool's behalf.
//
// The control channel is a SOCK_SEQPACKET socketpair speaking fixed-size
// binary commands. A spawn reply carries the parent end of the new worker's
// channel as SCM_RIGHTS ancillary data; reap replies carry the wait4()
// summary (signal, exit code, peak RSS) of a worker the broker fathered.
// Workers are the broker's children, not the pool's, so all reaping flows
// through the broker; the pool may still SIGKILL a worker directly (same
// uid), which is how deadline kills stay immediate.
//
// Teardown: the broker exits when the control channel reaches EOF —
// including the case where the pool process dies without cleanup — and on
// the way out SIGKILLs and reaps any workers not yet reaped, so no orphan
// can outlive the supervisor.
#pragma once

#include <sys/types.h>

#include <cstddef>

#include "core/thread_annotations.h"
#include "net/socket_io.h"
#include "service/server.h"
#include "supervise/worker.h"

namespace dsmt::supervise {

/// wait4() summary of one reaped worker.
struct WorkerDeath {
  bool reaped = false;  ///< false: still running (poll) or unknown to wait4
  int signal = 0;       ///< terminating signal, 0 when it exited
  int exit_code = -1;   ///< exit status, -1 when signalled
  long maxrss_kb = 0;   ///< peak RSS [KiB] from rusage
};

class ForkBroker {
 public:
  /// Forks the broker child. MUST be constructed while the process is
  /// single-threaded (the WorkerPool constructor's documented window) —
  /// that one fork is the only one that ever happens from this process.
  /// `payload_cap` is the clamped per-direction IPC payload limit [bytes];
  /// the broker sizes every worker socketpair's send buffers to it.
  ForkBroker(service::ServerConfig service, WorkerLimits limits,
             std::size_t payload_cap);
  ~ForkBroker();
  ForkBroker(const ForkBroker&) = delete;
  ForkBroker& operator=(const ForkBroker&) = delete;

  /// True while the broker child is believed alive and the control channel
  /// is open. A dead broker degrades the pool to spawn failures — live
  /// workers keep serving.
  bool ok() const;

  /// Forks one worker via the broker: on success `channel` holds the parent
  /// end of the worker's SEQPACKET channel and `pid` its process id.
  bool spawn(net::Fd& channel, ::pid_t& pid);

  /// Blocking reap of `pid` (callers SIGKILL first, so this cannot wait on
  /// a live child). Returns false only when the broker itself is gone.
  bool reap_blocking(::pid_t pid, WorkerDeath& death);

  /// WNOHANG probe: `death.reaped` says whether `pid` was collected.
  /// Returns false only when the broker itself is gone.
  bool reap_poll(::pid_t pid, WorkerDeath& death);

  /// Closes the control channel (the broker kills/reaps leftover workers
  /// and exits) and reaps the broker child itself, SIGKILL after a bounded
  /// wait. Idempotent; called by the destructor.
  void shutdown();

 private:
  bool reap(::pid_t pid, bool blocking, WorkerDeath& death);

  mutable Mutex mu_;
  net::Fd channel_ DSMT_GUARDED_BY(mu_);
  ::pid_t broker_pid_ DSMT_GUARDED_BY(mu_) = -1;
};

}  // namespace dsmt::supervise
