// Self-consistent limits for arbitrary current waveforms (Hunter Part II
// [18]: Eq. 13 holds for general time-varying waveforms with an effective
// duty cycle r_eff = (j_rms/j_peak)^2).
//
// Given a sampled waveform *shape* (one period of the current a line will
// actually carry — e.g. straight from the MNA engine), this module:
//   - computes r_eff and the shape's rms/peak/avg ratios,
//   - solves the self-consistent equation at r_eff,
//   - reports the maximum amplitude scale the line tolerates: the factor by
//     which the candidate waveform may be multiplied before it exactly
//     meets the EM + self-heating limit.
#pragma once

#include <vector>

#include "selfconsistent/solver.h"

namespace dsmt::selfconsistent {

/// Shape metrics of a sampled waveform (amplitude-invariant).
struct WaveformShape {
  double duty_effective = 0.0;  ///< (rms/peak)^2 [1]
  double rms_over_peak = 0.0;       ///< [1]
  double avg_abs_over_peak = 0.0;   ///< [1]
  double peak = 0.0;  ///< of the input samples [same unit as input]
};

/// Measures the shape of samples j(t) (or I(t) — units cancel).
WaveformShape measure_shape(const std::vector<double>& t,
                            const std::vector<double>& j);

/// Self-consistent verdict for a concrete waveform on a concrete line.
struct WaveformVerdict {
  WaveformShape shape;
  Solution limit;  ///< solved at r_eff
  /// The waveform's own peak density.
  units::CurrentDensity jpeak_actual{};
  double amplitude_margin = 0.0;  ///< limit.j_peak / jpeak_actual [1]
  bool pass = false;              ///< amplitude_margin >= 1
};

/// Evaluates sampled current densities j(t) [A/m^2] against the line
/// described by `base` (whose duty_cycle field is ignored — r_eff from the
/// waveform is used instead).
WaveformVerdict evaluate_waveform(const Problem& base,
                                  const std::vector<double>& t,
                                  const std::vector<double>& j);

/// Bipolar-aware variant (the paper: signal lines carry bidirectional
/// currents and "are known to have much higher EM immunity, hence the
/// self-consistent values ... are lower bounds"). Heating is unchanged
/// (j_rms is polarity-blind) but the EM stress uses Liew's recovery model
/// with factor `gamma`: the EM-effective average is reduced relative to
/// the unipolar |j| average, which is equivalent to relaxing the design
/// rule j0 by the waveform's bipolar immunity factor. Even gamma = 0
/// credits polarity separation (each polarity only drives its own damage
/// direction), so the margin is always >= evaluate_waveform's conservative
/// |j| treatment; gamma -> 1 adds full healing.
WaveformVerdict evaluate_waveform_bipolar(const Problem& base,
                                          const std::vector<double>& t,
                                          const std::vector<double>& j,
                                          double gamma);

}  // namespace dsmt::selfconsistent
