#include "selfconsistent/waveform.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "em/bipolar.h"
#include "numeric/stats.h"

namespace dsmt::selfconsistent {

WaveformShape measure_shape(const std::vector<double>& t,
                            const std::vector<double>& j) {
  if (t.size() != j.size() || t.size() < 2)
    throw std::invalid_argument("measure_shape: need >=2 samples");
  WaveformShape s;
  s.peak = numeric::peak_abs(j);
  if (s.peak <= 0.0)
    throw std::invalid_argument("measure_shape: waveform is identically 0");
  const double rms = numeric::rms_sampled(t, j);
  std::vector<double> abs_j(j.size());
  for (std::size_t i = 0; i < j.size(); ++i) abs_j[i] = std::abs(j[i]);
  const double avg_abs = numeric::mean_sampled(t, abs_j);
  s.rms_over_peak = rms / s.peak;
  s.avg_abs_over_peak = avg_abs / s.peak;
  s.duty_effective = s.rms_over_peak * s.rms_over_peak;
  return s;
}

WaveformVerdict evaluate_waveform(const Problem& base,
                                  const std::vector<double>& t,
                                  const std::vector<double>& j) {
  WaveformVerdict v;
  v.shape = measure_shape(t, j);

  Problem p = base;
  p.duty_cycle = std::clamp(v.shape.duty_effective, 1e-6, 1.0);
  v.limit = solve(p);
  v.jpeak_actual = A_per_m2(v.shape.peak);
  v.amplitude_margin =
      v.jpeak_actual > 0.0 ? v.limit.j_peak / v.jpeak_actual : 0.0;
  v.pass = v.amplitude_margin >= 1.0;
  return v;
}

WaveformVerdict evaluate_waveform_bipolar(const Problem& base,
                                          const std::vector<double>& t,
                                          const std::vector<double>& j,
                                          double gamma) {
  // Recovery scales the EM stress down; raising j0 by the immunity factor
  // is the equivalent transformation of Eq. 13's EM side (heating side
  // untouched since it depends on j_rms only).
  const double immunity = em::bipolar_immunity_factor(t, j, gamma);
  Problem p = base;
  if (std::isfinite(immunity)) p.j0 = base.j0 * immunity;
  // Perfectly symmetric waveform with full recovery: EM vanishes; keep a
  // huge-but-finite j0 so the thermal side alone caps the answer.
  else
    p.j0 = base.j0 * 1e6;
  return evaluate_waveform(p, t, j);
}

}  // namespace dsmt::selfconsistent
