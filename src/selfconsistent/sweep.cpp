#include "selfconsistent/sweep.h"

#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "core/checkpoint.h"
#include "parallel/parallel_for.h"
#include "thermal/impedance.h"

namespace dsmt::selfconsistent {

namespace {

using core::hash_mix;

/// Folds the job-defining fields of a Problem into a checkpoint config hash.
/// Resistivity at T_ref stands in for the (rho_ref, tcr, t_ref) triple.
std::uint64_t hash_problem(std::uint64_t h, const Problem& p) {
  h = hash_mix(h, p.duty_cycle);
  h = hash_mix(h, p.j0.value());
  h = hash_mix(h, p.t_ref.value());
  h = hash_mix(h, p.heating_coefficient.value());
  h = hash_mix(h, p.metal.name);
  h = hash_mix(h, p.metal.resistivity(p.t_ref));
  h = hash_mix(h, p.metal.em.activation_energy_ev);
  h = hash_mix(h, p.metal.em.current_exponent);
  return h;
}

/// Solution <-> checkpoint slot payload. The diag chain is intentionally not
/// part of the payload: resume must reproduce the numeric outputs bitwise,
/// and a restored solution's provenance is recorded as a fresh diag entry.
constexpr std::size_t kSolutionDoubles = 7;

void encode_solution(const Solution& s, std::vector<double>& out) {
  out.push_back(s.t_metal.value());
  out.push_back(s.delta_t.value());
  out.push_back(s.j_peak.value());
  out.push_back(s.j_rms.value());
  out.push_back(s.j_avg.value());
  out.push_back(s.converged ? 1.0 : 0.0);
  out.push_back(static_cast<double>(s.iterations));
}

Solution decode_solution(const double* v) {
  Solution s;
  s.t_metal = units::Kelvin{v[0]};
  s.delta_t = units::CelsiusDelta{v[1]};
  s.j_peak = A_per_m2(v[2]);
  s.j_rms = A_per_m2(v[3]);
  s.j_avg = A_per_m2(v[4]);
  s.converged = v[5] != 0.0;
  s.iterations = static_cast<int>(v[6]);
  s.diag.kernel = "selfconsistent/solve";
  s.diag.record("selfconsistent/solve", core::StatusCode::kOk, s.iterations,
                0.0, "restored from checkpoint");
  return s;
}

constexpr std::size_t kPointDoubles = kSolutionDoubles + 3;

std::vector<double> encode_point(const DutyCyclePoint& pt) {
  std::vector<double> out;
  out.reserve(kPointDoubles);
  out.push_back(pt.duty_cycle);
  encode_solution(pt.sc, out);
  out.push_back(pt.jpeak_em_only.value());
  out.push_back(pt.jpeak_thermal_only.value());
  return out;
}

DutyCyclePoint decode_point(const double* v) {
  DutyCyclePoint pt;
  pt.duty_cycle = v[0];
  pt.sc = decode_solution(v + 1);
  pt.jpeak_em_only = A_per_m2(v[1 + kSolutionDoubles]);
  pt.jpeak_thermal_only = A_per_m2(v[2 + kSolutionDoubles]);
  return pt;
}

}  // namespace

std::vector<double> log_spaced(double lo, double hi, int points) {
  if (lo <= 0.0 || hi <= lo || points < 2)
    throw std::invalid_argument("log_spaced: bad range");
  std::vector<double> v(points);
  const double step = std::log(hi / lo) / (points - 1);
  for (int i = 0; i < points; ++i) v[i] = lo * std::exp(i * step);
  v.back() = hi;
  return v;
}

std::vector<DutyCyclePoint> sweep_duty_cycle(
    const Problem& base, const std::vector<double>& duty_cycles) {
  // Claim the run's checkpoint spec (if any) for this driver; a nested call
  // from sweep_j0 finds the spec already claimed and runs checkpoint-free.
  core::ClaimedCheckpoint claim;
  std::unique_ptr<core::SweepCheckpoint> cp;
  if (claim.spec() != nullptr) {
    std::uint64_t h = hash_problem(core::kConfigHashSeed, base);
    h = hash_mix(h, static_cast<std::uint64_t>(duty_cycles.size()));
    for (const double r : duty_cycles) h = hash_mix(h, r);
    cp = std::make_unique<core::SweepCheckpoint>(
        *claim.spec(), "duty_cycle_sweep", h, duty_cycles.size());
  }

  // Reference thermal-only line (b): j_rms at the r = 1 self-consistent
  // point, divided by sqrt(r).
  Problem dc = base;
  dc.duty_cycle = 1.0;
  const double jrms_dc = solve(dc).j_rms;

  // Each duty cycle is an independent self-consistent solve; the reference
  // jrms_dc above is fixed first so every point sees the same value.
  auto points = parallel::parallel_map<DutyCyclePoint>(
      duty_cycles.size(), [&](std::size_t k) {
        if (cp != nullptr && cp->has(k)) return decode_point(cp->values(k).data());
        const double r = duty_cycles[k];
        Problem p = base;
        p.duty_cycle = r;
        DutyCyclePoint pt;
        pt.duty_cycle = r;
        pt.sc = solve(p);
        pt.jpeak_em_only = jpeak_em_only(p);
        pt.jpeak_thermal_only = A_per_m2(jrms_dc / std::sqrt(r));
        if (cp != nullptr) cp->store(k, encode_point(pt));
        return pt;
      });
  if (cp != nullptr) cp->flush();
  return points;
}

std::vector<std::vector<DutyCyclePoint>> sweep_j0(
    const Problem& base, const std::vector<double>& j0_values,
    const std::vector<double>& duty_cycles) {
  // Claim before the nested sweeps can: one slot = one whole j0 row, so the
  // file granularity matches the outer parallel grid.
  core::ClaimedCheckpoint claim;
  std::unique_ptr<core::SweepCheckpoint> cp;
  if (claim.spec() != nullptr) {
    std::uint64_t h = hash_problem(core::kConfigHashSeed, base);
    h = hash_mix(h, static_cast<std::uint64_t>(j0_values.size()));
    for (const double j : j0_values) h = hash_mix(h, j);
    h = hash_mix(h, static_cast<std::uint64_t>(duty_cycles.size()));
    for (const double r : duty_cycles) h = hash_mix(h, r);
    cp = std::make_unique<core::SweepCheckpoint>(*claim.spec(), "j0_sweep", h,
                                                 j0_values.size());
  }

  // Parallel over the j0 family; the nested sweep_duty_cycle runs inline on
  // the worker, so the grid is covered once with no oversubscription.
  auto rows = parallel::parallel_map<std::vector<DutyCyclePoint>>(
      j0_values.size(), [&](std::size_t i) {
        if (cp != nullptr && cp->has(i)) {
          const std::vector<double>& flat = cp->values(i);
          std::vector<DutyCyclePoint> row;
          row.reserve(duty_cycles.size());
          for (std::size_t k = 0; k < duty_cycles.size(); ++k)
            row.push_back(decode_point(flat.data() + k * kPointDoubles));
          return row;
        }
        Problem p = base;
        p.j0 = A_per_m2(j0_values[i]);
        auto row = sweep_duty_cycle(p, duty_cycles);
        if (cp != nullptr) {
          std::vector<double> flat;
          flat.reserve(row.size() * kPointDoubles);
          for (const DutyCyclePoint& pt : row) {
            const auto enc = encode_point(pt);
            flat.insert(flat.end(), enc.begin(), enc.end());
          }
          cp->store(i, std::move(flat));
        }
        return row;
      });
  if (cp != nullptr) cp->flush();
  return rows;
}

Problem make_level_problem(const tech::Technology& technology, int level,
                           const materials::Dielectric& gap_fill, double phi,
                           double duty_cycle, units::CurrentDensity j0) {
  const auto& layer = technology.layer(level);
  const auto stack = technology.stack_below(level, gap_fill);
  const auto b = metres(stack.total_thickness());
  const auto w_eff = thermal::effective_width(metres(layer.width), b, phi);
  const auto rth = thermal::rth_per_length(stack, w_eff);

  Problem p;
  p.metal = technology.metal;
  p.duty_cycle = duty_cycle;
  p.j0 = j0;
  p.heating_coefficient = heating_coefficient(
      metres(layer.width), metres(layer.thickness), rth);
  return p;
}

std::vector<TableCell> generate_design_rule_table(const TableSpec& spec) {
  // Flatten the (duty x gap-fill x level) grid so every cell solves in
  // parallel; the flattened index preserves the serial nesting order, so
  // the returned vector is laid out exactly as the loop version's.
  const std::size_t n_r = spec.duty_cycles.size();
  const std::size_t n_gf = spec.gap_fills.size();
  const std::size_t n_lv = spec.levels.size();

  core::ClaimedCheckpoint claim;
  std::unique_ptr<core::SweepCheckpoint> cp;
  if (claim.spec() != nullptr) {
    std::uint64_t h = hash_mix(core::kConfigHashSeed, spec.technology.name);
    for (const int lv : spec.levels)
      h = hash_mix(h, static_cast<std::uint64_t>(lv));
    for (const auto& gf : spec.gap_fills) {
      h = hash_mix(h, gf.name);
      h = hash_mix(h, gf.k_thermal.value());
    }
    for (const double r : spec.duty_cycles) h = hash_mix(h, r);
    h = hash_mix(h, spec.j0.value());
    h = hash_mix(h, spec.phi);
    cp = std::make_unique<core::SweepCheckpoint>(
        *claim.spec(), "design_rule_table", h, n_r * n_gf * n_lv);
  }

  auto cells = parallel::parallel_map<TableCell>(
      n_r * n_gf * n_lv, [&](std::size_t idx) {
        const double r = spec.duty_cycles[idx / (n_gf * n_lv)];
        const auto& gf = spec.gap_fills[(idx / n_lv) % n_gf];
        const int level = spec.levels[idx % n_lv];
        TableCell cell;
        cell.level = level;
        cell.dielectric = gf.name;
        cell.duty_cycle = r;
        // The (level, dielectric, duty) key is derived from the flattened
        // index, so the slot payload only needs the Solution fields.
        if (cp != nullptr && cp->has(idx)) {
          cell.sol = decode_solution(cp->values(idx).data());
          return cell;
        }
        cell.sol = solve(make_level_problem(spec.technology, level, gf,
                                            spec.phi, r, spec.j0));
        if (cp != nullptr) {
          std::vector<double> enc;
          enc.reserve(kSolutionDoubles);
          encode_solution(cell.sol, enc);
          cp->store(idx, std::move(enc));
        }
        return cell;
      });
  if (cp != nullptr) cp->flush();
  return cells;
}

}  // namespace dsmt::selfconsistent
