#include "selfconsistent/sweep.h"

#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/checkpoint.h"
#include "parallel/parallel_for.h"
#include "selfconsistent/batch.h"
#include "thermal/impedance.h"

namespace dsmt::selfconsistent {

namespace {

using core::hash_mix;

/// Folds the job-defining fields of a Problem into a checkpoint config hash.
/// Resistivity at T_ref stands in for the (rho_ref, tcr, t_ref) triple.
std::uint64_t hash_problem(std::uint64_t h, const Problem& p) {
  h = hash_mix(h, p.duty_cycle);
  h = hash_mix(h, p.j0.value());
  h = hash_mix(h, p.t_ref.value());
  h = hash_mix(h, p.heating_coefficient.value());
  h = hash_mix(h, p.metal.name);
  h = hash_mix(h, p.metal.resistivity(p.t_ref));
  h = hash_mix(h, p.metal.em.activation_energy_ev);
  h = hash_mix(h, p.metal.em.current_exponent);
  return h;
}

/// Solution <-> checkpoint slot payload. The diag chain is intentionally not
/// part of the payload: resume must reproduce the numeric outputs bitwise,
/// and a restored solution's provenance is recorded as a fresh diag entry.
constexpr std::size_t kSolutionDoubles = 7;

void encode_solution(const Solution& s, std::vector<double>& out) {
  out.push_back(s.t_metal.value());
  out.push_back(s.delta_t.value());
  out.push_back(s.j_peak.value());
  out.push_back(s.j_rms.value());
  out.push_back(s.j_avg.value());
  out.push_back(s.converged ? 1.0 : 0.0);
  out.push_back(static_cast<double>(s.iterations));
}

Solution decode_solution(const double* v) {
  Solution s;
  s.t_metal = units::Kelvin{v[0]};
  s.delta_t = units::CelsiusDelta{v[1]};
  s.j_peak = A_per_m2(v[2]);
  s.j_rms = A_per_m2(v[3]);
  s.j_avg = A_per_m2(v[4]);
  s.converged = v[5] != 0.0;
  s.iterations = static_cast<int>(v[6]);
  s.diag.kernel = "eq13/solve";
  s.diag.record("eq13/solve", core::StatusCode::kOk, s.iterations,
                0.0, "restored from checkpoint");
  return s;
}

constexpr std::size_t kPointDoubles = kSolutionDoubles + 3;

std::vector<double> encode_point(const DutyCyclePoint& pt) {
  std::vector<double> out;
  out.reserve(kPointDoubles);
  out.push_back(pt.duty_cycle);
  encode_solution(pt.sc, out);
  out.push_back(pt.jpeak_em_only.value());
  out.push_back(pt.jpeak_thermal_only.value());
  return out;
}

DutyCyclePoint decode_point(const double* v) {
  DutyCyclePoint pt;
  pt.duty_cycle = v[0];
  pt.sc = decode_solution(v + 1);
  pt.jpeak_em_only = A_per_m2(v[1 + kSolutionDoubles]);
  pt.jpeak_thermal_only = A_per_m2(v[2 + kSolutionDoubles]);
  return pt;
}

}  // namespace

std::vector<double> log_spaced(double lo, double hi, int points) {
  if (lo <= 0.0 || hi <= lo || points < 2)
    throw std::invalid_argument("log_spaced: bad range");
  std::vector<double> v(points);
  const double step = std::log(hi / lo) / (points - 1);
  for (int i = 0; i < points; ++i) v[i] = lo * std::exp(i * step);
  v.back() = hi;
  return v;
}

std::vector<DutyCyclePoint> sweep_duty_cycle(
    const Problem& base, const std::vector<double>& duty_cycles) {
  // Claim the run's checkpoint spec (if any) for this driver; a nested call
  // from sweep_j0 finds the spec already claimed and runs checkpoint-free.
  core::ClaimedCheckpoint claim;
  std::unique_ptr<core::SweepCheckpoint> cp;
  if (claim.spec() != nullptr) {
    std::uint64_t h = hash_problem(core::kConfigHashSeed, base);
    h = hash_mix(h, static_cast<std::uint64_t>(duty_cycles.size()));
    for (const double r : duty_cycles) h = hash_mix(h, r);
    cp = std::make_unique<core::SweepCheckpoint>(
        *claim.spec(), "duty_cycle_sweep", h, duty_cycles.size());
  }

  // Reference thermal-only line (b): j_rms at the r = 1 self-consistent
  // point, divided by sqrt(r).
  Problem dc = base;
  dc.duty_cycle = 1.0;
  const double jrms_dc = solve_one(dc).j_rms;

  // Restore checkpointed points up front, then solve the remainder as ONE
  // batch: each duty cycle is still an independent self-consistent solve
  // (one lane), and the batch decomposes over parallel_for in static index
  // blocks, so the bits match the old per-point parallel_map at every
  // thread count.
  const std::size_t n = duty_cycles.size();
  std::vector<DutyCyclePoint> points(n);
  std::vector<std::size_t> todo;
  todo.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    if (cp != nullptr && cp->has(k)) {
      points[k] = decode_point(cp->values(k).data());
    } else {
      todo.push_back(k);
    }
  }

  if (!todo.empty()) {
    BatchProblem bp;
    bp.reserve(todo.size());
    for (const std::size_t k : todo) {
      // push_back only reads the POD physics fields, so push the base and
      // patch the lane's duty in place of copying a whole Problem (the
      // metal name alone would cost an allocation per lane).
      bp.push_back(base);
      bp.duty_cycle.back() = duty_cycles[k];
    }
    const auto make_point = [&](std::size_t lane, Solution sol) {
      const std::size_t k = todo[lane];
      const double r = duty_cycles[k];
      Problem p = base;
      p.duty_cycle = r;
      DutyCyclePoint pt;
      pt.duty_cycle = r;
      pt.sc = std::move(sol);
      pt.jpeak_em_only = jpeak_em_only(p);
      pt.jpeak_thermal_only = A_per_m2(jrms_dc / std::sqrt(r));
      return pt;
    };
    // A per-lane callback (running on the solving worker the moment a lane
    // converges) exists to preserve the old per-point checkpoint store
    // granularity; without a checkpoint the lanes are drained after the
    // batch instead, moving each diag chain out rather than copying it.
    LaneCallback on_done;
    if (cp != nullptr) {
      on_done = [&](std::size_t lane, const BatchSolution& partial) {
        const std::size_t k = todo[lane];
        DutyCyclePoint pt = make_point(lane, partial.lane_solution(lane));
        cp->store(k, encode_point(pt));
        points[k] = std::move(pt);
      };
    }
    BatchSolution bs = solve_batch(bp, on_done);
    // Same failure contract as parallel_map's FirstError: the lowest-index
    // failed lane's exception, with completed slots already stored (and, as
    // before, no flush on the exception path).
    bs.throw_first_failure();
    if (cp == nullptr) {
      for (std::size_t lane = 0; lane < todo.size(); ++lane)
        points[todo[lane]] = make_point(lane, bs.take_lane_solution(lane));
    }
  }
  if (cp != nullptr) cp->flush();
  return points;
}

std::vector<std::vector<DutyCyclePoint>> sweep_j0(
    const Problem& base, const std::vector<double>& j0_values,
    const std::vector<double>& duty_cycles) {
  // Claim before the nested sweeps can: one slot = one whole j0 row, so the
  // file granularity matches the outer parallel grid.
  core::ClaimedCheckpoint claim;
  std::unique_ptr<core::SweepCheckpoint> cp;
  if (claim.spec() != nullptr) {
    std::uint64_t h = hash_problem(core::kConfigHashSeed, base);
    h = hash_mix(h, static_cast<std::uint64_t>(j0_values.size()));
    for (const double j : j0_values) h = hash_mix(h, j);
    h = hash_mix(h, static_cast<std::uint64_t>(duty_cycles.size()));
    for (const double r : duty_cycles) h = hash_mix(h, r);
    cp = std::make_unique<core::SweepCheckpoint>(*claim.spec(), "j0_sweep", h,
                                                 j0_values.size());
  }

  // Parallel over the j0 family; the nested sweep_duty_cycle runs inline on
  // the worker, so the grid is covered once with no oversubscription.
  auto rows = parallel::parallel_map<std::vector<DutyCyclePoint>>(
      j0_values.size(), [&](std::size_t i) {
        if (cp != nullptr && cp->has(i)) {
          const std::vector<double>& flat = cp->values(i);
          std::vector<DutyCyclePoint> row;
          row.reserve(duty_cycles.size());
          for (std::size_t k = 0; k < duty_cycles.size(); ++k)
            row.push_back(decode_point(flat.data() + k * kPointDoubles));
          return row;
        }
        Problem p = base;
        p.j0 = A_per_m2(j0_values[i]);
        auto row = sweep_duty_cycle(p, duty_cycles);
        if (cp != nullptr) {
          std::vector<double> flat;
          flat.reserve(row.size() * kPointDoubles);
          for (const DutyCyclePoint& pt : row) {
            const auto enc = encode_point(pt);
            flat.insert(flat.end(), enc.begin(), enc.end());
          }
          cp->store(i, std::move(flat));
        }
        return row;
      });
  if (cp != nullptr) cp->flush();
  return rows;
}

Problem make_level_problem(const tech::Technology& technology, int level,
                           const materials::Dielectric& gap_fill, double phi,
                           double duty_cycle, units::CurrentDensity j0) {
  const auto& layer = technology.layer(level);
  const auto stack = technology.stack_below(level, gap_fill);
  const auto b = metres(stack.total_thickness());
  const auto w_eff = thermal::effective_width(metres(layer.width), b, phi);
  const auto rth = thermal::rth_per_length(stack, w_eff);

  Problem p;
  p.metal = technology.metal;
  p.duty_cycle = duty_cycle;
  p.j0 = j0;
  p.heating_coefficient = heating_coefficient(
      metres(layer.width), metres(layer.thickness), rth);
  return p;
}

std::vector<TableCell> generate_design_rule_table(const TableSpec& spec) {
  // Flatten the (duty x gap-fill x level) grid so every cell solves in
  // parallel; the flattened index preserves the serial nesting order, so
  // the returned vector is laid out exactly as the loop version's.
  const std::size_t n_r = spec.duty_cycles.size();
  const std::size_t n_gf = spec.gap_fills.size();
  const std::size_t n_lv = spec.levels.size();

  core::ClaimedCheckpoint claim;
  std::unique_ptr<core::SweepCheckpoint> cp;
  if (claim.spec() != nullptr) {
    std::uint64_t h = hash_mix(core::kConfigHashSeed, spec.technology.name);
    for (const int lv : spec.levels)
      h = hash_mix(h, static_cast<std::uint64_t>(lv));
    for (const auto& gf : spec.gap_fills) {
      h = hash_mix(h, gf.name);
      h = hash_mix(h, gf.k_thermal.value());
    }
    for (const double r : spec.duty_cycles) h = hash_mix(h, r);
    h = hash_mix(h, spec.j0.value());
    h = hash_mix(h, spec.phi);
    cp = std::make_unique<core::SweepCheckpoint>(
        *claim.spec(), "design_rule_table", h, n_r * n_gf * n_lv);
  }

  // Key the cells and restore checkpointed slots up front. The (level,
  // dielectric, duty) key is derived from the flattened index, so the slot
  // payload only needs the Solution fields.
  const std::size_t n_cells = n_r * n_gf * n_lv;
  std::vector<TableCell> cells(n_cells);
  std::vector<std::size_t> todo;
  todo.reserve(n_cells);
  // Direct traversal of the (duty, gap fill, level) nesting — the same
  // flattened order idx = (r_idx * n_gf + gf_idx) * n_lv + lv_idx, without
  // the three per-cell divisions of decoding idx back into indices.
  {
    std::size_t idx = 0;
    for (std::size_t r_idx = 0; r_idx < n_r; ++r_idx)
      for (std::size_t gf_idx = 0; gf_idx < n_gf; ++gf_idx)
        for (std::size_t lv_idx = 0; lv_idx < n_lv; ++lv_idx, ++idx) {
          TableCell& cell = cells[idx];
          cell.level = spec.levels[lv_idx];
          cell.dielectric = spec.gap_fills[gf_idx].name;
          cell.duty_cycle = spec.duty_cycles[r_idx];
          if (cp != nullptr && cp->has(idx)) {
            cell.sol = decode_solution(cp->values(idx).data());
          } else {
            todo.push_back(idx);
          }
        }
  }

  if (!todo.empty()) {
    // One batch over the remaining cells. The duty cycle only sets
    // Problem::duty_cycle (the heating coefficient is geometry-only), so
    // each (gap-fill, level) pair builds its layer stack exactly once and
    // the n_r duty variants reuse the prototype — bit-identical lanes,
    // n_r x fewer stack constructions. Prototypes are built lazily in todo
    // order so a bad level still throws from the same lowest cell a
    // parallel_map would have reported, and a fully restored run builds
    // nothing at all.
    const auto slot_of = [n_lv, n_gf](std::size_t idx) {
      return ((idx / n_lv) % n_gf) * n_lv + idx % n_lv;
    };
    std::vector<Problem> protos(n_gf * n_lv);
    std::vector<char> built(n_gf * n_lv, 0);
    for (const std::size_t idx : todo) {
      const std::size_t slot = slot_of(idx);
      if (!built[slot]) {
        protos[slot] = make_level_problem(
            spec.technology, spec.levels[idx % n_lv],
            spec.gap_fills[(idx / n_lv) % n_gf], spec.phi,
            spec.duty_cycles[idx / (n_gf * n_lv)], spec.j0);
        built[slot] = 1;
      }
    }
    // Lane order groups each prototype's duty variants contiguously (duty
    // innermost), which is what the batch solver's duty-run memo shares
    // rho(T)/exp evaluations across. The public cell order is untouched:
    // order[] maps lane -> flattened cell index. Built by direct traversal
    // of the (gap fill, level, duty) grid — no sort, no divisions.
    // pending[] only matters when a checkpoint restored part of the table;
    // the common full-solve case skips the bitmap and its per-cell test.
    const bool all_pending = todo.size() == n_cells;
    std::vector<char> pending;
    if (!all_pending) {
      pending.assign(n_cells, 0);
      for (const std::size_t idx : todo) pending[idx] = 1;
    }
    std::vector<std::size_t> order;
    order.reserve(todo.size());
    BatchProblem bp;
    bp.reserve(todo.size());
    for (std::size_t gf_idx = 0; gf_idx < n_gf; ++gf_idx)
      for (std::size_t lv_idx = 0; lv_idx < n_lv; ++lv_idx) {
        const std::size_t slot = gf_idx * n_lv + lv_idx;
        for (std::size_t r_idx = 0; r_idx < n_r; ++r_idx) {
          const std::size_t idx = (r_idx * n_gf + gf_idx) * n_lv + lv_idx;
          if (!all_pending && !pending[idx]) continue;
          order.push_back(idx);
          // push_back only reads the POD physics fields, so patch the
          // lane's duty in place of copying the whole prototype per cell.
          bp.push_back(protos[slot]);
          bp.duty_cycle.back() = spec.duty_cycles[r_idx];
        }
      }
    // Per-lane callback only when a checkpoint wants the old per-cell store
    // granularity; otherwise drain the lanes post-batch, moving each diag
    // chain out instead of copying it.
    LaneCallback on_done;
    if (cp != nullptr) {
      on_done = [&](std::size_t lane, const BatchSolution& partial) {
        const std::size_t idx = order[lane];
        cells[idx].sol = partial.lane_solution(lane);
        std::vector<double> enc;
        enc.reserve(kSolutionDoubles);
        encode_solution(cells[idx].sol, enc);
        cp->store(idx, std::move(enc));
      };
    }
    BatchSolution bs = solve_batch(bp, on_done);
    // Same failure contract as parallel_map's FirstError: the lowest-index
    // failed CELL throws — which, with the lane permutation, is no longer
    // the lowest failed lane.
    std::size_t bad_lane = BatchSolution::npos;
    std::size_t bad_cell = n_cells;
    for (std::size_t lane = 0; lane < order.size(); ++lane) {
      if (!bs.ok(lane) && order[lane] < bad_cell) {
        bad_lane = lane;
        bad_cell = order[lane];
      }
    }
    if (bad_lane != BatchSolution::npos) bs.throw_lane(bad_lane);
    if (cp == nullptr) {
      // Drain in CELL order: the big writes (a Solution per TableCell) land
      // sequentially; only the much smaller per-lane reads are scattered by
      // the permutation. lane_for inverts order[].
      std::vector<std::size_t> lane_for(n_cells, 0);
      for (std::size_t lane = 0; lane < order.size(); ++lane)
        lane_for[order[lane]] = lane;
      for (const std::size_t cell_idx : todo)
        bs.drain_lane_into(lane_for[cell_idx], cells[cell_idx].sol);
    }
  }
  if (cp != nullptr) cp->flush();
  return cells;
}

}  // namespace dsmt::selfconsistent
