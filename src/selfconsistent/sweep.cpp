#include "selfconsistent/sweep.h"

#include <cmath>
#include <stdexcept>

#include "parallel/parallel_for.h"
#include "thermal/impedance.h"

namespace dsmt::selfconsistent {

std::vector<double> log_spaced(double lo, double hi, int points) {
  if (lo <= 0.0 || hi <= lo || points < 2)
    throw std::invalid_argument("log_spaced: bad range");
  std::vector<double> v(points);
  const double step = std::log(hi / lo) / (points - 1);
  for (int i = 0; i < points; ++i) v[i] = lo * std::exp(i * step);
  v.back() = hi;
  return v;
}

std::vector<DutyCyclePoint> sweep_duty_cycle(
    const Problem& base, const std::vector<double>& duty_cycles) {
  // Reference thermal-only line (b): j_rms at the r = 1 self-consistent
  // point, divided by sqrt(r).
  Problem dc = base;
  dc.duty_cycle = 1.0;
  const double jrms_dc = solve(dc).j_rms;

  // Each duty cycle is an independent self-consistent solve; the reference
  // jrms_dc above is fixed first so every point sees the same value.
  return parallel::parallel_map<DutyCyclePoint>(
      duty_cycles.size(), [&](std::size_t k) {
        const double r = duty_cycles[k];
        Problem p = base;
        p.duty_cycle = r;
        DutyCyclePoint pt;
        pt.duty_cycle = r;
        pt.sc = solve(p);
        pt.jpeak_em_only = jpeak_em_only(p);
        pt.jpeak_thermal_only = A_per_m2(jrms_dc / std::sqrt(r));
        return pt;
      });
}

std::vector<std::vector<DutyCyclePoint>> sweep_j0(
    const Problem& base, const std::vector<double>& j0_values,
    const std::vector<double>& duty_cycles) {
  // Parallel over the j0 family; the nested sweep_duty_cycle runs inline on
  // the worker, so the grid is covered once with no oversubscription.
  return parallel::parallel_map<std::vector<DutyCyclePoint>>(
      j0_values.size(), [&](std::size_t i) {
        Problem p = base;
        p.j0 = A_per_m2(j0_values[i]);
        return sweep_duty_cycle(p, duty_cycles);
      });
}

Problem make_level_problem(const tech::Technology& technology, int level,
                           const materials::Dielectric& gap_fill, double phi,
                           double duty_cycle, units::CurrentDensity j0) {
  const auto& layer = technology.layer(level);
  const auto stack = technology.stack_below(level, gap_fill);
  const auto b = metres(stack.total_thickness());
  const auto w_eff = thermal::effective_width(metres(layer.width), b, phi);
  const auto rth = thermal::rth_per_length(stack, w_eff);

  Problem p;
  p.metal = technology.metal;
  p.duty_cycle = duty_cycle;
  p.j0 = j0;
  p.heating_coefficient = heating_coefficient(
      metres(layer.width), metres(layer.thickness), rth);
  return p;
}

std::vector<TableCell> generate_design_rule_table(const TableSpec& spec) {
  // Flatten the (duty x gap-fill x level) grid so every cell solves in
  // parallel; the flattened index preserves the serial nesting order, so
  // the returned vector is laid out exactly as the loop version's.
  const std::size_t n_r = spec.duty_cycles.size();
  const std::size_t n_gf = spec.gap_fills.size();
  const std::size_t n_lv = spec.levels.size();
  return parallel::parallel_map<TableCell>(
      n_r * n_gf * n_lv, [&](std::size_t idx) {
        const double r = spec.duty_cycles[idx / (n_gf * n_lv)];
        const auto& gf = spec.gap_fills[(idx / n_lv) % n_gf];
        const int level = spec.levels[idx % n_lv];
        TableCell cell;
        cell.level = level;
        cell.dielectric = gf.name;
        cell.duty_cycle = r;
        cell.sol = solve(make_level_problem(spec.technology, level, gf,
                                            spec.phi, r, spec.j0));
        return cell;
      });
}

}  // namespace dsmt::selfconsistent
