#include "selfconsistent/sweep.h"

#include <cmath>
#include <stdexcept>

#include "thermal/impedance.h"

namespace dsmt::selfconsistent {

std::vector<double> log_spaced(double lo, double hi, int points) {
  if (lo <= 0.0 || hi <= lo || points < 2)
    throw std::invalid_argument("log_spaced: bad range");
  std::vector<double> v(points);
  const double step = std::log(hi / lo) / (points - 1);
  for (int i = 0; i < points; ++i) v[i] = lo * std::exp(i * step);
  v.back() = hi;
  return v;
}

std::vector<DutyCyclePoint> sweep_duty_cycle(
    const Problem& base, const std::vector<double>& duty_cycles) {
  // Reference thermal-only line (b): j_rms at the r = 1 self-consistent
  // point, divided by sqrt(r).
  Problem dc = base;
  dc.duty_cycle = 1.0;
  const double jrms_dc = solve(dc).j_rms;

  std::vector<DutyCyclePoint> out;
  out.reserve(duty_cycles.size());
  for (double r : duty_cycles) {
    Problem p = base;
    p.duty_cycle = r;
    DutyCyclePoint pt;
    pt.duty_cycle = r;
    pt.sc = solve(p);
    pt.jpeak_em_only = jpeak_em_only(p);
    pt.jpeak_thermal_only = A_per_m2(jrms_dc / std::sqrt(r));
    out.push_back(pt);
  }
  return out;
}

std::vector<std::vector<DutyCyclePoint>> sweep_j0(
    const Problem& base, const std::vector<double>& j0_values,
    const std::vector<double>& duty_cycles) {
  std::vector<std::vector<DutyCyclePoint>> out;
  out.reserve(j0_values.size());
  for (double j0 : j0_values) {
    Problem p = base;
    p.j0 = A_per_m2(j0);
    out.push_back(sweep_duty_cycle(p, duty_cycles));
  }
  return out;
}

Problem make_level_problem(const tech::Technology& technology, int level,
                           const materials::Dielectric& gap_fill, double phi,
                           double duty_cycle, units::CurrentDensity j0) {
  const auto& layer = technology.layer(level);
  const auto stack = technology.stack_below(level, gap_fill);
  const auto b = metres(stack.total_thickness());
  const auto w_eff = thermal::effective_width(metres(layer.width), b, phi);
  const auto rth = thermal::rth_per_length(stack, w_eff);

  Problem p;
  p.metal = technology.metal;
  p.duty_cycle = duty_cycle;
  p.j0 = j0;
  p.heating_coefficient = heating_coefficient(
      metres(layer.width), metres(layer.thickness), rth);
  return p;
}

std::vector<TableCell> generate_design_rule_table(const TableSpec& spec) {
  std::vector<TableCell> cells;
  for (double r : spec.duty_cycles) {
    for (const auto& gf : spec.gap_fills) {
      for (int level : spec.levels) {
        TableCell cell;
        cell.level = level;
        cell.dielectric = gf.name;
        cell.duty_cycle = r;
        cell.sol = solve(make_level_problem(spec.technology, level, gf,
                                            spec.phi, r, spec.j0));
        cells.push_back(cell);
      }
    }
  }
  return cells;
}

}  // namespace dsmt::selfconsistent
