#include "selfconsistent/solver.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/run_context.h"
#include "numeric/constants.h"
#include "numeric/roots.h"
#include "selfconsistent/eq13.h"

namespace dsmt::selfconsistent {

units::HeatingCoefficient heating_coefficient(
    units::Metres w_m, units::Metres t_m,
    units::ThermalResistancePerLength rth_per_len) {
  if (w_m <= 0.0 || t_m <= 0.0 || rth_per_len <= 0.0)
    throw std::invalid_argument("heating_coefficient: bad parameters");
  return w_m * t_m * rth_per_len;
}

namespace {
void validate(const Problem& p) {
  if (!std::isfinite(p.duty_cycle) || p.duty_cycle <= 0.0 ||
      p.duty_cycle > 1.0)
    throw std::invalid_argument("Problem: duty cycle outside (0,1]");
  if (!std::isfinite(p.j0) || p.j0 <= 0.0)
    throw std::invalid_argument("Problem: j0 <= 0 or non-finite");
  if (!std::isfinite(p.t_ref) || p.t_ref <= 0.0)
    throw std::invalid_argument("Problem: t_ref <= 0 or non-finite");
  if (!std::isfinite(p.heating_coefficient) || p.heating_coefficient <= 0.0)
    throw std::invalid_argument(
        "Problem: heating coefficient <= 0 or non-finite");
}

// The residual arithmetic itself lives in eq13.h, shared verbatim with the
// batched solver so the two paths cannot drift by an ulp.
}  // namespace

units::CurrentDensity jrms_thermal_at(const Problem& p, units::Kelvin t_m) {
  const double jrms2 = eq13::jrms2_thermal(eq13::make_terms(p), t_m);
  return A_per_m2(jrms2 > 0.0 ? std::sqrt(jrms2) : 0.0);
}

units::CurrentDensity javg_em_at(const Problem& p, units::Kelvin t_m) {
  return A_per_m2(std::sqrt(eq13::javg2_em(eq13::make_terms(p), t_m)));
}

double residual(const Problem& p, units::Kelvin t_m) {
  // r * j_rms^2(thermal) - j_avg^2(EM): negative below the root (thermal
  // side admits less than EM needs), positive above.
  return eq13::residual(eq13::make_terms(p), t_m);
}

units::CurrentDensity jpeak_em_only(const Problem& p) {
  validate(p);
  return p.j0 / p.duty_cycle;
}

Solution solve(const Problem& p) {
  validate(p);
  Solution sol;
  const eq13::Terms q = eq13::make_terms(p);

  // Bracket: just above T_ref the residual is negative (no thermal headroom,
  // finite EM demand); it grows without bound as T_m rises (thermal j_rms^2
  // grows, EM side decays). The root is unique.
  const double lo = p.t_ref * (1.0 + 1e-12);
  double hi = p.t_ref + 1.0;
  while (eq13::residual(q, hi) < 0.0 && hi < p.t_ref + 5000.0) {
    core::throw_if_run_interrupted("eq13/solve");
    hi = p.t_ref + 2.0 * (hi - p.t_ref);
  }
  if (eq13::residual(q, hi) < 0.0) {
    core::SolverDiag diag;
    diag.record("eq13/solve", core::StatusCode::kNoBracket, 0,
                eq13::residual(q, hi), "no sign change up to t_ref + 5000 K");
    throw SolveError("selfconsistent::solve: failed to bracket root", diag);
  }

  sol.diag.kernel = "eq13/solve";
  const auto root = numeric::brent_robust(
      [&](double t) { return eq13::residual(q, t); }, lo, hi,
      {.x_tol = 1e-9, .f_tol = 0.0, .max_iterations = 200}, sol.diag);
  if (!root.ok()) {
    core::SolverDiag diag = sol.diag;
    diag.add_context("eq13/solve");
    if (core::is_interruption(root.status))
      throw SolveError(std::string("selfconsistent::solve: run interrupted (") +
                           core::status_name(root.status) + ")",
                       diag);
    throw SolveError("selfconsistent::solve: root find failed", diag);
  }
  sol.t_metal = units::Kelvin{root.root};
  sol.delta_t = sol.t_metal - p.t_ref;
  sol.converged = root.ok();
  sol.iterations = root.iterations;

  const double jrms2 = eq13::jrms2_thermal(q, sol.t_metal);
  sol.j_rms = A_per_m2(jrms2 > 0.0 ? std::sqrt(jrms2) : 0.0);
  sol.j_peak = sol.j_rms / std::sqrt(p.duty_cycle);
  sol.j_avg = p.duty_cycle * sol.j_peak;
  return sol;
}

}  // namespace dsmt::selfconsistent
