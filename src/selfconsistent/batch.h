// Batched structure-of-arrays solver for Eq. 13.
//
// Every heavy workload in this repo — design-rule tables, duty/j0 sweeps,
// Monte-Carlo variation, service request batches — solves thousands of
// near-identical instances of the paper's self-consistent equation. The
// scalar path (selfconsistent::solve) pays per call for a std::function
// residual, a fresh bracket search, and per-problem constant recomputation.
// This API solves N instances per call instead: problems are laid out as
// structure-of-arrays, per-problem constants are hoisted once (eq13.h), and
// all lanes advance in lock step so each "round" evaluates every pending
// lane's rho(T)/exp residual in one flat, branch-light loop. Per-lane
// convergence masks retire finished lanes from the round, and each lane
// carries its own StatusCode + SolverDiag so the failure taxonomy (and the
// exact SolveError a scalar solve would have thrown) survives batching.
//
// Contract: solve_batch is bit-for-bit faithful to the scalar path. For
// every lane, the numeric outputs, status, diag chain, and (for failed
// lanes) the reconstructed exception are identical to what
// selfconsistent::solve(problem) produces — the differential harness in
// tests/test_batch_differential.cpp enforces this lane by lane. The batch
// decomposes over parallel_for in static contiguous index blocks, so
// results are bitwise identical at every DSMT_THREADS (lanes never couple:
// the shared evaluation loop shares structure, not values).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "selfconsistent/solver.h"

namespace dsmt::selfconsistent {

/// N Eq.-13 instances, structure-of-arrays: one entry per lane in each
/// vector. Append lanes with push_back(Problem); all vectors stay the same
/// length. Plain doubles only — the solver's inner loop never touches a
/// Quantity wrapper or a string.
struct BatchProblem {
  std::vector<double> duty_cycle;           ///< r [1]
  std::vector<double> j0;                   ///< design-rule j_avg [A/m^2]
  std::vector<double> t_ref;                ///< reference temperature [K]
  std::vector<double> heating_coefficient;  ///< H [K*m^3/W]
  // rho(T) model per lane (Metal::resistivity)
  std::vector<double> rho_ref;              ///< rho at metal_t_ref [Ohm*m]
  std::vector<double> metal_t_ref;          ///< rho model reference [K]
  std::vector<double> tcr;                  ///< [1/K]
  // EM model per lane (Black's equation)
  std::vector<double> activation_energy_ev;  ///< Q [eV]
  std::vector<double> current_exponent;      ///< n [1]

  std::size_t size() const { return duty_cycle.size(); }
  bool empty() const { return duty_cycle.empty(); }
  void reserve(std::size_t n);
  void push_back(const Problem& p);
  /// Lane i reassembled as a scalar Problem (metal name is lost — only the
  /// physics fields round-trip). Mostly for tests and error reporting.
  Problem problem(std::size_t lane) const;
};

/// Per-lane outcomes, structure-of-arrays (move-only: the side records are
/// uniquely owned). Lanes whose scalar equivalent would have returned carry
/// kOk plus the Solution fields; lanes whose scalar equivalent would have
/// thrown carry the failure StatusCode, the exact exception message, and
/// the as-thrown diag chain — throw_lane() rebuilds the identical
/// exception on demand.
///
/// Diagnostics are stored compactly: the overwhelmingly common lane history
/// is a single clean "numeric/brent" success, fully determined by the
/// (status, iterations, residual) triple already in the arrays, so
/// lane_diag() synthesizes that chain on demand by replaying the exact
/// record() call the scalar path makes. Only lanes with a longer story —
/// recoveries (expanded-bracket retries, bisection fallbacks), failures,
/// invalid input — allocate a LaneRecord holding the full SolverDiag and
/// exception text. The happy path therefore writes no per-lane strings and
/// touches no heap, which is what keeps large batches cache- and
/// allocator-friendly.
struct BatchSolution {
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::vector<double> t_metal;   ///< [K], 0 for failed lanes
  std::vector<double> delta_t;   ///< T_m - T_ref [K]
  std::vector<double> j_peak;    ///< [A/m^2]
  std::vector<double> j_rms;     ///< [A/m^2]
  std::vector<double> j_avg;     ///< [A/m^2]
  std::vector<int> iterations;
  std::vector<core::StatusCode> status;
  /// Final residual of the last root-find attempt (the diag chain's
  /// f-at-root), in the kernel's own norm [1].
  std::vector<double> residual;
  std::vector<char> invalid;  ///< 1: scalar path throws std::invalid_argument

  /// Full diagnostics for the rare lanes whose chain is more than the one
  /// canonical success event; null for every canonical lane.
  struct LaneRecord {
    core::SolverDiag diag;
    std::string error;  ///< SolveError prefix / what(); "" for ok lanes
  };
  std::vector<std::unique_ptr<LaneRecord>> records;

  std::size_t size() const { return status.size(); }
  bool ok(std::size_t lane) const {
    return status[lane] == core::StatusCode::kOk;
  }
  /// The lane's diag chain, exactly as the scalar solve would have left it:
  /// the side record when one exists, else the canonical single-event chain
  /// rebuilt through the same SolverDiag::record() call.
  core::SolverDiag lane_diag(std::size_t lane) const;
  /// Exception text for a failed lane; empty for lanes that solved.
  const std::string& lane_error(std::size_t lane) const;
  /// Lowest failed lane index, or npos when every lane solved. Matches the
  /// first-failure (lowest index) contract of parallel_for, so sweep
  /// drivers throw the same lane a scalar parallel_map would have.
  std::size_t first_failure() const;
  /// Scalar-equivalent Solution for an ok lane.
  Solution lane_solution(std::size_t lane) const;
  /// lane_solution variant that moves the lane's diag chain out instead of
  /// copying it — for drivers that drain every lane exactly once.
  Solution take_lane_solution(std::size_t lane);
  /// take_lane_solution without the temporary: writes the lane straight
  /// into `dst`, whose diag chain must still be empty (a freshly
  /// constructed Solution) — the table drain calls this once per cell.
  void drain_lane_into(std::size_t lane, Solution& dst);
  /// Rethrows exactly what selfconsistent::solve(problem(lane)) would have
  /// thrown: std::invalid_argument for invalid lanes, SolveError (same
  /// prefix, same diag chain) for solver failures.
  [[noreturn]] void throw_lane(std::size_t lane) const;
  /// throw_lane(first_failure()) if any lane failed; no-op otherwise.
  void throw_first_failure() const;
};

/// Invoked on the solving thread the moment a lane retires with kOk (failed
/// lanes are not announced — the scalar path never stored them either).
/// Runs concurrently across blocks, so the callback must be thread-safe;
/// sweep drivers use it to stream per-slot checkpoint stores with the same
/// granularity the scalar per-item path had. Reading the lane's own entries
/// in the BatchSolution is safe; other lanes may still be mid-flight.
using LaneCallback = std::function<void(std::size_t lane,
                                        const BatchSolution& partial)>;

/// Solves all lanes. Never throws for per-lane failures (those are recorded
/// in status/diag/error); only infrastructure errors (bad_alloc, a run
/// interruption surfacing from parallel_for between blocks) propagate.
BatchSolution solve_batch(const BatchProblem& problems,
                          const LaneCallback& on_lane_done = {});

/// One-lane adapter with scalar throw semantics: returns the Solution or
/// throws exactly as selfconsistent::solve would. This is the sanctioned
/// entry point for single solves on the sweep/MC/service hot paths (lint
/// rule R12 fences raw solve/brent_robust calls out of those files).
Solution solve_one(const Problem& problem);

}  // namespace dsmt::selfconsistent
