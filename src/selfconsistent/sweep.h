// Sweep drivers over the self-consistent solver: duty-cycle sweeps (Fig. 2),
// j_o sweeps (Fig. 3), and technology design-rule tables (Tables 2-4).
#pragma once

#include <string>
#include <vector>

#include "materials/dielectric.h"
#include "selfconsistent/solver.h"
#include "tech/technology.h"

namespace dsmt::selfconsistent {

/// One point of a duty-cycle sweep.
struct DutyCyclePoint {
  double duty_cycle = 0.0;  ///< r [1]
  Solution sc;              ///< self-consistent solution
  /// Dotted line (a) of Fig. 2: j_o / r.
  units::CurrentDensity jpeak_em_only{};
  /// Dotted line (b): j_rms(r=1 sc)/sqrt(r).
  units::CurrentDensity jpeak_thermal_only{};
};

/// Sweeps duty cycle over `duty_cycles` for a fixed problem (Fig. 2).
std::vector<DutyCyclePoint> sweep_duty_cycle(
    const Problem& base, const std::vector<double>& duty_cycles);

/// Logarithmically spaced duty cycles [1] in [lo, hi].
std::vector<double> log_spaced(double lo, double hi, int points);

/// Sweeps the design-rule current density j_o [A/m^2] at each duty cycle
/// [1] (Fig. 3): result[i][k] is the solution at duty_cycles[k] for
/// j0_values[i].
std::vector<std::vector<DutyCyclePoint>> sweep_j0(
    const Problem& base, const std::vector<double>& j0_values,
    const std::vector<double>& duty_cycles);

/// Specification of a design-rule table (paper Tables 2-4).
struct TableSpec {
  tech::Technology technology;
  std::vector<materials::Dielectric> gap_fills;  ///< columns
  std::vector<int> levels;                       ///< rows (metal levels)
  std::vector<double> duty_cycles;               ///< sections (0.1, 1.0) [1]
  units::CurrentDensity j0{6.0e9};               ///< design-rule j_avg
  double phi = 2.45;                             ///< heat-spreading param [1]
};

/// One solved table cell.
struct TableCell {
  int level = 0;
  std::string dielectric;
  double duty_cycle = 0.0;  ///< r [1]
  Solution sol;
};

/// Solves every (level x dielectric x duty-cycle) combination of the spec
/// using the layered-stack heating coefficient (Eq. 15 + quasi-2D W_eff).
std::vector<TableCell> generate_design_rule_table(const TableSpec& spec);

/// Convenience: builds the Problem for one technology level/gap-fill with
/// heat-spreading parameter phi [1] and duty cycle r [1].
Problem make_level_problem(const tech::Technology& technology, int level,
                           const materials::Dielectric& gap_fill, double phi,
                           double duty_cycle, units::CurrentDensity j0);

}  // namespace dsmt::selfconsistent
