// The paper's primary contribution: self-consistent solutions for allowed
// interconnect current density, simultaneously comprehending electromigration
// (Black's equation on j_avg) and self-heating (Joule heating by j_rms).
//
// For unipolar pulses of duty cycle r (paper Eqs. 4-5):
//   j_avg = r j_peak,  j_rms = sqrt(r) j_peak  =>  j_avg^2 = r j_rms^2.
// Self-heating (Eq. 9, generalized via the heating coefficient H):
//   T_m = T_ref + j_rms^2 rho(T_m) H,
// where, for an isolated line over a layered stack (Eq. 15),
//   H = t_m W_m R'_th = t_m W_m sum_i(b_i/K_i) / W_eff,
// and for a dense array H comes from the FD coupling solve (Eq. 18).
// EM equivalence with the design rule (j_o at T_ref) (Eq. 12):
//   j_avg_max(T_m) = j_o exp[(Q/(n kB))(1/T_m - 1/T_ref)].
// Eliminating j_peak yields one equation in T_m (Eq. 13):
//   r (T_m - T_ref)/(rho(T_m) H) = j_o^2 exp[(2Q/(n kB))(1/T_m - 1/T_ref)]
// (for n = 2 this is exactly the paper's form). The left side rises with
// T_m, the right side falls, so the root is unique; we solve it with Brent.
//
// All temperatures, current densities, and thermal coefficients crossing
// this API are strong-typed (core/units.h): a Kelvin/CurrentDensity swap is
// a compile error, and the factory helpers (MA_per_cm2, kelvin, ...) are the
// only blessed entry points for raw numbers.
#pragma once

#include "core/status.h"
#include "core/units.h"
#include "materials/metal.h"
#include "tech/layer_stack.h"

namespace dsmt::selfconsistent {

/// Problem statement for one line.
struct Problem {
  materials::Metal metal;
  double duty_cycle = 0.1;  ///< r [1] (or effective r for general waveforms)
  units::CurrentDensity j0{6.0e9};  ///< design-rule j_avg at t_ref
  units::Kelvin t_ref = kTrefK;     ///< reference junction temperature
  /// Heating coefficient H [K*m^3/W]: dT = j_rms^2 rho(T) H.
  /// Build with heating_coefficient() below or from an array FD solve.
  units::HeatingCoefficient heating_coefficient{};
};

/// H for an isolated line: t_m W_m R'_th (see impedance.h for R'_th). The
/// result dimension is checked at compile time against Eq. 15.
units::HeatingCoefficient heating_coefficient(
    units::Metres w_m, units::Metres t_m,
    units::ThermalResistancePerLength rth_per_len);

/// The self-consistent operating point. [[nodiscard]]: the solve is the
/// whole point of the call; dropping it hides a possible failure.
struct [[nodiscard]] Solution {
  units::Kelvin t_metal{};        ///< self-consistent metal temperature
  units::CelsiusDelta delta_t{};  ///< T_m - T_ref
  units::CurrentDensity j_peak{};  ///< maximum allowed peak current density
  units::CurrentDensity j_rms{};   ///< corresponding RMS density
  units::CurrentDensity j_avg{};   ///< corresponding average density
  bool converged = false;
  int iterations = 0;
  core::SolverDiag diag;  ///< root-find history incl. recovery stages
};

/// Solves Eq. 13. Throws std::invalid_argument on malformed problems
/// (duty cycle outside (0,1], non-positive or non-finite j0 / t_ref /
/// heating coefficient) and dsmt::SolveError when the root find fails
/// after its recovery chain (bracket expansion, bisection fallback).
Solution solve(const Problem& problem);

/// The EM-only limit (no self-heating): j_peak = j_o / r (the dotted line
/// "a" in Fig. 2). Diverges as r -> 0.
units::CurrentDensity jpeak_em_only(const Problem& problem);

/// Residual of the self-consistent equation at temperature t_m — positive
/// when the thermally-limited j_avg exceeds the EM-limited one. Exposed for
/// testing and for diagnostics plots.
double residual(const Problem& problem, units::Kelvin t_m);

/// The thermally admissible RMS density at metal temperature t_m: the j_rms
/// whose Joule heating sustains exactly t_m (Eq. 9 inverted). Closed form —
/// no iteration. Requires t_m >= t_ref (returns 0 below).
units::CurrentDensity jrms_thermal_at(const Problem& problem,
                                      units::Kelvin t_m);

/// The EM-admissible average density at metal temperature t_m: the design
/// rule j_o rescaled to t_m by Black's equation (Eq. 12). Closed form.
units::CurrentDensity javg_em_at(const Problem& problem, units::Kelvin t_m);

}  // namespace dsmt::selfconsistent
