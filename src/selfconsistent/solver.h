// The paper's primary contribution: self-consistent solutions for allowed
// interconnect current density, simultaneously comprehending electromigration
// (Black's equation on j_avg) and self-heating (Joule heating by j_rms).
//
// For unipolar pulses of duty cycle r (paper Eqs. 4-5):
//   j_avg = r j_peak,  j_rms = sqrt(r) j_peak  =>  j_avg^2 = r j_rms^2.
// Self-heating (Eq. 9, generalized via the heating coefficient H):
//   T_m = T_ref + j_rms^2 rho(T_m) H,
// where, for an isolated line over a layered stack (Eq. 15),
//   H = t_m W_m R'_th = t_m W_m sum_i(b_i/K_i) / W_eff,
// and for a dense array H comes from the FD coupling solve (Eq. 18).
// EM equivalence with the design rule (j_o at T_ref) (Eq. 12):
//   j_avg_max(T_m) = j_o exp[(Q/(n kB))(1/T_m - 1/T_ref)].
// Eliminating j_peak yields one equation in T_m (Eq. 13):
//   r (T_m - T_ref)/(rho(T_m) H) = j_o^2 exp[(2Q/(n kB))(1/T_m - 1/T_ref)]
// (for n = 2 this is exactly the paper's form). The left side rises with
// T_m, the right side falls, so the root is unique; we solve it with Brent.
#pragma once

#include "materials/metal.h"
#include "tech/layer_stack.h"

namespace dsmt::selfconsistent {

/// Problem statement for one line.
struct Problem {
  materials::Metal metal;
  double duty_cycle = 0.1;     ///< r (or effective r for general waveforms)
  double j0 = 6.0e9;           ///< design-rule j_avg at t_ref [A/m^2]
  double t_ref = 373.15;       ///< reference junction temperature [K]
  /// Heating coefficient H [K m / (W/m^3)]: dT = j_rms^2 rho(T) H.
  /// Build with heating_coefficient() below or from an array FD solve.
  double heating_coefficient = 0.0;
};

/// H for an isolated line: t_m W_m R'_th (see impedance.h for R'_th).
double heating_coefficient(double w_m, double t_m, double rth_per_len);

/// The self-consistent operating point.
struct Solution {
  double t_metal = 0.0;    ///< self-consistent metal temperature [K]
  double delta_t = 0.0;    ///< T_m - T_ref [K]
  double j_peak = 0.0;     ///< maximum allowed peak current density [A/m^2]
  double j_rms = 0.0;      ///< corresponding RMS density [A/m^2]
  double j_avg = 0.0;      ///< corresponding average density [A/m^2]
  bool converged = false;
  int iterations = 0;
};

/// Solves Eq. 13. Throws std::invalid_argument on malformed problems.
Solution solve(const Problem& problem);

/// The EM-only limit (no self-heating): j_peak = j_o / r (the dotted line
/// "a" in Fig. 2). Diverges as r -> 0.
double jpeak_em_only(const Problem& problem);

/// Residual of the self-consistent equation at temperature t_m — positive
/// when the thermally-limited j_avg exceeds the EM-limited one. Exposed for
/// testing and for diagnostics plots.
double residual(const Problem& problem, double t_m);

}  // namespace dsmt::selfconsistent
