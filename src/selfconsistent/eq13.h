// Shared closed-form terms of Eq. 13.
//
// Both the scalar solver (solver.cpp) and the batched solver (batch.cpp)
// evaluate the self-consistent residual through these inline helpers, so the
// two paths compile the *same* expression tree. The bitwise scalar/batch
// equivalence asserted by tests/test_batch_differential.cpp starts here: a
// reformulated residual in one path but not the other would drift in the
// last ulp and fail the harness.
//
// Terms holds the per-problem constants hoisted out of the evaluation loop.
// Every field is produced by exactly the operation sequence the scalar
// solver historically performed per evaluation (e.g. `j0_sq = j0 * j0`,
// `em_coeff = 2 Q / (n kB)` with the same association), so precomputing them
// once per lane cannot change a single bit of any residual value.
#pragma once

#include <algorithm>
#include <cmath>

#include "selfconsistent/solver.h"

namespace dsmt::selfconsistent::eq13 {

/// Per-problem constants of Eq. 13 in plain doubles: the batched solver
/// stores one of these per lane and the flat evaluation loop reads nothing
/// else, which keeps the inner loop free of Quantity wrappers and strings.
struct Terms {
  double duty = 0.0;         ///< duty cycle r [1]
  double t_ref = 0.0;        ///< problem reference temperature [K]
  double inv_t_ref = 0.0;    ///< 1 / t_ref [1/K]
  double h = 0.0;            ///< heating coefficient H [K*m^3/W]
  double rho_ref = 0.0;      ///< metal resistivity at its own t_ref [Ohm*m]
  double rho_min = 0.0;      ///< clamp floor 0.01 * rho_ref [Ohm*m]
  double metal_t_ref = 0.0;  ///< the rho(T) model's reference temp [K]
  double tcr = 0.0;          ///< temperature coefficient of rho [1/K]
  double j0_sq = 0.0;        ///< design-rule j0^2 [(A/m^2)^2]
  double em_coeff = 0.0;     ///< 2 Q / (n kB) [K]
};

inline Terms make_terms(double duty, double j0, double t_ref, double h,
                        double rho_ref, double metal_t_ref, double tcr,
                        double activation_energy_ev, double current_exponent) {
  Terms q;
  q.duty = duty;
  q.t_ref = t_ref;
  q.inv_t_ref = 1.0 / t_ref;
  q.h = h;
  q.rho_ref = rho_ref;
  q.rho_min = 0.01 * rho_ref;
  q.metal_t_ref = metal_t_ref;
  q.tcr = tcr;
  q.j0_sq = j0 * j0;
  q.em_coeff =
      2.0 * activation_energy_ev / (current_exponent * kBoltzmannEv);
  return q;
}

inline Terms make_terms(const Problem& p) {
  return make_terms(p.duty_cycle, p.j0.value(), p.t_ref.value(),
                    p.heating_coefficient.value(), p.metal.rho_ref.value(),
                    p.metal.t_ref.value(), p.metal.tcr,
                    p.metal.em.activation_energy_ev,
                    p.metal.em.current_exponent);
}

/// rho [Ohm*m] at metal temperature t_m [K] with the 0.01*rho_ref
/// physicality clamp (Metal::resistivity).
inline double resistivity(const Terms& q, double t_m) {
  const double rho = q.rho_ref * (1.0 + q.tcr * (t_m - q.metal_t_ref));
  return std::max(rho, q.rho_min);
}

/// j_rms^2 admissible thermally at metal temperature t_m [K].
inline double jrms2_thermal(const Terms& q, double t_m) {
  return (t_m - q.t_ref) / (resistivity(q, t_m) * q.h);
}

/// j_avg_max^2 admissible by EM at metal temperature t_m [K].
inline double javg2_em(const Terms& q, double t_m) {
  return q.j0_sq * std::exp(q.em_coeff * (1.0 / t_m - q.inv_t_ref));
}

/// The two duty-independent factors of the residual at t_m: a = thermal
/// j_rms^2 bound, b = EM j_avg^2 bound. Lanes that differ only in duty
/// cycle visit the same bracket abscissas (the grid depends only on t_ref),
/// so the batched solver computes Parts once per abscissa per duty run and
/// combines per lane with residual_from().
struct Parts {
  double a = 0.0;  ///< jrms2_thermal(q, t_m), duty-independent
  double b = 0.0;  ///< javg2_em(q, t_m), duty-independent
};

inline Parts residual_parts(const Terms& q, double t_m /*[K]*/) {
  return {jrms2_thermal(q, t_m), javg2_em(q, t_m)};
}

/// Combines precomputed Parts into the residual. residual() itself routes
/// through this exact inline function, so a memoized evaluation is the
/// same expression tree over bit-identical inputs as a direct one — value
/// sharing cannot move a single bit.
inline double residual_from(const Terms& q, Parts p) {
  return q.duty * p.a - p.b;
}

/// r * j_rms^2(thermal) - j_avg^2(EM) at metal temperature t_m [K]:
/// negative below the root, positive above. The root in t_m is the
/// self-consistent operating temperature.
inline double residual(const Terms& q, double t_m) {
  return residual_from(q, residual_parts(q, t_m));
}

}  // namespace dsmt::selfconsistent::eq13
