// Per-lane replication of the scalar solve chain over hoisted SoA terms.
//
// The batched solver is NOT a reformulated algorithm: each lane runs a
// straight-line transcription of selfconsistent::solve() ->
// numeric::brent_robust() -> {brent, expand_bracket, bisect} (solver.cpp /
// roots.cpp), specialized to the lane's precomputed eq13::Terms. The
// residual is a direct inline call (no std::function), the per-lane
// arithmetic, the run_check() poll counts, and the fault-injection hook
// calls (same kernel names, same per-lane iteration numbers, in the lane's
// scalar order) are identical to the scalar path, so every lane's outputs
// — values, status, diag chain, exception text — are bitwise identical to
// a scalar solve of the same Problem.
//
// One class of *raw* (hook-free, pure) evaluations is elided without
// observable effect; tests/test_batch_differential.cpp holds the proof:
// re-evaluations at an abscissa whose residual is already in hand — the
// bracket loop's post-loop re-check, brent's entry f(a)/f(b) on the
// expanded-bracket retry, and expand_bracket's / bisect's endpoint
// evaluations all re-apply a pure function to a bit-identical input, so
// the cached value IS the scalar value. Hook counts are unaffected: the
// scalar path performs these evaluations outside filter_residual().
//
// Consequences worth naming:
//  - One poisoned lane cannot perturb a neighbor: lanes share the hoisted
//    term layout and the code path, never values, and a failed lane is
//    recorded and left behind before the next lane starts.
//  - The batch decomposes over parallel_for in static contiguous blocks
//    mirroring parallel_for's own split, so results are independent of
//    DSMT_THREADS; per-lane fault hooks and polls fire the same number of
//    times in any decomposition.
#include "selfconsistent/batch.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/run_context.h"
#include "numeric/fault_injection.h"
#include "parallel/parallel_for.h"
#include "selfconsistent/eq13.h"

namespace dsmt::selfconsistent {

namespace {

using core::StatusCode;

// solve()'s root options: {.x_tol = 1e-9, .f_tol = 0.0, .max_iterations =
// 200}; the bisection fallback quadruples the budget. f_tol is 0 (off), so
// the scalar f_tol clauses are compile-time false and omitted below.
constexpr double kXTol = 1e-9;
constexpr int kBrentMaxIter = 200;
constexpr int kBisectMaxIter = kBrentMaxIter * 4;

constexpr const char* kSolveKernel = "eq13/solve";

/// True when lane l differs from lane l-1 at most in duty cycle: every
/// input that feeds the duty-independent Terms fields matches bitwise
/// (make_terms is deterministic, so equal inputs give bit-equal Terms).
/// NaN fields (invalid lanes) compare unequal, which safely breaks a run.
bool duty_siblings(const BatchProblem& p, std::size_t l) {
  return p.j0[l] == p.j0[l - 1] && p.t_ref[l] == p.t_ref[l - 1] &&
         p.heating_coefficient[l] == p.heating_coefficient[l - 1] &&
         p.rho_ref[l] == p.rho_ref[l - 1] &&
         p.metal_t_ref[l] == p.metal_t_ref[l - 1] &&
         p.tcr[l] == p.tcr[l - 1] &&
         p.activation_energy_ev[l] == p.activation_energy_ev[l - 1] &&
         p.current_exponent[l] == p.current_exponent[l - 1];
}

/// Lane l's hoisted constants, via the same make_terms inline sequence the
/// scalar solver runs.
eq13::Terms lane_terms(const BatchProblem& p, std::size_t l) {
  return eq13::make_terms(p.duty_cycle[l], p.j0[l], p.t_ref[l],
                          p.heating_coefficient[l], p.rho_ref[l],
                          p.metal_t_ref[l], p.tcr[l],
                          p.activation_energy_ev[l], p.current_exponent[l]);
}

/// Memo for the duty-independent residual factors at the abscissas every
/// lane of a duty run visits: lo = t_ref * (1 + 1e-12) and the bracket
/// grid t_ref + 2^k. Reusing a value computed from bit-identical inputs
/// by the same pure function IS the value the lane would compute, so the
/// sharing is invisible to the differential harness; it only removes the
/// redundant rho(T)/exp evaluations the batch API exists to share. Fault
/// hooks never see bracket evaluations (filter_residual applies inside
/// brent/bisect only), so the memo is valid in both hook modes.
struct SharedEvals {
  static constexpr int kGridMax = 14;  // 2^13 = 8192 K > the 5000 K cap
  eq13::Parts lo;
  eq13::Parts grid[kGridMax];
  std::uint16_t have = 0;  ///< bit k: grid[k] holds t_ref + 2^k
  bool has_lo = false;
  void reset() {
    have = 0;
    has_lo = false;
  }
};

/// Mirror of numeric::RootResult (same defaults) for the attempt in flight.
struct LaneRoot {
  double root = 0.0;
  double f_at_root = 0.0;
  int iterations = 0;
  bool converged = false;
  StatusCode status = StatusCode::kMaxIterations;
  bool ok() const { return status == StatusCode::kOk; }
};

/// Solves one lane front to back, writing its BatchSolution slot.
///
/// kHooked selects whether the lane calls the ambient observation points —
/// numeric::fault hooks and core::run_check() polls. solve_batch() samples
/// fault::armed() and current_run_context() once per batch: when neither is
/// active, every hook is an identity function and every poll returns kOk by
/// contract (see fault_injection.h and run_context.h), so the kHooked=false
/// instantiation elides the out-of-TU calls without any observable effect —
/// same values, same iteration counts, same diag chains. Arm/disarm and
/// context installation are documented to happen outside parallel regions,
/// so the once-per-batch sample is within both contracts. When either is
/// active the kHooked=true instantiation fires the hooks at exactly the
/// scalar path's (kernel, iteration) coordinates.
template <bool kHooked>
class LaneSolver {
 public:
  LaneSolver(const eq13::Terms& q, double j0, BatchSolution& out,
             std::size_t l, SharedEvals& shared,
             const LaneCallback& on_lane_done)
      : q_(q),
        j0_(j0),
        out_(out),
        l_(l),
        shared_(shared),
        on_lane_done_(on_lane_done) {}

  void run() {
    // validate(p): same checks, same order, same messages.
    if (!std::isfinite(q_.duty) || q_.duty <= 0.0 || q_.duty > 1.0)
      return bad("Problem: duty cycle outside (0,1]");
    if (!std::isfinite(j0_) || j0_ <= 0.0)
      return bad("Problem: j0 <= 0 or non-finite");
    if (!std::isfinite(q_.t_ref) || q_.t_ref <= 0.0)
      return bad("Problem: t_ref <= 0 or non-finite");
    if (!std::isfinite(q_.h) || q_.h <= 0.0)
      return bad("Problem: heating coefficient <= 0 or non-finite");

    // solve(): bracket from [t_ref * (1 + 1e-12), t_ref + 1], doubling hi.
    double lo = q_.t_ref * (1.0 + 1e-12);
    double hi = q_.t_ref + 1.0;
    double fhi = 0.0;
    if (!bracket(hi, fhi)) return;

    // brent_robust(): first brent. f(a) is evaluated here (raw in the
    // scalar path too); f(b) reuses the bracket residual. lo is the same
    // abscissa for every lane of a duty run, so its factors are shared.
    if (!shared_.has_lo) {
      shared_.lo = eq13::residual_parts(q_, lo);
      shared_.has_lo = true;
    }
    double flo = eq13::residual_from(q_, shared_.lo);
    LaneRoot r = brent(lo, hi, flo, fhi);
    // The canonical history — one clean brent success — is fully determined
    // by (status, iterations, residual) and synthesized by lane_diag() on
    // demand, so the hot path materializes no SolverDiag at all.
    if (r.ok()) return finish_ok(r, nullptr);

    // Every longer story builds the full chain, in the scalar path's event
    // order, into a local diag that lands in the lane's side record.
    core::SolverDiag diag;
    diag.kernel = kSolveKernel;
    diag.record("numeric/brent", r.status, r.iterations, r.f_at_root);
    if (core::is_interruption(r.status)) return fail_root(diag, r);
    if (r.status != StatusCode::kNoBracket)
      return bisect_fallback(diag, lo, hi, flo, fhi);

    // expand_bracket(): entry evaluations of f(lo)/f(hi) are pure
    // re-evaluations of the cached endpoint residuals. Up to 60 half-width
    // moves of the endpoint with the smaller |f|.
    const LaneRoot first = r;
    for (int expand_i = 0;; ++expand_i) {
      if (std::signbit(flo) != std::signbit(fhi)) {
        // brent_robust(): bracket found — note the retry window, rerun
        // brent. Its entry f(a)/f(b) reuse the expand-loop residuals.
        std::ostringstream note;
        note << "retry on expanded bracket [" << lo << ", " << hi << "]";
        r = brent(lo, hi, flo, fhi);
        diag.record("numeric/brent", r.status, r.iterations, r.f_at_root,
                    note.str());
        if (r.ok()) return finish_ok(r, &diag);
        if (core::is_interruption(r.status)) return fail_root(diag, r);
        return bisect_fallback(diag, lo, hi, flo, fhi);
      }
      if (expand_i >= 60) {
        // nullopt: record the dead end, return the ORIGINAL brent result.
        diag.record("numeric/expand_bracket", StatusCode::kNoBracket, 0,
                    first.f_at_root, "no sign change after 60 doublings");
        return fail_root(diag, first);
      }
      const double w = hi - lo;
      if (std::abs(flo) < std::abs(fhi)) {
        lo -= 0.5 * w;
        flo = eq13::residual(q_, lo);
      } else {
        hi += 0.5 * w;
        fhi = eq13::residual(q_, hi);
      }
    }
  }

 private:
  /// core::run_check(), elided when the batch sampled no ambient context
  /// (kOk is then its contractual constant result).
  static StatusCode lane_check() {
    if constexpr (kHooked) return core::run_check();
    return StatusCode::kOk;
  }

  /// fault::clamp_iterations(), elided when no plan is armed (identity).
  static int lane_clamp(const char* kernel, int max_iterations) {
    if constexpr (kHooked)
      return numeric::fault::clamp_iterations(kernel, max_iterations);
    return max_iterations;
  }

  /// fault::filter_residual(), elided when no plan is armed (identity).
  static double lane_filter(const char* kernel, int iteration, double v) {
    if constexpr (kHooked)
      return numeric::fault::filter_residual(kernel, iteration, v);
    return v;
  }

  /// solve()'s bracket phase: the doubling loop, transcribed per lane —
  /// evaluate, poll, double, in scalar order. On success sets hi/fhi and
  /// returns true; on failure records the lane and returns false. The
  /// scalar loop re-evaluates residual(hi) after exiting (once for the
  /// failure check, once more for the failure diag); both are pure
  /// re-evaluations of the loop's last residual, so the cached f stands in.
  bool bracket(double& hi, double& fhi) {
    const double t_ref = q_.t_ref;
    for (int k = 0;; ++k) {
      const double f = grid_residual(hi, k);
      if (f < 0.0 && hi < t_ref + 5000.0) {
        // scalar: core::throw_if_run_interrupted("eq13/solve")
        const StatusCode rc = lane_check();
        if (rc != StatusCode::kOk) return fail_bracket_interrupt(rc);
        hi = t_ref + 2.0 * (hi - t_ref);
        continue;
      }
      if (f < 0.0) return fail_no_bracket(f);
      fhi = f;
      return true;
    }
  }

  /// Residual at the k-th bracket abscissa t_ref + 2^k, through the duty
  /// run's memo: hi's doubling sequence depends only on t_ref, so lanes of
  /// one run visit identical grid points.
  double grid_residual(double t, int k) {
    if (k < SharedEvals::kGridMax) {
      const std::uint16_t bit = static_cast<std::uint16_t>(1u << k);
      if (!(shared_.have & bit)) {
        shared_.grid[k] = eq13::residual_parts(q_, t);
        shared_.have = static_cast<std::uint16_t>(shared_.have | bit);
      }
      return eq13::residual_from(q_, shared_.grid[k]);
    }
    return eq13::residual(q_, t);
  }

  /// numeric::brent() on the lane residual, entry evaluations in hand.
  LaneRoot brent(double a, double b, double fa, double fb) {
    LaneRoot r;
    if (!std::isfinite(fa) || !std::isfinite(fb)) {
      r.root = 0.5 * (a + b);
      r.f_at_root = std::isfinite(fa) ? fb : fa;
      r.status = StatusCode::kNonFinite;
      return r;
    }
    if (fa == 0.0) return LaneRoot{a, 0.0, 0, true, StatusCode::kOk};
    if (fb == 0.0) return LaneRoot{b, 0.0, 0, true, StatusCode::kOk};
    if (std::signbit(fa) == std::signbit(fb)) {
      r.root = 0.5 * (a + b);
      r.f_at_root = eq13::residual(q_, r.root);
      r.status = StatusCode::kNoBracket;
      return r;
    }
    double c = a, fc = fa;
    double d = b - a, e = d;
    const int max_it = lane_clamp("numeric/brent", kBrentMaxIter);
    for (int iter = 0;;) {
      if (iter >= max_it) {
        r.root = b;
        r.f_at_root = fb;
        r.converged = false;
        r.status = StatusCode::kMaxIterations;
        return r;
      }
      if (const StatusCode rc = lane_check(); rc != StatusCode::kOk) {
        // res.iterations keeps its previous value: the scalar loop assigns
        // it after this check.
        r.root = b;
        r.f_at_root = fb;
        r.status = rc;
        return r;
      }
      r.iterations = iter + 1;
      if (std::abs(fc) < std::abs(fb)) {
        a = b;
        b = c;
        c = a;
        fa = fb;
        fb = fc;
        fc = fa;
      }
      const double eps = std::numeric_limits<double>::epsilon();
      const double tol1 = 2.0 * eps * std::abs(b) + 0.5 * kXTol;
      const double xm = 0.5 * (c - b);
      if (std::abs(xm) <= tol1 || fb == 0.0) {
        return LaneRoot{b, fb, r.iterations, true, StatusCode::kOk};
      }
      if (std::abs(e) >= tol1 && std::abs(fa) > std::abs(fb)) {
        // Inverse quadratic interpolation (secant if only two points).
        const double s = fb / fa;
        double pp, qq;
        if (a == c) {
          pp = 2.0 * xm * s;
          qq = 1.0 - s;
        } else {
          const double q2 = fa / fc;
          const double r2 = fb / fc;
          pp = s * (2.0 * xm * q2 * (q2 - r2) - (b - a) * (r2 - 1.0));
          qq = (q2 - 1.0) * (r2 - 1.0) * (s - 1.0);
        }
        if (pp > 0.0) qq = -qq;
        pp = std::abs(pp);
        const double min1 = 3.0 * xm * qq - std::abs(tol1 * qq);
        const double min2 = std::abs(e * qq);
        if (2.0 * pp < std::min(min1, min2)) {
          e = d;
          d = pp / qq;
        } else {
          d = xm;
          e = d;
        }
      } else {
        d = xm;
        e = d;
      }
      a = b;
      fa = fb;
      b += (std::abs(d) > tol1) ? d : (xm > 0.0 ? tol1 : -tol1);
      fb = lane_filter("numeric/brent", r.iterations, eq13::residual(q_, b));
      if (!std::isfinite(fb)) {
        r.root = b;
        r.f_at_root = fb;
        r.status = StatusCode::kNonFinite;
        return r;
      }
      if (std::signbit(fb) == std::signbit(fc)) {
        c = a;
        fc = fa;
        d = b - a;
        e = d;
      }
      ++iter;
    }
  }

  /// brent_robust()'s last link: numeric::bisect() with a 4x budget, entry
  /// evaluations in hand.
  void bisect_fallback(core::SolverDiag& diag, double lo, double hi,
                       double flo, double fhi) {
    LaneRoot r;
    for (;;) {  // single pass; break-less early returns via record below
      if (!std::isfinite(flo) || !std::isfinite(fhi)) {
        r.root = 0.5 * (lo + hi);
        r.f_at_root = std::isfinite(flo) ? fhi : flo;
        r.status = StatusCode::kNonFinite;
        break;
      }
      if (flo == 0.0) {
        r = LaneRoot{lo, 0.0, 0, true, StatusCode::kOk};
        break;
      }
      if (fhi == 0.0) {
        r = LaneRoot{hi, 0.0, 0, true, StatusCode::kOk};
        break;
      }
      if (std::signbit(flo) == std::signbit(fhi)) {
        r.root = 0.5 * (lo + hi);
        r.f_at_root = eq13::residual(q_, r.root);
        r.status = StatusCode::kNoBracket;
        break;
      }
      const int max_it = lane_clamp("numeric/bisect", kBisectMaxIter);
      int iter = 0;
      for (;;) {
        if (iter >= max_it) {
          r.root = 0.5 * (lo + hi);
          r.f_at_root = eq13::residual(q_, r.root);
          const bool interval_met = std::abs(hi - lo) <= kXTol;
          r.converged = interval_met;
          r.status =
              interval_met ? StatusCode::kOk : StatusCode::kMaxIterations;
          break;
        }
        if (const StatusCode rc = lane_check(); rc != StatusCode::kOk) {
          r.root = 0.5 * (lo + hi);
          r.f_at_root = flo;
          r.status = rc;
          break;
        }
        const double mid = 0.5 * (lo + hi);
        const double fm =
            lane_filter("numeric/bisect", iter + 1, eq13::residual(q_, mid));
        r.iterations = iter + 1;
        if (!std::isfinite(fm)) {
          r.root = mid;
          r.f_at_root = fm;
          r.status = StatusCode::kNonFinite;
          break;
        }
        if (fm == 0.0 || std::abs(hi - lo) <= kXTol) {
          r = LaneRoot{mid, fm, r.iterations, true, StatusCode::kOk};
          break;
        }
        if (std::signbit(fm) == std::signbit(flo)) {
          lo = mid;
          flo = fm;
        } else {
          hi = mid;
        }
        ++iter;
      }
      break;
    }
    diag.record("numeric/bisect", r.status, r.iterations, r.f_at_root,
                "bisection fallback, 4x budget");
    if (r.ok()) return finish_ok(r, &diag);
    return fail_root(diag, r);
  }

  /// solve()'s success epilogue. diag is null on the canonical path (the
  /// chain is synthesized on demand) and points at the full local chain
  /// after a recovery.
  void finish_ok(const LaneRoot& r, core::SolverDiag* diag) {
    const double root = r.root;
    out_.t_metal[l_] = root;
    out_.delta_t[l_] = root - q_.t_ref;
    out_.iterations[l_] = r.iterations;
    out_.residual[l_] = r.f_at_root;
    const double jrms2 = eq13::jrms2_thermal(q_, root);
    const double jrms = jrms2 > 0.0 ? std::sqrt(jrms2) : 0.0;
    out_.j_rms[l_] = jrms;
    const double jpeak = jrms / std::sqrt(q_.duty);
    out_.j_peak[l_] = jpeak;
    out_.j_avg[l_] = q_.duty * jpeak;
    if (diag != nullptr) {
      auto rec = std::make_unique<BatchSolution::LaneRecord>();
      rec->diag = std::move(*diag);
      out_.records[l_] = std::move(rec);
    }
    out_.status[l_] = StatusCode::kOk;
    if (on_lane_done_) on_lane_done_(l_, out_);
  }

  /// Records lane failure whose scalar equivalent threw.
  void fail(StatusCode status, std::string prefix, core::SolverDiag d,
            bool is_invalid) {
    auto rec = std::make_unique<BatchSolution::LaneRecord>();
    rec->diag = std::move(d);
    rec->error = std::move(prefix);
    out_.records[l_] = std::move(rec);
    out_.status[l_] = status;
    out_.invalid[l_] = is_invalid ? 1 : 0;
  }

  void bad(const char* msg) {
    fail(StatusCode::kInvalidInput, msg, core::SolverDiag{}, true);
  }

  /// solve()'s failure epilogue: add the context frame to the lane's chain,
  /// pick the scalar exception text.
  void fail_root(core::SolverDiag& diag, const LaneRoot& r) {
    diag.add_context(kSolveKernel);
    out_.residual[l_] = r.f_at_root;
    std::string prefix;
    if (core::is_interruption(r.status)) {
      prefix = std::string("selfconsistent::solve: run interrupted (") +
               core::status_name(r.status) + ")";
    } else {
      prefix = "selfconsistent::solve: root find failed";
    }
    fail(r.status, std::move(prefix), std::move(diag), false);
  }

  /// The bracket loop hit no sign change up to t_ref + 5000 K. The scalar
  /// path re-evaluates residual(hi) for the check and the diag; both are
  /// pure evaluations of the same point, so reuse f.
  bool fail_no_bracket(double f) {
    core::SolverDiag d;
    d.record(kSolveKernel, StatusCode::kNoBracket, 0, f,
             "no sign change up to t_ref + 5000 K");
    fail(StatusCode::kNoBracket,
         "selfconsistent::solve: failed to bracket root", std::move(d),
         false);
    return false;
  }

  /// throw_if_run_interrupted(kSolveKernel) observed in the bracket loop.
  bool fail_bracket_interrupt(StatusCode rc) {
    core::SolverDiag d;
    d.record(kSolveKernel, rc, 0, 0.0,
             rc == StatusCode::kCancelled ? "cooperative cancellation observed"
                                          : "monotonic deadline exceeded");
    fail(rc,
         std::string(kSolveKernel) + ": run interrupted (" +
             core::status_name(rc) + ")",
         std::move(d), false);
    return false;
  }

  const eq13::Terms& q_;
  const double j0_;
  BatchSolution& out_;
  const std::size_t l_;
  SharedEvals& shared_;
  const LaneCallback& on_lane_done_;
};

/// The parallel lane loop, instantiated with or without observation hooks.
template <bool kHooked>
void run_lanes(const BatchProblem& problems, BatchSolution& out,
               const LaneCallback& on_lane_done) {
  const std::size_t n = problems.size();
  // Static contiguous blocks mirroring parallel_for's own split. Lanes are
  // fully independent, so the block boundaries (and hence DSMT_THREADS)
  // cannot change any lane's bits; they only change which thread runs it.
  std::size_t workers = parallel::thread_count();
  if (workers < 1) workers = 1;
  const std::size_t blocks = workers < n ? workers : n;
  const std::size_t base = n / blocks;
  const std::size_t rem = n % blocks;
  parallel::parallel_for(blocks, [&](std::size_t bidx) {
    const std::size_t begin = bidx * base + (bidx < rem ? bidx : rem);
    const std::size_t end = begin + base + (bidx < rem ? 1 : 0);
    // Per-lane Eq.-13 constants are hoisted on the fly: a lane that differs
    // from its predecessor only in duty cycle reuses the predecessor's
    // Terms with the duty patched (every other field derives from the equal
    // inputs by the same make_terms operations, so the copy is bitwise what
    // make_terms would produce, minus the divisions). Rebuilding at a block
    // boundary runs make_terms on the same inputs — same bits — so results
    // stay identical at every DSMT_THREADS. Same story for the duty-run
    // memo: a run straddling a boundary just re-evaluates its shared points
    // once per block, and the memo is a pure-value cache.
    SharedEvals shared;
    eq13::Terms q;
    for (std::size_t l = begin; l < end; ++l) {
      if (l == begin || !duty_siblings(problems, l)) {
        q = lane_terms(problems, l);
        shared.reset();
      } else {
        q.duty = problems.duty_cycle[l];
      }
      LaneSolver<kHooked> solver(q, problems.j0[l], out, l, shared,
                                 on_lane_done);
      solver.run();
    }
  });
}

}  // namespace

void BatchProblem::reserve(std::size_t n) {
  duty_cycle.reserve(n);
  j0.reserve(n);
  t_ref.reserve(n);
  heating_coefficient.reserve(n);
  rho_ref.reserve(n);
  metal_t_ref.reserve(n);
  tcr.reserve(n);
  activation_energy_ev.reserve(n);
  current_exponent.reserve(n);
}

void BatchProblem::push_back(const Problem& p) {
  duty_cycle.push_back(p.duty_cycle);
  j0.push_back(p.j0.value());
  t_ref.push_back(p.t_ref.value());
  heating_coefficient.push_back(p.heating_coefficient.value());
  rho_ref.push_back(p.metal.rho_ref.value());
  metal_t_ref.push_back(p.metal.t_ref.value());
  tcr.push_back(p.metal.tcr);
  activation_energy_ev.push_back(p.metal.em.activation_energy_ev);
  current_exponent.push_back(p.metal.em.current_exponent);
}

Problem BatchProblem::problem(std::size_t lane) const {
  Problem p;
  p.duty_cycle = duty_cycle[lane];
  p.j0 = units::CurrentDensity{j0[lane]};
  p.t_ref = units::Kelvin{t_ref[lane]};
  p.heating_coefficient =
      units::HeatingCoefficient{heating_coefficient[lane]};
  p.metal.rho_ref = units::Resistivity{rho_ref[lane]};
  p.metal.t_ref = units::Kelvin{metal_t_ref[lane]};
  p.metal.tcr = tcr[lane];
  p.metal.em.activation_energy_ev = activation_energy_ev[lane];
  p.metal.em.current_exponent = current_exponent[lane];
  return p;
}

std::size_t BatchSolution::first_failure() const {
  for (std::size_t i = 0; i < status.size(); ++i)
    if (status[i] != core::StatusCode::kOk) return i;
  return npos;
}

namespace {
/// Rebuilds the canonical single-event chain: the exact end state of
/// `d.kernel = kSolveKernel; d.record("numeric/brent", kOk, it, res)` —
/// what the scalar solve path leaves behind on a clean first-try success —
/// written directly. Bypassing record() keeps the (per-drained-lane hot)
/// synthesis free of out-of-line string-parameter plumbing; the
/// differential harness pins the resulting fields against the scalar diag.
void synthesize_canonical_diag(core::SolverDiag& d, int iterations_used,
                               double residual_value) {
  d.kernel = kSolveKernel;
  d.status = StatusCode::kOk;
  d.iterations = iterations_used;
  d.residual = residual_value;
  // Push the event empty and patch it in place: moving a DiagEvent through
  // push_back's by-value parameter would copy both SSO string buffers twice.
  d.chain.push_back(core::DiagEvent{});
  core::DiagEvent& ev = d.chain.back();
  ev.kernel = "numeric/brent";
  ev.iterations = iterations_used;
  ev.residual = residual_value;
}
}  // namespace

core::SolverDiag BatchSolution::lane_diag(std::size_t lane) const {
  if (records[lane] != nullptr) return records[lane]->diag;
  core::SolverDiag d;
  synthesize_canonical_diag(d, iterations[lane], residual[lane]);
  return d;
}

const std::string& BatchSolution::lane_error(std::size_t lane) const {
  static const std::string kEmpty;
  return records[lane] != nullptr ? records[lane]->error : kEmpty;
}

Solution BatchSolution::lane_solution(std::size_t lane) const {
  Solution s;
  s.t_metal = units::Kelvin{t_metal[lane]};
  s.delta_t = units::CelsiusDelta{delta_t[lane]};
  s.j_peak = A_per_m2(j_peak[lane]);
  s.j_rms = A_per_m2(j_rms[lane]);
  s.j_avg = A_per_m2(j_avg[lane]);
  s.converged = status[lane] == core::StatusCode::kOk;
  s.iterations = iterations[lane];
  if (records[lane] != nullptr)
    s.diag = records[lane]->diag;
  else
    synthesize_canonical_diag(s.diag, iterations[lane], residual[lane]);
  return s;
}

Solution BatchSolution::take_lane_solution(std::size_t lane) {
  Solution s;
  drain_lane_into(lane, s);
  return s;
}

void BatchSolution::drain_lane_into(std::size_t lane, Solution& dst) {
  dst.t_metal = units::Kelvin{t_metal[lane]};
  dst.delta_t = units::CelsiusDelta{delta_t[lane]};
  dst.j_peak = A_per_m2(j_peak[lane]);
  dst.j_rms = A_per_m2(j_rms[lane]);
  dst.j_avg = A_per_m2(j_avg[lane]);
  dst.converged = status[lane] == core::StatusCode::kOk;
  dst.iterations = iterations[lane];
  if (records[lane] != nullptr)
    dst.diag = std::move(records[lane]->diag);
  else
    synthesize_canonical_diag(dst.diag, iterations[lane], residual[lane]);
}

void BatchSolution::throw_lane(std::size_t lane) const {
  if (invalid[lane]) throw std::invalid_argument(records[lane]->error);
  throw SolveError(records[lane]->error, records[lane]->diag);
}

void BatchSolution::throw_first_failure() const {
  const std::size_t bad = first_failure();
  if (bad != npos) throw_lane(bad);
}

BatchSolution solve_batch(const BatchProblem& problems,
                          const LaneCallback& on_lane_done) {
  const std::size_t n = problems.size();
  BatchSolution out;
  out.t_metal.assign(n, 0.0);
  out.delta_t.assign(n, 0.0);
  out.j_peak.assign(n, 0.0);
  out.j_rms.assign(n, 0.0);
  out.j_avg.assign(n, 0.0);
  out.iterations.assign(n, 0);
  out.status.assign(n, StatusCode::kOk);
  out.residual.assign(n, 0.0);
  out.invalid.assign(n, 0);
  out.records.clear();
  out.records.resize(n);
  if (n == 0) return out;

  // One sample decides the whole batch: with no fault plan armed and no
  // ambient RunContext, every observation hook is an identity by contract,
  // so the hook-free instantiation is bitwise-indistinguishable (and the
  // lane loop markedly faster). Arming and context installation are
  // documented to happen outside parallel regions, so the sample is stable
  // for the batch's duration. parallel_for snapshots the caller's ambient
  // context for its workers, so sampling on the calling thread is exact.
  if (numeric::fault::armed() || core::current_run_context() != nullptr)
    run_lanes<true>(problems, out, on_lane_done);
  else
    run_lanes<false>(problems, out, on_lane_done);
  return out;
}

Solution solve_one(const Problem& problem) {
  BatchProblem bp;
  bp.reserve(1);
  bp.push_back(problem);
  BatchSolution bs = solve_batch(bp);
  if (!bs.ok(0)) bs.throw_lane(0);
  return bs.take_lane_solution(0);
}

}  // namespace dsmt::selfconsistent
