// Delay-optimal repeater insertion (Otten & Brayton [22], paper Eqs. 16-17):
//
//   l_opt = sqrt(2 r_o (c_g + c_p) / (r c))     optimal segment length
//   s_opt = sqrt(r_o c / (r c_g))               optimal repeater size
//
// where r_o, c_g, c_p describe a minimum-sized driver and r, c are the
// line's per-unit-length resistance and capacitance. Between optimally
// spaced/sized repeaters the stage delay is layer-independent; lines
// shorter than l_opt should not be buffered, and their drivers can be
// downsized to s_opt * (l / l_opt) to save power at equal slew (paper
// Section 4.1).
#pragma once

#include "extraction/wire_rc.h"
#include "tech/technology.h"

namespace dsmt::repeater {

/// The optimal repeater design point for one metal layer.
struct OptimalRepeater {
  double l_opt = 0.0;        ///< optimal inter-repeater length [m]
  double s_opt = 0.0;        ///< optimal size (multiple of min inverter)
  double stage_delay = 0.0;  ///< Elmore-model delay of one optimal stage [s]
  double r_per_m = 0.0;      ///< line resistance used [Ohm/m]
  double c_per_m = 0.0;      ///< line capacitance used [F/m]
};

/// Closed-form optimum from explicit parasitics.
OptimalRepeater optimize(const tech::DeviceParameters& dev, double r_per_m,
                         double c_per_m);

/// Extracts the layer's r/c (homogeneous insulator k_rel, resistance at
/// `temperature_k`) and optimizes.
OptimalRepeater optimize_layer(const tech::Technology& technology, int level,
                               double k_rel, double temperature_k);

/// Driver size for a line of length l <= l_opt at equal slew:
/// s = s_opt * l / l_opt (floored at 1 minimum inverter).
/// length [m]; result [1] (multiples of a minimum inverter).
double downsized_driver(const OptimalRepeater& opt, double length);

/// Elmore delay of a stage: driver r_o/s driving (c_p s + c l + c_g s) plus
/// the distributed line term 0.5 r c l^2 + r l c_g s. Exposed so tests can
/// verify l_opt/s_opt are the analytic minimizers.
/// size [1]; length [m]; r_per_m [Ohm/m]; c_per_m [F/m]; result [s].
double stage_delay_elmore(const tech::DeviceParameters& dev, double size,
                          double length, double r_per_m, double c_per_m);

}  // namespace dsmt::repeater
