#include "repeater/crosstalk.h"

#include <cmath>
#include <stdexcept>

#include "circuit/rcline.h"
#include "circuit/transient.h"
#include "circuit/waveform.h"
#include "numeric/constants.h"
#include "repeater/optimizer.h"

namespace dsmt::repeater {

CrosstalkResult simulate_crosstalk(const tech::Technology& technology,
                                   int level, double k_rel, double length,
                                   const CrosstalkOptions& options) {
  if (length <= 0.0)
    throw std::invalid_argument("simulate_crosstalk: length <= 0");
  const auto& dev = technology.device;
  const auto rc = extraction::extract_wire_rc(technology, level, k_rel,
                                              kTrefK);

  const auto opt = optimize(dev, rc.r_per_m, rc.c_per_m);
  const double s_agg = options.aggressor_size > 0.0
                           ? options.aggressor_size
                           : downsized_driver(opt, length);
  const double s_vic =
      options.victim_size > 0.0 ? options.victim_size : s_agg;

  circuit::Netlist nl;
  const auto vdd = nl.node("vdd");
  nl.add_vsource(vdd, circuit::kGround, circuit::dc(dev.vdd));

  // Aggressor: sized inverter driving its line.
  const auto devs = circuit::make_repeater(dev, s_agg);
  const auto agg_in = nl.node("agg_in");
  const auto agg_out = nl.node("agg_out");
  nl.add_inverter(devs.nmos, devs.pmos, agg_in, agg_out, vdd,
                  circuit::kGround);
  nl.add_capacitor(agg_out, circuit::kGround, devs.c_par);

  // Build both lines segment by segment so coupling caps can tie them.
  const int segs = options.segments;
  const double r_seg = rc.r_per_m * length / segs;
  const double cg_seg = (rc.c_ground_per_m + rc.c_coupling_per_m) *
                        length / segs;  // far-side neighbor is grounded
  const double cc_seg = rc.c_coupling_per_m * length / segs;

  std::vector<circuit::NodeId> agg_nodes{agg_out};
  const auto vic_head = nl.node("vic_head");
  std::vector<circuit::NodeId> vic_nodes{vic_head};
  for (int s = 1; s <= segs; ++s) {
    agg_nodes.push_back(nl.internal_node());
    vic_nodes.push_back(nl.internal_node());
  }
  for (int s = 0; s < segs; ++s) {
    nl.add_resistor(agg_nodes[s], agg_nodes[s + 1], r_seg);
    nl.add_resistor(vic_nodes[s], vic_nodes[s + 1], r_seg);
  }
  for (int s = 0; s <= segs; ++s) {
    const double scale = (s == 0 || s == segs) ? 0.5 : 1.0;
    nl.add_capacitor(agg_nodes[s], circuit::kGround, scale * cg_seg);
    nl.add_capacitor(vic_nodes[s], circuit::kGround, scale * cg_seg);
    nl.add_capacitor(agg_nodes[s], vic_nodes[s], scale * cc_seg);
  }

  // Victim holder: quiet low driver modeled as its on-resistance.
  nl.add_resistor(vic_head, circuit::kGround, dev.r0 / s_vic);
  // Receiver loads.
  nl.add_capacitor(agg_nodes.back(), circuit::kGround, devs.c_in);
  nl.add_capacitor(vic_nodes.back(), circuit::kGround, devs.c_in);

  // Aggressor input: one rising edge after a short delay.
  const double tau_est =
      (dev.r0 / s_agg) * (rc.c_per_m * length + (dev.cg + dev.cp) * s_agg) +
      0.5 * rc.r_per_m * rc.c_per_m * length * length;
  const double t_stop = std::max(options.sim_time_factor * tau_est, 10.0 * dev.rise_time);
  nl.add_vsource(agg_in, circuit::kGround,
                 circuit::pwl({0.0, 0.1 * t_stop,
                               0.1 * t_stop + dev.rise_time, t_stop},
                              {dev.vdd, dev.vdd, 0.0, 0.0}));
  // (falling input -> rising aggressor output -> positive victim kick)

  circuit::TransientOptions topts;
  topts.t_stop = t_stop;
  topts.dt = t_stop / options.steps;
  const auto res = circuit::run_transient(nl, topts);

  const auto v_far = res.voltage(vic_nodes.back());
  CrosstalkResult out;
  for (double v : v_far) out.peak_noise = std::max(out.peak_noise, std::abs(v));
  out.noise_fraction = out.peak_noise / dev.vdd;
  out.coupling_fraction =
      2.0 * rc.c_coupling_per_m / (rc.c_ground_per_m + 2.0 * rc.c_coupling_per_m);
  out.length = length;
  out.aggressor_size = s_agg;
  return out;
}

double max_length_for_noise(const tech::Technology& technology, int level,
                            double k_rel, double noise_budget, double l_max,
                            const CrosstalkOptions& options) {
  if (noise_budget <= 0.0 || noise_budget >= 1.0)
    throw std::invalid_argument("max_length_for_noise: budget outside (0,1)");
  auto noise_at = [&](double l) {
    return simulate_crosstalk(technology, level, k_rel, l, options)
        .noise_fraction;
  };
  if (noise_at(l_max) <= noise_budget) return l_max;
  double lo = l_max * 1e-3, hi = l_max;
  if (noise_at(lo) > noise_budget) return lo;  // even short lines too noisy
  for (int i = 0; i < 24; ++i) {
    const double mid = 0.5 * (lo + hi);
    (noise_at(mid) <= noise_budget ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace dsmt::repeater
