// Capacitively coupled line noise — the crosstalk side of buffer insertion
// (the paper cites Culetu et al. [23]: repeaters are also inserted to cut
// coupling noise, and notes that a large fraction of DSM wire capacitance
// is lateral coupling).
//
// Model: an aggressor and a quiet victim run in parallel at minimum pitch;
// the aggressor is driven rail-to-rail by a sized repeater, the victim is
// held at ground through its (quiet) driver's on-resistance, and the two
// distributed RC lines are tied by the extracted coupling capacitance per
// segment. The MNA engine produces the victim's noise waveform.
#pragma once

#include "extraction/wire_rc.h"
#include "tech/technology.h"

namespace dsmt::repeater {

struct CrosstalkOptions {
  int segments = 24;
  double sim_time_factor = 6.0;  ///< simulate this many aggressor delays
  int steps = 3000;
  double aggressor_size = 0.0;   ///< 0 = use s_opt for the length
  double victim_size = 0.0;      ///< 0 = same as aggressor
};

struct CrosstalkResult {
  double peak_noise = 0.0;          ///< worst |v| on the victim far end [V]
  double noise_fraction = 0.0;      ///< peak noise / vdd
  double coupling_fraction = 0.0;   ///< 2 c_c / (c_g + 2 c_c)
  double length = 0.0;              ///< [m]
  double aggressor_size = 0.0;
};

/// Simulates one aggressor/victim pair of length `length` on `level`.
CrosstalkResult simulate_crosstalk(const tech::Technology& technology,
                                   int level, double k_rel, double length,
                                   const CrosstalkOptions& options = {});

/// Longest line (<= l_max) whose far-end coupling noise stays below
/// `noise_budget` x vdd — the noise-driven repeater-insertion length.
/// Returns l_max if even that is quiet enough.
double max_length_for_noise(const tech::Technology& technology, int level,
                            double k_rel, double noise_budget, double l_max,
                            const CrosstalkOptions& options = {});

}  // namespace dsmt::repeater
