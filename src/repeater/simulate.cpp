#include "repeater/simulate.h"

#include <cmath>
#include <stdexcept>

#include "circuit/rcline.h"
#include "numeric/stats.h"
#include "circuit/transient.h"

namespace dsmt::repeater {

StageSimResult simulate_stage(const tech::Technology& technology, int level,
                              double k_rel, const OptimalRepeater& opt,
                              const SimulationOptions& options) {
  (void)k_rel;  // parasitics already folded into `opt`
  const auto& dev = technology.device;
  const auto& layer = technology.layer(level);

  const double size = opt.s_opt * options.size_scale;
  const double length = opt.l_opt * options.length_scale;

  // Two cascaded stages: the first supplies the realistic (repeater-shaped)
  // input edge; measurements are taken at the second stage, as in the
  // paper's SPICE setup where every global line is driven by an identical
  // upstream repeater.
  circuit::Netlist nl;
  const auto first = circuit::build_repeater_stage(
      nl, dev, size, opt.r_per_m, opt.c_per_m, length, options.line_segments);
  const auto meas = circuit::build_repeater_stage(
      nl, dev, size, opt.r_per_m, opt.c_per_m, length, options.line_segments);
  // Couple the first line's far end into the measured driver's gate (small
  // series resistance keeps the nodes distinct for probing).
  nl.add_resistor(first.line_out, meas.input, 1.0);

  const double period = dev.clock_period;
  const double tr = dev.rise_time;
  nl.add_vsource(first.input, circuit::kGround,
                 circuit::pulse(0.0, dev.vdd, 0.1 * period, tr,
                                0.5 * period - tr, tr, period));

  circuit::TransientOptions topts;
  const int total_periods = options.settle_periods + 1;
  topts.t_stop = total_periods * period;
  topts.dt = period / options.steps_per_period;

  const auto result = circuit::run_transient(nl, topts);

  // Measure over the final period.
  const double t0 = options.settle_periods * period;
  const double t1 = total_periods * period;
  const auto i_all = result.source_current(meas.ammeter);
  auto [tw, iw] = circuit::window(result.time(), i_all, t0, t1);

  StageSimResult sim;
  sim.time = tw;
  sim.line_current = iw;
  {
    auto [tv, vv] =
        circuit::window(result.time(), result.voltage(meas.input), t0, t1);
    sim.v_in = vv;
  }
  std::vector<double> t_out_w;
  {
    auto [tv, vv] =
        circuit::window(result.time(), result.voltage(meas.line_out), t0, t1);
    sim.v_out = vv;
    t_out_w = tv;
  }

  sim.current_stats = circuit::measure(tw, iw);

  // Supply power: the rail source delivers -I_branch (MNA sign convention),
  // shared by the two identical stages.
  if (first.vdd_source >= 0) {
    const auto i_vdd = result.source_current(first.vdd_source);
    auto [tp, ip] = circuit::window(result.time(), i_vdd, t0, t1);
    std::vector<double> p(ip.size());
    for (std::size_t k = 0; k < ip.size(); ++k) p[k] = -dev.vdd * ip[k];
    sim.supply_power = 0.5 * numeric::mean_sampled(tp, p);
  }

  const double area = layer.width * layer.thickness;
  sim.j_peak = sim.current_stats.peak / area;
  sim.j_rms = sim.current_stats.rms / area;
  sim.j_avg_abs = sim.current_stats.average_abs / area;
  sim.duty_effective = sim.current_stats.duty_effective;
  sim.size_used = size;
  sim.length_used = length;

  const double rise =
      circuit::rise_time_10_90(t_out_w, sim.v_out, 0.0, dev.vdd);
  sim.out_rise_fraction = rise > 0.0 ? rise / period : -1.0;

  // 50% propagation delay through the measured stage: the driver inverts,
  // so a rising input edge produces a falling line_out edge.
  const double half = 0.5 * dev.vdd;
  const double t_in = circuit::crossing_time(tw, sim.v_in, half, t0, true);
  if (t_in >= 0.0) {
    const double t_out =
        circuit::crossing_time(t_out_w, sim.v_out, half, t_in, false);
    if (t_out >= 0.0) sim.delay_50 = t_out - t_in;
  }
  return sim;
}

}  // namespace dsmt::repeater
