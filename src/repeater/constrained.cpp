#include "repeater/constrained.h"

#include <cmath>
#include <stdexcept>

#include "numeric/constants.h"
#include "repeater/optimizer.h"
#include "selfconsistent/sweep.h"
#include "thermal/impedance.h"

namespace dsmt::repeater {

namespace {

selfconsistent::Solution limit_at(const tech::Technology& technology,
                                  int level,
                                  const materials::Dielectric& gap_fill,
                                  const ConstrainedOptions& opts,
                                  double duty) {
  return selfconsistent::solve(selfconsistent::make_level_problem(
      technology, level, gap_fill, opts.phi, std::max(duty, 1e-3),
      A_per_m2(opts.j0)));
}

}  // namespace

ConstrainedDesign design_constrained_stage(
    const tech::Technology& technology, int level, double k_rel,
    const materials::Dielectric& gap_fill,
    const ConstrainedOptions& options) {
  ConstrainedDesign out;
  out.unconstrained = optimize_layer(technology, level, k_rel, kTrefK);

  auto evaluate = [&](double scale) {
    SimulationOptions so = options.sim;
    so.size_scale = scale;
    // Smaller drivers pair with shorter optimal spans at equal slew
    // (paper: s = s_opt l/l_opt, inverted here).
    so.length_scale = scale;
    return simulate_stage(technology, level, k_rel, out.unconstrained, so);
  };
  auto meets = [&](const StageSimResult& sim,
                   selfconsistent::Solution* limit_out) {
    const auto limit =
        limit_at(technology, level, gap_fill, options, sim.duty_effective);
    if (limit_out) *limit_out = limit;
    return sim.j_peak <= limit.j_peak && sim.j_rms <= limit.j_rms;
  };

  out.sim = evaluate(1.0);
  if (meets(out.sim, &out.limit)) {
    out.size_scale = 1.0;
    return out;  // the unconstrained optimum is already thermally safe
  }
  out.constrained = true;

  // Check the floor first.
  auto sim_floor = evaluate(options.size_floor);
  selfconsistent::Solution limit_floor;
  if (!meets(sim_floor, &limit_floor)) {
    out.feasible = false;
    out.size_scale = options.size_floor;
    out.sim = sim_floor;
    out.limit = limit_floor;
    return out;
  }

  // Bisect the largest feasible scale in [floor, 1].
  double lo = options.size_floor, hi = 1.0;
  for (int i = 0; i < options.bisection_steps; ++i) {
    const double mid = 0.5 * (lo + hi);
    const auto sim_mid = evaluate(mid);
    if (meets(sim_mid, nullptr))
      lo = mid;
    else
      hi = mid;
  }
  out.size_scale = lo;
  out.sim = evaluate(lo);
  meets(out.sim, &out.limit);

  // Delay penalty: per-unit-length delay of the backed-off stage relative
  // to the optimum (both from the same simulation pipeline).
  const auto sim_opt = evaluate(1.0);
  const double d_opt = sim_opt.delay_50 / sim_opt.length_used;
  const double d_cho = out.sim.delay_50 / out.sim.length_used;
  out.delay_penalty = d_opt > 0.0 ? d_cho / d_opt - 1.0 : 0.0;
  return out;
}

}  // namespace dsmt::repeater
