// Transient simulation of an optimally buffered stage — produces the
// current waveforms and densities of the paper's Tables 5-6 and Fig. 7.
#pragma once

#include <vector>

#include "circuit/waveform.h"
#include "repeater/optimizer.h"
#include "tech/technology.h"

namespace dsmt::repeater {

/// Options for the stage simulation.
struct SimulationOptions {
  int line_segments = 24;     ///< pi-ladder segments for the distributed line
  int steps_per_period = 4000;
  int settle_periods = 1;     ///< discarded warm-up periods
  double size_scale = 1.0;    ///< multiplies s_opt (downsizing studies)
  double length_scale = 1.0;  ///< multiplies l_opt
};

/// Waveforms and measurements from one simulated clock period.
struct StageSimResult {
  std::vector<double> time;        ///< within the measured period [s]
  std::vector<double> line_current;///< driver->line current [A]
  std::vector<double> v_in;        ///< driver input voltage [V]
  std::vector<double> v_out;       ///< far-end line voltage [V]
  circuit::WaveformStats current_stats;
  double j_peak = 0.0;             ///< peak current density [A/m^2]
  double j_rms = 0.0;              ///< RMS current density [A/m^2]
  double j_avg_abs = 0.0;          ///< average |j| [A/m^2]
  double duty_effective = 0.0;     ///< r_eff = (I_rms/I_peak)^2
  double out_rise_fraction = 0.0;  ///< 10-90% output rise time / clock period
  double delay_50 = 0.0;           ///< 50% in->out delay [s]
  double size_used = 0.0;
  double length_used = 0.0;
  /// Average per-stage supply power over the measured period [W] (total
  /// rail power of the two identical stages, halved).
  double supply_power = 0.0;
};

/// Simulates one repeater stage on `level` of `technology` with insulator
/// permittivity `k_rel`: driver sized s_opt*size_scale, line of length
/// l_opt*length_scale, receiver gate load; input driven by a rail-to-rail
/// clock pulse with the technology's rise time and period. Current density
/// uses the layer's W x t cross-section.
StageSimResult simulate_stage(const tech::Technology& technology, int level,
                              double k_rel, const OptimalRepeater& opt,
                              const SimulationOptions& options = {});

}  // namespace dsmt::repeater
