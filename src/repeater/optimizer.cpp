#include "repeater/optimizer.h"

#include <cmath>
#include <stdexcept>

namespace dsmt::repeater {

double stage_delay_elmore(const tech::DeviceParameters& dev, double size,
                          double length, double r_per_m, double c_per_m) {
  if (size <= 0.0 || length <= 0.0)
    throw std::invalid_argument("stage_delay_elmore: bad inputs");
  const double r_drv = dev.r0 / size;
  const double c_line = c_per_m * length;
  const double r_line = r_per_m * length;
  // 0.69 ln2 factors omitted: we only need the minimizer, and the paper's
  // l_opt/s_opt come from exactly this quadratic form.
  return r_drv * (dev.cp * size + c_line + dev.cg * size) +
         r_line * (0.5 * c_line + dev.cg * size);
}

OptimalRepeater optimize(const tech::DeviceParameters& dev, double r_per_m,
                         double c_per_m) {
  if (r_per_m <= 0.0 || c_per_m <= 0.0)
    throw std::invalid_argument("repeater::optimize: bad parasitics");
  OptimalRepeater opt;
  opt.r_per_m = r_per_m;
  opt.c_per_m = c_per_m;
  opt.l_opt = std::sqrt(2.0 * dev.r0 * (dev.cg + dev.cp) /
                        (r_per_m * c_per_m));
  opt.s_opt = std::sqrt(dev.r0 * c_per_m / (r_per_m * dev.cg));
  opt.stage_delay =
      stage_delay_elmore(dev, opt.s_opt, opt.l_opt, r_per_m, c_per_m);
  return opt;
}

OptimalRepeater optimize_layer(const tech::Technology& technology, int level,
                               double k_rel, double temperature_k) {
  const auto rc =
      extraction::extract_wire_rc(technology, level, k_rel, temperature_k);
  return optimize(technology.device, rc.r_per_m, rc.c_per_m);
}

double downsized_driver(const OptimalRepeater& opt, double length) {
  if (length <= 0.0) throw std::invalid_argument("downsized_driver: l <= 0");
  const double s = opt.s_opt * std::min(1.0, length / opt.l_opt);
  return std::max(s, 1.0);
}

}  // namespace dsmt::repeater
