#include "repeater/power.h"

#include <stdexcept>

#include "numeric/constants.h"
#include "repeater/optimizer.h"

namespace dsmt::repeater {

double stage_dynamic_energy(const tech::DeviceParameters& dev, double size,
                            double c_per_m, double length) {
  if (size <= 0.0 || c_per_m <= 0.0 || length <= 0.0)
    throw std::invalid_argument("stage_dynamic_energy: bad inputs");
  const double c_total = c_per_m * length + (dev.cg + dev.cp) * size;
  return c_total * dev.vdd * dev.vdd;
}

std::vector<PowerDelayPoint> power_delay_sweep(
    const tech::Technology& technology, int level, double k_rel,
    const std::vector<double>& size_scales,
    const SimulationOptions& options) {
  if (size_scales.empty())
    throw std::invalid_argument("power_delay_sweep: no scales");
  const auto opt = optimize_layer(technology, level, k_rel, kTrefK);

  std::vector<PowerDelayPoint> out;
  out.reserve(size_scales.size());
  for (double scale : size_scales) {
    if (scale <= 0.0)
      throw std::invalid_argument("power_delay_sweep: scale <= 0");
    SimulationOptions so = options;
    so.size_scale = scale;
    so.length_scale = scale;  // matched downsizing (paper's rule)
    const auto sim = simulate_stage(technology, level, k_rel, opt, so);
    PowerDelayPoint pt;
    pt.size_scale = scale;
    pt.delay_per_mm =
        sim.length_used > 0.0 ? sim.delay_50 / (sim.length_used * 1e3) : 0.0;
    pt.power = sim.supply_power;
    pt.duty_effective = sim.duty_effective;
    pt.j_peak = sim.j_peak;
    out.push_back(pt);
  }
  return out;
}

}  // namespace dsmt::repeater
