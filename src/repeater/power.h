// Repeater power models and the power/delay sizing trade-off.
//
// The paper notes that "for lines which are not on critical path, the
// buffer size may be reduced to save power". This module quantifies the
// trade: per-stage dynamic, short-circuit, and wire power, measured from
// the MNA simulation (supply-current integration) and estimated from
// closed forms, across a driver-size sweep.
#pragma once

#include "repeater/simulate.h"
#include "tech/technology.h"

namespace dsmt::repeater {

/// Closed-form per-stage energy estimate per clock period:
///   E_dyn = (c l + (c_g + c_p) s) Vdd^2   (both edges switch the full cap)
/// size [1]; length [m]; c_per_m [F/m]; result [J].
double stage_dynamic_energy(const tech::DeviceParameters& dev, double size,
                            double c_per_m, double length);

/// Power measured from the stage simulation's supply rail [W]: average of
/// vdd * i_vdd over the measured period (includes short-circuit current).
/// Requires the stage to have been built by build_repeater_stage with its
/// vdd source index recorded.
struct StagePower {
  double total = 0.0;          ///< measured average supply power [W]
  double dynamic_estimate = 0.0;  ///< E_dyn / T from the closed form
  double short_circuit = 0.0;  ///< total - dynamic estimate (floored at 0)
};

/// One point of the power/delay trade-off sweep.
struct PowerDelayPoint {
  double size_scale = 0.0;   ///< s / s_opt
  double delay_per_mm = 0.0; ///< [s/mm]
  double power = 0.0;        ///< measured supply power [W]
  double duty_effective = 0.0;
  double j_peak = 0.0;       ///< [A/m^2]
};

/// Sweeps driver sizes (with matched lengths, s and l scaled together) and
/// measures delay and power for each — the designer's trade-off curve.
std::vector<PowerDelayPoint> power_delay_sweep(
    const tech::Technology& technology, int level, double k_rel,
    const std::vector<double>& size_scales,
    const SimulationOptions& options = {});

}  // namespace dsmt::repeater
