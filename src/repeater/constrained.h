// Thermally constrained repeater design.
//
// The paper ends with "self-heating needs to be considered in high
// performance DSM interconnect design that employs low-k dielectrics" —
// i.e. when the delay-optimal design's current density exceeds the
// self-consistent limit, the designer must back off. This module finds the
// best backed-off design: the largest repeater size s <= s_opt (at the
// matching optimal length for that size) whose simulated current densities
// meet the thermal limit, and reports the delay cost of the detour.
#pragma once

#include "materials/dielectric.h"
#include "repeater/simulate.h"
#include "selfconsistent/solver.h"
#include "tech/technology.h"

namespace dsmt::repeater {

struct ConstrainedOptions {
  double j0 = 6e9;                 ///< EM design rule [A/m^2]
  double phi = 2.45;
  double size_floor = 0.05;        ///< search down to this fraction of s_opt
  int bisection_steps = 10;
  SimulationOptions sim;
};

struct ConstrainedDesign {
  OptimalRepeater unconstrained;   ///< the Eq. 16-17 optimum
  double size_scale = 1.0;         ///< chosen s / s_opt
  StageSimResult sim;              ///< at the chosen size
  selfconsistent::Solution limit;  ///< thermal limit at the measured r_eff
  double delay_penalty = 0.0;      ///< delay(chosen)/delay(opt) - 1
  bool feasible = true;            ///< false if even the floor violates
  bool constrained = false;        ///< true if the optimum violated
};

/// Designs the stage on `level` with insulator `k_rel`, checking against
/// the self-consistent limit computed with `gap_fill`.
ConstrainedDesign design_constrained_stage(
    const tech::Technology& technology, int level, double k_rel,
    const materials::Dielectric& gap_fill, const ConstrainedOptions& options);

}  // namespace dsmt::repeater
