#include "repeater/delay.h"

#include <stdexcept>

#include "circuit/rcline.h"
#include "circuit/transient.h"
#include "circuit/waveform.h"

namespace dsmt::repeater {

namespace {
void check(const DelayStage& s) {
  if (s.rs < 0.0 || s.r_per_m < 0.0 || s.c_per_m <= 0.0 || s.length <= 0.0 ||
      s.c_load < 0.0)
    throw std::invalid_argument("DelayStage: bad parameters");
}
}  // namespace

double delay_elmore(const DelayStage& s) {
  check(s);
  const double c_line = s.c_per_m * s.length;
  const double r_line = s.r_per_m * s.length;
  return s.rs * (c_line + s.c_load) + r_line * (0.5 * c_line + s.c_load);
}

double delay_sakurai(const DelayStage& s) {
  check(s);
  const double c_line = s.c_per_m * s.length;
  const double r_line = s.r_per_m * s.length;
  return 0.377 * r_line * c_line +
         0.693 * (s.rs * c_line + s.rs * s.c_load + r_line * s.c_load);
}

double delay_simulated(const DelayStage& s, int segments, int steps) {
  check(s);
  circuit::Netlist nl;
  const auto in = nl.node("in");
  const auto head = nl.node("head");
  const auto out = nl.node("out");
  // Reference time scale for the run length.
  const double tau = delay_elmore(s);
  const double t_edge = tau * 1e-3;
  nl.add_vsource(in, circuit::kGround,
                 circuit::pwl({0.0, 0.05 * tau, 0.05 * tau + t_edge, 1.0},
                              {0.0, 0.0, 1.0, 1.0}));
  if (s.rs > 0.0) {
    nl.add_resistor(in, head, s.rs);
  } else {
    nl.add_resistor(in, head, 1e-3);  // near-ideal driver
  }
  circuit::add_rc_line(nl, head, out, s.r_per_m, s.c_per_m, s.length,
                       segments);
  nl.add_capacitor(out, circuit::kGround, s.c_load);

  circuit::TransientOptions opts;
  opts.t_stop = 12.0 * tau;
  opts.dt = opts.t_stop / steps;
  const auto res = circuit::run_transient(nl, opts);
  const double t50 = circuit::crossing_time(res.time(), res.voltage(out), 0.5,
                                            0.0, true);
  if (t50 < 0.0)
    throw std::runtime_error("delay_simulated: output never crossed 50%");
  return t50 - 0.05 * tau;
}

}  // namespace dsmt::repeater
