// Closed-form interconnect delay models and their validation hooks.
//
// The repeater optimizer needs only the Elmore *form* (its minimizer is
// exact for any fixed coefficients), but absolute delay estimates need
// calibrated coefficients. This module provides the standard 50%-delay
// models for a driver + distributed-RC + load stage:
//
//   Elmore bound:     t50 <= R_s(C_L + cl) + rl(cl/2 + C_L)
//   Sakurai/Bakoglu:  t50 ~= 0.377 rc l^2 + 0.693 (R_s cl + R_s C_L + rl C_L)
//
// and a helper that measures the same stage with the MNA engine so the
// formulas can be validated against "SPICE" (see test_delay_models.cpp).
#pragma once

#include "tech/technology.h"

namespace dsmt::repeater {

/// Stage description: voltage-source driver with internal resistance `rs`
/// driving a line (r, c per metre, length l) loaded by `cl`.
struct DelayStage {
  double rs = 0.0;       ///< driver resistance [Ohm]
  double r_per_m = 0.0;  ///< [Ohm/m]
  double c_per_m = 0.0;  ///< [F/m]
  double length = 0.0;   ///< [m]
  double c_load = 0.0;   ///< [F]
};

/// Elmore (first-moment) delay — an upper bound on t50 for RC trees.
double delay_elmore(const DelayStage& stage);

/// Sakurai's two-coefficient 50% delay approximation (0.377/0.693).
double delay_sakurai(const DelayStage& stage);

/// 50% delay measured by the MNA engine with `segments` pi-sections and a
/// near-ideal step input. This is the validation reference.
double delay_simulated(const DelayStage& stage, int segments = 40,
                       int steps = 6000);

}  // namespace dsmt::repeater
