#include "esd/failure.h"

#include <cmath>
#include <stdexcept>

namespace dsmt::esd {

const char* to_string(FailureState s) {
  switch (s) {
    case FailureState::kSafe:
      return "safe";
    case FailureState::kLatentDamage:
      return "latent-damage";
    case FailureState::kOpenCircuit:
      return "open-circuit";
  }
  return "?";
}

StressAssessment assess(const thermal::PulseLineSpec& line,
                        const CurrentWaveform& i_of_t,
                        const AssessmentOptions& options) {
  const double area = line.w_m * line.t_m;
  auto j_of_t = [&](double t) { return i_of_t(t) / area; };

  const auto pulse =
      thermal::simulate_pulse(line, j_of_t, options.duration);
  StressAssessment out;
  out.peak_temperature = pulse.peak_temperature;
  out.melt_onset_time = pulse.melt_onset_time;

  if (!pulse.reached_melt) {
    out.state =
        (pulse.peak_temperature >=
         line.metal.t_melt - options.latent_margin_k)
            ? FailureState::kLatentDamage  // grazed the melting point
            : FailureState::kSafe;
    if (out.state == FailureState::kLatentDamage) {
      // Near-melt excursion: mild derating proportional to how close it got.
      const double frac =
          (pulse.peak_temperature -
           (line.metal.t_melt - options.latent_margin_k)) /
          options.latent_margin_k;
      out.em_lifetime_derating =
          1.0 - frac * (1.0 - options.full_melt_derating) * 0.5;
    }
    return out;
  }

  // Past melt onset: integrate the excess heating into the latent heat with
  // temperature clamped at T_melt (conservative for the loss term).
  const auto& m = line.metal;
  const double rho_melt = m.resistivity(m.t_melt);
  const double loss_g =
      line.rth_per_len > 0.0 ? 1.0 / line.rth_per_len : 0.0;
  const double loss_per_vol = loss_g * (m.t_melt - line.t_ref) / area;

  double fusion_energy = 0.0;  // J/m^3 absorbed past onset
  const int steps = 4000;
  const double t0 = pulse.melt_onset_time;
  const double dt = (options.duration - t0) / steps;
  for (int i = 0; i < steps && fusion_energy < m.latent_heat; ++i) {
    const double t = t0 + (i + 0.5) * dt;
    const double j = j_of_t(t);
    const double net = j * j * rho_melt - loss_per_vol;
    if (net > 0.0) fusion_energy += net * dt;
  }
  out.fusion_fraction = std::min(fusion_energy / m.latent_heat, 1.0);

  if (out.fusion_fraction >= 1.0) {
    out.state = FailureState::kOpenCircuit;
    out.em_lifetime_derating = 0.0;
  } else {
    out.state = FailureState::kLatentDamage;
    out.em_lifetime_derating =
        1.0 - out.fusion_fraction * (1.0 - options.full_melt_derating);
  }
  return out;
}

double critical_jpeak_melt_onset(const materials::Metal& metal, double t_pulse,
                                 double t_start_k) {
  thermal::PulseLineSpec spec;
  spec.metal = metal;
  spec.w_m = 1e-6;  // geometry cancels in the adiabatic limit
  spec.t_m = 1e-6;
  spec.t_ref = t_start_k;
  return thermal::critical_current_density_adiabatic(spec, t_pulse);
}

double critical_jpeak_open(const materials::Metal& metal, double t_pulse,
                           double t_start_k) {
  if (t_pulse <= 0.0)
    throw std::invalid_argument("critical_jpeak_open: width <= 0");
  // Adiabatic energy budget: heat to melt + full latent heat within t_pulse.
  //   t_pulse = C_v ln(rho_m/rho_0)/(rho' j^2) + L/(j^2 rho_m)
  const double drho = metal.rho_ref * metal.tcr;
  const double rho0 = metal.resistivity(t_start_k);
  const double rho_m = metal.resistivity(metal.t_melt);
  double energy_term;
  if (drho > 0.0) {
    energy_term = metal.c_volumetric * std::log(rho_m / rho0) / drho;
  } else {
    energy_term = metal.c_volumetric * (metal.t_melt - t_start_k) / rho0;
  }
  energy_term += metal.latent_heat / rho_m;
  return std::sqrt(energy_term / t_pulse);
}

double min_width_for_esd(const materials::Metal& metal, double i_peak,
                         double t_pulse, double t_m, double t_start_k,
                         double safety_factor) {
  if (i_peak <= 0.0 || t_m <= 0.0 || safety_factor < 1.0)
    throw std::invalid_argument("min_width_for_esd: bad inputs");
  const double j_crit = critical_jpeak_melt_onset(metal, t_pulse, t_start_k);
  return i_peak * safety_factor / (j_crit * t_m);
}

}  // namespace dsmt::esd
