// Standard ESD stress current waveforms (paper Section 6, refs. [25-27]).
//
// HBM (human body model): double-exponential, ~10 ns rise / ~150 ns decay,
//   I_peak ~= V_charge / 1500 Ohm.
// MM (machine model): ringing discharge, ~0.5-MHz-scale damped sine with
//   much higher peak per volt (no series resistor).
// CDM (charged device model): very fast (<1 ns rise) oscillatory event.
#pragma once

#include <functional>

namespace dsmt::esd {

/// Time-domain ESD current [A] as a function of time [s].
using CurrentWaveform = std::function<double(double)>;

/// HBM discharge for a pre-charge voltage `v_charge` [V]; classic 100 pF /
/// 1.5 kOhm network: peak ~ v/1500, rise ~ 10 ns, decay ~ 150 ns.
CurrentWaveform hbm(double v_charge);

/// MM discharge (200 pF, ~0.75 uH, ~10 Ohm): damped sine with period
/// ~ 80 ns; peak roughly v/15 [A].
CurrentWaveform mm(double v_charge);

/// CDM-like event: single fast double-exponential, 0.25 ns rise / 1.5 ns
/// decay, peak `i_peak`.
CurrentWaveform cdm(double i_peak);

/// Rectangular transmission-line-pulse (TLP) current of amplitude `i` and
/// width `t_pulse` — the waveform used to characterize the failure model.
/// i [A], t_pulse [s].
CurrentWaveform tlp(double i, double t_pulse);

/// Duration containing the bulk of the stress: HBM ~ 4 decay constants.
double hbm_duration();

}  // namespace dsmt::esd
