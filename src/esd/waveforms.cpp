#include "esd/waveforms.h"

#include <cmath>
#include <stdexcept>

namespace dsmt::esd {

namespace {
constexpr double kHbmTauRise = 10e-9;
constexpr double kHbmTauFall = 150e-9;

CurrentWaveform double_exp(double peak, double tau_r, double tau_f) {
  const double t_star = std::log(tau_f / tau_r) * tau_r * tau_f / (tau_f - tau_r);
  const double norm = std::exp(-t_star / tau_f) - std::exp(-t_star / tau_r);
  return [=](double t) {
    if (t <= 0.0) return 0.0;
    return peak * (std::exp(-t / tau_f) - std::exp(-t / tau_r)) / norm;
  };
}
}  // namespace

CurrentWaveform hbm(double v_charge) {
  if (v_charge <= 0.0) throw std::invalid_argument("hbm: v_charge <= 0");
  return double_exp(v_charge / 1500.0, kHbmTauRise, kHbmTauFall);
}

CurrentWaveform mm(double v_charge) {
  if (v_charge <= 0.0) throw std::invalid_argument("mm: v_charge <= 0");
  // Series RLC: C = 200 pF, L = 0.75 uH, R = 10 Ohm.
  const double c = 200e-12, l = 0.75e-6, r = 10.0;
  const double alpha = r / (2.0 * l);
  const double w0 = 1.0 / std::sqrt(l * c);
  const double wd = std::sqrt(std::max(w0 * w0 - alpha * alpha, 1e-6));
  return [=](double t) {
    if (t <= 0.0) return 0.0;
    return v_charge / (wd * l) * std::exp(-alpha * t) * std::sin(wd * t);
  };
}

CurrentWaveform cdm(double i_peak) {
  if (i_peak <= 0.0) throw std::invalid_argument("cdm: i_peak <= 0");
  return double_exp(i_peak, 0.25e-9, 1.5e-9);
}

CurrentWaveform tlp(double i, double t_pulse) {
  if (t_pulse <= 0.0) throw std::invalid_argument("tlp: width <= 0");
  return [=](double t) { return (t > 0.0 && t <= t_pulse) ? i : 0.0; };
}

double hbm_duration() { return 4.0 * kHbmTauFall; }

}  // namespace dsmt::esd
