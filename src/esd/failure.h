// Short-pulse high-current interconnect failure model (Banerjee et al. [8])
// and latent-damage assessment ([9]) — paper Section 6.
//
// Under sub-200-ns stress the line heats nearly adiabatically. Failure
// states, in order of increasing severity:
//   kSafe            peak temperature below the latent-damage threshold
//   kLatentDamage    metal melted (fully or partially) but the line
//                    resolidified — the line survives electrically yet its
//                    EM lifetime is degraded [9]
//   kOpenCircuit     enough energy to melt the full cross-section and
//                    (heuristically) vaporize/open the line
// The paper's reference point: ~60 MA/cm^2 opens AlCu lines on ESD time
// scales.
#pragma once

#include "esd/waveforms.h"
#include "materials/metal.h"
#include "thermal/transient.h"

namespace dsmt::esd {

enum class FailureState { kSafe, kLatentDamage, kOpenCircuit };

const char* to_string(FailureState s);

/// Assessment of one stress event on one line.
struct StressAssessment {
  FailureState state = FailureState::kSafe;
  double peak_temperature = 0.0;   ///< [K]
  double melt_onset_time = -1.0;   ///< [s], -1 if never reached
  double fusion_fraction = 0.0;    ///< energy past melt onset / latent heat
  /// Multiplicative EM lifetime derating from latent damage, 1.0 if safe.
  double em_lifetime_derating = 1.0;
};

/// Options for the assessment.
struct AssessmentOptions {
  double duration = 800e-9;          ///< integration window [s]
  double latent_margin_k = 50.0;     ///< "safe" if T_peak < T_melt - margin
  /// Empirical EM derating at full melt/resolidification (ref. [9] observed
  /// order-of-magnitude lifetime losses); scales linearly with the melt
  /// fraction.
  double full_melt_derating = 0.1;
};

/// Integrates the lumped thermal balance for the waveform and classifies
/// the outcome.
StressAssessment assess(const thermal::PulseLineSpec& line,
                        const CurrentWaveform& i_of_t,
                        const AssessmentOptions& options = {});

/// Critical current density [A/m^2] for open-circuit failure under a
/// rectangular pulse of width `t_pulse`: melt onset plus the full latent
/// heat of fusion within the pulse (adiabatic).
double critical_jpeak_open(const materials::Metal& metal, double t_pulse,
                           double t_start_k);

/// Critical current density for melt onset only (latent-damage threshold).
/// t_pulse [s], t_start_k [K].
double critical_jpeak_melt_onset(const materials::Metal& metal, double t_pulse,
                                 double t_start_k);

/// Minimum line width [m] such that an ESD current `i_peak` of width
/// `t_pulse` stays below the melt-onset threshold with `safety_factor`
/// (>= 1) margin, for a line of thickness t_m. This is the paper's "design
/// interconnects in ESD protection circuits and I/O buffers separately"
/// rule, solved for geometry.
double min_width_for_esd(const materials::Metal& metal, double i_peak,
                         double t_pulse, double t_m, double t_start_k,
                         double safety_factor = 1.5);

}  // namespace dsmt::esd
