#include "report/table.h"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/atomic_file.h"

namespace dsmt::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const bool quote = row[c].find(',') != std::string::npos;
      if (quote) os << '"';
      os << row[c];
      if (quote) os << '"';
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string level_label(int level) {
  std::ostringstream os;
  os << 'M' << level;
  return os.str();
}

void write_csv(const std::string& path,
               const std::vector<std::string>& column_names,
               const std::vector<std::vector<double>>& columns) {
  if (column_names.size() != columns.size() || columns.empty())
    throw std::invalid_argument("write_csv: column mismatch");
  const std::size_t n = columns.front().size();
  for (const auto& c : columns)
    if (c.size() != n) throw std::invalid_argument("write_csv: ragged data");

  // Staged write: the file appears complete or not at all, so a run killed
  // mid-emit can never leave a truncated CSV behind.
  core::AtomicFile file(path);
  std::ostream& os = file.stream();
  for (std::size_t c = 0; c < column_names.size(); ++c) {
    os << column_names[c];
    os << (c + 1 < column_names.size() ? ',' : '\n');
  }
  os << std::setprecision(10);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t c = 0; c < columns.size(); ++c) {
      os << columns[c][i];
      os << (c + 1 < columns.size() ? ',' : '\n');
    }
  file.commit();
}

}  // namespace dsmt::report
