#include "report/diagnostics.h"

namespace dsmt::report {

Json diag_to_json(const core::SolverDiag& diag) {
  Json root = Json::object();
  root.set("kernel", Json::string(diag.kernel))
      .set("status", Json::string(core::status_name(diag.status)))
      .set("iterations", Json::integer(diag.iterations))
      .set("residual", Json::number(diag.residual))
      .set("recovered", Json::boolean(diag.recovered));
  Json chain = Json::array();
  for (const auto& ev : diag.chain) {
    Json entry = Json::object();
    entry.set("kernel", Json::string(ev.kernel))
        .set("status", Json::string(core::status_name(ev.status)))
        .set("iterations", Json::integer(ev.iterations))
        .set("residual", Json::number(ev.residual));
    if (!ev.note.empty()) entry.set("note", Json::string(ev.note));
    chain.push(std::move(entry));
  }
  root.set("chain", std::move(chain));
  return root;
}

}  // namespace dsmt::report
