#include "report/diagnostics.h"

namespace dsmt::report {

Json diag_to_json(const core::SolverDiag& diag) {
  Json root = Json::object();
  root.set("kernel", Json::string(diag.kernel))
      .set("status", Json::string(core::status_name(diag.status)))
      .set("iterations", Json::integer(diag.iterations))
      .set("residual", Json::number_or_null(diag.residual))
      .set("recovered", Json::boolean(diag.recovered));
  Json chain = Json::array();
  for (const auto& ev : diag.chain) {
    Json entry = Json::object();
    entry.set("kernel", Json::string(ev.kernel))
        .set("status", Json::string(core::status_name(ev.status)))
        .set("iterations", Json::integer(ev.iterations))
        .set("residual", Json::number_or_null(ev.residual));
    if (!ev.note.empty()) entry.set("note", Json::string(ev.note));
    chain.push(std::move(entry));
  }
  root.set("chain", std::move(chain));
  return root;
}

Json checkpoint_to_json(const core::CheckpointStats& stats) {
  Json entry = Json::object();
  entry.set("job", Json::string(stats.job))
      .set("total_slots", Json::integer(static_cast<long long>(stats.total_slots)))
      .set("completed", Json::integer(static_cast<long long>(stats.completed)))
      .set("resumed", Json::integer(static_cast<long long>(stats.resumed)))
      .set("flushes", Json::integer(static_cast<long long>(stats.flushes)));
  return entry;
}

Json run_to_json(const core::RunContext& context) {
  Json run = Json::object();
  run.set("deadline_armed", Json::boolean(context.has_deadline()));
  if (context.has_deadline())
    run.set("deadline_remaining_s", Json::number(context.seconds_remaining()));
  run.set("cancelled", Json::boolean(context.cancel().cancel_requested()))
      .set("beats", Json::integer(static_cast<long long>(context.beats())));
  Json checkpoints = Json::array();
  for (const auto& stats : context.checkpoint_log())
    checkpoints.push(checkpoint_to_json(stats));
  run.set("checkpoints", std::move(checkpoints));
  return run;
}

}  // namespace dsmt::report
