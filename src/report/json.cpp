#include "report/json.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace dsmt::report {

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}
Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}
Json Json::string(std::string value) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(value);
  return j;
}
Json Json::number(double value) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = value;
  return j;
}
Json Json::integer(long long value) {
  Json j;
  j.kind_ = Kind::kInteger;
  j.int_ = value;
  return j;
}
Json Json::boolean(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  if (kind_ != Kind::kObject)
    throw std::logic_error("Json::set on non-object");
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::kArray) throw std::logic_error("Json::push on non-array");
  items_.push_back(std::move(value));
  return *this;
}

namespace {
void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}
}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kString:
      escape_into(out, str_);
      break;
    case Kind::kNumber: {
      if (!std::isfinite(num_)) {
        out += "null";
        break;
      }
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.10g", num_);
      out += buf;
      break;
    }
    case Kind::kInteger: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld", int_);
      out += buf;
      break;
    }
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_into(out, k);
        out += indent < 0 ? ":" : ": ";
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& v : items_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace dsmt::report
