#include "report/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "core/status.h"

namespace dsmt::report {

namespace {

[[noreturn]] void throw_json_error(const char* kernel, const std::string& what,
                                   core::StatusCode status) {
  core::SolverDiag diag;
  diag.record(kernel, status, 0, 0.0, what);
  throw SolveError("report/json: " + what, diag);
}

}  // namespace

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}
Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}
Json Json::string(std::string value) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(value);
  return j;
}
Json Json::number(double value) {
  if (!std::isfinite(value))
    throw_json_error("report/json", "non-finite number in payload "
                     "(use number_or_null for diagnostic fields)",
                     core::StatusCode::kNonFinite);
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = value;
  return j;
}
Json Json::number_or_null(double value) {
  if (!std::isfinite(value)) return null();
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = value;
  return j;
}
Json Json::integer(long long value) {
  Json j;
  j.kind_ = Kind::kInteger;
  j.int_ = value;
  return j;
}
Json Json::boolean(bool value) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = value;
  return j;
}
Json Json::null() {
  Json j;
  j.kind_ = Kind::kNull;
  return j;
}

double Json::as_number() const {
  if (kind_ == Kind::kNumber) return num_;
  if (kind_ == Kind::kInteger) return static_cast<double>(int_);
  throw_json_error("report/json", "as_number on non-numeric node",
                   core::StatusCode::kInvalidInput);
}

long long Json::as_integer() const {
  if (kind_ == Kind::kInteger) return int_;
  if (kind_ == Kind::kNumber && num_ == std::floor(num_) &&
      std::abs(num_) < 9.2e18)
    return static_cast<long long>(num_);
  throw_json_error("report/json", "as_integer on non-integral node",
                   core::StatusCode::kInvalidInput);
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString)
    throw_json_error("report/json", "as_string on non-string node",
                     core::StatusCode::kInvalidInput);
  return str_;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool)
    throw_json_error("report/json", "as_bool on non-boolean node",
                     core::StatusCode::kInvalidInput);
  return bool_;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  if (kind_ != Kind::kArray || index >= items_.size())
    throw std::out_of_range("Json::at: index out of range");
  return items_[index];
}

const std::pair<std::string, Json>& Json::member(std::size_t index) const {
  if (kind_ != Kind::kObject || index >= members_.size())
    throw std::out_of_range("Json::member: index out of range");
  return members_[index];
}

Json& Json::set(const std::string& key, Json value) {
  if (kind_ != Kind::kObject)
    throw std::logic_error("Json::set on non-object");
  // Replace in place (keeping insertion order) so the writer can never
  // build — and dump() can never emit — an object with duplicate keys.
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::kArray) throw std::logic_error("Json::push on non-array");
  items_.push_back(std::move(value));
  return *this;
}

namespace {
void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

/// Recursive-descent JSON parser. Strict: one document, no trailing bytes,
/// nesting bounded so a deep adversarial input cannot blow the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw_json_error("report/json/parse",
                     "parse error at offset " + std::to_string(pos_) + ": " +
                         what,
                     core::StatusCode::kInvalidInput);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json::null();
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected member key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      // RFC 8259 leaves duplicate-key semantics to the implementation; a
      // strict parser rejects them so the same document can never mean
      // first-wins here and last-wins in another consumer.
      if (obj.find(key) != nullptr)
        fail("duplicate object key '" + key + "'");
      obj.set(key, parse_value(depth + 1));
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == '}') return obj;
      if (sep != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push(parse_value(depth + 1));
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == ']') return arr;
      if (sep != ',') fail("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      value <<= 4;
      if (c >= '0' && c <= '9')
        value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        value |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("bad \\u escape digit");
    }
    return value;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_];
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              fail("unpaired high surrogate");
            pos_ += 2;
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  bool digit_at(std::size_t p) const {
    return p < text_.size() && text_[p] >= '0' && text_[p] <= '9';
  }

  Json parse_number() {
    // RFC 8259 grammar, enforced here rather than delegated to strtod:
    // int = "0" / digit1-9 *DIGIT (no leading zeros), frac/exp each require
    // at least one digit.
    const std::size_t start = pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit_at(pos_)) fail("bad number");
    if (text_[pos_] == '0') {
      ++pos_;
      if (digit_at(pos_)) fail("leading zero in number");
    } else {
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (!digit_at(pos_)) fail("expected digit after decimal point");
      while (digit_at(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!digit_at(pos_)) fail("expected digit in exponent");
      while (digit_at(pos_)) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    if (integral) {
      errno = 0;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      // On overflow strtoll still consumes the token and clamps to
      // LLONG_MIN/MAX with errno == ERANGE; that literal is not
      // representable as long long, so fall through to double.
      if (errno != ERANGE && end != nullptr && *end == '\0')
        return Json::integer(v);
    }
    end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + token + "'");
    if (!std::isfinite(v)) fail("number overflows to non-finite");
    return Json::number(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};
}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kString:
      escape_into(out, str_);
      break;
    case Kind::kNumber: {
      // number() rejects non-finite at construction; this is the backstop
      // for default-constructed corruption, honoring the same policy.
      if (!std::isfinite(num_))
        throw_json_error("report/json", "non-finite number reached dump",
                         core::StatusCode::kNonFinite);
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.10g", num_);
      out += buf;
      break;
    }
    case Kind::kInteger: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld", int_);
      out += buf;
      break;
    }
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_into(out, k);
        out += indent < 0 ? ":" : ": ";
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const auto& v : items_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace dsmt::report
