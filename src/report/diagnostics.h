// JSON serialization of solver diagnostics (core/status.h) and run
// resilience state (core/run_context.h), so sign-off reports and downstream
// tooling can see which kernels ran, how hard they worked, whether any
// recovery stage fired, and whether a deadline/cancellation or checkpoint
// resume shaped the run.
#pragma once

#include "core/run_context.h"
#include "core/status.h"
#include "report/json.h"

namespace dsmt::report {

/// Serializes a diagnostic chain: the summary fields plus every recorded
/// attempt/recovery event, in order.
Json diag_to_json(const core::SolverDiag& diag);

/// Serializes one checkpoint's counters (job, slot totals, resume/flush
/// counts) as published into the run's checkpoint log.
Json checkpoint_to_json(const core::CheckpointStats& stats);

/// Serializes the run's resilience state: deadline arming and remaining
/// budget [s], cancellation flag, heartbeat count, and every checkpoint the
/// run touched. This is what lands under the sign-off report's "run" key.
Json run_to_json(const core::RunContext& context);

}  // namespace dsmt::report
