// JSON serialization of solver diagnostics (core/status.h), so sign-off
// reports and downstream tooling can see which kernels ran, how hard they
// worked, and whether any recovery stage fired.
#pragma once

#include "core/status.h"
#include "report/json.h"

namespace dsmt::report {

/// Serializes a diagnostic chain: the summary fields plus every recorded
/// attempt/recovery event, in order.
Json diag_to_json(const core::SolverDiag& diag);

}  // namespace dsmt::report
