// Minimal column-aligned table printer and CSV writer used by the benchmark
// harnesses and examples to emit the paper's tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dsmt::report {

/// A simple text table: set headers, add rows, print aligned.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows; `precision` applies to all doubles.
  void add_row_values(const std::vector<double>& values, int precision = 3);

  /// Renders with a header rule and 2-space column gaps.
  std::string to_string() const;
  /// Renders as CSV (no escaping beyond quoting commas).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
/// v [1]: formatted verbatim, unit is the caller's concern.
std::string fmt(double v, int precision = 3);

/// Formats a metal level as "M<level>" ("M4").
std::string level_label(int level);

/// Writes a CSV series file of named columns (all the same length).
void write_csv(const std::string& path,
               const std::vector<std::string>& column_names,
               const std::vector<std::vector<double>>& columns);

}  // namespace dsmt::report
