// Minimal JSON writer (no external dependencies) used to export structured
// results (sign-off reports, sweep series) to downstream tooling.
//
// Supports objects, arrays, strings (escaped), numbers, and booleans via a
// small builder API; output is deterministic (insertion order).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dsmt::report {

/// A JSON value tree.
class Json {
 public:
  static Json object();
  static Json array();
  static Json string(std::string value);
  /// value [1]: emitted verbatim, unit is the caller's concern.
  static Json number(double value);
  static Json integer(long long value);
  static Json boolean(bool value);

  /// Object member (asserts object kind). Returns *this for chaining.
  Json& set(const std::string& key, Json value);
  /// Array append (asserts array kind).
  Json& push(Json value);

  /// Serializes; `indent` < 0 means compact.
  std::string dump(int indent = 2) const;

 private:
  enum class Kind { kObject, kArray, kString, kNumber, kInteger, kBool };
  Kind kind_ = Kind::kObject;
  std::string str_;
  double num_ = 0.0;
  long long int_ = 0;
  bool bool_ = false;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> items_;

  void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace dsmt::report
