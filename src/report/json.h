// Minimal JSON reader/writer (no external dependencies) used to exchange
// structured data with downstream tooling: sign-off reports, sweep series,
// and the request/response schema of the service front end.
//
// Writing supports objects, arrays, strings (escaped), numbers, booleans,
// and null via a small builder API; output is deterministic (insertion
// order). Numeric policy is explicit: Json::number() REJECTS NaN/Inf with a
// dsmt::SolveError (kNonFinite) — a bare `nan` must never reach a payload —
// while Json::number_or_null() is the opt-in lossy mapping (non-finite ->
// null) for diagnostic fields where NaN is a legitimate observation (e.g. a
// fault-injected residual).
//
// Reading (Json::parse) is a strict recursive-descent parser with a depth
// bound; malformed input raises dsmt::SolveError (kInvalidInput) carrying
// the byte offset. parse(dump(x)) round-trips every tree the builder can
// produce, including adversarial strings (quotes, backslashes, control
// characters, \uXXXX escapes).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace dsmt::report {

/// A JSON value tree.
class Json {
 public:
  static Json object();
  static Json array();
  static Json string(std::string value);
  /// value [1]: emitted verbatim, unit is the caller's concern. Throws
  /// dsmt::SolveError (kNonFinite) when value is NaN/Inf: payloads carry
  /// finite numbers or an explicit null, never `nan`.
  static Json number(double value);
  /// value [1]: like number(), but maps non-finite to JSON null instead of
  /// throwing — for diagnostics where NaN is the honest observation.
  static Json number_or_null(double value);
  static Json integer(long long value);
  static Json boolean(bool value);
  static Json null();

  /// Parses a complete JSON document (trailing garbage is an error). Throws
  /// dsmt::SolveError (kInvalidInput) with the byte offset on malformed
  /// input or nesting deeper than 64 levels.
  static Json parse(const std::string& text);

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const {
    return kind_ == Kind::kNumber || kind_ == Kind::kInteger;
  }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_null() const { return kind_ == Kind::kNull; }

  /// Numeric value [1] of a number/integer node; throws dsmt::SolveError
  /// (kInvalidInput) on any other kind.
  double as_number() const;
  /// Integer value of an integer node (or a number with integral value).
  long long as_integer() const;
  const std::string& as_string() const;
  bool as_bool() const;

  /// Object member lookup; nullptr when absent or not an object. Objects
  /// never hold duplicate keys (set() replaces, parse() rejects them).
  const Json* find(const std::string& key) const;
  /// Array length / object member count (0 for scalars).
  std::size_t size() const;
  /// Array element; throws std::out_of_range.
  const Json& at(std::size_t index) const;
  /// Object member by position (insertion order); throws std::out_of_range.
  const std::pair<std::string, Json>& member(std::size_t index) const;

  /// Object member (asserts object kind); an existing key is replaced in
  /// place, keeping its insertion position. Returns *this for chaining.
  Json& set(const std::string& key, Json value);
  /// Array append (asserts array kind).
  Json& push(Json value);

  /// Serializes; `indent` < 0 means compact.
  std::string dump(int indent = 2) const;

 private:
  enum class Kind {
    kObject,
    kArray,
    kString,
    kNumber,
    kInteger,
    kBool,
    kNull
  };
  Kind kind_ = Kind::kObject;
  std::string str_;
  double num_ = 0.0;
  long long int_ = 0;
  bool bool_ = false;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> items_;

  void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace dsmt::report
