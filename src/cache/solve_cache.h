// Content-addressed solve cache: sharded, single-flight, durable.
//
// The map is deterministically sharded — shard = fnv1a(key) % shards, a
// pure function of the canonical request — so which lock a request takes
// never depends on thread count or arrival order, and replies stay
// byte-identical at every DSMT_THREADS (a hit and a miss produce the same
// bytes by construction; the shard layout only decides who waits on whom).
//
// Single-flight: the first thread to miss on a key becomes its LEADER and
// solves; concurrent threads asking the same key park on the shard's
// condition variable instead of duplicating the solve, waking when the
// leader publishes (a hit) or abandons (the earliest waiter is promoted to
// solve). Parks are deadline-aware: waiters poll core::run_check() every
// poll_interval_ms and give up into an independent solve when their budget
// is gone — a stampede cannot starve the pool, and a wedged leader cannot
// wedge its waiters past wait_budget_ns.
//
// Integrity: entries are stored as encoded payload bytes plus their FNV-1a
// digest, and EVERY hit re-verifies the digest and re-decodes before
// serving — a flipped bit in resident memory or a corrupt entry slipped
// into the segment is quarantined (counted, evicted) and the request falls
// back to a full solve. The durable form is an append-only segment file
// (cache/segment.h) replayed at construction under the recovery policy
// documented there.
//
// Lock hierarchy (DESIGN.md §7): shard mutexes are LEVEL 0 — held across
// waits but never across I/O or callbacks; the segment append mutex is
// LEVEL 1 — held across the fsync'd append, never while holding a shard
// lock (publish releases the shard before appending).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cache/entry.h"
#include "cache/segment.h"
#include "core/atomic_file.h"
#include "core/thread_annotations.h"
#include "report/json.h"

namespace dsmt::cache {

struct SolveCacheConfig {
  /// Directory for the segment file; empty = memory-only cache.
  std::string dir;
  std::size_t shards = 8;
  /// Total resident entries across shards; per-shard FIFO eviction.
  std::size_t max_entries = 65536;
  /// Physics-schema stamp for segment records; 0 = default_schema_stamp().
  std::uint64_t schema_stamp = 0;
  /// Waiter park granularity [ms]: cancellation/deadline observation lag.
  int poll_interval_ms = 10;
  /// Max time a waiter coalesces behind a leader before solving on its
  /// own [ns]. A backstop, not a deadline — ambient RunContext still wins.
  std::uint64_t wait_budget_ns = 2'000'000'000;
};

/// Monotonic counters since construction (snapshot).
struct CacheStats {
  std::uint64_t hits = 0;        ///< verified entries served
  std::uint64_t misses = 0;      ///< lookups that led or solved
  std::uint64_t coalesced = 0;   ///< hits served after parking on a flight
  std::uint64_t inserts = 0;     ///< entries published
  std::uint64_t evictions = 0;   ///< FIFO capacity evictions
  /// Entries never served because their checksum or structure failed —
  /// resident verify failures plus segment-load quarantines.
  std::uint64_t corrupt_quarantined = 0;
  std::uint64_t entries = 0;  ///< resident now
  std::uint64_t bytes = 0;    ///< resident payload bytes now
  // Segment recovery outcome (set once at construction).
  std::uint64_t loaded = 0;           ///< entries replayed from disk
  std::uint64_t torn_truncated = 0;   ///< tail truncation events
  std::uint64_t bytes_truncated = 0;
  bool refused_stamp = false;         ///< segment refused: schema mismatch
};

/// acquire() outcome: serve the hit, lead the solve, or solve without a
/// flight (interrupted or budget-expired waiter).
enum class Acquire { kHit, kLead, kSolve };

class SolveCache {
 public:
  explicit SolveCache(SolveCacheConfig config);
  ~SolveCache();
  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Plain verified lookup — no flight, no parking. For callers that must
  /// never block on another request's solve (the supervise parent).
  bool lookup(const std::string& key, CachedSolve& out);

  /// Single-flight lookup. kHit: `out` is valid. kLead: the caller MUST
  /// later publish() or abandon() this key (FlightLease automates it).
  /// kSolve: solve independently, publishing is welcome but optional.
  Acquire acquire(const std::string& key, CachedSolve& out);

  /// Installs (key, value), wakes the key's waiters, appends to the
  /// segment. Callable by leaders and independent solvers alike.
  void publish(const std::string& key, const CachedSolve& value);

  /// Releases a led flight without a value; the earliest waiter is
  /// promoted to leader (or all dissolve to independent solves).
  void abandon(const std::string& key);

  CacheStats stats() const;
  /// The "cache.solve" observability section (ping + sign-off).
  report::Json cache_json() const;
  const SolveCacheConfig& config() const { return config_; }

 private:
  struct Entry {
    std::string payload;     ///< encode_payload(key, value) bytes
    std::uint64_t checksum;  ///< fnv1a(payload), re-verified on every hit
  };
  struct Shard {
    mutable Mutex mu;
    CondVar published;  ///< signalled on publish/abandon in this shard
    std::map<std::string, Entry> entries DSMT_GUARDED_BY(mu);
    /// FIFO eviction order: keys in insert order, head index advances on
    /// eviction, compacted periodically.
    std::vector<std::string> order DSMT_GUARDED_BY(mu);
    std::size_t evict_head DSMT_GUARDED_BY(mu) = 0;
    std::set<std::string> flights DSMT_GUARDED_BY(mu);
  };

  Shard& shard_for(const std::string& key);
  /// Installs the entry into `shard` (caller holds its lock) and evicts
  /// FIFO over capacity. Returns true when the key was newly inserted.
  bool install(Shard& shard, const std::string& key, Entry entry)
      DSMT_REQUIRES(shard.mu);
  /// Verifies + decodes a resident entry; quarantines it on mismatch.
  bool verified_get(Shard& shard, const std::string& key, CachedSolve& out)
      DSMT_REQUIRES(shard.mu);

  const SolveCacheConfig config_;
  const std::uint64_t schema_stamp_;
  const std::size_t per_shard_cap_;
  // R10-ok: sized once in the constructor and never resized; all mutable
  // state lives inside each Shard under its own mutex.
  std::vector<std::unique_ptr<Shard>> shards_;

  // Counters are atomics: bumped under shard locks or none at all, read
  // lock-free by stats().
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> corrupt_quarantined_{0};
  std::atomic<std::uint64_t> entries_{0};
  std::atomic<std::uint64_t> bytes_{0};

  // R10-ok: segment recovery outcome, written once in the constructor's
  // single-threaded window and read-only afterwards.
  SegmentLoadStats load_;

  /// LEVEL 1: held across the fsync'd segment append; never acquired while
  /// holding a shard lock.
  Mutex segment_mu_;
  std::unique_ptr<core::AppendLog> log_ DSMT_GUARDED_BY(segment_mu_);
};

/// RAII companion for acquire() == kLead: abandons the flight on every
/// exit path unless the leader published (publish() then dismiss()).
class FlightLease {
 public:
  FlightLease() = default;
  ~FlightLease() {
    if (cache_ != nullptr) cache_->abandon(key_);
  }
  FlightLease(const FlightLease&) = delete;
  FlightLease& operator=(const FlightLease&) = delete;

  void arm(SolveCache* cache, std::string key) {
    cache_ = cache;
    key_ = std::move(key);
  }
  void dismiss() { cache_ = nullptr; }
  bool armed() const { return cache_ != nullptr; }

 private:
  SolveCache* cache_ = nullptr;
  // R10-ok: single-owner RAII handle, never shared across threads.
  std::string key_;
};

}  // namespace dsmt::cache
