#include "cache/entry.h"

#include <bit>
#include <cstddef>

#include "core/status.h"

namespace dsmt::cache {

namespace {

/// The two kernels a canonical clean solve leaves in its diag — must match
/// selfconsistent/batch.cpp's synthesize_canonical_diag exactly.
constexpr const char* kSolveKernel = "eq13/solve";
constexpr const char* kRootKernel = "numeric/brent";

// Big-endian fixed-width codec, the supervise protocol's convention.
void put_u32_be(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>((v >> 24) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>(v & 0xff));
}

void put_u64_be(std::string& out, std::uint64_t v) {
  put_u32_be(out, static_cast<std::uint32_t>(v >> 32));
  put_u32_be(out, static_cast<std::uint32_t>(v & 0xffffffffull));
}

void put_double_be(std::string& out, double v) {
  put_u64_be(out, std::bit_cast<std::uint64_t>(v));
}

std::uint32_t get_u32_be(const unsigned char* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t get_u64_be(const unsigned char* p) {
  return (static_cast<std::uint64_t>(get_u32_be(p)) << 32) |
         static_cast<std::uint64_t>(get_u32_be(p + 4));
}

double get_double_be(const unsigned char* p) {
  return std::bit_cast<double>(get_u64_be(p));
}

/// Keys are canonical request JSON — kilobytes at the most. Anything
/// larger in a decoded header is corruption, not data.
constexpr std::uint32_t kMaxKeyBytes = 1u << 20;

}  // namespace

std::string canonical_key(const service::Request& request) {
  service::Request canonical = request;
  canonical.id.clear();
  return service::request_to_json(canonical).dump(-1);
}

bool canonical_solve(const selfconsistent::Solution& solution) {
  const core::SolverDiag& d = solution.diag;
  if (!d.ok()) return false;
  if (d.recovered || d.kernel != kSolveKernel) return false;
  if (d.chain.size() != 1) return false;
  const core::DiagEvent& ev = d.chain[0];
  return ev.kernel == kRootKernel && ev.status == core::StatusCode::kOk &&
         ev.note.empty() && ev.iterations == d.iterations &&
         ev.residual == d.residual && d.iterations == solution.iterations;
}

CachedSolve from_solution(const selfconsistent::Solution& solution) {
  CachedSolve value;
  value.t_metal_k = solution.t_metal.value();
  value.delta_t_k = solution.delta_t.value();
  value.j_peak_A_m2 = solution.j_peak.value();
  value.j_rms_A_m2 = solution.j_rms.value();
  value.j_avg_A_m2 = solution.j_avg.value();
  value.residual = solution.diag.residual;
  value.iterations = solution.iterations;
  return value;
}

selfconsistent::Solution to_solution(const CachedSolve& value) {
  selfconsistent::Solution s;
  s.t_metal = units::Kelvin{value.t_metal_k};
  s.delta_t = units::CelsiusDelta{value.delta_t_k};
  s.j_peak = units::CurrentDensity{value.j_peak_A_m2};
  s.j_rms = units::CurrentDensity{value.j_rms_A_m2};
  s.j_avg = units::CurrentDensity{value.j_avg_A_m2};
  s.converged = true;
  s.iterations = value.iterations;
  // The synthesized canonical chain, exactly as batch.cpp writes it for a
  // clean lane (and therefore exactly what solve_one returns first-try).
  s.diag.kernel = kSolveKernel;
  s.diag.status = core::StatusCode::kOk;
  s.diag.iterations = value.iterations;
  s.diag.residual = value.residual;
  s.diag.chain.push_back(core::DiagEvent{});
  core::DiagEvent& ev = s.diag.chain.back();
  ev.kernel = kRootKernel;
  ev.iterations = value.iterations;
  ev.residual = value.residual;
  return s;
}

std::string encode_payload(const std::string& key, const CachedSolve& value) {
  std::string out;
  out.reserve(4 + key.size() + 6 * 8 + 4);
  put_u32_be(out, static_cast<std::uint32_t>(key.size()));
  out.append(key);
  put_double_be(out, value.t_metal_k);
  put_double_be(out, value.delta_t_k);
  put_double_be(out, value.j_peak_A_m2);
  put_double_be(out, value.j_rms_A_m2);
  put_double_be(out, value.j_avg_A_m2);
  put_double_be(out, value.residual);
  put_u32_be(out, static_cast<std::uint32_t>(value.iterations));
  return out;
}

bool decode_payload(const std::string& payload, std::string& key,
                    CachedSolve& value) {
  constexpr std::size_t kFixedTail = 6 * 8 + 4;
  if (payload.size() < 4 + kFixedTail) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(payload.data());
  const std::uint32_t key_len = get_u32_be(p);
  if (key_len > kMaxKeyBytes) return false;
  if (payload.size() != 4 + static_cast<std::size_t>(key_len) + kFixedTail)
    return false;
  key.assign(payload, 4, key_len);
  const unsigned char* q = p + 4 + key_len;
  value.t_metal_k = get_double_be(q);
  value.delta_t_k = get_double_be(q + 8);
  value.j_peak_A_m2 = get_double_be(q + 16);
  value.j_rms_A_m2 = get_double_be(q + 24);
  value.j_avg_A_m2 = get_double_be(q + 32);
  value.residual = get_double_be(q + 40);
  value.iterations = static_cast<int>(get_u32_be(q + 48));
  return true;
}

}  // namespace dsmt::cache
