#include "cache/response.h"

#include "core/status.h"

namespace dsmt::cache {

service::Response hit_response(const service::Request& request,
                               const service::LadderProblem& ladder,
                               const CachedSolve& hit) {
  service::Response resp;
  resp.id = request.id;
  resp.kind = request.kind;

  // Statement-for-statement the solved branch of Server::execute on a
  // clean first attempt; drift here IS a determinism bug and the
  // differential test in tests/test_cache.cpp pins it.
  const selfconsistent::Solution solution = to_solution(hit);
  ++resp.attempts;
  resp.diag.absorb(solution.diag, "service/attempt 1");
  resp.status = core::StatusCode::kOk;
  resp.degradation_level = service::DegradationLevel::kFull;
  resp.conservative = true;
  resp.t_metal_c = kelvin_to_celsius(hit.t_metal_k);
  resp.delta_t_c = hit.delta_t_k;
  resp.j_peak_MA_cm2 = to_MA_per_cm2(hit.j_peak_A_m2);
  resp.j_rms_MA_cm2 = to_MA_per_cm2(hit.j_rms_A_m2);
  resp.j_avg_MA_cm2 = to_MA_per_cm2(hit.j_avg_A_m2);
  if (request.kind == service::RequestKind::kDutyCyclePoint)
    resp.jpeak_em_only_MA_cm2 =
        to_MA_per_cm2(selfconsistent::jpeak_em_only(ladder.full).value());
  return resp;
}

}  // namespace dsmt::cache
