// Append-only checksummed segment file: the solve cache's durable form.
//
// A segment is a flat sequence of records, each a 36-byte header followed
// by an entry payload (cache/entry.h layout):
//
//   offset  size  field
//        0     4  magic "DSC1"
//        4     4  format version, u32 BE (kFormatVersion)
//        8     8  physics-schema stamp, u64 BE
//       16     4  payload length, u32 BE
//       20     8  payload FNV-1a, u64 BE
//       28     8  header FNV-1a over bytes [0, 28), u64 BE
//
// The schema stamp is the FNV-1a digest of a human-readable string naming
// every physics/tolerance decision baked into a cached number (kernel,
// solver tolerances, unit conventions). A binary whose stamp differs MUST
// NOT serve entries from the file — a cache of stale physics is worse than
// no cache — so recovery refuses the whole segment (renamed aside, never
// silently deleted) on the first stamp mismatch.
//
// Recovery walks records from offset 0 and classifies damage:
//   torn tail      fewer bytes than a header, or a payload running past
//                  EOF, or a header whose own checksum fails (a flip in a
//                  length field would otherwise mis-frame everything after
//                  it): the file is truncated at the last good record and
//                  appending resumes there.
//   corrupt entry  header intact but payload checksum or structure wrong:
//                  counted as quarantined, skipped, NEVER served; later
//                  records still load (the header framed the damage).
//   stale schema   stamp mismatch: whole file refused, renamed aside.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "cache/entry.h"

namespace dsmt::cache {

inline constexpr char kSegmentMagic[4] = {'D', 'S', 'C', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kRecordHeaderBytes = 36;

/// The physics-schema sentence the default stamp digests. Bump this string
/// whenever a change anywhere in the solve pipeline can alter cached
/// numbers (kernel swap, tolerance change, unit redefinition) — old caches
/// are then refused instead of served stale.
extern const char* const kPhysicsSchema;

/// FNV-1a digest of kPhysicsSchema.
std::uint64_t default_schema_stamp();

/// Frames one payload as a complete record (header + payload bytes).
std::string encode_record(const std::string& payload,
                          std::uint64_t schema_stamp);

/// What recovery found in one segment file.
struct SegmentLoadStats {
  std::uint64_t entries_loaded = 0;
  std::uint64_t corrupt_quarantined = 0;  ///< skipped, framed by a header
  std::uint64_t torn_truncated = 0;       ///< tail truncation events
  std::uint64_t bytes_truncated = 0;
  bool refused_stamp = false;  ///< whole file refused (schema mismatch)
};

/// Replays `path` record by record, calling `sink(key, value)` for every
/// intact entry (oldest first — the caller's last-writer-wins map makes
/// duplicates converge). Repairs the file in place per the policy above.
/// A missing file is an empty cache, not an error.
SegmentLoadStats load_segment(
    const std::string& path, std::uint64_t schema_stamp,
    const std::function<void(std::string, const CachedSolve&)>& sink);

}  // namespace dsmt::cache
