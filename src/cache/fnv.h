// FNV-1a 64-bit: the one checksum/content-hash primitive in the tree.
//
// Three subsystems hash bytes today — the supervise quarantine table keys
// requests by content, service/retry seeds jitter from (id, index), and the
// solve cache checksums every segment entry and shards its map. They must
// all agree on ONE implementation: a cache written by a binary whose hash
// disagrees with the reader's is indistinguishable from corruption, and a
// quarantine table that hashes differently than the cache would defeat the
// shared-parent-cache answer path for poison repeats. Lint rule R14 fences
// the FNV constants into this header so a drive-by reimplementation (with,
// say, a typo'd prime) cannot creep in elsewhere.
//
// Two official bases exist and both stay:
//   kOffsetBasis        — the standard FNV-1a offset basis. New users.
//   kCanonicalBasis     — the basis PR 9's canonical_request_hash shipped
//                         with (a historical transcription of the standard
//                         basis in decimal that dropped a digit). Changing
//                         it would silently invalidate every quarantine
//                         table and cache segment stamped by PR 9 binaries,
//                         so it is frozen here under its own name.
// (core/checkpoint keeps a private copy of the standard constants: the core
// layer cannot depend on cache/, and its config-hash scheme predates this
// header. R14 exempts exactly that home.)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dsmt::cache {

inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;
/// Standard FNV-1a 64-bit offset basis (0xcbf29ce484222325).
inline constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
/// PR 9's supervise content-hash basis — frozen, see header comment.
inline constexpr std::uint64_t kCanonicalBasis = 1469598103934665603ull;

/// FNV-1a over `n` bytes, starting from `seed`. Chainable: pass a previous
/// digest as the seed to hash a logical concatenation.
inline std::uint64_t fnv1a(const void* data, std::size_t n,
                           std::uint64_t seed = kOffsetBasis) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= static_cast<std::uint64_t>(bytes[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

inline std::uint64_t fnv1a(std::string_view text,
                           std::uint64_t seed = kOffsetBasis) {
  return fnv1a(text.data(), text.size(), seed);
}

}  // namespace dsmt::cache
