#include "cache/warm.h"

#include <string>

#include "report/json.h"
#include "selfconsistent/batch.h"

namespace dsmt::cache {

std::vector<service::Request> hot_lattice() {
  std::vector<service::Request> lattice;
  // The default-wire duty-cycle sweep, matching dsmt_loadgen's request
  // stream (duty_cycle = 0.05 + 0.01 * (index % 40)).
  for (int i = 0; i < 40; ++i) {
    service::Request r;
    r.duty_cycle = 0.05 + 0.01 * i;
    lattice.push_back(r);
  }
  // The 250 nm Cu table's levels at the paper's two bounding duty cycles.
  for (int level = 1; level <= 6; ++level) {
    for (const double duty : {0.1, 1.0}) {
      service::Request r;
      r.kind = service::RequestKind::kTableCell;
      r.technology = "NTRS-250nm-Cu";
      r.level = level;
      r.duty_cycle = duty;
      lattice.push_back(r);
    }
  }
  return lattice;
}

WarmReport warm_cache(SolveCache& cache,
                      const std::vector<service::Request>& requests) {
  WarmReport report;
  report.requested = requests.size();

  selfconsistent::BatchProblem batch;
  std::vector<std::string> keys;
  batch.reserve(requests.size());
  keys.reserve(requests.size());
  for (const service::Request& raw : requests) {
    try {
      // Round-trip through the wire codec TEXT first: the canonical key is
      // the request's JSON text, which renders doubles at reply precision,
      // so a locally built request (duty = 0.05 + 0.01*i, one ulp off the
      // text form) must be solved AS ITS TEXT FORM — exactly the bits a
      // socket or supervised-worker request parses to. The dump/parse pair
      // is what canonicalizes the doubles; handing the Json object straight
      // back keeps the original bits and would warm the right keys with
      // subtly wrong values (hits differing from cold wire solves in the
      // last residual digits).
      const service::Request request = service::request_from_json(
          report::Json::parse(service::request_to_json(raw).dump(-1)));
      const service::LadderProblem ladder = service::build_problem(request);
      batch.push_back(ladder.full);
      keys.push_back(canonical_key(request));
    } catch (const std::exception&) {
      // Malformed lattice point: skip, the ladder would refuse it too.
    }
  }
  if (batch.empty()) return report;

  const selfconsistent::BatchSolution solved =
      selfconsistent::solve_batch(batch);
  for (std::size_t lane = 0; lane < solved.size(); ++lane) {
    if (!solved.ok(lane)) continue;
    ++report.solved;
    const selfconsistent::Solution solution = solved.lane_solution(lane);
    if (!canonical_solve(solution)) continue;  // recovered: not cacheable
    cache.publish(keys[lane], from_solution(solution));
    ++report.inserted;
  }
  return report;
}

WarmReport warm_hot_lattice(SolveCache& cache) {
  return warm_cache(cache, hot_lattice());
}

}  // namespace dsmt::cache
