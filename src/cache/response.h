// Cache hit -> service Response, byte-identical to a cold solve.
//
// The determinism contract: a reply served from the cache must be
// indistinguishable — byte for byte, once serialized — from the reply a
// clean first-try cold solve produces. hit_response() therefore replays
// the cold path's exact statement sequence (service/server.cpp's solved
// branch) over the cached numbers: one attempt, the canonical diag chain
// absorbed under "service/attempt 1", the same unit conversions, the same
// EM-only recomputation for duty-cycle-point requests. Both the in-process
// Server and the supervise parent call this — one implementation, one set
// of bytes.
#pragma once

#include "cache/entry.h"
#include "service/request.h"

namespace dsmt::cache {

/// Builds the Response a clean cold solve of `request` would have
/// returned, from the cached numbers. `ladder` must be
/// service::build_problem(request) — the EM-only limit is recomputed from
/// it (closed-form, iteration-free) rather than widening the cache entry.
service::Response hit_response(const service::Request& request,
                               const service::LadderProblem& ladder,
                               const CachedSolve& hit);

}  // namespace dsmt::cache
