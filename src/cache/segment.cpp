#include "cache/segment.h"

#include <cstddef>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#include "cache/fnv.h"
#include "core/atomic_file.h"

namespace dsmt::cache {

namespace {

constexpr std::uint32_t kMaxPayloadBytes = 1u << 21;  ///< sanity, not policy

void put_u32_be(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>((v >> 24) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>(v & 0xff));
}

void put_u64_be(std::string& out, std::uint64_t v) {
  put_u32_be(out, static_cast<std::uint32_t>(v >> 32));
  put_u32_be(out, static_cast<std::uint32_t>(v & 0xffffffffull));
}

std::uint32_t get_u32_be(const unsigned char* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t get_u64_be(const unsigned char* p) {
  return (static_cast<std::uint64_t>(get_u32_be(p)) << 32) |
         static_cast<std::uint64_t>(get_u32_be(p + 4));
}

}  // namespace

const char* const kPhysicsSchema =
    "dsmt eq13/solve v1: quasi-2D ladder, brent(tol=machine) + "
    "expand/bisect recovery, SI doubles, canonical single-event diag";

std::uint64_t default_schema_stamp() { return fnv1a(kPhysicsSchema); }

std::string encode_record(const std::string& payload,
                          std::uint64_t schema_stamp) {
  std::string out;
  out.reserve(kRecordHeaderBytes + payload.size());
  out.append(kSegmentMagic, sizeof(kSegmentMagic));
  put_u32_be(out, kFormatVersion);
  put_u64_be(out, schema_stamp);
  put_u32_be(out, static_cast<std::uint32_t>(payload.size()));
  put_u64_be(out, fnv1a(payload));
  put_u64_be(out, fnv1a(out.data(), out.size()));
  out.append(payload);
  return out;
}

SegmentLoadStats load_segment(
    const std::string& path, std::uint64_t schema_stamp,
    const std::function<void(std::string, const CachedSolve&)>& sink) {
  SegmentLoadStats stats;

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) return stats;  // no file yet: an empty cache
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = std::move(buffer).str();
  }

  const unsigned char* base =
      reinterpret_cast<const unsigned char*>(bytes.data());
  std::size_t offset = 0;
  bool truncate_here = false;
  while (offset < bytes.size()) {
    const std::size_t remaining = bytes.size() - offset;
    if (remaining < kRecordHeaderBytes) {
      truncate_here = true;  // torn mid-header
      break;
    }
    const unsigned char* h = base + offset;
    // Header integrity first: a flipped bit in the length field would
    // otherwise mis-frame every record after this one.
    const std::uint64_t header_sum = get_u64_be(h + 28);
    if (fnv1a(h, 28) != header_sum ||
        std::string_view(reinterpret_cast<const char*>(h), 4) !=
            std::string_view(kSegmentMagic, 4) ||
        get_u32_be(h + 4) != kFormatVersion) {
      truncate_here = true;  // unframeable: cut the tail
      break;
    }
    if (get_u64_be(h + 8) != schema_stamp) {
      // Different physics revision wrote this file. Refuse all of it —
      // entries already sunk were stamped identically (one stamp per
      // writer), so a mismatch can only appear on the first record.
      stats.refused_stamp = true;
      const std::string aside = path + ".refused";
      std::remove(aside.c_str());
      std::rename(path.c_str(), aside.c_str());
      return stats;
    }
    const std::uint32_t payload_len = get_u32_be(h + 16);
    if (payload_len > kMaxPayloadBytes ||
        remaining < kRecordHeaderBytes + payload_len) {
      truncate_here = true;  // torn mid-payload
      break;
    }
    const char* payload_at =
        bytes.data() + offset + kRecordHeaderBytes;
    const std::string payload(payload_at, payload_len);
    std::string key;
    CachedSolve value;
    if (fnv1a(payload) != get_u64_be(h + 20) ||
        !decode_payload(payload, key, value)) {
      // Damage confined to this record: the intact header frames it, so
      // later records survive. Never served, always counted.
      ++stats.corrupt_quarantined;
    } else {
      sink(std::move(key), value);
      ++stats.entries_loaded;
    }
    offset += kRecordHeaderBytes + payload_len;
  }

  if (truncate_here && offset < bytes.size()) {
    ++stats.torn_truncated;
    stats.bytes_truncated = bytes.size() - offset;
    core::truncate_file_to(path, offset);
  }
  return stats;
}

}  // namespace dsmt::cache
