#include "cache/solve_cache.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "cache/fnv.h"
#include "core/run_context.h"

namespace dsmt::cache {

SolveCache::SolveCache(SolveCacheConfig config)
    : config_(std::move(config)),
      schema_stamp_(config_.schema_stamp != 0 ? config_.schema_stamp
                                              : default_schema_stamp()),
      per_shard_cap_(
          std::max<std::size_t>(1, config_.max_entries /
                                       std::max<std::size_t>(
                                           1, config_.shards))) {
  const std::size_t shard_count = std::max<std::size_t>(1, config_.shards);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<Shard>());

  if (config_.dir.empty()) return;
  const std::string path = config_.dir + "/solve.dsc";
  // Constructor runs in a single-threaded window (like WorkerPool's): the
  // replay and the stats snapshot need no locks, but install() is reused,
  // so take each shard's lock anyway to keep the annotations honest.
  load_ = load_segment(path, schema_stamp_,
                       [this](std::string key, const CachedSolve& value) {
                         Entry entry;
                         entry.payload = encode_payload(key, value);
                         entry.checksum = fnv1a(entry.payload);
                         Shard& shard = shard_for(key);
                         MutexLock lock(shard.mu);
                         install(shard, key, std::move(entry));
                       });
  corrupt_quarantined_.fetch_add(load_.corrupt_quarantined,
                                 std::memory_order_relaxed);
  // Replay reuses install(), which counts inserts; "inserts" means entries
  // PUBLISHED this process ("loaded" owns the replayed ones), so reset.
  inserts_.store(0, std::memory_order_relaxed);
  // Open for appending AFTER recovery truncated any torn tail, so new
  // records land at the repaired end.
  MutexLock lock(segment_mu_);
  log_ = std::make_unique<core::AppendLog>(path);
}

SolveCache::~SolveCache() = default;

SolveCache::Shard& SolveCache::shard_for(const std::string& key) {
  return *shards_[fnv1a(key) % shards_.size()];
}

bool SolveCache::install(Shard& shard, const std::string& key, Entry entry) {
  const std::size_t entry_bytes = entry.payload.size();
  auto [at, inserted] = shard.entries.try_emplace(key, std::move(entry));
  if (!inserted) return false;  // first writer wins; values are identical
  shard.order.push_back(key);
  entries_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(entry_bytes, std::memory_order_relaxed);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  while (shard.entries.size() > per_shard_cap_ &&
         shard.evict_head < shard.order.size()) {
    const std::string victim = shard.order[shard.evict_head++];
    const auto victim_it = shard.entries.find(victim);
    if (victim_it == shard.entries.end()) continue;  // already quarantined
    bytes_.fetch_sub(victim_it->second.payload.size(),
                     std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    shard.entries.erase(victim_it);
  }
  // Compact the FIFO ring once the dead prefix dominates it.
  if (shard.evict_head > 64 && shard.evict_head * 2 > shard.order.size()) {
    shard.order.erase(shard.order.begin(),
                      shard.order.begin() +
                          static_cast<std::ptrdiff_t>(shard.evict_head));
    shard.evict_head = 0;
  }
  return true;
}

bool SolveCache::verified_get(Shard& shard, const std::string& key,
                              CachedSolve& out) {
  const auto at = shard.entries.find(key);
  if (at == shard.entries.end()) return false;
  const Entry& entry = at->second;
  std::string decoded_key;
  CachedSolve value;
  if (fnv1a(entry.payload) == entry.checksum &&
      decode_payload(entry.payload, decoded_key, value) &&
      decoded_key == key) {
    out = value;
    return true;
  }
  // The entry lied — resident corruption or a decode the segment loader
  // missed. Quarantine: count, evict, and let the caller solve for real.
  bytes_.fetch_sub(entry.payload.size(), std::memory_order_relaxed);
  entries_.fetch_sub(1, std::memory_order_relaxed);
  corrupt_quarantined_.fetch_add(1, std::memory_order_relaxed);
  shard.entries.erase(at);
  return false;
}

bool SolveCache::lookup(const std::string& key, CachedSolve& out) {
  Shard& shard = shard_for(key);
  MutexLock lock(shard.mu);
  if (verified_get(shard, key, out)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

Acquire SolveCache::acquire(const std::string& key, CachedSolve& out) {
  Shard& shard = shard_for(key);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::nanoseconds(config_.wait_budget_ns);
  const auto park = std::chrono::milliseconds(
      config_.poll_interval_ms > 0 ? config_.poll_interval_ms : 10);
  bool parked = false;
  MutexLock lock(shard.mu);
  for (;;) {
    if (verified_get(shard, key, out)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (parked) coalesced_.fetch_add(1, std::memory_order_relaxed);
      return Acquire::kHit;
    }
    if (shard.flights.insert(key).second) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return Acquire::kLead;
    }
    // Another thread is already solving this key. Park deadline-aware:
    // an interruption (drain cancel, ambient deadline) or an exhausted
    // wait budget dissolves the wait into an independent solve — the
    // caller still gets an answer, just not a coalesced one.
    if (core::run_check() != core::StatusCode::kOk ||
        std::chrono::steady_clock::now() >= deadline) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return Acquire::kSolve;
    }
    parked = true;
    shard.published.wait_for(shard.mu, park);
  }
}

void SolveCache::publish(const std::string& key, const CachedSolve& value) {
  const std::string payload = encode_payload(key, value);
  Entry entry;
  entry.payload = payload;
  entry.checksum = fnv1a(payload);
  bool newly_inserted = false;
  {
    Shard& shard = shard_for(key);
    MutexLock lock(shard.mu);
    shard.flights.erase(key);
    newly_inserted = install(shard, key, std::move(entry));
    shard.published.notify_all();
  }
  if (!newly_inserted) return;  // already durable (or a duplicate racer)
  // Shard lock released before the level-1 segment lock: the fsync'd
  // append must never stall readers of the shard.
  MutexLock lock(segment_mu_);
  if (log_ != nullptr) log_->append(encode_record(payload, schema_stamp_));
}

void SolveCache::abandon(const std::string& key) {
  Shard& shard = shard_for(key);
  MutexLock lock(shard.mu);
  if (shard.flights.erase(key) > 0) shard.published.notify_all();
}

CacheStats SolveCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.corrupt_quarantined =
      corrupt_quarantined_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.loaded = load_.entries_loaded;
  s.torn_truncated = load_.torn_truncated;
  s.bytes_truncated = load_.bytes_truncated;
  s.refused_stamp = load_.refused_stamp;
  return s;
}

report::Json SolveCache::cache_json() const {
  using report::Json;
  const CacheStats s = stats();
  Json out = Json::object();
  out.set("hits", Json::integer(static_cast<long long>(s.hits)))
      .set("misses", Json::integer(static_cast<long long>(s.misses)))
      .set("coalesced", Json::integer(static_cast<long long>(s.coalesced)))
      .set("inserts", Json::integer(static_cast<long long>(s.inserts)))
      .set("evictions", Json::integer(static_cast<long long>(s.evictions)))
      .set("corrupt_quarantined",
           Json::integer(static_cast<long long>(s.corrupt_quarantined)))
      .set("entries", Json::integer(static_cast<long long>(s.entries)))
      .set("bytes", Json::integer(static_cast<long long>(s.bytes)))
      .set("loaded", Json::integer(static_cast<long long>(s.loaded)))
      .set("torn_truncated",
           Json::integer(static_cast<long long>(s.torn_truncated)))
      .set("refused_stamp", Json::boolean(s.refused_stamp))
      .set("durable", Json::boolean(!config_.dir.empty()));
  return out;
}

}  // namespace dsmt::cache
