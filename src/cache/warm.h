// Cache warming: pre-solve the hot lattice through the batched solver.
//
// The paper's design-rule workload concentrates on a small lattice —
// default-geometry wires swept over duty cycle plus the NTRS table cells —
// so `--warm-cache` solves that lattice once at startup (solve_batch: SoA,
// all lanes in lock step, bitwise-faithful to the scalar path) and
// publishes every canonical lane. Lanes that fail or need recovery are
// simply not cached; warming is best-effort and never blocks serving
// correctness, only latency.
#pragma once

#include <cstddef>
#include <vector>

#include "cache/solve_cache.h"
#include "service/request.h"

namespace dsmt::cache {

/// The requests production traffic repeats: the loadgen/default wire at
/// duty cycles 0.05..0.44 (step 0.01) and the 250 nm table's first levels.
std::vector<service::Request> hot_lattice();

struct WarmReport {
  std::size_t requested = 0;  ///< lattice points attempted
  std::size_t solved = 0;     ///< lanes that solved kOk
  std::size_t inserted = 0;   ///< canonical lanes published to the cache
};

/// Solves `requests` as one batch and publishes every canonical solve.
WarmReport warm_cache(SolveCache& cache,
                      const std::vector<service::Request>& requests);

/// warm_cache(cache, hot_lattice()).
WarmReport warm_hot_lattice(SolveCache& cache);

}  // namespace dsmt::cache
