// One cached Eq.-13 solve: canonical key, numeric payload, byte codec.
//
// The cache stores the raw solver outputs (SI doubles, bit-exact), not
// formatted reply bytes: replies echo the request id and every unit
// conversion the reply layer applies is reproduced on the hit path, so one
// cached solve serves any id while keeping replies byte-identical to a cold
// solve. Only CANONICAL solves are cacheable — a clean first-try success
// whose diag chain is the single synthesized "numeric/brent" event
// (selfconsistent/batch.cpp). Recovered or degraded solves carry history a
// fixed-width payload cannot round-trip, and caching them would make a
// warm reply differ from a clean cold one; they simply stay uncached.
//
// The wire payload is fixed-layout big-endian (the supervise protocol's
// convention): key length + key bytes + six IEEE-754 bit patterns + the
// iteration count. Doubles travel as u64 bit patterns, never through text,
// so a decode(encode(x)) round trip is the identity on every lane.
#pragma once

#include <cstdint>
#include <string>

#include "selfconsistent/solver.h"
#include "service/request.h"

namespace dsmt::cache {

/// The numeric outcome of one canonical solve, SI units throughout.
struct CachedSolve {
  double t_metal_k = 0.0;
  double delta_t_k = 0.0;
  double j_peak_A_m2 = 0.0;
  double j_rms_A_m2 = 0.0;
  double j_avg_A_m2 = 0.0;
  double residual = 0.0;  ///< final root-find residual (diag chain's)
  int iterations = 0;
};

/// Content-address of a request: the strict-JSON canonical form with the
/// client-chosen id cleared, so retries and distinct clients asking the
/// same physics share one entry. (The supervise quarantine hash keys the
/// id-bearing form — a quarantine is per-request, a cache line is
/// per-physics.)
std::string canonical_key(const service::Request& request);

/// True iff `solution` is a canonical clean solve: converged, kOk, and its
/// diag is exactly the synthesized single-event "numeric/brent" chain.
bool canonical_solve(const selfconsistent::Solution& solution);

/// Captures a canonical solve's numbers. Precondition: canonical_solve().
CachedSolve from_solution(const selfconsistent::Solution& solution);

/// Rebuilds the Solution a clean scalar solve would have returned,
/// including the synthesized canonical diag — field-for-field what
/// selfconsistent::solve_one leaves behind on a first-try success.
selfconsistent::Solution to_solution(const CachedSolve& value);

/// Serializes (key, value) into the segment payload layout.
std::string encode_payload(const std::string& key, const CachedSolve& value);

/// Parses a payload; false on any structural violation (short buffer,
/// trailing bytes, absurd key length).
bool decode_payload(const std::string& payload, std::string& key,
                    CachedSolve& value);

}  // namespace dsmt::cache
