// Built-in NTRS-97-style technology files for the two nodes studied in the
// paper (0.25 um and 0.1 um, Cu metallization with an AlCu variant).
//
// The paper's appendix (Table 8) is only partially legible in the available
// scan, so the stacks below are reconstructions guided by the NTRS'97
// interconnect tables and the constraints the paper's results imply:
// upper (global) levels are wide/thick (W, t ~ 1.5-2 um) and sit over a
// multi-micron cumulative dielectric stack — that is what makes the thermal
// clipping of j_peak in Tables 2-4 significant. EXPERIMENTS.md records the
// paper-vs-measured comparison cell by cell.
#pragma once

#include "tech/technology.h"

namespace dsmt::tech {

/// 0.25 um Cu technology, 6 metal levels, Vdd = 2.5 V, 625 MHz global clock.
Technology make_ntrs_250nm_cu();

/// Intermediate roadmap nodes for scaling studies (interpolated between the
/// two nodes the paper analyzes): 0.18 um (6 levels) and 0.13 um (7 levels).
Technology make_ntrs_180nm_cu();
Technology make_ntrs_130nm_cu();

/// 0.1 um Cu technology, 8 metal levels, Vdd = 1.2 V, 1 GHz global clock.
Technology make_ntrs_100nm_cu();

/// AlCu variants of the same stacks (paper Table 4).
Technology make_ntrs_250nm_alcu();
Technology make_ntrs_100nm_alcu();

/// Both Cu nodes, ascending feature size order {0.1 um, 0.25 um}.
std::vector<Technology> paper_technologies();

}  // namespace dsmt::tech
