// Programmatic technology scaling — generates hypothetical nodes between
// (or beyond) the built-in NTRS entries so scaling studies can sweep
// continuously. Follows generalized scaling with factor s < 1 for a shrink:
//
//   lateral & vertical geometry  x s        (W, pitch, t, ILD)
//   supply and threshold         x sqrt(s)  (between constant-field s and
//                                            constant-voltage 1)
//   device saturation current    x sqrt(s)  (I ~ W C_ox v_sat V)
//   gate capacitances            x s
//   driver resistance            x 1        (Vdd/Idsat both x sqrt(s))
//   clock period & edge rate     x s        (gate-delay-limited)
//
// The metallization keeps the same level count; adding levels at deeper
// nodes is a separate, deliberate choice (see the built-in nodes).
#pragma once

#include "tech/technology.h"

namespace dsmt::tech {

/// Returns `base` scaled by `factor` (0 < factor; < 1 shrinks), renamed.
/// factor [1].
Technology scale_technology(const Technology& base, double factor,
                            const std::string& name);

}  // namespace dsmt::tech
