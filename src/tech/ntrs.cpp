#include "tech/ntrs.h"

#include "numeric/constants.h"

namespace dsmt::tech {

using dsmt::um;

Technology make_ntrs_250nm_cu() {
  Technology t;
  t.name = "NTRS-250nm-Cu";
  t.feature_size = um(0.25);
  t.metal = materials::make_copper();
  t.ild = materials::make_oxide();
  // level, width, pitch, thickness, ild_below (all um).
  t.layers = {
      {1, um(0.30), um(0.60), um(0.48), um(0.80)},
      {2, um(0.40), um(0.80), um(0.65), um(0.70)},
      {3, um(0.40), um(0.80), um(0.65), um(0.70)},
      {4, um(0.70), um(1.40), um(1.00), um(0.80)},
      {5, um(1.60), um(3.20), um(1.60), um(1.20)},
      {6, um(2.00), um(4.00), um(2.00), um(1.50)},
  };
  t.device.vdd = 2.5;
  t.device.vt = 0.50;
  t.device.r0 = 5.3e3;       // effective min-driver resistance
  t.device.cg = 3.0e-15;     // min inverter gate cap
  t.device.cp = 3.0e-15;     // min inverter drain parasitic
  t.device.idsat_n = 3.0e-4; // 600 uA/um x 0.5 um min NMOS
  t.device.idsat_p = 1.4e-4;
  t.device.alpha = 1.30;
  t.device.vdsat0 = 1.00;
  t.device.clock_period = 1.6e-9;  // 625 MHz global clock
  t.device.rise_time = 1.0e-10;
  return t;
}

Technology make_ntrs_100nm_cu() {
  Technology t;
  t.name = "NTRS-100nm-Cu";
  t.feature_size = um(0.10);
  t.metal = materials::make_copper();
  t.ild = materials::make_oxide();
  t.layers = {
      {1, um(0.13), um(0.26), um(0.26), um(0.45)},
      {2, um(0.15), um(0.30), um(0.32), um(0.45)},
      {3, um(0.15), um(0.30), um(0.32), um(0.45)},
      {4, um(0.25), um(0.50), um(0.45), um(0.55)},
      {5, um(0.50), um(1.00), um(0.90), um(0.90)},
      {6, um(0.50), um(1.00), um(0.90), um(0.90)},
      {7, um(1.80), um(3.60), um(1.80), um(1.40)},
      {8, um(2.00), um(4.00), um(2.00), um(1.60)},
  };
  t.device.vdd = 1.2;
  t.device.vt = 0.30;
  t.device.r0 = 10.0e3;
  t.device.cg = 0.80e-15;
  t.device.cp = 0.80e-15;
  t.device.idsat_n = 9.0e-5;  // 900 uA/um x 0.1 um min NMOS
  t.device.idsat_p = 4.2e-5;
  t.device.alpha = 1.20;
  t.device.vdsat0 = 0.45;
  t.device.clock_period = 0.6e-9;  // ~1.7 GHz global clock (NTRS.97, 100 nm)
  t.device.rise_time = 5.0e-11;
  return t;
}

Technology make_ntrs_180nm_cu() {
  Technology t;
  t.name = "NTRS-180nm-Cu";
  t.feature_size = um(0.18);
  t.metal = materials::make_copper();
  t.ild = materials::make_oxide();
  t.layers = {
      {1, um(0.23), um(0.46), um(0.40), um(0.65)},
      {2, um(0.28), um(0.56), um(0.50), um(0.60)},
      {3, um(0.28), um(0.56), um(0.50), um(0.60)},
      {4, um(0.50), um(1.00), um(0.80), um(0.70)},
      {5, um(1.10), um(2.20), um(1.20), um(1.00)},
      {6, um(2.00), um(4.00), um(2.00), um(1.50)},
  };
  t.device.vdd = 1.8;
  t.device.vt = 0.42;
  t.device.r0 = 6.2e3;
  t.device.cg = 2.0e-15;
  t.device.cp = 2.0e-15;
  t.device.idsat_n = 2.1e-4;
  t.device.idsat_p = 1.0e-4;
  t.device.alpha = 1.27;
  t.device.vdsat0 = 0.80;
  t.device.clock_period = 1.2e-9;  // ~830 MHz global clock
  t.device.rise_time = 8.0e-11;
  return t;
}

Technology make_ntrs_130nm_cu() {
  Technology t;
  t.name = "NTRS-130nm-Cu";
  t.feature_size = um(0.13);
  t.metal = materials::make_copper();
  t.ild = materials::make_oxide();
  t.layers = {
      {1, um(0.17), um(0.34), um(0.32), um(0.55)},
      {2, um(0.20), um(0.40), um(0.40), um(0.50)},
      {3, um(0.20), um(0.40), um(0.40), um(0.50)},
      {4, um(0.35), um(0.70), um(0.60), um(0.60)},
      {5, um(0.70), um(1.40), um(1.00), um(0.90)},
      {6, um(1.40), um(2.80), um(1.60), um(1.20)},
      {7, um(2.00), um(4.00), um(2.00), um(1.50)},
  };
  t.device.vdd = 1.5;
  t.device.vt = 0.36;
  t.device.r0 = 8.0e3;
  t.device.cg = 1.3e-15;
  t.device.cp = 1.3e-15;
  t.device.idsat_n = 1.5e-4;
  t.device.idsat_p = 7.0e-5;
  t.device.alpha = 1.24;
  t.device.vdsat0 = 0.60;
  t.device.clock_period = 0.85e-9;  // ~1.2 GHz global clock
  t.device.rise_time = 7.0e-11;
  return t;
}

namespace {
Technology with_alcu(Technology t, const char* name) {
  t.metal = materials::make_alcu();
  t.name = name;
  return t;
}
}  // namespace

Technology make_ntrs_250nm_alcu() {
  return with_alcu(make_ntrs_250nm_cu(), "NTRS-250nm-AlCu");
}

Technology make_ntrs_100nm_alcu() {
  return with_alcu(make_ntrs_100nm_cu(), "NTRS-100nm-AlCu");
}

std::vector<Technology> paper_technologies() {
  return {make_ntrs_100nm_cu(), make_ntrs_250nm_cu()};
}

}  // namespace dsmt::tech
