// A technology node: metallization stack + interconnect metal + device
// parameters for repeater/driver analysis.
#pragma once

#include <string>
#include <vector>

#include "materials/dielectric.h"
#include "materials/metal.h"
#include "tech/layer_stack.h"

namespace dsmt::tech {

/// Transistor-level parameters of a minimum-sized inverter, in the form the
/// repeater-optimization model (paper Eqs. 16-17) consumes, plus the
/// alpha-power-law data the transient simulator needs.
struct DeviceParameters {
  double vdd = 2.5;           ///< supply [V]
  double vt = 0.5;            ///< threshold magnitude [V] (NMOS == |PMOS|)
  double r0 = 5.0e3;          ///< effective min-driver resistance r_o [Ohm]
  double cg = 3.0e-15;        ///< min-inverter input capacitance c_g [F]
  double cp = 3.0e-15;        ///< min-inverter output parasitic c_p [F]
  double idsat_n = 3.0e-4;    ///< NMOS saturation current of min device [A]
  double idsat_p = 1.4e-4;    ///< PMOS saturation current of min device [A]
  double alpha = 1.3;         ///< alpha-power velocity-saturation exponent
  double vdsat0 = 1.0;        ///< saturation drain voltage at Vgs = Vdd [V]
  double clock_period = 2e-9; ///< global clock period [s]
  double rise_time = 1e-10;   ///< input edge rate used in simulations [s]
};

/// A full technology description.
struct Technology {
  std::string name;
  double feature_size = 0.25e-6;  ///< drawn minimum feature [m]
  materials::Metal metal;         ///< interconnect metal
  materials::Dielectric ild;      ///< inter-level dielectric (oxide here)
  std::vector<MetalLayer> layers; ///< M1..Mn, ascending
  DeviceParameters device;

  int num_levels() const { return static_cast<int>(layers.size()); }

  /// The layer record for a 1-based level; throws std::out_of_range.
  const MetalLayer& layer(int level) const;

  /// Worst-case dielectric path from `level` down to the substrate with the
  /// given intra-level gap-fill dielectric (paper Eq. 15 stack).
  DielectricStack stack_below(int level,
                              const materials::Dielectric& gap_fill) const;

  /// Wire resistance per unit length [Ohm/m] at width `w` and temperature T.
  double wire_resistance_per_m(int level, double width_m,
                               double temperature_k) const;

  /// Top (highest) metal level index.
  int top_level() const { return layers.empty() ? 0 : layers.back().level; }
};

}  // namespace dsmt::tech
