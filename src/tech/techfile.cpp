#include "tech/techfile.h"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/atomic_file.h"
#include "numeric/constants.h"

namespace dsmt::tech {

namespace {
[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("techfile:" + std::to_string(line) + ": " + msg);
}
}  // namespace

std::string to_techfile(const Technology& t) {
  std::ostringstream os;
  os.precision(12);
  os << "# dsmt technology file\n";
  os << "tech " << t.name << "\n";
  os << "feature_um " << dsmt::to_um(t.feature_size) << "\n";
  os << "metal " << t.metal.name << "\n";
  os << "ild " << t.ild.name << "\n";
  const auto& d = t.device;
  os << "device vdd " << d.vdd << " vt " << d.vt << " r0 " << d.r0 << " cg "
     << d.cg << " cp " << d.cp << " idsat_n " << d.idsat_n << " idsat_p "
     << d.idsat_p << " alpha " << d.alpha << " vdsat0 " << d.vdsat0
     << " clock " << d.clock_period << " trise " << d.rise_time << "\n";
  for (const auto& l : t.layers) {
    os << "layer " << l.level << " w_um " << dsmt::to_um(l.width)
       << " pitch_um " << dsmt::to_um(l.pitch) << " t_um "
       << dsmt::to_um(l.thickness) << " ild_um " << dsmt::to_um(l.ild_below)
       << "\n";
  }
  os << "end\n";
  return os.str();
}

Technology parse_techfile(const std::string& text) {
  Technology t;
  t.layers.clear();
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  bool saw_tech = false, saw_end = false;
  std::set<std::string> seen_directives;
  // Single-shot directives: a second occurrence would silently overwrite
  // the first, so reject it with the duplicate's line number.
  auto claim = [&](const std::string& key) {
    if (!seen_directives.insert(key).second)
      fail(lineno, "duplicate '" + key + "' directive");
  };

  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank

    if (key == "tech") {
      claim(key);
      if (!(ls >> t.name)) fail(lineno, "tech: missing name");
      saw_tech = true;
    } else if (key == "feature_um") {
      claim(key);
      double f;
      if (!(ls >> f) || !std::isfinite(f) || f <= 0.0)
        fail(lineno, "feature_um: bad value");
      t.feature_size = dsmt::um(f);
    } else if (key == "metal") {
      claim(key);
      std::string m;
      if (!(ls >> m)) fail(lineno, "metal: missing name");
      try {
        t.metal = materials::metal_by_name(m);
      } catch (const std::out_of_range&) {
        fail(lineno, "metal: unknown '" + m + "'");
      }
    } else if (key == "ild") {
      claim(key);
      std::string d;
      if (!(ls >> d)) fail(lineno, "ild: missing name");
      try {
        t.ild = materials::dielectric_by_name(d);
      } catch (const std::out_of_range&) {
        fail(lineno, "ild: unknown '" + d + "'");
      }
    } else if (key == "device") {
      claim(key);
      std::string k;
      double v;
      std::set<std::string> seen_keys;
      while (ls >> k) {
        if (!seen_keys.insert(k).second)
          fail(lineno, "device: duplicate key " + k);
        if (!(ls >> v)) fail(lineno, "device: missing value for " + k);
        if (!std::isfinite(v))
          fail(lineno, "device: non-finite value for " + k);
        if (k == "vdd") t.device.vdd = v;
        else if (k == "vt") t.device.vt = v;
        else if (k == "r0") t.device.r0 = v;
        else if (k == "cg") t.device.cg = v;
        else if (k == "cp") t.device.cp = v;
        else if (k == "idsat_n") t.device.idsat_n = v;
        else if (k == "idsat_p") t.device.idsat_p = v;
        else if (k == "alpha") t.device.alpha = v;
        else if (k == "vdsat0") t.device.vdsat0 = v;
        else if (k == "clock") t.device.clock_period = v;
        else if (k == "trise") t.device.rise_time = v;
        else fail(lineno, "device: unknown key " + k);
      }
    } else if (key == "layer") {
      MetalLayer l;
      std::string k;
      if (!(ls >> l.level)) fail(lineno, "layer: missing level");
      double v;
      std::set<std::string> seen_keys;
      while (ls >> k) {
        if (!seen_keys.insert(k).second)
          fail(lineno, "layer: duplicate key " + k);
        if (!(ls >> v)) fail(lineno, "layer: missing value for " + k);
        if (!std::isfinite(v))
          fail(lineno, "layer: non-finite value for " + k);
        if (k == "w_um") l.width = dsmt::um(v);
        else if (k == "pitch_um") l.pitch = dsmt::um(v);
        else if (k == "t_um") l.thickness = dsmt::um(v);
        else if (k == "ild_um") l.ild_below = dsmt::um(v);
        else fail(lineno, "layer: unknown key " + k);
      }
      if (l.width <= 0.0 || l.thickness <= 0.0 || l.pitch < l.width)
        fail(lineno, "layer: inconsistent geometry");
      if (!t.layers.empty() && l.level <= t.layers.back().level)
        fail(lineno, "layer: levels must be ascending");
      t.layers.push_back(l);
    } else if (key == "end") {
      saw_end = true;
      break;
    } else {
      fail(lineno, "unknown directive '" + key + "'");
    }
  }
  if (!saw_tech) fail(lineno, "missing 'tech' directive");
  if (!saw_end) fail(lineno, "missing 'end' directive");
  if (t.layers.empty()) fail(lineno, "no layers defined");
  return t;
}

void save_techfile(const Technology& t, const std::string& path) {
  core::atomic_write_file(path, to_techfile(t));
}

Technology load_techfile(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_techfile: cannot open " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_techfile(buf.str());
}

}  // namespace dsmt::tech
