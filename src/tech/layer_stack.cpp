#include "tech/layer_stack.h"

#include <stdexcept>

namespace dsmt::tech {

double DielectricStack::total_thickness() const {
  double b = 0.0;
  for (const auto& s : slabs) b += s.thickness;
  return b;
}

double DielectricStack::series_resistance_term() const {
  double acc = 0.0;
  for (const auto& s : slabs) {
    if (s.k_thermal <= 0.0)
      throw std::domain_error("DielectricStack: non-positive conductivity");
    acc += s.thickness / s.k_thermal;
  }
  return acc;
}

double DielectricStack::effective_conductivity() const {
  const double term = series_resistance_term();
  if (term <= 0.0)
    throw std::domain_error("DielectricStack: empty or degenerate stack");
  return total_thickness() / term;
}

DielectricStack stack_below(const std::vector<MetalLayer>& layers, int level,
                            const materials::Dielectric& ild,
                            const materials::Dielectric& gap_fill) {
  const MetalLayer* target = nullptr;
  for (const auto& l : layers)
    if (l.level == level) target = &l;
  if (!target)
    throw std::out_of_range("stack_below: no such metal level " +
                            std::to_string(level));

  DielectricStack stack;
  for (const auto& l : layers) {
    if (l.level > level) break;
    // ILD slab below this level (PMD for M1).
    if (l.ild_below > 0.0)
      stack.slabs.push_back({l.ild_below, ild.k_thermal, false});
    // Lower metal levels appear as intra-level gap-fill slabs.
    if (l.level < level && l.thickness > 0.0)
      stack.slabs.push_back({l.thickness, gap_fill.k_thermal, true});
  }
  return stack;
}

}  // namespace dsmt::tech
