// Metallization-stack geometry: per-level wire dimensions and the dielectric
// slab sequence separating a level from the silicon substrate.
//
// The self-consistent analysis needs, per metal level m:
//   - wire width W_m, thickness t_m (heating volume),
//   - the *underlying* thermal path: alternating inter-level dielectric (ILD,
//     always oxide in the processes studied) and intra-level gap-fill slabs
//     (oxide or low-k, thickness of each lower metal level). In the worst
//     case the line runs over spaces, so lower metal levels count as
//     gap-fill dielectric rather than metal (paper Eq. 15 generalization).
#pragma once

#include <string>
#include <vector>

#include "materials/dielectric.h"

namespace dsmt::tech {

/// Geometry of one metal level. All lengths in metres.
struct MetalLayer {
  int level = 1;          ///< 1-based level index (M1 = 1)
  double width = 0.0;     ///< default (design-rule) wire width W_m
  double pitch = 0.0;     ///< wire pitch (width + spacing)
  double thickness = 0.0; ///< metal film thickness t_m
  double ild_below = 0.0; ///< inter-level dielectric thickness directly below

  double spacing() const { return pitch - width; }
  /// Wire aspect ratio t/W.
  double aspect_ratio() const { return thickness / width; }
};

/// One slab in the vertical thermal path between a wire and the substrate.
struct DielectricSlab {
  double thickness = 0.0;       ///< [m]
  double k_thermal = 1.15;      ///< [W/(m*K)]
  bool is_gap_fill = false;     ///< true if this slab is intra-level gap-fill
};

/// The dielectric path below a given level.
struct DielectricStack {
  std::vector<DielectricSlab> slabs;

  /// Total thickness b = sum of slab thicknesses [m].
  double total_thickness() const;
  /// Thickness-weighted series term sum(t_i / K_i) [m^2*K/W]; dividing by
  /// W_eff gives the thermal resistance per unit length (paper Eq. 15).
  double series_resistance_term() const;
  /// Effective (series) thermal conductivity b / sum(t_i/K_i).
  double effective_conductivity() const;
};

/// Builds the worst-case dielectric path below `level` for a stack whose
/// inter-level dielectric is `ild` and whose intra-level gap-fill material is
/// `gap_fill`. Lower metal levels contribute gap-fill slabs of their metal
/// thickness (line-over-space worst case). Throws std::out_of_range if
/// `level` is not in `layers`.
DielectricStack stack_below(const std::vector<MetalLayer>& layers, int level,
                            const materials::Dielectric& ild,
                            const materials::Dielectric& gap_fill);

}  // namespace dsmt::tech
