#include "tech/via.h"

#include <cmath>
#include <stdexcept>
#include "core/units.h"

namespace dsmt::tech {

namespace {
void check(const ViaSpec& via) {
  if (via.size <= 0.0 || via.height <= 0.0 || via.count < 1)
    throw std::invalid_argument("ViaSpec: non-positive geometry");
}
}  // namespace

double via_resistance(const ViaSpec& via, double temperature_k) {
  check(via);
  const double area = via.size * via.size * via.count;
  return via.fill.resistivity(temperature_k) * via.height / area;
}

double via_current_density(const ViaSpec& via, double current) {
  check(via);
  return std::abs(current) / (via.size * via.size * via.count);
}

int cuts_for_current(const ViaSpec& via, double current, double j_limit) {
  check(via);
  if (j_limit <= 0.0)
    throw std::invalid_argument("cuts_for_current: j_limit <= 0");
  const double per_cut = j_limit * via.size * via.size;
  return std::max(1, static_cast<int>(std::ceil(std::abs(current) / per_cut)));
}

double via_thermal_resistance(const ViaSpec& via) {
  check(via);
  const double area = via.size * via.size * via.count;
  return via.height / (via.fill.k_thermal * area);
}

double via_end_temperature(const ViaSpec& via, double q_end, double t_below) {
  return t_below + q_end * via_thermal_resistance(via);
}

ViaStack via_stack_to_substrate(const Technology& technology, int level,
                                int cuts_per_level) {
  if (cuts_per_level < 1)
    throw std::invalid_argument("via_stack_to_substrate: cuts < 1");
  ViaStack stack;
  for (int l = level; l >= 1; --l) {
    const auto& layer = technology.layer(l);
    ViaSpec via;
    // Landing-pad-limited cut: the smaller of this layer's width and the
    // layer below (or the contact size for M1).
    const double lower_w =
        l > 1 ? technology.layer(l - 1).width : technology.feature_size;
    via.size = std::min(layer.width, lower_w);
    via.height = layer.ild_below;
    via.count = cuts_per_level;
    stack.resistance += via_resistance(via, kTrefK);
    stack.thermal_resistance += via_thermal_resistance(via);
    ++stack.levels_crossed;
  }
  return stack;
}

}  // namespace dsmt::tech
