#include "tech/technology.h"

#include <stdexcept>

namespace dsmt::tech {

const MetalLayer& Technology::layer(int level) const {
  for (const auto& l : layers)
    if (l.level == level) return l;
  throw std::out_of_range("Technology::layer: no level " +
                          std::to_string(level) + " in " + name);
}

DielectricStack Technology::stack_below(
    int level, const materials::Dielectric& gap_fill) const {
  return tech::stack_below(layers, level, ild, gap_fill);
}

double Technology::wire_resistance_per_m(int level, double width_m,
                                         double temperature_k) const {
  const MetalLayer& l = layer(level);
  if (width_m <= 0.0)
    throw std::invalid_argument("wire_resistance_per_m: width <= 0");
  return metal.resistivity(temperature_k) / (width_m * l.thickness);
}

}  // namespace dsmt::tech
