#include "tech/scaling.h"

#include <cmath>
#include <stdexcept>

namespace dsmt::tech {

Technology scale_technology(const Technology& base, double factor,
                            const std::string& name) {
  if (factor <= 0.0)
    throw std::invalid_argument("scale_technology: factor <= 0");
  Technology t = base;
  t.name = name;
  t.feature_size *= factor;
  for (auto& l : t.layers) {
    l.width *= factor;
    l.pitch *= factor;
    l.thickness *= factor;
    l.ild_below *= factor;
  }
  const double sv = std::sqrt(factor);
  t.device.vdd *= sv;
  t.device.vt *= sv;
  t.device.vdsat0 *= sv;
  t.device.idsat_n *= sv;
  t.device.idsat_p *= sv;
  t.device.cg *= factor;
  t.device.cp *= factor;
  // r0 ~ vdd / idsat: both scale by sqrt(s), so r0 is unchanged.
  t.device.clock_period *= factor;
  t.device.rise_time *= factor;
  return t;
}

}  // namespace dsmt::tech
