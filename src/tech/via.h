// Via stacks: electrical resistance, current limits, and the thermal
// anchoring they provide to line ends.
//
// The paper's "thermally short" discussion rests on vias acting as heat
// sinks: a line ending in a via stack to lower metal (and eventually the
// substrate) has its end temperature pinned well below the mid-line
// temperature. Vias are also EM bottlenecks — current crowds into a much
// smaller cross-section than the line's.
#pragma once

#include "materials/metal.h"
#include "tech/technology.h"

namespace dsmt::tech {

/// A single inter-level via (or a bundle of identical parallel cuts).
struct ViaSpec {
  double size = 0.25e-6;     ///< square cut side [m]
  double height = 0.7e-6;    ///< inter-level dielectric height [m]
  int count = 1;             ///< parallel cuts in the bundle
  materials::Metal fill = materials::make_tungsten();
};

/// Electrical resistance of the bundle at temperature T [Ohm].
double via_resistance(const ViaSpec& via, double temperature_k);

/// Current density inside the cuts for a delivered current [A/m^2].
double via_current_density(const ViaSpec& via, double current);

/// Cuts needed so the via current density stays at or below `j_limit` for
/// the given current (ceil).
int cuts_for_current(const ViaSpec& via, double current, double j_limit);

/// Thermal resistance of the bundle (conduction through the fill) [K/W].
double via_thermal_resistance(const ViaSpec& via);

/// End-clamp temperature of a line terminated by a via stack carrying heat
/// `q_end` [W] into a node at `t_below` [K]: T_end = t_below + q * R_th.
double via_end_temperature(const ViaSpec& via, double q_end, double t_below);

/// A full stack of vias from `level` down to level 1 for a technology,
/// sized to the default via of each crossing (size = width of the lower
/// layer, height = ild_below of the upper). Returns total electrical and
/// thermal resistance of the chain.
struct ViaStack {
  double resistance = 0.0;          ///< [Ohm]
  double thermal_resistance = 0.0;  ///< [K/W]
  int levels_crossed = 0;
};
ViaStack via_stack_to_substrate(const Technology& technology, int level,
                                int cuts_per_level = 1);

}  // namespace dsmt::tech
