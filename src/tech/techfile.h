// Plain-text technology-file serialization.
//
// Format (line-oriented, '#' comments, case-sensitive keys):
//
//   tech <name>
//   feature_um <f>
//   metal <cu|alcu|al|w>
//   ild <oxide|hsq|polyimide|fsg|aerogel|air>
//   device vdd <v> vt <v> r0 <ohm> cg <F> cp <F> idsat_n <A> idsat_p <A>
//          ... alpha <a> clock <s> trise <s>   (single line in the file)
//   layer <level> w_um <w> pitch_um <p> t_um <t> ild_um <b>
//   end
//
// All `layer` lines must appear in ascending level order.
#pragma once

#include <iosfwd>
#include <string>

#include "tech/technology.h"

namespace dsmt::tech {

/// Serializes a technology to the techfile format.
std::string to_techfile(const Technology& t);

/// Parses a techfile. Throws std::runtime_error with a line number on
/// malformed input.
Technology parse_techfile(const std::string& text);

/// Convenience wrappers around file I/O.
void save_techfile(const Technology& t, const std::string& path);
Technology load_techfile(const std::string& path);

}  // namespace dsmt::tech
