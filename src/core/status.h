// Unified solver failure taxonomy and diagnostics.
//
// Every iterative kernel in the library (Brent/bisection/Newton root finds,
// conjugate gradients, Picard loops, the electrothermal fixed point) reports
// its outcome through this vocabulary: a StatusCode classifying the failure
// mode and a SolverDiag record accumulating the attempt/recovery chain.
// Public entry points either return a diagnosed result (possibly after a
// recovery stage) or throw dsmt::SolveError carrying the full chain — an
// unconverged number must never escape silently.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace dsmt::core {

/// Failure taxonomy shared by every iterative kernel.
enum class StatusCode {
  kOk = 0,          ///< converged within tolerance
  kInvalidInput,    ///< malformed problem (NaN spec, empty system, ...)
  kNoBracket,       ///< root finder could not find a sign change
  kMaxIterations,   ///< iteration budget exhausted before tolerance
  kNonFinite,       ///< NaN/Inf appeared in the iteration
  kSingularSystem,  ///< linear operator is singular / derivative vanished
  kDeadlineExceeded,  ///< the RunContext monotonic deadline passed mid-solve
  kCancelled,         ///< cooperative cancellation was requested mid-solve
  kRejectedOverload,  ///< request shed at admission: queue above high water
  kBreakerOpen,       ///< kernel skipped: its circuit breaker is open
  kWorkerCrashed,     ///< isolated worker process died mid-request (signal)
};

/// Short stable name for a status code ("ok", "no-bracket", ...).
const char* status_name(StatusCode code);

/// True for the run-interruption outcomes (deadline / cancellation). An
/// interrupted kernel is not broken: recovery wrappers must return it as-is
/// instead of burning the remaining budget on retries that cannot help.
constexpr bool is_interruption(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled;
}

/// One step in a solve: the primary attempt, a recovery stage, or a context
/// frame added while the failure propagated outward.
struct DiagEvent {
  std::string kernel;  ///< e.g. "numeric/brent", "numeric/cg"
  StatusCode status = StatusCode::kOk;
  int iterations = 0;
  double residual = 0.0;  ///< final residual in the kernel's own norm [1]
  std::string note;       ///< context ("retry on expanded bracket", ...)
};

/// Sequence of DiagEvent with inline storage for the first event. A clean
/// solve records exactly one, so the common case touches no heap; recovery
/// chains (retries, fallbacks, context frames) spill into a vector. Exposes
/// the subset of std::vector the diag consumers use (iteration, size,
/// indexing, front/back) plus push_back/prepend/append for the recorders.
class DiagChain {
 public:
  using value_type = DiagEvent;
  using iterator = DiagEvent*;
  using const_iterator = const DiagEvent*;

  DiagChain() = default;
  DiagChain(const DiagChain&) = default;
  DiagChain& operator=(const DiagChain&) = default;
  // Moves must zero the source size: the source's spill vector is emptied
  // by the member move, and a stale size would point its begin()/end()
  // past the inline buffer.
  DiagChain(DiagChain&& other) noexcept
      : inline_(std::move(other.inline_)),
        spill_(std::move(other.spill_)),
        size_(other.size_) {
    other.size_ = 0;
  }
  DiagChain& operator=(DiagChain&& other) noexcept {
    if (this != &other) {
      inline_ = std::move(other.inline_);
      spill_ = std::move(other.spill_);
      size_ = other.size_;
      other.size_ = 0;
    }
    return *this;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }
  DiagEvent& operator[](std::size_t i) { return data()[i]; }
  const DiagEvent& operator[](std::size_t i) const { return data()[i]; }
  DiagEvent& front() { return data()[0]; }
  const DiagEvent& front() const { return data()[0]; }
  DiagEvent& back() { return data()[size_ - 1]; }
  const DiagEvent& back() const { return data()[size_ - 1]; }

  void push_back(DiagEvent ev);
  /// Inserts at the front (context frames are outermost-first).
  void prepend(DiagEvent ev);
  /// Appends a copy of every event in `tail`, oldest first.
  void append(const DiagChain& tail);

 private:
  static constexpr std::size_t kInline = 1;
  // Invariant: events live in inline_[0..size_) while size_ <= kInline;
  // once size_ exceeds kInline, all of them live in spill_.
  DiagEvent* data() {
    return size_ > kInline ? spill_.data() : inline_.data();
  }
  const DiagEvent* data() const {
    return size_ > kInline ? spill_.data() : inline_.data();
  }

  std::array<DiagEvent, kInline> inline_{};
  std::vector<DiagEvent> spill_;
  std::uint32_t size_ = 0;
};

/// Diagnostic chain for one logical solve. The summary fields mirror the
/// most recent event; `chain` keeps every attempt in order, so a recovered
/// solve shows the failed first attempt followed by the stage that saved it.
struct SolverDiag {
  std::string kernel;  ///< outermost kernel ("eq13/solve", ...)
  StatusCode status = StatusCode::kOk;
  int iterations = 0;      ///< total across all attempts
  double residual = 0.0;   ///< final residual in the last kernel's norm [1]
  bool recovered = false;  ///< a fallback stage was needed and succeeded
  DiagChain chain;         ///< attempts and recoveries, oldest first

  bool ok() const { return status == StatusCode::kOk; }

  /// Appends an event and folds it into the summary fields. A kOk event
  /// recorded after a failed one marks the solve as recovered.
  /// residual_value [1]: final residual in the kernel's own norm.
  void record(std::string kernel_name, StatusCode event_status,
              int iterations_used, double residual_value,
              std::string note = {});

  /// Prepends a context frame (outermost caller first) to the chain.
  void add_context(std::string context);

  /// Merges an inner solve's chain under a context label, adopting its
  /// status/residual as the current outcome.
  void absorb(const SolverDiag& inner, std::string context);

  /// One-line summary plus the chain, for exception messages and logs.
  std::string to_string() const;
};

}  // namespace dsmt::core

namespace dsmt {

/// Thrown when a solve fails after its recovery chain is exhausted. Derives
/// std::runtime_error so legacy catch sites keep working; new call sites
/// catch SolveError and inspect diag() for the full attempt chain.
class SolveError : public std::runtime_error {
 public:
  SolveError(const std::string& what_prefix, core::SolverDiag diagnostics);

  const core::SolverDiag& diag() const { return diag_; }
  core::StatusCode status() const { return diag_.status; }

  /// Copy with an extra outer context frame, for rethrow sites that want
  /// to tag the failure with where it surfaced ("core/engine.check_layer").
  SolveError with_context(const std::string& context) const;

 private:
  core::SolverDiag diag_;
};

}  // namespace dsmt
