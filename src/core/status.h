// Unified solver failure taxonomy and diagnostics.
//
// Every iterative kernel in the library (Brent/bisection/Newton root finds,
// conjugate gradients, Picard loops, the electrothermal fixed point) reports
// its outcome through this vocabulary: a StatusCode classifying the failure
// mode and a SolverDiag record accumulating the attempt/recovery chain.
// Public entry points either return a diagnosed result (possibly after a
// recovery stage) or throw dsmt::SolveError carrying the full chain — an
// unconverged number must never escape silently.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace dsmt::core {

/// Failure taxonomy shared by every iterative kernel.
enum class StatusCode {
  kOk = 0,          ///< converged within tolerance
  kInvalidInput,    ///< malformed problem (NaN spec, empty system, ...)
  kNoBracket,       ///< root finder could not find a sign change
  kMaxIterations,   ///< iteration budget exhausted before tolerance
  kNonFinite,       ///< NaN/Inf appeared in the iteration
  kSingularSystem,  ///< linear operator is singular / derivative vanished
  kDeadlineExceeded,  ///< the RunContext monotonic deadline passed mid-solve
  kCancelled,         ///< cooperative cancellation was requested mid-solve
  kRejectedOverload,  ///< request shed at admission: queue above high water
  kBreakerOpen,       ///< kernel skipped: its circuit breaker is open
};

/// Short stable name for a status code ("ok", "no-bracket", ...).
const char* status_name(StatusCode code);

/// True for the run-interruption outcomes (deadline / cancellation). An
/// interrupted kernel is not broken: recovery wrappers must return it as-is
/// instead of burning the remaining budget on retries that cannot help.
constexpr bool is_interruption(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled;
}

/// One step in a solve: the primary attempt, a recovery stage, or a context
/// frame added while the failure propagated outward.
struct DiagEvent {
  std::string kernel;  ///< e.g. "numeric/brent", "numeric/cg"
  StatusCode status = StatusCode::kOk;
  int iterations = 0;
  double residual = 0.0;  ///< final residual in the kernel's own norm [1]
  std::string note;       ///< context ("retry on expanded bracket", ...)
};

/// Diagnostic chain for one logical solve. The summary fields mirror the
/// most recent event; `chain` keeps every attempt in order, so a recovered
/// solve shows the failed first attempt followed by the stage that saved it.
struct SolverDiag {
  std::string kernel;  ///< outermost kernel ("selfconsistent/solve", ...)
  StatusCode status = StatusCode::kOk;
  int iterations = 0;      ///< total across all attempts
  double residual = 0.0;   ///< final residual in the last kernel's norm [1]
  bool recovered = false;  ///< a fallback stage was needed and succeeded
  std::vector<DiagEvent> chain;  ///< attempts and recoveries, oldest first

  bool ok() const { return status == StatusCode::kOk; }

  /// Appends an event and folds it into the summary fields. A kOk event
  /// recorded after a failed one marks the solve as recovered.
  /// residual_value [1]: final residual in the kernel's own norm.
  void record(std::string kernel_name, StatusCode event_status,
              int iterations_used, double residual_value,
              std::string note = {});

  /// Prepends a context frame (outermost caller first) to the chain.
  void add_context(std::string context);

  /// Merges an inner solve's chain under a context label, adopting its
  /// status/residual as the current outcome.
  void absorb(const SolverDiag& inner, std::string context);

  /// One-line summary plus the chain, for exception messages and logs.
  std::string to_string() const;
};

}  // namespace dsmt::core

namespace dsmt {

/// Thrown when a solve fails after its recovery chain is exhausted. Derives
/// std::runtime_error so legacy catch sites keep working; new call sites
/// catch SolveError and inspect diag() for the full attempt chain.
class SolveError : public std::runtime_error {
 public:
  SolveError(const std::string& what_prefix, core::SolverDiag diagnostics);

  const core::SolverDiag& diag() const { return diag_; }
  core::StatusCode status() const { return diag_.status; }

  /// Copy with an extra outer context frame, for rethrow sites that want
  /// to tag the failure with where it surfaced ("core/engine.check_layer").
  SolveError with_context(const std::string& context) const;

 private:
  core::SolverDiag diag_;
};

}  // namespace dsmt
