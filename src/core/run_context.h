// Long-job resilience: deadlines, cooperative cancellation, and progress
// heartbeats for every iterative kernel in the library.
//
// A RunContext carries three things:
//   * a monotonic deadline (std::chrono::steady_clock — never wall clock, so
//     an NTP step cannot expire or extend a budget; lint rule R7 fences
//     system_clock out of src/ for exactly this reason),
//   * a CancelToken that any thread may trip to request cooperative
//     cancellation, and
//   * a heartbeat counter bumped on every kernel poll, so a watchdog can
//     distinguish "still grinding" from "hung".
//
// The context is *ambient*: callers install it with ScopedRunContext for the
// duration of a job, and every iteration loop polls it through run_check()
// — the same pattern as the fault-injection hooks, so no kernel signature
// changes. parallel_for snapshots the caller's ambient context and installs
// it on pool workers, which observe cancellation between index items; the
// lowest-index interruption is rethrown on the caller, preserving the
// serial-equivalent first-failure contract. With no context installed,
// run_check() is a single thread-local load — release outputs stay
// bit-identical.
//
// On top of the context, a CheckpointSpec names a file where the sweep and
// Monte-Carlo drivers periodically snapshot completed grid slots (see
// core/checkpoint.h); a resumed run skips finished slots and, because every
// slot is index-addressed and deterministic, reproduces the uninterrupted
// output bitwise.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/thread_annotations.h"

namespace dsmt::core {

/// Shared cancellation flag. Copies observe the same underlying state, so a
/// token handed to a job can be tripped from any other thread.
class CancelToken {
 public:
  CancelToken();

  /// Requests cooperative cancellation: every subsequent kernel poll
  /// observes kCancelled. Idempotent, safe from any thread.
  void request_cancel();
  bool cancel_requested() const;

  /// Chaos/test hook: arms a fuse that trips the token after `checks` more
  /// polls observe it (0 = the very next poll). Used by the soak harness to
  /// cancel at randomized points inside a run.
  void cancel_after_checks(std::uint64_t checks);

  /// One poll: counts down an armed fuse and reports the cancel state.
  bool observe() const;

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<std::int64_t> fuse{-1};  ///< polls left before trip; <0 = off
  };
  std::shared_ptr<State> state_;
};

/// Where and how often the sweep drivers snapshot completed slots.
struct CheckpointSpec {
  std::string path;   ///< checkpoint file (written atomically, see format doc)
  int interval = 16;  ///< completed slots between snapshot flushes [1]
};

/// Checkpoint counters published into the run for reporting (JSON sign-off).
struct CheckpointStats {
  std::string job;             ///< driver name ("design_rule_table", ...)
  std::size_t total_slots = 0;
  std::size_t completed = 0;   ///< slots held now (resumed + newly solved)
  std::size_t resumed = 0;     ///< slots restored from the file on open
  std::size_t flushes = 0;     ///< snapshot writes performed this run
};

/// The resilience context threaded (ambiently) through a long job. Copies
/// share the cancel token, heartbeat counter, and checkpoint log; the
/// deadline and checkpoint spec are plain values.
class RunContext {
 public:
  RunContext();

  /// Context whose deadline is `budget` from now on the monotonic clock.
  static RunContext with_deadline_after(std::chrono::nanoseconds budget);

  void set_deadline(std::chrono::steady_clock::time_point when);
  bool has_deadline() const { return deadline_.has_value(); }
  /// Remaining budget [s]; negative once expired. Requires has_deadline().
  double seconds_remaining() const;

  CancelToken& cancel() { return cancel_; }
  const CancelToken& cancel() const { return cancel_; }

  /// Heartbeat: total kernel polls observed by this run so far. Strictly
  /// increasing while any kernel is making iteration progress.
  std::uint64_t beats() const;

  void set_checkpoint(CheckpointSpec spec);
  void clear_checkpoint();
  const std::optional<CheckpointSpec>& checkpoint() const {
    return checkpoint_;
  }

  /// Records (or updates, keyed by job) checkpoint counters for reporting.
  /// Const because the log is shared state: every copy of the context sees
  /// the same entries, which is how worker-side flushes reach the caller.
  void note_checkpoint(const CheckpointStats& stats) const;
  std::vector<CheckpointStats> checkpoint_log() const;

  /// One kernel poll: bumps the heartbeat, then reports kCancelled /
  /// kDeadlineExceeded / kOk. Cancellation wins over an expired deadline.
  StatusCode poll() const;

 private:
  struct CheckpointLog {
    mutable Mutex mu;
    std::vector<CheckpointStats> entries DSMT_GUARDED_BY(mu);
  };

  // R10-ok: deadline_ and checkpoint_ are plain values configured before the
  // context is shared with workers (parallel_for snapshots a const copy);
  // only the shared state behind the pointers is touched cross-thread.
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  CancelToken cancel_;
  std::shared_ptr<std::atomic<std::uint64_t>> beats_;
  std::optional<CheckpointSpec> checkpoint_;  // R10-ok: see deadline_ above
  std::shared_ptr<CheckpointLog> log_;
};

/// The ambient context of the current thread, or nullptr outside any
/// ScopedRunContext. Kernels never call this directly — they use run_check().
const RunContext* current_run_context();

/// RAII installation of a RunContext as the current thread's ambient
/// context; restores the previous one (usually none) on destruction.
class ScopedRunContext {
 public:
  explicit ScopedRunContext(const RunContext& context);
  /// Pointer form for propagation plumbing: nullptr installs nothing.
  explicit ScopedRunContext(const RunContext* context);
  ~ScopedRunContext();
  ScopedRunContext(const ScopedRunContext&) = delete;
  ScopedRunContext& operator=(const ScopedRunContext&) = delete;

 private:
  // R10-ok: a ScopedRunContext lives on one thread's stack and edits that
  // thread's thread_local ambient slot; nothing here is shared.
  const RunContext* prev_ = nullptr;
  bool installed_ = false;  // R10-ok: same — single-thread RAII state
};

/// Kernel poll hook: kOk (and nothing else happens) when no context is
/// installed, otherwise RunContext::poll(). Safe from pool workers.
StatusCode run_check();

/// Poll-and-throw for driver loops: on interruption, throws dsmt::SolveError
/// whose SolverDiag chain records `kernel` with the interruption status.
void throw_if_run_interrupted(const char* kernel);

/// Claims the ambient checkpoint spec for one sweep driver. If the ambient
/// context carries a CheckpointSpec, the claim takes it and re-installs a
/// copy of the context *without* the spec for the claim's lifetime, so
/// nested drivers (sweep_j0 -> sweep_duty_cycle) cannot double-apply the
/// same file. The outermost driver — the first to claim — wins.
class ClaimedCheckpoint {
 public:
  ClaimedCheckpoint();

  /// The claimed spec, or nullptr when the run has no checkpoint armed.
  const CheckpointSpec* spec() const {
    return spec_ ? &*spec_ : nullptr;
  }

 private:
  // R10-ok: claims happen on the driver thread before any fan-out; workers
  // see only the re-installed const RunContext, never this object.
  std::optional<CheckpointSpec> spec_;
  std::optional<RunContext> rescoped_;   // R10-ok: same — driver-thread only
  std::optional<ScopedRunContext> scope_;  // R10-ok: same; declared last so
                                           // it unwinds first
};

}  // namespace dsmt::core
