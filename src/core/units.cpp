#include "core/units.h"

#include <cmath>
#include <cstdio>

namespace dsmt::units {

namespace {
/// "%.4g" of `value` followed by a unit symbol: "1.67 uOhm*cm".
std::string format(double value, const char* symbol) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g %s", value, symbol);
  return buf;
}

/// Engineering-scaled formatting: picks the largest listed scale whose
/// magnitude does not exceed |value| (falls back to the smallest).
struct Scale {
  double factor;
  const char* symbol;
};

std::string format_scaled(double value, const Scale* scales, int n) {
  const double mag = std::fabs(value);
  int pick = n - 1;
  for (int i = 0; i < n; ++i) {
    if (mag >= scales[i].factor || i == n - 1) {
      pick = i;
      break;
    }
  }
  return format(value / scales[pick].factor, scales[pick].symbol);
}
}  // namespace

std::string to_string(Kelvin t) { return format(t.value(), "K"); }

std::string to_string(CelsiusDelta dt) { return format(dt.value(), "K"); }

std::string to_string(Metres length) {
  static constexpr Scale kScales[] = {
      {1.0, "m"}, {1e-3, "mm"}, {1e-6, "um"}, {1e-9, "nm"}};
  return format_scaled(length.value(), kScales, 4);
}

std::string to_string(Seconds t) {
  static constexpr Scale kScales[] = {
      {1.0, "s"}, {1e-3, "ms"}, {1e-6, "us"}, {1e-9, "ns"}, {1e-12, "ps"}};
  return format_scaled(t.value(), kScales, 5);
}

std::string to_string(CurrentDensity j) {
  return format(to_MA_per_cm2(j.value()), "MA/cm^2");
}

std::string to_string(Resistivity rho) {
  return format(rho.value() * 1e8, "uOhm*cm");
}

std::string to_string(ThermalConductivity k) {
  return format(k.value(), "W/(m*K)");
}

std::string to_string(ThermalResistancePerLength rth) {
  return format(rth.value(), "K*m/W");
}

std::string to_string(HeatingCoefficient h) {
  return format(h.value(), "K*m^3/W");
}

}  // namespace dsmt::units
