#include "core/atomic_file.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace dsmt::core {

namespace {

/// Unique-within-process temp name next to the target, so rename(2) stays on
/// one filesystem and concurrent writers (pool workers flushing different
/// checkpoints) cannot collide.
std::string temp_name_for(const std::string& path) {
  static std::atomic<unsigned> seq{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("atomic_write_file: " + what + " for " + path);
}

}  // namespace

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = temp_name_for(path);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot create temp file", tmp);

  std::size_t off = 0;
  while (off < content.size()) {
    const ::ssize_t n =
        ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("write failed", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  // Data must be durable before the rename makes it reachable — otherwise a
  // crash could leave the *new* name pointing at missing blocks.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("fsync failed", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("close failed", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("rename failed", path);
  }
  // Make the rename itself durable: without a directory fsync the new name
  // lives only in the in-memory dentry cache, and a power cut after "success"
  // can roll a checkpoint back to the previous name — exactly the window a
  // resumed run trusts to be closed. Failures here are real failures (the
  // caller was promised durability), except EINVAL/ENOTSUP from filesystems
  // that cannot fsync directories, where the content fsync above is the best
  // the platform offers.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  int dfd = -1;
  do {
    dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  } while (dfd < 0 && errno == EINTR);
  // Some filesystems refuse to open (or fsync) directories at all. The
  // rename has already landed and the content fsync ran, so a refused
  // directory handle downgrades the rename's durability to the platform's
  // best effort — it must not turn a write that succeeded into a
  // caller-visible failure.
  if (dfd < 0) return;
  int rc = 0;
  do {
    rc = ::fsync(dfd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINVAL && errno != ENOTSUP) {
    ::close(dfd);
    fail("parent directory fsync failed", dir);
  }
  ::close(dfd);
}

AppendLog::AppendLog(std::string path) : path_(std::move(path)) {
  do {
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                 0644);
  } while (fd_ < 0 && errno == EINTR);
}

AppendLog::~AppendLog() { disable(); }

void AppendLog::disable() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool AppendLog::append(const std::string& record) {
  if (fd_ < 0) return false;
  // One write(2) call per record when the kernel cooperates; O_APPEND makes
  // each write land atomically at the current end even with concurrent
  // appenders. A short write (disk full, signal after partial progress) is
  // continued — the reader's checksums own torn-record detection, the
  // writer's job is only to never interleave two records.
  std::size_t off = 0;
  while (off < record.size()) {
    const ::ssize_t n =
        ::write(fd_, record.data() + off, record.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      disable();
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  int rc = 0;
  do {
    rc = ::fsync(fd_);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINVAL && errno != ENOTSUP) {
    disable();
    return false;
  }
  return true;
}

bool truncate_file_to(const std::string& path, std::uint64_t size) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return false;
  int rc = 0;
  do {
    rc = ::ftruncate(fd, static_cast<::off_t>(size));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    return false;
  }
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  ::close(fd);
  return rc == 0 || errno == EINVAL || errno == ENOTSUP;
}

void AtomicFile::commit() {
  if (committed_)
    throw std::logic_error("AtomicFile: commit() called twice for " + path_);
  atomic_write_file(path_, buffer_.str());
  committed_ = true;
}

}  // namespace dsmt::core
