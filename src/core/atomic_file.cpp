#include "core/atomic_file.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace dsmt::core {

namespace {

/// Unique-within-process temp name next to the target, so rename(2) stays on
/// one filesystem and concurrent writers (pool workers flushing different
/// checkpoints) cannot collide.
std::string temp_name_for(const std::string& path) {
  static std::atomic<unsigned> seq{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("atomic_write_file: " + what + " for " + path);
}

}  // namespace

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = temp_name_for(path);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot create temp file", tmp);

  std::size_t off = 0;
  while (off < content.size()) {
    const ::ssize_t n =
        ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("write failed", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  // Data must be durable before the rename makes it reachable — otherwise a
  // crash could leave the *new* name pointing at missing blocks.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("fsync failed", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("close failed", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("rename failed", path);
  }
  // Make the rename itself durable: without a directory fsync the new name
  // lives only in the in-memory dentry cache, and a power cut after "success"
  // can roll a checkpoint back to the previous name — exactly the window a
  // resumed run trusts to be closed. Failures here are real failures (the
  // caller was promised durability), except EINVAL/ENOTSUP from filesystems
  // that cannot fsync directories, where the content fsync above is the best
  // the platform offers.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  int dfd = -1;
  do {
    dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  } while (dfd < 0 && errno == EINTR);
  // Some filesystems refuse to open (or fsync) directories at all. The
  // rename has already landed and the content fsync ran, so a refused
  // directory handle downgrades the rename's durability to the platform's
  // best effort — it must not turn a write that succeeded into a
  // caller-visible failure.
  if (dfd < 0) return;
  int rc = 0;
  do {
    rc = ::fsync(dfd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINVAL && errno != ENOTSUP) {
    ::close(dfd);
    fail("parent directory fsync failed", dir);
  }
  ::close(dfd);
}

void AtomicFile::commit() {
  if (committed_)
    throw std::logic_error("AtomicFile: commit() called twice for " + path_);
  atomic_write_file(path_, buffer_.str());
  committed_ = true;
}

}  // namespace dsmt::core
