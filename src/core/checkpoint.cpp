#include "core/checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/atomic_file.h"

namespace dsmt::core {

namespace {

constexpr const char* kMagic = "dsmt-checkpoint v1";
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

[[noreturn]] void invalid(const std::string& path, const std::string& why) {
  SolverDiag diag;
  diag.record("core/checkpoint", StatusCode::kInvalidInput, 0, 0.0, why);
  throw SolveError("checkpoint " + path + ": " + why, diag);
}

/// Exact binary64 round-trip: hexfloat out, strtod back in.
std::string encode_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

}  // namespace

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t hash_mix(std::uint64_t h, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof bits);
  return hash_mix(h, bits);
}

std::uint64_t hash_mix(std::uint64_t h, const std::string& value) {
  for (const char c : value) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= kFnvPrime;
  }
  return hash_mix(h, static_cast<std::uint64_t>(value.size()));
}

SweepCheckpoint::SweepCheckpoint(const CheckpointSpec& spec, std::string job,
                                 std::uint64_t config_hash,
                                 std::size_t total_slots)
    : spec_(spec),
      job_(std::move(job)),
      config_hash_(config_hash),
      total_(total_slots),
      slots_(total_slots),
      restored_(total_slots, 0) {
  if (spec_.interval < 1) spec_.interval = 1;
  if (const RunContext* ambient = current_run_context())
    publish_ = *ambient;
  MutexLock lock(mu_);
  load_locked();
  if (publish_) publish_locked();
}

SweepCheckpoint::~SweepCheckpoint() = default;

void SweepCheckpoint::load_locked() {
  std::ifstream is(spec_.path);
  if (!is.good()) return;  // fresh run: no file yet

  std::string line;
  if (!std::getline(is, line) || line != kMagic)
    invalid(spec_.path, "bad or missing format line (expected '" +
                            std::string(kMagic) + "')");

  std::string key, job;
  char hash_hex[32] = {};
  std::size_t total = 0;
  if (!std::getline(is, line)) invalid(spec_.path, "truncated header");
  {
    std::istringstream ls(line);
    if (!(ls >> key >> job) || key != "job")
      invalid(spec_.path, "malformed job line");
  }
  if (job != job_)
    invalid(spec_.path, "job mismatch: file has '" + job + "', run is '" +
                            job_ + "'");
  if (!std::getline(is, line)) invalid(spec_.path, "truncated header");
  {
    std::istringstream ls(line);
    std::string hex;
    if (!(ls >> key >> hex) || key != "config" || hex.size() > 16)
      invalid(spec_.path, "malformed config line");
    std::snprintf(hash_hex, sizeof hash_hex, "%016llx",
                  static_cast<unsigned long long>(config_hash_));
    if (hex != hash_hex)
      invalid(spec_.path,
              "config hash mismatch: the file was written by a run with "
              "different parameters");
  }
  if (!std::getline(is, line)) invalid(spec_.path, "truncated header");
  {
    std::istringstream ls(line);
    if (!(ls >> key >> total) || key != "slots")
      invalid(spec_.path, "malformed slots line");
  }
  if (total != total_)
    invalid(spec_.path, "slot count mismatch: file has " +
                            std::to_string(total) + ", run has " +
                            std::to_string(total_));

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::size_t index = 0, count = 0;
    if (!(ls >> key >> index >> count) || key != "slot")
      invalid(spec_.path, "malformed slot line: '" + line + "'");
    if (index >= total_)
      invalid(spec_.path, "slot index " + std::to_string(index) +
                              " out of range");
    std::vector<double> values;
    values.reserve(count);
    std::string token;
    for (std::size_t i = 0; i < count; ++i) {
      if (!(ls >> token))
        invalid(spec_.path, "slot " + std::to_string(index) +
                                " is missing values");
      char* end = nullptr;
      const double v = std::strtod(token.c_str(), &end);
      if (end == token.c_str() || *end != '\0')
        invalid(spec_.path, "slot " + std::to_string(index) +
                                " has an unparseable value '" + token + "'");
      values.push_back(v);
    }
    if (restored_[index] == 0) {
      restored_[index] = 1;
      ++resumed_;
      ++completed_;
    }
    slots_[index] = std::move(values);
  }
}

bool SweepCheckpoint::has(std::size_t slot) const {
  return restored_[slot] != 0;
}

const std::vector<double>& SweepCheckpoint::values(std::size_t slot) const {
  // Restored slots are written once during load_locked() (construction) and
  // never touched again, so handing out a reference without the lock is
  // safe; the analysis cannot see that invariant, hence the escape hatch.
  return slots_[slot];
}

void SweepCheckpoint::store(std::size_t slot, std::vector<double> values) {
  MutexLock lock(mu_);
  if (slots_[slot].empty()) ++completed_;
  slots_[slot] = std::move(values);
  if (++since_flush_ >= spec_.interval) flush_locked();
}

void SweepCheckpoint::flush() {
  MutexLock lock(mu_);
  flush_locked();
}

void SweepCheckpoint::flush_locked() {
  atomic_write_file(spec_.path, render_locked());
  since_flush_ = 0;
  ++flushes_;
  publish_locked();
}

void SweepCheckpoint::publish_locked() {
  if (!publish_) return;
  CheckpointStats st;
  st.job = job_;
  st.total_slots = total_;
  st.completed = completed_;
  st.resumed = resumed_;
  st.flushes = flushes_;
  publish_->note_checkpoint(st);
}

std::string SweepCheckpoint::render_locked() const {
  std::ostringstream os;
  char hex[32];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(config_hash_));
  os << kMagic << "\n"
     << "job " << job_ << "\n"
     << "config " << hex << "\n"
     << "slots " << total_ << "\n";
  for (std::size_t i = 0; i < total_; ++i) {
    if (slots_[i].empty()) continue;
    os << "slot " << i << " " << slots_[i].size();
    for (const double v : slots_[i]) os << " " << encode_double(v);
    os << "\n";
  }
  return os.str();
}

CheckpointStats SweepCheckpoint::stats() const {
  MutexLock lock(mu_);
  CheckpointStats st;
  st.job = job_;
  st.total_slots = total_;
  st.completed = completed_;
  st.resumed = resumed_;
  st.flushes = flushes_;
  return st;
}

}  // namespace dsmt::core
