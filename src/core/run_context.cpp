#include "core/run_context.h"

namespace dsmt::core {

namespace {
thread_local const RunContext* g_current = nullptr;
}  // namespace

CancelToken::CancelToken() : state_(std::make_shared<State>()) {}

void CancelToken::request_cancel() {
  state_->cancelled.store(true, std::memory_order_relaxed);
}

bool CancelToken::cancel_requested() const {
  return state_->cancelled.load(std::memory_order_relaxed);
}

void CancelToken::cancel_after_checks(std::uint64_t checks) {
  state_->fuse.store(static_cast<std::int64_t>(checks),
                     std::memory_order_relaxed);
}

bool CancelToken::observe() const {
  if (state_->cancelled.load(std::memory_order_relaxed)) return true;
  // An armed fuse counts down one poll at a time; the poll that takes it
  // below zero trips the token. Several threads may race past zero — each
  // sees a distinct previous value, and tripping is idempotent.
  if (state_->fuse.load(std::memory_order_relaxed) >= 0 &&
      state_->fuse.fetch_sub(1, std::memory_order_acq_rel) <= 0) {
    state_->cancelled.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

RunContext::RunContext()
    : beats_(std::make_shared<std::atomic<std::uint64_t>>(0)),
      log_(std::make_shared<CheckpointLog>()) {}

RunContext RunContext::with_deadline_after(std::chrono::nanoseconds budget) {
  RunContext ctx;
  ctx.set_deadline(std::chrono::steady_clock::now() + budget);
  return ctx;
}

void RunContext::set_deadline(std::chrono::steady_clock::time_point when) {
  deadline_ = when;
}

double RunContext::seconds_remaining() const {
  return std::chrono::duration<double>(*deadline_ -
                                       std::chrono::steady_clock::now())
      .count();
}

std::uint64_t RunContext::beats() const {
  return beats_->load(std::memory_order_relaxed);
}

void RunContext::set_checkpoint(CheckpointSpec spec) {
  checkpoint_ = std::move(spec);
}

void RunContext::clear_checkpoint() { checkpoint_.reset(); }

void RunContext::note_checkpoint(const CheckpointStats& stats) const {
  MutexLock lock(log_->mu);
  for (auto& entry : log_->entries) {
    if (entry.job == stats.job) {
      entry = stats;
      return;
    }
  }
  log_->entries.push_back(stats);
}

std::vector<CheckpointStats> RunContext::checkpoint_log() const {
  MutexLock lock(log_->mu);
  return log_->entries;
}

StatusCode RunContext::poll() const {
  beats_->fetch_add(1, std::memory_order_relaxed);
  if (cancel_.observe()) return StatusCode::kCancelled;
  if (deadline_ && std::chrono::steady_clock::now() >= *deadline_)
    return StatusCode::kDeadlineExceeded;
  return StatusCode::kOk;
}

const RunContext* current_run_context() { return g_current; }

ScopedRunContext::ScopedRunContext(const RunContext& context)
    : prev_(g_current), installed_(true) {
  g_current = &context;
}

ScopedRunContext::ScopedRunContext(const RunContext* context) {
  if (context != nullptr) {
    prev_ = g_current;
    installed_ = true;
    g_current = context;
  }
}

ScopedRunContext::~ScopedRunContext() {
  if (installed_) g_current = prev_;
}

StatusCode run_check() {
  const RunContext* ctx = g_current;
  return ctx == nullptr ? StatusCode::kOk : ctx->poll();
}

void throw_if_run_interrupted(const char* kernel) {
  const StatusCode rc = run_check();
  if (rc == StatusCode::kOk) return;
  SolverDiag diag;
  diag.record(kernel, rc, 0, 0.0,
              rc == StatusCode::kCancelled
                  ? "cooperative cancellation observed"
                  : "monotonic deadline exceeded");
  throw SolveError(std::string(kernel) + ": run interrupted (" +
                       status_name(rc) + ")",
                   diag);
}

ClaimedCheckpoint::ClaimedCheckpoint() {
  const RunContext* ambient = g_current;
  if (ambient == nullptr || !ambient->checkpoint()) return;
  spec_ = *ambient->checkpoint();
  rescoped_ = *ambient;
  rescoped_->clear_checkpoint();
  scope_.emplace(*rescoped_);
}

}  // namespace dsmt::core
