// Parameter sensitivity of the self-consistent design rule.
//
// The reconstructed technology file carries uncertainty (the paper's
// Table 8 is partially illegible), so the library quantifies how each
// physical parameter moves the answer: normalized sensitivities
//   S_p = (p / j_peak) (d j_peak / d p)
// computed by central finite differences around the nominal problem. This
// both documents which reconstruction choices matter and provides the
// substrate for the Monte-Carlo variation analysis (variation.h).
#pragma once

#include <string>
#include <vector>

#include "materials/dielectric.h"
#include "selfconsistent/solver.h"
#include "tech/technology.h"

namespace dsmt::core {

/// One parameter's normalized sensitivity.
struct Sensitivity {
  std::string parameter;
  double nominal = 0.0;       ///< parameter value
  double s_jpeak = 0.0;       ///< d(ln j_peak)/d(ln p)
  double s_tmetal = 0.0;      ///< d(T_m)/d(ln p) [K per unit log]
};

/// Sensitivities of the level's self-consistent j_peak to the key inputs:
/// line width, metal thickness, stack thickness (all ILDs scaled), gap-fill
/// thermal conductivity, EM activation energy, design-rule j0, duty cycle,
/// and the spreading parameter phi. `rel_step` is the central-difference
/// perturbation.
std::vector<Sensitivity> design_rule_sensitivities(
    const tech::Technology& technology, int level,
    const materials::Dielectric& gap_fill, double phi, double duty_cycle,
    double j0, double rel_step = 0.02);

}  // namespace dsmt::core
