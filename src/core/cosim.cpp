#include "core/cosim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/constants.h"
#include "numeric/interp.h"
#include "thermal/fd1d.h"
#include "thermal/healing.h"
#include "thermal/impedance.h"

namespace dsmt::core {

CosimResult verify_rms_premise(const tech::Technology& technology, int level,
                               const materials::Dielectric& gap_fill,
                               const repeater::StageSimResult& sim,
                               const CosimOptions& options) {
  if (sim.time.size() < 2)
    throw std::invalid_argument("verify_rms_premise: empty stage waveform");

  const auto& layer = technology.layer(level);
  const auto stack = technology.stack_below(level, gap_fill);
  const auto b = metres(stack.total_thickness());
  const auto w_eff =
      thermal::effective_width(metres(layer.width), b, options.phi);
  const auto rth = thermal::rth_per_length(stack, w_eff);
  const double area = layer.width * layer.thickness;

  CosimResult out;
  out.electrical_period = sim.time.back() - sim.time.front();
  // Thermal time constant of the line per unit length: C'/G' where
  // C' = c_v t W and G' = 1/R'_th.
  out.thermal_tau =
      technology.metal.c_volumetric * area * rth;

  // Energy-preserving downsampling: the thermal solver steps much coarser
  // than the electrical waveform, so instead of point-sampling j(t) (which
  // would alias the narrow current pulses) each thermal step uses the RMS
  // of j over its own window — the Joule energy per step is then exact.
  const double period = out.electrical_period;
  const int spp = options.steps_per_period;
  std::vector<double> t_rel(sim.time.size());
  std::vector<double> j_abs(sim.time.size());
  for (std::size_t i = 0; i < sim.time.size(); ++i) {
    t_rel[i] = sim.time[i] - sim.time.front();
    j_abs[i] = std::abs(sim.line_current[i]) / area;
  }
  numeric::LinearInterpolant j_interp(t_rel, j_abs);
  std::vector<double> j_step_rms(spp, 0.0);
  const int fine = 64;  // sub-samples per thermal step for the window RMS
  for (int k = 0; k < spp; ++k) {
    double acc = 0.0;
    for (int m = 0; m < fine; ++m) {
      const double tq = period * (k + (m + 0.5) / fine) / spp;
      const double j = j_interp(tq);
      acc += j * j;
    }
    j_step_rms[k] = std::sqrt(acc / fine);
  }
  auto j_of_t = [&](double t) {
    const double phase = std::fmod(t, period) / period;
    int k = static_cast<int>(phase * spp);
    k = std::clamp(k, 0, spp - 1);
    return j_step_rms[k];
  };

  // Thermally long segment of the line: use a length >> lambda so the
  // mid-line temperature matches the infinite-line (Eq. 9) value.
  thermal::Line1DSpec spec;
  spec.metal = technology.metal;
  spec.w_m = layer.width;
  spec.t_m = layer.thickness;
  spec.rth_per_len = rth;
  const double lambda =
      thermal::healing_length(technology.metal, layer.width, layer.thickness,
                              rth);
  spec.length = 30.0 * lambda;
  spec.t_ref = kTrefK;
  spec.t_end = kTrefK;
  spec.nodes = options.nodes;

  // Integrate for at least 4 thermal time constants so the periodic steady
  // state is actually reached; options.thermal_periods acts as a floor.
  const int periods = std::max(
      options.thermal_periods,
      static_cast<int>(std::ceil(4.0 * out.thermal_tau / period)));
  const double t_final = periods * period;
  const int steps = periods * options.steps_per_period;
  const auto tr = thermal::solve_transient_line(spec, j_of_t, t_final, steps);

  // Settled statistics over the last 10% of the run.
  const std::size_t n = tr.t_peak.size();
  const std::size_t tail = std::max<std::size_t>(n / 10, 2);
  double t_min = 1e300, t_max = -1e300, t_sum = 0.0;
  for (std::size_t i = n - tail; i < n; ++i) {
    t_min = std::min(t_min, tr.t_peak[i]);
    t_max = std::max(t_max, tr.t_peak[i]);
    t_sum += tr.t_peak[i];
  }
  out.dt_transient = t_sum / static_cast<double>(tail) - kTrefK;
  out.ripple = t_max - t_min;

  // Analytic prediction from the waveform's RMS density (Eq. 9 with the
  // electro-thermal fixed point).
  const auto sh = thermal::solve_self_heating(
      A_per_m2(sim.j_rms), technology.metal, metres(layer.width),
      metres(layer.thickness), rth, kTrefK);
  out.dt_rms_model = sh.delta_t;
  out.agreement =
      out.dt_rms_model > 0.0 ? out.dt_transient / out.dt_rms_model : 0.0;
  return out;
}

}  // namespace dsmt::core
