// Index-addressed slot checkpointing for the long sweep drivers.
//
// A SweepCheckpoint snapshots the completed slots of one deterministic grid
// (design-rule table cells, duty-cycle points, Monte-Carlo samples) to a
// crash-safe file so a killed or cancelled run can resume without redoing
// finished work. Because every slot is index-addressed and every solve is
// deterministic (PR-3 contract: static partitioning, counter-based RNG), a
// resumed run that restores finished slots and recomputes the rest produces
// bitwise-identical output to an uninterrupted run — values round-trip the
// file as C99 hexfloats, which encode the exact binary64 bit pattern.
//
// File format (text, one record per line, version-gated):
//
//   dsmt-checkpoint v1
//   job <driver-name>
//   config <16-digit-hex-hash>
//   slots <total-slot-count>
//   slot <index> <value-count> <hexfloat>...
//
// The config hash folds the driver's job-defining parameters; a file whose
// job, hash, or slot count disagrees with the resuming run throws
// dsmt::SolveError (kInvalidInput) — silently restarting would overwrite a
// checkpoint the user thought was being resumed.
//
// Snapshots are periodic (every CheckpointSpec::interval completed slots)
// and each one is an atomic whole-file rewrite (core/atomic_file.h). There
// is deliberately NO flush on exception: an interrupted run keeps exactly
// what the last periodic snapshot captured, the same guarantee a kill -9
// gives, which is what the chaos harness exercises.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/run_context.h"

namespace dsmt::core {

/// FNV-1a style mixing helpers for the drivers' config hashes.
inline constexpr std::uint64_t kConfigHashSeed = 14695981039346656037ULL;
std::uint64_t hash_mix(std::uint64_t h, std::uint64_t value);
/// value [1]: hashed by exact bit pattern, so -0.0 != +0.0 but NaNs are
/// stable — the hash is an identity check, not an equality relation.
std::uint64_t hash_mix(std::uint64_t h, double value);
std::uint64_t hash_mix(std::uint64_t h, const std::string& value);

class SweepCheckpoint {
 public:
  /// Opens (or creates) the checkpoint for one driver run. An existing file
  /// is loaded and validated against (job, config_hash, total_slots);
  /// mismatch or corruption throws dsmt::SolveError with kInvalidInput.
  SweepCheckpoint(const CheckpointSpec& spec, std::string job,
                  std::uint64_t config_hash, std::size_t total_slots);
  ~SweepCheckpoint();
  SweepCheckpoint(const SweepCheckpoint&) = delete;
  SweepCheckpoint& operator=(const SweepCheckpoint&) = delete;

  /// True when `slot` was restored from the file — the driver skips its
  /// solve and decodes values() instead. Only restored slots answer true:
  /// slots stored during this run were computed, not skipped.
  bool has(std::size_t slot) const;
  /// Restored payload of `slot`; valid only when has(slot).
  const std::vector<double>& values(std::size_t slot) const;

  /// Records a freshly computed slot. Thread-safe (called from pool
  /// workers); every `interval` stores triggers an atomic snapshot flush.
  void store(std::size_t slot, std::vector<double> values);

  /// Forces a snapshot now (drivers call it once after a completed run).
  void flush();

  CheckpointStats stats() const;

 private:
  void load();
  std::string render_locked() const;
  void flush_locked();
  void publish_locked();

  CheckpointSpec spec_;
  std::string job_;
  std::uint64_t config_hash_;
  std::size_t total_;
  /// Copy of the ambient context at construction (shares its checkpoint
  /// log), so stats reach the run's JSON sign-off without lifetime games.
  std::optional<RunContext> publish_;

  mutable std::mutex mu_;
  std::vector<std::vector<double>> slots_;
  std::vector<char> restored_;  ///< immutable after load(); lock-free reads
  std::size_t completed_ = 0;
  std::size_t resumed_ = 0;
  std::size_t flushes_ = 0;
  int since_flush_ = 0;
};

}  // namespace dsmt::core
