// Index-addressed slot checkpointing for the long sweep drivers.
//
// A SweepCheckpoint snapshots the completed slots of one deterministic grid
// (design-rule table cells, duty-cycle points, Monte-Carlo samples) to a
// crash-safe file so a killed or cancelled run can resume without redoing
// finished work. Because every slot is index-addressed and every solve is
// deterministic (PR-3 contract: static partitioning, counter-based RNG), a
// resumed run that restores finished slots and recomputes the rest produces
// bitwise-identical output to an uninterrupted run — values round-trip the
// file as C99 hexfloats, which encode the exact binary64 bit pattern.
//
// File format (text, one record per line, version-gated):
//
//   dsmt-checkpoint v1
//   job <driver-name>
//   config <16-digit-hex-hash>
//   slots <total-slot-count>
//   slot <index> <value-count> <hexfloat>...
//
// The config hash folds the driver's job-defining parameters; a file whose
// job, hash, or slot count disagrees with the resuming run throws
// dsmt::SolveError (kInvalidInput) — silently restarting would overwrite a
// checkpoint the user thought was being resumed.
//
// Snapshots are periodic (every CheckpointSpec::interval completed slots)
// and each one is an atomic whole-file rewrite (core/atomic_file.h). There
// is deliberately NO flush on exception: an interrupted run keeps exactly
// what the last periodic snapshot captured, the same guarantee a kill -9
// gives, which is what the chaos harness exercises.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/run_context.h"
#include "core/thread_annotations.h"

namespace dsmt::core {

/// FNV-1a style mixing helpers for the drivers' config hashes.
inline constexpr std::uint64_t kConfigHashSeed = 14695981039346656037ULL;
std::uint64_t hash_mix(std::uint64_t h, std::uint64_t value);
/// value [1]: hashed by exact bit pattern, so -0.0 != +0.0 but NaNs are
/// stable — the hash is an identity check, not an equality relation.
std::uint64_t hash_mix(std::uint64_t h, double value);
std::uint64_t hash_mix(std::uint64_t h, const std::string& value);

class SweepCheckpoint {
 public:
  /// Opens (or creates) the checkpoint for one driver run. An existing file
  /// is loaded and validated against (job, config_hash, total_slots);
  /// mismatch or corruption throws dsmt::SolveError with kInvalidInput.
  SweepCheckpoint(const CheckpointSpec& spec, std::string job,
                  std::uint64_t config_hash, std::size_t total_slots);
  ~SweepCheckpoint();
  SweepCheckpoint(const SweepCheckpoint&) = delete;
  SweepCheckpoint& operator=(const SweepCheckpoint&) = delete;

  /// True when `slot` was restored from the file — the driver skips its
  /// solve and decodes values() instead. Only restored slots answer true:
  /// slots stored during this run were computed, not skipped.
  bool has(std::size_t slot) const;
  /// Restored payload of `slot`; valid only when has(slot). Lock-free:
  /// restored slots are immutable after construction (see the .cpp note).
  const std::vector<double>& values(std::size_t slot) const
      DSMT_NO_THREAD_SAFETY_ANALYSIS;

  /// Records a freshly computed slot. Thread-safe (called from pool
  /// workers); every `interval` stores triggers an atomic snapshot flush.
  void store(std::size_t slot, std::vector<double> values);

  /// Forces a snapshot now (drivers call it once after a completed run).
  void flush();

  CheckpointStats stats() const;

 private:
  void load_locked() DSMT_REQUIRES(mu_);
  std::string render_locked() const DSMT_REQUIRES(mu_);
  void flush_locked() DSMT_REQUIRES(mu_);
  void publish_locked() DSMT_REQUIRES(mu_);

  CheckpointSpec spec_;       // R10-ok: set in the constructor, then const
  std::string job_;           // R10-ok: set in the constructor, then const
  std::uint64_t config_hash_;  // R10-ok: set in the constructor, then const
  std::size_t total_;          // R10-ok: set in the constructor, then const
  /// Copy of the ambient context at construction (shares its checkpoint
  /// log), so stats reach the run's JSON sign-off without lifetime games.
  std::optional<RunContext> publish_;  // R10-ok: set in the constructor

  mutable Mutex mu_;
  std::vector<std::vector<double>> slots_ DSMT_GUARDED_BY(mu_);
  /// Immutable after load() (constructor), hence lock-free reads in has().
  std::vector<char> restored_;  // R10-ok: written only during load()
  std::size_t completed_ DSMT_GUARDED_BY(mu_) = 0;
  std::size_t resumed_ DSMT_GUARDED_BY(mu_) = 0;
  std::size_t flushes_ DSMT_GUARDED_BY(mu_) = 0;
  int since_flush_ DSMT_GUARDED_BY(mu_) = 0;
};

}  // namespace dsmt::core
