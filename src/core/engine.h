// Top-level design-rule engine — the library's "front door".
//
// Ties the substrates together to answer the paper's two driving questions
// for a given technology:
//   1. What are the thermally/EM self-consistent maximum current densities
//      per metal level and dielectric? (Tables 2-4)
//   2. Do delay-optimal repeaters respect those limits, and by what margin?
//      (Tables 5-6, the j_peak-delay vs j_peak-self-consistent comparison)
// plus array derating (Table 7) and ESD screening (Section 6).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/status.h"
#include "esd/failure.h"
#include "materials/dielectric.h"
#include "repeater/simulate.h"
#include "selfconsistent/sweep.h"
#include "tech/technology.h"

namespace dsmt::core {

/// Per-layer verdict of the delay-vs-thermal check.
struct LayerCheck {
  int level = 0;
  repeater::OptimalRepeater optimal;       ///< l_opt, s_opt, parasitics
  repeater::StageSimResult sim;            ///< simulated currents
  selfconsistent::Solution thermal_limit;  ///< self-consistent maxima
  double jpeak_margin = 0.0;  ///< j_peak-self-consistent / j_peak-delay
  double jrms_margin = 0.0;   ///< j_rms-self-consistent / j_rms-delay
  bool pass = false;          ///< both margins >= 1
};

/// Engine options.
struct EngineOptions {
  double phi = 2.45;                ///< quasi-2D spreading parameter
  double duty_cycle_signal = 0.1;   ///< r for signal-line design rules
  double duty_cycle_power = 1.0;    ///< r for power-line design rules
  repeater::SimulationOptions sim;  ///< transient settings
};

class DesignRuleEngine {
 public:
  /// j0 [A/m^2]: the EM design-rule current density at T_ref.
  DesignRuleEngine(tech::Technology technology, double j0,
                   EngineOptions options = {});

  const tech::Technology& technology() const { return tech_; }

  /// Self-consistent design-rule table over the given levels/dielectrics
  /// (both signal and power duty cycles).
  std::vector<selfconsistent::TableCell> design_rule_table(
      const std::vector<int>& levels,
      const std::vector<materials::Dielectric>& gap_fills) const;

  /// Self-consistent limit for one level/gap-fill/duty cycle.
  selfconsistent::Solution thermal_limit(
      int level, const materials::Dielectric& gap_fill,
      double duty_cycle) const;

  /// Full delay-vs-thermal check of one level: optimize repeaters with
  /// insulator permittivity `k_rel`, simulate the stage, compare current
  /// densities against the self-consistent limit computed with `gap_fill`.
  /// k_rel [1]: relative permittivity of the interlevel insulator.
  LayerCheck check_layer(int level, double k_rel,
                         const materials::Dielectric& gap_fill) const;

  /// Checks every level in `levels` (typically the global layers).
  std::vector<LayerCheck> check_layers(
      const std::vector<int>& levels, double k_rel,
      const materials::Dielectric& gap_fill) const;

  /// ESD screen of a level's minimum-width line: outcome of an HBM zap of
  /// `v_charge` volts routed through it.
  /// v_charge [V].
  esd::StressAssessment esd_screen(int level, double v_charge,
                                   const materials::Dielectric& gap_fill) const;

  /// Electro-thermal fixed point: the wire's operating temperature raises
  /// its resistance, which changes the delay-optimal repeater design, which
  /// changes the dissipated j_rms, which changes the temperature. Iterates
  /// optimize -> simulate -> self-heat until the temperature converges.
  /// This extends the paper, which evaluates r at T_ref only.
  struct ElectrothermalResult {
    LayerCheck at_tref;        ///< the paper's (cold-resistance) answer
    LayerCheck at_operating;   ///< converged hot-resistance answer
    double t_operating = 0.0;  ///< fixed-point wire temperature [K]
    double delta_t = 0.0;      ///< operating rise above T_ref [K]
    int iterations = 0;
    bool converged = false;
    SolverDiag diag;  ///< fixed-point history incl. damping stages
  };
  /// Throws dsmt::SolveError (with the full diagnostic chain) when the
  /// fixed point fails to converge even after oscillation damping.
  ElectrothermalResult check_layer_electrothermal(
      int level, double k_rel, const materials::Dielectric& gap_fill,
      double t_tol = 0.05, int max_iterations = 12) const;

 private:
  tech::Technology tech_;
  double j0_;
  EngineOptions opts_;
};

}  // namespace dsmt::core
