#include "core/status.h"

#include <sstream>
#include <utility>

namespace dsmt::core {

const char* status_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidInput:
      return "invalid-input";
    case StatusCode::kNoBracket:
      return "no-bracket";
    case StatusCode::kMaxIterations:
      return "max-iterations";
    case StatusCode::kNonFinite:
      return "non-finite";
    case StatusCode::kSingularSystem:
      return "singular-system";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kRejectedOverload:
      return "rejected-overload";
    case StatusCode::kBreakerOpen:
      return "breaker-open";
    case StatusCode::kWorkerCrashed:
      return "worker-crashed";
  }
  return "unknown";
}

void DiagChain::push_back(DiagEvent ev) {
  if (size_ < kInline) {
    inline_[size_] = std::move(ev);
  } else {
    if (size_ == kInline) {
      // First spill: migrate the inline events so the sequence stays
      // contiguous in one place.
      spill_.reserve(kInline + 2);
      for (auto& e : inline_) spill_.push_back(std::move(e));
    }
    spill_.push_back(std::move(ev));
  }
  ++size_;
}

void DiagChain::prepend(DiagEvent ev) {
  push_back(DiagEvent{});  // grow one slot (may migrate), then shift right
  DiagEvent* d = data();
  for (std::size_t i = size_ - 1; i > 0; --i) d[i] = std::move(d[i - 1]);
  d[0] = std::move(ev);
}

void DiagChain::append(const DiagChain& tail) {
  for (const DiagEvent& ev : tail) push_back(ev);
}

void SolverDiag::record(std::string kernel_name, StatusCode event_status,
                        int iterations_used, double residual_value,
                        std::string note) {
  DiagEvent ev;
  ev.kernel = std::move(kernel_name);
  ev.status = event_status;
  ev.iterations = iterations_used;
  ev.residual = residual_value;
  ev.note = std::move(note);
  if (kernel.empty()) kernel = ev.kernel;
  if (event_status == StatusCode::kOk && status != StatusCode::kOk &&
      !chain.empty())
    recovered = true;
  status = event_status;
  iterations += iterations_used;
  residual = residual_value;
  chain.push_back(std::move(ev));
}

void SolverDiag::add_context(std::string context) {
  DiagEvent ev;
  ev.kernel = std::move(context);
  ev.status = status;
  ev.note = "context";
  chain.prepend(std::move(ev));
}

void SolverDiag::absorb(const SolverDiag& inner, std::string context) {
  DiagEvent frame;
  frame.kernel = std::move(context);
  frame.status = inner.status;
  frame.iterations = inner.iterations;
  frame.residual = inner.residual;
  frame.note = "inner solve";
  chain.push_back(std::move(frame));
  chain.append(inner.chain);
  status = inner.status;
  iterations += inner.iterations;
  residual = inner.residual;
  recovered = recovered || inner.recovered;
}

std::string SolverDiag::to_string() const {
  std::ostringstream os;
  os << (kernel.empty() ? "solve" : kernel) << ": " << status_name(status)
     << " after " << iterations << " iteration(s), residual " << residual;
  if (recovered) os << " (recovered)";
  for (const auto& ev : chain) {
    os << "\n  - " << ev.kernel << ": " << status_name(ev.status) << ", "
       << ev.iterations << " it, residual " << ev.residual;
    if (!ev.note.empty()) os << " [" << ev.note << "]";
  }
  return os.str();
}

}  // namespace dsmt::core

namespace dsmt {

SolveError::SolveError(const std::string& what_prefix,
                       core::SolverDiag diagnostics)
    : std::runtime_error(what_prefix + "\n" + diagnostics.to_string()),
      diag_(std::move(diagnostics)) {}

SolveError SolveError::with_context(const std::string& context) const {
  core::SolverDiag d = diag_;
  d.add_context(context);
  const std::string w = what();
  return SolveError(context + ": " + w.substr(0, w.find('\n')), std::move(d));
}

}  // namespace dsmt
