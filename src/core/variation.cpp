#include "core/variation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/stats.h"
#include "selfconsistent/sweep.h"

namespace dsmt::core {

namespace {

/// Deterministic xorshift-based standard normal (Box-Muller).
class NormalGen {
 public:
  explicit NormalGen(unsigned seed) : state_(seed ? seed : 1) {}

  double operator()() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = uniform(), u2 = uniform();
    // Guard the log.
    u1 = std::max(u1, 1e-12);
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    have_spare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
  }

 private:
  double uniform() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 17;
    state_ ^= state_ << 5;
    return static_cast<double>(state_ % 1000000007u) / 1000000007.0;
  }
  unsigned state_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

double percentile(std::vector<double> sorted, double p) {
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double f = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - f) + sorted[hi] * f;
}

}  // namespace

VariationResult monte_carlo_jpeak(const tech::Technology& technology,
                                  int level,
                                  const materials::Dielectric& gap_fill,
                                  double phi, double duty_cycle, double j0,
                                  const VariationSpec& spec, int n_samples) {
  if (n_samples < 2)
    throw std::invalid_argument("monte_carlo_jpeak: n_samples < 2");

  VariationResult out;
  out.nominal = selfconsistent::solve(selfconsistent::make_level_problem(
                    technology, level, gap_fill, phi, duty_cycle, A_per_m2(j0)))
                    .j_peak;

  NormalGen gen(spec.seed);
  numeric::RunningStats stats;
  out.samples.reserve(n_samples);
  for (int s = 0; s < n_samples; ++s) {
    tech::Technology t = technology;
    materials::Dielectric gf = gap_fill;
    // Lognormal perturbations keep every quantity positive.
    const double fw = std::exp(spec.width * gen());
    const double ft = std::exp(spec.thickness * gen());
    const double fb = std::exp(spec.stack * gen());
    const double fk = std::exp(spec.k_thermal * gen());
    for (auto& l : t.layers) {
      if (l.level == level) {
        l.pitch += l.width * (fw - 1.0);
        l.width *= fw;
        l.thickness *= ft;
      }
      l.ild_below *= fb;
    }
    gf.k_thermal *= fk;
    const double j =
        selfconsistent::solve(selfconsistent::make_level_problem(
                                  t, level, gf, phi, duty_cycle, A_per_m2(j0)))
            .j_peak;
    out.samples.push_back(j);
    stats.add(j);
  }
  out.mean = stats.mean();
  out.stddev = stats.stddev();
  std::vector<double> sorted = out.samples;
  std::sort(sorted.begin(), sorted.end());
  out.p01 = percentile(sorted, 0.01);
  out.p50 = percentile(sorted, 0.50);
  out.p99 = percentile(sorted, 0.99);
  return out;
}

}  // namespace dsmt::core
