#include "core/variation.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "core/checkpoint.h"
#include "numeric/stats.h"
#include "parallel/parallel_for.h"
#include "selfconsistent/batch.h"
#include "selfconsistent/sweep.h"

namespace dsmt::core {

namespace {

/// Deterministic counter-based standard normal (splitmix64 + Box-Muller).
///
/// Each Monte-Carlo sample owns an independent stream keyed on
/// (seed, sample index), so sample s draws the same perturbations no matter
/// which thread computes it or in what order — the parallel sampling stream
/// is identical to the serial one by construction, not by scheduling luck.
class CounterNormalGen {
 public:
  CounterNormalGen(unsigned seed, std::uint64_t sample)
      : state_(mix64(0x9E3779B97F4A7C15ULL * (sample + 1) ^
                     (static_cast<std::uint64_t>(seed) << 1 | 1ULL))) {}

  double operator()() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    // Guard the log.
    const double u1 = std::max(uniform(), 1e-12);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    have_spare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
  }

 private:
  static std::uint64_t mix64(std::uint64_t z) {
    z ^= z >> 30;
    z *= 0xBF58476D1CE4E5B9ULL;
    z ^= z >> 27;
    z *= 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return z;
  }

  double uniform() {
    state_ += 0x9E3779B97F4A7C15ULL;
    return static_cast<double>(mix64(state_) >> 11) * 0x1.0p-53;
  }

  std::uint64_t state_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

double percentile(std::vector<double> sorted, double p) {
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double f = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - f) + sorted[hi] * f;
}

}  // namespace

VariationResult monte_carlo_jpeak(const tech::Technology& technology,
                                  int level,
                                  const materials::Dielectric& gap_fill,
                                  double phi, double duty_cycle, double j0,
                                  const VariationSpec& spec, int n_samples) {
  if (n_samples < 2)
    throw std::invalid_argument("monte_carlo_jpeak: n_samples < 2");

  // One checkpoint slot per sample; the nominal solve rides in a reserved
  // extra slot so a fully-restored resume runs no solver at all.
  ClaimedCheckpoint claim;
  std::unique_ptr<SweepCheckpoint> cp;
  const std::size_t nominal_slot = static_cast<std::size_t>(n_samples);
  if (claim.spec() != nullptr) {
    std::uint64_t h = hash_mix(kConfigHashSeed, technology.name);
    h = hash_mix(h, static_cast<std::uint64_t>(level));
    h = hash_mix(h, gap_fill.name);
    h = hash_mix(h, gap_fill.k_thermal.value());
    h = hash_mix(h, phi);
    h = hash_mix(h, duty_cycle);
    h = hash_mix(h, j0);
    h = hash_mix(h, spec.width);
    h = hash_mix(h, spec.thickness);
    h = hash_mix(h, spec.stack);
    h = hash_mix(h, spec.k_thermal);
    h = hash_mix(h, static_cast<std::uint64_t>(spec.seed));
    h = hash_mix(h, static_cast<std::uint64_t>(n_samples));
    cp = std::make_unique<SweepCheckpoint>(*claim.spec(), "monte_carlo_jpeak",
                                           h, nominal_slot + 1);
  }

  VariationResult out;
  if (cp != nullptr && cp->has(nominal_slot)) {
    out.nominal = cp->values(nominal_slot)[0];
  } else {
    out.nominal =
        selfconsistent::solve_one(selfconsistent::make_level_problem(
                                      technology, level, gap_fill, phi,
                                      duty_cycle, A_per_m2(j0)))
            .j_peak;
    if (cp != nullptr) cp->store(nominal_slot, {out.nominal});
  }

  // Sampling phase: every sample draws from its own counter-seeded stream
  // and writes its own slot, so the parallel result is bit-identical to the
  // serial one for any thread count. Restore checkpointed samples first,
  // then build the remaining perturbed problems in parallel (the per-sample
  // draw order fw, ft, fb, fk is unchanged) and solve them as ONE batch.
  out.samples.assign(static_cast<std::size_t>(n_samples), 0.0);
  std::vector<std::size_t> todo;
  todo.reserve(out.samples.size());
  for (std::size_t s = 0; s < out.samples.size(); ++s) {
    if (cp != nullptr && cp->has(s)) {
      out.samples[s] = cp->values(s)[0];
    } else {
      todo.push_back(s);
    }
  }
  if (!todo.empty()) {
    const auto lanes = parallel::parallel_map<selfconsistent::Problem>(
        todo.size(), [&](std::size_t i) {
          const std::size_t s = todo[i];
          CounterNormalGen gen(spec.seed, s);
          tech::Technology t = technology;
          materials::Dielectric gf = gap_fill;
          // Lognormal perturbations keep every quantity positive.
          const double fw = std::exp(spec.width * gen());
          const double ft = std::exp(spec.thickness * gen());
          const double fb = std::exp(spec.stack * gen());
          const double fk = std::exp(spec.k_thermal * gen());
          for (auto& l : t.layers) {
            if (l.level == level) {
              l.pitch += l.width * (fw - 1.0);
              l.width *= fw;
              l.thickness *= ft;
            }
            l.ild_below *= fb;
          }
          gf.k_thermal *= fk;
          return selfconsistent::make_level_problem(t, level, gf, phi,
                                                    duty_cycle, A_per_m2(j0));
        });
    selfconsistent::BatchProblem bp;
    bp.reserve(lanes.size());
    for (const selfconsistent::Problem& p : lanes) bp.push_back(p);
    const selfconsistent::BatchSolution bs = selfconsistent::solve_batch(
        bp, [&](std::size_t lane,
                const selfconsistent::BatchSolution& partial) {
          const std::size_t s = todo[lane];
          const double jp = partial.j_peak[lane];
          if (cp != nullptr) cp->store(s, {jp});
          out.samples[s] = jp;
        });
    bs.throw_first_failure();
  }
  if (cp != nullptr) cp->flush();
  // Reduction phase: fold the summary in index order on this thread — the
  // exact floating-point accumulation sequence of the serial loop.
  const auto stats = parallel::ordered_reduce(
      numeric::RunningStats{}, out.samples,
      [](numeric::RunningStats acc, double j) {
        acc.add(j);
        return acc;
      });
  out.mean = stats.mean();
  out.stddev = stats.stddev();
  std::vector<double> sorted = out.samples;
  std::sort(sorted.begin(), sorted.end());
  out.p01 = percentile(sorted, 0.01);
  out.p50 = percentile(sorted, 0.50);
  out.p99 = percentile(sorted, 0.99);
  return out;
}

}  // namespace dsmt::core
