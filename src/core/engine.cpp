#include "core/engine.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/run_context.h"
#include "numeric/constants.h"
#include "numeric/fault_injection.h"
#include "parallel/parallel_for.h"
#include "thermal/impedance.h"

namespace dsmt::core {

DesignRuleEngine::DesignRuleEngine(tech::Technology technology, double j0,
                                   EngineOptions options)
    : tech_(std::move(technology)), j0_(j0), opts_(options) {
  if (j0 <= 0.0) throw std::invalid_argument("DesignRuleEngine: j0 <= 0");
}

std::vector<selfconsistent::TableCell> DesignRuleEngine::design_rule_table(
    const std::vector<int>& levels,
    const std::vector<materials::Dielectric>& gap_fills) const {
  selfconsistent::TableSpec spec;
  spec.technology = tech_;
  spec.gap_fills = gap_fills;
  spec.levels = levels;
  spec.duty_cycles = {opts_.duty_cycle_signal, opts_.duty_cycle_power};
  spec.j0 = A_per_m2(j0_);
  spec.phi = opts_.phi;
  return selfconsistent::generate_design_rule_table(spec);
}

selfconsistent::Solution DesignRuleEngine::thermal_limit(
    int level, const materials::Dielectric& gap_fill, double duty_cycle) const {
  try {
    return selfconsistent::solve(selfconsistent::make_level_problem(
        tech_, level, gap_fill, opts_.phi, duty_cycle, A_per_m2(j0_)));
  } catch (const SolveError& e) {
    throw e.with_context("core/engine.thermal_limit level " +
                         std::to_string(level));
  }
}

LayerCheck DesignRuleEngine::check_layer(
    int level, double k_rel, const materials::Dielectric& gap_fill) const {
  LayerCheck check;
  check.level = level;
  check.optimal = repeater::optimize_layer(tech_, level, k_rel, kTrefK);
  check.sim = repeater::simulate_stage(tech_, level, k_rel, check.optimal,
                                       opts_.sim);
  // Compare against the limit at the *measured* effective duty cycle, as
  // the paper does (it justifies r = 0.1 from the 0.12 +/- 0.01 finding).
  const double r_eff = std::max(check.sim.duty_effective, 1e-3);
  try {
    check.thermal_limit = thermal_limit(level, gap_fill, r_eff);
  } catch (const SolveError& e) {
    throw e.with_context("core/engine.check_layer level " +
                         std::to_string(level));
  }
  if (!check.thermal_limit.diag.ok()) {
    SolverDiag diag = check.thermal_limit.diag;
    diag.add_context("core/engine.check_layer level " + std::to_string(level));
    throw SolveError("check_layer: thermal limit did not converge", diag);
  }
  check.jpeak_margin =
      check.sim.j_peak > 0.0 ? check.thermal_limit.j_peak / check.sim.j_peak
                             : 0.0;
  check.jrms_margin =
      check.sim.j_rms > 0.0 ? check.thermal_limit.j_rms / check.sim.j_rms
                            : 0.0;
  check.pass = check.jpeak_margin >= 1.0 && check.jrms_margin >= 1.0;
  return check;
}

std::vector<LayerCheck> DesignRuleEngine::check_layers(
    const std::vector<int>& levels, double k_rel,
    const materials::Dielectric& gap_fill) const {
  // Layers are independent; a failing layer's SolveError (lowest level
  // first, matching the serial loop) propagates with its diag chain intact.
  return parallel::parallel_map<LayerCheck>(
      levels.size(),
      [&](std::size_t i) { return check_layer(levels[i], k_rel, gap_fill); });
}

DesignRuleEngine::ElectrothermalResult
DesignRuleEngine::check_layer_electrothermal(
    int level, double k_rel, const materials::Dielectric& gap_fill,
    double t_tol, int max_iterations) const {
  ElectrothermalResult out;
  out.at_tref = check_layer(level, k_rel, gap_fill);

  const auto& layer = tech_.layer(level);
  const auto stack = tech_.stack_below(level, gap_fill);
  const auto w_eff = thermal::effective_width(
      metres(layer.width), metres(stack.total_thickness()), opts_.phi);
  const auto rth = thermal::rth_per_length(stack, w_eff);

  out.diag.kernel = "core/engine.electrothermal";
  double t_wire = kTrefK;
  double prev_step = 0.0;
  double step = 0.0;
  StatusCode stop = StatusCode::kMaxIterations;
  LayerCheck hot = out.at_tref;
  const int max_it = numeric::fault::clamp_iterations(
      "core/engine.electrothermal", max_iterations);
  for (int it = 0; it < max_it; ++it) {
    if (const auto rc = run_check(); rc != StatusCode::kOk) {
      stop = rc;
      break;
    }
    out.iterations = it + 1;
    // Re-extract/optimize/simulate with the wire resistance at t_wire.
    hot.level = level;
    hot.optimal = repeater::optimize_layer(tech_, level, k_rel, t_wire);
    hot.sim = repeater::simulate_stage(tech_, level, k_rel, hot.optimal,
                                       opts_.sim);
    const double r_eff = std::max(hot.sim.duty_effective, 1e-3);
    hot.thermal_limit = thermal_limit(level, gap_fill, r_eff);
    hot.jpeak_margin = hot.thermal_limit.j_peak / hot.sim.j_peak;
    hot.jrms_margin = hot.thermal_limit.j_rms / hot.sim.j_rms;
    hot.pass = hot.jpeak_margin >= 1.0 && hot.jrms_margin >= 1.0;

    // Actual dissipation -> temperature.
    const auto sh = thermal::solve_self_heating(
        A_per_m2(hot.sim.j_rms), tech_.metal, metres(layer.width),
        metres(layer.thickness), rth, kTrefK);
    const double t_new = sh.t_metal;
    step = numeric::fault::filter_residual("core/engine.electrothermal",
                                           out.iterations, t_new - t_wire);
    if (!std::isfinite(step)) {
      stop = StatusCode::kNonFinite;
      break;
    }
    const bool done = std::abs(step) <= t_tol;
    if (!done && it > 0 && step * prev_step < 0.0 &&
        std::abs(step) >= std::abs(prev_step)) {
      // Successive steps alternate sign without shrinking: the plain
      // fixed point is oscillating. Halve the step to restore contraction.
      t_wire += 0.5 * step;
      out.diag.record("core/engine.electrothermal", StatusCode::kOk,
                      out.iterations, step,
                      "oscillation detected, step damped 0.5x");
    } else {
      t_wire = t_new;
    }
    prev_step = step;
    if (done) {
      out.converged = true;
      stop = StatusCode::kOk;
      break;
    }
  }
  out.diag.record("core/engine.electrothermal", stop, out.iterations, step);
  if (!out.diag.ok()) {
    SolverDiag diag = out.diag;
    diag.add_context("core/engine.check_layer_electrothermal level " +
                     std::to_string(level));
    if (is_interruption(stop))
      throw SolveError("check_layer_electrothermal: run interrupted (" +
                           std::string(status_name(stop)) + ")",
                       diag);
    throw SolveError(
        "check_layer_electrothermal: fixed point did not converge", diag);
  }
  out.at_operating = hot;
  out.t_operating = t_wire;
  out.delta_t = t_wire - kTrefK;
  return out;
}

esd::StressAssessment DesignRuleEngine::esd_screen(
    int level, double v_charge, const materials::Dielectric& gap_fill) const {
  const auto& layer = tech_.layer(level);
  const auto stack = tech_.stack_below(level, gap_fill);
  const auto b = metres(stack.total_thickness());
  const auto w_eff = thermal::effective_width(metres(layer.width), b, opts_.phi);

  thermal::PulseLineSpec line;
  line.metal = tech_.metal;
  line.w_m = layer.width;
  line.t_m = layer.thickness;
  line.rth_per_len = thermal::rth_per_length(stack, w_eff);
  line.t_ref = kTrefK;
  return esd::assess(line, esd::hbm(v_charge));
}

}  // namespace dsmt::core
