// Transient electro-thermal co-simulation.
//
// The paper's entire framework rests on one modeling premise: for periodic
// circuit waveforms, the line's steady temperature rise equals that of a DC
// current at the waveform's RMS value (self-heating is j_rms-driven,
// Eq. 9), because the thermal time constant of a DSM line (~us) dwarfs the
// electrical period (~ns) and the temperature ripple averages out.
//
// This module *checks* that premise instead of assuming it: it takes the
// actual simulated current waveform of a repeater stage, tiles it
// periodically into the transient 1-D thermal solver, integrates to the
// periodic steady state, and compares the resulting temperature rise and
// ripple against the analytic j_rms prediction.
#pragma once

#include "repeater/simulate.h"
#include "tech/technology.h"

namespace dsmt::core {

struct CosimOptions {
  int thermal_periods = 12000;   ///< electrical periods to integrate over
  int steps_per_period = 16;     ///< thermal steps per electrical period
  int nodes = 61;                ///< 1-D spatial nodes along the line
  double phi = 2.45;             ///< spreading parameter for the stack
};

struct CosimResult {
  double dt_transient = 0.0;   ///< settled mean rise from the waveform [K]
  double dt_rms_model = 0.0;   ///< analytic rise from j_rms (Eq. 9) [K]
  double ripple = 0.0;         ///< peak-to-peak temperature ripple [K]
  double thermal_tau = 0.0;    ///< line thermal time constant [s]
  double electrical_period = 0.0;
  double agreement = 0.0;      ///< dt_transient / dt_rms_model
};

/// Runs the check for one simulated stage on `level` of `technology` with
/// intra-level dielectric `gap_fill`. `sim` must come from
/// repeater::simulate_stage on the same level.
CosimResult verify_rms_premise(const tech::Technology& technology, int level,
                               const materials::Dielectric& gap_fill,
                               const repeater::StageSimResult& sim,
                               const CosimOptions& options = {});

}  // namespace dsmt::core
