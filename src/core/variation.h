// Monte-Carlo process variation on the self-consistent design rule.
//
// Line width, metal thickness, stack thickness, and dielectric conductivity
// all vary in manufacturing. This module samples those variations
// (independent Gaussians in log-space, counter-based generator seeded per
// (seed, sample index) so the sample stream is reproducible and identical
// whether the samples run serially or across the parallel pool) and reports
// the distribution of the allowed j_peak — the statistical safety margin a
// design-rule owner must hold back.
#pragma once

#include <vector>

#include "materials/dielectric.h"
#include "tech/technology.h"

namespace dsmt::core {

/// 1-sigma relative variations per parameter.
struct VariationSpec {
  double width = 0.05;        ///< line width
  double thickness = 0.05;    ///< metal thickness
  double stack = 0.05;        ///< cumulative ILD thickness
  double k_thermal = 0.08;    ///< gap-fill conductivity
  unsigned seed = 12345;
};

/// Distribution summary of the sampled j_peak.
struct VariationResult {
  double nominal = 0.0;       ///< j_peak with no variation [A/m^2]
  double mean = 0.0;
  double stddev = 0.0;
  double p01 = 0.0;           ///< 1st percentile (design-rule corner)
  double p50 = 0.0;
  double p99 = 0.0;
  std::vector<double> samples;
};

/// Runs `n_samples` Monte-Carlo trials of the level's self-consistent
/// j_peak under the given variations.
VariationResult monte_carlo_jpeak(const tech::Technology& technology,
                                  int level,
                                  const materials::Dielectric& gap_fill,
                                  double phi, double duty_cycle, double j0,
                                  const VariationSpec& spec, int n_samples);

}  // namespace dsmt::core
