// Crash-safe file writes: temp file + fsync + rename.
//
// Every artifact the library leaves on disk (CSV series, golden snapshots,
// checkpoint files, techfiles) goes through this writer, so a job killed —
// or cancelled, or deadline-expired — mid-write never leaves a truncated
// file behind: readers see either the previous complete content or the new
// complete content, never a torn intermediate. The temp file is created in
// the target's directory (rename(2) is only atomic within a filesystem),
// fsync'd before the rename, and the directory is fsync'd after it so the
// new name itself survives a power cut.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace dsmt::core {

/// Writes `content` to `path` atomically. Throws std::runtime_error when the
/// temp file cannot be created, written, synced, or renamed (the target is
/// left untouched and the temp file is removed).
void atomic_write_file(const std::string& path, const std::string& content);

/// Durable append-only writer for record-structured logs (the solve-cache
/// segment file). Unlike atomic_write_file this never rewrites the target:
/// each append() is one O_APPEND write of a complete record followed by an
/// fsync, so a crash mid-append can tear at most the final record — which
/// the reader's per-record checksum detects and truncates. Errors are
/// sticky: after the first failed open/write/sync the log disables itself
/// and every later append() returns false (callers degrade to memory-only
/// operation rather than risking interleaved half-records).
class AppendLog {
 public:
  explicit AppendLog(std::string path);
  ~AppendLog();
  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  /// Appends one complete record durably. False when the log is disabled.
  bool append(const std::string& record);
  bool ok() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

 private:
  void disable();

  std::string path_;
  int fd_ = -1;
};

/// Truncates `path` to exactly `size` bytes and fsyncs, for recovery paths
/// that cut a torn tail off an append-only log. False on any failure (the
/// caller should then treat the file as read-only history).
bool truncate_file_to(const std::string& path, std::uint64_t size);

/// Buffered atomic writer: stream into memory, then commit() the whole
/// artifact in one atomic rename. A writer abandoned without commit()
/// (e.g. by an exception unwinding a report emitter) leaves the target
/// exactly as it was.
class AtomicFile {
 public:
  explicit AtomicFile(std::string path) : path_(std::move(path)) {}
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  std::ostream& stream() { return buffer_; }

  /// Atomically publishes the buffered content. At most once.
  void commit();
  bool committed() const { return committed_; }

 private:
  std::string path_;
  std::ostringstream buffer_;
  bool committed_ = false;
};

}  // namespace dsmt::core
