#include "core/signoff.h"

#include <sstream>

#include "core/thread_annotations.h"
#include "em/budget.h"
#include "numeric/constants.h"
#include "report/diagnostics.h"
#include "report/json.h"
#include "report/table.h"

namespace dsmt::core {

namespace {

/// Registered provider of the sign-off "service" section, with the owner
/// token that registered it. Guarded by its mutex; the function is invoked
/// while the lock is held, so clearing synchronizes with in-flight calls.
struct ServiceSourceSlot {
  Mutex mu;
  const void* owner DSMT_GUARDED_BY(mu) = nullptr;
  std::function<report::Json()> source DSMT_GUARDED_BY(mu);
};

ServiceSourceSlot& service_source_slot() {
  static ServiceSourceSlot slot;
  return slot;
}

/// Invokes the registered source (if any) while holding the slot lock.
/// Invoking outside the lock would race with clear_signoff_service_source:
/// the owner (a service::Server being destroyed on another thread) could be
/// freed between copying the std::function and calling it. The source must
/// therefore never call back into this slot's API.
bool invoke_signoff_service_source(report::Json& out) {
  ServiceSourceSlot& slot = service_source_slot();
  MutexLock lock(slot.mu);
  if (!slot.source) return false;
  out = slot.source();
  return true;
}

}  // namespace

void set_signoff_service_source(const void* owner,
                                std::function<report::Json()> source) {
  ServiceSourceSlot& slot = service_source_slot();
  MutexLock lock(slot.mu);
  slot.owner = owner;
  slot.source = std::move(source);
}

void clear_signoff_service_source(const void* owner) {
  ServiceSourceSlot& slot = service_source_slot();
  MutexLock lock(slot.mu);
  if (slot.owner != owner) return;  // a newer registrant took the slot
  slot.owner = nullptr;
  slot.source = nullptr;
}

std::function<report::Json()> signoff_service_source() {
  ServiceSourceSlot& slot = service_source_slot();
  MutexLock lock(slot.mu);
  return slot.source;
}

SignoffReport run_signoff(const tech::Technology& technology,
                          const SignoffOptions& options) {
  SignoffReport report;
  report.technology = technology.name;

  DesignRuleEngine engine(technology, options.j0, options.engine);

  // 1. Design rules for every level.
  std::vector<int> all_levels;
  for (const auto& l : technology.layers) all_levels.push_back(l.level);
  report.design_rules =
      engine.design_rule_table(all_levels, options.gap_fills);

  // 2. Global-layer repeater checks (against the first gap-fill flow).
  std::vector<int> global_levels;
  const int top = technology.top_level();
  const int rows = technology.num_levels() >= 8 ? 4 : 2;
  for (int l = top - rows + 1; l <= top; ++l) global_levels.push_back(l);
  report.global_checks = engine.check_layers(
      global_levels, options.k_rel_electrical, options.gap_fills.front());
  report.all_global_layers_pass = true;
  for (const auto& c : report.global_checks)
    report.all_global_layers_pass = report.all_global_layers_pass && c.pass;

  // 3. ESD screen of the top layer.
  report.esd =
      engine.esd_screen(top, options.esd_hbm_volts, options.gap_fills.front());
  report.esd_safe = report.esd.state == esd::FailureState::kSafe;

  // 4. EM budget.
  report.j0_chip_budgeted =
      em::chip_level_j0(technology.metal.em, A_per_m2(options.j0),
                        options.em_sigma, options.em_population);
  return report;
}

std::string SignoffReport::to_text() const {
  std::ostringstream os;
  os << "=== Thermal/EM sign-off: " << technology << " ===\n\n";

  os << "[1] Self-consistent design rules (j_peak, MA/cm^2):\n";
  // Group: duty -> table of level rows x dielectric columns.
  std::vector<std::string> dielectrics;
  for (const auto& c : design_rules) {
    bool seen = false;
    for (const auto& d : dielectrics) seen = seen || d == c.dielectric;
    if (!seen) dielectrics.push_back(c.dielectric);
  }
  std::vector<double> duties;
  for (const auto& c : design_rules) {
    bool seen = false;
    for (double d : duties) seen = seen || d == c.duty_cycle;
    if (!seen) duties.push_back(c.duty_cycle);
  }
  for (double r : duties) {
    os << "  duty r = " << report::fmt(r, 2) << ":\n";
    std::vector<std::string> headers{"Metal"};
    for (const auto& d : dielectrics) headers.push_back(d);
    report::Table table(headers);
    std::vector<int> levels;
    for (const auto& c : design_rules) {
      bool seen = false;
      for (int l : levels) seen = seen || l == c.level;
      if (!seen) levels.push_back(c.level);
    }
    for (int level : levels) {
      std::vector<std::string> row{report::level_label(level)};
      for (const auto& d : dielectrics)
        for (const auto& c : design_rules)
          if (c.level == level && c.dielectric == d && c.duty_cycle == r)
            row.push_back(report::fmt(to_MA_per_cm2(c.sol.j_peak), 2));
      table.add_row(std::move(row));
    }
    os << table.to_string();
  }

  os << "\n[2] Global-layer delay-vs-thermal checks:\n";
  report::Table checks({"Metal", "l_opt [mm]", "s_opt", "r_eff", "j_peak",
                        "limit", "margin", "verdict"});
  for (const auto& c : global_checks)
    checks.add_row({report::level_label(c.level),
                    report::fmt(c.optimal.l_opt * 1e3, 2),
                    report::fmt(c.sim.size_used, 0),
                    report::fmt(c.sim.duty_effective, 3),
                    report::fmt(to_MA_per_cm2(c.sim.j_peak), 3),
                    report::fmt(to_MA_per_cm2(c.thermal_limit.j_peak), 3),
                    report::fmt(c.jpeak_margin, 2),
                    c.pass ? "PASS" : "FAIL"});
  os << checks.to_string();

  os << "\n[3] ESD screen (top layer): " << esd::to_string(esd.state)
     << ", T_peak = " << report::fmt(kelvin_to_celsius(esd.peak_temperature), 0)
     << " C, EM derating " << report::fmt(esd.em_lifetime_derating, 2) << "\n";

  os << "\n[4] Chip-level EM budget: usable j0 = "
     << report::fmt(to_MA_per_cm2(j0_chip_budgeted), 3) << " MA/cm^2\n";

  os << "\nOverall: global layers "
     << (all_global_layers_pass ? "PASS" : "FAIL") << ", ESD "
     << (esd_safe ? "SAFE" : "NEEDS DEDICATED SIZING") << "\n";
  return os.str();
}

std::string SignoffReport::to_json(int indent) const {
  using report::Json;
  Json root = Json::object();
  root.set("technology", Json::string(technology));

  Json rules = Json::array();
  for (const auto& c : design_rules) {
    Json cell = Json::object();
    cell.set("level", Json::integer(c.level))
        .set("dielectric", Json::string(c.dielectric))
        .set("duty_cycle", Json::number(c.duty_cycle))
        .set("jpeak_MA_cm2", Json::number(to_MA_per_cm2(c.sol.j_peak)))
        .set("jrms_MA_cm2", Json::number(to_MA_per_cm2(c.sol.j_rms)))
        .set("t_metal_C", Json::number(kelvin_to_celsius(c.sol.t_metal)));
    rules.push(std::move(cell));
  }
  root.set("design_rules", std::move(rules));

  Json checks = Json::array();
  for (const auto& c : global_checks) {
    Json entry = Json::object();
    entry.set("level", Json::integer(c.level))
        .set("l_opt_mm", Json::number(c.optimal.l_opt * 1e3))
        .set("s_opt", Json::number(c.optimal.s_opt))
        .set("r_eff", Json::number(c.sim.duty_effective))
        .set("jpeak_delay_MA_cm2", Json::number(to_MA_per_cm2(c.sim.j_peak)))
        .set("jpeak_limit_MA_cm2",
             Json::number(to_MA_per_cm2(c.thermal_limit.j_peak)))
        .set("margin", Json::number(c.jpeak_margin))
        .set("pass", Json::boolean(c.pass))
        .set("solver", report::diag_to_json(c.thermal_limit.diag));
    checks.push(std::move(entry));
  }
  root.set("global_checks", std::move(checks));

  Json esd_obj = Json::object();
  esd_obj.set("state", Json::string(esd::to_string(esd.state)))
      .set("t_peak_C", Json::number(kelvin_to_celsius(esd.peak_temperature)))
      .set("em_derating", Json::number(esd.em_lifetime_derating));
  root.set("esd", std::move(esd_obj));

  root.set("j0_chip_budgeted_MA_cm2",
           Json::number(to_MA_per_cm2(j0_chip_budgeted)));
  root.set("all_global_layers_pass", Json::boolean(all_global_layers_pass));
  root.set("esd_safe", Json::boolean(esd_safe));
  // Resilience state of the ambient run (deadline, cancellation, heartbeat,
  // checkpoint counters) rides along whenever the caller armed one.
  if (const RunContext* run = current_run_context())
    root.set("run", report::run_to_json(*run));
  // Service front-end state (admission counters, breaker transitions) rides
  // along whenever a dsmt::service::Server is alive and publishing. Invoked
  // under the slot lock so a Server destroyed concurrently on another
  // thread yields "no section" instead of a use-after-free.
  Json service = Json::null();
  if (invoke_signoff_service_source(service))
    root.set("service", std::move(service));
  return root.dump(indent);
}

}  // namespace dsmt::core
