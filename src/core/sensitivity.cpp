#include "core/sensitivity.h"

#include <cmath>
#include <functional>
#include <stdexcept>

#include "selfconsistent/sweep.h"

namespace dsmt::core {

namespace {

/// Mutable copy of all inputs so each knob can be perturbed uniformly.
struct Knobs {
  tech::Technology technology;
  materials::Dielectric gap_fill;
  double phi;
  double duty_cycle;
  double j0;
  int level;
};

selfconsistent::Solution solve_knobs(const Knobs& k) {
  return selfconsistent::solve(selfconsistent::make_level_problem(
      k.technology, k.level, k.gap_fill, k.phi, k.duty_cycle, A_per_m2(k.j0)));
}

Sensitivity probe(const std::string& name, double nominal,
                  const std::function<void(Knobs&, double)>& apply,
                  const Knobs& base, double rel_step) {
  Knobs up = base;
  apply(up, 1.0 + rel_step);
  Knobs dn = base;
  apply(dn, 1.0 - rel_step);
  const auto s_up = solve_knobs(up);
  const auto s_dn = solve_knobs(dn);
  const auto s_0 = solve_knobs(base);

  Sensitivity s;
  s.parameter = name;
  s.nominal = nominal;
  const double dlnp = std::log((1.0 + rel_step) / (1.0 - rel_step));
  s.s_jpeak = std::log(s_up.j_peak / s_dn.j_peak) / dlnp;
  s.s_tmetal = (s_up.t_metal - s_dn.t_metal) / dlnp;
  (void)s_0;
  return s;
}

}  // namespace

std::vector<Sensitivity> design_rule_sensitivities(
    const tech::Technology& technology, int level,
    const materials::Dielectric& gap_fill, double phi, double duty_cycle,
    double j0, double rel_step) {
  if (rel_step <= 0.0 || rel_step >= 0.5)
    throw std::invalid_argument("design_rule_sensitivities: bad step");
  const Knobs base{technology, gap_fill, phi, duty_cycle, j0, level};
  const auto& layer = technology.layer(level);

  std::vector<Sensitivity> out;
  out.push_back(probe(
      "line width W_m", layer.width,
      [level](Knobs& k, double f) {
        for (auto& l : k.technology.layers)
          if (l.level == level) {
            l.pitch += l.width * (f - 1.0);  // keep spacing
            l.width *= f;
          }
      },
      base, rel_step));
  out.push_back(probe(
      "metal thickness t_m", layer.thickness,
      [level](Knobs& k, double f) {
        for (auto& l : k.technology.layers)
          if (l.level == level) l.thickness *= f;
      },
      base, rel_step));
  out.push_back(probe(
      "stack thickness b", 0.0,
      [](Knobs& k, double f) {
        for (auto& l : k.technology.layers) l.ild_below *= f;
      },
      base, rel_step));
  out.push_back(probe(
      "gap-fill K_th", gap_fill.k_thermal,
      [](Knobs& k, double f) { k.gap_fill.k_thermal *= f; }, base, rel_step));
  out.push_back(probe(
      "ILD K_th", technology.ild.k_thermal,
      [](Knobs& k, double f) { k.technology.ild.k_thermal *= f; }, base,
      rel_step));
  out.push_back(probe(
      "activation energy Q", technology.metal.em.activation_energy_ev,
      [](Knobs& k, double f) {
        k.technology.metal.em.activation_energy_ev *= f;
      },
      base, rel_step));
  out.push_back(probe(
      "design-rule j0", j0, [](Knobs& k, double f) { k.j0 *= f; }, base,
      rel_step));
  out.push_back(probe(
      "duty cycle r", duty_cycle,
      [](Knobs& k, double f) { k.duty_cycle = std::min(1.0, k.duty_cycle * f); },
      base, rel_step));
  out.push_back(probe(
      "spreading phi", phi, [](Knobs& k, double f) { k.phi *= f; }, base,
      rel_step));
  out.push_back(probe(
      "resistivity rho_ref", technology.metal.rho_ref,
      [](Knobs& k, double f) { k.technology.metal.rho_ref *= f; }, base,
      rel_step));
  return out;
}

}  // namespace dsmt::core
