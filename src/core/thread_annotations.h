// Compile-time thread-safety layer: Clang capability annotations plus the
// annotated mutex vocabulary every concurrent subsystem must use.
//
// The macros wrap Clang's thread-safety analysis attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under Clang with
// DSMT_THREAD_SAFETY=ON the library builds with -Wthread-safety promoted to
// an error, so a guarded member read without its mutex, a missing unlock, or
// a lock-order inversion is a *build failure*, not a review finding. Under
// any other compiler every macro expands to nothing and the wrappers compile
// down to their std counterparts — release outputs are unaffected.
//
// Policy (enforced by dsmt_lint rules R9/R10):
//   * Annotated subsystems (src/parallel/, src/service/, core/signoff,
//     core/run_context, core/checkpoint, numeric/fault_injection) must use
//     dsmt::Mutex / dsmt::MutexLock / dsmt::CondVar from this header — raw
//     std::mutex / std::lock_guard / std::unique_lock are fenced out (R9),
//     because the raw types carry no capability and silently opt a data
//     structure out of the analysis.
//   * Every mutable global or primitive/container member in those
//     subsystems must be std::atomic, DSMT_GUARDED_BY-annotated, const,
//     thread_local, or carry an explicit `R10-ok:` justification (R10).
//
// Lock hierarchy (documented here, asserted by the analysis where the
// acquisition order is visible to it; see DESIGN.md "Lock hierarchy"):
//   level 0 (leaf, never held while calling out):
//     parallel::Pool::mu_, parallel::detail::FirstError::mu,
//     parallel::detail::BlockLatch::mu_, service::CircuitBreaker::mu_,
//     service::ReferenceCache::mu_, core::RunContext::CheckpointLog::mu,
//     numeric::fault g_plan_mu
//   level 1 (may hold while doing I/O or invoking a registered callback,
//     must not acquire another level-1 lock):
//     core::SweepCheckpoint::mu_, core::signoff ServiceSourceSlot::mu,
//     parallel g_config_mu
// No path in the library acquires two of these locks at once except
// SweepCheckpoint::mu_ -> CheckpointLog::mu (level 1 -> level 0, via
// publish_locked -> RunContext::note_checkpoint), which respects the order.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define DSMT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DSMT_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a capability (lockable). The string names the capability
/// kind in diagnostics ("mutex").
#define DSMT_CAPABILITY(x) DSMT_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime equals a critical section.
#define DSMT_SCOPED_CAPABILITY DSMT_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the named capability.
#define DSMT_GUARDED_BY(x) DSMT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the named capability.
#define DSMT_PT_GUARDED_BY(x) DSMT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held on entry (and leaves it held).
#define DSMT_REQUIRES(...) \
  DSMT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability (not held on entry, held on exit).
#define DSMT_ACQUIRE(...) \
  DSMT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on exit).
#define DSMT_RELEASE(...) \
  DSMT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function returns true when it acquired the capability.
#define DSMT_TRY_ACQUIRE(...) \
  DSMT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock fence:
/// public entry points of a class exclude their own mutex).
#define DSMT_EXCLUDES(...) DSMT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares lock-order edges for the analysis.
#define DSMT_ACQUIRED_BEFORE(...) \
  DSMT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define DSMT_ACQUIRED_AFTER(...) \
  DSMT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define DSMT_RETURN_CAPABILITY(x) DSMT_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot follow (must carry a comment
/// explaining why it is correct).
#define DSMT_NO_THREAD_SAFETY_ANALYSIS \
  DSMT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dsmt {

/// std::mutex with a capability the analysis can track. Level in the lock
/// hierarchy is a property of the *instance* (see the header comment), not
/// of this type.
class DSMT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DSMT_ACQUIRE() { mu_.lock(); }
  void unlock() DSMT_RELEASE() { mu_.unlock(); }
  bool try_lock() DSMT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII critical section over a dsmt::Mutex — the only sanctioned way to
/// hold one (a bare lock()/unlock() pair cannot survive an exception).
class DSMT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DSMT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DSMT_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to dsmt::Mutex. wait() requires the mutex held;
/// it atomically releases it for the block and re-acquires it before
/// returning, exactly like std::condition_variable — the annotation models
/// the externally visible state (held on entry, held on exit).
///
/// Spurious wakeups are real: every wait() call site must sit in a loop that
/// re-checks its predicate under the lock (clang-tidy
/// bugprone-spuriously-wake-up-functions enforces the same rule for the raw
/// std types).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// One blocking wait; may wake spuriously (call in a predicate loop).
  void wait(Mutex& mu) DSMT_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the MutexLock at the call site stays
    // the one true owner. No lock/unlock happens outside the wait itself.
    std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);
    cv_.wait(relock);
    relock.release();
  }

  /// Blocking wait bounded by `timeout` (relative, monotonic); may return
  /// early or spuriously — call in a predicate loop exactly like wait().
  void wait_for(Mutex& mu, std::chrono::nanoseconds timeout)
      DSMT_REQUIRES(mu) {
    std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);
    cv_.wait_for(relock, timeout);
    relock.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dsmt
