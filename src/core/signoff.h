// One-call chip-level thermal/EM sign-off.
//
// Runs the complete flow the paper motivates, in one structured report:
//   1. self-consistent design-rule tables for every metal level and
//      dielectric flow (signal + power duties),
//   2. delay-optimal repeater checks on the global layers
//      (j_peak-delay vs j_peak-self-consistent),
//   3. an ESD screen of the I/O-relevant top layer,
//   4. the chip-level EM budget derating,
// and renders the result as an aligned text report.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "report/json.h"

namespace dsmt::core {

struct SignoffOptions {
  double j0 = 6e9;                  ///< EM design rule [A/m^2]
  std::vector<materials::Dielectric> gap_fills =
      materials::paper_dielectrics();
  double k_rel_electrical = 4.0;    ///< insulator permittivity for delay
  double esd_hbm_volts = 2000.0;    ///< qualification target
  std::size_t em_population = 1000000;  ///< stressed lines for budgeting
  double em_sigma = 0.5;
  EngineOptions engine;
};

struct SignoffReport {
  std::string technology;
  std::vector<selfconsistent::TableCell> design_rules;  ///< all levels/flows
  std::vector<LayerCheck> global_checks;                ///< top layers
  esd::StressAssessment esd;                            ///< top layer, HBM
  double j0_chip_budgeted = 0.0;  ///< j0 after population derating [A/m^2]
  bool all_global_layers_pass = false;
  bool esd_safe = false;

  /// Renders the full report as aligned text tables.
  std::string to_text() const;

  /// Serializes the full report as JSON (for downstream tooling).
  std::string to_json(int indent = 2) const;
};

/// Runs the sign-off for a technology. Global layers = the top two (or the
/// top four on stacks of 8+ levels), matching the paper's table layout.
SignoffReport run_signoff(const tech::Technology& technology,
                          const SignoffOptions& options = {});

/// Registers the provider of the sign-off report's "service" JSON section
/// (breaker state, admission counters — see service/server.h). `owner`
/// identifies the registrant so a stale owner cannot clear a newer one;
/// the latest registration wins. SignoffReport::to_json invokes the source
/// while holding the slot lock, so the source must not call back into this
/// registration API (it would self-deadlock).
void set_signoff_service_source(const void* owner,
                                std::function<report::Json()> source);

/// Clears the registration if (and only if) `owner` still holds it. Blocks
/// until any in-flight to_json invocation of the source returns, so after
/// this call the owner may be destroyed safely.
void clear_signoff_service_source(const void* owner);

/// Copy of the registered provider, for introspection; empty when none is
/// registered. Unlike to_json, a copy invoked by the caller does NOT hold
/// the slot lock — only invoke it while the registrant is known to outlive
/// the call.
std::function<report::Json()> signoff_service_source();

}  // namespace dsmt::core
