// Zero-overhead dimensional types for every physical quantity that crosses a
// public API boundary, plus the physical constants and unit-conversion
// helpers that used to live in numeric/constants.h (which now forwards here).
//
// Design.
//   * A Quantity is a single double tagged at compile time with SI base
//     dimension exponents <metre, kilogram, second, ampere, kelvin> and an
//     extra Tag that separates absolute temperatures (Kelvin) from
//     temperature differences (CelsiusDelta).
//   * Construction from a raw double is *explicit*: passing a bare double --
//     or a quantity of the wrong dimension -- where a Kelvin is expected is a
//     compile error. Two user-defined conversions are never chained, so
//     CurrentDensity -> double -> Kelvin cannot happen implicitly.
//   * Conversion *to* double is implicit. This is the interop shim: typed
//     values flow into legacy double-based code (tests/, bench/, examples/
//     and internal solvers) without edits, and migration can proceed
//     incrementally.
//   * Arithmetic is constexpr and dimension-aware: products and quotients
//     compute the result dimension from the operand dimensions, so
//     identities like  [j]^2 [rho] [H] = temperature rise  are checked by
//     static_assert below.
//
// Internal unit policy (SI unless stated):
//   length        metres            temperature  kelvin
//   current       amperes           resistivity  ohm-metre
//   current dens. A/m^2             therm. cond. W/(m*K)
//   capacitance   farads            heat cap.    J/(m^3*K)
//
// The DAC-99 paper quotes current densities in MA/cm^2 and lengths in um;
// the factory helpers below keep paper-facing code readable.
#pragma once

#include <compare>
#include <string>
#include <type_traits>

namespace dsmt::units {

/// One physical quantity: a double with compile-time SI dimension exponents
/// <M = metre, Kg = kilogram, S = second, A = ampere, K = kelvin>. Tag = 1
/// marks absolute (point-like) quantities whose differences live in the
/// Tag = 0 space of the same dimension (Kelvin vs CelsiusDelta).
template <int M, int Kg, int S, int A, int K, int Tag = 0>
class Quantity {
 public:
  constexpr Quantity() = default;
  /// Explicit on purpose: raw doubles must be blessed by a factory helper
  /// (um, MA_per_cm2, ...) or an explicit Quantity{...} at the call site.
  explicit constexpr Quantity(double raw) : v_(raw) {}

  /// The raw value in SI base units.
  [[nodiscard]] constexpr double value() const { return v_; }
  /// Implicit interop shim: typed values decay into legacy double code.
  constexpr operator double() const { return v_; }

  constexpr Quantity operator-() const { return Quantity{-v_}; }
  constexpr Quantity operator+() const { return *this; }

  constexpr Quantity& operator+=(Quantity o) { v_ += o.v_; return *this; }
  constexpr Quantity& operator-=(Quantity o) { v_ -= o.v_; return *this; }
  constexpr Quantity& operator*=(double s) { v_ *= s; return *this; }
  constexpr Quantity& operator/=(double s) { v_ /= s; return *this; }

  // Same-type sums are only meaningful for difference-like (Tag 0)
  // quantities; absolute temperatures get their affine operators below.
  friend constexpr Quantity operator+(Quantity a, Quantity b)
    requires(Tag == 0) { return Quantity{a.v_ + b.v_}; }
  friend constexpr Quantity operator-(Quantity a, Quantity b)
    requires(Tag == 0) { return Quantity{a.v_ - b.v_}; }

  friend constexpr Quantity operator*(Quantity a, double s) { return Quantity{a.v_ * s}; }
  friend constexpr Quantity operator*(double s, Quantity a) { return Quantity{s * a.v_}; }
  friend constexpr Quantity operator/(Quantity a, double s) { return Quantity{a.v_ / s}; }

  friend constexpr auto operator<=>(Quantity, Quantity) = default;

 private:
  double v_ = 0.0;
};

// Dimension-aware products and quotients: the result dimension is the
// exponent sum/difference, always in the difference-like (Tag 0) space.
template <int M1, int Kg1, int S1, int A1, int K1, int T1,
          int M2, int Kg2, int S2, int A2, int K2, int T2>
constexpr Quantity<M1 + M2, Kg1 + Kg2, S1 + S2, A1 + A2, K1 + K2>
operator*(Quantity<M1, Kg1, S1, A1, K1, T1> a,
          Quantity<M2, Kg2, S2, A2, K2, T2> b) {
  return Quantity<M1 + M2, Kg1 + Kg2, S1 + S2, A1 + A2, K1 + K2>{
      a.value() * b.value()};
}

template <int M1, int Kg1, int S1, int A1, int K1, int T1,
          int M2, int Kg2, int S2, int A2, int K2, int T2>
constexpr Quantity<M1 - M2, Kg1 - Kg2, S1 - S2, A1 - A2, K1 - K2>
operator/(Quantity<M1, Kg1, S1, A1, K1, T1> a,
          Quantity<M2, Kg2, S2, A2, K2, T2> b) {
  return Quantity<M1 - M2, Kg1 - Kg2, S1 - S2, A1 - A2, K1 - K2>{
      a.value() / b.value()};
}

template <int M, int Kg, int S, int A, int K, int T>
constexpr Quantity<-M, -Kg, -S, -A, -K>
operator/(double s, Quantity<M, Kg, S, A, K, T> q) {
  return Quantity<-M, -Kg, -S, -A, -K>{s / q.value()};
}

// --- the named quantities of the Eq. 13 electro-thermal solve ---------------
/// Absolute temperature [K].
using Kelvin = Quantity<0, 0, 0, 0, 1, 1>;
/// Temperature difference [K] (== a difference in degC).
using CelsiusDelta = Quantity<0, 0, 0, 0, 1>;
/// Length [m].
using Metres = Quantity<1, 0, 0, 0, 0>;
/// Time [s].
using Seconds = Quantity<0, 0, 1, 0, 0>;
/// Current density [A/m^2].
using CurrentDensity = Quantity<-2, 0, 0, 1, 0>;
/// Electrical resistivity [Ohm*m] = [kg*m^3/(s^3*A^2)].
using Resistivity = Quantity<3, 1, -3, -2, 0>;
/// Thermal conductivity [W/(m*K)] = [kg*m/(s^3*K)].
using ThermalConductivity = Quantity<1, 1, -3, 0, -1>;
/// Per-unit-length thermal resistance R'_th [K*m/W] (paper Eq. 15).
using ThermalResistancePerLength = Quantity<-1, -1, 3, 0, 1>;
/// Heating coefficient H [K*m^3/W] of Eq. 9: dT = j_rms^2 rho(T) H.
using HeatingCoefficient = Quantity<1, -1, 3, 0, 1>;
/// A dimensionless ratio (result of like-for-like quotients).
using Dimensionless = Quantity<0, 0, 0, 0, 0>;

// Affine temperature algebra: points differ by deltas.
constexpr CelsiusDelta operator-(Kelvin a, Kelvin b) {
  return CelsiusDelta{a.value() - b.value()};
}
constexpr Kelvin operator+(Kelvin a, CelsiusDelta d) {
  return Kelvin{a.value() + d.value()};
}
constexpr Kelvin operator+(CelsiusDelta d, Kelvin a) {
  return Kelvin{a.value() + d.value()};
}
constexpr Kelvin operator-(Kelvin a, CelsiusDelta d) {
  return Kelvin{a.value() - d.value()};
}

// --- static dimension checks ------------------------------------------------
// Zero overhead: a Quantity is exactly a double in memory and in registers.
static_assert(sizeof(Kelvin) == sizeof(double));
static_assert(sizeof(CurrentDensity) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Kelvin>);
static_assert(std::is_standard_layout_v<CurrentDensity>);
// No silent injection of raw or wrongly-dimensioned values.
static_assert(!std::is_convertible_v<double, Kelvin>);
static_assert(!std::is_convertible_v<Kelvin, CurrentDensity>);
static_assert(!std::is_convertible_v<CelsiusDelta, Kelvin>);
// Eq. 15: H = t_m * W_m * R'_th.
static_assert(std::is_same_v<
    decltype(Metres{} * Metres{} * ThermalResistancePerLength{}),
    HeatingCoefficient>);
// Eq. 9: dT = j_rms^2 * rho * H is a temperature rise.
static_assert(std::is_same_v<
    decltype(CurrentDensity{} * CurrentDensity{} * Resistivity{} *
             HeatingCoefficient{}),
    CelsiusDelta>);
// R'_th integrates a conductivity over the path: [m]/([W/(m*K)]*[m]) = [K*m/W].
static_assert(std::is_same_v<
    decltype(Metres{} / (ThermalConductivity{} * Metres{})),
    ThermalResistancePerLength>);
// Like-for-like ratios are dimensionless.
static_assert(std::is_same_v<decltype(Metres{} / Metres{}), Dimensionless>);

// --- human-readable formatting (units.cpp) ----------------------------------
std::string to_string(Kelvin t);
std::string to_string(CelsiusDelta dt);
std::string to_string(Metres length);
std::string to_string(Seconds t);
std::string to_string(CurrentDensity j);
std::string to_string(Resistivity rho);
std::string to_string(ThermalConductivity k);
std::string to_string(ThermalResistancePerLength rth);
std::string to_string(HeatingCoefficient h);

}  // namespace dsmt::units

namespace dsmt {

// --- physical constants -----------------------------------------------------
/// Boltzmann constant [J/K].
inline constexpr double kBoltzmannJ = 1.380649e-23;
/// Boltzmann constant [eV/K] — Black's equation uses Q in eV.
inline constexpr double kBoltzmannEv = 8.617333262e-5;
/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;
/// Absolute zero offset: 0 degC in kelvin [K].
inline constexpr double kCelsiusOffset = 273.15;
/// Vacuum permittivity [F/m].
inline constexpr double kEpsilon0 = 8.8541878128e-12;
/// Reference chip (silicon junction) temperature used by the paper: 100 degC.
inline constexpr units::Kelvin kTrefK{373.15};

// --- temperature ------------------------------------------------------------
/// Degrees Celsius [degC] -> absolute temperature.
constexpr units::Kelvin celsius_to_kelvin(double t_c) {
  return units::Kelvin{t_c + kCelsiusOffset};
}
/// Absolute temperature [K] -> degrees Celsius.
constexpr double kelvin_to_celsius(double t_k) { return t_k - kCelsiusOffset; }
/// Absolute temperature from a raw kelvin value [K].
constexpr units::Kelvin kelvin(double t_k) { return units::Kelvin{t_k}; }
/// Temperature difference from a raw kelvin (== degC) difference [K].
constexpr units::CelsiusDelta kelvin_delta(double dt) {
  return units::CelsiusDelta{dt};
}

// --- length -----------------------------------------------------------------
/// Length from micrometres [um].
constexpr units::Metres um(double v) { return units::Metres{v * 1e-6}; }
/// Length from nanometres [nm].
constexpr units::Metres nm(double v) { return units::Metres{v * 1e-9}; }
/// Length from raw metres [m].
constexpr units::Metres metres(double v) { return units::Metres{v}; }
/// Length [m] -> micrometres.
constexpr double to_um(double m) { return m * 1e6; }

// --- current density --------------------------------------------------------
/// Current density from MA/cm^2: 1 MA/cm^2 = 1e6 A / 1e-4 m^2 = 1e10 A/m^2.
constexpr units::CurrentDensity MA_per_cm2(double v) {
  return units::CurrentDensity{v * 1e10};
}
/// Current density from raw A/m^2.
constexpr units::CurrentDensity A_per_m2(double v) {
  return units::CurrentDensity{v};
}
/// Current density [A/m^2] -> MA/cm^2.
constexpr double to_MA_per_cm2(double j) { return j * 1e-10; }

// --- resistivity ------------------------------------------------------------
/// Resistivity from micro-ohm-cm: 1 uOhm-cm = 1e-8 Ohm-m.
constexpr units::Resistivity uohm_cm(double v) {
  return units::Resistivity{v * 1e-8};
}
/// Resistivity from raw Ohm-m.
constexpr units::Resistivity ohm_m(double v) { return units::Resistivity{v}; }

// --- time -------------------------------------------------------------------
/// Time from nanoseconds [ns].
constexpr units::Seconds ns(double v) { return units::Seconds{v * 1e-9}; }
/// Time from picoseconds [ps].
constexpr units::Seconds ps(double v) { return units::Seconds{v * 1e-12}; }
/// Time from raw seconds [s].
constexpr units::Seconds seconds(double v) { return units::Seconds{v}; }

// --- thermal transport ------------------------------------------------------
/// Thermal conductivity from raw W/(m*K).
constexpr units::ThermalConductivity W_per_mK(double v) {
  return units::ThermalConductivity{v};
}
/// Per-unit-length thermal resistance from raw K*m/W.
constexpr units::ThermalResistancePerLength K_m_per_W(double v) {
  return units::ThermalResistancePerLength{v};
}

// --- capacitance ------------------------------------------------------------
// Capacitances stay raw doubles [F]: they never cross the thermal/EM solver
// boundary that the strong types guard.
constexpr double fF(double v) { return v * 1e-15; }  ///< femtofarads -> [F]
constexpr double pF(double v) { return v * 1e-12; }  ///< picofarads  -> [F]

}  // namespace dsmt
