#include "materials/metal.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "numeric/constants.h"

// GCC 12 emits a bogus -Wrestrict for short-string-literal assignments once
// the basic_string internals are inlined at -O2 (upstream PR105329); the
// factory functions below trip it on `m.name = "W"`. Suppress file-locally
// so -Werror builds stay clean without losing the warning elsewhere.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

namespace dsmt::materials {

double Metal::resistivity(double temperature_k) const {
  const double rho = rho_ref.value() * (1.0 + tcr * (temperature_k - t_ref));
  return std::max(rho, 0.01 * rho_ref.value());
}

double Metal::sheet_resistance(double thickness_m, double temperature_k) const {
  if (thickness_m <= 0.0)
    throw std::invalid_argument("Metal::sheet_resistance: thickness <= 0");
  return resistivity(temperature_k) / thickness_m;
}

Metal make_copper() {
  Metal m;
  m.name = "Cu";
  m.rho_ref = dsmt::uohm_cm(1.67);  // paper Fig. 2 caption, at 100 degC
  m.t_ref = dsmt::kTrefK;
  m.tcr = 6.8e-3;
  m.k_thermal = dsmt::W_per_mK(395.0);
  m.c_volumetric = 3.45e6;
  m.t_melt = units::Kelvin{1357.8};       // 1084.6 degC
  m.latent_heat = 1.83e9;  // 204.6 kJ/kg * 8960 kg/m^3
  m.em.activation_energy_ev = 0.8;  // Cu interface/surface diffusion
  m.em.current_exponent = 2.0;
  m.em.design_rule_javg = dsmt::MA_per_cm2(0.6);
  return m;
}

Metal make_alcu() {
  Metal m;
  m.name = "AlCu";
  m.rho_ref = dsmt::uohm_cm(3.25);  // Al-0.5%Cu at 100 degC
  m.t_ref = dsmt::kTrefK;
  m.tcr = 3.9e-3;
  m.k_thermal = dsmt::W_per_mK(200.0);
  m.c_volumetric = 2.44e6;
  m.t_melt = units::Kelvin{933.5};        // ~660 degC
  m.latent_heat = 1.08e9;  // 398 kJ/kg * 2700 kg/m^3
  m.em.activation_energy_ev = 0.7;  // paper: ~0.7 eV for AlCu
  m.em.current_exponent = 2.0;
  m.em.design_rule_javg = dsmt::MA_per_cm2(0.6);
  return m;
}

Metal make_aluminum() {
  Metal m = make_alcu();
  m.name = "Al";
  m.rho_ref = dsmt::uohm_cm(3.55);  // pure Al at 100 degC
  m.tcr = 4.2e-3;
  m.k_thermal = dsmt::W_per_mK(237.0);
  return m;
}

Metal make_tungsten() {
  Metal m;
  m.name = "W";
  m.rho_ref = dsmt::uohm_cm(7.0);  // CVD W film at 100 degC
  m.t_ref = dsmt::kTrefK;
  m.tcr = 4.5e-3;
  m.k_thermal = dsmt::W_per_mK(173.0);
  m.c_volumetric = 2.58e6;
  m.t_melt = units::Kelvin{3695.0};
  m.latent_heat = 3.68e9;
  m.em.activation_energy_ev = 1.0;  // W is effectively EM-immune
  m.em.current_exponent = 2.0;
  m.em.design_rule_javg = dsmt::MA_per_cm2(2.0);
  return m;
}

Metal metal_by_name(const std::string& name) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (key == "cu" || key == "copper") return make_copper();
  if (key == "alcu" || key == "al-cu") return make_alcu();
  if (key == "al" || key == "aluminum" || key == "aluminium")
    return make_aluminum();
  if (key == "w" || key == "tungsten") return make_tungsten();
  std::string msg = "metal_by_name: unknown metal '";
  msg += name;
  msg += '\'';
  throw std::out_of_range(msg);
}

}  // namespace dsmt::materials
