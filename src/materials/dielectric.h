// Inter/intra-level dielectric properties. The paper's Table 1 gives the
// thermal conductivities that drive the entire low-k story: oxide (PETEOS)
// 1.15, HSQ 0.6, polyimide 0.25 W/(m*K).
#pragma once

#include <string>
#include <vector>

#include "core/units.h"

namespace dsmt::materials {

/// An insulating film.
struct Dielectric {
  std::string name;
  double rel_permittivity = 4.0;  ///< k (electrical), relative to eps0 [1]
  units::ThermalConductivity k_thermal{1.15};  ///< thermal conductivity
  double c_volumetric = 1.6e6;    ///< volumetric heat capacity [J/(m^3*K)]
};

/// PETEOS silicon dioxide: k_el = 4.0, K_th = 1.15 W/m*K (paper Table 1).
Dielectric make_oxide();
/// Hydrogen silsesquioxane: k_el = 2.9, K_th = 0.6 W/m*K (paper Table 1).
Dielectric make_hsq();
/// Polyimide: k_el = 2.9..3.2 (we use 3.0), K_th = 0.25 W/m*K (paper Table 1).
Dielectric make_polyimide();
/// Fluorinated silicate glass: k_el = 3.5, K_th = 1.0 W/m*K.
Dielectric make_fsg();
/// Silica aerogel / xerogel (ultra low-k extension case): k_el = 2.0,
/// K_th = 0.1 W/m*K.
Dielectric make_aerogel();
/// Air gap (for bounding analyses): k_el = 1.0, K_th = 0.026 W/m*K.
Dielectric make_air();

/// Case-insensitive lookup ("oxide", "hsq", "polyimide", "fsg", "aerogel",
/// "air"). Throws std::out_of_range on unknown names.
Dielectric dielectric_by_name(const std::string& name);

/// The three dielectrics of the paper's tables, in paper order.
std::vector<Dielectric> paper_dielectrics();

}  // namespace dsmt::materials
