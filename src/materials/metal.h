// Interconnect metal properties: temperature-dependent resistivity, thermal
// transport, thermodynamics for melt/ESD analysis, and electromigration
// parameters (Black's-equation activation energy, exponent, and the
// technology's design-rule current density j_o).
//
// Quantities that cross the solver boundary are strong-typed (core/units.h);
// the remaining coefficients are raw doubles with their unit in brackets.
#pragma once

#include <string>

#include "core/units.h"

namespace dsmt::materials {

/// Electromigration parameters for Black's equation
///   TTF = A * j^-n * exp(Q / (kB * T)).
struct EmParameters {
  double activation_energy_ev = 0.7;  ///< Q [eV] (grain-boundary diffusion)
  double current_exponent = 2.0;      ///< n [1] (typically 2 in use conditions)
  /// Design-rule average current density at T_ref giving the lifetime goal
  /// (e.g. 10 yr at 100 degC) [A/m^2]. The paper uses 0.6 MA/cm^2 for AlCu
  /// and up to 3x that for Cu.
  units::CurrentDensity design_rule_javg{6.0e9};
};

/// An interconnect metal. Resistivity follows the linear model used in the
/// paper: rho(T) = rho_ref * (1 + tcr * (T - T_ref)).
struct Metal {
  std::string name;
  units::Resistivity rho_ref{1.67e-8};  ///< resistivity at reference temp
  units::Kelvin t_ref = kTrefK;         ///< reference temperature for rho_ref
  double tcr = 6.8e-3;                  ///< temperature coefficient of rho [1/K]
  units::ThermalConductivity k_thermal{400.0};  ///< bulk thermal conductivity
  double c_volumetric = 3.45e6;  ///< volumetric heat capacity [J/(m^3*K)]
  units::Kelvin t_melt{1357.8};  ///< melting point
  double latent_heat = 1.77e9;   ///< volumetric heat of fusion [J/m^3]
  EmParameters em;

  /// rho(T) [Ohm*m] at absolute temperature [K]; clamped below at 1% of
  /// rho_ref to stay physical if a caller extrapolates far below t_ref.
  double resistivity(double temperature_k) const;
  /// Strong-typed form of the same model.
  units::Resistivity resistivity(units::Kelvin temperature) const {
    return units::Resistivity{resistivity(temperature.value())};
  }
  /// Any other dimension in the temperature slot is a compile error.
  template <int M, int Kg, int S, int A, int K, int Tag>
  double resistivity(units::Quantity<M, Kg, S, A, K, Tag>) const = delete;

  /// Sheet resistance [Ohm/sq] of a film of thickness [m] at temperature [K].
  double sheet_resistance(double thickness_m, double temperature_k) const;
  /// Strong-typed form.
  double sheet_resistance(units::Metres thickness,
                          units::Kelvin temperature) const {
    return sheet_resistance(thickness.value(), temperature.value());
  }
};

/// Copper with the paper's Fig. 2 resistivity model (rho = 1.67 uOhm*cm at
/// 100 degC, TCR 6.8e-3 /degC) and Cu bulk thermal/thermodynamic data.
Metal make_copper();

/// Al-0.5%Cu alloy: rho = 3.25 uOhm*cm at 100 degC, TCR 3.9e-3 /degC,
/// Q = 0.7 eV, melting 660 degC. Matches the paper's AlCu analyses.
Metal make_alcu();

/// Pure aluminum (reference / unit tests).
Metal make_aluminum();

/// Tungsten (via/plug material; used by the ESD sizing example).
Metal make_tungsten();

/// Looks a metal up by case-insensitive name ("cu", "alcu", "al", "w").
/// Throws std::out_of_range for unknown names.
Metal metal_by_name(const std::string& name);

}  // namespace dsmt::materials
