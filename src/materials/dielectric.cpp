#include "materials/dielectric.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace dsmt::materials {

Dielectric make_oxide() { return {"Oxide", 4.0, dsmt::W_per_mK(1.15), 1.65e6}; }
Dielectric make_hsq() { return {"HSQ", 2.9, dsmt::W_per_mK(0.60), 1.2e6}; }
Dielectric make_polyimide() {
  return {"Polyimide", 3.0, dsmt::W_per_mK(0.25), 1.55e6};
}
Dielectric make_fsg() { return {"FSG", 3.5, dsmt::W_per_mK(1.00), 1.6e6}; }
Dielectric make_aerogel() {
  return {"Aerogel", 2.0, dsmt::W_per_mK(0.10), 0.3e6};
}
Dielectric make_air() { return {"Air", 1.0, dsmt::W_per_mK(0.026), 1.2e3}; }

Dielectric dielectric_by_name(const std::string& name) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (key == "oxide" || key == "sio2" || key == "peteos") return make_oxide();
  if (key == "hsq") return make_hsq();
  if (key == "polyimide" || key == "pi") return make_polyimide();
  if (key == "fsg" || key == "siof") return make_fsg();
  if (key == "aerogel" || key == "xerogel") return make_aerogel();
  if (key == "air") return make_air();
  std::string msg = "dielectric_by_name: unknown dielectric '";
  msg += name;
  msg += '\'';
  throw std::out_of_range(msg);
}

std::vector<Dielectric> paper_dielectrics() {
  return {make_oxide(), make_hsq(), make_polyimide()};
}

}  // namespace dsmt::materials
