// Length-prefixed framing of the service JSON codec.
//
// One frame = an 8-byte header followed by a UTF-8 JSON payload:
//
//   bytes 0..3   magic "DSM1" (0x44 0x53 0x4D 0x31)
//   bytes 4..7   payload length, unsigned 32-bit big-endian
//   bytes 8..    payload (request or response object, service/request.h)
//
// The header is fixed-size and self-describing, so the reader always knows
// how many bytes it still owes before it can act — the property that makes
// truncation, garbage, and oversize *classifiable* instead of ambiguous:
//
//   * wrong magic      -> kBadMagic: the stream is not speaking this
//                         protocol (an HTTP probe, random bytes). There is
//                         no resync point, so the connection must close
//                         after one well-formed error frame.
//   * declared length  -> kOversized: a frame bigger than the configured
//     over the cap        cap is refused before a single payload byte is
//                         buffered — the length field alone must never
//                         drive an allocation.
//   * EOF mid-frame    -> the decoder reports mid_frame(), letting the
//                         connection distinguish a truncated frame (error
//                         frame, then close) from a clean close between
//                         frames.
//
// The decoder is incremental (feed bytes as they arrive, extract zero or
// more complete frames) and single-threaded by design: each instance
// belongs to one Connection, which belongs to the event loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace dsmt::net {

inline constexpr std::size_t kFrameHeaderBytes = 8;
inline constexpr char kFrameMagic[4] = {'D', 'S', 'M', '1'};
/// Default cap on one frame's payload [bytes]. A design-rule request is a
/// few hundred bytes; 1 MiB leaves room for large batched diagnostics
/// without letting a hostile length field size an allocation.
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{1} << 20;

/// Outcome of asking the decoder for the next frame.
enum class FrameStatus {
  kNeedMore = 0,  ///< incomplete header or payload — keep reading
  kFrame,         ///< a complete payload was extracted
  kBadMagic,      ///< stream is not speaking the protocol (close after error)
  kOversized,     ///< declared length exceeds the cap (close after error)
};

/// Wraps `payload` in a wire frame (header + bytes). The caller enforces
/// any size cap; encoding itself is total for payloads < 2^32 bytes.
std::string encode_frame(const std::string& payload);

/// Incremental frame decoder for one connection's inbound byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Buffers `n` raw bytes from the socket.
  void append(const char* data, std::size_t n);

  /// Extracts the next complete frame into `payload` (kFrame), or reports
  /// why it cannot: kNeedMore (benign), kBadMagic / kOversized (protocol
  /// errors — the decoder is poisoned and keeps returning the same error).
  FrameStatus next(std::string& payload);

  /// True when bytes of an incomplete frame (or partial header) are
  /// buffered — EOF now means the peer truncated a frame.
  bool mid_frame() const { return !poisoned_ && buffer_.size() > consumed_; }

  /// Bytes currently buffered and not yet consumed by a returned frame.
  std::size_t buffered() const { return buffer_.size() - consumed_; }

  std::size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  // R10-ok: a FrameDecoder is owned by one Connection and touched only by
  // the event-loop thread; nothing here is shared across threads.
  std::size_t max_frame_bytes_;  // R10-ok: event-loop-only (see above)
  std::string buffer_;           // R10-ok: event-loop-only (see above)
  std::size_t consumed_ = 0;     // R10-ok: event-loop-only (see above)
  bool poisoned_ = false;        // R10-ok: event-loop-only (see above)
  FrameStatus poison_status_ = FrameStatus::kNeedMore;  // R10-ok: see above
};

}  // namespace dsmt::net
