#include "net/listener.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "core/status.h"

namespace dsmt::net {

namespace {

[[noreturn]] void listen_error(const std::string& step, int err) {
  core::SolverDiag diag;
  const std::string what =
      "net/listener: " + step + " failed: " + std::strerror(err);
  diag.record("net/listener", core::StatusCode::kInvalidInput, 0, 0.0, what);
  throw SolveError(what, diag);
}

}  // namespace

void Listener::open(const Endpoint& endpoint, int backlog) {
  stop();

  if (endpoint.kind == Endpoint::Kind::kUnix) {
    if (endpoint.path.empty())
      listen_error("unix endpoint", EINVAL);
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (endpoint.path.size() >= sizeof addr.sun_path)
      listen_error("unix path '" + endpoint.path + "'", ENAMETOOLONG);
    std::memcpy(addr.sun_path, endpoint.path.c_str(),
                endpoint.path.size() + 1);

    Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
    if (!fd.valid()) listen_error("socket(AF_UNIX)", errno);
    // A stale path from a crashed predecessor would make bind fail with
    // EADDRINUSE even though nothing is listening; unlink first (a live
    // listener on the path keeps its already-bound inode and is unharmed).
    ::unlink(endpoint.path.c_str());
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0)
      listen_error("bind('" + endpoint.path + "')", errno);
    if (::listen(fd.get(), backlog) != 0)
      listen_error("listen('" + endpoint.path + "')", errno);
    fd_ = std::move(fd);
    endpoint_ = endpoint;
    bound_port_ = 0;
    unlink_on_stop_ = true;
    return;
  }

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);

  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) listen_error("socket(AF_INET)", errno);
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) != 0)
    listen_error("setsockopt(SO_REUSEADDR)", errno);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    listen_error("bind(127.0.0.1:" + std::to_string(endpoint.port) + ")",
                 errno);
  if (::listen(fd.get(), backlog) != 0)
    listen_error("listen(tcp)", errno);

  sockaddr_in bound;
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0)
    listen_error("getsockname", errno);

  fd_ = std::move(fd);
  endpoint_ = endpoint;
  bound_port_ = ntohs(bound.sin_port);
  unlink_on_stop_ = false;
}

void Listener::stop() {
  if (!fd_.valid()) return;
  fd_.reset();
  if (unlink_on_stop_) ::unlink(endpoint_.path.c_str());
  unlink_on_stop_ = false;
  bound_port_ = 0;
}

}  // namespace dsmt::net
