#include "net/wire.h"

#include <cstring>

namespace dsmt::net {

std::string encode_frame(const std::string& payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.append(kFrameMagic, sizeof kFrameMagic);
  frame.push_back(static_cast<char>((len >> 24) & 0xFF));
  frame.push_back(static_cast<char>((len >> 16) & 0xFF));
  frame.push_back(static_cast<char>((len >> 8) & 0xFF));
  frame.push_back(static_cast<char>(len & 0xFF));
  frame.append(payload);
  return frame;
}

FrameDecoder::FrameDecoder(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameDecoder::append(const char* data, std::size_t n) {
  if (poisoned_) return;  // the stream is dead; don't buffer more garbage
  // Compact lazily: move unconsumed tail to the front once the consumed
  // prefix dominates, so a pipelining client cannot grow the buffer without
  // bound while staying under the frame cap per frame.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

FrameStatus FrameDecoder::next(std::string& payload) {
  if (poisoned_) return poison_status_;
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return FrameStatus::kNeedMore;
  const char* head = buffer_.data() + consumed_;
  if (std::memcmp(head, kFrameMagic, sizeof kFrameMagic) != 0) {
    poisoned_ = true;
    poison_status_ = FrameStatus::kBadMagic;
    return poison_status_;
  }
  const std::uint32_t len =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(head[4])) << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(head[5])) << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(head[6])) << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(head[7]));
  if (len > max_frame_bytes_) {
    poisoned_ = true;
    poison_status_ = FrameStatus::kOversized;
    return poison_status_;
  }
  if (avail < kFrameHeaderBytes + len) return FrameStatus::kNeedMore;
  payload.assign(head + kFrameHeaderBytes, len);
  consumed_ += kFrameHeaderBytes + len;
  return FrameStatus::kFrame;
}

}  // namespace dsmt::net
