// Listening-socket state machine of the socket front end.
//
// A Listener is a three-state machine:
//
//   kClosed --open()--> kListening --stop()--> kClosed
//                           |
//                           +--drain: the server closes the listener first,
//                              so the OS refuses new connections while
//                              in-flight requests finish.
//
// It binds either a Unix-domain socket (the default transport: filesystem
// permissions are the access control, and no TCP stack sits between the
// chaos tests and the server) or a loopback TCP socket (port 0 = ephemeral,
// bound_port() reports the kernel's choice). The listening fd is always
// non-blocking and close-on-exec; accepting is the server's job
// (socket_io.h accept_connection).
#pragma once

#include <cstdint>
#include <string>

#include "net/socket_io.h"

namespace dsmt::net {

/// Where the server listens.
struct Endpoint {
  enum class Kind { kUnix = 0, kTcp };
  Kind kind = Kind::kUnix;
  /// kUnix: filesystem path of the socket (created on open, unlinked on
  /// close). Must be non-empty for kUnix endpoints.
  std::string path;
  /// kTcp: port to bind on 127.0.0.1 (0 = kernel-assigned ephemeral).
  std::uint16_t port = 0;
};

class Listener {
 public:
  Listener() = default;
  ~Listener() { stop(); }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on `endpoint`. Throws dsmt::SolveError
  /// (kInvalidInput) with the failing step and errno text on failure; the
  /// listener stays closed in that case. A stale Unix socket path left by a
  /// crashed predecessor is unlinked before binding.
  void open(const Endpoint& endpoint, int backlog);

  /// Closes the listening socket (and unlinks a Unix path). Idempotent.
  void stop();

  bool listening() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }
  const Endpoint& endpoint() const { return endpoint_; }
  /// TCP: the actually bound port (resolves port 0). Unix: 0.
  std::uint16_t bound_port() const { return bound_port_; }

 private:
  // R10-ok: a Listener belongs to the event-loop thread; open()/stop() are
  // never called concurrently with each other or with accepts.
  Fd fd_;
  Endpoint endpoint_;              // R10-ok: event-loop-only (see above)
  std::uint16_t bound_port_ = 0;   // R10-ok: event-loop-only (see above)
  bool unlink_on_stop_ = false;    // R10-ok: event-loop-only (see above)
};

}  // namespace dsmt::net
