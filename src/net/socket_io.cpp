#include "net/socket_io.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>

#include "core/thread_annotations.h"
#include "service/retry.h"

namespace dsmt::net {

namespace {

// ---- fault shim state (mirror of numeric/fault_injection.cpp) -----------

std::atomic<bool> g_armed{false};
std::atomic<int> g_op_count{0};
Mutex g_plan_mu;
testing::SocketFaultPlan g_plan DSMT_GUARDED_BY(g_plan_mu);

/// What the armed plan wants done to the data op numbered `op` (1-based).
struct FaultDecision {
  bool inject_eintr = false;   ///< fail once with EINTR before the real call
  bool inject_eagain = false;  ///< lie EAGAIN instead of doing the op
  bool inject_reset = false;   ///< fail ECONNRESET (read) / EPIPE (write)
  std::size_t clamp_len = 0;   ///< 0 = no clamp, else max bytes this op
};

FaultDecision decide(bool is_read, std::size_t len) {
  FaultDecision d;
  if (!g_armed.load(std::memory_order_acquire)) return d;
  const int op = 1 + g_op_count.fetch_add(1, std::memory_order_relaxed);
  testing::SocketFaultPlan plan;
  {
    MutexLock lock(g_plan_mu);
    plan = g_plan;
  }
  if (plan.reset_after >= 0 && op > plan.reset_after) {
    d.inject_reset = true;
    return d;
  }
  if (plan.eintr_period > 0 && op % plan.eintr_period == 0)
    d.inject_eintr = true;
  if (is_read && plan.eagain_period > 0 && op % plan.eagain_period == 0)
    d.inject_eagain = true;
  if (plan.short_io && len > 1) {
    const std::uint64_t draw = service::mix64(
        plan.seed ^ (static_cast<std::uint64_t>(op) << 1) ^ (is_read ? 1 : 0));
    std::size_t clamp = 1 + static_cast<std::size_t>(draw % 7);
    d.clamp_len = clamp < len ? clamp : len;
  }
  return d;
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

void Fd::reset(int fd) {
  // No EINTR retry around close(): on Linux the fd is released even when
  // close() is interrupted, and retrying can close a recycled descriptor.
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

bool IoResult::would_block() const {
  return n < 0 && (error == EAGAIN || error == EWOULDBLOCK);
}

bool IoResult::reset() const {
  return n < 0 && (error == ECONNRESET || error == EPIPE);
}

IoResult read_some(int fd, char* buf, std::size_t len) {
  const FaultDecision fault = decide(/*is_read=*/true, len);
  if (fault.inject_reset) return {-1, ECONNRESET};
  if (fault.inject_eagain) return {-1, EAGAIN};
  const std::size_t want = fault.clamp_len > 0 ? fault.clamp_len : len;
  bool eintr_pending = fault.inject_eintr;
  for (;;) {
    if (eintr_pending) {  // injected EINTR: same retry path as the real one
      eintr_pending = false;
      continue;
    }
    const long n = ::recv(fd, buf, want, 0);
    if (n >= 0) return {n, 0};
    if (errno == EINTR) continue;  // interrupted before any byte: retry
    return {-1, errno};
  }
}

IoResult write_some(int fd, const char* buf, std::size_t len) {
  const FaultDecision fault = decide(/*is_read=*/false, len);
  if (fault.inject_reset) return {-1, EPIPE};
  const std::size_t want = fault.clamp_len > 0 ? fault.clamp_len : len;
  bool eintr_pending = fault.inject_eintr;
  for (;;) {
    if (eintr_pending) {  // injected EINTR: same retry path as the real one
      eintr_pending = false;
      continue;
    }
    // MSG_NOSIGNAL: a peer that closed mid-reply yields EPIPE in the
    // result, never a process-killing SIGPIPE.
    const long n = ::send(fd, buf, want, MSG_NOSIGNAL);
    if (n >= 0) return {n, 0};
    if (errno == EINTR) continue;  // interrupted before any byte: retry
    return {-1, errno};
  }
}

int poll_wait(pollfd* fds, std::size_t nfds, int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const bool bounded = timeout_ms >= 0;
  const Clock::time_point deadline =
      bounded ? Clock::now() + std::chrono::milliseconds(timeout_ms)
              : Clock::time_point{};
  int wait_ms = timeout_ms;
  for (;;) {
    const int rc = ::poll(fds, static_cast<nfds_t>(nfds), wait_ms);
    if (rc >= 0) return rc;
    if (errno != EINTR) return rc;
    // EINTR: re-arm against the monotonic remaining budget so a signal
    // storm cannot stretch the tick.
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      wait_ms = left.count() > 0 ? static_cast<int>(left.count()) : 0;
    }
  }
}

IoResult accept_connection(int listen_fd) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) return {fd, 0};
    if (errno == EINTR) continue;  // interrupted accept: retry
    // A peer that aborted while queued is not an error of ours: report it
    // as would-block so the loop just moves on.
    if (errno == ECONNABORTED) return {-1, EAGAIN};
    return {-1, errno};
  }
}

bool make_selfpipe(Fd& read_end, Fd& write_end) {
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) return false;
  read_end.reset(fds[0]);
  write_end.reset(fds[1]);
  return true;
}

void wake_selfpipe(int write_fd) {
  // Async-signal-safe: only write(2); errno is preserved for the
  // interrupted context.
  const int saved_errno = errno;
  const char byte = 1;
  for (;;) {
    const long n = ::write(write_fd, &byte, 1);
    if (n >= 0) break;
    if (errno == EINTR) continue;  // interrupted wake: retry
    break;  // EAGAIN: pipe full — a pending byte already guarantees a wake
  }
  errno = saved_errno;
}

void drain_selfpipe(int read_fd) {
  char buf[64];
  for (;;) {
    const long n = ::read(read_fd, buf, sizeof buf);
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;  // interrupted drain: retry
    break;  // EOF or EAGAIN: drained
  }
}

std::size_t tune_datagram_capacity(int fd, std::size_t want_bytes) {
  // Ask for the whole message; the kernel doubles the request for skb
  // bookkeeping and clamps it to wmem_max, so the grant must be read back
  // rather than assumed.
  constexpr std::size_t kIntCap = static_cast<std::size_t>(1) << 30;
  const int want =
      static_cast<int>(want_bytes < kIntCap ? want_bytes : kIntCap);
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &want, sizeof want);
  int granted = 0;
  ::socklen_t len = sizeof granted;
  if (::getsockopt(fd, SOL_SOCKET, SO_SNDBUF, &granted, &len) != 0 ||
      granted <= 0)
    return want_bytes;  // unknowable: let the sender's errno path decide
  // AF_UNIX refuses a datagram larger than the buffer minus a small skb
  // reserve (32 bytes on Linux); keep a wider margin for portability.
  constexpr std::size_t kReserve = 64;
  const std::size_t usable = static_cast<std::size_t>(granted) > kReserve
                                 ? static_cast<std::size_t>(granted) - kReserve
                                 : 0;
  return usable < want_bytes ? usable : want_bytes;
}

IoResult send_with_fd(int fd, const char* buf, std::size_t len,
                      int fd_to_pass) {
  struct iovec iov;
  iov.iov_base = const_cast<char*>(buf);
  iov.iov_len = len;
  struct msghdr msg {};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  alignas(struct cmsghdr) char control[CMSG_SPACE(sizeof(int))];
  if (fd_to_pass >= 0) {
    msg.msg_control = control;
    msg.msg_controllen = sizeof control;
    struct cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
    cmsg->cmsg_level = SOL_SOCKET;
    cmsg->cmsg_type = SCM_RIGHTS;
    cmsg->cmsg_len = CMSG_LEN(sizeof(int));
    std::memcpy(CMSG_DATA(cmsg), &fd_to_pass, sizeof(int));
  }
  for (;;) {
    const long n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n >= 0) return {n, 0};
    if (errno == EINTR) continue;  // interrupted before any byte: retry
    return {-1, errno};
  }
}

IoResult recv_with_fd(int fd, char* buf, std::size_t len, int& fd_out) {
  fd_out = -1;
  struct iovec iov;
  iov.iov_base = buf;
  iov.iov_len = len;
  for (;;) {
    struct msghdr msg {};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    alignas(struct cmsghdr) char control[CMSG_SPACE(sizeof(int))];
    msg.msg_control = control;
    msg.msg_controllen = sizeof control;
    const long n = ::recvmsg(fd, &msg, MSG_CMSG_CLOEXEC);
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted before any byte: retry
      return {-1, errno};
    }
    for (struct cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
         cmsg = CMSG_NXTHDR(&msg, cmsg))
      if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS &&
          cmsg->cmsg_len >= CMSG_LEN(sizeof(int)))
        std::memcpy(&fd_out, CMSG_DATA(cmsg), sizeof(int));
    return {n, 0};
  }
}

namespace testing {

void arm(const SocketFaultPlan& plan) {
  {
    MutexLock lock(g_plan_mu);
    g_plan = plan;
  }
  g_op_count.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void disarm() { g_armed.store(false, std::memory_order_release); }

bool armed() { return g_armed.load(std::memory_order_acquire); }

int op_count() { return g_op_count.load(std::memory_order_relaxed); }

}  // namespace testing

}  // namespace dsmt::net
