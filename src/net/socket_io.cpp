#include "net/socket_io.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>

#include "core/thread_annotations.h"
#include "service/retry.h"

namespace dsmt::net {

namespace {

// ---- fault shim state (mirror of numeric/fault_injection.cpp) -----------

std::atomic<bool> g_armed{false};
std::atomic<int> g_op_count{0};
Mutex g_plan_mu;
testing::SocketFaultPlan g_plan DSMT_GUARDED_BY(g_plan_mu);

/// What the armed plan wants done to the data op numbered `op` (1-based).
struct FaultDecision {
  bool inject_eintr = false;   ///< fail once with EINTR before the real call
  bool inject_eagain = false;  ///< lie EAGAIN instead of doing the op
  bool inject_reset = false;   ///< fail ECONNRESET (read) / EPIPE (write)
  std::size_t clamp_len = 0;   ///< 0 = no clamp, else max bytes this op
};

FaultDecision decide(bool is_read, std::size_t len) {
  FaultDecision d;
  if (!g_armed.load(std::memory_order_acquire)) return d;
  const int op = 1 + g_op_count.fetch_add(1, std::memory_order_relaxed);
  testing::SocketFaultPlan plan;
  {
    MutexLock lock(g_plan_mu);
    plan = g_plan;
  }
  if (plan.reset_after >= 0 && op > plan.reset_after) {
    d.inject_reset = true;
    return d;
  }
  if (plan.eintr_period > 0 && op % plan.eintr_period == 0)
    d.inject_eintr = true;
  if (is_read && plan.eagain_period > 0 && op % plan.eagain_period == 0)
    d.inject_eagain = true;
  if (plan.short_io && len > 1) {
    const std::uint64_t draw = service::mix64(
        plan.seed ^ (static_cast<std::uint64_t>(op) << 1) ^ (is_read ? 1 : 0));
    std::size_t clamp = 1 + static_cast<std::size_t>(draw % 7);
    d.clamp_len = clamp < len ? clamp : len;
  }
  return d;
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

void Fd::reset(int fd) {
  // No EINTR retry around close(): on Linux the fd is released even when
  // close() is interrupted, and retrying can close a recycled descriptor.
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

bool IoResult::would_block() const {
  return n < 0 && (error == EAGAIN || error == EWOULDBLOCK);
}

bool IoResult::reset() const {
  return n < 0 && (error == ECONNRESET || error == EPIPE);
}

IoResult read_some(int fd, char* buf, std::size_t len) {
  const FaultDecision fault = decide(/*is_read=*/true, len);
  if (fault.inject_reset) return {-1, ECONNRESET};
  if (fault.inject_eagain) return {-1, EAGAIN};
  const std::size_t want = fault.clamp_len > 0 ? fault.clamp_len : len;
  bool eintr_pending = fault.inject_eintr;
  for (;;) {
    if (eintr_pending) {  // injected EINTR: same retry path as the real one
      eintr_pending = false;
      continue;
    }
    const long n = ::recv(fd, buf, want, 0);
    if (n >= 0) return {n, 0};
    if (errno == EINTR) continue;  // interrupted before any byte: retry
    return {-1, errno};
  }
}

IoResult write_some(int fd, const char* buf, std::size_t len) {
  const FaultDecision fault = decide(/*is_read=*/false, len);
  if (fault.inject_reset) return {-1, EPIPE};
  const std::size_t want = fault.clamp_len > 0 ? fault.clamp_len : len;
  bool eintr_pending = fault.inject_eintr;
  for (;;) {
    if (eintr_pending) {  // injected EINTR: same retry path as the real one
      eintr_pending = false;
      continue;
    }
    // MSG_NOSIGNAL: a peer that closed mid-reply yields EPIPE in the
    // result, never a process-killing SIGPIPE.
    const long n = ::send(fd, buf, want, MSG_NOSIGNAL);
    if (n >= 0) return {n, 0};
    if (errno == EINTR) continue;  // interrupted before any byte: retry
    return {-1, errno};
  }
}

int poll_wait(pollfd* fds, std::size_t nfds, int timeout_ms) {
  using Clock = std::chrono::steady_clock;
  const bool bounded = timeout_ms >= 0;
  const Clock::time_point deadline =
      bounded ? Clock::now() + std::chrono::milliseconds(timeout_ms)
              : Clock::time_point{};
  int wait_ms = timeout_ms;
  for (;;) {
    const int rc = ::poll(fds, static_cast<nfds_t>(nfds), wait_ms);
    if (rc >= 0) return rc;
    if (errno != EINTR) return rc;
    // EINTR: re-arm against the monotonic remaining budget so a signal
    // storm cannot stretch the tick.
    if (bounded) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      wait_ms = left.count() > 0 ? static_cast<int>(left.count()) : 0;
    }
  }
}

IoResult accept_connection(int listen_fd) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) return {fd, 0};
    if (errno == EINTR) continue;  // interrupted accept: retry
    // A peer that aborted while queued is not an error of ours: report it
    // as would-block so the loop just moves on.
    if (errno == ECONNABORTED) return {-1, EAGAIN};
    return {-1, errno};
  }
}

bool make_selfpipe(Fd& read_end, Fd& write_end) {
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) return false;
  read_end.reset(fds[0]);
  write_end.reset(fds[1]);
  return true;
}

void wake_selfpipe(int write_fd) {
  // Async-signal-safe: only write(2); errno is preserved for the
  // interrupted context.
  const int saved_errno = errno;
  const char byte = 1;
  for (;;) {
    const long n = ::write(write_fd, &byte, 1);
    if (n >= 0) break;
    if (errno == EINTR) continue;  // interrupted wake: retry
    break;  // EAGAIN: pipe full — a pending byte already guarantees a wake
  }
  errno = saved_errno;
}

void drain_selfpipe(int read_fd) {
  char buf[64];
  for (;;) {
    const long n = ::read(read_fd, buf, sizeof buf);
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;  // interrupted drain: retry
    break;  // EOF or EAGAIN: drained
  }
}

namespace testing {

void arm(const SocketFaultPlan& plan) {
  {
    MutexLock lock(g_plan_mu);
    g_plan = plan;
  }
  g_op_count.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void disarm() { g_armed.store(false, std::memory_order_release); }

bool armed() { return g_armed.load(std::memory_order_acquire); }

int op_count() { return g_op_count.load(std::memory_order_relaxed); }

}  // namespace testing

}  // namespace dsmt::net
