// Per-connection state machine of the socket front end.
//
//            bytes/frames flow              reply/flush flow
//   kReading ──────────────────┐   ┌────────────────────────────┐
//      │                       ▼   ▼                            │
//      │ peer EOF / protocol  dispatch → pool worker → ready map│
//      │ error / eviction /             (ordered by seq)        │
//      │ server drain                                           │
//      ▼                                                        │
//   kFlushing ── in-flight done && outbound empty ──► kClosed ◄─┘
//
// A Connection owns exactly one non-blocking socket, its frame decoder, and
// its outbound byte queue; it is touched ONLY by the event-loop thread
// (workers hand replies back through the server's completion queue, never
// through this object). Replies are sent strictly in request order: every
// parsed frame — request, ping, or protocol error — consumes one sequence
// number, completed replies park in a ready map, and only the contiguous
// prefix starting at next_to_send is appended to the outbound buffer. That
// ordering is what extends the determinism invariant to the wire: the reply
// byte stream of a connection is a pure function of its request byte
// stream, at any DSMT_THREADS value.
//
// Logical-tick bookkeeping (server's idle reaper):
//   * last_activity_tick  — last tick any byte moved in either direction
//   * frame_start_tick    — tick the decoder first went mid-frame (slow-
//                           loris budget: a frame must COMPLETE within the
//                           idle budget, no matter how steadily the client
//                           trickles bytes)
//   * last_flush_tick     — last tick the outbound buffer shrank (write-
//                           stall budget for clients that stop reading)
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/socket_io.h"
#include "net/wire.h"

namespace dsmt::net {

enum class ConnState {
  kReading = 0,  ///< parsing frames and accepting requests
  kFlushing,     ///< no more reads; finishing in-flight work and flushing
  kClosed,       ///< fd closed; the server removes the slot
};

/// What on_readable() observed (beyond zero or more complete frames).
enum class ReadEvent {
  kOk = 0,        ///< drained to EAGAIN, stream healthy
  kCleanEof,      ///< peer half-closed between frames
  kTruncatedEof,  ///< peer half-closed mid-frame (truncated frame)
  kBadMagic,      ///< stream is not speaking the protocol
  kOversized,     ///< declared frame length exceeds the cap
  kReset,         ///< connection reset by peer
};

/// What flush() observed.
enum class WriteEvent {
  kOk = 0,  ///< progressed (possibly to empty) or would-block
  kReset,   ///< peer is gone (EPIPE/ECONNRESET)
};

class Connection {
 public:
  Connection(Fd fd, std::uint64_t id, std::size_t max_frame_bytes,
             std::uint64_t now_tick);
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  std::uint64_t id() const { return id_; }
  int fd() const { return fd_.get(); }
  ConnState state() const { return state_; }
  bool reading() const { return state_ == ConnState::kReading; }
  bool closed() const { return state_ == ConnState::kClosed; }

  /// Reads until EAGAIN/EOF, appending complete frame payloads to
  /// `frames`. On a protocol error or EOF the connection stops reading
  /// (kFlushing) by itself; kReset closes it outright.
  ReadEvent on_readable(std::vector<std::string>& frames,
                        std::uint64_t now_tick);

  /// Claims the next reply sequence number (every parsed frame gets one).
  std::uint64_t next_seq() { return seq_next_++; }

  /// Parks reply `seq` and appends the contiguous ready prefix to the
  /// outbound buffer, preserving request order.
  void enqueue_reply(std::uint64_t seq, std::string frame_bytes);

  /// Writes outbound bytes until EAGAIN or empty.
  WriteEvent flush(std::uint64_t now_tick);

  /// Stops reading (peer EOF, protocol error, eviction, server drain); the
  /// connection lives on to finish in-flight replies and flush.
  void stop_reading();

  /// Closes the socket and discards all pending state.
  void close();

  /// True when a flushing connection has nothing left to do.
  bool finished() const {
    return state_ == ConnState::kFlushing && inflight_ == 0 &&
           outbound_.empty() && ready_.empty();
  }

  bool wants_write() const {
    return state_ != ConnState::kClosed && !outbound_.empty();
  }

  // In-flight accounting (event-loop thread only).
  std::size_t inflight() const { return inflight_; }
  void add_inflight() { ++inflight_; }
  void drop_inflight() {
    if (inflight_ > 0) --inflight_;
  }

  // Reaper inputs.
  std::uint64_t last_activity_tick() const { return last_activity_tick_; }
  std::uint64_t last_flush_tick() const { return last_flush_tick_; }
  bool mid_frame() const { return decoder_.mid_frame(); }
  std::uint64_t frame_start_tick() const { return frame_start_tick_; }

  /// Best-effort, one-shot write of `frame_bytes` ahead of any queued
  /// output (eviction notices: the client violated its budget, so ordinary
  /// ordering no longer applies). Never blocks; failure is acceptable —
  /// the socket closes right after.
  void try_send_now(const std::string& frame_bytes);

 private:
  // R10-ok: every member below is owned and mutated by the event-loop
  // thread alone; workers reach the connection only through the server's
  // mutex-guarded completion queue, never through this object.
  Fd fd_;
  std::uint64_t id_;                      // R10-ok: event-loop-only (above)
  ConnState state_ = ConnState::kReading;  // R10-ok: event-loop-only (above)
  FrameDecoder decoder_;                  // R10-ok: event-loop-only (above)
  std::string outbound_;                  // R10-ok: event-loop-only (above)
  std::map<std::uint64_t, std::string> ready_;  // R10-ok: event-loop-only
  std::uint64_t seq_next_ = 0;            // R10-ok: event-loop-only (above)
  std::uint64_t next_to_send_ = 0;        // R10-ok: event-loop-only (above)
  std::size_t inflight_ = 0;              // R10-ok: event-loop-only (above)
  std::uint64_t last_activity_tick_;      // R10-ok: event-loop-only (above)
  std::uint64_t last_flush_tick_;         // R10-ok: event-loop-only (above)
  std::uint64_t frame_start_tick_ = 0;    // R10-ok: event-loop-only (above)
  bool was_mid_frame_ = false;            // R10-ok: event-loop-only (above)
};

}  // namespace dsmt::net
