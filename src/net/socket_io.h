// EINTR-safe, fault-injectable syscall layer of the socket front end.
//
// src/net/ is the ONLY directory allowed to touch raw file-descriptor
// syscalls (lint rule R11 net-syscalls), and inside it every syscall goes
// through the wrappers here, which enforce the three disciplines the rest
// of the subsystem relies on:
//
//   * EINTR is never an error — every wrapper retries the interrupted call
//     (poll_wait re-arms against a monotonic remaining-time budget so a
//     signal storm cannot extend a tick).
//   * EAGAIN/EWOULDBLOCK is never an error — the fds are non-blocking and
//     the event loop simply waits for the next readiness edge.
//   * writes use send(MSG_NOSIGNAL), so a peer that closed mid-reply
//     surfaces as EPIPE on the IoResult instead of a process-killing
//     SIGPIPE.
//
// net::testing arms a deterministic I/O fault plan (same ScopedFault/RAII
// discipline and splitmix64 scheme as numeric/fault_injection.h): short
// reads/writes, injected EINTR, spurious EAGAIN readiness lies, and
// mid-stream connection resets, all a pure function of (seed, op counter)
// so a chaos test that fails replays identically.
#pragma once

#include <cstddef>
#include <cstdint>

struct pollfd;  // <poll.h>; kept out of this header's public surface

namespace dsmt::net {

/// RAII file descriptor: closes on destruction (retrying EINTR per POSIX
/// close semantics on Linux — the fd is gone either way).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Closes the held fd (if any) and adopts `fd`.
  void reset(int fd = -1);
  /// Releases ownership without closing.
  int release();

 private:
  int fd_ = -1;  // R10-ok: an Fd is owned and used by one thread at a time
};

/// Outcome of one data syscall. n > 0: bytes transferred. n == 0: EOF (on
/// reads). n < 0: the call failed with errno == error.
struct IoResult {
  long n = 0;
  int error = 0;

  bool would_block() const;  ///< EAGAIN/EWOULDBLOCK — wait for readiness
  bool reset() const;        ///< ECONNRESET/EPIPE — peer is gone
};

/// recv() up to `len` bytes from a non-blocking socket. Retries EINTR.
IoResult read_some(int fd, char* buf, std::size_t len);

/// send(MSG_NOSIGNAL) up to `len` bytes to a non-blocking socket. Retries
/// EINTR; a closed peer reports EPIPE in the result, never raises SIGPIPE.
IoResult write_some(int fd, const char* buf, std::size_t len);

/// poll() with EINTR retry against a monotonic remaining-time budget, so
/// the effective timeout is `timeout_ms` [ms] regardless of signal traffic
/// (timeout_ms < 0 blocks indefinitely). Returns poll()'s result.
int poll_wait(pollfd* fds, std::size_t nfds, int timeout_ms);

/// accept() on a listening socket; the returned fd (IoResult::n) is set
/// non-blocking and close-on-exec. Retries EINTR; ECONNABORTED (the peer
/// gave up while queued) reports would_block() semantics via error.
IoResult accept_connection(int listen_fd);

/// Creates the event loop's self-pipe (both ends non-blocking, CLOEXEC).
/// Returns false (with errno intact) when the pipe cannot be created.
bool make_selfpipe(Fd& read_end, Fd& write_end);

/// Async-signal-safe wake: writes one byte to a self-pipe write end,
/// retrying EINTR and treating a full pipe (EAGAIN) as success — a pending
/// byte already guarantees a wakeup. Preserves errno (callable from signal
/// handlers).
void wake_selfpipe(int write_fd);

/// Drains every pending byte from a self-pipe read end.
void drain_selfpipe(int read_fd);

/// Tunes `fd`'s send buffer toward carrying one whole `want_bytes` datagram
/// and returns the usable single-datagram capacity the kernel actually
/// granted (never more than `want_bytes`). AF_UNIX charges a datagram
/// against SO_SNDBUF and fails a larger send with EMSGSIZE instead of
/// fragmenting, so callers must size their messages to this value, not to
/// the buffer they asked for — setsockopt silently clamps to wmem_max.
std::size_t tune_datagram_capacity(int fd, std::size_t want_bytes);

/// sendmsg() of one whole datagram with `fd_to_pass` attached as SCM_RIGHTS
/// ancillary data (-1 sends no fd). Retries EINTR; MSG_NOSIGNAL. Control
/// plane of the supervision fork broker: deliberately NOT routed through
/// the testing fault shim — chaos plans must not perturb process spawning.
IoResult send_with_fd(int fd, const char* buf, std::size_t len,
                      int fd_to_pass);

/// recvmsg() of one whole datagram; an attached SCM_RIGHTS fd (if any) is
/// received close-on-exec into `fd_out`, else `fd_out` is -1. Retries
/// EINTR. Not routed through the testing fault shim (see send_with_fd).
IoResult recv_with_fd(int fd, char* buf, std::size_t len, int& fd_out);

namespace testing {

/// Deterministic I/O fault plan, armed process-globally (mirror of
/// numeric::fault::FaultPlan). Fault decisions are pure functions of
/// (seed, data-op counter) via the splitmix64 mixer, so armed runs replay
/// bit-identically.
struct SocketFaultPlan {
  /// Clamp each read/write to a seeded 1..7-byte slice, exercising every
  /// partial-progress path in the framing and flushing code.
  bool short_io = false;
  /// Every Nth data op first fails once with EINTR (0 = never). The
  /// wrappers must absorb it invisibly.
  int eintr_period = 0;
  /// Every Nth read reports EAGAIN despite readiness (0 = never) — a
  /// spurious-wakeup lie the event loop must tolerate.
  int eagain_period = 0;
  /// After this many data ops, reads fail ECONNRESET and writes EPIPE
  /// (< 0 = never): the mid-frame reset attack.
  int reset_after = -1;
  std::uint64_t seed = 0x6e657431;  ///< fault stream seed ("net1")
};

/// Arms `plan` globally and resets the op counter. Safe to call from any
/// thread; hooks are lock-protected behind an atomic armed fast path.
void arm(const SocketFaultPlan& plan);
void disarm();
bool armed();
/// Data ops observed since arm().
int op_count();

/// RAII arm/disarm for tests (the ScopedFault discipline).
class ScopedSocketFault {
 public:
  explicit ScopedSocketFault(const SocketFaultPlan& plan) { arm(plan); }
  ~ScopedSocketFault() { disarm(); }
  ScopedSocketFault(const ScopedSocketFault&) = delete;
  ScopedSocketFault& operator=(const ScopedSocketFault&) = delete;
};

}  // namespace testing

}  // namespace dsmt::net
