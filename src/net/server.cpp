#include "net/server.h"

#include <poll.h>
#include <signal.h>

#include <chrono>
#include <cstring>
#include <new>
#include <utility>

#include "core/status.h"
#include "parallel/thread_pool.h"
#include "report/json.h"
#include "service/breaker.h"
#include "service/request.h"

namespace dsmt::net {

namespace {

// ---- signal-drain plumbing ----------------------------------------------
// One server per process may hold the hook. The handler touches only an
// atomic fd and wake_selfpipe() (async-signal-safe, errno-preserving).

std::atomic<int> g_signal_wake_fd{-1};
std::atomic<bool> g_signal_drain{false};
std::atomic<std::atomic<bool>*> g_signal_target{nullptr};

extern "C" void drain_signal_handler(int /*signum*/) {
  g_signal_drain.store(true, std::memory_order_release);
  std::atomic<bool>* target = g_signal_target.load(std::memory_order_acquire);
  if (target != nullptr) target->store(true, std::memory_order_release);
  const int fd = g_signal_wake_fd.load(std::memory_order_acquire);
  if (fd >= 0) wake_selfpipe(fd);
}

struct sigaction g_old_term;
struct sigaction g_old_int;

/// Builds one well-formed error reply frame. Every rejection the front end
/// produces goes through here, so no failure mode is ever a silent drop.
std::string error_frame(const std::string& id, core::StatusCode status,
                        const std::string& message) {
  service::Response resp;
  resp.id = id;
  resp.status = status;
  resp.error = message;
  resp.diag.record("net/server", status, 0, 0.0, message);
  return encode_frame(service::response_to_json(resp).dump(-1));
}

/// The request id of a parsed-but-possibly-malformed payload, best effort.
std::string probe_id(const report::Json& doc) {
  const report::Json* id = doc.find("id");
  return (id != nullptr && id->is_string()) ? id->as_string() : std::string{};
}

}  // namespace

Server::Server(NetConfig config)
    : config_(std::move(config)),
      service_(config_.service),
      shared_(std::make_shared<Shared>()) {
  if (!make_selfpipe(wake_read_, shared_->wake_fd)) {
    core::SolverDiag diag;
    const std::string what =
        std::string("net/server: self-pipe creation failed: ") +
        std::strerror(errno);
    diag.record("net/server", core::StatusCode::kInvalidInput, 0, 0.0, what);
    throw SolveError(what, diag);
  }
}

Server::~Server() {
  if (signal_hook_installed_) {
    g_signal_wake_fd.store(-1, std::memory_order_release);
    g_signal_target.store(nullptr, std::memory_order_release);
    ::sigaction(SIGTERM, &g_old_term, nullptr);
    ::sigaction(SIGINT, &g_old_int, nullptr);
  }
}

void Server::open() {
  if (!listener_.listening())
    listener_.open(config_.endpoint, config_.listen_backlog);
}

void Server::request_drain() {
  drain_requested_.store(true, std::memory_order_release);
  wake_selfpipe(shared_->wake_fd.get());
}

void Server::install_signal_drain() {
  g_signal_target.store(&drain_requested_, std::memory_order_release);
  g_signal_wake_fd.store(shared_->wake_fd.get(), std::memory_order_release);
  struct sigaction action;
  std::memset(&action, 0, sizeof action);
  action.sa_handler = drain_signal_handler;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, &g_old_term);
  ::sigaction(SIGINT, &action, &g_old_int);
  signal_hook_installed_ = true;
}

std::uint64_t Server::now_tick() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();
  const int tick_ms = config_.tick_ms > 0 ? config_.tick_ms : 1;
  return static_cast<std::uint64_t>(ms) / static_cast<std::uint64_t>(tick_ms);
}

NetStats Server::run() {
  open();
  epoch_ = std::chrono::steady_clock::now();
  try {
    std::vector<pollfd> pfds;
    std::vector<std::uint64_t> pfd_conn;  // conn id per pollfd (0 = control)
    std::vector<std::string> frames;

    for (;;) {
      if (!draining_ && drain_requested_.load(std::memory_order_acquire))
        begin_drain();

      apply_completions();

      const std::uint64_t tick = now_tick();
      reap(tick);

      // Opportunistic flush + sweep of finished/closed connections.
      for (auto it = connections_.begin(); it != connections_.end();) {
        Connection& conn = *it->second;
        if (!conn.closed() && conn.wants_write()) {
          if (conn.flush(tick) == WriteEvent::kReset) {
            ++stats_.resets;
            conn.close();
          }
        }
        if (!conn.closed() && conn.finished()) conn.close();
        if (conn.closed())
          it = connections_.erase(it);
        else
          ++it;
      }

      if (draining_) {
        const bool workers_quiet =
            shared_->outstanding.load(std::memory_order_acquire) == 0;
        if (connections_.empty() && workers_quiet) {
          MutexLock lock(shared_->mu);
          if (shared_->completions.empty()) {
            stats_.drained_clean = !forced_;
            break;
          }
        }
        if (!forced_ && tick >= drain_start_tick_ + config_.drain_timeout_ticks)
          force_drain();
      }

      // Build this iteration's poll set: self-pipe, listener, connections.
      pfds.clear();
      pfd_conn.clear();
      pfds.push_back({wake_read_.get(), POLLIN, 0});
      pfd_conn.push_back(0);
      if (listener_.listening()) {
        pfds.push_back({listener_.fd(), POLLIN, 0});
        pfd_conn.push_back(0);
      }
      const std::size_t first_conn = pfds.size();
      for (const auto& entry : connections_) {
        const Connection& conn = *entry.second;
        short events = 0;
        if (conn.reading()) events |= POLLIN;
        if (conn.wants_write()) events |= POLLOUT;
        pfds.push_back({conn.fd(), events, 0});
        pfd_conn.push_back(conn.id());
      }

      const int tick_ms = config_.tick_ms > 0 ? config_.tick_ms : 1;
      poll_wait(pfds.data(), pfds.size(), tick_ms);

      if ((pfds[0].revents & POLLIN) != 0) drain_selfpipe(wake_read_.get());
      if (listener_.listening() && first_conn == 2 &&
          (pfds[1].revents & POLLIN) != 0)
        accept_ready();

      const std::uint64_t io_tick = now_tick();
      for (std::size_t i = first_conn; i < pfds.size(); ++i) {
        auto found = connections_.find(pfd_conn[i]);
        if (found == connections_.end()) continue;
        Connection& conn = *found->second;
        const short revents = pfds[i].revents;
        if (conn.reading() &&
            (revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          frames.clear();
          const ReadEvent event = conn.on_readable(frames, io_tick);
          for (const std::string& payload : frames) {
            ++stats_.frames_in;
            dispatch_frame(conn, payload);
          }
          handle_read_event(conn, event);
        }
        if (!conn.closed() && (revents & (POLLOUT | POLLHUP | POLLERR)) != 0 &&
            conn.wants_write()) {
          if (conn.flush(io_tick) == WriteEvent::kReset) {
            ++stats_.resets;
            conn.close();
          }
        }
      }
    }
  } catch (...) {
    // The loop is leaving early: no completion will ever be applied again,
    // so cancel every worker and wait them out — run() must never return
    // (or unwind) while a dispatched request can still touch this object.
    drain_cancel_.request_cancel();
    while (shared_->outstanding.load(std::memory_order_acquire) != 0) {
      pollfd pfd{wake_read_.get(), POLLIN, 0};
      poll_wait(&pfd, 1, config_.tick_ms > 0 ? config_.tick_ms : 1);
      drain_selfpipe(wake_read_.get());
    }
    listener_.stop();
    throw;
  }
  listener_.stop();
  return stats_;
}

void Server::begin_drain() {
  draining_ = true;
  drain_start_tick_ = now_tick();
  listener_.stop();  // the OS now refuses new connections
  for (auto& entry : connections_) entry.second->stop_reading();
}

void Server::force_drain() {
  forced_ = true;
  drain_cancel_.request_cancel();
  for (auto& entry : connections_) {
    Connection& conn = *entry.second;
    if (!conn.closed()) {
      conn.try_send_now(error_frame(
          "", core::StatusCode::kDeadlineExceeded,
          "connection closed: drain timeout expired with work in flight"));
      conn.close();
    }
  }
}

void Server::apply_completions() {
  std::vector<Completion> batch;
  {
    MutexLock lock(shared_->mu);
    batch.swap(shared_->completions);
  }
  const std::uint64_t tick = now_tick();
  for (Completion& done : batch) {
    auto found = connections_.find(done.conn_id);
    if (found == connections_.end() || found->second->closed()) {
      ++stats_.replies_dropped;
      continue;
    }
    Connection& conn = *found->second;
    conn.drop_inflight();
    conn.enqueue_reply(done.seq, std::move(done.frame));
    ++stats_.replies_sent;
    if (conn.flush(tick) == WriteEvent::kReset) {
      ++stats_.resets;
      conn.close();
    }
  }
}

void Server::accept_ready() {
  for (;;) {
    IoResult accepted = accept_connection(listener_.fd());
    if (accepted.n < 0) return;  // EAGAIN (or transient): wait for readiness
    Fd fd(static_cast<int>(accepted.n));
    ++stats_.accepted;
    if (draining_ || connections_.size() >= config_.max_connections) {
      // Connection-level admission control, distinct from the queue
      // admission inside service::Server: the peer gets one well-formed
      // overload frame, then the socket closes.
      const std::string frame = error_frame(
          "", core::StatusCode::kRejectedOverload,
          draining_ ? "connection rejected: server is draining"
                    : "connection rejected: connection limit reached");
      std::size_t sent = 0;
      while (sent < frame.size()) {
        const IoResult r =
            write_some(fd.get(), frame.data() + sent, frame.size() - sent);
        if (r.n <= 0) break;  // best effort; admission cannot block the loop
        sent += static_cast<std::size_t>(r.n);
      }
      ++stats_.rejected_connections;
      continue;  // fd closes via RAII
    }
    const std::uint64_t id = next_conn_id_++;
    connections_.emplace(
        id, std::make_unique<Connection>(std::move(fd), id,
                                         config_.max_frame_bytes, now_tick()));
  }
}

void Server::handle_read_event(Connection& conn, ReadEvent event) {
  switch (event) {
    case ReadEvent::kOk:
    case ReadEvent::kCleanEof:
      // Clean EOF: the peer half-closed after its last frame; in-flight
      // replies still flush before the connection closes (half-close
      // mid-reply support). Connection already left kReading by itself.
      break;
    case ReadEvent::kTruncatedEof:
      ++stats_.protocol_errors;
      conn.enqueue_reply(
          conn.next_seq(),
          error_frame("", core::StatusCode::kInvalidInput,
                      "truncated frame: connection half-closed mid-frame"));
      break;
    case ReadEvent::kBadMagic:
      ++stats_.protocol_errors;
      conn.enqueue_reply(
          conn.next_seq(),
          error_frame("", core::StatusCode::kInvalidInput,
                      "bad frame magic: stream is not DSM1-framed"));
      break;
    case ReadEvent::kOversized:
      ++stats_.protocol_errors;
      conn.enqueue_reply(
          conn.next_seq(),
          error_frame("", core::StatusCode::kInvalidInput,
                      "oversized frame: declared length exceeds " +
                          std::to_string(config_.max_frame_bytes) +
                          " bytes"));
      break;
    case ReadEvent::kReset:
      ++stats_.resets;
      conn.close();
      break;
  }
}

std::string Server::ping_reply_frame(const report::Json& doc) {
  const service::CircuitBreaker& breaker = service_.breaker();
  report::Json degradation = report::Json::object();
  degradation
      .set("interpolation",
           report::Json::boolean(config_.service.enable_interpolation))
      .set("analytic_bound",
           report::Json::boolean(config_.service.enable_analytic_bound))
      .set("cache_points",
           report::Json::integer(
               static_cast<long long>(service_.cache().size())));
  report::Json breaker_json = report::Json::object();
  breaker_json
      .set("kernel", report::Json::string(breaker.kernel()))
      .set("state", report::Json::string(
                        service::breaker_state_name(breaker.state())))
      .set("opens",
           report::Json::integer(static_cast<long long>(breaker.opens())));
  report::Json root = report::Json::object();
  root.set("id", report::Json::string(probe_id(doc)))
      .set("kind", report::Json::string("ping"))
      .set("status", report::Json::string(
                         core::status_name(core::StatusCode::kOk)))
      .set("draining", report::Json::boolean(draining_))
      .set("connections",
           report::Json::integer(static_cast<long long>(connections_.size())))
      .set("inflight",
           report::Json::integer(static_cast<long long>(
               shared_->outstanding.load(std::memory_order_acquire))))
      .set("breaker", std::move(breaker_json))
      .set("degradation", std::move(degradation));
  // Solve-cache health: one section whether the cache serves the
  // in-process service or the --isolate parent (the handle is shared).
  if (config_.service.solve_cache != nullptr)
    root.set("cache", config_.service.solve_cache->cache_json());
  if (config_.health_source) root.set("supervise", config_.health_source());
  return encode_frame(root.dump(-1));
}

void Server::dispatch_frame(Connection& conn, const std::string& payload) {
  const std::uint64_t seq = conn.next_seq();
  report::Json doc;
  try {
    doc = report::Json::parse(payload);
  } catch (const SolveError& e) {
    ++stats_.invalid_requests;
    conn.enqueue_reply(
        seq, error_frame("", core::StatusCode::kInvalidInput,
                         std::string("malformed request payload: ") +
                             e.what()));
    return;
  }

  const report::Json* kind = doc.find("kind");
  if (kind != nullptr && kind->is_string() && kind->as_string() == "ping") {
    ++stats_.pings;
    conn.enqueue_reply(seq, ping_reply_frame(doc));
    return;
  }

  service::Request request;
  try {
    request = service::request_from_json(doc);
  } catch (const SolveError& e) {
    ++stats_.invalid_requests;
    conn.enqueue_reply(seq, error_frame(probe_id(doc), e.status(), e.what()));
    return;
  } catch (const std::exception& e) {
    ++stats_.invalid_requests;
    conn.enqueue_reply(
        seq, error_frame(probe_id(doc), core::StatusCode::kInvalidInput,
                         std::string("invalid request: ") + e.what()));
    return;
  }
  dispatch_request(conn, seq, request);
}

void Server::dispatch_request(Connection& conn, std::uint64_t seq,
                              const service::Request& request) {
  if (draining_) {
    conn.enqueue_reply(
        seq, error_frame(request.id, core::StatusCode::kRejectedOverload,
                         "request rejected: server is draining"));
    ++stats_.rejected_inflight;
    return;
  }
  const std::size_t total =
      shared_->outstanding.load(std::memory_order_acquire);
  if (conn.inflight() >= config_.max_inflight_per_connection ||
      total >= config_.max_inflight_total) {
    conn.enqueue_reply(
        seq,
        error_frame(request.id, core::StatusCode::kRejectedOverload,
                    conn.inflight() >= config_.max_inflight_per_connection
                        ? "request rejected: per-connection in-flight cap"
                        : "request rejected: server in-flight cap"));
    ++stats_.rejected_inflight;
    return;
  }

  // The request's compute budget merges (min) the configured per-request
  // deadline with the connection's eviction budget: a reply the reaper
  // would kill the connection for anyway is not worth computing.
  const int tick_ms = config_.tick_ms > 0 ? config_.tick_ms : 1;
  const std::uint64_t eviction_ns = config_.idle_timeout_ticks *
                                    static_cast<std::uint64_t>(tick_ms) *
                                    1000000ull;
  std::uint64_t budget_ns = config_.request_deadline_ns;
  if (eviction_ns > 0 && (budget_ns == 0 || eviction_ns < budget_ns))
    budget_ns = eviction_ns;

  conn.add_inflight();
  shared_->outstanding.fetch_add(1, std::memory_order_acq_rel);
  ++stats_.dispatched;

  const std::uint64_t conn_id = conn.id();
  std::shared_ptr<Shared> shared = shared_;
  core::CancelToken drain_cancel = drain_cancel_;  // copies share state
  parallel::pool_submit([this, shared, drain_cancel, conn_id, seq, request,
                         budget_ns]() {
    std::string frame;
    try {
      core::RunContext ctx;
      ctx.cancel() = drain_cancel;
      if (budget_ns > 0)
        ctx.set_deadline(std::chrono::steady_clock::now() +
                         std::chrono::nanoseconds(budget_ns));
      core::ScopedRunContext scope(ctx);
      if (config_.frame_handler) {
        frame = config_.frame_handler(request,
                                      static_cast<std::uint64_t>(seq));
      } else {
        const service::Response response =
            service_.handle(request, static_cast<std::size_t>(seq));
        frame = encode_frame(service::response_to_json(response).dump(-1));
      }
    } catch (const std::bad_alloc&) {
      frame = error_frame(request.id, core::StatusCode::kRejectedOverload,
                          "allocation failure: request shed");
    } catch (const std::exception& e) {
      frame = error_frame(request.id, core::StatusCode::kInvalidInput,
                          std::string("internal error: ") + e.what());
    } catch (...) {
      frame = error_frame(request.id, core::StatusCode::kInvalidInput,
                          "internal error: unknown exception");
    }
    // Hand-off order matters: park the reply, then retire the outstanding
    // count, then wake. After the decrement this worker touches only the
    // shared block, so run() may return the moment outstanding hits zero.
    {
      MutexLock lock(shared->mu);
      shared->completions.push_back(Completion{conn_id, seq, std::move(frame)});
    }
    shared->outstanding.fetch_sub(1, std::memory_order_acq_rel);
    wake_selfpipe(shared->wake_fd.get());
  });
}

void Server::reap(std::uint64_t tick) {
  if (config_.idle_timeout_ticks == 0) return;
  const std::uint64_t budget = config_.idle_timeout_ticks;
  for (auto& entry : connections_) {
    Connection& conn = *entry.second;
    if (conn.closed()) continue;
    // Slow-loris: an incomplete frame must finish within the budget no
    // matter how steadily bytes trickle in.
    if (conn.reading() && conn.mid_frame() &&
        tick >= conn.frame_start_tick() + budget) {
      evict(conn, stats_.evicted_midframe,
            "connection evicted: frame not completed within its budget");
      continue;
    }
    // Write stall: the peer stopped reading its replies.
    if (conn.wants_write() && tick >= conn.last_flush_tick() + budget) {
      evict(conn, stats_.evicted_stalled,
            "connection evicted: peer stopped reading replies");
      continue;
    }
    // Plain idle: no traffic either way and nothing in flight.
    if (conn.reading() && !conn.mid_frame() && conn.inflight() == 0 &&
        !conn.wants_write() && tick >= conn.last_activity_tick() + budget) {
      evict(conn, stats_.evicted_idle, "connection evicted: idle timeout");
    }
  }
}

void Server::evict(Connection& conn, std::uint64_t& counter, const char* why) {
  ++counter;
  conn.try_send_now(
      error_frame("", core::StatusCode::kDeadlineExceeded, why));
  conn.close();
}

}  // namespace dsmt::net
