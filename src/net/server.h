// Multi-worker socket front end over the fault-tolerant request service.
//
// One net::Server is one event loop (the thread that calls run()) plus the
// process-global bounded thread pool as its worker fleet:
//
//   event loop (run() caller)          pool workers (parallel::pool_submit)
//   ──────────────────────────         ─────────────────────────────────────
//   poll listener + connections        per request:
//   accept / admission control           install RunContext (merged budget:
//   parse frames, assign seqs            request deadline ∩ eviction budget,
//   inline replies (ping, errors)        drain cancel token)
//   dispatch solve requests ───────►     service::Server::handle(req, seq)
//   apply completion queue ◄───────      push reply frame, wake self-pipe
//   flush outbound, reap, drain
//
// Threading contract: Listener and every Connection are event-loop-only.
// Workers share exactly three things with the loop, each with its own
// discipline — the mutex-guarded completion queue, the atomic outstanding
// counter, and the self-pipe write end (owned by a shared_ptr core that
// outlives every worker, so a late completion can never touch a dead
// server). run() does not return while any dispatched request is still
// running, even on the forced-drain and exception paths.
//
// Admission is layered, and every rejection is a well-formed error frame —
// never a silent drop:
//   * connection admission: accepts beyond max_connections get one
//     kRejectedOverload frame and an immediate close (distinct from queue
//     admission inside service::Server);
//   * in-flight caps: a parsed request over max_inflight_per_connection or
//     max_inflight_total is answered kRejectedOverload inline;
//   * protocol violations (bad magic, oversized frame, truncated frame) are
//     answered kInvalidInput, then the connection flushes and closes;
//     malformed JSON inside a well-framed payload is answered kInvalidInput
//     and the connection stays open (framing is intact).
//
// The reaper runs on logical ticks derived from elapsed monotonic time
// (tick = elapsed / tick_ms), so a slow-loris client trickling one byte per
// tick still exhausts its frame budget. Evictions (idle, stalled mid-frame,
// or unread replies) get a best-effort kDeadlineExceeded frame, then close.
//
// Graceful drain (request_drain(), any thread or signal context): stop
// accepting, stop reading, let in-flight work finish inside
// drain_timeout_ticks (after which the shared cancel token trips), flush,
// and return final NetStats with drained_clean telling the two endings
// apart. install_signal_drain() wires SIGTERM/SIGINT to exactly this via an
// async-signal-safe self-pipe wake.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/run_context.h"
#include "core/thread_annotations.h"
#include "net/connection.h"
#include "net/listener.h"
#include "net/socket_io.h"
#include "service/server.h"

namespace dsmt::net {

struct NetConfig {
  Endpoint endpoint;
  int listen_backlog = 64;
  /// Connection admission: live sockets beyond this are rejected with one
  /// kRejectedOverload frame and closed.
  std::size_t max_connections = 64;
  /// Hard frame-size cap [bytes]; a larger declared length is kInvalidInput.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-connection in-flight solve cap; excess requests get
  /// kRejectedOverload inline.
  std::size_t max_inflight_per_connection = 16;
  /// Server-wide in-flight solve cap. Keep below the pool's queue high
  /// water (parallel::queue_high_water) so dispatch never blocks the loop.
  std::size_t max_inflight_total = 128;
  /// Logical tick length [ms]: poll granularity and the reaper time base.
  int tick_ms = 50;
  /// Ticks a connection may sit idle, stall mid-frame, or leave replies
  /// unread before eviction (kDeadlineExceeded).
  std::uint64_t idle_timeout_ticks = 200;
  /// Ticks a drain waits for in-flight work before tripping the shared
  /// cancel token and force-closing.
  std::uint64_t drain_timeout_ticks = 100;
  /// Per-request deadline [ns] merged (min) with the eviction budget into
  /// the worker's RunContext (0 = eviction budget only).
  std::uint64_t request_deadline_ns = 0;
  service::ServerConfig service;
  /// Process-isolation hook: when set, solve requests bypass the in-process
  /// service and this handler returns the COMPLETE reply frame for
  /// (request, seq) — the supervised worker-pool path. Runs on pool worker
  /// threads under the same merged-deadline RunContext as the in-process
  /// path; it must always return a well-formed frame, never throw for
  /// per-request failures.
  std::function<std::string(const service::Request&, std::uint64_t)>
      frame_handler;
  /// When set, ping replies carry this document under a "supervise" key
  /// (worker fleet health + poison-quarantine table). Event-loop thread
  /// only.
  std::function<report::Json()> health_source;
};

/// Event-loop counters, returned by run() as the final snapshot.
struct NetStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_connections = 0;  ///< connection-admission rejects
  std::uint64_t frames_in = 0;             ///< complete frames parsed
  std::uint64_t replies_sent = 0;          ///< reply frames fully flushed...
  std::uint64_t pings = 0;
  std::uint64_t dispatched = 0;          ///< solve requests handed to pool
  std::uint64_t rejected_inflight = 0;   ///< in-flight-cap rejects
  std::uint64_t invalid_requests = 0;    ///< bad JSON / bad request fields
  std::uint64_t protocol_errors = 0;     ///< bad magic/oversize/truncation
  std::uint64_t evicted_idle = 0;
  std::uint64_t evicted_midframe = 0;    ///< slow-loris frame-budget kills
  std::uint64_t evicted_stalled = 0;     ///< unread-reply write stalls
  std::uint64_t resets = 0;              ///< peers that vanished uncleanly
  std::uint64_t replies_dropped = 0;     ///< completions for dead sockets
  bool drained_clean = false;  ///< drain finished inside its tick budget
};

class Server {
 public:
  explicit Server(NetConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener (idempotent). Call before run() when the test or
  /// tool needs bound_port() / the socket path to exist first. Throws
  /// dsmt::SolveError (kInvalidInput) on bind failure.
  void open();

  /// Runs the event loop on the calling thread until a drain completes.
  /// Returns the final counter snapshot; does not return while any
  /// dispatched request is still executing.
  NetStats run();

  /// Requests a graceful drain. Safe from any thread and from signal
  /// handlers (atomic flag + self-pipe wake).
  void request_drain();

  /// Routes SIGTERM and SIGINT to request_drain() for this server (one
  /// server per process may hold the signal hook; the previous handlers are
  /// restored by the destructor).
  void install_signal_drain();

  std::uint16_t bound_port() const { return listener_.bound_port(); }
  const NetConfig& config() const { return config_; }
  service::Server& service() { return service_; }

 private:
  /// One finished request: the encoded reply frame headed back to its
  /// connection through the completion queue.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string frame;
  };

  /// State shared with pool workers; owned by shared_ptr so a worker that
  /// outlives run() (or even the Server) touches only this block.
  struct Shared {
    Mutex mu;
    std::vector<Completion> completions DSMT_GUARDED_BY(mu);
    /// Dispatched requests whose worker has not finished its hand-off yet.
    std::atomic<std::size_t> outstanding{0};
    /// Self-pipe write end; read end stays with the Server.
    Fd wake_fd;  // R10-ok: set before any worker exists, then read-only
  };

  void begin_drain();
  void force_drain();
  void apply_completions();
  void dispatch_frame(Connection& conn, const std::string& payload);
  void dispatch_request(Connection& conn, std::uint64_t seq,
                        const service::Request& request);
  void handle_read_event(Connection& conn, ReadEvent event);
  void reap(std::uint64_t now_tick);
  void evict(Connection& conn, std::uint64_t& counter, const char* why);
  void accept_ready();
  std::string ping_reply_frame(const report::Json& doc);
  std::uint64_t now_tick() const;

  const NetConfig config_;
  service::Server service_;
  Listener listener_;  // R10-ok: event-loop-only (threading contract above)
  std::shared_ptr<Shared> shared_;
  Fd wake_read_;  // R10-ok: event-loop-only (threading contract above)
  std::atomic<bool> drain_requested_{false};
  // Everything below is event-loop-only state (see the threading contract
  // in the header comment): mutated exclusively inside run().
  // R10-ok: event-loop-only (above)
  std::map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::uint64_t next_conn_id_ = 1;  // R10-ok: event-loop-only (above)
  NetStats stats_;                  // R10-ok: event-loop-only (above)
  bool draining_ = false;           // R10-ok: event-loop-only (above)
  bool forced_ = false;             // R10-ok: event-loop-only (above)
  std::uint64_t drain_start_tick_ = 0;  // R10-ok: event-loop-only (above)
  std::chrono::steady_clock::time_point epoch_;  // R10-ok: event-loop-only
  core::CancelToken drain_cancel_;  ///< shared with every worker RunContext
  bool signal_hook_installed_ = false;  // R10-ok: event-loop-only (above)
};

}  // namespace dsmt::net
