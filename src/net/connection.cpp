#include "net/connection.h"

#include <utility>

namespace dsmt::net {

Connection::Connection(Fd fd, std::uint64_t id, std::size_t max_frame_bytes,
                       std::uint64_t now_tick)
    : fd_(std::move(fd)),
      id_(id),
      decoder_(max_frame_bytes),
      last_activity_tick_(now_tick),
      last_flush_tick_(now_tick) {}

ReadEvent Connection::on_readable(std::vector<std::string>& frames,
                                  std::uint64_t now_tick) {
  if (state_ != ConnState::kReading) return ReadEvent::kOk;
  char buf[4096];
  for (;;) {
    const IoResult r = read_some(fd_.get(), buf, sizeof buf);
    if (r.n > 0) {
      last_activity_tick_ = now_tick;
      decoder_.append(buf, static_cast<std::size_t>(r.n));
      std::string payload;
      for (;;) {
        const FrameStatus st = decoder_.next(payload);
        if (st == FrameStatus::kFrame) {
          frames.push_back(std::move(payload));
          continue;
        }
        if (st == FrameStatus::kNeedMore) break;
        stop_reading();
        return st == FrameStatus::kBadMagic ? ReadEvent::kBadMagic
                                            : ReadEvent::kOversized;
      }
      // Track the tick the decoder first went mid-frame: the slow-loris
      // budget runs from the first byte of an incomplete frame, not from
      // the most recent trickled byte.
      if (decoder_.mid_frame()) {
        if (!was_mid_frame_) frame_start_tick_ = now_tick;
        was_mid_frame_ = true;
      } else {
        was_mid_frame_ = false;
      }
      continue;
    }
    if (r.n == 0) {  // peer half-closed its write side
      const bool truncated = decoder_.mid_frame() || decoder_.buffered() > 0;
      stop_reading();
      return truncated ? ReadEvent::kTruncatedEof : ReadEvent::kCleanEof;
    }
    if (r.would_block()) return ReadEvent::kOk;
    stop_reading();
    return ReadEvent::kReset;
  }
}

void Connection::enqueue_reply(std::uint64_t seq, std::string frame_bytes) {
  ready_.emplace(seq, std::move(frame_bytes));
  // Promote the contiguous ready prefix — replies leave in request order.
  for (auto it = ready_.find(next_to_send_); it != ready_.end();
       it = ready_.find(next_to_send_)) {
    outbound_ += it->second;
    ready_.erase(it);
    ++next_to_send_;
  }
}

WriteEvent Connection::flush(std::uint64_t now_tick) {
  if (state_ == ConnState::kClosed) return WriteEvent::kOk;
  std::size_t sent = 0;
  while (sent < outbound_.size()) {
    const IoResult r =
        write_some(fd_.get(), outbound_.data() + sent, outbound_.size() - sent);
    if (r.n > 0) {
      sent += static_cast<std::size_t>(r.n);
      continue;
    }
    if (r.would_block()) break;
    outbound_.erase(0, sent);
    return WriteEvent::kReset;
  }
  if (sent > 0) {
    outbound_.erase(0, sent);
    last_activity_tick_ = now_tick;
    last_flush_tick_ = now_tick;
  }
  return WriteEvent::kOk;
}

void Connection::stop_reading() {
  if (state_ == ConnState::kReading) state_ = ConnState::kFlushing;
}

void Connection::close() {
  state_ = ConnState::kClosed;
  fd_.reset();
  outbound_.clear();
  ready_.clear();
}

void Connection::try_send_now(const std::string& frame_bytes) {
  if (state_ == ConnState::kClosed) return;
  std::size_t sent = 0;
  while (sent < frame_bytes.size()) {
    const IoResult r = write_some(fd_.get(), frame_bytes.data() + sent,
                                  frame_bytes.size() - sent);
    if (r.n <= 0) break;  // best effort: EAGAIN or a dead peer ends it
    sent += static_cast<std::size_t>(r.n);
  }
}

}  // namespace dsmt::net
