// ODE integrators for lumped thermal transients (ESD pulse heating).
//
// The ESD failure model integrates C_v dT/dt = j(t)^2 rho(T) - loss(T); the
// heating term is stiff near melting, so an implicit Euler option backed by
// scalar Newton is provided alongside the explicit RK methods.
#pragma once

#include <functional>
#include <vector>

namespace dsmt::numeric {

/// Right-hand side f(t, y) of a scalar ODE y' = f(t, y).
using ScalarRhs = std::function<double(double, double)>;

/// A sampled scalar trajectory.
struct OdeTrajectory {
  std::vector<double> t;
  std::vector<double> y;
};

/// Classic fixed-step RK4 from t0 to t1 with `steps` steps.
/// t0, t1 in the time unit of f [s]; y0 in the state unit [1].
OdeTrajectory rk4(const ScalarRhs& f, double t0, double y0, double t1,
                  int steps);

/// Adaptive Runge-Kutta-Fehlberg 4(5) with absolute/relative error control.
/// `event` (optional) stops integration early when it returns true for the
/// freshly accepted (t, y) — used to stop at the melting point.
/// t0, t1 [s]; y0 [1]; tolerances in the state unit [1].
OdeTrajectory rkf45(const ScalarRhs& f, double t0, double y0, double t1,
                    double abs_tol = 1e-9, double rel_tol = 1e-7,
                    const std::function<bool(double, double)>& event = {});

/// Fixed-step implicit (backward) Euler; each step solves
/// y_{n+1} = y_n + h f(t_{n+1}, y_{n+1}) with damped fixed-point/Newton mix.
/// t0, t1 [s]; y0 [1].
OdeTrajectory implicit_euler(const ScalarRhs& f, double t0, double y0,
                             double t1, int steps);

}  // namespace dsmt::numeric
