#include "numeric/tridiag.h"

#include <cmath>
#include <stdexcept>

namespace dsmt::numeric {

std::vector<double> solve_tridiagonal(const std::vector<double>& lower,
                                      const std::vector<double>& diag,
                                      const std::vector<double>& upper,
                                      const std::vector<double>& rhs) {
  const std::size_t n = diag.size();
  if (lower.size() != n || upper.size() != n || rhs.size() != n || n == 0)
    throw std::invalid_argument("solve_tridiagonal: size mismatch");

  std::vector<double> c(n), d(n);
  double piv = diag[0];
  if (piv == 0.0) throw std::runtime_error("solve_tridiagonal: zero pivot");
  c[0] = upper[0] / piv;
  d[0] = rhs[0] / piv;
  for (std::size_t i = 1; i < n; ++i) {
    piv = diag[i] - lower[i] * c[i - 1];
    if (piv == 0.0) throw std::runtime_error("solve_tridiagonal: zero pivot");
    c[i] = upper[i] / piv;
    d[i] = (rhs[i] - lower[i] * d[i - 1]) / piv;
  }
  std::vector<double> x(n);
  x[n - 1] = d[n - 1];
  for (std::size_t ii = n - 1; ii-- > 0;) x[ii] = d[ii] - c[ii] * x[ii + 1];
  return x;
}

}  // namespace dsmt::numeric
