// Thomas algorithm for tridiagonal systems. Used by the 1-D heat-equation
// solvers (steady temperature profile along a line, transient ESD heating
// with axial conduction).
#pragma once

#include <vector>

namespace dsmt::numeric {

/// Solves the tridiagonal system
///   lower[i]*x[i-1] + diag[i]*x[i] + upper[i]*x[i+1] = rhs[i]
/// with lower[0] and upper[n-1] ignored. All spans must have equal size n>=1.
/// Throws std::invalid_argument on size mismatch and std::runtime_error if a
/// pivot vanishes (system not diagonally dominant enough).
std::vector<double> solve_tridiagonal(const std::vector<double>& lower,
                                      const std::vector<double>& diag,
                                      const std::vector<double>& upper,
                                      const std::vector<double>& rhs);

}  // namespace dsmt::numeric
