// Sparse symmetric linear algebra for the finite-difference field solvers.
//
// The 2-D cross-section thermal solver, the Laplace capacitance extractor and
// the multi-line array solver all assemble symmetric positive-definite
// 5-point-stencil systems with 1e4..1e6 unknowns; preconditioned conjugate
// gradients is the right tool.
#pragma once

#include <cstddef>
#include <vector>

#include "core/status.h"

namespace dsmt::numeric {

/// Coordinate-format triplet accumulator; duplicate entries are summed when
/// compressed. Assembly order is irrelevant.
class SparseBuilder {
 public:
  explicit SparseBuilder(std::size_t n) : n_(n) {}

  std::size_t size() const { return n_; }

  /// value [1]: accumulated into the (row, col) entry.
  void add(std::size_t row, std::size_t col, double value) {
    rows_.push_back(row);
    cols_.push_back(col);
    vals_.push_back(value);
  }

  const std::vector<std::size_t>& rows() const { return rows_; }
  const std::vector<std::size_t>& cols() const { return cols_; }
  const std::vector<double>& values() const { return vals_; }

 private:
  std::size_t n_;
  std::vector<std::size_t> rows_, cols_;
  std::vector<double> vals_;
};

/// Compressed-sparse-row matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  /// Compresses a triplet builder, summing duplicates.
  explicit CsrMatrix(const SparseBuilder& builder);

  std::size_t size() const { return n_; }
  std::size_t nonzeros() const { return vals_.size(); }

  /// y = A x.
  void multiply(const std::vector<double>& x, std::vector<double>& y) const;

  /// Extracts the diagonal (missing diagonal entries read as 0).
  std::vector<double> diagonal() const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_, col_idx_;
  std::vector<double> vals_;
};

/// Conjugate-gradient convergence report. [[nodiscard]]: ignoring it is how
/// an unconverged field solve turns into silently wrong temperatures.
struct [[nodiscard]] CgResult {
  int iterations = 0;
  double residual_norm = 0.0;  ///< final ||b - Ax|| / ||b||
  bool converged = false;
  core::StatusCode status = core::StatusCode::kMaxIterations;

  bool ok() const { return status == core::StatusCode::kOk; }
};

struct CgOptions {
  double rel_tol = 1e-10;
  int max_iterations = 20000;
};

/// Jacobi-preconditioned conjugate gradients for SPD systems.
/// `x` carries the initial guess in and the solution out.
CgResult conjugate_gradient(const CsrMatrix& a, const std::vector<double>& b,
                            std::vector<double>& x, const CgOptions& opts = {});

/// CG wrapped in the standard recovery chain: an exhausted budget triggers a
/// warm-started retry at 4x the budget (Jacobi preconditioner rebuilt); a
/// non-finite residual triggers one cold restart from x = 0. Every stage is
/// recorded in `diag`; the returned status is the final stage's outcome.
CgResult conjugate_gradient_robust(const CsrMatrix& a,
                                   const std::vector<double>& b,
                                   std::vector<double>& x,
                                   const CgOptions& opts,
                                   core::SolverDiag& diag);

}  // namespace dsmt::numeric
