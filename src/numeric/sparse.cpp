#include "numeric/sparse.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dsmt::numeric {

CsrMatrix::CsrMatrix(const SparseBuilder& builder) : n_(builder.size()) {
  const auto& r = builder.rows();
  const auto& c = builder.cols();
  const auto& v = builder.values();
  const std::size_t nnz_in = v.size();

  // Sort triplets by (row, col) via an index permutation.
  std::vector<std::size_t> order(nnz_in);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return r[a] != r[b] ? r[a] < r[b] : c[a] < c[b];
  });

  row_ptr_.assign(n_ + 1, 0);
  col_idx_.reserve(nnz_in);
  vals_.reserve(nnz_in);
  std::size_t prev_row = static_cast<std::size_t>(-1);
  std::size_t prev_col = static_cast<std::size_t>(-1);
  for (std::size_t k : order) {
    if (r[k] >= n_ || c[k] >= n_)
      throw std::out_of_range("CsrMatrix: index out of range");
    if (r[k] == prev_row && c[k] == prev_col) {
      vals_.back() += v[k];  // merge duplicate
      continue;
    }
    col_idx_.push_back(c[k]);
    vals_.push_back(v[k]);
    row_ptr_[r[k] + 1] += 1;
    prev_row = r[k];
    prev_col = c[k];
  }
  for (std::size_t i = 0; i < n_; ++i) row_ptr_[i + 1] += row_ptr_[i];
}

void CsrMatrix::multiply(const std::vector<double>& x,
                         std::vector<double>& y) const {
  if (x.size() != n_) throw std::invalid_argument("CsrMatrix::multiply");
  y.assign(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      acc += vals_[k] * x[col_idx_[k]];
    y[i] = acc;
  }
}

std::vector<double> CsrMatrix::diagonal() const {
  std::vector<double> d(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      if (col_idx_[k] == i) d[i] = vals_[k];
  return d;
}

CgResult conjugate_gradient(const CsrMatrix& a, const std::vector<double>& b,
                            std::vector<double>& x, const CgOptions& opts) {
  const std::size_t n = a.size();
  if (b.size() != n) throw std::invalid_argument("conjugate_gradient: rhs");
  if (x.size() != n) x.assign(n, 0.0);

  std::vector<double> diag = a.diagonal();
  for (double& d : diag) d = (d != 0.0) ? 1.0 / d : 1.0;

  std::vector<double> r(n), z(n), p(n), ap(n);
  a.multiply(x, ap);
  double bnorm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - ap[i];
    bnorm += b[i] * b[i];
  }
  bnorm = std::sqrt(bnorm);
  if (bnorm == 0.0) bnorm = 1.0;

  for (std::size_t i = 0; i < n; ++i) z[i] = diag[i] * r[i];
  p = z;
  double rz = std::inner_product(r.begin(), r.end(), z.begin(), 0.0);

  CgResult res;
  for (int it = 0; it < opts.max_iterations; ++it) {
    res.iterations = it + 1;
    a.multiply(p, ap);
    const double pap = std::inner_product(p.begin(), p.end(), ap.begin(), 0.0);
    if (pap == 0.0) break;
    const double alpha = rz / pap;
    double rnorm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
      rnorm += r[i] * r[i];
    }
    rnorm = std::sqrt(rnorm);
    res.residual_norm = rnorm / bnorm;
    if (res.residual_norm <= opts.rel_tol) {
      res.converged = true;
      return res;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = diag[i] * r[i];
    const double rz_new =
        std::inner_product(r.begin(), r.end(), z.begin(), 0.0);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return res;
}

}  // namespace dsmt::numeric
