#include "numeric/sparse.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/run_context.h"
#include "numeric/fault_injection.h"

namespace dsmt::numeric {

CsrMatrix::CsrMatrix(const SparseBuilder& builder) : n_(builder.size()) {
  const auto& r = builder.rows();
  const auto& c = builder.cols();
  const auto& v = builder.values();
  const std::size_t nnz_in = v.size();

  // Sort triplets by (row, col) via an index permutation.
  std::vector<std::size_t> order(nnz_in);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return r[a] != r[b] ? r[a] < r[b] : c[a] < c[b];
  });

  row_ptr_.assign(n_ + 1, 0);
  col_idx_.reserve(nnz_in);
  vals_.reserve(nnz_in);
  std::size_t prev_row = static_cast<std::size_t>(-1);
  std::size_t prev_col = static_cast<std::size_t>(-1);
  for (std::size_t k : order) {
    if (r[k] >= n_ || c[k] >= n_)
      throw std::out_of_range("CsrMatrix: index out of range");
    if (r[k] == prev_row && c[k] == prev_col) {
      vals_.back() += v[k];  // merge duplicate
      continue;
    }
    col_idx_.push_back(c[k]);
    vals_.push_back(v[k]);
    row_ptr_[r[k] + 1] += 1;
    prev_row = r[k];
    prev_col = c[k];
  }
  for (std::size_t i = 0; i < n_; ++i) row_ptr_[i + 1] += row_ptr_[i];
}

void CsrMatrix::multiply(const std::vector<double>& x,
                         std::vector<double>& y) const {
  if (x.size() != n_) throw std::invalid_argument("CsrMatrix::multiply");
  y.assign(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      acc += vals_[k] * x[col_idx_[k]];
    y[i] = acc;
  }
}

std::vector<double> CsrMatrix::diagonal() const {
  std::vector<double> d(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      if (col_idx_[k] == i) d[i] = vals_[k];
  return d;
}

CgResult conjugate_gradient(const CsrMatrix& a, const std::vector<double>& b,
                            std::vector<double>& x, const CgOptions& opts) {
  const std::size_t n = a.size();
  if (b.size() != n) throw std::invalid_argument("conjugate_gradient: rhs");
  if (x.size() != n) x.assign(n, 0.0);

  std::vector<double> diag = a.diagonal();
  for (double& d : diag) d = (d != 0.0) ? 1.0 / d : 1.0;

  std::vector<double> r(n), z(n), p(n), ap(n);
  a.multiply(x, ap);
  double bnorm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - ap[i];
    bnorm += b[i] * b[i];
  }
  bnorm = std::sqrt(bnorm);
  if (bnorm == 0.0) {
    // All-zero RHS: x = 0 is the exact solution of an SPD system; report it
    // instead of grinding the iteration against a zero search direction.
    x.assign(n, 0.0);
    CgResult res;
    res.converged = true;
    res.status = core::StatusCode::kOk;
    return res;
  }

  for (std::size_t i = 0; i < n; ++i) z[i] = diag[i] * r[i];
  p = z;
  double rz = std::inner_product(r.begin(), r.end(), z.begin(), 0.0);

  CgResult res;
  const int max_it = fault::clamp_iterations("numeric/cg",
                                             opts.max_iterations);
  for (int it = 0; it < max_it; ++it) {
    if (const auto rc = core::run_check(); rc != core::StatusCode::kOk) {
      res.status = rc;
      return res;
    }
    res.iterations = it + 1;
    a.multiply(p, ap);
    const double pap = std::inner_product(p.begin(), p.end(), ap.begin(), 0.0);
    if (pap == 0.0) {
      res.status = core::StatusCode::kSingularSystem;
      return res;
    }
    const double alpha = rz / pap;
    double rnorm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
      rnorm += r[i] * r[i];
    }
    rnorm = fault::filter_residual("numeric/cg", res.iterations,
                                   std::sqrt(rnorm));
    res.residual_norm = rnorm / bnorm;
    if (!std::isfinite(res.residual_norm)) {
      res.status = core::StatusCode::kNonFinite;
      return res;
    }
    if (res.residual_norm <= opts.rel_tol) {
      res.converged = true;
      res.status = core::StatusCode::kOk;
      return res;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = diag[i] * r[i];
    const double rz_new =
        std::inner_product(r.begin(), r.end(), z.begin(), 0.0);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  res.status = core::StatusCode::kMaxIterations;
  return res;
}

CgResult conjugate_gradient_robust(const CsrMatrix& a,
                                   const std::vector<double>& b,
                                   std::vector<double>& x,
                                   const CgOptions& opts,
                                   core::SolverDiag& diag) {
  CgResult r = conjugate_gradient(a, b, x, opts);
  diag.record("numeric/cg", r.status, r.iterations, r.residual_norm);
  if (r.ok()) return r;

  if (r.status == core::StatusCode::kNonFinite) {
    // Cold restart once: a transient overflow from a bad warm start clears;
    // a structural NaN (in A or b) recurs and stays fatal.
    x.assign(x.size(), 0.0);
    r = conjugate_gradient(a, b, x, opts);
    diag.record("numeric/cg", r.status, r.iterations, r.residual_norm,
                "cold restart after non-finite residual");
    return r;
  }
  if (r.status == core::StatusCode::kMaxIterations) {
    CgOptions escalated = opts;
    escalated.max_iterations = opts.max_iterations * 4;
    r = conjugate_gradient(a, b, x, escalated);  // warm start from current x
    diag.record("numeric/cg", r.status, r.iterations, r.residual_norm,
                "warm-started Jacobi retry, 4x budget");
  }
  return r;
}

}  // namespace dsmt::numeric
