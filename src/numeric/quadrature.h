// Numerical quadrature over sampled waveforms and callables. The current-
// density definitions of the paper (Eqs. 2-3) are integrals over one period;
// the circuit engine produces non-uniformly sampled waveforms, so the sampled
// variants accept explicit abscissae.
#pragma once

#include <functional>
#include <vector>

namespace dsmt::numeric {

/// Composite trapezoidal rule over uniformly spaced samples on [a, b].
/// Bounds a, b in f's argument unit [1].
double trapezoid(const std::function<double(double)>& f, double a, double b,
                 int intervals);

/// Composite Simpson rule over [a, b]; `intervals` is rounded up to even.
/// Bounds a, b in f's argument unit [1].
double simpson(const std::function<double(double)>& f, double a, double b,
               int intervals);

/// Adaptive Simpson with absolute tolerance `tol`.
/// Bounds a, b in f's argument unit [1]; tol in f's value unit [1].
double adaptive_simpson(const std::function<double(double)>& f, double a,
                        double b, double tol = 1e-10, int max_depth = 30);

/// Trapezoidal integral of samples y(t) over non-uniform abscissae t.
double trapezoid_sampled(const std::vector<double>& t,
                         const std::vector<double>& y);

/// Trapezoidal integral of y(t)^2 over non-uniform abscissae (for RMS).
double trapezoid_sampled_squared(const std::vector<double>& t,
                                 const std::vector<double>& y);

}  // namespace dsmt::numeric
