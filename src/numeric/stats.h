// Running statistics and sampled-waveform metrics shared by the circuit
// measurement layer and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace dsmt::numeric {

/// Welford-style running accumulator.
class RunningStats {
 public:
  /// v in the sample unit [1].
  void add(double v);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// RMS of samples y(t) over the spanned interval (trapezoidal in y^2).
double rms_sampled(const std::vector<double>& t, const std::vector<double>& y);

/// Time average of samples y(t) over the spanned interval.
double mean_sampled(const std::vector<double>& t, const std::vector<double>& y);

/// Largest |y|.
double peak_abs(const std::vector<double>& y);

}  // namespace dsmt::numeric
