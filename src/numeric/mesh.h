// Graded rectilinear mesh axes shared by the finite-volume field solvers
// (2-D/3-D thermal, electrostatic extraction).
#pragma once

#include <set>
#include <vector>

namespace dsmt::numeric {

/// Builds cell-edge coordinates covering [lo, hi]: every breakpoint within
/// the domain becomes an edge (deduplicated below h_min/4), and each
/// interval is subdivided with a target size graded between h_min and
/// h_max. Throws std::runtime_error if the axis degenerates.
/// Coordinates lo, hi, h_min, h_max in the axis unit [m].
std::vector<double> graded_axis(std::set<double> breakpoints, double lo,
                                double hi, double h_min, double h_max);

/// Cell centers and sizes from an edge vector.
struct AxisCells {
  std::vector<double> center;
  std::vector<double> size;
};
AxisCells axis_cells(const std::vector<double>& edges);

}  // namespace dsmt::numeric
