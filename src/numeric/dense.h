// Small dense linear algebra: row-major matrix, LU factorization with partial
// pivoting, and solve. Sized for circuit MNA systems (tens to a few hundred
// unknowns); the field solvers use the sparse CG path instead.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace dsmt::numeric {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  /// fill [1]: initial value of every entry.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Reset every entry to `v` without reallocating.
  /// v [1].
  void fill(double v) { data_.assign(data_.size(), v); }

  /// Matrix-vector product. `x.size()` must equal `cols()`.
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// In-place LU factorization with partial pivoting (Doolittle).
/// After construction, `solve` performs forward/back substitution; the
/// factorization is reusable across many right-hand sides (the transient
/// circuit engine exploits this whenever the Jacobian is unchanged).
class LuFactorization {
 public:
  /// Factorizes a copy of `a`. Throws std::runtime_error on singularity
  /// (pivot below `pivot_tol`).
  /// pivot_tol [1].
  explicit LuFactorization(const Matrix& a, double pivot_tol = 1e-300);

  std::size_t size() const { return n_; }

  /// Solves A x = b. `b.size()` must equal `size()`.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Determinant of the factorized matrix (sign-corrected for pivoting).
  double determinant() const;

 private:
  std::size_t n_ = 0;
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
};

/// Convenience: solve A x = b with a one-shot LU factorization.
std::vector<double> solve_dense(const Matrix& a, const std::vector<double>& b);

}  // namespace dsmt::numeric
