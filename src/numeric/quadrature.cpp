#include "numeric/quadrature.h"

#include <cmath>
#include <stdexcept>

namespace dsmt::numeric {

double trapezoid(const std::function<double(double)>& f, double a, double b,
                 int intervals) {
  if (intervals < 1) throw std::invalid_argument("trapezoid: intervals < 1");
  const double h = (b - a) / intervals;
  double acc = 0.5 * (f(a) + f(b));
  for (int i = 1; i < intervals; ++i) acc += f(a + i * h);
  return acc * h;
}

double simpson(const std::function<double(double)>& f, double a, double b,
               int intervals) {
  if (intervals < 2) intervals = 2;
  if (intervals % 2) ++intervals;
  const double h = (b - a) / intervals;
  double acc = f(a) + f(b);
  for (int i = 1; i < intervals; ++i)
    acc += f(a + i * h) * ((i % 2) ? 4.0 : 2.0);
  return acc * h / 3.0;
}

namespace {
double simpson_segment(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive_impl(const std::function<double(double)>& f, double a,
                     double fa, double b, double fb, double m, double fm,
                     double whole, double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson_segment(a, fa, m, fm, flm);
  const double right = simpson_segment(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol)
    return left + right + delta / 15.0;
  return adaptive_impl(f, a, fa, m, fm, lm, flm, left, tol * 0.5, depth - 1) +
         adaptive_impl(f, m, fm, b, fb, rm, frm, right, tol * 0.5, depth - 1);
}
}  // namespace

double adaptive_simpson(const std::function<double(double)>& f, double a,
                        double b, double tol, int max_depth) {
  const double m = 0.5 * (a + b);
  const double fa = f(a), fb = f(b), fm = f(m);
  const double whole = simpson_segment(a, fa, b, fb, fm);
  return adaptive_impl(f, a, fa, b, fb, m, fm, whole, tol, max_depth);
}

double trapezoid_sampled(const std::vector<double>& t,
                         const std::vector<double>& y) {
  if (t.size() != y.size() || t.size() < 2)
    throw std::invalid_argument("trapezoid_sampled: need >=2 samples");
  double acc = 0.0;
  for (std::size_t i = 1; i < t.size(); ++i)
    acc += 0.5 * (y[i] + y[i - 1]) * (t[i] - t[i - 1]);
  return acc;
}

double trapezoid_sampled_squared(const std::vector<double>& t,
                                 const std::vector<double>& y) {
  if (t.size() != y.size() || t.size() < 2)
    throw std::invalid_argument("trapezoid_sampled_squared: need >=2 samples");
  double acc = 0.0;
  for (std::size_t i = 1; i < t.size(); ++i)
    acc += 0.5 * (y[i] * y[i] + y[i - 1] * y[i - 1]) * (t[i] - t[i - 1]);
  return acc;
}

}  // namespace dsmt::numeric
