#include "numeric/stats.h"

#include <cmath>
#include <stdexcept>

#include "numeric/quadrature.h"

namespace dsmt::numeric {

void RunningStats::add(double v) {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++n_;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (v - mean_);
}

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double rms_sampled(const std::vector<double>& t, const std::vector<double>& y) {
  const double span = t.back() - t.front();
  if (span <= 0.0) throw std::invalid_argument("rms_sampled: zero span");
  return std::sqrt(trapezoid_sampled_squared(t, y) / span);
}

double mean_sampled(const std::vector<double>& t,
                    const std::vector<double>& y) {
  const double span = t.back() - t.front();
  if (span <= 0.0) throw std::invalid_argument("mean_sampled: zero span");
  return trapezoid_sampled(t, y) / span;
}

double peak_abs(const std::vector<double>& y) {
  double p = 0.0;
  for (double v : y) p = std::max(p, std::abs(v));
  return p;
}

}  // namespace dsmt::numeric
