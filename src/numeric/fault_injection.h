// Deterministic fault injection for the iterative kernels.
//
// Compiled in unconditionally so release and test builds run the same code:
// when disarmed every hook is a single branch on a global flag and returns
// its input untouched, which keeps production outputs bit-identical. Tests
// arm a FaultPlan (via ScopedFault) to force NaN residuals, early iteration
// exhaustion, or residual perturbation inside a chosen kernel, then assert
// that every public API either recovers (with the recovery recorded in its
// core::SolverDiag chain) or throws dsmt::SolveError — never returns silent
// garbage.
#pragma once

#include <string>

namespace dsmt::numeric::fault {

enum class FaultKind {
  kNone = 0,
  kNanResidual,        ///< residual becomes NaN from `at_iteration` on
  kExhaustIterations,  ///< iteration budget clamped to `at_iteration`
  kPerturbResidual,    ///< residual scaled by `scale` from `at_iteration` on
};

/// What to inject and where. Kernels are matched by substring, so
/// "numeric/cg" hits every CG solve while "" hits every hooked kernel.
struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  std::string kernel_substr;  ///< applies to kernels containing this
  int at_iteration = 1;       ///< first iteration (1-based) the fault fires
  double scale = 10.0;        ///< residual multiplier [1] for kPerturbResidual
};

/// Arms `plan` globally and resets the injection counter. Arm/disarm should
/// happen outside any parallel region for deterministic firing; the hooks
/// are safe to hit from pool workers (atomic armed flag, mutex-guarded
/// plan), so an armed fault fires inside parallel sweeps and surfaces
/// through parallel_for's error propagation — and a disarm that races a
/// straggling worker is merely non-deterministic, never a data race.
void arm(const FaultPlan& plan);
void disarm();
bool armed();
/// Number of times the armed fault has fired since arm().
int injection_count();

/// Kernel hook: each iteration's convergence residual passes through here.
/// residual [1]: the kernel's own convergence norm, returned unchanged when
/// disarmed or unmatched.
double filter_residual(const char* kernel, int iteration, double residual);

/// Kernel hook: iteration budgets pass through here; kExhaustIterations
/// clamps the budget to `at_iteration`.
int clamp_iterations(const char* kernel, int max_iterations);

/// RAII arm/disarm for tests.
class ScopedFault {
 public:
  explicit ScopedFault(const FaultPlan& plan) { arm(plan); }
  ~ScopedFault() { disarm(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace dsmt::numeric::fault
