// Deterministic fault injection for the iterative kernels.
//
// Compiled in unconditionally so release and test builds run the same code:
// when disarmed every hook is a single branch on a global flag and returns
// its input untouched, which keeps production outputs bit-identical. Tests
// arm a FaultPlan (via ScopedFault) to force NaN residuals, early iteration
// exhaustion, or residual perturbation inside a chosen kernel, then assert
// that every public API either recovers (with the recovery recorded in its
// core::SolverDiag chain) or throws dsmt::SolveError — never returns silent
// garbage.
#pragma once

#include <string>

namespace dsmt::numeric::fault {

enum class FaultKind {
  kNone = 0,
  kNanResidual,        ///< residual becomes NaN from `at_iteration` on
  kExhaustIterations,  ///< iteration budget clamped to `at_iteration`
  kPerturbResidual,    ///< residual scaled by `scale` from `at_iteration` on
  kThrowBadAlloc,      ///< filter_residual throws std::bad_alloc when matched
  // Crash arms for the process-supervision chaos harness (src/supervise/).
  // They fire only through crash_point() and only after the process opted in
  // with allow_crash_faults() — a supervised worker child does, the parent
  // never does, so an armed crash plan cannot take down the front end.
  kCrashAbort,  ///< std::abort() — death by SIGABRT
  kCrashSegv,   ///< store through an invalid pointer — death by SIGSEGV
  kCrashOom,    ///< allocate until the rail kills the child (OOM/RLIMIT_AS)
  kCrashStall,  ///< wedge in a sleep loop until the supervisor kills it
};

/// True for the kinds that terminate the process instead of perturbing a
/// residual. Crash kinds are inert outside crash_point()/allow_crash_faults.
constexpr bool is_crash_kind(FaultKind kind) {
  return kind == FaultKind::kCrashAbort || kind == FaultKind::kCrashSegv ||
         kind == FaultKind::kCrashOom || kind == FaultKind::kCrashStall;
}

/// What to inject and where. Kernels are matched by substring, so
/// "numeric/cg" hits every CG solve while "" hits every hooked kernel.
struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  std::string kernel_substr;  ///< applies to kernels containing this
  int at_iteration = 1;       ///< first iteration (1-based) the fault fires
  double scale = 10.0;        ///< residual multiplier [1] for kPerturbResidual
  /// Crash kinds only: the crash fires when the crash_point key (the request
  /// id in the supervised worker loop) contains this substring. Empty
  /// matches every key — every request becomes poison.
  std::string key_substr;
};

/// Arms `plan` globally and resets the injection counter. Arm/disarm should
/// happen outside any parallel region for deterministic firing; the hooks
/// are safe to hit from pool workers (atomic armed flag, mutex-guarded
/// plan), so an armed fault fires inside parallel sweeps and surfaces
/// through parallel_for's error propagation — and a disarm that races a
/// straggling worker is merely non-deterministic, never a data race.
void arm(const FaultPlan& plan);
void disarm();
bool armed();
/// Number of times the armed fault has fired since arm().
int injection_count();

/// Kernel hook: each iteration's convergence residual passes through here.
/// residual [1]: the kernel's own convergence norm, returned unchanged when
/// disarmed or unmatched.
double filter_residual(const char* kernel, int iteration, double residual);

/// Kernel hook: iteration budgets pass through here; kExhaustIterations
/// clamps the budget to `at_iteration`.
int clamp_iterations(const char* kernel, int max_iterations);

/// Opts the CURRENT PROCESS into crash faults. The supervised worker child
/// calls this right after fork(); nothing else ever should. Without the
/// opt-in, crash_point() is inert even with a crash plan armed, so a plan
/// that leaks into the parent cannot kill the front end.
void allow_crash_faults();
bool crash_faults_allowed();

/// Crash hook for the supervision chaos harness: when a crash kind is armed,
/// this process opted in via allow_crash_faults(), `site` contains the
/// plan's kernel_substr, and `key` contains its key_substr, the process dies
/// by the armed mechanism (abort / invalid store / allocation storm). A
/// no-op in every other case — one relaxed atomic load when disarmed.
void crash_point(const char* site, const std::string& key);

/// RAII arm/disarm for tests.
class ScopedFault {
 public:
  explicit ScopedFault(const FaultPlan& plan) { arm(plan); }
  ~ScopedFault() { disarm(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace dsmt::numeric::fault
