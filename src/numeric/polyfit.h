// Least-squares polynomial and linear fits. Used to extract the heat-
// spreading parameter phi from solved/measured thermal-impedance data
// (paper Eq. 14 / Fig. 5) and for waveform post-processing.
#pragma once

#include <vector>

namespace dsmt::numeric {

/// Fits y ~ sum_k c[k] x^k (degree = c.size()-1) by normal equations.
/// Returns coefficients lowest power first. Requires x.size() == y.size() and
/// at least degree+1 points.
std::vector<double> polyfit(const std::vector<double>& x,
                            const std::vector<double>& y, int degree);

/// Evaluates a polynomial with coefficients lowest power first.
/// x in the abscissa unit [1].
double polyval(const std::vector<double>& coeffs, double x);

/// Simple linear regression y = a + b x; returns {a, b, r^2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y);

}  // namespace dsmt::numeric
