#include "numeric/fault_injection.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>

#include "core/thread_annotations.h"

namespace dsmt::numeric::fault {

namespace {
// The armed flag is the lock-free fast path: with faults disarmed (every
// production run) a hook is one relaxed atomic load and an immediate return,
// so release outputs stay bit-identical. The plan itself lives behind an
// annotated mutex — hooks take it only *after* the armed check, so the
// serialization cost exists only inside armed test runs, and an arm/disarm
// that races a straggling worker is a locked handoff instead of a torn read
// of the plan's std::string.
Mutex g_plan_mu;  // NOLINT(cert-err58-cpp)
FaultPlan g_plan DSMT_GUARDED_BY(g_plan_mu);
std::atomic<bool> g_armed{false};
std::atomic<int> g_count{0};

bool matches(const char* kernel) DSMT_REQUIRES(g_plan_mu) {
  return g_plan.kernel_substr.empty() ||
         std::strstr(kernel, g_plan.kernel_substr.c_str()) != nullptr;
}
}  // namespace

void arm(const FaultPlan& plan) {
  MutexLock lock(g_plan_mu);
  g_plan = plan;
  g_count.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void disarm() {
  MutexLock lock(g_plan_mu);
  g_armed.store(false, std::memory_order_release);
  g_plan = FaultPlan{};
}

bool armed() { return g_armed.load(std::memory_order_acquire); }

int injection_count() { return g_count.load(std::memory_order_relaxed); }

double filter_residual(const char* kernel, int iteration, double residual) {
  if (!g_armed.load(std::memory_order_acquire)) return residual;
  MutexLock lock(g_plan_mu);
  if (!g_armed.load(std::memory_order_relaxed) || !matches(kernel) ||
      iteration < g_plan.at_iteration)
    return residual;
  switch (g_plan.kind) {
    case FaultKind::kNanResidual:
      ++g_count;
      return std::numeric_limits<double>::quiet_NaN();
    case FaultKind::kPerturbResidual:
      ++g_count;
      return residual * g_plan.scale;
    case FaultKind::kExhaustIterations:
    case FaultKind::kNone:
      break;
  }
  return residual;
}

int clamp_iterations(const char* kernel, int max_iterations) {
  if (!g_armed.load(std::memory_order_acquire)) return max_iterations;
  MutexLock lock(g_plan_mu);
  if (!g_armed.load(std::memory_order_relaxed) || !matches(kernel) ||
      g_plan.kind != FaultKind::kExhaustIterations)
    return max_iterations;
  ++g_count;
  return std::min(max_iterations, g_plan.at_iteration);
}

}  // namespace dsmt::numeric::fault
