#include "numeric/fault_injection.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>

namespace dsmt::numeric::fault {

namespace {
// The plan is written only by arm()/disarm() — i.e. outside any parallel
// region, per the header contract — but the hooks are called from pool
// workers, so the armed flag and firing counter are atomics: armed() is the
// workers' acquire point for the plan written before the region started.
FaultPlan g_plan;
std::atomic<bool> g_armed{false};
std::atomic<int> g_count{0};

bool matches(const char* kernel) {
  return g_plan.kernel_substr.empty() ||
         std::strstr(kernel, g_plan.kernel_substr.c_str()) != nullptr;
}
}  // namespace

void arm(const FaultPlan& plan) {
  g_plan = plan;
  g_count.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void disarm() {
  g_armed.store(false, std::memory_order_release);
  g_plan = FaultPlan{};
}

bool armed() { return g_armed.load(std::memory_order_acquire); }

int injection_count() { return g_count.load(std::memory_order_relaxed); }

double filter_residual(const char* kernel, int iteration, double residual) {
  if (!g_armed || !matches(kernel) || iteration < g_plan.at_iteration)
    return residual;
  switch (g_plan.kind) {
    case FaultKind::kNanResidual:
      ++g_count;
      return std::numeric_limits<double>::quiet_NaN();
    case FaultKind::kPerturbResidual:
      ++g_count;
      return residual * g_plan.scale;
    case FaultKind::kExhaustIterations:
    case FaultKind::kNone:
      break;
  }
  return residual;
}

int clamp_iterations(const char* kernel, int max_iterations) {
  if (!g_armed || !matches(kernel) ||
      g_plan.kind != FaultKind::kExhaustIterations)
    return max_iterations;
  ++g_count;
  return std::min(max_iterations, g_plan.at_iteration);
}

}  // namespace dsmt::numeric::fault
