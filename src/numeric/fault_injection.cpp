#include "numeric/fault_injection.h"

#include <algorithm>
#include <cstring>
#include <limits>

namespace dsmt::numeric::fault {

namespace {
FaultPlan g_plan;
bool g_armed = false;
int g_count = 0;

bool matches(const char* kernel) {
  return g_plan.kernel_substr.empty() ||
         std::strstr(kernel, g_plan.kernel_substr.c_str()) != nullptr;
}
}  // namespace

void arm(const FaultPlan& plan) {
  g_plan = plan;
  g_armed = true;
  g_count = 0;
}

void disarm() {
  g_armed = false;
  g_plan = FaultPlan{};
}

bool armed() { return g_armed; }

int injection_count() { return g_count; }

double filter_residual(const char* kernel, int iteration, double residual) {
  if (!g_armed || !matches(kernel) || iteration < g_plan.at_iteration)
    return residual;
  switch (g_plan.kind) {
    case FaultKind::kNanResidual:
      ++g_count;
      return std::numeric_limits<double>::quiet_NaN();
    case FaultKind::kPerturbResidual:
      ++g_count;
      return residual * g_plan.scale;
    case FaultKind::kExhaustIterations:
    case FaultKind::kNone:
      break;
  }
  return residual;
}

int clamp_iterations(const char* kernel, int max_iterations) {
  if (!g_armed || !matches(kernel) ||
      g_plan.kind != FaultKind::kExhaustIterations)
    return max_iterations;
  ++g_count;
  return std::min(max_iterations, g_plan.at_iteration);
}

}  // namespace dsmt::numeric::fault
