#include "numeric/fault_injection.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"

namespace dsmt::numeric::fault {

namespace {
// The armed flag is the lock-free fast path: with faults disarmed (every
// production run) a hook is one relaxed atomic load and an immediate return,
// so release outputs stay bit-identical. The plan itself lives behind an
// annotated mutex — hooks take it only *after* the armed check, so the
// serialization cost exists only inside armed test runs, and an arm/disarm
// that races a straggling worker is a locked handoff instead of a torn read
// of the plan's std::string.
Mutex g_plan_mu;  // NOLINT(cert-err58-cpp)
FaultPlan g_plan DSMT_GUARDED_BY(g_plan_mu);
std::atomic<bool> g_armed{false};
std::atomic<int> g_count{0};
/// Crash opt-in is process-local and one-way: a supervised worker child sets
/// it right after fork(); the parent never does, so an armed crash plan is
/// inert in the front-end process.
std::atomic<bool> g_crash_allowed{false};
/// Loaded through a volatile pointer object so the compiler cannot prove the
/// store traps and fold it away; the load yields nullptr and the store dies
/// by SIGSEGV — the deterministic "wild kernel write" stand-in.
char* volatile g_crash_target = nullptr;

bool matches(const char* kernel) DSMT_REQUIRES(g_plan_mu) {
  return g_plan.kernel_substr.empty() ||
         std::strstr(kernel, g_plan.kernel_substr.c_str()) != nullptr;
}
}  // namespace

void arm(const FaultPlan& plan) {
  MutexLock lock(g_plan_mu);
  g_plan = plan;
  g_count.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void disarm() {
  MutexLock lock(g_plan_mu);
  g_armed.store(false, std::memory_order_release);
  g_plan = FaultPlan{};
}

bool armed() { return g_armed.load(std::memory_order_acquire); }

int injection_count() { return g_count.load(std::memory_order_relaxed); }

double filter_residual(const char* kernel, int iteration, double residual) {
  if (!g_armed.load(std::memory_order_acquire)) return residual;
  MutexLock lock(g_plan_mu);
  if (!g_armed.load(std::memory_order_relaxed) || !matches(kernel) ||
      iteration < g_plan.at_iteration)
    return residual;
  switch (g_plan.kind) {
    case FaultKind::kNanResidual:
      ++g_count;
      return std::numeric_limits<double>::quiet_NaN();
    case FaultKind::kPerturbResidual:
      ++g_count;
      return residual * g_plan.scale;
    case FaultKind::kThrowBadAlloc:
      ++g_count;
      throw std::bad_alloc();
    case FaultKind::kExhaustIterations:
    case FaultKind::kNone:
    case FaultKind::kCrashAbort:
    case FaultKind::kCrashSegv:
    case FaultKind::kCrashOom:
    case FaultKind::kCrashStall:
      break;
  }
  return residual;
}

int clamp_iterations(const char* kernel, int max_iterations) {
  if (!g_armed.load(std::memory_order_acquire)) return max_iterations;
  MutexLock lock(g_plan_mu);
  if (!g_armed.load(std::memory_order_relaxed) || !matches(kernel) ||
      g_plan.kind != FaultKind::kExhaustIterations)
    return max_iterations;
  ++g_count;
  return std::min(max_iterations, g_plan.at_iteration);
}

void allow_crash_faults() {
  g_crash_allowed.store(true, std::memory_order_release);
}

bool crash_faults_allowed() {
  return g_crash_allowed.load(std::memory_order_acquire);
}

void crash_point(const char* site, const std::string& key) {
  if (!g_armed.load(std::memory_order_acquire)) return;
  if (!g_crash_allowed.load(std::memory_order_acquire)) return;
  FaultKind kind = FaultKind::kNone;
  {
    MutexLock lock(g_plan_mu);
    if (!g_armed.load(std::memory_order_relaxed) ||
        !is_crash_kind(g_plan.kind) || !matches(site))
      return;
    if (!g_plan.key_substr.empty() &&
        key.find(g_plan.key_substr) == std::string::npos)
      return;
    kind = g_plan.kind;
  }
  ++g_count;
  switch (kind) {
    case FaultKind::kCrashAbort:
      std::abort();
    case FaultKind::kCrashSegv:
      *g_crash_target = 1;  // invalid store: dies by SIGSEGV (or the
      std::abort();         // sanitizer's trap); never falls through
    case FaultKind::kCrashOom: {
      // Allocation storm: grows until RLIMIT_AS (or the OOM killer / the
      // sanitizer allocator) terminates the child. bad_alloc from a rail is
      // re-raised as SIGKILL to model the kernel OOM killer deterministically.
      try {
        std::vector<std::vector<char>> hoard;
        for (;;) {
          hoard.emplace_back(std::size_t{64} << 20);
          // Touch every page so the pages are really committed.
          for (std::size_t i = 0; i < hoard.back().size(); i += 4096)
            hoard.back()[i] = static_cast<char>(i);
        }
      } catch (const std::bad_alloc&) {
        (void)std::raise(SIGKILL);
      }
      std::abort();  // unreachable backstop: the child must not survive
    }
    case FaultKind::kCrashStall:
      // Wedge, don't die: models a livelock/infinite loop the supervisor
      // can only resolve by deadline-killing the child (SIGKILL ends the
      // sleep loop — nothing here ever returns).
      for (;;)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    case FaultKind::kNone:
    case FaultKind::kNanResidual:
    case FaultKind::kExhaustIterations:
    case FaultKind::kPerturbResidual:
    case FaultKind::kThrowBadAlloc:
      break;
  }
}

}  // namespace dsmt::numeric::fault
