// Piecewise-linear interpolation over monotone abscissae. Used for waveform
// resampling (uniform-grid RMS/duty-cycle measurements) and table lookups.
#pragma once

#include <vector>

namespace dsmt::numeric {

/// Immutable piecewise-linear interpolant. Abscissae must be strictly
/// increasing; evaluation clamps outside the domain.
class LinearInterpolant {
 public:
  LinearInterpolant(std::vector<double> x, std::vector<double> y);

  /// xq in the x-axis unit [1]; result in the y-axis unit [1].
  double operator()(double xq) const;

  double x_min() const { return x_.front(); }
  double x_max() const { return x_.back(); }

  /// Resamples onto `n` uniform points across the domain.
  std::pair<std::vector<double>, std::vector<double>> resample(int n) const;

 private:
  std::vector<double> x_, y_;
};

}  // namespace dsmt::numeric
