#include "numeric/interp.h"

#include <algorithm>
#include <stdexcept>

namespace dsmt::numeric {

LinearInterpolant::LinearInterpolant(std::vector<double> x,
                                     std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  if (x_.size() != y_.size() || x_.size() < 2)
    throw std::invalid_argument("LinearInterpolant: need >=2 points");
  for (std::size_t i = 1; i < x_.size(); ++i)
    if (x_[i] <= x_[i - 1])
      throw std::invalid_argument(
          "LinearInterpolant: abscissae must be strictly increasing");
}

double LinearInterpolant::operator()(double xq) const {
  if (xq <= x_.front()) return y_.front();
  if (xq >= x_.back()) return y_.back();
  const auto it = std::upper_bound(x_.begin(), x_.end(), xq);
  const std::size_t i = static_cast<std::size_t>(it - x_.begin());
  const double t = (xq - x_[i - 1]) / (x_[i] - x_[i - 1]);
  return y_[i - 1] + t * (y_[i] - y_[i - 1]);
}

std::pair<std::vector<double>, std::vector<double>> LinearInterpolant::resample(
    int n) const {
  if (n < 2) throw std::invalid_argument("resample: n < 2");
  std::vector<double> xs(n), ys(n);
  const double h = (x_.back() - x_.front()) / (n - 1);
  for (int i = 0; i < n; ++i) {
    xs[i] = x_.front() + i * h;
    ys[i] = (*this)(xs[i]);
  }
  return {std::move(xs), std::move(ys)};
}

}  // namespace dsmt::numeric
