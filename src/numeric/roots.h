// Scalar root finding: bisection, Brent's method, and damped Newton.
//
// The self-consistent interconnect-temperature equation (paper Eq. 13) is a
// single nonlinear equation with a guaranteed bracket, so Brent is the
// workhorse; bisection is the fallback and Newton is used where analytic
// derivatives are cheap (ESD time-to-failure inversions).
//
// Every kernel classifies its outcome with a core::StatusCode; the
// brent_robust() wrapper adds the standard recovery chain (bracket
// expansion, bisection fallback) and records each stage in a
// core::SolverDiag so failures surface with their full history.
#pragma once

#include <functional>
#include <optional>
#include <utility>

#include "core/status.h"

namespace dsmt::numeric {

/// Outcome of a scalar root search. [[nodiscard]]: dropping a root result
/// on the floor is exactly how an unconverged solve leaks garbage upstream.
struct [[nodiscard]] RootResult {
  double root = 0.0;        ///< abscissa of the root (valid iff converged)
  double f_at_root = 0.0;   ///< residual f(root)
  int iterations = 0;       ///< iterations consumed
  bool converged = false;   ///< true if tolerances were met
  core::StatusCode status = core::StatusCode::kMaxIterations;

  bool ok() const { return status == core::StatusCode::kOk; }
};

/// Options shared by the bracketing solvers.
struct RootOptions {
  double x_tol = 1e-12;     ///< absolute tolerance on the abscissa
  double f_tol = 0.0;       ///< absolute tolerance on the residual (0 = off)
  int max_iterations = 200;
};

/// Classic bisection on [lo, hi]. Requires f(lo) and f(hi) of opposite sign;
/// returns status kNoBracket otherwise.
/// lo, hi in f's argument unit [1].
RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  const RootOptions& opts = {});

/// Brent's method (inverse quadratic interpolation + secant + bisection).
/// Requires a sign change on [lo, hi]. Converges superlinearly on smooth f
/// while retaining bisection's robustness.
/// lo, hi in f's argument unit [1].
RootResult brent(const std::function<double(double)>& f, double lo, double hi,
                 const RootOptions& opts = {});

/// Brent wrapped in the standard recovery chain: a missing bracket triggers
/// expand_bracket() and a retry; an exhausted or non-finite attempt falls
/// back to bisection with a 4x iteration budget. Every stage is recorded in
/// `diag`; the returned status is the final stage's outcome.
/// lo, hi in f's argument unit [1].
RootResult brent_robust(const std::function<double(double)>& f, double lo,
                        double hi, const RootOptions& opts,
                        core::SolverDiag& diag);

/// Damped Newton iteration from x0 with user-supplied derivative. Halves the
/// step (up to 40 times) whenever |f| fails to decrease.
/// x0 in f's argument unit [1].
RootResult newton(const std::function<double(double)>& f,
                  const std::function<double(double)>& dfdx, double x0,
                  const RootOptions& opts = {});

/// Expands [lo, hi] geometrically about its midpoint until f changes sign or
/// `max_doublings` is hit. Returns the bracket if found.
/// lo, hi in f's argument unit [1].
std::optional<std::pair<double, double>> expand_bracket(
    const std::function<double(double)>& f, double lo, double hi,
    int max_doublings = 60);

}  // namespace dsmt::numeric
