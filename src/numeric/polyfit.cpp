#include "numeric/polyfit.h"

#include <cmath>
#include <stdexcept>

#include "numeric/dense.h"

namespace dsmt::numeric {

std::vector<double> polyfit(const std::vector<double>& x,
                            const std::vector<double>& y, int degree) {
  if (degree < 0) throw std::invalid_argument("polyfit: negative degree");
  const std::size_t n = x.size();
  const std::size_t m = static_cast<std::size_t>(degree) + 1;
  if (y.size() != n || n < m)
    throw std::invalid_argument("polyfit: insufficient points");

  // Normal equations A^T A c = A^T y with Vandermonde A.
  Matrix ata(m, m, 0.0);
  std::vector<double> aty(m, 0.0);
  std::vector<double> powers(2 * m - 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double p = 1.0;
    std::vector<double> xp(m);
    for (std::size_t k = 0; k < m; ++k) {
      xp[k] = p;
      p *= x[i];
    }
    for (std::size_t rr = 0; rr < m; ++rr) {
      aty[rr] += xp[rr] * y[i];
      for (std::size_t cc = 0; cc < m; ++cc) ata(rr, cc) += xp[rr] * xp[cc];
    }
  }
  return solve_dense(ata, aty);
}

double polyval(const std::vector<double>& coeffs, double x) {
  double acc = 0.0;
  for (std::size_t k = coeffs.size(); k-- > 0;) acc = acc * x + coeffs[k];
  return acc;
}

LinearFit linear_fit(const std::vector<double>& x,
                     const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2)
    throw std::invalid_argument("linear_fit: need >=2 points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw std::runtime_error("linear_fit: degenerate x");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r_squared = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace dsmt::numeric
