// Physical constants and unit-conversion helpers used throughout dsmt.
//
// Internal unit policy (SI unless stated):
//   length        metres            temperature  kelvin
//   current       amperes           resistivity  ohm-metre
//   current dens. A/m^2             therm. cond. W/(m*K)
//   capacitance   farads            heat cap.    J/(m^3*K)
//
// The DAC-99 paper quotes current densities in MA/cm^2 and lengths in um;
// the conversion helpers below keep paper-facing code readable.
#pragma once

namespace dsmt {

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmannJ = 1.380649e-23;
/// Boltzmann constant [eV/K] — Black's equation uses Q in eV.
inline constexpr double kBoltzmannEv = 8.617333262e-5;
/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;
/// Absolute zero offset: 0 degC in kelvin.
inline constexpr double kCelsiusOffset = 273.15;

/// Convert degrees Celsius to kelvin.
constexpr double celsius_to_kelvin(double t_c) { return t_c + kCelsiusOffset; }
/// Convert kelvin to degrees Celsius.
constexpr double kelvin_to_celsius(double t_k) { return t_k - kCelsiusOffset; }

/// Reference chip (silicon junction) temperature used by the paper: 100 degC.
inline constexpr double kTrefK = 373.15;

// --- length -----------------------------------------------------------------
constexpr double um(double v) { return v * 1e-6; }   ///< micrometres -> m
constexpr double nm(double v) { return v * 1e-9; }   ///< nanometres  -> m
constexpr double to_um(double m) { return m * 1e6; } ///< m -> micrometres

// --- current density --------------------------------------------------------
/// MA/cm^2 -> A/m^2.  1 MA/cm^2 = 1e6 A / 1e-4 m^2 = 1e10 A/m^2.
constexpr double MA_per_cm2(double v) { return v * 1e10; }
/// A/m^2 -> MA/cm^2.
constexpr double to_MA_per_cm2(double j) { return j * 1e-10; }

// --- resistivity ------------------------------------------------------------
/// micro-ohm-cm -> ohm-m.  1 uOhm-cm = 1e-6 * 1e-2 Ohm-m = 1e-8 Ohm-m.
constexpr double uohm_cm(double v) { return v * 1e-8; }

// --- time -------------------------------------------------------------------
constexpr double ns(double v) { return v * 1e-9; }
constexpr double ps(double v) { return v * 1e-12; }

// --- capacitance ------------------------------------------------------------
constexpr double fF(double v) { return v * 1e-15; }
constexpr double pF(double v) { return v * 1e-12; }
/// Vacuum permittivity [F/m].
inline constexpr double kEpsilon0 = 8.8541878128e-12;

}  // namespace dsmt
