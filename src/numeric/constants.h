// Back-compat forwarding header: the physical constants and unit helpers
// grew into the strong-typed dimensional layer in core/units.h. Everything
// that used to be declared here (kBoltzmannJ, kTrefK, um, MA_per_cm2, ...)
// is still reachable through this include; the conversion helpers now return
// units::Quantity values that implicitly decay to double.
#pragma once

#include "core/units.h"
