#include "numeric/ode.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dsmt::numeric {

OdeTrajectory rk4(const ScalarRhs& f, double t0, double y0, double t1,
                  int steps) {
  if (steps < 1) throw std::invalid_argument("rk4: steps < 1");
  OdeTrajectory tr;
  tr.t.reserve(steps + 1);
  tr.y.reserve(steps + 1);
  const double h = (t1 - t0) / steps;
  double t = t0, y = y0;
  tr.t.push_back(t);
  tr.y.push_back(y);
  for (int i = 0; i < steps; ++i) {
    const double k1 = f(t, y);
    const double k2 = f(t + 0.5 * h, y + 0.5 * h * k1);
    const double k3 = f(t + 0.5 * h, y + 0.5 * h * k2);
    const double k4 = f(t + h, y + h * k3);
    y += h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    t = t0 + (i + 1) * h;
    tr.t.push_back(t);
    tr.y.push_back(y);
  }
  return tr;
}

OdeTrajectory rkf45(const ScalarRhs& f, double t0, double y0, double t1,
                    double abs_tol, double rel_tol,
                    const std::function<bool(double, double)>& event) {
  OdeTrajectory tr;
  double t = t0, y = y0;
  double h = (t1 - t0) / 100.0;
  const double h_min = (t1 - t0) * 1e-14;
  tr.t.push_back(t);
  tr.y.push_back(y);

  while (t < t1) {
    h = std::min(h, t1 - t);
    // Fehlberg coefficients.
    const double k1 = f(t, y);
    const double k2 = f(t + h / 4.0, y + h * k1 / 4.0);
    const double k3 =
        f(t + 3.0 * h / 8.0, y + h * (3.0 * k1 + 9.0 * k2) / 32.0);
    const double k4 = f(t + 12.0 * h / 13.0,
                        y + h * (1932.0 * k1 - 7200.0 * k2 + 7296.0 * k3) /
                                2197.0);
    const double k5 = f(t + h, y + h * (439.0 / 216.0 * k1 - 8.0 * k2 +
                                        3680.0 / 513.0 * k3 -
                                        845.0 / 4104.0 * k4));
    const double k6 =
        f(t + h / 2.0, y + h * (-8.0 / 27.0 * k1 + 2.0 * k2 -
                                3544.0 / 2565.0 * k3 + 1859.0 / 4104.0 * k4 -
                                11.0 / 40.0 * k5));
    const double y4 = y + h * (25.0 / 216.0 * k1 + 1408.0 / 2565.0 * k3 +
                               2197.0 / 4104.0 * k4 - k5 / 5.0);
    const double y5 = y + h * (16.0 / 135.0 * k1 + 6656.0 / 12825.0 * k3 +
                               28561.0 / 56430.0 * k4 - 9.0 / 50.0 * k5 +
                               2.0 / 55.0 * k6);
    const double err = std::abs(y5 - y4);
    const double tol = abs_tol + rel_tol * std::max(std::abs(y), std::abs(y5));
    if (err <= tol || h <= h_min) {
      t += h;
      y = y5;
      tr.t.push_back(t);
      tr.y.push_back(y);
      if (event && event(t, y)) break;
    }
    // PI-style step adaptation with safety factor.
    const double scale =
        (err > 0.0) ? 0.9 * std::pow(tol / err, 0.2) : 4.0;
    h *= std::clamp(scale, 0.2, 4.0);
    if (h < h_min) h = h_min;
  }
  return tr;
}

OdeTrajectory implicit_euler(const ScalarRhs& f, double t0, double y0,
                             double t1, int steps) {
  if (steps < 1) throw std::invalid_argument("implicit_euler: steps < 1");
  OdeTrajectory tr;
  const double h = (t1 - t0) / steps;
  double t = t0, y = y0;
  tr.t.push_back(t);
  tr.y.push_back(y);
  for (int i = 0; i < steps; ++i) {
    const double tn = t0 + (i + 1) * h;
    // Newton on g(z) = z - y - h f(tn, z) with numeric derivative.
    double z = y + h * f(t, y);  // explicit predictor
    for (int it = 0; it < 50; ++it) {
      const double g = z - y - h * f(tn, z);
      const double dz = std::max(1e-8, std::abs(z) * 1e-8);
      const double gp = 1.0 - h * (f(tn, z + dz) - f(tn, z - dz)) / (2.0 * dz);
      if (gp == 0.0) break;
      const double step = g / gp;
      z -= step;
      if (std::abs(step) <= 1e-12 * std::max(1.0, std::abs(z))) break;
    }
    y = z;
    t = tn;
    tr.t.push_back(t);
    tr.y.push_back(y);
  }
  return tr;
}

}  // namespace dsmt::numeric
