#include "numeric/dense.h"

#include <cmath>

namespace dsmt::numeric {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::multiply(const std::vector<double>& x) const {
  if (x.size() != cols_) throw std::invalid_argument("Matrix::multiply: size");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

LuFactorization::LuFactorization(const Matrix& a, double pivot_tol)
    : n_(a.rows()), lu_(a), perm_(a.rows()) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("LuFactorization: matrix must be square");
  for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n_; ++k) {
    // Partial pivot: largest magnitude in column k at/below the diagonal.
    std::size_t p = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best < pivot_tol)
      throw std::runtime_error("LuFactorization: singular matrix");
    if (p != k) {
      for (std::size_t c = 0; c < n_; ++c) std::swap(lu_(k, c), lu_(p, c));
      std::swap(perm_[k], perm_[p]);
      perm_sign_ = -perm_sign_;
    }
    const double piv = lu_(k, k);
    for (std::size_t i = k + 1; i < n_; ++i) {
      const double m = lu_(i, k) / piv;
      lu_(i, k) = m;
      if (m == 0.0) continue;
      for (std::size_t c = k + 1; c < n_; ++c) lu_(i, c) -= m * lu_(k, c);
    }
  }
}

std::vector<double> LuFactorization::solve(const std::vector<double>& b) const {
  if (b.size() != n_) throw std::invalid_argument("LuFactorization::solve");
  std::vector<double> x(n_);
  for (std::size_t i = 0; i < n_; ++i) x[i] = b[perm_[i]];
  // Forward substitution (unit lower triangle).
  for (std::size_t i = 1; i < n_; ++i) {
    double acc = x[i];
    for (std::size_t c = 0; c < i; ++c) acc -= lu_(i, c) * x[c];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t c = ii + 1; c < n_; ++c) acc -= lu_(ii, c) * x[c];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

double LuFactorization::determinant() const {
  double d = perm_sign_;
  for (std::size_t i = 0; i < n_; ++i) d *= lu_(i, i);
  return d;
}

std::vector<double> solve_dense(const Matrix& a, const std::vector<double>& b) {
  return LuFactorization(a).solve(b);
}

}  // namespace dsmt::numeric
