#include "numeric/roots.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "core/run_context.h"
#include "numeric/fault_injection.h"

namespace dsmt::numeric {

namespace {
bool met(double a, double b, const RootOptions& o) {
  return std::abs(b - a) <= o.x_tol;
}

using core::StatusCode;
}  // namespace

RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  const RootOptions& opts) {
  RootResult r;
  double flo = f(lo);
  double fhi = f(hi);
  if (!std::isfinite(flo) || !std::isfinite(fhi)) {
    r.root = 0.5 * (lo + hi);
    r.f_at_root = std::isfinite(flo) ? fhi : flo;
    r.status = StatusCode::kNonFinite;
    return r;
  }
  if (flo == 0.0) return {lo, 0.0, 0, true, StatusCode::kOk};
  if (fhi == 0.0) return {hi, 0.0, 0, true, StatusCode::kOk};
  if (std::signbit(flo) == std::signbit(fhi)) {
    r.root = 0.5 * (lo + hi);
    r.f_at_root = f(r.root);
    r.status = StatusCode::kNoBracket;
    return r;  // no bracket: not converged
  }
  const int max_it = fault::clamp_iterations("numeric/bisect",
                                             opts.max_iterations);
  for (int i = 0; i < max_it; ++i) {
    if (const auto rc = core::run_check(); rc != StatusCode::kOk) {
      r.root = 0.5 * (lo + hi);
      r.f_at_root = flo;
      r.status = rc;
      return r;
    }
    const double mid = 0.5 * (lo + hi);
    const double fm = fault::filter_residual("numeric/bisect", i + 1, f(mid));
    r.iterations = i + 1;
    if (!std::isfinite(fm)) {
      r.root = mid;
      r.f_at_root = fm;
      r.status = StatusCode::kNonFinite;
      return r;
    }
    if (fm == 0.0 || met(lo, hi, opts) ||
        (opts.f_tol > 0.0 && std::abs(fm) <= opts.f_tol)) {
      return {mid, fm, r.iterations, true, StatusCode::kOk};
    }
    if (std::signbit(fm) == std::signbit(flo)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  r.root = 0.5 * (lo + hi);
  r.f_at_root = f(r.root);
  r.converged = met(lo, hi, opts);
  r.status = r.converged ? StatusCode::kOk : StatusCode::kMaxIterations;
  return r;
}

RootResult brent(const std::function<double(double)>& f, double lo, double hi,
                 const RootOptions& opts) {
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  RootResult res;
  if (!std::isfinite(fa) || !std::isfinite(fb)) {
    res.root = 0.5 * (a + b);
    res.f_at_root = std::isfinite(fa) ? fb : fa;
    res.status = StatusCode::kNonFinite;
    return res;
  }
  if (fa == 0.0) return {a, 0.0, 0, true, StatusCode::kOk};
  if (fb == 0.0) return {b, 0.0, 0, true, StatusCode::kOk};
  if (std::signbit(fa) == std::signbit(fb)) {
    res.root = 0.5 * (a + b);
    res.f_at_root = f(res.root);
    res.status = StatusCode::kNoBracket;
    return res;  // no bracket
  }
  double c = a, fc = fa;
  double d = b - a, e = d;
  const double eps = std::numeric_limits<double>::epsilon();

  const int max_it = fault::clamp_iterations("numeric/brent",
                                             opts.max_iterations);
  for (int iter = 0; iter < max_it; ++iter) {
    if (const auto rc = core::run_check(); rc != StatusCode::kOk) {
      res.root = b;
      res.f_at_root = fb;
      res.status = rc;
      return res;
    }
    res.iterations = iter + 1;
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol1 = 2.0 * eps * std::abs(b) + 0.5 * opts.x_tol;
    const double xm = 0.5 * (c - b);
    if (std::abs(xm) <= tol1 || fb == 0.0 ||
        (opts.f_tol > 0.0 && std::abs(fb) <= opts.f_tol)) {
      return {b, fb, res.iterations, true, StatusCode::kOk};
    }
    if (std::abs(e) >= tol1 && std::abs(fa) > std::abs(fb)) {
      // Attempt inverse quadratic interpolation (secant if only two points).
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double rr = fb / fc;
        p = s * (2.0 * xm * qq * (qq - rr) - (b - a) * (rr - 1.0));
        q = (qq - 1.0) * (rr - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      const double min1 = 3.0 * xm * q - std::abs(tol1 * q);
      const double min2 = std::abs(e * q);
      if (2.0 * p < std::min(min1, min2)) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol1) ? d : (xm > 0 ? tol1 : -tol1);
    fb = fault::filter_residual("numeric/brent", res.iterations, f(b));
    if (!std::isfinite(fb)) {
      res.root = b;
      res.f_at_root = fb;
      res.status = StatusCode::kNonFinite;
      return res;
    }
    if (std::signbit(fb) == std::signbit(fc)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  res.root = b;
  res.f_at_root = fb;
  res.converged = false;
  res.status = StatusCode::kMaxIterations;
  return res;
}

RootResult brent_robust(const std::function<double(double)>& f, double lo,
                        double hi, const RootOptions& opts,
                        core::SolverDiag& diag) {
  RootResult r = brent(f, lo, hi, opts);
  diag.record("numeric/brent", r.status, r.iterations, r.f_at_root);
  if (r.ok()) return r;
  // A deadline/cancel interruption is not a solver failure: retrying would
  // burn the remaining budget on attempts doomed to the same status.
  if (core::is_interruption(r.status)) return r;

  if (r.status == StatusCode::kNoBracket) {
    const auto bracket = expand_bracket(f, lo, hi);
    if (!bracket) {
      diag.record("numeric/expand_bracket", StatusCode::kNoBracket, 0,
                  r.f_at_root, "no sign change after 60 doublings");
      return r;
    }
    lo = bracket->first;
    hi = bracket->second;
    std::ostringstream note;
    note << "retry on expanded bracket [" << lo << ", " << hi << "]";
    r = brent(f, lo, hi, opts);
    diag.record("numeric/brent", r.status, r.iterations, r.f_at_root,
                note.str());
    if (r.ok()) return r;
    if (core::is_interruption(r.status)) return r;
  }

  // Bisection sweep: slower but immune to interpolation stalls, and a
  // different kernel name so faults pinned to Brent do not chase it here.
  RootOptions fallback = opts;
  fallback.max_iterations = opts.max_iterations * 4;
  const RootResult b = bisect(f, lo, hi, fallback);
  diag.record("numeric/bisect", b.status, b.iterations, b.f_at_root,
              "bisection fallback, 4x budget");
  return b;
}

RootResult newton(const std::function<double(double)>& f,
                  const std::function<double(double)>& dfdx, double x0,
                  const RootOptions& opts) {
  double x = x0;
  double fx = f(x);
  RootResult res;
  StatusCode stop = StatusCode::kMaxIterations;
  const int max_it = fault::clamp_iterations("numeric/newton",
                                             opts.max_iterations);
  for (int iter = 0; iter < max_it; ++iter) {
    if (const auto rc = core::run_check(); rc != StatusCode::kOk) {
      res.root = x;
      res.f_at_root = fx;
      res.status = rc;
      return res;
    }
    res.iterations = iter + 1;
    const double d = dfdx(x);
    if (d == 0.0) {
      stop = StatusCode::kSingularSystem;
      break;
    }
    double step = fx / d;
    double xn = x - step;
    double fn = fault::filter_residual("numeric/newton", res.iterations,
                                       f(xn));
    if (!std::isfinite(fn)) {
      res.root = xn;
      res.f_at_root = fn;
      res.status = StatusCode::kNonFinite;
      return res;
    }
    // Damping: halve the step until the residual shrinks.
    for (int k = 0; k < 40 && std::abs(fn) > std::abs(fx); ++k) {
      step *= 0.5;
      xn = x - step;
      fn = f(xn);
    }
    const bool done = std::abs(xn - x) <= opts.x_tol ||
                      (opts.f_tol > 0.0 && std::abs(fn) <= opts.f_tol);
    x = xn;
    fx = fn;
    if (done) return {x, fx, res.iterations, true, StatusCode::kOk};
  }
  res.root = x;
  res.f_at_root = fx;
  res.converged = opts.f_tol > 0.0 && std::abs(fx) <= opts.f_tol;
  res.status = res.converged ? StatusCode::kOk : stop;
  return res;
}

std::optional<std::pair<double, double>> expand_bracket(
    const std::function<double(double)>& f, double lo, double hi,
    int max_doublings) {
  double flo = f(lo), fhi = f(hi);
  for (int i = 0; i < max_doublings; ++i) {
    if (std::signbit(flo) != std::signbit(fhi)) return std::make_pair(lo, hi);
    const double w = hi - lo;
    if (std::abs(flo) < std::abs(fhi)) {
      lo -= 0.5 * w;
      flo = f(lo);
    } else {
      hi += 0.5 * w;
      fhi = f(hi);
    }
  }
  if (std::signbit(flo) != std::signbit(fhi)) return std::make_pair(lo, hi);
  return std::nullopt;
}

}  // namespace dsmt::numeric
