#include "numeric/roots.h"

#include <cmath>
#include <limits>

namespace dsmt::numeric {

namespace {
bool met(double a, double b, const RootOptions& o) {
  return std::abs(b - a) <= o.x_tol;
}
}  // namespace

RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  const RootOptions& opts) {
  RootResult r;
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return {lo, 0.0, 0, true};
  if (fhi == 0.0) return {hi, 0.0, 0, true};
  if (std::signbit(flo) == std::signbit(fhi)) {
    r.root = 0.5 * (lo + hi);
    r.f_at_root = f(r.root);
    return r;  // no bracket: not converged
  }
  for (int i = 0; i < opts.max_iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    r.iterations = i + 1;
    if (fm == 0.0 || met(lo, hi, opts) ||
        (opts.f_tol > 0.0 && std::abs(fm) <= opts.f_tol)) {
      return {mid, fm, r.iterations, true};
    }
    if (std::signbit(fm) == std::signbit(flo)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  r.root = 0.5 * (lo + hi);
  r.f_at_root = f(r.root);
  r.converged = met(lo, hi, opts);
  return r;
}

RootResult brent(const std::function<double(double)>& f, double lo, double hi,
                 const RootOptions& opts) {
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  RootResult res;
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};
  if (std::signbit(fa) == std::signbit(fb)) {
    res.root = 0.5 * (a + b);
    res.f_at_root = f(res.root);
    return res;  // no bracket
  }
  double c = a, fc = fa;
  double d = b - a, e = d;
  const double eps = std::numeric_limits<double>::epsilon();

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    res.iterations = iter + 1;
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol1 = 2.0 * eps * std::abs(b) + 0.5 * opts.x_tol;
    const double xm = 0.5 * (c - b);
    if (std::abs(xm) <= tol1 || fb == 0.0 ||
        (opts.f_tol > 0.0 && std::abs(fb) <= opts.f_tol)) {
      return {b, fb, res.iterations, true};
    }
    if (std::abs(e) >= tol1 && std::abs(fa) > std::abs(fb)) {
      // Attempt inverse quadratic interpolation (secant if only two points).
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double rr = fb / fc;
        p = s * (2.0 * xm * qq * (qq - rr) - (b - a) * (rr - 1.0));
        q = (qq - 1.0) * (rr - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      const double min1 = 3.0 * xm * q - std::abs(tol1 * q);
      const double min2 = std::abs(e * q);
      if (2.0 * p < std::min(min1, min2)) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol1) ? d : (xm > 0 ? tol1 : -tol1);
    fb = f(b);
    if (std::signbit(fb) == std::signbit(fc)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  res.root = b;
  res.f_at_root = fb;
  res.converged = false;
  return res;
}

RootResult newton(const std::function<double(double)>& f,
                  const std::function<double(double)>& dfdx, double x0,
                  const RootOptions& opts) {
  double x = x0;
  double fx = f(x);
  RootResult res;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    res.iterations = iter + 1;
    const double d = dfdx(x);
    if (d == 0.0) break;
    double step = fx / d;
    double xn = x - step;
    double fn = f(xn);
    // Damping: halve the step until the residual shrinks.
    for (int k = 0; k < 40 && std::abs(fn) > std::abs(fx); ++k) {
      step *= 0.5;
      xn = x - step;
      fn = f(xn);
    }
    const bool done = std::abs(xn - x) <= opts.x_tol ||
                      (opts.f_tol > 0.0 && std::abs(fn) <= opts.f_tol);
    x = xn;
    fx = fn;
    if (done) return {x, fx, res.iterations, true};
  }
  res.root = x;
  res.f_at_root = fx;
  res.converged = opts.f_tol > 0.0 && std::abs(fx) <= opts.f_tol;
  return res;
}

std::optional<std::pair<double, double>> expand_bracket(
    const std::function<double(double)>& f, double lo, double hi,
    int max_doublings) {
  double flo = f(lo), fhi = f(hi);
  for (int i = 0; i < max_doublings; ++i) {
    if (std::signbit(flo) != std::signbit(fhi)) return std::make_pair(lo, hi);
    const double w = hi - lo;
    if (std::abs(flo) < std::abs(fhi)) {
      lo -= 0.5 * w;
      flo = f(lo);
    } else {
      hi += 0.5 * w;
      fhi = f(hi);
    }
  }
  if (std::signbit(flo) != std::signbit(fhi)) return std::make_pair(lo, hi);
  return std::nullopt;
}

}  // namespace dsmt::numeric
