#include "numeric/mesh.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dsmt::numeric {

std::vector<double> graded_axis(std::set<double> breakpoints, double lo,
                                double hi, double h_min, double h_max) {
  breakpoints.insert(lo);
  breakpoints.insert(hi);
  std::vector<double> pts;
  for (double b : breakpoints)
    if (b >= lo - 1e-15 && b <= hi + 1e-15)
      if (pts.empty() || b - pts.back() > 0.25 * h_min) pts.push_back(b);
  if (pts.size() < 2) throw std::runtime_error("graded_axis: degenerate");

  std::vector<double> edges{pts.front()};
  for (std::size_t k = 1; k < pts.size(); ++k) {
    const double len = pts[k] - pts[k - 1];
    const double h = std::clamp(len / 8.0, h_min, h_max);
    const int n = std::max(1, static_cast<int>(std::ceil(len / h)));
    for (int i = 1; i <= n; ++i) edges.push_back(pts[k - 1] + len * i / n);
  }
  return edges;
}

AxisCells axis_cells(const std::vector<double>& edges) {
  AxisCells cells;
  const std::size_t n = edges.size() - 1;
  cells.center.resize(n);
  cells.size.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    cells.size[i] = edges[i + 1] - edges[i];
    cells.center[i] = 0.5 * (edges[i] + edges[i + 1]);
  }
  return cells;
}

}  // namespace dsmt::numeric
