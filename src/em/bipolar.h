// Electromigration under bidirectional (bipolar) currents — Liew, Cheung &
// Hu's recovery model [7], which the paper invokes when noting that signal
// lines "have much higher EM immunity" so the unipolar self-consistent
// limits are conservative lower bounds for them.
//
// Under AC stress, damage accumulated during the positive half-cycle is
// partially healed during the negative one. The effective EM-driving
// current density for a periodic waveform j(t) over period T is
//   j_eff = (1/T) [ integral(j+ dt) - gamma * integral(|j-| dt) ]
// where gamma in [0, 1] is the recovery factor (close to 1 for fast
// symmetric waveforms, 0 recovers the unipolar average).
#pragma once

#include <vector>

#include "materials/metal.h"

namespace dsmt::em {

/// Effective EM current density of a sampled waveform j(t) with recovery
/// factor gamma. Samples are trapezoid-integrated over the spanned window.
double effective_javg_bipolar(const std::vector<double>& t,
                              const std::vector<double>& j, double gamma);

/// EM-immunity gain of a bipolar waveform: ratio of the unipolar average of
/// |j| to the recovery-corrected effective average. >= 1; diverges for a
/// perfectly symmetric waveform with gamma -> 1.
double bipolar_immunity_factor(const std::vector<double>& t,
                               const std::vector<double>& j, double gamma);

/// Average-current duty-cycle transformation for unipolar rectangular
/// pulses (paper Eq. 4): j_avg = r * j_peak.
/// j_peak [A/m^2], duty_cycle [1].
double javg_unipolar(double j_peak, double duty_cycle);
/// RMS transformation (paper Eq. 5): j_rms = sqrt(r) * j_peak.
/// j_peak [A/m^2], duty_cycle [1].
double jrms_unipolar(double j_peak, double duty_cycle);
/// Paper Eq. 6's companion identity: j_avg^2 = r * j_rms^2.
/// j_rms [A/m^2], duty_cycle [1].
double javg_from_jrms(double j_rms, double duty_cycle);

}  // namespace dsmt::em
