#include "em/profile.h"

#include <cmath>
#include <stdexcept>

#include "em/black.h"
#include "numeric/constants.h"

namespace dsmt::em {

LineEmProfile evaluate_line_em(const materials::EmParameters& em,
                               const std::vector<double>& x,
                               const std::vector<double>& t_profile,
                               double t_ref_k, double sigma,
                               int samples_per_link) {
  if (x.size() != t_profile.size() || x.size() < 2)
    throw std::invalid_argument("evaluate_line_em: bad profile");
  if (samples_per_link < 1)
    throw std::invalid_argument("evaluate_line_em: samples_per_link < 1");

  LineEmProfile out;
  out.x = x;
  out.ttf_ratio.resize(x.size());
  out.worst_ratio = 1e300;
  for (std::size_t i = 0; i < x.size(); ++i) {
    // Same j cancels; only the Arrhenius factor remains.
    const double ratio = std::exp(em.activation_energy_ev / kBoltzmannEv *
                                  (1.0 / t_profile[i] - 1.0 / t_ref_k));
    out.ttf_ratio[i] = ratio;
    out.worst_ratio = std::min(out.worst_ratio, ratio);
  }

  // Weakest-link chain: links of `samples_per_link` samples, each with the
  // median TTF of its hottest sample; the chain of N links fails at the
  // per-link quantile 1 - (1-q)^(1/N) — we report the chain median ratio
  // via the lognormal shift.
  const std::size_t n_links =
      std::max<std::size_t>(1, x.size() / samples_per_link);
  double min_link_ratio = 1e300;
  for (std::size_t l = 0; l < n_links; ++l) {
    const std::size_t lo = l * x.size() / n_links;
    const std::size_t hi = (l + 1) * x.size() / n_links;
    double link = 1e300;
    for (std::size_t i = lo; i < hi && i < x.size(); ++i)
      link = std::min(link, out.ttf_ratio[i]);
    min_link_ratio = std::min(min_link_ratio, link);
  }
  // Chain median = weakest link median shifted down by the order statistic
  // of N identical lognormals: t50_chain ~ t50 exp(sigma z_{1-0.5^(1/N)}).
  const double q_med_chain =
      1.0 - std::pow(0.5, 1.0 / static_cast<double>(n_links));
  const double shift = lognormal_quantile_time(1.0, sigma, q_med_chain) /
                       lognormal_quantile_time(1.0, sigma, 0.5);
  out.weakest_link_ratio = min_link_ratio * shift;
  return out;
}

double short_line_lifetime_gain(const materials::Metal& metal, double w_m,
                                double t_m, double rth_per_len, double length,
                                double p_per_len, double t_ref_k) {
  const auto prof = thermal::finite_line_profile(
      metal, w_m, t_m, rth_per_len, length, p_per_len, t_ref_k, t_ref_k, 201);
  const auto em_prof =
      evaluate_line_em(metal.em, prof.x, prof.t, t_ref_k);

  // Infinite-line reference: uniform temperature at the asymptotic rise.
  const double t_inf = t_ref_k + p_per_len * rth_per_len;
  const double inf_ratio = std::exp(metal.em.activation_energy_ev /
                                    kBoltzmannEv *
                                    (1.0 / t_inf - 1.0 / t_ref_k));
  return em_prof.worst_ratio / inf_ratio;
}

}  // namespace dsmt::em
