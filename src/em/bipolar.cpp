#include "em/bipolar.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace dsmt::em {

namespace {
// Trapezoid integrals of the positive and negative parts of j(t), treating
// each segment linearly (splitting at zero crossings).
struct SplitIntegrals {
  double positive = 0.0;
  double negative = 0.0;  // magnitude
};

SplitIntegrals split_integrals(const std::vector<double>& t,
                               const std::vector<double>& j) {
  if (t.size() != j.size() || t.size() < 2)
    throw std::invalid_argument("bipolar: need >=2 samples");
  SplitIntegrals s;
  for (std::size_t i = 1; i < t.size(); ++i) {
    const double dt = t[i] - t[i - 1];
    if (dt <= 0.0) throw std::invalid_argument("bipolar: non-monotonic time");
    const double a = j[i - 1], b = j[i];
    if (a >= 0.0 && b >= 0.0) {
      s.positive += 0.5 * (a + b) * dt;
    } else if (a <= 0.0 && b <= 0.0) {
      s.negative += 0.5 * (-a - b) * dt;
    } else {
      // Linear zero crossing at fraction f.
      const double f = a / (a - b);
      const double t_cross = f * dt;
      if (a > 0.0) {
        s.positive += 0.5 * a * t_cross;
        s.negative += 0.5 * (-b) * (dt - t_cross);
      } else {
        s.negative += 0.5 * (-a) * t_cross;
        s.positive += 0.5 * b * (dt - t_cross);
      }
    }
  }
  return s;
}
}  // namespace

double effective_javg_bipolar(const std::vector<double>& t,
                              const std::vector<double>& j, double gamma) {
  if (gamma < 0.0 || gamma > 1.0)
    throw std::invalid_argument("effective_javg_bipolar: gamma outside [0,1]");
  const auto s = split_integrals(t, j);
  const double span = t.back() - t.front();
  // Damage is driven by the dominant polarity; recovery heals gamma of it.
  const double forward = std::max(s.positive, s.negative);
  const double reverse = std::min(s.positive, s.negative);
  return (forward - gamma * reverse) / span;
}

double bipolar_immunity_factor(const std::vector<double>& t,
                               const std::vector<double>& j, double gamma) {
  const auto s = split_integrals(t, j);
  const double span = t.back() - t.front();
  const double unipolar_abs = (s.positive + s.negative) / span;
  const double eff = effective_javg_bipolar(t, j, gamma);
  if (eff <= 0.0) return std::numeric_limits<double>::infinity();
  return unipolar_abs / eff;
}

double javg_unipolar(double j_peak, double duty_cycle) {
  if (duty_cycle < 0.0 || duty_cycle > 1.0)
    throw std::invalid_argument("javg_unipolar: duty cycle outside [0,1]");
  return duty_cycle * j_peak;
}

double jrms_unipolar(double j_peak, double duty_cycle) {
  if (duty_cycle < 0.0 || duty_cycle > 1.0)
    throw std::invalid_argument("jrms_unipolar: duty cycle outside [0,1]");
  return std::sqrt(duty_cycle) * j_peak;
}

double javg_from_jrms(double j_rms, double duty_cycle) {
  if (duty_cycle < 0.0 || duty_cycle > 1.0)
    throw std::invalid_argument("javg_from_jrms: duty cycle outside [0,1]");
  return std::sqrt(duty_cycle) * j_rms;
}

}  // namespace dsmt::em
