#include "em/crowding.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "numeric/sparse.h"

namespace dsmt::em {

namespace {

struct Grid {
  double x0 = 0, y0 = 0, cell = 0;
  std::size_t nx = 0, ny = 0;
  std::vector<char> inside;  // nx*ny
  std::size_t idx(std::size_t i, std::size_t j) const { return j * nx + i; }
};

Grid rasterize(const std::vector<SheetRect>& rects, double cell) {
  if (rects.empty()) throw std::invalid_argument("crowding: no rectangles");
  double x0 = 1e300, x1 = -1e300, y0 = 1e300, y1 = -1e300;
  for (const auto& r : rects) {
    if (r.x1 <= r.x0 || r.y1 <= r.y0)
      throw std::invalid_argument("crowding: degenerate rectangle");
    x0 = std::min(x0, r.x0);
    x1 = std::max(x1, r.x1);
    y0 = std::min(y0, r.y0);
    y1 = std::max(y1, r.y1);
  }
  Grid g;
  g.x0 = x0;
  g.y0 = y0;
  g.cell = cell;
  g.nx = static_cast<std::size_t>(std::ceil((x1 - x0) / cell - 1e-9));
  g.ny = static_cast<std::size_t>(std::ceil((y1 - y0) / cell - 1e-9));
  if (g.nx < 2 || g.ny < 2)
    throw std::invalid_argument("crowding: cell too large for the shape");
  g.inside.assign(g.nx * g.ny, 0);
  for (std::size_t j = 0; j < g.ny; ++j) {
    const double yc = y0 + (static_cast<double>(j) + 0.5) * cell;
    for (std::size_t i = 0; i < g.nx; ++i) {
      const double xc = x0 + (static_cast<double>(i) + 0.5) * cell;
      for (const auto& r : rects)
        if (xc >= r.x0 && xc <= r.x1 && yc >= r.y0 && yc <= r.y1) {
          g.inside[g.idx(i, j)] = 1;
          break;
        }
    }
  }
  return g;
}

/// Cells whose edge lies on the terminal, picked by proximity.
std::vector<std::size_t> terminal_cells(const Grid& g, const TerminalEdge& t) {
  std::vector<std::size_t> cells;
  for (std::size_t j = 0; j < g.ny; ++j) {
    const double yc = g.y0 + (static_cast<double>(j) + 0.5) * g.cell;
    for (std::size_t i = 0; i < g.nx; ++i) {
      if (!g.inside[g.idx(i, j)]) continue;
      const double xc = g.x0 + (static_cast<double>(i) + 0.5) * g.cell;
      if (t.vertical) {
        if (std::abs(xc - t.pos) <= 0.75 * g.cell && yc >= t.lo && yc <= t.hi)
          cells.push_back(g.idx(i, j));
      } else {
        if (std::abs(yc - t.pos) <= 0.75 * g.cell && xc >= t.lo && xc <= t.hi)
          cells.push_back(g.idx(i, j));
      }
    }
  }
  if (cells.empty())
    throw std::invalid_argument("crowding: terminal touches no cells");
  return cells;
}

}  // namespace

CrowdingResult solve_crowding(const std::vector<SheetRect>& rects,
                              const TerminalEdge& source,
                              const TerminalEdge& sink,
                              const CrowdingOptions& options) {
  const Grid g = rasterize(rects, options.cell);
  const auto src = terminal_cells(g, source);
  const auto snk = terminal_cells(g, sink);

  // Unknown numbering over inside cells; sink cells are grounded (phi = 0)
  // so the operator is SPD.
  std::vector<int> unk(g.nx * g.ny, -1);
  std::vector<char> grounded(g.nx * g.ny, 0);
  for (std::size_t c : snk) grounded[c] = 1;
  std::size_t n_unk = 0;
  for (std::size_t c = 0; c < g.inside.size(); ++c)
    if (g.inside[c] && !grounded[c]) unk[c] = static_cast<int>(n_unk++);
  if (n_unk == 0) throw std::invalid_argument("crowding: everything grounded");

  // Unit sheet conductance between adjacent inside cells (square grid:
  // conductance per link = sheet conductance, dimensionless in squares).
  numeric::SparseBuilder builder(n_unk);
  auto couple = [&](std::size_t a, std::size_t b) {
    if (!g.inside[a] || !g.inside[b]) return;
    if (unk[a] >= 0) {
      builder.add(unk[a], unk[a], 1.0);
      if (unk[b] >= 0) builder.add(unk[a], unk[b], -1.0);
    }
    if (unk[b] >= 0) {
      builder.add(unk[b], unk[b], 1.0);
      if (unk[a] >= 0) builder.add(unk[b], unk[a], -1.0);
    }
  };
  for (std::size_t j = 0; j < g.ny; ++j)
    for (std::size_t i = 0; i < g.nx; ++i) {
      if (i + 1 < g.nx) couple(g.idx(i, j), g.idx(i + 1, j));
      if (j + 1 < g.ny) couple(g.idx(i, j), g.idx(i, j + 1));
    }
  const numeric::CsrMatrix a(builder);

  // Unit total current divided over the source cells.
  std::vector<double> rhs(n_unk, 0.0);
  const double i_per_cell = 1.0 / static_cast<double>(src.size());
  for (std::size_t c : src)
    if (unk[c] >= 0) rhs[unk[c]] += i_per_cell;

  std::vector<double> phi(n_unk, 0.0);
  core::SolverDiag diag;
  diag.kernel = "em/crowding";
  const auto cg = numeric::conjugate_gradient_robust(
      a, rhs, phi, {options.cg_rel_tol, options.cg_max_iterations}, diag);

  auto pot = [&](std::size_t c) { return unk[c] >= 0 ? phi[unk[c]] : 0.0; };

  // Sheet current density |j| per cell from central differences of phi
  // (unit sheet conductance: j = -grad phi, per cell width). Report in
  // units of A per metre of width for a 1 A drive.
  CrowdingResult res;
  res.unknowns = n_unk;
  res.converged = cg.ok();
  res.diag = std::move(diag);
  double j_max = 0.0;
  for (std::size_t j = 0; j < g.ny; ++j)
    for (std::size_t i = 0; i < g.nx; ++i) {
      const std::size_t c = g.idx(i, j);
      if (!g.inside[c]) continue;
      double jx = 0.0, jy = 0.0;
      int nx_links = 0, ny_links = 0;
      if (i > 0 && g.inside[g.idx(i - 1, j)]) {
        jx += pot(g.idx(i - 1, j)) - pot(c);
        ++nx_links;
      }
      if (i + 1 < g.nx && g.inside[g.idx(i + 1, j)]) {
        jx += pot(c) - pot(g.idx(i + 1, j));
        ++nx_links;
      }
      if (j > 0 && g.inside[g.idx(i, j - 1)]) {
        jy += pot(g.idx(i, j - 1)) - pot(c);
        ++ny_links;
      }
      if (j + 1 < g.ny && g.inside[g.idx(i, j + 1)]) {
        jy += pot(c) - pot(g.idx(i, j + 1));
        ++ny_links;
      }
      if (nx_links) jx /= nx_links;
      if (ny_links) jy /= ny_links;
      // Link current = conductance * dphi; per metre of width: / cell.
      const double jm = std::hypot(jx, jy) / g.cell;
      j_max = std::max(j_max, jm);
    }
  res.j_max = j_max;

  const double src_len =
      (source.hi - source.lo) > 0 ? (source.hi - source.lo) : g.cell;
  res.j_nominal = 1.0 / src_len;
  res.crowding_factor = res.j_max / res.j_nominal;

  // Shape resistance in squares: average source potential (sink at 0).
  double phi_src = 0.0;
  for (std::size_t c : src) phi_src += pot(c);
  res.resistance_squares = phi_src / static_cast<double>(src.size());
  return res;
}

CrowdingResult solve_l_bend(double width, double leg,
                            const CrowdingOptions& options) {
  if (width <= 0 || leg <= width)
    throw std::invalid_argument("solve_l_bend: need leg > width > 0");
  // Horizontal leg from (0,0) to (leg, width); vertical leg rising from
  // (leg - width, 0) to (leg, leg).
  std::vector<SheetRect> rects = {
      {0.0, leg, 0.0, width},
      {leg - width, leg, 0.0, leg},
  };
  TerminalEdge source{true, 0.0, 0.0, width};         // left end
  TerminalEdge sink{false, leg, leg - width, leg};    // top end
  return solve_crowding(rects, source, sink, options);
}

CrowdingResult solve_straight_strip(double width, double length,
                                    const CrowdingOptions& options) {
  if (width <= 0 || length <= 0)
    throw std::invalid_argument("solve_straight_strip: bad shape");
  std::vector<SheetRect> rects = {{0.0, length, 0.0, width}};
  TerminalEdge source{true, 0.0, 0.0, width};
  TerminalEdge sink{true, length, 0.0, width};
  return solve_crowding(rects, source, sink, options);
}

}  // namespace dsmt::em
