#include "em/budget.h"

#include <cmath>
#include <stdexcept>

#include "em/black.h"

namespace dsmt::em {

double per_line_quantile(double chip_quantile, std::size_t n_lines) {
  if (chip_quantile <= 0.0 || chip_quantile >= 1.0)
    throw std::invalid_argument("per_line_quantile: quantile outside (0,1)");
  if (n_lines == 0)
    throw std::invalid_argument("per_line_quantile: zero lines");
  return 1.0 - std::pow(1.0 - chip_quantile,
                        1.0 / static_cast<double>(n_lines));
}

double median_scale_for_chip(double chip_quantile, double line_quantile,
                             double sigma, std::size_t n_lines) {
  const double q_line = per_line_quantile(chip_quantile, n_lines);
  // The lifetime goal was quoted at `line_quantile`; the chip needs the
  // same absolute time at the (much smaller) q_line quantile. With
  // t_q = t50 exp(sigma z_q):  t50_req / t50_single
  //   = exp(sigma (z_{line_quantile} - z_{q_line})).
  const double t_line = lognormal_quantile_time(1.0, sigma, line_quantile);
  const double t_chip = lognormal_quantile_time(1.0, sigma, q_line);
  return t_line / t_chip;
}

units::CurrentDensity derate_j0(const materials::EmParameters& em,
                                units::CurrentDensity j0,
                                double median_scale) {
  if (j0 <= 0.0 || median_scale <= 0.0)
    throw std::invalid_argument("derate_j0: non-positive inputs");
  return j0 * std::pow(median_scale, -1.0 / em.current_exponent);
}

units::CurrentDensity chip_level_j0(const materials::EmParameters& em,
                                    units::CurrentDensity j0, double sigma,
                                    std::size_t n_lines, double chip_quantile,
                                    double line_quantile) {
  return derate_j0(
      em, j0,
      median_scale_for_chip(chip_quantile, line_quantile, sigma, n_lines));
}

}  // namespace dsmt::em
