// Black's electromigration model (paper Eq. 6) and the design-rule algebra
// built on it.
//
//   TTF = A* j^-n exp(Q / (kB T))
//
// The absolute prefactor A* is process-specific; everything the paper needs
// is a *ratio* of lifetimes, so the API exposes ratios and the equivalent
// current-density transformations, plus an absolute TTF when the caller
// supplies A*. Current densities and temperatures are strong-typed
// (core/units.h); lifetimes stay raw doubles because the exponent n makes
// A*'s dimension process-dependent — they carry whatever time unit A* (or
// the test lifetime) was quoted in.
#pragma once

#include "core/units.h"
#include "materials/metal.h"

namespace dsmt::em {

/// Absolute time-to-failure for prefactor `a_star` [t], where [t] is the
/// time unit of the result; j_avg and T carry their own strong types.
double time_to_failure(double a_star, const materials::EmParameters& em,
                       units::CurrentDensity j_avg, units::Kelvin t_metal);

/// Lifetime ratio TTF(j1, T1) / TTF(j0, T0) [1] — prefactor cancels.
double lifetime_ratio(const materials::EmParameters& em,
                      units::CurrentDensity j1, units::Kelvin t1,
                      units::CurrentDensity j0, units::Kelvin t0);

/// The maximum average current density at metal temperature T that still
/// meets the lifetime achieved by `j0` at `t0` (paper Eq. 12 solved for j):
///   j_max = j0 * exp[(Q/(n kB)) (1/T - 1/T0)]
/// For T > T0 this is *smaller* than j0 — hotter metal must carry less.
units::CurrentDensity javg_max_at_temperature(
    const materials::EmParameters& em, units::CurrentDensity j0,
    units::Kelvin t0, units::Kelvin t_metal);

/// Inverse of the above: the metal temperature at which `javg` exactly meets
/// the lifetime of `j0` at `t0`. Returns +inf when javg <= 0 is degenerate.
units::Kelvin temperature_for_javg(const materials::EmParameters& em,
                                   units::CurrentDensity javg,
                                   units::CurrentDensity j0, units::Kelvin t0);

/// Derives the design-rule current density j0 at `t_ref` from accelerated
/// test conditions: a measured TTF `ttf_test` at (j_test, t_test) scaled to
/// the lifetime goal `ttf_goal` at `t_ref` (both lifetimes in the same,
/// arbitrary time unit):
///   j0 = j_test * (ttf_test/ttf_goal)^(1/n) * exp[(Q/(n kB))(1/t_ref - 1/t_test)]
units::CurrentDensity design_rule_j0(const materials::EmParameters& em,
                                     units::CurrentDensity j_test,
                                     units::Kelvin t_test, double ttf_test,
                                     double ttf_goal, units::Kelvin t_ref);

/// Lognormal failure statistics: scales a median TTF (t50) to the time at
/// which `cum_fraction` [1] of a population has failed, given the lognormal
/// shape parameter sigma [1]. Black's TTF is conventionally quoted at 0.1 %
/// cumulative failure; this converts between quantiles. t50 and the result
/// share whatever time unit t50 is quoted in.
double lognormal_quantile_time(double t50, double sigma, double cum_fraction);

}  // namespace dsmt::em
