// Black's electromigration model (paper Eq. 6) and the design-rule algebra
// built on it.
//
//   TTF = A* j^-n exp(Q / (kB T))
//
// The absolute prefactor A* is process-specific; everything the paper needs
// is a *ratio* of lifetimes, so the API exposes ratios and the equivalent
// current-density transformations, plus an absolute TTF when the caller
// supplies A*.
#pragma once

#include "materials/metal.h"

namespace dsmt::em {

/// Absolute time-to-failure [s] for prefactor `a_star` (same units as the
/// result), average current density j [A/m^2] and metal temperature T [K].
double time_to_failure(double a_star, const materials::EmParameters& em,
                       double j_avg, double t_metal_k);

/// Lifetime ratio TTF(j1, T1) / TTF(j0, T0) — prefactor cancels.
double lifetime_ratio(const materials::EmParameters& em, double j1, double t1_k,
                      double j0, double t0_k);

/// The maximum average current density at metal temperature T that still
/// meets the lifetime achieved by `j0` at `t0` (paper Eq. 12 solved for j):
///   j_max = j0 * exp[(Q/(n kB)) (1/T - 1/T0)]
/// For T > T0 this is *smaller* than j0 — hotter metal must carry less.
double javg_max_at_temperature(const materials::EmParameters& em, double j0,
                               double t0_k, double t_metal_k);

/// Inverse of the above: the metal temperature at which `javg` exactly meets
/// the lifetime of `j0` at `t0`. Returns +inf when javg <= 0 is degenerate.
double temperature_for_javg(const materials::EmParameters& em, double javg,
                            double j0, double t0_k);

/// Derives the design-rule current density j0 at `t_ref` from accelerated
/// test conditions: a measured TTF `ttf_test` at (j_test, t_test) scaled to
/// the lifetime goal `ttf_goal` at `t_ref`:
///   j0 = j_test * (ttf_test/ttf_goal)^(1/n) * exp[(Q/(n kB))(1/t_ref - 1/t_test)]
double design_rule_j0(const materials::EmParameters& em, double j_test,
                      double t_test_k, double ttf_test, double ttf_goal,
                      double t_ref_k);

/// Lognormal failure statistics: scales a median TTF (t50) to the time at
/// which `cum_fraction` of a population has failed, given the lognormal
/// shape parameter sigma. Black's TTF is conventionally quoted at 0.1 %
/// cumulative failure; this converts between quantiles.
double lognormal_quantile_time(double t50, double sigma, double cum_fraction);

}  // namespace dsmt::em
