// Current crowding in planar interconnect shapes.
//
// Black's equation takes one j, but real layouts concentrate current at
// inner corners of bends and at via landings; EM voids nucleate where the
// *local* density peaks. This module solves the 2-D current-continuity
// problem (Laplace for the potential in a uniform-sheet conductor) over a
// rectilinear polygon, injects current through two terminal edges, and
// reports the crowding factor max|j| / j_nominal — the multiplier to apply
// to the design-rule current when the layout bends.
#pragma once

#include <cstddef>
#include <vector>

#include "core/status.h"

namespace dsmt::em {

/// A conductor shape made of axis-aligned rectangles (union), in metres.
/// Thickness is uniform; the solve is per square (sheet), so only the
/// planform matters.
struct SheetRect {
  double x0 = 0, x1 = 0, y0 = 0, y1 = 0;
};

/// Terminal: a vertical (x = const) or horizontal (y = const) edge segment
/// through which current enters or leaves uniformly.
struct TerminalEdge {
  bool vertical = true;   ///< true: x = pos, span in y; false: y = pos, span in x
  double pos = 0.0;
  double lo = 0.0, hi = 0.0;  ///< span along the edge
};

struct CrowdingOptions {
  double cell = 0.05e-6;    ///< grid cell size [m]
  double cg_rel_tol = 1e-9;
  int cg_max_iterations = 30000;
};

struct CrowdingResult {
  double j_nominal = 0.0;   ///< current / (source-edge length) [A/m of width]
  double j_max = 0.0;       ///< peak in-plane sheet density [A/m]
  double crowding_factor = 0.0;  ///< j_max / j_nominal
  double resistance_squares = 0.0;  ///< shape resistance in squares
  std::size_t unknowns = 0;
  bool converged = false;
  core::SolverDiag diag;  ///< linear-solve history incl. recovery stages
};

/// Solves a unit current driven from `source` to `sink` through the union
/// of `rects`. Throws on degenerate geometry.
CrowdingResult solve_crowding(const std::vector<SheetRect>& rects,
                              const TerminalEdge& source,
                              const TerminalEdge& sink,
                              const CrowdingOptions& options = {});

/// Convenience: a right-angle bend of two `width`-wide legs of length
/// `leg` (an L shape). The classic result is a crowding factor well above
/// 1 concentrated at the inside corner.
/// width, leg [m].
CrowdingResult solve_l_bend(double width, double leg,
                            const CrowdingOptions& options = {});

/// Convenience: a straight strip (control case, factor ~ 1).
/// width, length [m].
CrowdingResult solve_straight_strip(double width, double length,
                                    const CrowdingOptions& options = {});

}  // namespace dsmt::em
