#include "em/black.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "numeric/constants.h"

namespace dsmt::em {

double time_to_failure(double a_star, const materials::EmParameters& em,
                       units::CurrentDensity j_avg, units::Kelvin t_metal) {
  if (j_avg <= 0.0 || t_metal <= 0.0)
    throw std::invalid_argument("time_to_failure: non-positive inputs");
  return a_star * std::pow(j_avg, -em.current_exponent) *
         std::exp(em.activation_energy_ev / (kBoltzmannEv * t_metal));
}

double lifetime_ratio(const materials::EmParameters& em,
                      units::CurrentDensity j1, units::Kelvin t1,
                      units::CurrentDensity j0, units::Kelvin t0) {
  if (j1 <= 0.0 || j0 <= 0.0 || t1 <= 0.0 || t0 <= 0.0)
    throw std::invalid_argument("lifetime_ratio: non-positive inputs");
  return std::pow(j0 / j1, em.current_exponent) *
         std::exp(em.activation_energy_ev / kBoltzmannEv *
                  (1.0 / t1 - 1.0 / t0));
}

units::CurrentDensity javg_max_at_temperature(
    const materials::EmParameters& em, units::CurrentDensity j0,
    units::Kelvin t0, units::Kelvin t_metal) {
  if (j0 <= 0.0 || t0 <= 0.0 || t_metal <= 0.0)
    throw std::invalid_argument("javg_max_at_temperature: bad inputs");
  return j0 * std::exp(em.activation_energy_ev /
                       (em.current_exponent * kBoltzmannEv) *
                       (1.0 / t_metal - 1.0 / t0));
}

units::Kelvin temperature_for_javg(const materials::EmParameters& em,
                                   units::CurrentDensity javg,
                                   units::CurrentDensity j0,
                                   units::Kelvin t0) {
  if (javg <= 0.0 || j0 <= 0.0 || t0 <= 0.0)
    throw std::invalid_argument("temperature_for_javg: bad inputs");
  // javg = j0 exp[(Q/n kB)(1/T - 1/T0)]  =>
  // 1/T = 1/T0 + (n kB / Q) ln(javg/j0).
  const double inv_t =
      1.0 / t0 + em.current_exponent * kBoltzmannEv /
                     em.activation_energy_ev * std::log(javg / j0);
  if (inv_t <= 0.0)
    return units::Kelvin{std::numeric_limits<double>::infinity()};
  return units::Kelvin{1.0 / inv_t};
}

units::CurrentDensity design_rule_j0(const materials::EmParameters& em,
                                     units::CurrentDensity j_test,
                                     units::Kelvin t_test, double ttf_test,
                                     double ttf_goal, units::Kelvin t_ref) {
  if (j_test <= 0.0 || ttf_test <= 0.0 || ttf_goal <= 0.0)
    throw std::invalid_argument("design_rule_j0: bad inputs");
  const double n = em.current_exponent;
  return j_test * std::pow(ttf_test / ttf_goal, 1.0 / n) *
         std::exp(em.activation_energy_ev / (n * kBoltzmannEv) *
                  (1.0 / t_ref - 1.0 / t_test));
}

namespace {
// Inverse standard-normal CDF (Acklam's rational approximation, ~1e-9).
double inv_norm_cdf(double p) {
  if (p <= 0.0 || p >= 1.0)
    throw std::invalid_argument("inv_norm_cdf: p outside (0,1)");
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425, phigh = 1.0 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > phigh) {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}
}  // namespace

double lognormal_quantile_time(double t50, double sigma, double cum_fraction) {
  if (t50 <= 0.0 || sigma <= 0.0)
    throw std::invalid_argument("lognormal_quantile_time: bad inputs");
  return t50 * std::exp(sigma * inv_norm_cdf(cum_fraction));
}

}  // namespace dsmt::em
