// Electromigration along a non-isothermal line.
//
// The healing-length analysis (thermal/healing.h) shows the temperature
// peaks mid-line and falls toward via-cooled ends. Black's equation is
// exponential in 1/T, so EM damage concentrates where the line is hottest:
// a "thermally long" line is effectively as weak as its mid-point, while a
// "thermally short" line gains real lifetime from end cooling. This module
// quantifies that, treating the line as a weakest-link chain of segments
// with lognormal statistics.
#pragma once

#include <vector>

#include "materials/metal.h"
#include "thermal/healing.h"

namespace dsmt::em {

/// Per-position lifetime profile for a line with temperature profile T(x).
struct LineEmProfile {
  std::vector<double> x;           ///< [m]
  std::vector<double> ttf_ratio;   ///< TTF(x) / TTF(T_ref) at the same j
  double worst_ratio = 0.0;        ///< min over x (the hottest spot)
  double weakest_link_ratio = 0.0; ///< chain-corrected median ratio
};

/// Evaluates the EM lifetime profile of a line carrying j_avg with the
/// given temperature profile (from thermal::finite_line_profile or the FD
/// solver). `segments_per_link` controls the weakest-link granularity: the
/// line is treated as independent links of that many profile samples;
/// `sigma` is the lognormal shape for the chain correction.
LineEmProfile evaluate_line_em(const materials::EmParameters& em,
                               const std::vector<double>& x,
                               const std::vector<double>& t_profile,
                               double t_ref_k, double sigma = 0.5,
                               int samples_per_link = 8);

/// Lifetime gain of a thermally short line vs a thermally long one at the
/// same (j, heating): the ratio of the weakest-link TTF of a line of
/// `length` to that of an effectively infinite line, both carrying power
/// `p_per_len` with end clamps at t_ref.
/// w_m, t_m, length [m]; rth_per_len [K*m/W]; p_per_len [W/m]; t_ref_k [K].
double short_line_lifetime_gain(const materials::Metal& metal, double w_m,
                                double t_m, double rth_per_len, double length,
                                double p_per_len, double t_ref_k);

}  // namespace dsmt::em
