#include "em/void_growth.h"

#include <cmath>
#include <stdexcept>

#include "numeric/constants.h"

namespace dsmt::em {

namespace {
void check_geometry(double w_m, double t_m, double length) {
  if (w_m <= 0.0 || t_m <= 0.0 || length <= 0.0)
    throw std::invalid_argument("void_growth: non-positive geometry");
}

/// Critical void length from the resistance criterion: the voided segment
/// carries `factor` times the per-length resistance, so
///   dR/R = (factor - 1) L_void / L  ==> L_crit = crit * L / (factor - 1).
double critical_void_length(const VoidModelParams& p, double length) {
  if (p.liner_resistance_factor <= 1.0)
    throw std::invalid_argument(
        "void_growth: liner factor must exceed 1 (voided segment must be "
        "more resistive than the line)");
  return p.critical_delta_r * length / (p.liner_resistance_factor - 1.0);
}
}  // namespace

double drift_velocity(const materials::Metal& metal,
                      const VoidModelParams& params, double j,
                      double t_metal_k) {
  if (j < 0.0 || t_metal_k <= 0.0)
    throw std::invalid_argument("drift_velocity: bad inputs");
  const double d_eff =
      params.d0 *
      std::exp(-metal.em.activation_energy_ev / (kBoltzmannEv * t_metal_k));
  return d_eff / (kBoltzmannJ * t_metal_k) * params.z_star *
         kElementaryCharge * metal.resistivity(t_metal_k) * j;
}

double nucleation_time(const materials::Metal& metal,
                       const VoidModelParams& params, double j,
                       double t_metal_k) {
  if (j <= 0.0 || t_metal_k <= 0.0)
    throw std::invalid_argument("nucleation_time: bad inputs");
  return params.nucleation_b / (j * j) *
         std::exp(metal.em.activation_energy_ev /
                  (kBoltzmannEv * t_metal_k));
}

double time_to_failure_void(const materials::Metal& metal,
                            const VoidModelParams& params, double w_m,
                            double t_m, double length, double j,
                            double t_metal_k) {
  check_geometry(w_m, t_m, length);
  const double l_crit = critical_void_length(params, length);
  const double v = drift_velocity(metal, params, j, t_metal_k);
  if (v <= 0.0) return std::numeric_limits<double>::infinity();
  return nucleation_time(metal, params, j, t_metal_k) + l_crit / v;
}

VoidTrace simulate_void_growth(const materials::Metal& metal,
                               const VoidModelParams& params, double w_m,
                               double t_m, double length, double j,
                               double t_metal_k, double t_max, int samples) {
  check_geometry(w_m, t_m, length);
  if (samples < 2) throw std::invalid_argument("simulate_void_growth: samples");

  VoidTrace trace;
  const double rho = metal.resistivity(t_metal_k);
  trace.r_initial = rho * length / (w_m * t_m);
  const double r_per_len = trace.r_initial / length;
  const double t_nuc = nucleation_time(metal, params, j, t_metal_k);
  const double v = drift_velocity(metal, params, j, t_metal_k);
  const double l_crit = critical_void_length(params, length);

  trace.time.reserve(samples);
  trace.void_length.reserve(samples);
  trace.resistance.reserve(samples);
  for (int i = 0; i < samples; ++i) {
    const double t = t_max * i / (samples - 1);
    const double lv =
        (t > t_nuc && v > 0.0) ? std::min((t - t_nuc) * v, length) : 0.0;
    const double r = trace.r_initial +
                     lv * r_per_len * (params.liner_resistance_factor - 1.0);
    trace.time.push_back(t);
    trace.void_length.push_back(lv);
    trace.resistance.push_back(r);
    if (!trace.failed && lv >= l_crit) {
      trace.failed = true;
      trace.ttf = t_nuc + l_crit / v;
    }
  }
  return trace;
}

double apparent_current_exponent(const materials::Metal& metal,
                                 const VoidModelParams& params, double w_m,
                                 double t_m, double length, double j,
                                 double t_metal_k) {
  const double f = 1.05;
  const double t_lo =
      time_to_failure_void(metal, params, w_m, t_m, length, j / f, t_metal_k);
  const double t_hi =
      time_to_failure_void(metal, params, w_m, t_m, length, j * f, t_metal_k);
  return -std::log(t_hi / t_lo) / std::log(f * f);
}

}  // namespace dsmt::em
