// Chip-level electromigration budgeting.
//
// Black's TTF is quoted for one line at a small cumulative-failure quantile
// (typically 0.1%). A chip carries millions of stressed segments in series
// reliability-wise (the first open kills the net), so the *chip-level*
// lifetime goal must be translated into a tighter per-line requirement —
// and hence a derated design-rule current density j_o. With lognormal
// per-line TTFs (median t50, shape sigma) and N independent identical
// lines, the chip survives to time t with probability (1 - F(t))^N, so the
// chip-quantile q maps to the per-line quantile 1 - (1-q)^(1/N) ~ q/N.
#pragma once

#include <cstddef>

#include "core/units.h"
#include "materials/metal.h"

namespace dsmt::em {

/// Per-line cumulative-failure quantile [1] that yields chip quantile
/// `chip_quantile` [1] across `n_lines` independent lines.
double per_line_quantile(double chip_quantile, std::size_t n_lines);

/// Scale factor [1] on the per-line *median* lifetime required so that the
/// chip-level quantile [1] at `t_goal` is met, relative to a single line
/// quoted at `line_quantile` [1] (e.g. 1e-3) with lognormal shape sigma [1]:
/// returns t50_required / t50_single.
double median_scale_for_chip(double chip_quantile, double line_quantile,
                             double sigma, std::size_t n_lines);

/// Derated design-rule current density: j_o scaled so that the lifetime
/// margin `median_scale` [1] is absorbed through Black's j^-n:
///   j_derated = j0 * median_scale^(-1/n).
units::CurrentDensity derate_j0(const materials::EmParameters& em,
                                units::CurrentDensity j0,
                                double median_scale);

/// One-call helper: the design-rule current density for a chip with
/// `n_lines` stressed segments, given the single-line j0 quoted at
/// `line_quantile` [1] with lognormal sigma [1], holding the same lifetime
/// goal and chip-level quantile `chip_quantile` [1].
units::CurrentDensity chip_level_j0(const materials::EmParameters& em,
                                    units::CurrentDensity j0, double sigma,
                                    std::size_t n_lines,
                                    double chip_quantile = 1e-3,
                                    double line_quantile = 1e-3);

}  // namespace dsmt::em
