// Two-phase electromigration degradation model (Korhonen-style):
//
//   1. Nucleation — stress builds until a void nucleates:
//        t_nuc = B j^-2 exp(Q/(kB T))          (Black-like, n = 2)
//   2. Growth — the void drifts/grows at the EM drift velocity
//        v_d = (D0/(kB_J T)) exp(-Q/(kB T)) Z* e rho(T) j
//      lengthening the high-resistance (barrier-liner shunted) region:
//        t_grow = L_fail / v_d                 (n = 1)
//
// The observable is the line-resistance trace R(t): flat through
// nucleation, then rising as the void lengthens, with failure declared at
// a relative resistance increase threshold (10% is the usual criterion,
// consistent with Black's "TTF at resistance failure" convention [6],[16]).
// The model reproduces the classic current-exponent crossover: n ~ 2 in
// the nucleation-limited (use-condition) regime, drifting toward n ~ 1
// under high-current (accelerated test) stress.
#pragma once

#include <vector>

#include "materials/metal.h"

namespace dsmt::em {

/// Degradation-model parameters (defaults give ~10-year medians at
/// j = 0.6 MA/cm^2, 100 degC for AlCu-class activation energies).
struct VoidModelParams {
  /// Nucleation coefficient B [A^2 s / m^4]: t_nuc = B j^-2 exp(Q/kT).
  /// Calibrated for ~8 yr nucleation at 0.6 MA/cm^2, 100 degC, Q = 0.7 eV.
  double nucleation_b = 3.15e18;
  /// Effective diffusivity prefactor D0 [m^2/s] (absorbs the grain-boundary
  /// width/grain-size geometry factor; calibrated for ~2 yr growth of the
  /// critical void at use conditions on a 100 um line).
  double d0 = 6.7e-10;
  /// Effective charge number |Z*|.
  double z_star = 4.0;
  /// Liner/barrier sheet shunt: resistance per length of a fully voided
  /// segment relative to the intact line, as a multiplier (e.g. 30x).
  double liner_resistance_factor = 30.0;
  /// Failure criterion: relative resistance increase.
  double critical_delta_r = 0.10;
};

/// EM drift velocity [m/s] at current density j and temperature T.
double drift_velocity(const materials::Metal& metal,
                      const VoidModelParams& params, double j,
                      double t_metal_k);

/// Nucleation time [s].
double nucleation_time(const materials::Metal& metal,
                       const VoidModelParams& params, double j,
                       double t_metal_k);

/// Resistance-vs-time trace of a line under constant (j, T) stress.
struct VoidTrace {
  std::vector<double> time;        ///< [s]
  std::vector<double> void_length; ///< [m]
  std::vector<double> resistance;  ///< [Ohm]
  double r_initial = 0.0;
  double ttf = -1.0;               ///< time of criterion crossing, -1 if none
  bool failed = false;
};

/// Simulates the trace for a line of width/thickness/length under constant
/// stress until `t_max` or failure. `samples` points are recorded.
VoidTrace simulate_void_growth(const materials::Metal& metal,
                               const VoidModelParams& params, double w_m,
                               double t_m, double length, double j,
                               double t_metal_k, double t_max,
                               int samples = 400);

/// Closed-form time to failure: nucleation + growth to the critical void
/// length implied by the resistance criterion.
double time_to_failure_void(const materials::Metal& metal,
                            const VoidModelParams& params, double w_m,
                            double t_m, double length, double j,
                            double t_metal_k);

/// Apparent Black current exponent n = -dln(TTF)/dln(j) evaluated by finite
/// difference about j (diagnoses the nucleation/growth crossover).
double apparent_current_exponent(const materials::Metal& metal,
                                 const VoidModelParams& params, double w_m,
                                 double t_m, double length, double j,
                                 double t_metal_k);

}  // namespace dsmt::em
