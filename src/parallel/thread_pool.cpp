#include "parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"

namespace dsmt::parallel {

namespace {

thread_local bool t_on_worker = false;
thread_local int t_region_depth = 0;

// Queue bound and its observability counters. The bound is read per
// submission (no pool rebuild needed); the counters are monotonic across
// rebuilds so callers can watch bursts drain through a bounded window.
std::atomic<std::size_t> g_queue_high_water{kDefaultQueueHighWater};
std::atomic<std::uint64_t> g_tasks_drained{0};
std::atomic<std::size_t> g_queue_peak_depth{0};

void note_queue_depth(std::size_t depth) {
  std::size_t peak = g_queue_peak_depth.load(std::memory_order_relaxed);
  while (depth > peak &&
         !g_queue_peak_depth.compare_exchange_weak(
             peak, depth, std::memory_order_relaxed)) {
  }
}

std::size_t env_thread_count() {
  // getenv is listed by concurrency-mt-unsafe because it races with
  // setenv/putenv; the library never writes the environment, and POSIX
  // guarantees concurrent reads are safe.
  const char* env = std::getenv("DSMT_THREADS");  // NOLINT(concurrency-mt-unsafe)
  if (env != nullptr) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1)
      return std::min<std::size_t>(static_cast<std::size_t>(v), 256);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

class Pool {
 public:
  explicit Pool(std::size_t n) {
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~Pool() {
    {
      MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    not_full_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return workers_.size(); }

  void submit(std::function<void()> task) DSMT_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      // Blocking producer: wait for the queue to dip below the high-water
      // mark. Workers only ever shrink the queue, so this cannot deadlock;
      // on shutdown the wait is released and the task is still accepted
      // (the destructor drains whatever remains). Predicate loop, not a
      // lambda: the analysis then sees the guarded reads under the lock.
      while (!stop_ &&
             queue_.size() >=
                 g_queue_high_water.load(std::memory_order_relaxed))
        not_full_cv_.wait(mu_);
      queue_.push_back(std::move(task));
      note_queue_depth(queue_.size());
    }
    cv_.notify_one();
  }

 private:
  void worker_loop() DSMT_EXCLUDES(mu_) {
    t_on_worker = true;
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        while (!stop_ && queue_.empty()) cv_.wait(mu_);
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
        g_tasks_drained.fetch_add(1, std::memory_order_relaxed);
      }
      not_full_cv_.notify_one();
      task();
    }
  }

  Mutex mu_;
  CondVar cv_;
  CondVar not_full_cv_;
  std::deque<std::function<void()>> queue_ DSMT_GUARDED_BY(mu_);
  bool stop_ DSMT_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // R10-ok: filled in the constructor,
                                      // joined in the destructor; workers
                                      // never touch the vector itself
};

// The global pool and its configuration. `g_override` of 0 means "use the
// environment/hardware default". Guarded by g_config_mu; the pool pointer
// only changes while no parallel region is active (set_thread_count's
// contract), so tasks never observe a pool being torn down under them.
Mutex g_config_mu;  // NOLINT(cert-err58-cpp)
std::size_t g_override DSMT_GUARDED_BY(g_config_mu) = 0;
Pool* g_pool DSMT_GUARDED_BY(g_config_mu) = nullptr;

std::size_t desired_count() DSMT_REQUIRES(g_config_mu) {
  return g_override > 0 ? g_override : env_thread_count();
}

Pool& pool() DSMT_EXCLUDES(g_config_mu) {
  MutexLock lock(g_config_mu);
  const std::size_t want = desired_count();
  if (g_pool == nullptr || g_pool->size() != want) {
    delete g_pool;
    g_pool = nullptr;  // keep the pointer sane if Pool's ctor throws
    g_pool = new Pool(want);
  }
  return *g_pool;
}

}  // namespace

std::size_t thread_count() {
  MutexLock lock(g_config_mu);
  return desired_count();
}

void set_thread_count(std::size_t n) {
  MutexLock lock(g_config_mu);
  g_override = n;
  // The pool is rebuilt lazily on next use; deleting here while idle keeps
  // stale workers from outliving a test that shrank the count.
  delete g_pool;
  g_pool = nullptr;
}

bool on_worker_thread() { return t_on_worker; }

bool in_parallel_region() { return t_region_depth > 0; }

namespace detail {

RegionGuard::RegionGuard() { ++t_region_depth; }
RegionGuard::~RegionGuard() { --t_region_depth; }

}  // namespace detail

std::size_t queue_high_water() {
  return g_queue_high_water.load(std::memory_order_relaxed);
}

void set_queue_high_water(std::size_t n) {
  g_queue_high_water.store(std::max<std::size_t>(n, 1),
                           std::memory_order_relaxed);
}

std::uint64_t tasks_drained() {
  return g_tasks_drained.load(std::memory_order_relaxed);
}

std::size_t queue_peak_depth() {
  return g_queue_peak_depth.load(std::memory_order_relaxed);
}

void pool_submit(std::function<void()> task) { pool().submit(std::move(task)); }

}  // namespace dsmt::parallel
