// Fixed-size worker pool behind the deterministic parallel layer.
//
// This header and its .cpp are the only places in the library allowed to
// create threads (lint rule R6 no-raw-thread): every other subsystem gets
// its concurrency through parallel_for.h, which is what carries the
// determinism guarantee. The pool itself is a plain task queue — it knows
// nothing about partitioning or ordering.
//
// Sizing: the global pool is built lazily on first use with
// `configured_thread_count()` threads — the `DSMT_THREADS` environment
// variable when set (clamped to [1, 256]), otherwise
// std::thread::hardware_concurrency(). Tests and benches may override at
// runtime with set_thread_count(); the pool is rebuilt when idle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace dsmt::parallel {

/// Thread count the global pool uses: the explicit set_thread_count()
/// override if one is active, else DSMT_THREADS, else hardware concurrency.
/// Always >= 1.
std::size_t thread_count();

/// Overrides the global pool size (rebuilding the pool on next use), or
/// restores the DSMT_THREADS/hardware default when n == 0. Must not be
/// called from inside a parallel region.
void set_thread_count(std::size_t n);

/// True on a pool worker thread. parallel_for uses this to run nested
/// parallel regions inline instead of deadlocking on the shared queue.
bool on_worker_thread();

/// True while the current thread is executing a parallel_for block — which
/// includes the *calling* thread running block 0 of its own region, not
/// just pool workers. parallel_for nests inline whenever this holds:
/// without it, a nested region launched from the caller-run block would fan
/// out concurrently with the outer region's worker blocks, and the nesting
/// contract ("inner loops run serially") would silently only be true on
/// workers.
bool in_parallel_region();

namespace detail {

/// RAII marker for in_parallel_region(), installed by parallel_for around
/// the caller-run block. Depth-counted so sibling regions compose.
class RegionGuard {
 public:
  RegionGuard();
  ~RegionGuard();
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;
};

}  // namespace detail

/// High-water mark on queued-but-unstarted pool tasks. pool_submit() from a
/// producer thread blocks while the queue is at the mark, so a burst of
/// submissions holds bounded memory instead of growing the queue without
/// limit. Workers never block on the mark (they only drain), and nested
/// parallel regions run inline without submitting, so the bound cannot
/// deadlock the pool. Default kDefaultQueueHighWater.
inline constexpr std::size_t kDefaultQueueHighWater = 1024;
std::size_t queue_high_water();
/// Sets the high-water mark (clamped to >= 1). Takes effect on the next
/// submission; must not be called from inside a parallel region.
void set_queue_high_water(std::size_t n);

/// Total tasks drained (dequeued and run) by pool workers since process
/// start. Monotonic across pool rebuilds; lets tests and service metrics
/// observe that a burst actually flowed through the bounded queue.
std::uint64_t tasks_drained();

/// Deepest queue occupancy observed since process start — always <= the
/// high-water mark in force at the time, which is what makes the bound
/// checkable from outside.
std::size_t queue_peak_depth();

/// Submits `task` to the global pool. Internal plumbing for parallel_for;
/// prefer the primitives in parallel_for.h. Blocks while the queue sits at
/// the high-water mark.
void pool_submit(std::function<void()> task);

}  // namespace dsmt::parallel
