// Deterministic data-parallel primitives over the fixed-size thread pool.
//
// Determinism contract: parallel_for(n, body) runs body(i) exactly once for
// every i in [0, n), each call fully independent of the others, and any
// output is written to the caller's index-addressed slot. Work is split into
// at most thread_count() contiguous static index blocks; because no
// cross-item state exists and no reduction is performed inside the parallel
// region, the results are bit-identical for every thread count (including 1).
// Reductions happen after the join, in index order, on the calling thread —
// see ordered_reduce and docs/THEORY.md "Deterministic parallel sweeps".
//
// Error contract: if one or more body(i) calls throw, the exception of the
// LOWEST failing index is rethrown on the calling thread after all blocks
// finish — the same exception a serial loop would surface first. A
// dsmt::SolveError therefore crosses the thread boundary intact, with its
// SolverDiag attempt/recovery chain preserved (the exception object itself
// is carried by std::exception_ptr, not re-synthesized).
//
// Nesting: a parallel_for entered from inside any active parallel region —
// on a pool worker, or on the calling thread while it runs its own block 0
// — runs inline and serially. Outer loops get the threads; inner loops stay
// deterministic, deadlock-free, and free of sibling-block write races.
//
// Resilience: the caller's ambient core::RunContext (deadline, cancel token,
// heartbeat) is snapshotted at entry and installed on every worker for the
// region's duration, and each block polls it between index items. An
// interruption surfaces as a dsmt::SolveError with kDeadlineExceeded /
// kCancelled, routed through the same lowest-index first-failure channel as
// any other worker exception — so a cancelled parallel sweep reports the
// item a serial loop would have been interrupted at (the lowest unfinished
// index among the observing blocks), not a scheduling accident.
#pragma once

#include <cstddef>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "core/run_context.h"
#include "core/thread_annotations.h"
#include "parallel/thread_pool.h"

namespace dsmt::parallel {

namespace detail {

/// First-failure slot shared by the blocks of one parallel_for: keeps the
/// exception thrown at the lowest item index, which is what a serial loop
/// would have thrown first.
class FirstError {
 public:
  void offer(std::size_t i, std::exception_ptr e) DSMT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (error_ == nullptr || i < index_) {
      index_ = i;
      error_ = std::move(e);
    }
  }

  /// The recorded exception (nullptr when every block finished cleanly).
  /// Called after the join, but the lock keeps the analysis — and TSan —
  /// happy about the handoff from the last offering worker.
  std::exception_ptr take() DSMT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return error_;
  }

 private:
  Mutex mu_;
  std::size_t index_ DSMT_GUARDED_BY(mu_) = static_cast<std::size_t>(-1);
  std::exception_ptr error_ DSMT_GUARDED_BY(mu_);
};

/// Completion latch: parallel_for blocks the caller until every submitted
/// block has run (std::latch minus the C++20 header-availability gamble).
class BlockLatch {
 public:
  explicit BlockLatch(std::size_t count) : remaining_(count) {}

  void count_down() DSMT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (--remaining_ == 0) cv_.notify_all();
  }

  void wait() DSMT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (remaining_ != 0) cv_.wait(mu_);
  }

 private:
  Mutex mu_;
  CondVar cv_;
  std::size_t remaining_ DSMT_GUARDED_BY(mu_);
};

template <typename F>
void run_block(std::size_t begin, std::size_t end, F& body, FirstError& err) {
  for (std::size_t i = begin; i < end; ++i) {
    try {
      // Cooperative cancellation/deadline point between items: workers stop
      // dispatching new items as soon as the run is interrupted, and the
      // interruption is offered at this item's index like any failure.
      core::throw_if_run_interrupted("parallel/parallel_for");
      body(i);
    } catch (...) {
      // Record the block's first failure (its minimum index) and stop the
      // block: later indices of this block would not have run serially
      // either once the loop threw.
      err.offer(i, std::current_exception());
      return;
    }
  }
}

}  // namespace detail

/// Runs body(i) for every i in [0, n) across the global pool with static
/// contiguous index blocks; see the header comment for the determinism and
/// error contracts. Safe to call from anywhere; nested calls run inline.
template <typename F>
void parallel_for(std::size_t n, F&& body) {
  if (n == 0) return;
  const std::size_t workers = thread_count();
  if (workers <= 1 || n == 1 || on_worker_thread() || in_parallel_region()) {
    // Serial path: identical iteration order, natural exception flow, same
    // between-item interruption points as the parallel blocks.
    for (std::size_t i = 0; i < n; ++i) {
      core::throw_if_run_interrupted("parallel/parallel_for");
      body(i);
    }
    return;
  }

  const std::size_t blocks = workers < n ? workers : n;
  const std::size_t base = n / blocks;
  const std::size_t rem = n % blocks;

  auto err = std::make_shared<detail::FirstError>();
  auto latch = std::make_shared<detail::BlockLatch>(blocks - 1);
  // The functor is shared by reference across blocks: body must be
  // re-entrant, which the independence requirement already implies.
  auto& fn = body;

  // Snapshot the caller's ambient resilience context so pool workers poll
  // the same deadline/cancel token (copies share the underlying state). The
  // shared_ptr keeps the snapshot alive until the last block finishes.
  std::shared_ptr<const core::RunContext> run_ctx;
  if (const core::RunContext* ambient = core::current_run_context())
    run_ctx = std::make_shared<const core::RunContext>(*ambient);

  std::size_t begin = 0;
  std::size_t first_end = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t len = base + (b < rem ? 1 : 0);
    const std::size_t end = begin + len;
    if (b == 0) {
      first_end = end;  // block 0 runs on the calling thread below
    } else {
      pool_submit([begin, end, &fn, err, latch, run_ctx]() mutable {
        {
          core::ScopedRunContext scope(run_ctx.get());
          detail::run_block(begin, end, fn, *err);
        }
        // Drop the first-error reference BEFORE signaling: the closure
        // itself is destroyed after count_down, so without this reset a
        // straggling worker could hold the last FirstError reference and
        // destroy the captured exception (and its what() string) on the
        // worker thread while the caller, already rethrown-and-caught, is
        // still reading it. With the reset, the caller always holds the
        // last reference and the exception dies on the calling thread.
        err.reset();
        latch->count_down();
      });
    }
    begin = end;
  }
  {
    // The caller-run block is part of the region too: a nested parallel_for
    // from inside it must run inline, exactly as it does on a pool worker —
    // otherwise the nested region would fan out concurrently with the outer
    // region's worker blocks and the serial-nesting contract would break.
    detail::RegionGuard region;
    detail::run_block(0, first_end, fn, *err);
  }
  latch->wait();

  if (std::exception_ptr e = err->take()) std::rethrow_exception(e);
}

/// Ordered map: out[i] = fn(i) for i in [0, n), computed in parallel,
/// returned in index order. T must be default-constructible.
template <typename T, typename F>
std::vector<T> parallel_map(std::size_t n, F&& fn) {
  std::vector<T> out(n);
  parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// Ordered reduction: folds `items` serially in index order on the calling
/// thread — acc = fold(acc, items[i]) for i = 0..n-1. Pairing parallel_map
/// with ordered_reduce gives the exact floating-point sum/extremum sequence
/// of the serial code regardless of thread count.
template <typename Acc, typename T, typename Fold>
Acc ordered_reduce(Acc acc, const std::vector<T>& items, Fold&& fold) {
  for (const T& item : items) acc = fold(std::move(acc), item);
  return acc;
}

}  // namespace dsmt::parallel
