#include "service/request.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "materials/dielectric.h"
#include "materials/metal.h"
#include "report/diagnostics.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"
#include "thermal/impedance.h"

namespace dsmt::service {

namespace {

[[noreturn]] void bad_request(const std::string& what) {
  core::SolverDiag diag;
  diag.record("service/request", core::StatusCode::kInvalidInput, 0, 0.0,
              what);
  throw SolveError("service/request: " + what, diag);
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Canonical %.17g rendering so a family key round-trips bit-exactly.
std::string canon(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

double get_number(const report::Json& node, const char* key, double fallback) {
  const report::Json* member = node.find(key);
  return member != nullptr ? member->as_number() : fallback;
}

std::string get_string(const report::Json& node, const char* key,
                       std::string fallback) {
  const report::Json* member = node.find(key);
  return member != nullptr ? member->as_string() : fallback;
}

/// Integral member, validated before the narrowing cast: a client-supplied
/// {"level": 1e300} or NaN must classify as bad_request, never reach a
/// double->int conversion whose behavior is undefined out of range.
int get_int(const report::Json& node, const char* key, int fallback) {
  const report::Json* member = node.find(key);
  if (member == nullptr) return fallback;
  const double v = member->as_number();
  if (v != std::floor(v) || !(std::abs(v) <= 2147483647.0))
    bad_request(std::string("'") + key +
                "' must be an integral number within int range");
  return static_cast<int>(v);
}

RequestKind kind_from_name(const std::string& name) {
  const std::string k = lower(name);
  if (k == "self-consistent" || k == "sc") return RequestKind::kSelfConsistent;
  if (k == "duty-cycle-point" || k == "duty")
    return RequestKind::kDutyCyclePoint;
  if (k == "table-cell" || k == "table") return RequestKind::kTableCell;
  bad_request("unknown request kind '" + name + "'");
}

/// Built-in technology lookup for table-cell requests. Matches the node and
/// metallization in the name, case-insensitively: "NTRS-250nm-Cu",
/// "250nm_alcu", "ntrs100cu", ...
tech::Technology technology_by_name(const std::string& name) {
  const std::string n = lower(name);
  const bool alcu = n.find("alcu") != std::string::npos;
  if (n.find("250") != std::string::npos)
    return alcu ? tech::make_ntrs_250nm_alcu() : tech::make_ntrs_250nm_cu();
  if (n.find("180") != std::string::npos && !alcu)
    return tech::make_ntrs_180nm_cu();
  if (n.find("130") != std::string::npos && !alcu)
    return tech::make_ntrs_130nm_cu();
  if (n.find("100") != std::string::npos)
    return alcu ? tech::make_ntrs_100nm_alcu() : tech::make_ntrs_100nm_cu();
  throw std::out_of_range("service/request: unknown technology '" + name +
                          "'");
}

}  // namespace

const char* kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kSelfConsistent:
      return "self-consistent";
    case RequestKind::kDutyCyclePoint:
      return "duty-cycle-point";
    case RequestKind::kTableCell:
      return "table-cell";
  }
  return "unknown";
}

Request request_from_json(const report::Json& node) {
  if (!node.is_object()) bad_request("request is not a JSON object");
  Request r;
  r.id = get_string(node, "id", "");
  r.kind = kind_from_name(get_string(node, "kind", "self-consistent"));
  r.duty_cycle = get_number(node, "duty_cycle", r.duty_cycle);
  r.j0_MA_cm2 = get_number(node, "j0_MA_cm2", r.j0_MA_cm2);
  r.t_ref_c = get_number(node, "t_ref_c", r.t_ref_c);
  if (const report::Json* wire = node.find("wire")) {
    if (!wire->is_object()) bad_request("'wire' is not a JSON object");
    r.wire.metal = get_string(*wire, "metal", r.wire.metal);
    r.wire.width_um = get_number(*wire, "width_um", r.wire.width_um);
    r.wire.thickness_um =
        get_number(*wire, "thickness_um", r.wire.thickness_um);
    r.wire.dielectric_um =
        get_number(*wire, "dielectric_um", r.wire.dielectric_um);
    r.wire.k_dielectric =
        get_number(*wire, "k_dielectric", r.wire.k_dielectric);
  }
  r.technology = get_string(node, "technology", r.technology);
  r.level = get_int(node, "level", r.level);
  r.dielectric = get_string(node, "dielectric", r.dielectric);
  if (r.kind == RequestKind::kTableCell && r.technology.empty())
    bad_request("table-cell request without 'technology'");
  return r;
}

report::Json request_to_json(const Request& r) {
  using report::Json;
  Json node = Json::object();
  node.set("id", Json::string(r.id))
      .set("kind", Json::string(kind_name(r.kind)))
      .set("duty_cycle", Json::number(r.duty_cycle))
      .set("j0_MA_cm2", Json::number(r.j0_MA_cm2))
      .set("t_ref_c", Json::number(r.t_ref_c));
  if (r.kind == RequestKind::kTableCell) {
    node.set("technology", Json::string(r.technology))
        .set("level", Json::integer(r.level))
        .set("dielectric", Json::string(r.dielectric));
  } else {
    Json wire = Json::object();
    wire.set("metal", Json::string(r.wire.metal))
        .set("width_um", Json::number(r.wire.width_um))
        .set("thickness_um", Json::number(r.wire.thickness_um))
        .set("dielectric_um", Json::number(r.wire.dielectric_um))
        .set("k_dielectric", Json::number(r.wire.k_dielectric));
    node.set("wire", std::move(wire));
  }
  return node;
}

report::Json response_to_json(const Response& resp) {
  using report::Json;
  Json node = Json::object();
  node.set("id", Json::string(resp.id))
      .set("kind", Json::string(kind_name(resp.kind)))
      .set("status", Json::string(core::status_name(resp.status)))
      .set("degraded", Json::boolean(resp.degraded))
      .set("degradation_level",
           Json::integer(static_cast<long long>(resp.degradation_level)))
      .set("conservative", Json::boolean(resp.conservative))
      .set("attempts", Json::integer(resp.attempts));
  Json backoffs = Json::array();
  for (const std::uint64_t b : resp.backoff_ns)
    backoffs.push(Json::integer(static_cast<long long>(b)));
  node.set("backoff_ns", std::move(backoffs));
  if (resp.ok()) {
    Json sol = Json::object();
    sol.set("t_metal_c", Json::number(resp.t_metal_c))
        .set("delta_t_c", Json::number(resp.delta_t_c))
        .set("j_peak_MA_cm2", Json::number(resp.j_peak_MA_cm2))
        .set("j_rms_MA_cm2", Json::number(resp.j_rms_MA_cm2))
        .set("j_avg_MA_cm2", Json::number(resp.j_avg_MA_cm2));
    if (resp.kind == RequestKind::kDutyCyclePoint)
      sol.set("jpeak_em_only_MA_cm2",
              Json::number(resp.jpeak_em_only_MA_cm2));
    node.set("solution", std::move(sol));
  } else {
    node.set("error", Json::string(resp.error));
  }
  node.set("diag", report::diag_to_json(resp.diag));
  return node;
}

std::vector<Request> parse_batch(const std::string& text) {
  const report::Json doc = report::Json::parse(text);
  const report::Json* list = nullptr;
  if (doc.is_array()) {
    list = &doc;
  } else if (doc.is_object()) {
    list = doc.find("requests");
    if (list == nullptr || !list->is_array())
      bad_request("batch object lacks a 'requests' array");
  } else {
    bad_request("batch document is neither an array nor an object");
  }
  std::vector<Request> requests;
  requests.reserve(list->size());
  for (std::size_t i = 0; i < list->size(); ++i)
    requests.push_back(request_from_json(list->at(i)));
  return requests;
}

LadderProblem build_problem(const Request& r) {
  // Shape errors are classified here as kInvalidInput, before any kernel is
  // touched: client garbage must never count against the solver's circuit
  // breaker the way a genuine kernel failure does.
  if (!std::isfinite(r.duty_cycle) || r.duty_cycle <= 0.0 ||
      r.duty_cycle > 1.0)
    bad_request("duty_cycle must be in (0, 1]");
  if (!std::isfinite(r.j0_MA_cm2) || r.j0_MA_cm2 <= 0.0)
    bad_request("j0_MA_cm2 must be positive and finite");
  if (!std::isfinite(r.t_ref_c) || r.t_ref_c + kCelsiusOffset <= 0.0)
    bad_request("t_ref_c must be finite and above absolute zero");
  if (r.kind == RequestKind::kTableCell && r.level < 1)
    bad_request("table-cell level must be >= 1");

  LadderProblem lp;
  const units::CurrentDensity j0 = MA_per_cm2(r.j0_MA_cm2);
  const units::Kelvin t_ref = celsius_to_kelvin(r.t_ref_c);

  if (r.kind == RequestKind::kTableCell) {
    const tech::Technology technology = technology_by_name(r.technology);
    const materials::Dielectric gap_fill =
        materials::dielectric_by_name(r.dielectric);
    lp.full = selfconsistent::make_level_problem(
        technology, r.level, gap_fill, thermal::kPhiQuasi2D, r.duty_cycle,
        j0);
    lp.quasi1d = selfconsistent::make_level_problem(
        technology, r.level, gap_fill, thermal::kPhiQuasi1D, r.duty_cycle,
        j0);
    lp.full.t_ref = t_ref;
    lp.quasi1d.t_ref = t_ref;
    lp.family = "table|" + lower(technology.name) + "|level=" +
                std::to_string(r.level) + "|" + lower(r.dielectric) +
                "|j0=" + canon(r.j0_MA_cm2) + "|tref=" + canon(r.t_ref_c);
    return lp;
  }

  if (!std::isfinite(r.wire.width_um) || r.wire.width_um <= 0.0 ||
      !std::isfinite(r.wire.thickness_um) || r.wire.thickness_um <= 0.0 ||
      !std::isfinite(r.wire.dielectric_um) || r.wire.dielectric_um <= 0.0 ||
      !std::isfinite(r.wire.k_dielectric) || r.wire.k_dielectric <= 0.0)
    bad_request("wire geometry must be finite and positive");

  const materials::Metal metal = materials::metal_by_name(r.wire.metal);
  const units::Metres w_m = um(r.wire.width_um);
  const units::Metres t_m = um(r.wire.thickness_um);
  const units::Metres b = um(r.wire.dielectric_um);
  const units::ThermalConductivity k_d{r.wire.k_dielectric};

  const auto make = [&](double phi) {
    const units::Metres w_eff = thermal::effective_width(w_m, b, phi);
    const units::ThermalResistancePerLength rth =
        thermal::rth_per_length_uniform(b, k_d, w_eff);
    selfconsistent::Problem p;
    p.metal = metal;
    p.duty_cycle = r.duty_cycle;
    p.j0 = j0;
    p.t_ref = t_ref;
    p.heating_coefficient =
        selfconsistent::heating_coefficient(w_m, t_m, rth);
    return p;
  };
  lp.full = make(thermal::kPhiQuasi2D);
  lp.quasi1d = make(thermal::kPhiQuasi1D);
  lp.family = "wire|" + lower(r.wire.metal) + "|w=" + canon(r.wire.width_um) +
              "|t=" + canon(r.wire.thickness_um) +
              "|b=" + canon(r.wire.dielectric_um) +
              "|k=" + canon(r.wire.k_dielectric) +
              "|j0=" + canon(r.j0_MA_cm2) + "|tref=" + canon(r.t_ref_c);
  return lp;
}

}  // namespace dsmt::service
