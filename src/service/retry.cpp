#include "service/retry.h"

#include <algorithm>
#include <cmath>

#include "cache/fnv.h"

namespace dsmt::service {

bool retryable(core::StatusCode status) {
  return status == core::StatusCode::kNonFinite ||
         status == core::StatusCode::kMaxIterations;
}

std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t request_key(const std::string& id, std::size_t index) {
  // Standard-basis FNV-1a from the shared primitive (cache/fnv.h), mixed
  // with the index. Bitwise-identical to the historical inline loop.
  return mix64(cache::fnv1a(id) ^ static_cast<std::uint64_t>(index));
}

std::uint64_t backoff_ns(const RetryPolicy& policy, std::uint64_t key,
                         int attempt) {
  if (attempt < 1) attempt = 1;
  // Exponential ramp by repeated multiplication, clamped at the cap each
  // step so the loop cannot overflow no matter how large `attempt` is.
  double ramp = static_cast<double>(policy.base_backoff_ns);
  const double cap = static_cast<double>(policy.max_backoff_ns);
  const double growth = policy.multiplier > 1.0 ? policy.multiplier : 1.0;
  for (int i = 1; i < attempt && ramp < cap; ++i) ramp *= growth;
  ramp = std::min(ramp, cap);

  // Seeded jitter in [1 - jitter, 1 + jitter]: one splitmix64 draw keyed on
  // (seed, request key, attempt). The 53 high bits give a uniform double in
  // [0, 1) exactly as the Monte-Carlo generator does.
  const std::uint64_t draw =
      mix64(policy.seed ^ mix64(key ^ static_cast<std::uint64_t>(attempt)));
  const double u =
      static_cast<double>(draw >> 11) * 0x1.0p-53;  // [0, 1)
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  const double factor = 1.0 + jitter * (2.0 * u - 1.0);

  const double scheduled = std::max(ramp * factor, 0.0);
  return static_cast<std::uint64_t>(scheduled);
}

}  // namespace dsmt::service
