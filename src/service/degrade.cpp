#include "service/degrade.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dsmt::service {

void ReferenceCache::insert(const std::string& family, double duty_cycle,
                            const selfconsistent::Solution& solution) {
  if (!std::isfinite(duty_cycle) || duty_cycle <= 0.0 || duty_cycle > 1.0)
    return;  // malformed points never enter the conservative store
  if (!solution.diag.ok()) return;
  ReferencePoint point;
  point.duty_cycle = duty_cycle;
  point.t_metal_k = solution.t_metal.value();
  point.j_rms_A_m2 = solution.j_rms.value();
  MutexLock lock(mu_);
  std::vector<ReferencePoint>& family_points = points_[family];
  const auto at = std::lower_bound(
      family_points.begin(), family_points.end(), duty_cycle,
      [](const ReferencePoint& p, double r) { return p.duty_cycle < r; });
  if (at != family_points.end() && at->duty_cycle == duty_cycle)
    *at = point;
  else
    family_points.insert(at, point);
}

bool ReferenceCache::conservative_at(const std::string& family,
                                     double duty_cycle,
                                     ReferencePoint& out) const {
  MutexLock lock(mu_);
  ++lookups_;
  const auto family_it = points_.find(family);
  if (family_it == points_.end()) return false;
  const std::vector<ReferencePoint>& family_points = family_it->second;
  // Smallest cached r' >= r: the tightest point that is still conservative.
  const auto at = std::lower_bound(
      family_points.begin(), family_points.end(), duty_cycle,
      [](const ReferencePoint& p, double r) { return p.duty_cycle < r; });
  if (at == family_points.end()) return false;
  out = *at;
  ++hits_;
  return true;
}

std::size_t ReferenceCache::size() const {
  MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [family, family_points] : points_)
    n += family_points.size();
  return n;
}

std::size_t ReferenceCache::families() const {
  MutexLock lock(mu_);
  return points_.size();
}

std::uint64_t ReferenceCache::lookups() const {
  MutexLock lock(mu_);
  return lookups_;
}

std::uint64_t ReferenceCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

namespace {

/// Trial-temperature grid for the analytic rung: geometric in the rise
/// dT = T^ - T_ref from 0.25 K up to 1200 K (covers every regime the paper
/// tabulates; Table 4's worst cells sit near dT ~ 100 K). ~49 closed-form
/// evaluations, no iteration, no convergence check to inject faults into.
inline constexpr double kGridFirstRiseK = 0.25;
inline constexpr double kGridLastRiseK = 1200.0;
inline constexpr double kGridGrowth = 1.19;

}  // namespace

AnalyticBound analytic_quasi1d_bound(const selfconsistent::Problem& quasi1d) {
  const double r = quasi1d.duty_cycle;
  if (!std::isfinite(r) || r <= 0.0 || r > 1.0)
    throw std::invalid_argument(
        "service/degrade: duty cycle must be in (0, 1]");
  if (!std::isfinite(quasi1d.t_ref.value()) || quasi1d.t_ref.value() <= 0.0)
    throw std::invalid_argument(
        "service/degrade: t_ref must be positive and finite");

  const double sqrt_r = std::sqrt(r);
  AnalyticBound best;
  best.t_metal = quasi1d.t_ref;
  for (double rise = kGridFirstRiseK; rise <= kGridLastRiseK;
       rise *= kGridGrowth) {
    const units::Kelvin t_trial{quasi1d.t_ref.value() + rise};
    // Feasible j_rms at this trial temperature: the thermal branch keeps the
    // true temperature at or below t_trial, the EM branch applies Black's
    // rule at the pessimistic t_trial. min() of the two is safe on both.
    const double j_thermal =
        selfconsistent::jrms_thermal_at(quasi1d, t_trial).value();
    const double j_em =
        selfconsistent::javg_em_at(quasi1d, t_trial).value() / sqrt_r;
    const double j_feasible = std::min(j_thermal, j_em);
    if (std::isfinite(j_feasible) && j_feasible > best.j_rms.value()) {
      best.j_rms = units::CurrentDensity{j_feasible};
      best.t_metal = t_trial;
    }
  }
  best.j_peak = best.j_rms / sqrt_r;
  best.j_avg = sqrt_r * best.j_rms;
  return best;
}

}  // namespace dsmt::service
