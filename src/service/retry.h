// Deterministic retry with exponential backoff and seeded jitter.
//
// The service retries full solves whose failure mode is plausibly transient
// (kNonFinite, kMaxIterations — the two modes the fault injector produces
// and the recovery wrappers sometimes cannot absorb). The backoff schedule
// is a pure function of (policy, request key, attempt): splitmix64 jitter
// keyed on the request, never a wall clock or a shared RNG, so the schedule
// a request receives is bitwise reproducible across runs and thread counts.
// Sleeping on the schedule is the server's (optional) concern; the policy
// layer only computes it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/status.h"

namespace dsmt::service {

/// Retry policy for the full-solve rung of the service ladder.
struct RetryPolicy {
  int max_attempts = 3;  ///< total attempts, including the first [1]
  std::uint64_t base_backoff_ns = 1000000;    ///< schedule base (1 ms) [ns]
  double multiplier = 2.0;                    ///< exponential growth [1]
  std::uint64_t max_backoff_ns = 1000000000;  ///< schedule cap (1 s) [ns]
  double jitter = 0.25;  ///< +/- fractional seeded jitter [1]
  std::uint64_t seed = 0x646d7374;  ///< jitter stream seed ("dsmt")
};

/// True for failure modes a retry can plausibly fix (transient numeric
/// trouble). Structural failures (bad input, no bracket, singular system)
/// and run interruptions (deadline, cancel) are not retryable: burning the
/// remaining budget on them cannot help.
bool retryable(core::StatusCode status);

/// splitmix64 finalizer — the same mixer as the Monte-Carlo counter RNG
/// (core/variation.cpp), chosen for platform-independent bit behavior.
std::uint64_t mix64(std::uint64_t z);

/// Stable request key: FNV-1a over the request id, folded with the batch
/// index so two requests with the same id still draw distinct jitter.
std::uint64_t request_key(const std::string& id, std::size_t index);

/// Backoff [ns] scheduled after failed attempt `attempt` (1-based) of the
/// request identified by `key`. Pure function of its arguments; the
/// exponential ramp is computed by repeated multiplication (no pow()) so
/// the result is bit-stable everywhere.
std::uint64_t backoff_ns(const RetryPolicy& policy, std::uint64_t key,
                         int attempt);

}  // namespace dsmt::service
