#include "service/server.h"

#include <chrono>
#include <cmath>
#include <exception>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "cache/response.h"
#include "core/run_context.h"
#include "core/signoff.h"
#include "parallel/parallel_for.h"
#include "selfconsistent/batch.h"

namespace dsmt::service {

namespace {

/// The kernel the breaker guards — the only iterative solve on the request
/// path; both degradation rungs below it are closed-form.
constexpr const char* kSolveKernel = "eq13/solve";

void fill_solution_fields(Response& resp, double t_metal_k, double delta_t_k,
                          double j_peak, double j_rms, double j_avg) {
  resp.t_metal_c = kelvin_to_celsius(t_metal_k);
  resp.delta_t_c = delta_t_k;
  resp.j_peak_MA_cm2 = to_MA_per_cm2(j_peak);
  resp.j_rms_MA_cm2 = to_MA_per_cm2(j_rms);
  resp.j_avg_MA_cm2 = to_MA_per_cm2(j_avg);
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      breaker_(kSolveKernel, config_.breaker) {
  if (config_.publish_signoff)
    core::set_signoff_service_source(this, [this] { return service_json(); });
}

Server::~Server() {
  if (config_.publish_signoff) core::clear_signoff_service_source(this);
}

Response Server::shed_response(const Request& request) {
  Response resp;
  resp.id = request.id;
  resp.kind = request.kind;
  resp.status = core::StatusCode::kRejectedOverload;
  resp.error = "shed at admission: burst exceeded queue capacity " +
               std::to_string(config_.queue_capacity);
  resp.diag.record("service/admission", core::StatusCode::kRejectedOverload,
                   0, 0.0, resp.error);
  return resp;
}

std::vector<Response> Server::submit_batch(
    const std::vector<Request>& batch) {
  received_ += batch.size();
  const std::size_t capacity =
      config_.queue_capacity > 0 ? config_.queue_capacity : 1;

  // Admission first, serially, in index order: the burst either fits in the
  // bounded queue or is shed. No thread ever influences the decision, so
  // identical batches admit identically at every DSMT_THREADS value.
  std::vector<std::size_t> admitted;
  admitted.reserve(batch.size() < capacity ? batch.size() : capacity);
  std::vector<Response> out(batch.size());
  std::vector<char> served(batch.size(), 0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (admitted.size() < capacity) {
      admitted.push_back(i);
    } else {
      out[i] = shed_response(batch[i]);
      served[i] = 1;
      ++shed_;
    }
  }
  admitted_ += admitted.size();

  try {
    parallel::parallel_for(admitted.size(), [&](std::size_t k) {
      const std::size_t i = admitted[k];
      out[i] = guarded_execute(batch[i], i);
      served[i] = 1;
    });
  } catch (const SolveError& interruption) {
    // Only a caller-context interruption (deadline / cancel observed by
    // parallel_for between items) reaches here: guarded_execute never
    // throws. Stamp every unserved slot so the batch stays complete, then
    // let the interruption propagate to the caller who armed it.
    for (const std::size_t i : admitted) {
      if (served[i]) continue;
      out[i].id = batch[i].id;
      out[i].kind = batch[i].kind;
      out[i].status = interruption.status();
      out[i].error = interruption.what();
      out[i].diag = interruption.diag();
      ++failed_;
    }
    throw;
  }
  return out;
}

Response Server::handle(const Request& request, std::size_t index) {
  ++received_;
  ++admitted_;
  return guarded_execute(request, index);
}

Response Server::guarded_execute(const Request& request, std::size_t index) {
  try {
    return execute(request, index);
  } catch (const SolveError& e) {
    Response resp;
    resp.id = request.id;
    resp.kind = request.kind;
    resp.status = e.status();
    resp.error = e.what();
    resp.diag = e.diag();
    ++failed_;
    return resp;
  } catch (const std::bad_alloc&) {
    // Allocation failure is admission-boundary overload, not bad input:
    // shed this request with the overload status so callers retry it
    // elsewhere instead of discarding it as malformed. Deliberately builds
    // only a slim response — the heap just refused us.
    Response resp;
    resp.id = request.id;
    resp.kind = request.kind;
    resp.status = core::StatusCode::kRejectedOverload;
    resp.error = "allocation failure: request shed at admission";
    resp.diag.record("service/admission", core::StatusCode::kRejectedOverload,
                     0, 0.0, "allocation failure: request shed at admission");
    ++shed_;
    return resp;
  } catch (const std::exception& e) {
    Response resp;
    resp.id = request.id;
    resp.kind = request.kind;
    resp.status = core::StatusCode::kInvalidInput;
    resp.error = e.what();
    resp.diag.record("service/execute", core::StatusCode::kInvalidInput, 0,
                     0.0, e.what());
    ++failed_;
    return resp;
  }
}

Response Server::execute(const Request& request, std::size_t index) {
  Response resp;
  resp.id = request.id;
  resp.kind = request.kind;

  LadderProblem ladder;
  try {
    ladder = build_problem(request);
  } catch (const SolveError& e) {
    resp.status = e.status();
    resp.error = e.what();
    resp.diag = e.diag();
    ++failed_;
    return resp;
  } catch (const std::exception& e) {
    resp.status = core::StatusCode::kInvalidInput;
    resp.error = e.what();
    resp.diag.record("service/request", core::StatusCode::kInvalidInput, 0,
                     0.0, e.what());
    ++failed_;
    return resp;
  }

  // Per-request deadline budget, unless the caller's ambient deadline is
  // already tighter. The copy shares the caller's cancel token, so a batch
  // cancel still interrupts a request mid-deadline.
  std::optional<core::RunContext> deadline_ctx;
  std::optional<core::ScopedRunContext> deadline_scope;
  if (config_.deadline_ns > 0) {
    const core::RunContext* ambient = core::current_run_context();
    const double budget_s =
        static_cast<double>(config_.deadline_ns) * 1e-9;
    if (ambient == nullptr || !ambient->has_deadline() ||
        ambient->seconds_remaining() > budget_s) {
      deadline_ctx = ambient != nullptr ? *ambient : core::RunContext{};
      deadline_ctx->set_deadline(
          std::chrono::steady_clock::now() +
          std::chrono::nanoseconds(config_.deadline_ns));
      deadline_scope.emplace(*deadline_ctx);
    }
  }

  // Cache rung: sits above rung 0, inside the deadline scope so a parked
  // waiter observes the same budget the solve would. A verified hit
  // replays the cold path's exact reply bytes (cache/response.h); a miss
  // either leads the single flight (publishing on success, abandoning on
  // every other exit via the lease) or solves independently.
  cache::SolveCache* const solve_cache = config_.solve_cache.get();
  std::string cache_key;
  cache::FlightLease flight;
  if (solve_cache != nullptr) {
    cache_key = cache::canonical_key(request);
    cache::CachedSolve hit;
    switch (solve_cache->acquire(cache_key, hit)) {
      case cache::Acquire::kHit: {
        Response out = cache::hit_response(request, ladder, hit);
        cache_.insert(ladder.family, request.duty_cycle,
                      cache::to_solution(hit));
        ++ok_full_;
        return out;
      }
      case cache::Acquire::kLead:
        flight.arm(solve_cache, cache_key);
        break;
      case cache::Acquire::kSolve:
        break;
    }
  }

  // Rung 0: the full quasi-2D solve, behind the breaker, with retries.
  bool solved = false;
  selfconsistent::Solution solution;
  core::StatusCode last_failure = core::StatusCode::kBreakerOpen;
  if (breaker_.allow()) {
    const std::uint64_t key = request_key(request.id, index);
    const int max_attempts =
        config_.retry.max_attempts > 0 ? config_.retry.max_attempts : 1;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      ++resp.attempts;
      try {
        solution = selfconsistent::solve_one(ladder.full);
        resp.diag.absorb(solution.diag,
                         "service/attempt " + std::to_string(attempt));
        solved = true;
        break;
      } catch (const SolveError& e) {
        last_failure = e.status();
        resp.diag.absorb(e.diag(),
                         "service/attempt " + std::to_string(attempt));
        if (!retryable(last_failure) || attempt == max_attempts) break;
        const std::uint64_t pause = backoff_ns(config_.retry, key, attempt);
        resp.backoff_ns.push_back(pause);
        ++retries_;
        resp.diag.record("service/retry", last_failure, attempt, 0.0,
                         "attempt " + std::to_string(attempt) + " failed (" +
                             core::status_name(last_failure) +
                             "); backing off " + std::to_string(pause) +
                             " ns");
        if (config_.sleep_on_backoff && pause > 0)
          std::this_thread::sleep_for(std::chrono::nanoseconds(pause));
        const core::StatusCode run_state = core::run_check();
        if (run_state != core::StatusCode::kOk) {
          last_failure = run_state;
          resp.diag.record("service/retry", run_state, attempt, 0.0,
                           "retry budget interrupted");
          break;
        }
      } catch (const std::bad_alloc&) {
        // Not a solver failure: the heap refused us mid-attempt. Rethrow so
        // guarded_execute sheds the request as kRejectedOverload instead of
        // the ladder masking memory pressure with further allocation.
        breaker_.on_failure(core::StatusCode::kRejectedOverload);
        throw;
      } catch (const std::exception& e) {
        last_failure = core::StatusCode::kInvalidInput;
        resp.diag.record("service/attempt",
                         core::StatusCode::kInvalidInput, attempt, 0.0,
                         e.what());
        break;
      }
    }
    if (solved)
      breaker_.on_success();
    else
      breaker_.on_failure(last_failure);
  } else {
    resp.diag.record("service/breaker[" + breaker_.kernel() + "]",
                     core::StatusCode::kBreakerOpen,
                     static_cast<int>(breaker_.ticks()), 0.0,
                     "short-circuited: breaker open");
  }

  const double r = request.duty_cycle;
  const bool want_em_only = request.kind == RequestKind::kDutyCyclePoint;

  if (solved) {
    resp.status = core::StatusCode::kOk;
    resp.degradation_level = DegradationLevel::kFull;
    resp.conservative = true;  // exact answer trivially satisfies the bound
    fill_solution_fields(resp, solution.t_metal.value(),
                         solution.delta_t.value(), solution.j_peak.value(),
                         solution.j_rms.value(), solution.j_avg.value());
    if (want_em_only)
      resp.jpeak_em_only_MA_cm2 =
          to_MA_per_cm2(selfconsistent::jpeak_em_only(ladder.full).value());
    cache_.insert(ladder.family, r, solution);
    // Only a CANONICAL solve is cacheable: clean first try, the
    // synthesized single-event diag. Retried or recovered solves carry
    // history a hit could not replay byte-identically.
    if (solve_cache != nullptr && resp.attempts == 1 &&
        cache::canonical_solve(solution)) {
      solve_cache->publish(cache_key, cache::from_solution(solution));
      flight.dismiss();
    }
    ++ok_full_;
    return resp;
  }

  // An interrupted request gets no degraded answer: the caller's budget is
  // gone and any reply would arrive too late to be acted on.
  if (core::is_interruption(last_failure)) {
    resp.status = last_failure;
    resp.error = std::string("request interrupted (") +
                 core::status_name(last_failure) + ")";
    ++failed_;
    return resp;
  }

  // Rung 1: conservative interpolation from the reference cache.
  if (config_.enable_interpolation) {
    ReferencePoint ref;
    if (cache_.conservative_at(ladder.family, r, ref)) {
      const double sqrt_r = std::sqrt(r);
      resp.status = core::StatusCode::kOk;
      resp.degraded = true;
      resp.degradation_level = DegradationLevel::kInterpolated;
      resp.conservative = true;
      fill_solution_fields(resp, ref.t_metal_k,
                           ref.t_metal_k - celsius_to_kelvin(request.t_ref_c),
                           ref.j_rms_A_m2 / sqrt_r, ref.j_rms_A_m2,
                           sqrt_r * ref.j_rms_A_m2);
      if (want_em_only)
        resp.jpeak_em_only_MA_cm2 = to_MA_per_cm2(
            selfconsistent::jpeak_em_only(ladder.full).value());
      resp.diag.record("service/degrade", core::StatusCode::kOk, 1, 0.0,
                       "rung 1: cached reference at r'=" +
                           std::to_string(ref.duty_cycle) +
                           " >= r, j_rms non-increasing in r");
      ++ok_interpolated_;
      return resp;
    }
  }

  // Rung 2: iteration-free analytic quasi-1D bound.
  if (config_.enable_analytic_bound) {
    try {
      const AnalyticBound bound = analytic_quasi1d_bound(ladder.quasi1d);
      resp.status = core::StatusCode::kOk;
      resp.degraded = true;
      resp.degradation_level = DegradationLevel::kAnalyticBound;
      resp.conservative = true;
      fill_solution_fields(
          resp, bound.t_metal.value(),
          bound.t_metal.value() - celsius_to_kelvin(request.t_ref_c),
          bound.j_peak.value(), bound.j_rms.value(), bound.j_avg.value());
      if (want_em_only)
        resp.jpeak_em_only_MA_cm2 = to_MA_per_cm2(
            selfconsistent::jpeak_em_only(ladder.full).value());
      resp.diag.record("service/degrade", core::StatusCode::kOk, 2, 0.0,
                       "rung 2: quasi-1D analytic bound (phi = 0.88)");
      ++ok_analytic_;
      return resp;
    } catch (const std::exception& e) {
      resp.diag.record("service/degrade", core::StatusCode::kInvalidInput,
                       2, 0.0, e.what());
    }
  }

  resp.status = last_failure;
  resp.error = std::string("full solve unavailable (") +
               core::status_name(last_failure) +
               ") and no degradation rung applies";
  ++failed_;
  return resp;
}

bool Server::warm(const Request& request) {
  try {
    const LadderProblem ladder = build_problem(request);
    const selfconsistent::Solution solution =
        selfconsistent::solve_one(ladder.full);
    cache_.insert(ladder.family, request.duty_cycle, solution);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

ServerMetrics Server::metrics() const {
  ServerMetrics m;
  m.received = received_.load();
  m.admitted = admitted_.load();
  m.shed = shed_.load();
  m.ok_full = ok_full_.load();
  m.ok_interpolated = ok_interpolated_.load();
  m.ok_analytic = ok_analytic_.load();
  m.failed = failed_.load();
  m.retries = retries_.load();
  return m;
}

report::Json Server::service_json() const {
  using report::Json;
  const ServerMetrics m = metrics();
  Json root = Json::object();

  Json queue = Json::object();
  queue
      .set("capacity",
           Json::integer(static_cast<long long>(config_.queue_capacity)))
      .set("received", Json::integer(static_cast<long long>(m.received)))
      .set("admitted", Json::integer(static_cast<long long>(m.admitted)))
      .set("shed", Json::integer(static_cast<long long>(m.shed)));
  root.set("queue", std::move(queue));

  Json outcomes = Json::object();
  outcomes
      .set("ok_full", Json::integer(static_cast<long long>(m.ok_full)))
      .set("ok_interpolated",
           Json::integer(static_cast<long long>(m.ok_interpolated)))
      .set("ok_analytic",
           Json::integer(static_cast<long long>(m.ok_analytic)))
      .set("failed", Json::integer(static_cast<long long>(m.failed)))
      .set("retries", Json::integer(static_cast<long long>(m.retries)));
  root.set("outcomes", std::move(outcomes));

  // Uniform degradation-rung observability: rung-1 reference interpolation
  // and the content-addressed solve cache report side by side.
  Json cache = Json::object();
  Json reference = Json::object();
  reference
      .set("families",
           Json::integer(static_cast<long long>(cache_.families())))
      .set("points", Json::integer(static_cast<long long>(cache_.size())))
      .set("lookups",
           Json::integer(static_cast<long long>(cache_.lookups())))
      .set("hits", Json::integer(static_cast<long long>(cache_.hits())));
  cache.set("reference", std::move(reference));
  if (config_.solve_cache != nullptr)
    cache.set("solve", config_.solve_cache->cache_json());
  root.set("cache", std::move(cache));

  Json breaker = Json::object();
  breaker.set("kernel", Json::string(breaker_.kernel()))
      .set("state", Json::string(breaker_state_name(breaker_.state())))
      .set("ticks",
           Json::integer(static_cast<long long>(breaker_.ticks())))
      .set("opens", Json::integer(static_cast<long long>(breaker_.opens())))
      .set("short_circuits",
           Json::integer(static_cast<long long>(breaker_.short_circuits())));
  Json transitions = Json::array();
  for (const BreakerTransition& t : breaker_.transitions()) {
    Json entry = Json::object();
    entry.set("tick", Json::integer(static_cast<long long>(t.tick)))
        .set("from", Json::string(breaker_state_name(t.from)))
        .set("to", Json::string(breaker_state_name(t.to)))
        .set("reason", Json::string(t.reason));
    transitions.push(std::move(entry));
  }
  breaker.set("transitions", std::move(transitions));
  root.set("breaker", std::move(breaker));

  return root;
}

}  // namespace dsmt::service
