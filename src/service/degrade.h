// Graceful-degradation ladder below the full quasi-2D solve.
//
// When the full Eq. 13 solve is unavailable — the kernel is failing, its
// breaker is open, or retries are exhausted — the service still answers,
// stepping down a ladder whose every rung is *conservative for j_rms* (and
// therefore for T_m, which rises monotonically with j_rms):
//
//   rung 1  ReferenceCache::conservative_at — the cached full solution of
//           the SAME geometry family at the smallest cached duty cycle
//           r' >= r. j_rms is non-increasing in r (the EM constraint
//           j_avg = sqrt(r) j_rms tightens as r grows while the thermal
//           constraint is r-independent), so j_rms(r') <= j_rms(r), and the
//           cached pair (j_rms(r'), T(r')) is exactly self-consistent for
//           this geometry: strictly feasible, never optimistic.
//
//   rung 2  analytic_quasi1d_bound — iteration-free lower bound from the
//           quasi-1D W_eff = W_m + 0.88 b problem. For ANY trial T^ >= T_ref,
//           j_rms = min(jrms_thermal_at(T^), javg_em_at(T^)/sqrt(r)) is
//           feasible (the thermal branch pins T <= T^, the EM branch is
//           evaluated at the pessimistic T^); we take the best T^ over a
//           fixed geometric grid. The quasi-1D phi = 0.88 underestimates
//           W_eff, overestimates R'_th and hence heating, pushing the bound
//           further below the quasi-2D answer.
//
// Full derivations: docs/THEORY.md section 15.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/thread_annotations.h"
#include "selfconsistent/solver.h"

namespace dsmt::service {

/// One cached full-solve operating point of a geometry family.
struct ReferencePoint {
  double duty_cycle = 0.0;   ///< r [1] the point was solved at
  double t_metal_k = 0.0;    ///< self-consistent T_m [K]
  double j_rms_A_m2 = 0.0;   ///< self-consistent j_rms [A/m^2]
};

/// Thread-safe store of full quasi-2D solutions keyed by geometry family
/// (request.h: everything but duty cycle). Rung 1 of the ladder reads it;
/// every successful full solve feeds it, so a warm server degrades to
/// recent truth instead of the analytic floor.
class ReferenceCache {
 public:
  /// Records one full solution at duty cycle r [1]. Re-inserting the same
  /// (family, r) overwrites — last writer wins, all writers agree anyway
  /// (the solve is deterministic).
  void insert(const std::string& family, double duty_cycle,
              const selfconsistent::Solution& solution);

  /// Conservative lookup: the cached point of `family` with the smallest
  /// duty cycle r' [1] >= r. Returns false when the family has no such point
  /// (empty family, or every cached r' < r — a smaller r' would be
  /// OPTIMISTIC and is never returned).
  bool conservative_at(const std::string& family, double duty_cycle,
                       ReferencePoint& out) const;

  std::size_t size() const;          ///< total cached points
  std::size_t families() const;      ///< distinct geometry families

  /// Rung-1 observability (satellite of the cache PR: interpolation hits
  /// used to be invisible in sign-off). lookups counts conservative_at
  /// calls, hits the ones that returned a point.
  std::uint64_t lookups() const;
  std::uint64_t hits() const;

 private:
  mutable Mutex mu_;
  /// Per family: points sorted ascending by duty cycle.
  std::map<std::string, std::vector<ReferencePoint>> points_
      DSMT_GUARDED_BY(mu_);
  mutable std::uint64_t lookups_ DSMT_GUARDED_BY(mu_) = 0;
  mutable std::uint64_t hits_ DSMT_GUARDED_BY(mu_) = 0;
};

/// Rung-2 result: a feasible, conservative operating point.
struct AnalyticBound {
  units::Kelvin t_metal{};         ///< trial temperature of the best rung
  units::CurrentDensity j_rms{};   ///< guaranteed-feasible RMS density
  units::CurrentDensity j_peak{};  ///< j_rms / sqrt(r)
  units::CurrentDensity j_avg{};   ///< sqrt(r) j_rms
};

/// Iteration-free conservative bound from the quasi-1D problem (see the
/// header comment). Deterministic: fixed temperature grid, no root find, no
/// fault-injection hook in its path. Throws std::invalid_argument on duty
/// cycle outside (0, 1] or non-finite problem data.
AnalyticBound analytic_quasi1d_bound(const selfconsistent::Problem& quasi1d);

}  // namespace dsmt::service
