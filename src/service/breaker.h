// Per-kernel circuit breaker over logical time.
//
// Classic three-state machine: Closed (attempts flow), Open (attempts are
// short-circuited straight to the degradation ladder), Half-Open (a single
// probe attempt is admitted; success closes the breaker, failure reopens
// it). Time is logical — admission polls, not seconds — because wall clocks
// are fenced out of the library (lint R7) and a wall-clock cooldown would
// make responses timing-dependent anyway. Every transition is recorded with
// the tick it happened at, and can be appended to a core::SolverDiag chain
// so breaker history rides the same diagnostics channel as solver recovery
// stages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/thread_annotations.h"

namespace dsmt::service {

enum class BreakerState { kClosed = 0, kOpen, kHalfOpen };

/// Short stable name ("closed", "open", "half-open").
const char* breaker_state_name(BreakerState state);

struct BreakerConfig {
  int failure_threshold = 5;  ///< consecutive failures that open the breaker
  int open_ticks = 16;        ///< admission polls the breaker stays open
  int half_open_successes = 1;  ///< probe successes required to re-close
};

/// One recorded state transition, at the admission poll it happened on.
struct BreakerTransition {
  std::uint64_t tick = 0;
  BreakerState from = BreakerState::kClosed;
  BreakerState to = BreakerState::kClosed;
  std::string reason;
};

/// Thread-safe circuit breaker guarding one kernel.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(std::string kernel, BreakerConfig config = {});

  /// One admission poll (bumps the logical tick). True: the caller may
  /// attempt the kernel — the breaker is closed, or this poll won the
  /// half-open probe slot. False: short-circuit to degradation. Every
  /// allow() == true must be answered by exactly one on_success() or
  /// on_failure().
  bool allow();

  /// Terminal success of an allowed attempt chain (after retries).
  void on_success();

  /// Terminal failure of an allowed attempt chain. Run interruptions
  /// (deadline, cancel) and kInvalidInput do not count against the kernel's
  /// health — they say nothing about whether the kernel works — but they
  /// still release a half-open probe slot, so a probe that times out never
  /// wedges the breaker.
  void on_failure(core::StatusCode status);

  BreakerState state() const;
  const std::string& kernel() const { return kernel_; }
  std::uint64_t ticks() const;
  std::uint64_t short_circuits() const;
  std::uint64_t opens() const;
  std::vector<BreakerTransition> transitions() const;

  /// Appends one event per recorded transition to `diag` (kernel
  /// "service/breaker[<kernel>]", status kBreakerOpen for transitions into
  /// Open, kOk otherwise, the tick in the iterations slot).
  void record_into(core::SolverDiag& diag) const;

 private:
  void transition_locked(BreakerState to, std::string reason)
      DSMT_REQUIRES(mu_);

  const std::string kernel_;
  const BreakerConfig config_;
  mutable Mutex mu_;
  BreakerState state_ DSMT_GUARDED_BY(mu_) = BreakerState::kClosed;
  /// allow() calls so far.
  std::uint64_t tick_ DSMT_GUARDED_BY(mu_) = 0;
  /// Tick of the last transition to Open.
  std::uint64_t opened_tick_ DSMT_GUARDED_BY(mu_) = 0;
  std::uint64_t short_circuits_ DSMT_GUARDED_BY(mu_) = 0;
  std::uint64_t opens_ DSMT_GUARDED_BY(mu_) = 0;
  int consecutive_failures_ DSMT_GUARDED_BY(mu_) = 0;
  int probe_successes_ DSMT_GUARDED_BY(mu_) = 0;
  bool probe_in_flight_ DSMT_GUARDED_BY(mu_) = false;
  std::vector<BreakerTransition> transitions_ DSMT_GUARDED_BY(mu_);
};

}  // namespace dsmt::service
