// Fault-tolerant in-process request service over the self-consistent solver.
//
// The Server is the hardened front end a full-chip caller (an EM/IR-drop
// engine firing thousands of per-wire queries) talks to. One batch in, one
// structured response per request out — ALWAYS:
//
//   admission   The batch is a burst against a bounded queue of
//               `queue_capacity` slots. Admission is decided serially in
//               index order before any parallel work, so the decision is a
//               pure function of the batch — requests that do not fit are
//               shed with kRejectedOverload (explicit load-shedding, never
//               unbounded buffering).
//   deadline    Each admitted request runs under a RunContext whose
//               monotonic budget is `deadline_ns` (0 = none), merged with
//               any tighter ambient deadline of the caller.
//   retry       kNonFinite / kMaxIterations failures of the full solve are
//               retried up to RetryPolicy::max_attempts with exponential
//               backoff and seeded jitter — a pure function of (policy,
//               request key, attempt), bitwise reproducible everywhere.
//   breaker     One CircuitBreaker guards the "eq13/solve"
//               kernel. When it is open, requests skip the solve entirely
//               and step down the degradation ladder.
//   degradation Full quasi-2D solve -> conservative cache interpolation ->
//               analytic quasi-1D bound (degrade.h). Degraded responses
//               carry degradation_level and conservative = true.
//
// Responses never escape as exceptions: every request — malformed, shed,
// failed, degraded — yields exactly one terminal Response. With fault
// injection disarmed the full batch output is bit-identical for every
// DSMT_THREADS value (admission is serial, the solve is deterministic, and
// parallel_map is index-addressed).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/solve_cache.h"
#include "report/json.h"
#include "service/breaker.h"
#include "service/degrade.h"
#include "service/request.h"
#include "service/retry.h"

namespace dsmt::service {

struct ServerConfig {
  /// Bounded admission queue: per-burst slots before shedding starts.
  std::size_t queue_capacity = 256;
  /// Per-request deadline budget [ns] (0 = none). Merged with any tighter
  /// ambient deadline already installed by the caller.
  std::uint64_t deadline_ns = 0;
  RetryPolicy retry{};
  BreakerConfig breaker{};
  /// Actually sleep the scheduled backoff between attempts. Tests disable
  /// it: the schedule (recorded in Response::backoff_ns) is what matters.
  bool sleep_on_backoff = true;
  bool enable_interpolation = true;  ///< ladder rung 1
  bool enable_analytic_bound = true;  ///< ladder rung 2
  /// Publish this server's service_json() under the sign-off "service" key
  /// (core/signoff.h) for the server's lifetime.
  bool publish_signoff = true;
  /// Content-addressed solve cache above ladder rung 0 (cache/solve_cache.h):
  /// verified hits replay the cold path's exact reply bytes, misses
  /// single-flight the solve. Shared (shared_ptr) so the supervise parent
  /// and the in-process service can serve from one cache. Null = no cache.
  std::shared_ptr<cache::SolveCache> solve_cache;
};

/// Monotonic counters since construction (snapshot).
struct ServerMetrics {
  std::uint64_t received = 0;   ///< requests seen at admission
  std::uint64_t admitted = 0;   ///< entered the bounded queue
  std::uint64_t shed = 0;       ///< kRejectedOverload at admission
  std::uint64_t ok_full = 0;    ///< answered by the full quasi-2D solve
  std::uint64_t ok_interpolated = 0;  ///< answered by ladder rung 1
  std::uint64_t ok_analytic = 0;      ///< answered by ladder rung 2
  std::uint64_t failed = 0;     ///< terminal non-kOk responses
  std::uint64_t retries = 0;    ///< backoff pauses scheduled
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves one burst: exactly one terminal Response per request, in
  /// request order. Never throws for per-request failures; propagates only
  /// a caller-context interruption after stamping every unserved slot with
  /// that interruption status — even then the returned vector is complete.
  std::vector<Response> submit_batch(const std::vector<Request>& batch);

  /// Serves one request, bypassing admission (it always "fits"). `index`
  /// seeds the retry jitter key together with request.id.
  Response handle(const Request& request, std::size_t index = 0);

  /// Pre-seeds the rung-1 reference cache by solving `request` directly
  /// (no retry, no breaker). Returns false when the solve failed or the
  /// request was malformed; the server is untouched in that case.
  bool warm(const Request& request);

  ServerMetrics metrics() const;
  const CircuitBreaker& breaker() const { return breaker_; }
  const ReferenceCache& cache() const { return cache_; }
  const ServerConfig& config() const { return config_; }

  /// The sign-off "service" section: admission/outcome counters, cache
  /// occupancy, and the breaker's state and full transition history.
  report::Json service_json() const;

 private:
  Response execute(const Request& request, std::size_t index);
  Response guarded_execute(const Request& request, std::size_t index);
  Response shed_response(const Request& request);

  const ServerConfig config_;
  CircuitBreaker breaker_;
  ReferenceCache cache_;
  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> ok_full_{0};
  std::atomic<std::uint64_t> ok_interpolated_{0};
  std::atomic<std::uint64_t> ok_analytic_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> retries_{0};
};

}  // namespace dsmt::service
