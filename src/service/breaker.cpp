#include "service/breaker.h"

#include <utility>

namespace dsmt::service {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(std::string kernel, BreakerConfig config)
    : kernel_(std::move(kernel)), config_(config) {}

void CircuitBreaker::transition_locked(BreakerState to, std::string reason) {
  transitions_.push_back({tick_, state_, to, std::move(reason)});
  state_ = to;
}

bool CircuitBreaker::allow() {
  MutexLock lock(mu_);
  ++tick_;
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (tick_ - opened_tick_ >
          static_cast<std::uint64_t>(config_.open_ticks)) {
        transition_locked(BreakerState::kHalfOpen,
                          "cooldown elapsed: admitting probe");
        probe_successes_ = 0;
        probe_in_flight_ = true;
        return true;
      }
      ++short_circuits_;
      return false;
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) {
        ++short_circuits_;
        return false;
      }
      probe_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::on_success() {
  MutexLock lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    probe_in_flight_ = false;
    ++probe_successes_;
    if (probe_successes_ >= config_.half_open_successes)
      transition_locked(BreakerState::kClosed, "probe(s) succeeded");
  }
}

void CircuitBreaker::on_failure(core::StatusCode status) {
  MutexLock lock(mu_);
  // Interruptions (the caller's budget ran out) and invalid input (the
  // client's fault) say nothing about the kernel's health — the HTTP-breaker
  // rule of counting 5xx but never 4xx. They still terminate an allowed
  // attempt, though: a half-open probe that ends this way must release the
  // probe slot, or probe_in_flight_ stays set and every later allow()
  // short-circuits forever. The breaker stays half-open and the next allow()
  // claims a fresh probe.
  if (core::is_interruption(status) ||
      status == core::StatusCode::kInvalidInput) {
    if (state_ == BreakerState::kHalfOpen) probe_in_flight_ = false;
    return;
  }
  if (state_ == BreakerState::kHalfOpen) {
    probe_in_flight_ = false;
    opened_tick_ = tick_;
    ++opens_;
    transition_locked(BreakerState::kOpen,
                      std::string("probe failed (") +
                          core::status_name(status) + ")");
    return;
  }
  if (state_ == BreakerState::kClosed) {
    ++consecutive_failures_;
    if (consecutive_failures_ >= config_.failure_threshold) {
      opened_tick_ = tick_;
      ++opens_;
      transition_locked(
          BreakerState::kOpen,
          std::to_string(consecutive_failures_) +
              " consecutive failures (last: " + core::status_name(status) +
              ")");
    }
  }
}

BreakerState CircuitBreaker::state() const {
  MutexLock lock(mu_);
  return state_;
}

std::uint64_t CircuitBreaker::ticks() const {
  MutexLock lock(mu_);
  return tick_;
}

std::uint64_t CircuitBreaker::short_circuits() const {
  MutexLock lock(mu_);
  return short_circuits_;
}

std::uint64_t CircuitBreaker::opens() const {
  MutexLock lock(mu_);
  return opens_;
}

std::vector<BreakerTransition> CircuitBreaker::transitions() const {
  MutexLock lock(mu_);
  return transitions_;
}

void CircuitBreaker::record_into(core::SolverDiag& diag) const {
  MutexLock lock(mu_);
  for (const auto& t : transitions_) {
    diag.record("service/breaker[" + kernel_ + "]",
                t.to == BreakerState::kOpen ? core::StatusCode::kBreakerOpen
                                            : core::StatusCode::kOk,
                static_cast<int>(t.tick), 0.0,
                std::string(breaker_state_name(t.from)) + " -> " +
                    breaker_state_name(t.to) + ": " + t.reason);
  }
}

}  // namespace dsmt::service
