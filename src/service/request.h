// Request/response schema of the batch request service.
//
// A request names one design-rule query against the Eq. 13 self-consistent
// solver: a direct-geometry solve (kSelfConsistent), the same solve plus the
// EM-only reference line of Fig. 2 (kDutyCyclePoint), or a design-rule table
// cell addressed by technology/level/gap-fill (kTableCell). Requests and
// responses cross the process boundary as JSON (report/json.h); the codec
// here is strict — unknown kinds, malformed fields, and non-finite numbers
// raise dsmt::SolveError (kInvalidInput) instead of guessing.
//
// Every response is terminal and structured: success (possibly degraded,
// with `degradation_level` and a conservative-direction guarantee on j_rms),
// kRejectedOverload from admission control, or a classified failure. The
// full SolverDiag chain (attempts, retries, breaker events, degradation
// rungs) rides along for diagnostics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "report/json.h"
#include "selfconsistent/solver.h"

namespace dsmt::service {

enum class RequestKind { kSelfConsistent = 0, kDutyCyclePoint, kTableCell };

/// Short stable name ("self-consistent", "duty-cycle-point", "table-cell").
const char* kind_name(RequestKind kind);

/// Direct wire geometry for kSelfConsistent / kDutyCyclePoint requests: an
/// isolated line over a uniform dielectric (paper Eq. 10/15 with a single
/// slab).
struct WireSpec {
  std::string metal = "cu";     ///< metal_by_name key ("cu", "alcu", ...)
  double width_um = 1.0;        ///< line width W_m [um]
  double thickness_um = 1.0;    ///< metal thickness t_m [um]
  double dielectric_um = 1.0;   ///< underlying dielectric thickness b [um]
  double k_dielectric = 1.15;   ///< dielectric conductivity [W/(m*K)]
};

struct Request {
  std::string id;  ///< caller correlation id, echoed in the response
  RequestKind kind = RequestKind::kSelfConsistent;
  double duty_cycle = 0.1;  ///< r [1]
  double j0_MA_cm2 = 0.6;   ///< design-rule j_avg at t_ref [MA/cm^2]
  double t_ref_c = 100.0;   ///< reference junction temperature [degC]
  WireSpec wire;            ///< direct-geometry kinds
  std::string technology;   ///< kTableCell: technology name ("NTRS-250nm-Cu")
  int level = 1;            ///< kTableCell: 1-based metal level
  std::string dielectric = "oxide";  ///< kTableCell: gap-fill name
};

/// Degradation ladder rungs, most faithful first. The response field
/// `degradation_level` carries the integer value.
///   0 full       quasi-2D self-consistent solve (phi = 2.45)
///   1 interp     conservative lookup from the reference cache
///   2 analytic   iteration-free quasi-1D bound (phi = 0.88)
enum class DegradationLevel {
  kFull = 0,
  kInterpolated = 1,
  kAnalyticBound = 2,
};

struct Response {
  std::string id;
  RequestKind kind = RequestKind::kSelfConsistent;
  core::StatusCode status = core::StatusCode::kOk;
  bool degraded = false;
  DegradationLevel degradation_level = DegradationLevel::kFull;
  /// True when the payload carries the degraded-rung guarantee: j_rms (and
  /// j_peak/j_avg derived from it) never exceed the full solve's values and
  /// the operating point is feasible (docs/THEORY.md §15).
  bool conservative = false;

  // Solution payload, valid when status == kOk.
  double t_metal_c = 0.0;        ///< metal temperature [degC]
  double delta_t_c = 0.0;        ///< T_m - T_ref [degC]
  double j_peak_MA_cm2 = 0.0;    ///< allowed peak density [MA/cm^2]
  double j_rms_MA_cm2 = 0.0;     ///< allowed RMS density [MA/cm^2]
  double j_avg_MA_cm2 = 0.0;     ///< allowed average density [MA/cm^2]
  double jpeak_em_only_MA_cm2 = 0.0;  ///< kDutyCyclePoint: j0 / r [MA/cm^2]

  int attempts = 0;  ///< full-solve attempts (0 = breaker short-circuited)
  std::vector<std::uint64_t> backoff_ns;  ///< retry schedule applied [ns]
  core::SolverDiag diag;  ///< attempts, retries, breaker, degradation
  std::string error;      ///< summary when status != kOk

  bool ok() const { return status == core::StatusCode::kOk; }
};

/// Decodes one request object. Unknown/malformed fields raise
/// dsmt::SolveError (kInvalidInput); absent optional fields keep defaults.
Request request_from_json(const report::Json& node);

report::Json request_to_json(const Request& request);
report::Json response_to_json(const Response& response);

/// Parses a batch document: a bare array of request objects, or an object
/// carrying a "requests" array. Throws dsmt::SolveError (kInvalidInput).
std::vector<Request> parse_batch(const std::string& text);

/// The ladder's working set for one request: the quasi-2D problem the full
/// rung solves, the quasi-1D problem the analytic rung bounds, and the
/// family key (everything but duty cycle, canonically formatted) that
/// addresses the rung-1 reference cache.
struct LadderProblem {
  selfconsistent::Problem full;
  selfconsistent::Problem quasi1d;
  std::string family;
};

/// Builds the ladder problems for a request. Throws std::invalid_argument,
/// std::out_of_range (unknown metal/technology/dielectric names), or
/// dsmt::SolveError (kInvalidInput) on malformed specs.
LadderProblem build_problem(const Request& request);

}  // namespace dsmt::service
