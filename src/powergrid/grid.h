// DC power-distribution grid solver.
//
// The paper's Tables 2-4 include a "power lines (r = 1.0)" section: power
// straps carry unipolar, effectively-DC current, so they hit the
// self-consistent limit at its most restrictive point (j_peak = j_avg =
// j_rms, capped just below j_o). This module provides the system-level
// substrate that consumes those limits: a two-layer orthogonal strap grid
// with vdd pads and block current demands, solved for IR drop and
// per-segment current densities which are then checked against the
// power-line design rule and the chip-level EM budget.
//
// Electrical model: one node per grid point (via stacks short the two
// routing layers; their resistance is folded into the strap segments),
// horizontal segments on `layer_h`, vertical on `layer_v`, pads as ideal
// vdd sources, demands as ideal current sinks. The conductance system is
// SPD after pad elimination and is solved with preconditioned CG.
#pragma once

#include <cstddef>
#include <vector>

#include "core/status.h"
#include "core/units.h"
#include "tech/technology.h"

namespace dsmt::powergrid {

/// Grid geometry and electrical context.
struct GridSpec {
  tech::Technology technology;
  int nx = 10;               ///< nodes in x
  int ny = 10;               ///< nodes in y
  double pitch = 100e-6;     ///< node spacing (strap pitch) [m]
  int layer_h = 5;           ///< layer of x-direction straps
  int layer_v = 6;           ///< layer of y-direction straps
  double width_h = 0.0;      ///< strap width, 0 = layer default
  double width_v = 0.0;
  double via_resistance = 0.05;  ///< per segment, folds the via stack [Ohm]
  double vdd = 2.5;
  double temperature = kTrefK;   ///< strap temperature for rho(T) [K]
};

/// A vdd pad (ideal source) at a grid node.
struct Pad {
  int ix = 0, iy = 0;
};

/// A block current demand (sink) at a grid node.
struct Demand {
  int ix = 0, iy = 0;
  double amps = 0.0;
};

/// One strap segment's loading after the solve.
struct SegmentLoad {
  bool horizontal = false;
  int ix = 0, iy = 0;        ///< segment from (ix,iy) toward +x or +y
  double current = 0.0;      ///< [A], absolute value
  double j_density = 0.0;    ///< current / (W*t) [A/m^2]
  double voltage_drop = 0.0; ///< across the segment [V]
};

/// Solution of one grid.
struct GridSolution {
  std::vector<double> node_voltage;  ///< nx*ny, row-major (iy*nx+ix)
  double worst_ir_drop = 0.0;        ///< vdd - min(node voltage)
  std::vector<SegmentLoad> segments;
  double max_j_horizontal = 0.0;     ///< worst density on layer_h [A/m^2]
  double max_j_vertical = 0.0;       ///< worst density on layer_v [A/m^2]
  int cg_iterations = 0;
  bool converged = false;
  core::SolverDiag diag;  ///< linear-solve history incl. recovery stages

  double voltage(int ix, int iy, int nx) const {
    return node_voltage[static_cast<std::size_t>(iy) * nx + ix];
  }
};

/// Solves the grid. Throws std::invalid_argument on malformed specs (no
/// pads, out-of-range indices, non-positive demand totals are allowed).
GridSolution solve(const GridSpec& spec, const std::vector<Pad>& pads,
                   const std::vector<Demand>& demands);

/// Uniformly distributed demand helper: total current spread over every
/// interior node.
/// total_amps [A].
std::vector<Demand> uniform_demand(const GridSpec& spec, double total_amps);

}  // namespace dsmt::powergrid
