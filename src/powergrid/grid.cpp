#include "powergrid/grid.h"

#include <cmath>
#include <stdexcept>

#include "numeric/sparse.h"

namespace dsmt::powergrid {

namespace {

struct SegmentConductance {
  double g_h = 0.0;  ///< conductance of one horizontal segment [S]
  double g_v = 0.0;
  double area_h = 0.0;  ///< strap cross-section [m^2]
  double area_v = 0.0;
};

SegmentConductance segment_conductances(const GridSpec& spec) {
  const auto& lh = spec.technology.layer(spec.layer_h);
  const auto& lv = spec.technology.layer(spec.layer_v);
  const double wh = spec.width_h > 0.0 ? spec.width_h : lh.width;
  const double wv = spec.width_v > 0.0 ? spec.width_v : lv.width;
  SegmentConductance sc;
  sc.area_h = wh * lh.thickness;
  sc.area_v = wv * lv.thickness;
  const double rho = spec.technology.metal.resistivity(spec.temperature);
  const double r_h = rho * spec.pitch / sc.area_h + spec.via_resistance;
  const double r_v = rho * spec.pitch / sc.area_v + spec.via_resistance;
  sc.g_h = 1.0 / r_h;
  sc.g_v = 1.0 / r_v;
  return sc;
}

void validate(const GridSpec& spec, const std::vector<Pad>& pads,
              const std::vector<Demand>& demands) {
  if (spec.nx < 2 || spec.ny < 2)
    throw std::invalid_argument("GridSpec: need at least a 2x2 grid");
  if (spec.pitch <= 0.0) throw std::invalid_argument("GridSpec: pitch <= 0");
  if (pads.empty()) throw std::invalid_argument("powergrid: no pads");
  auto in_range = [&](int ix, int iy) {
    return ix >= 0 && ix < spec.nx && iy >= 0 && iy < spec.ny;
  };
  for (const auto& p : pads)
    if (!in_range(p.ix, p.iy))
      throw std::invalid_argument("powergrid: pad out of range");
  for (const auto& d : demands)
    if (!in_range(d.ix, d.iy))
      throw std::invalid_argument("powergrid: demand out of range");
}

}  // namespace

GridSolution solve(const GridSpec& spec, const std::vector<Pad>& pads,
                   const std::vector<Demand>& demands) {
  validate(spec, pads, demands);
  const int nx = spec.nx, ny = spec.ny;
  const std::size_t n = static_cast<std::size_t>(nx) * ny;
  auto node = [nx](int ix, int iy) {
    return static_cast<std::size_t>(iy) * nx + ix;
  };

  // Pad mask.
  std::vector<bool> is_pad(n, false);
  for (const auto& p : pads) is_pad[node(p.ix, p.iy)] = true;

  // Unknown numbering over non-pad nodes.
  std::vector<int> unk(n, -1);
  std::size_t n_unk = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (!is_pad[i]) unk[i] = static_cast<int>(n_unk++);

  const auto sc = segment_conductances(spec);

  numeric::SparseBuilder builder(n_unk);
  std::vector<double> rhs(n_unk, 0.0);

  auto couple = [&](std::size_t a, std::size_t b, double g) {
    // Conductance g between nodes a and b, pads held at vdd.
    if (unk[a] >= 0) {
      builder.add(unk[a], unk[a], g);
      if (unk[b] >= 0)
        builder.add(unk[a], unk[b], -g);
      else
        rhs[unk[a]] += g * spec.vdd;
    }
    if (unk[b] >= 0) {
      builder.add(unk[b], unk[b], g);
      if (unk[a] >= 0)
        builder.add(unk[b], unk[a], -g);
      else
        rhs[unk[b]] += g * spec.vdd;
    }
  };

  for (int iy = 0; iy < ny; ++iy)
    for (int ix = 0; ix < nx; ++ix) {
      if (ix + 1 < nx) couple(node(ix, iy), node(ix + 1, iy), sc.g_h);
      if (iy + 1 < ny) couple(node(ix, iy), node(ix, iy + 1), sc.g_v);
    }
  for (const auto& d : demands) {
    const std::size_t c = node(d.ix, d.iy);
    if (unk[c] >= 0) rhs[unk[c]] -= d.amps;  // sink pulls current out
  }

  const numeric::CsrMatrix a(builder);
  std::vector<double> x(n_unk, spec.vdd);
  GridSolution sol;
  sol.diag.kernel = "powergrid/grid";
  const auto cg =
      numeric::conjugate_gradient_robust(a, rhs, x, {1e-12, 50000}, sol.diag);

  sol.cg_iterations = cg.iterations;
  sol.converged = cg.ok();
  sol.node_voltage.assign(n, spec.vdd);
  for (std::size_t i = 0; i < n; ++i)
    if (unk[i] >= 0) sol.node_voltage[i] = x[unk[i]];

  double vmin = spec.vdd;
  for (double v : sol.node_voltage) vmin = std::min(vmin, v);
  sol.worst_ir_drop = spec.vdd - vmin;

  // Per-segment loading.
  for (int iy = 0; iy < ny; ++iy)
    for (int ix = 0; ix < nx; ++ix) {
      if (ix + 1 < nx) {
        const double dv = sol.node_voltage[node(ix, iy)] -
                          sol.node_voltage[node(ix + 1, iy)];
        SegmentLoad s;
        s.horizontal = true;
        s.ix = ix;
        s.iy = iy;
        s.voltage_drop = std::abs(dv);
        s.current = std::abs(dv) * sc.g_h;
        s.j_density = s.current / sc.area_h;
        sol.max_j_horizontal = std::max(sol.max_j_horizontal, s.j_density);
        sol.segments.push_back(s);
      }
      if (iy + 1 < ny) {
        const double dv = sol.node_voltage[node(ix, iy)] -
                          sol.node_voltage[node(ix, iy + 1)];
        SegmentLoad s;
        s.horizontal = false;
        s.ix = ix;
        s.iy = iy;
        s.voltage_drop = std::abs(dv);
        s.current = std::abs(dv) * sc.g_v;
        s.j_density = s.current / sc.area_v;
        sol.max_j_vertical = std::max(sol.max_j_vertical, s.j_density);
        sol.segments.push_back(s);
      }
    }
  return sol;
}

std::vector<Demand> uniform_demand(const GridSpec& spec, double total_amps) {
  if (spec.nx < 3 || spec.ny < 3)
    throw std::invalid_argument("uniform_demand: grid too small");
  std::vector<Demand> demands;
  const int interior = (spec.nx - 2) * (spec.ny - 2);
  const double per_node = total_amps / interior;
  for (int iy = 1; iy + 1 < spec.ny; ++iy)
    for (int ix = 1; ix + 1 < spec.nx; ++ix)
      demands.push_back({ix, iy, per_node});
  return demands;
}

}  // namespace dsmt::powergrid
