#include "circuit/transient.h"

#include <cmath>
#include <stdexcept>

#include "core/run_context.h"
#include "core/status.h"
#include "numeric/dense.h"
#include "numeric/fault_injection.h"

namespace dsmt::circuit {

TransientResult::TransientResult(int nodes, int sources)
    : nodes_(nodes), sources_(sources) {}

void TransientResult::append(double t, const std::vector<double>& x) {
  time_.push_back(t);
  x_.push_back(x);
}

std::vector<double> TransientResult::voltage(NodeId node) const {
  std::vector<double> v(time_.size(), 0.0);
  if (node == kGround) return v;
  const int idx = node - 1;
  if (idx < 0 || idx >= nodes_ - 1)
    throw std::out_of_range("TransientResult::voltage: bad node");
  for (std::size_t i = 0; i < time_.size(); ++i) v[i] = x_[i][idx];
  return v;
}

std::vector<double> TransientResult::source_current(int idx) const {
  if (idx < 0 || idx >= sources_)
    throw std::out_of_range("TransientResult::source_current: bad index");
  std::vector<double> c(time_.size(), 0.0);
  const int off = nodes_ - 1 + idx;
  for (std::size_t i = 0; i < time_.size(); ++i) c[i] = x_[i][off];
  return c;
}

namespace {

class Assembler {
 public:
  Assembler(const Netlist& nl)
      : nl_(nl),
        n_nodes_(nl.node_count() - 1),
        n_src_(static_cast<int>(nl.vsources().size())),
        n_(n_nodes_ + n_src_),
        a_(static_cast<std::size_t>(n_), static_cast<std::size_t>(n_)),
        rhs_(static_cast<std::size_t>(n_), 0.0) {}

  int size() const { return n_; }
  int node_unknowns() const { return n_nodes_; }

  /// Conductance used for inductors at the DC operating point (short).
  static constexpr double kInductorDcG = 1e6;

  /// Assembles the Newton system at time `t`, linearized about `x`.
  /// `cap_geq` of 0 removes capacitors (DC, inductors shorted); otherwise
  /// trapezoidal companions use `cap_state`/`ind_state` = {v_prev, i_prev}.
  void assemble(double t, const std::vector<double>& x, double cap_geq_scale,
                double dt, const std::vector<std::pair<double, double>>& cap_state,
                const std::vector<std::pair<double, double>>& ind_state) {
    a_.fill(0.0);
    std::fill(rhs_.begin(), rhs_.end(), 0.0);

    // gmin to ground on every node keeps floating nodes solvable.
    for (int i = 0; i < n_nodes_; ++i) a_(i, i) += 1e-12;

    for (const auto& r : nl_.resistors()) stamp_conductance(r.a, r.b, r.g);

    if (cap_geq_scale > 0.0) {
      // cap_geq_scale = 2 selects the trapezoidal companion; 1 selects
      // backward Euler (used for the first step, where the initial
      // capacitor current is unknown).
      const auto& caps = nl_.capacitors();
      for (std::size_t k = 0; k < caps.size(); ++k) {
        const double geq = cap_geq_scale * caps[k].c / dt;
        const auto [v_prev, i_prev] = cap_state[k];
        const double ieq =
            geq * v_prev + (cap_geq_scale > 1.5 ? i_prev : 0.0);
        stamp_conductance(caps[k].a, caps[k].b, geq);
        stamp_current(caps[k].a, caps[k].b, -ieq);  // ieq flows a <- b
      }
      // Inductor trapezoidal companion:
      //   i_{n+1} = i_n + (dt/2L)(v_{n+1} + v_n) = geq v_{n+1} + ieq.
      const auto& inds = nl_.inductors();
      for (std::size_t k = 0; k < inds.size(); ++k) {
        const double geq = dt / (2.0 * inds[k].l);
        const auto [v_prev, i_prev] = ind_state[k];
        const double ieq = i_prev + geq * v_prev;
        stamp_conductance(inds[k].a, inds[k].b, geq);
        stamp_current(inds[k].a, inds[k].b, ieq);
      }
    } else {
      // DC: inductors are shorts.
      for (const auto& ind : nl_.inductors())
        stamp_conductance(ind.a, ind.b, kInductorDcG);
    }

    for (const auto& isrc : nl_.isources()) {
      // i(t) flows from -> to through the source: inject at `to`.
      const double i = isrc.i(t);
      if (isrc.to != kGround) rhs_[idx(isrc.to)] += i;
      if (isrc.from != kGround) rhs_[idx(isrc.from)] -= i;
    }

    const auto& sources = nl_.vsources();
    for (int k = 0; k < n_src_; ++k) {
      const int row = n_nodes_ + k;
      const NodeId p = sources[k].pos, q = sources[k].neg;
      if (p != kGround) {
        a_(idx(p), row) += 1.0;
        a_(row, idx(p)) += 1.0;
      }
      if (q != kGround) {
        a_(idx(q), row) -= 1.0;
        a_(row, idx(q)) -= 1.0;
      }
      rhs_[row] = sources[k].v(t);
    }

    for (const auto& m : nl_.mosfets()) {
      const double vd = volt(x, m.d), vg = volt(x, m.g), vs = volt(x, m.s);
      const auto op = mosfet_evaluate(m.p, vd, vg, vs);
      // Linearized drain current: id = ieq + gds vd + gm vg + gms vs.
      const double ieq = op.id - op.gds * vd - op.gm * vg - op.gms * vs;
      stamp_trans(m.d, m.d, op.gds);
      stamp_trans(m.d, m.g, op.gm);
      stamp_trans(m.d, m.s, op.gms);
      stamp_trans(m.s, m.d, -op.gds);
      stamp_trans(m.s, m.g, -op.gm);
      stamp_trans(m.s, m.s, -op.gms);
      if (m.d != kGround) rhs_[idx(m.d)] -= ieq;
      if (m.s != kGround) rhs_[idx(m.s)] += ieq;
    }
  }

  std::vector<double> solve() const { return numeric::solve_dense(a_, rhs_); }

  double volt(const std::vector<double>& x, NodeId n) const {
    return n == kGround ? 0.0 : x[idx(n)];
  }

 private:
  int idx(NodeId n) const { return n - 1; }

  void stamp_conductance(NodeId na, NodeId nb, double g) {
    if (na != kGround) a_(idx(na), idx(na)) += g;
    if (nb != kGround) a_(idx(nb), idx(nb)) += g;
    if (na != kGround && nb != kGround) {
      a_(idx(na), idx(nb)) -= g;
      a_(idx(nb), idx(na)) -= g;
    }
  }

  /// Current `i` flowing from node a to node b through the element.
  void stamp_current(NodeId na, NodeId nb, double i) {
    if (na != kGround) rhs_[idx(na)] -= i;
    if (nb != kGround) rhs_[idx(nb)] += i;
  }

  void stamp_trans(NodeId row, NodeId col, double g) {
    if (row != kGround && col != kGround) a_(idx(row), idx(col)) += g;
  }

  const Netlist& nl_;
  int n_nodes_, n_src_, n_;
  numeric::Matrix a_;
  std::vector<double> rhs_;
};

/// Newton iteration at a fixed time point. Returns the converged unknowns.
std::vector<double> newton_solve(
    Assembler& asmbl, double t, std::vector<double> x, double cap_scale,
    double dt, const std::vector<std::pair<double, double>>& cap_state,
    const std::vector<std::pair<double, double>>& ind_state,
    const TransientOptions& opts) {
  double dmax = 0.0;
  int used = 0;
  core::StatusCode stop = core::StatusCode::kMaxIterations;
  const int max_it =
      numeric::fault::clamp_iterations("circuit/transient", opts.max_newton);
  for (int it = 0; it < max_it; ++it) {
    if (const auto rc = core::run_check(); rc != core::StatusCode::kOk) {
      stop = rc;
      break;
    }
    used = it + 1;
    asmbl.assemble(t, x, cap_scale, dt, cap_state, ind_state);
    std::vector<double> x_new = asmbl.solve();
    // SPICE-style per-node voltage-step limiting keeps the power-law
    // devices from bouncing between operating regions.
    const double v_limit = 0.5;
    dmax = 0.0;
    for (int i = 0; i < asmbl.node_unknowns(); ++i) {
      double d = x_new[i] - x[i];
      if (d > v_limit) d = v_limit;
      if (d < -v_limit) d = -v_limit;
      x_new[i] = x[i] + d;
      dmax = std::max(dmax, std::abs(d));
    }
    dmax = numeric::fault::filter_residual("circuit/transient", used, dmax);
    if (!std::isfinite(dmax)) {
      stop = core::StatusCode::kNonFinite;
      break;
    }
    const bool converged = dmax <= opts.v_abs_tol;
    x = std::move(x_new);
    if (converged && it > 0) return x;
  }
  core::SolverDiag diag;
  diag.record("circuit/transient", stop, used, dmax,
              "Newton at t = " + std::to_string(t));
  if (core::is_interruption(stop))
    throw SolveError("run_transient: run interrupted at t = " +
                         std::to_string(t) + " (" +
                         core::status_name(stop) + ")",
                     diag);
  throw SolveError("run_transient: Newton did not converge at t = " +
                       std::to_string(t) + " (dmax = " + std::to_string(dmax) +
                       ")",
                   diag);
}

}  // namespace

TransientResult run_transient(const Netlist& netlist,
                              const TransientOptions& opts) {
  if (opts.dt <= 0.0 || opts.t_stop <= 0.0)
    throw std::invalid_argument("run_transient: bad time options");

  Assembler asmbl(netlist);
  TransientResult result(netlist.node_count(),
                         static_cast<int>(netlist.vsources().size()));

  const auto& caps = netlist.capacitors();
  const auto& inds = netlist.inductors();
  std::vector<std::pair<double, double>> cap_state(caps.size(), {0.0, 0.0});
  std::vector<std::pair<double, double>> ind_state(inds.size(), {0.0, 0.0});

  // DC operating point at t = 0 (capacitors open, inductors shorted).
  std::vector<double> x(asmbl.size(), 0.0);
  x = newton_solve(asmbl, 0.0, std::move(x), /*cap_scale=*/0.0, opts.dt,
                   cap_state, ind_state, opts);

  // Initialize capacitor voltages to the DC solution, zero current; the
  // inductors carry the DC current of their short-circuit stand-ins.
  for (std::size_t k = 0; k < caps.size(); ++k) {
    const double v =
        asmbl.volt(x, caps[k].a) - asmbl.volt(x, caps[k].b);
    cap_state[k] = {v, 0.0};
  }
  for (std::size_t k = 0; k < inds.size(); ++k) {
    const double v = asmbl.volt(x, inds[k].a) - asmbl.volt(x, inds[k].b);
    ind_state[k] = {0.0, Assembler::kInductorDcG * v};
  }
  result.append(0.0, x);

  // Round-to-nearest avoids a spurious extra step when t_stop/dt is an
  // integer up to floating-point noise (the extra step would shift every
  // measurement window by dt).
  const int steps = std::max(
      1, static_cast<int>(std::llround(opts.t_stop / opts.dt)));
  for (int s = 1; s <= steps; ++s) {
    const double t = s * opts.dt;
    // Trapezoidal companions throughout; the DC start guarantees zero
    // initial capacitor current, which the state vector already encodes.
    const double cap_scale = 2.0;
    x = newton_solve(asmbl, t, std::move(x), cap_scale, opts.dt, cap_state,
                     ind_state, opts);
    // Update capacitor companion states.
    for (std::size_t k = 0; k < caps.size(); ++k) {
      const double v = asmbl.volt(x, caps[k].a) - asmbl.volt(x, caps[k].b);
      const auto [v_prev, i_prev] = cap_state[k];
      const double i = (cap_scale * caps[k].c / opts.dt) * (v - v_prev) -
                       (cap_scale > 1.5 ? i_prev : 0.0);
      cap_state[k] = {v, i};
    }
    // Update inductor companion states (trapezoidal).
    for (std::size_t k = 0; k < inds.size(); ++k) {
      const double v = asmbl.volt(x, inds[k].a) - asmbl.volt(x, inds[k].b);
      const auto [v_prev, i_prev] = ind_state[k];
      const double i = i_prev + (opts.dt / (2.0 * inds[k].l)) * (v + v_prev);
      ind_state[k] = {v, i};
    }
    result.append(t, x);
  }
  return result;
}

}  // namespace dsmt::circuit
