// Circuit netlist for the MNA transient engine — the in-house SPICE
// substitute used to reproduce the paper's Tables 5-6 and Fig. 7.
//
// Supported elements: resistors, capacitors, independent voltage sources
// (arbitrary v(t), including 0 V ammeters), and alpha-power-law MOSFETs
// (Sakurai-Newton model — the standard compact model for the DSM
// velocity-saturated devices of the paper's era).
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace dsmt::circuit {

/// Node handle; kGround (= 0) is the reference node.
using NodeId = int;
inline constexpr NodeId kGround = 0;

/// Time-dependent source value.
using TimeFunction = std::function<double(double)>;

enum class MosType { kNmos, kPmos };

/// Alpha-power-law MOSFET instance parameters (Sakurai-Newton).
/// Currents/conductances scale linearly with `size` (the repeater sizing
/// factor s of paper Eq. 17).
struct MosfetParams {
  MosType type = MosType::kNmos;
  double vt = 0.5;       ///< threshold magnitude [V]
  double vdd = 2.5;      ///< nominal supply (normalizes the power law) [V]
  double idsat = 3e-4;   ///< drain saturation current at Vgs = Vdd, size 1 [A]
  double alpha = 1.3;    ///< velocity-saturation exponent
  double vdsat0 = 1.0;   ///< saturation voltage at Vgs = Vdd [V]
  double lambda = 0.02;  ///< channel-length modulation [1/V]
  double size = 1.0;     ///< width multiplier
};

class Netlist {
 public:
  /// Creates/returns a named node. "0" and "gnd" map to ground.
  NodeId node(const std::string& name);
  /// Creates an anonymous internal node.
  NodeId internal_node();

  int node_count() const { return next_node_; }  ///< includes ground

  /// Units: ohms [Ohm], farads [F], henries [H].
  void add_resistor(NodeId a, NodeId b, double ohms);
  void add_capacitor(NodeId a, NodeId b, double farads);
  /// Inductor between a and b (trapezoidal companion in the engine).
  /// Fast global wires at GHz clocks are RLC, not just RC.
  void add_inductor(NodeId a, NodeId b, double henries);
  /// Voltage source v(t) from `pos` to `neg`; returns the source index whose
  /// branch current (flowing pos -> neg through the source, i.e. out of the
  /// positive terminal into the circuit is -i) can be probed after a run.
  int add_vsource(NodeId pos, NodeId neg, TimeFunction v);
  /// 0 V source used as an ammeter; current flows a -> b through it.
  int add_ammeter(NodeId a, NodeId b);
  /// Independent current source: i(t) flows from `from` to `to` through
  /// the external circuit (i.e. injected into `to`). Used for ESD zaps.
  void add_isource(NodeId from, NodeId to, TimeFunction i);
  void add_mosfet(const MosfetParams& params, NodeId drain, NodeId gate,
                  NodeId source);

  /// Convenience: CMOS inverter between vdd/gnd rails with shared sizing.
  /// PMOS is widened by `p_over_n` (folded into the PMOS idsat externally if
  /// the caller tracks asymmetric devices; here size scales both).
  void add_inverter(const MosfetParams& nmos, const MosfetParams& pmos,
                    NodeId in, NodeId out, NodeId vdd_node, NodeId gnd_node);

  // Element access for the engine.
  struct Resistor {
    NodeId a, b;
    double g;  ///< conductance
  };
  struct Capacitor {
    NodeId a, b;
    double c;
  };
  struct Inductor {
    NodeId a, b;
    double l;
  };
  struct VSource {
    NodeId pos, neg;
    TimeFunction v;
  };
  struct Mosfet {
    MosfetParams p;
    NodeId d, g, s;
  };
  struct ISource {
    NodeId from, to;
    TimeFunction i;
  };

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Inductor>& inductors() const { return inductors_; }
  const std::vector<VSource>& vsources() const { return vsources_; }
  const std::vector<Mosfet>& mosfets() const { return mosfets_; }
  const std::vector<ISource>& isources() const { return isources_; }

 private:
  int next_node_ = 1;  // 0 is ground
  std::unordered_map<std::string, NodeId> names_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Inductor> inductors_;
  std::vector<VSource> vsources_;
  std::vector<Mosfet> mosfets_;
  std::vector<ISource> isources_;
};

/// Drain current of the alpha-power-law device and its small-signal
/// derivatives; exposed for unit tests.
struct MosOperatingPoint {
  double id = 0.0;   ///< current into the drain terminal [A]
  double gm = 0.0;   ///< dId/dVg
  double gds = 0.0;  ///< dId/dVd
  double gms = 0.0;  ///< dId/dVs
};
MosOperatingPoint mosfet_evaluate(const MosfetParams& p, double vd, double vg,
                                  double vs);

}  // namespace dsmt::circuit
