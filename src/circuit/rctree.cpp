#include "circuit/rctree.h"

#include <algorithm>
#include <stdexcept>

#include "circuit/rcline.h"

namespace dsmt::circuit {

RcTree::RcTree(double driver_resistance) : r_driver_(driver_resistance) {
  if (driver_resistance < 0.0)
    throw std::invalid_argument("RcTree: negative driver resistance");
  nodes_.push_back({});  // root
}

std::size_t RcTree::add_segment(std::size_t parent, double r_per_m,
                                double c_per_m, double length) {
  if (parent >= nodes_.size())
    throw std::out_of_range("RcTree::add_segment: bad parent");
  if (r_per_m < 0.0 || c_per_m < 0.0 || length <= 0.0)
    throw std::invalid_argument("RcTree::add_segment: bad parasitics");
  Node n;
  n.parent = parent;
  n.r_per_m = r_per_m;
  n.c_per_m = c_per_m;
  n.length = length;
  n.r = r_per_m * length;
  n.c_wire = c_per_m * length;
  nodes_.push_back(n);
  return nodes_.size() - 1;
}

void RcTree::add_load(std::size_t node, double farads) {
  if (node >= nodes_.size())
    throw std::out_of_range("RcTree::add_load: bad node");
  if (farads < 0.0) throw std::invalid_argument("RcTree::add_load: C < 0");
  nodes_[node].c_load += farads;
}

std::vector<double> RcTree::downstream_capacitance() const {
  // Children have larger indices than parents (construction order), so one
  // reverse pass accumulates subtree capacitance.
  std::vector<double> cap(nodes_.size(), 0.0);
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    cap[i] += nodes_[i].c_wire + nodes_[i].c_load;
    if (i > 0) cap[nodes_[i].parent] += cap[i];
  }
  return cap;
}

std::vector<double> RcTree::elmore_delays() const {
  const auto cap = downstream_capacitance();
  std::vector<double> delay(nodes_.size(), 0.0);
  // Root: driver resistance sees everything.
  delay[0] = r_driver_ * cap[0];
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    // Distributed segment: its own wire capacitance counts at half weight
    // through its own resistance.
    delay[i] = delay[nodes_[i].parent] +
               nodes_[i].r * (cap[i] - 0.5 * nodes_[i].c_wire);
  }
  return delay;
}

double RcTree::critical_delay() const {
  const auto d = elmore_delays();
  return *std::max_element(d.begin(), d.end());
}

std::vector<NodeId> RcTree::emit_netlist(Netlist& nl, NodeId in,
                                         int sections_per_segment) const {
  std::vector<NodeId> ids(nodes_.size());
  ids[0] = nl.internal_node();
  if (r_driver_ > 0.0)
    nl.add_resistor(in, ids[0], r_driver_);
  else
    nl.add_resistor(in, ids[0], 1e-3);
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    ids[i] = nl.internal_node();
    add_rc_line(nl, ids[nodes_[i].parent], ids[i], nodes_[i].r_per_m,
                nodes_[i].c_per_m, nodes_[i].length, sections_per_segment);
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    nl.add_capacitor(ids[i], kGround, nodes_[i].c_load);
  return ids;
}

}  // namespace dsmt::circuit
