#include "circuit/netlist.h"

#include <cmath>
#include <stdexcept>

namespace dsmt::circuit {

NodeId Netlist::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  auto [it, inserted] = names_.try_emplace(name, next_node_);
  if (inserted) ++next_node_;
  return it->second;
}

NodeId Netlist::internal_node() { return next_node_++; }

void Netlist::add_resistor(NodeId a, NodeId b, double ohms) {
  if (ohms <= 0.0) throw std::invalid_argument("add_resistor: R <= 0");
  resistors_.push_back({a, b, 1.0 / ohms});
}

void Netlist::add_capacitor(NodeId a, NodeId b, double farads) {
  if (farads < 0.0) throw std::invalid_argument("add_capacitor: C < 0");
  if (farads > 0.0) capacitors_.push_back({a, b, farads});
}

void Netlist::add_inductor(NodeId a, NodeId b, double henries) {
  if (henries <= 0.0) throw std::invalid_argument("add_inductor: L <= 0");
  inductors_.push_back({a, b, henries});
}

int Netlist::add_vsource(NodeId pos, NodeId neg, TimeFunction v) {
  vsources_.push_back({pos, neg, std::move(v)});
  return static_cast<int>(vsources_.size()) - 1;
}

int Netlist::add_ammeter(NodeId a, NodeId b) {
  return add_vsource(a, b, [](double) { return 0.0; });
}

void Netlist::add_isource(NodeId from, NodeId to, TimeFunction i) {
  isources_.push_back({from, to, std::move(i)});
}

void Netlist::add_mosfet(const MosfetParams& params, NodeId drain, NodeId gate,
                         NodeId source) {
  mosfets_.push_back({params, drain, gate, source});
}

void Netlist::add_inverter(const MosfetParams& nmos, const MosfetParams& pmos,
                           NodeId in, NodeId out, NodeId vdd_node,
                           NodeId gnd_node) {
  add_mosfet(nmos, out, in, gnd_node);
  add_mosfet(pmos, out, in, vdd_node);
}

namespace {

/// NMOS-convention current for vd >= vs; callers handle symmetry/polarity.
double nmos_forward_id(const MosfetParams& p, double vds, double vgs) {
  const double vgt = vgs - p.vt;
  const double leak_g = 1e-12 * p.size;  // keeps the Jacobian non-singular
  if (vgt <= 0.0) return leak_g * vds;
  const double span = p.vdd - p.vt;
  const double norm = vgt / span;
  const double idsat_v = p.idsat * p.size * std::pow(norm, p.alpha);
  const double vdsat = p.vdsat0 * std::pow(norm, 0.5 * p.alpha);
  if (vds >= vdsat)
    return idsat_v * (1.0 + p.lambda * (vds - vdsat)) + leak_g * vds;
  const double u = vds / vdsat;
  return idsat_v * u * (2.0 - u) + leak_g * vds;
}

/// Drain current with full symmetry handling (NMOS convention).
double nmos_id(const MosfetParams& p, double vd, double vg, double vs) {
  if (vd >= vs) return nmos_forward_id(p, vd - vs, vg - vs);
  // Source and drain swap roles when vd < vs.
  return -nmos_forward_id(p, vs - vd, vg - vd);
}

double device_id(const MosfetParams& p, double vd, double vg, double vs) {
  if (p.type == MosType::kNmos) return nmos_id(p, vd, vg, vs);
  // PMOS: mirror voltages; current into the drain is the negative mirror.
  return -nmos_id(p, -vd, -vg, -vs);
}

}  // namespace

MosOperatingPoint mosfet_evaluate(const MosfetParams& p, double vd, double vg,
                                  double vs) {
  MosOperatingPoint op;
  op.id = device_id(p, vd, vg, vs);
  const double h = 1e-6;
  op.gds = (device_id(p, vd + h, vg, vs) - device_id(p, vd - h, vg, vs)) /
           (2.0 * h);
  op.gm = (device_id(p, vd, vg + h, vs) - device_id(p, vd, vg - h, vs)) /
          (2.0 * h);
  op.gms = (device_id(p, vd, vg, vs + h) - device_id(p, vd, vg, vs - h)) /
           (2.0 * h);
  return op;
}

}  // namespace dsmt::circuit
