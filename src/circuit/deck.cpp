#include "circuit/deck.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "circuit/waveform.h"

namespace dsmt::circuit {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("deck:" + std::to_string(line) + ": " + msg);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Splits "PULSE(a b c)" style arguments that may span tokens.
std::vector<double> parse_paren_args(std::istringstream& ls,
                                     std::string first, int line) {
  // Collect everything from `first` to the closing paren.
  std::string blob = std::move(first);
  while (blob.find(')') == std::string::npos) {
    std::string more;
    if (!(ls >> more)) fail(line, "unterminated '(' argument list");
    blob += ' ';
    blob += more;
  }
  const auto open = blob.find('(');
  const auto close = blob.rfind(')');
  if (open == std::string::npos || close <= open)
    fail(line, "malformed argument list");
  std::string inner = blob.substr(open + 1, close - open - 1);
  for (char& c : inner)
    if (c == ',') c = ' ';
  std::istringstream as(inner);
  std::vector<double> args;
  std::string tok;
  while (as >> tok) args.push_back(parse_spice_number(tok));
  return args;
}

}  // namespace

double parse_spice_number(const std::string& token) {
  if (token.empty()) throw std::invalid_argument("empty number");
  std::size_t pos = 0;
  double value;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad number '" + token + "'");
  }
  std::string suffix = lower(token.substr(pos));
  if (suffix.empty()) return value;
  if (suffix.rfind("meg", 0) == 0) return value * 1e6;
  switch (suffix[0]) {
    case 'f': return value * 1e-15;
    case 'p': return value * 1e-12;
    case 'n': return value * 1e-9;
    case 'u': return value * 1e-6;
    case 'm': return value * 1e-3;
    case 'k': return value * 1e3;
    case 'g': return value * 1e9;
    case 't': return value * 1e12;
    default:
      throw std::invalid_argument("bad suffix on '" + token + "'");
  }
}

int Deck::source_index(const std::string& name) const {
  const std::string key = lower(name);
  for (std::size_t i = 0; i < source_names.size(); ++i)
    if (source_names[i] == key) return static_cast<int>(i);
  return -1;
}

Deck parse_deck(const std::string& text) {
  Deck deck;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  bool ended = false;

  while (std::getline(is, line) && !ended) {
    ++lineno;
    const auto star = line.find('*');
    if (star != std::string::npos) line.erase(star);
    std::istringstream ls(line);
    std::string card;
    if (!(ls >> card)) continue;
    const std::string lc = lower(card);

    if (lc[0] == '.') {
      if (lc == ".end") {
        ended = true;
      } else if (lc == ".tran") {
        std::string dt, tstop;
        if (!(ls >> dt >> tstop)) fail(lineno, ".tran needs <dt> <tstop>");
        deck.tran.dt = parse_spice_number(dt);
        deck.tran.t_stop = parse_spice_number(tstop);
        if (deck.tran.dt <= 0 || deck.tran.t_stop <= 0)
          fail(lineno, ".tran values must be positive");
        deck.has_tran = true;
      } else {
        fail(lineno, "unknown directive " + lc);
      }
      continue;
    }

    auto read_node = [&]() {
      std::string n;
      if (!(ls >> n)) fail(lineno, "missing node on " + card);
      return deck.netlist.node(n);
    };

    switch (lc[0]) {
      case 'r': {
        const NodeId a = read_node(), b = read_node();
        std::string v;
        if (!(ls >> v)) fail(lineno, "missing value on " + card);
        double ohms;
        try {
          ohms = parse_spice_number(v);
        } catch (const std::invalid_argument& e) {
          fail(lineno, e.what());
        }
        if (ohms <= 0) fail(lineno, "resistance must be positive");
        deck.netlist.add_resistor(a, b, ohms);
        break;
      }
      case 'c': {
        const NodeId a = read_node(), b = read_node();
        std::string v;
        if (!(ls >> v)) fail(lineno, "missing value on " + card);
        double farads;
        try {
          farads = parse_spice_number(v);
        } catch (const std::invalid_argument& e) {
          fail(lineno, e.what());
        }
        if (farads < 0) fail(lineno, "capacitance must be non-negative");
        deck.netlist.add_capacitor(a, b, farads);
        break;
      }
      case 'l': {
        const NodeId a = read_node(), b = read_node();
        std::string v;
        if (!(ls >> v)) fail(lineno, "missing value on " + card);
        double henries;
        try {
          henries = parse_spice_number(v);
        } catch (const std::invalid_argument& e) {
          fail(lineno, e.what());
        }
        if (henries <= 0) fail(lineno, "inductance must be positive");
        deck.netlist.add_inductor(a, b, henries);
        break;
      }
      case 'i': {
        const NodeId from = read_node(), to = read_node();
        std::string kind;
        if (!(ls >> kind)) fail(lineno, "missing source spec on " + card);
        const std::string lk = lower(kind);
        if (lk == "dc") {
          std::string v;
          if (!(ls >> v)) fail(lineno, "DC needs a value");
          deck.netlist.add_isource(from, to, dc(parse_spice_number(v)));
        } else if (lk.rfind("pulse", 0) == 0) {
          const auto a = parse_paren_args(ls, kind, lineno);
          if (a.size() != 7) fail(lineno, "PULSE needs 7 arguments");
          deck.netlist.add_isource(
              from, to, pulse(a[0], a[1], a[2], a[3], a[5], a[4], a[6]));
        } else if (lk.rfind("pwl", 0) == 0) {
          const auto a = parse_paren_args(ls, kind, lineno);
          if (a.size() < 4 || a.size() % 2 != 0)
            fail(lineno, "PWL needs an even number (>=4) of arguments");
          std::vector<double> tv, vv;
          for (std::size_t k = 0; k < a.size(); k += 2) {
            tv.push_back(a[k]);
            vv.push_back(a[k + 1]);
          }
          deck.netlist.add_isource(from, to, pwl(std::move(tv), std::move(vv)));
        } else {
          fail(lineno, "unknown source spec " + kind);
        }
        break;
      }
      case 'v': {
        const NodeId p = read_node(), n = read_node();
        std::string kind;
        if (!(ls >> kind)) fail(lineno, "missing source spec on " + card);
        const std::string lk = lower(kind);
        if (lk == "dc") {
          std::string v;
          if (!(ls >> v)) fail(lineno, "DC needs a value");
          deck.netlist.add_vsource(p, n, dc(parse_spice_number(v)));
        } else if (lk.rfind("pulse", 0) == 0) {
          const auto a = parse_paren_args(ls, kind, lineno);
          if (a.size() != 7) fail(lineno, "PULSE needs 7 arguments");
          // SPICE order: v0 v1 td tr tf pw per.
          deck.netlist.add_vsource(
              p, n, pulse(a[0], a[1], a[2], a[3], a[5], a[4], a[6]));
        } else if (lk.rfind("pwl", 0) == 0) {
          const auto a = parse_paren_args(ls, kind, lineno);
          if (a.size() < 4 || a.size() % 2 != 0)
            fail(lineno, "PWL needs an even number (>=4) of arguments");
          std::vector<double> tv, vv;
          for (std::size_t i = 0; i < a.size(); i += 2) {
            tv.push_back(a[i]);
            vv.push_back(a[i + 1]);
          }
          deck.netlist.add_vsource(p, n, pwl(std::move(tv), std::move(vv)));
        } else {
          fail(lineno, "unknown source spec " + kind);
        }
        deck.source_names.push_back(lc);
        break;
      }
      case 'm': {
        const NodeId d = read_node(), g = read_node(), s = read_node();
        std::string type;
        if (!(ls >> type)) fail(lineno, "missing device type on " + card);
        MosfetParams mp;
        const std::string lt = lower(type);
        if (lt == "nmos")
          mp.type = MosType::kNmos;
        else if (lt == "pmos")
          mp.type = MosType::kPmos;
        else
          fail(lineno, "device type must be nmos|pmos");
        std::string kv;
        while (ls >> kv) {
          const auto eq = kv.find('=');
          if (eq == std::string::npos) fail(lineno, "expected key=value");
          const std::string key = lower(kv.substr(0, eq));
          double val;
          try {
            val = parse_spice_number(kv.substr(eq + 1));
          } catch (const std::invalid_argument& e) {
            fail(lineno, e.what());
          }
          if (key == "vt") mp.vt = val;
          else if (key == "vdd") mp.vdd = val;
          else if (key == "idsat") mp.idsat = val;
          else if (key == "alpha") mp.alpha = val;
          else if (key == "vdsat0") mp.vdsat0 = val;
          else if (key == "lambda") mp.lambda = val;
          else if (key == "size") mp.size = val;
          else fail(lineno, "unknown MOSFET parameter " + key);
        }
        deck.netlist.add_mosfet(mp, d, g, s);
        break;
      }
      default:
        fail(lineno, "unknown card '" + card + "'");
    }
  }
  return deck;
}

}  // namespace dsmt::circuit
