// Source waveform generators and sampled-waveform measurements.
//
// The measurement side implements the paper's current-density definitions
// (Eqs. 1-3) and Hunter's effective duty cycle r_eff = (I_rms/I_peak)^2 for
// general waveforms [18] — the quantity the paper reports as 0.12 +/- 0.01
// for optimally buffered global lines (Fig. 7).
#pragma once

#include <vector>

#include "circuit/netlist.h"

namespace dsmt::circuit {

/// Periodic trapezoidal pulse: v0 -> v1 at t_delay with rise `t_rise`, high
/// for `t_high`, falls in `t_fall`, period `period`.
/// Levels v0/v1 [V or A]; t_delay, t_rise, t_high, t_fall, period [s].
TimeFunction pulse(double v0, double v1, double t_delay, double t_rise,
                   double t_high, double t_fall, double period);

/// Constant source.
/// v [V or A].
TimeFunction dc(double v);

/// Piecewise-linear source through (t, v) points; clamps outside.
TimeFunction pwl(std::vector<double> t, std::vector<double> v);

/// Double-exponential pulse i(t) = i0 (exp(-t/tau_fall) - exp(-t/tau_rise)),
/// normalized so the peak equals `peak` — standard ESD (HBM/MM) shape.
/// peak [A]; tau_rise, tau_fall [s].
TimeFunction double_exponential(double peak, double tau_rise, double tau_fall);

/// Scalar measurements over a sampled waveform (typically one clock period).
struct WaveformStats {
  double peak = 0.0;        ///< max |y|
  double rms = 0.0;         ///< sqrt(mean of y^2), time-weighted
  double average = 0.0;     ///< signed time average
  double average_abs = 0.0; ///< time average of |y|
  double duty_effective = 0.0;  ///< (rms/peak)^2 (Hunter Part II)
};
WaveformStats measure(const std::vector<double>& t,
                      const std::vector<double>& y);

/// Restricts (t, y) to [t0, t1] (inclusive; linearly interpolated ends).
std::pair<std::vector<double>, std::vector<double>> window(
    const std::vector<double>& t, const std::vector<double>& y, double t0,
    double t1);

/// 10%-90% rise time of a monotone-rising edge between levels v_lo and v_hi;
/// returns -1 if the thresholds are not crossed in order.
double rise_time_10_90(const std::vector<double>& t,
                       const std::vector<double>& v, double v_lo, double v_hi);

/// First crossing time of `level`, searching from `t_from`; -1 if none.
double crossing_time(const std::vector<double>& t,
                     const std::vector<double>& v, double level,
                     double t_from = 0.0, bool rising = true);

}  // namespace dsmt::circuit
