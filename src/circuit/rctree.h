// RC-tree analysis: Elmore delays on arbitrary routing trees.
//
// The paper's repeater optimum (Eq. 16) covers point-to-point connections;
// real global nets branch. This module models a net as an RC tree (each
// edge a wire segment with per-unit-length r/c, each node optionally
// loaded), computes downstream capacitances and Elmore delays to every
// sink in O(n), and can emit the equivalent MNA netlist so the estimates
// can be validated against transient simulation (see test_rctree.cpp).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/netlist.h"

namespace dsmt::circuit {

/// A tree of wire segments rooted at the driver.
class RcTree {
 public:
  /// Creates the root (driver output). `driver_resistance` is the source
  /// resistance feeding the tree.
  /// driver_resistance [Ohm].
  explicit RcTree(double driver_resistance);

  /// Adds a segment of `length` metres with the given per-unit-length
  /// parasitics, hanging from `parent` (0 = root). Returns the new node id.
  /// r_per_m [Ohm/m], c_per_m [F/m], length [m].
  std::size_t add_segment(std::size_t parent, double r_per_m, double c_per_m,
                          double length);

  /// Adds a lumped load (sink pin) at a node.
  /// farads [F].
  void add_load(std::size_t node, double farads);

  std::size_t node_count() const { return nodes_.size(); }

  /// Total capacitance hanging at/below each node (wire + loads) [F].
  std::vector<double> downstream_capacitance() const;

  /// Elmore delay from the driver input to each node [s]. Uses the
  /// standard distributed correction: a segment's own capacitance counts
  /// half through its own resistance.
  std::vector<double> elmore_delays() const;

  /// Worst (maximum) Elmore delay over all nodes.
  double critical_delay() const;

  /// Builds the equivalent netlist (each segment as an N-section ladder)
  /// between `in` and internal nodes; returns the netlist NodeId of each
  /// tree node so sims can probe them. The driver resistance is included.
  std::vector<NodeId> emit_netlist(Netlist& nl, NodeId in,
                                   int sections_per_segment = 8) const;

 private:
  struct Node {
    std::size_t parent = 0;
    double r = 0.0;       ///< total segment resistance from parent [Ohm]
    double c_wire = 0.0;  ///< total segment capacitance [F]
    double c_load = 0.0;  ///< lumped load at this node [F]
    double r_per_m = 0.0;
    double c_per_m = 0.0;
    double length = 0.0;
  };
  std::vector<Node> nodes_;  ///< nodes_[0] is the root
  double r_driver_;
};

}  // namespace dsmt::circuit
