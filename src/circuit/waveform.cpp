#include "circuit/waveform.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/quadrature.h"
#include "numeric/stats.h"

namespace dsmt::circuit {

TimeFunction pulse(double v0, double v1, double t_delay, double t_rise,
                   double t_high, double t_fall, double period) {
  if (t_rise <= 0.0 || t_fall <= 0.0 || period <= 0.0)
    throw std::invalid_argument("pulse: non-positive timing");
  if (t_rise + t_high + t_fall > period)
    throw std::invalid_argument("pulse: pulse longer than period");
  return [=](double t) {
    double tau = t - t_delay;
    if (tau < 0.0) return v0;
    tau = std::fmod(tau, period);
    if (tau < t_rise) return v0 + (v1 - v0) * (tau / t_rise);
    tau -= t_rise;
    if (tau < t_high) return v1;
    tau -= t_high;
    if (tau < t_fall) return v1 + (v0 - v1) * (tau / t_fall);
    return v0;
  };
}

TimeFunction dc(double v) {
  return [v](double) { return v; };
}

TimeFunction pwl(std::vector<double> t, std::vector<double> v) {
  if (t.size() != v.size() || t.size() < 2)
    throw std::invalid_argument("pwl: need >=2 points");
  return [t = std::move(t), v = std::move(v)](double tq) {
    if (tq <= t.front()) return v.front();
    if (tq >= t.back()) return v.back();
    const auto it = std::upper_bound(t.begin(), t.end(), tq);
    const std::size_t i = static_cast<std::size_t>(it - t.begin());
    const double f = (tq - t[i - 1]) / (t[i] - t[i - 1]);
    return v[i - 1] + f * (v[i] - v[i - 1]);
  };
}

TimeFunction double_exponential(double peak, double tau_rise, double tau_fall) {
  if (tau_rise <= 0.0 || tau_fall <= tau_rise)
    throw std::invalid_argument("double_exponential: need tau_fall > tau_rise > 0");
  // Peak of exp(-t/tf) - exp(-t/tr) occurs at t* = ln(tf/tr) tr tf/(tf - tr).
  const double t_star =
      std::log(tau_fall / tau_rise) * tau_rise * tau_fall / (tau_fall - tau_rise);
  const double norm =
      std::exp(-t_star / tau_fall) - std::exp(-t_star / tau_rise);
  return [=](double t) {
    if (t <= 0.0) return 0.0;
    return peak * (std::exp(-t / tau_fall) - std::exp(-t / tau_rise)) / norm;
  };
}

WaveformStats measure(const std::vector<double>& t,
                      const std::vector<double>& y) {
  if (t.size() != y.size() || t.size() < 2)
    throw std::invalid_argument("measure: need >=2 samples");
  WaveformStats s;
  s.peak = numeric::peak_abs(y);
  s.rms = numeric::rms_sampled(t, y);
  s.average = numeric::mean_sampled(t, y);
  std::vector<double> abs_y(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) abs_y[i] = std::abs(y[i]);
  s.average_abs = numeric::mean_sampled(t, abs_y);
  s.duty_effective = (s.peak > 0.0) ? (s.rms / s.peak) * (s.rms / s.peak) : 0.0;
  return s;
}

std::pair<std::vector<double>, std::vector<double>> window(
    const std::vector<double>& t, const std::vector<double>& y, double t0,
    double t1) {
  if (t.size() != y.size() || t.size() < 2 || t1 <= t0)
    throw std::invalid_argument("window: bad inputs");
  std::vector<double> tw, yw;
  auto interp_at = [&](double tq) {
    const auto it = std::lower_bound(t.begin(), t.end(), tq);
    if (it == t.begin()) return y.front();
    if (it == t.end()) return y.back();
    const std::size_t i = static_cast<std::size_t>(it - t.begin());
    const double f = (tq - t[i - 1]) / (t[i] - t[i - 1]);
    return y[i - 1] + f * (y[i] - y[i - 1]);
  };
  tw.push_back(t0);
  yw.push_back(interp_at(t0));
  for (std::size_t i = 0; i < t.size(); ++i)
    if (t[i] > t0 && t[i] < t1) {
      tw.push_back(t[i]);
      yw.push_back(y[i]);
    }
  tw.push_back(t1);
  yw.push_back(interp_at(t1));
  return {std::move(tw), std::move(yw)};
}

double rise_time_10_90(const std::vector<double>& t,
                       const std::vector<double>& v, double v_lo,
                       double v_hi) {
  const double v10 = v_lo + 0.1 * (v_hi - v_lo);
  const double v90 = v_lo + 0.9 * (v_hi - v_lo);
  const double t10 = crossing_time(t, v, v10, 0.0, true);
  if (t10 < 0.0) return -1.0;
  const double t90 = crossing_time(t, v, v90, t10, true);
  if (t90 < 0.0) return -1.0;
  return t90 - t10;
}

double crossing_time(const std::vector<double>& t,
                     const std::vector<double>& v, double level, double t_from,
                     bool rising) {
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (t[i] < t_from) continue;
    const bool crossed = rising ? (v[i - 1] < level && v[i] >= level)
                                : (v[i - 1] > level && v[i] <= level);
    if (crossed) {
      const double f = (level - v[i - 1]) / (v[i] - v[i - 1]);
      return t[i - 1] + f * (t[i] - t[i - 1]);
    }
  }
  return -1.0;
}

}  // namespace dsmt::circuit
