// Netlist builders for distributed RC lines and optimally buffered repeater
// stages (the circuit of paper Fig. 6).
#pragma once

#include "circuit/netlist.h"
#include "tech/technology.h"

namespace dsmt::circuit {

/// Adds an N-segment pi-ladder between `in` and `out`:
/// each segment carries r*l/N in series with c*l/(N) split half at each end.
/// Returns the internal node just after `in` (useful for probing).
/// Total series resistance r_total = r_per_m * length, likewise for C.
/// Units: r_per_m [Ohm/m], c_per_m [F/m], length [m].
void add_rc_line(Netlist& nl, NodeId in, NodeId out, double r_per_m,
                 double c_per_m, double length, int segments);

/// RLC variant: each segment carries series r*l/N and l_ind*l/N with the
/// same pi capacitance split. Used to quantify where wire inductance
/// matters (see bench_ablation_inductance: visible at repeater spacing on
/// fat low-k global wires, but it lowers peak currents, so the RC-based
/// thermal design rules remain conservative).
/// Units: r_per_m [Ohm/m], l_per_m [H/m], c_per_m [F/m], length [m].
void add_rlc_line(Netlist& nl, NodeId in, NodeId out, double r_per_m,
                  double l_per_m, double c_per_m, double length,
                  int segments);

/// Parameters of one repeater (inverter) built from the technology's device
/// data, sized by `size` (paper Eq. 17's s).
struct RepeaterDevices {
  MosfetParams nmos;
  MosfetParams pmos;
  double c_in = 0.0;   ///< gate load presented to the previous stage [F]
  double c_par = 0.0;  ///< drain parasitic at the output [F]
};
RepeaterDevices make_repeater(const tech::DeviceParameters& dev, double size);

/// A driver -> line -> receiver stage with an ammeter in series with the
/// line at the driver output (where the paper notes the maximum RMS current
/// occurs).
struct RepeaterStage {
  NodeId input = 0;        ///< gate of the driver
  NodeId drive = 0;        ///< driver output (before the ammeter)
  NodeId line_in = 0;      ///< line input (after the ammeter)
  NodeId line_out = 0;     ///< far end of the line
  int ammeter = -1;        ///< source index measuring driver->line current
  int vdd_source = -1;     ///< supply source index (for power measurements)
};

/// Builds: Vdd rail, driver inverter (size s), ammeter, distributed RC line
/// (r, c, length, segments), receiver load = gate capacitance of an equal
/// repeater. The driver input must be driven externally (connect a source
/// or a previous stage to `input`).
RepeaterStage build_repeater_stage(Netlist& nl, const tech::DeviceParameters& dev,
                                   double size, double r_per_m, double c_per_m,
                                   double length, int segments);

}  // namespace dsmt::circuit
