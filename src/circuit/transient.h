// MNA transient engine: Newton-Raphson per step, trapezoidal companion
// models for capacitors, dense LU on the (small) MNA system.
#pragma once

#include <vector>

#include "circuit/netlist.h"

namespace dsmt::circuit {

struct TransientOptions {
  double t_stop = 1e-9;
  double dt = 1e-12;
  int max_newton = 80;
  double v_abs_tol = 1e-6;   ///< Newton voltage convergence [V]
  double i_abs_tol = 1e-12;  ///< Newton residual current convergence [A]
};

/// Sampled transient solution.
class TransientResult {
 public:
  TransientResult(int nodes, int sources);

  const std::vector<double>& time() const { return time_; }
  /// Voltage waveform of a node (ground returns all zeros).
  std::vector<double> voltage(NodeId node) const;
  /// Branch current of voltage source `idx` (positive current flows from the
  /// positive terminal through the external circuit into the negative one).
  std::vector<double> source_current(int idx) const;

  int steps() const { return static_cast<int>(time_.size()); }

  // Engine-side appenders.
  /// t [s]; x holds node voltages [V].
  void append(double t, const std::vector<double>& x);
  int nodes_ = 0;
  int sources_ = 0;

 private:
  std::vector<double> time_;
  std::vector<std::vector<double>> x_;  ///< per step: node volts + branch amps
};

/// Runs the transient analysis. The initial state is the DC solution at
/// t = 0 obtained by Newton on the t = 0 system with capacitors open.
/// Throws std::runtime_error if Newton fails to converge at any step.
TransientResult run_transient(const Netlist& netlist,
                              const TransientOptions& options);

}  // namespace dsmt::circuit
