// SPICE-style deck parser for the MNA engine.
//
// Supported card subset (case-insensitive element letters, '*' comments,
// one card per line; node "0"/"gnd" is ground; SI suffixes f p n u m k meg
// g on values):
//
//   R<name> <n1> <n2> <value>
//   C<name> <n1> <n2> <value>
//   V<name> <n+> <n-> DC <v>
//   V<name> <n+> <n-> PULSE(<v0> <v1> <td> <tr> <tf> <pw> <per>)
//   V<name> <n+> <n-> PWL(<t1> <v1> <t2> <v2> ...)
//   M<name> <d> <g> <s> <nmos|pmos> vt=<v> vdd=<v> idsat=<a> alpha=<a>
//            vdsat0=<v> [lambda=<l>] [size=<s>]
//   .tran <dt> <tstop>
//   .end
//
// The PULSE argument order follows SPICE (v0 v1 td tr tf pw per).
#pragma once

#include <string>

#include "circuit/netlist.h"
#include "circuit/transient.h"

namespace dsmt::circuit {

/// A parsed deck: the netlist plus any .tran directive found.
struct Deck {
  Netlist netlist;
  TransientOptions tran;
  bool has_tran = false;
  /// Maps a deck node name to its NodeId (for probing results).
  NodeId node(const std::string& name) { return netlist.node(name); }
  /// Source index by element name ("VIN" -> index), -1 if absent.
  int source_index(const std::string& name) const;

  std::vector<std::string> source_names;  ///< parallel to netlist.vsources()
};

/// Parses a deck; throws std::runtime_error with a line number on errors.
Deck parse_deck(const std::string& text);

/// Parses a SPICE number with optional scale suffix ("2.5", "10k", "1.2n",
/// "3meg"). Throws std::invalid_argument on garbage.
double parse_spice_number(const std::string& token);

}  // namespace dsmt::circuit
