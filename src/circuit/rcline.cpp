#include "circuit/rcline.h"

#include <stdexcept>

#include "circuit/waveform.h"

namespace dsmt::circuit {

void add_rc_line(Netlist& nl, NodeId in, NodeId out, double r_per_m,
                 double c_per_m, double length, int segments) {
  if (segments < 1) throw std::invalid_argument("add_rc_line: segments < 1");
  if (length <= 0.0) throw std::invalid_argument("add_rc_line: length <= 0");
  const double r_seg = r_per_m * length / segments;
  const double c_seg = c_per_m * length / segments;

  NodeId prev = in;
  for (int s = 0; s < segments; ++s) {
    const NodeId next = (s == segments - 1) ? out : nl.internal_node();
    // Pi segment: half the segment capacitance at each end.
    nl.add_capacitor(prev, kGround, 0.5 * c_seg);
    nl.add_resistor(prev, next, r_seg);
    nl.add_capacitor(next, kGround, 0.5 * c_seg);
    prev = next;
  }
}

void add_rlc_line(Netlist& nl, NodeId in, NodeId out, double r_per_m,
                  double l_per_m, double c_per_m, double length,
                  int segments) {
  if (segments < 1) throw std::invalid_argument("add_rlc_line: segments < 1");
  if (length <= 0.0) throw std::invalid_argument("add_rlc_line: length <= 0");
  if (l_per_m <= 0.0) throw std::invalid_argument("add_rlc_line: L <= 0");
  const double r_seg = r_per_m * length / segments;
  const double l_seg = l_per_m * length / segments;
  const double c_seg = c_per_m * length / segments;

  NodeId prev = in;
  for (int s = 0; s < segments; ++s) {
    const NodeId mid = nl.internal_node();
    const NodeId next = (s == segments - 1) ? out : nl.internal_node();
    nl.add_capacitor(prev, kGround, 0.5 * c_seg);
    nl.add_resistor(prev, mid, r_seg);
    nl.add_inductor(mid, next, l_seg);
    nl.add_capacitor(next, kGround, 0.5 * c_seg);
    prev = next;
  }
}

RepeaterDevices make_repeater(const tech::DeviceParameters& dev, double size) {
  if (size <= 0.0) throw std::invalid_argument("make_repeater: size <= 0");
  RepeaterDevices r;
  r.nmos = {MosType::kNmos, dev.vt,     dev.vdd,  dev.idsat_n,
            dev.alpha,      dev.vdsat0, 0.02,     size};
  r.pmos = {MosType::kPmos, dev.vt,     dev.vdd,  dev.idsat_p,
            dev.alpha,      dev.vdsat0, 0.02,     size};
  r.c_in = dev.cg * size;
  r.c_par = dev.cp * size;
  return r;
}

RepeaterStage build_repeater_stage(Netlist& nl,
                                   const tech::DeviceParameters& dev,
                                   double size, double r_per_m, double c_per_m,
                                   double length, int segments) {
  RepeaterStage st;
  const NodeId vdd = nl.node("vdd");
  // Stages share the rail; create the supply source only once per netlist.
  bool have_rail = false;
  for (const auto& src : nl.vsources())
    if (src.pos == vdd && src.neg == kGround) have_rail = true;
  if (!have_rail) st.vdd_source = nl.add_vsource(vdd, kGround, dc(dev.vdd));

  const auto devs = make_repeater(dev, size);
  st.input = nl.internal_node();
  st.drive = nl.internal_node();
  st.line_in = nl.internal_node();
  st.line_out = nl.internal_node();

  nl.add_inverter(devs.nmos, devs.pmos, st.input, st.drive, vdd, kGround);
  nl.add_capacitor(st.input, kGround, devs.c_in);
  nl.add_capacitor(st.drive, kGround, devs.c_par);

  st.ammeter = nl.add_ammeter(st.drive, st.line_in);
  add_rc_line(nl, st.line_in, st.line_out, r_per_m, c_per_m, length, segments);

  // Receiver: gate capacitance of an identical next-stage repeater.
  nl.add_capacitor(st.line_out, kGround, devs.c_in);
  return st;
}

}  // namespace dsmt::circuit
