#!/usr/bin/env python3
"""Compare two BENCH_*.json snapshots and fail on latency regressions.

The repo commits one benchmark snapshot per PR (BENCH_6.json ... BENCH_10.json)
so the perf trajectory is reviewable.  This tool makes that trajectory
machine-checked: given an OLD and a NEW snapshot it walks both JSON trees,
pairs up every `p50_ms` / `p99_ms` leaf that exists at the same path in both,
and fails (exit 1) when NEW is more than --threshold (default 15%) slower
than OLD on any paired percentile.

Snapshots from different PRs measure different scenarios, so only paths
present in BOTH files are compared; new sections are reported as "added" and
vanished ones as "removed", neither failing the gate.  Percentiles measured
over fewer than --min-samples requests (sibling `samples` key) are skipped:
a p99 over 8 samples is noise, not a trajectory.

Usage:
    bench_compare.py OLD.json NEW.json [--threshold 0.15] [--min-samples 32]
    bench_compare.py --self-test

Exit codes: 0 comparison clean (or self-test pass), 1 regression found,
2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import sys

PERCENTILE_KEYS = ("p50_ms", "p99_ms")


def collect_percentiles(node, path=""):
    """Flattens a snapshot into {json-path: (value, samples-or-None)}."""
    found = {}
    if isinstance(node, dict):
        samples = node.get("samples")
        if not isinstance(samples, (int, float)):
            samples = None
        for key, value in node.items():
            child_path = f"{path}.{key}" if path else key
            if key in PERCENTILE_KEYS and isinstance(value, (int, float)):
                found[child_path] = (float(value), samples)
            else:
                found.update(collect_percentiles(value, child_path))
    elif isinstance(node, list):
        for index, value in enumerate(node):
            found.update(collect_percentiles(value, f"{path}[{index}]"))
    return found


def compare(old, new, threshold, min_samples):
    """Returns (regressions, report_lines) for two parsed snapshots."""
    old_points = collect_percentiles(old)
    new_points = collect_percentiles(new)
    regressions = []
    lines = []
    for path in sorted(set(old_points) & set(new_points)):
        old_value, old_samples = old_points[path]
        new_value, new_samples = new_points[path]
        samples = min(s for s in (old_samples, new_samples, min_samples)
                      if s is not None)
        if samples < min_samples:
            lines.append(f"  skip  {path}: only {samples} samples")
            continue
        if old_value <= 0.0:
            lines.append(f"  skip  {path}: non-positive baseline")
            continue
        ratio = new_value / old_value
        verdict = "ok" if ratio <= 1.0 + threshold else "REGRESSED"
        lines.append(f"  {verdict:>9}  {path}: {old_value:.6g} -> "
                     f"{new_value:.6g} ms ({ratio - 1.0:+.1%} vs baseline)")
        if ratio > 1.0 + threshold:
            regressions.append(path)
    for path in sorted(set(new_points) - set(old_points)):
        lines.append(f"      added  {path}: {new_points[path][0]:.6g} ms")
    for path in sorted(set(old_points) - set(new_points)):
        lines.append(f"    removed  {path}")
    return regressions, lines


# ---------------------------------------------------------------------------
# Self-test fixtures: a baseline, a clean follow-up, and a regressed one.

SELF_TEST_OLD = {
    "in_process": {"latency": {"p50_ms": 0.25, "p99_ms": 2.0,
                               "samples": 512}},
    "isolate": {"latency": {"p50_ms": 0.76, "p99_ms": 1.3, "samples": 512}},
    "tiny": {"latency": {"p50_ms": 0.10, "p99_ms": 0.2, "samples": 8}},
}

SELF_TEST_GOOD = {
    "in_process": {"latency": {"p50_ms": 0.27, "p99_ms": 2.1,
                               "samples": 512}},
    "isolate": {"latency": {"p50_ms": 0.70, "p99_ms": 1.1, "samples": 512}},
    # Under min-samples: a 5x blowup here must NOT fail the gate.
    "tiny": {"latency": {"p50_ms": 0.50, "p99_ms": 1.0, "samples": 8}},
    "brand_new": {"latency": {"p50_ms": 9.9, "p99_ms": 9.9, "samples": 512}},
}

SELF_TEST_BAD = {
    "in_process": {"latency": {"p50_ms": 0.40, "p99_ms": 2.1,
                               "samples": 512}},
    "isolate": {"latency": {"p50_ms": 0.70, "p99_ms": 1.1, "samples": 512}},
}


def self_test():
    regressions, _ = compare(SELF_TEST_OLD, SELF_TEST_GOOD, 0.15, 32)
    assert regressions == [], f"clean fixture flagged: {regressions}"
    regressions, _ = compare(SELF_TEST_OLD, SELF_TEST_BAD, 0.15, 32)
    assert regressions == ["in_process.latency.p50_ms"], (
        f"regressed fixture mis-flagged: {regressions}")
    # Threshold is inclusive-of-boundary: exactly +15% passes.
    boundary = {"in_process": {"latency": {"p50_ms": 0.25 * 1.15,
                                           "p99_ms": 2.0, "samples": 512}}}
    regressions, _ = compare(SELF_TEST_OLD, boundary, 0.15, 32)
    assert regressions == [], f"boundary flagged: {regressions}"
    print("bench_compare self-test passed (3 fixtures)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="fail on >threshold p50/p99 regressions between "
                    "two BENCH_*.json snapshots")
    parser.add_argument("old", nargs="?", help="baseline snapshot")
    parser.add_argument("new", nargs="?", help="candidate snapshot")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional slowdown (default 0.15)")
    parser.add_argument("--min-samples", type=int, default=32,
                        help="skip percentiles measured over fewer samples")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixtures and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.old or not args.new:
        parser.print_usage(sys.stderr)
        return 2

    try:
        with open(args.old, encoding="utf-8") as f:
            old = json.load(f)
        with open(args.new, encoding="utf-8") as f:
            new = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"bench_compare: {error}", file=sys.stderr)
        return 2

    regressions, lines = compare(old, new, args.threshold, args.min_samples)
    print(f"bench_compare: {args.old} -> {args.new} "
          f"(threshold +{args.threshold:.0%})")
    for line in lines:
        print(line)
    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s): "
              + ", ".join(regressions))
        return 1
    print("bench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
