// dsmt_loadgen — load and chaos harness for the socket front end.
//
// Drives a live dsmt_serve socket server with N concurrent clients and
// reports latency percentiles, or attacks it with hostile-client behaviour
// (kill-mid-frame, garbage bytes) and verifies the server keeps answering
// well-formed requests afterwards. Exit code 0 means every expectation of
// the selected mode held; 1 means the server misbehaved (missing or short
// reply, unexpected close, or a failed post-attack probe); 2 means usage
// error.
//
// Modes:
//   normal        each client sends --requests framed solve requests
//                 back-to-back and measures per-request round-trip latency
//   kill-midframe each client sends a partial frame (header + half payload)
//                 and slams the connection shut; a probe client then checks
//                 the server still serves
//   garbage       each client sends seeded random bytes; the server must
//                 answer one well-formed kInvalidInput error frame and
//                 close; a probe client then checks the server still serves
//   crash-storm   interleaves poison requests (ids matching the server's
//                 armed --crash-faults substring, --poison-percent of
//                 traffic) with clean requests against a dsmt_serve
//                 --isolate server. Every request — poison included — must
//                 be answered exactly once; clean (survivor) lanes must
//                 answer "ok" and their latency percentiles are reported
//                 separately from the poison lanes
//   cache-storm   every client sends the IDENTICAL request stream (same ids,
//                 same parameters) so concurrent misses stampede the same
//                 cache keys; every request must answer "ok" and — the
//                 integrity claim — reply i must be byte-identical across
//                 all clients (hit, coalesced hit, and cold solve must be
//                 indistinguishable on the wire)
//   bitflip       no socket: flips --flips seeded bits in-place in --file
//                 (a cache segment), for corruption-recovery drills
//
// This is a tool, not library code: it uses blocking sockets and raw
// syscalls directly (lint rule R11 fences those out of src/ outside
// src/net/, but tools/ is exempt, like tests/).
#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.h"
#include "report/json.h"
#include "service/request.h"
#include "service/retry.h"

namespace {

using dsmt::net::encode_frame;
using dsmt::net::kFrameHeaderBytes;
using dsmt::net::kFrameMagic;

void print_error(const std::string& message) {
  std::fprintf(stderr, "dsmt_loadgen: %s\n", message.c_str());
}

[[noreturn]] void usage(int exit_code) {
  std::fprintf(
      exit_code == 0 ? stdout : stderr,
      "usage: dsmt_loadgen (--connect SOCKET_PATH | --tcp PORT) [options]\n"
      "       dsmt_loadgen --mode bitflip --file PATH [--flips N] [--seed S]\n"
      "\n"
      "modes (default --mode normal):\n"
      "  --mode normal         framed solve requests, latency percentiles\n"
      "  --mode kill-midframe  abort connections mid-frame, then probe\n"
      "  --mode garbage        send non-protocol bytes, then probe\n"
      "  --mode crash-storm    poison ids (\"poison-K\") interleaved with\n"
      "                        clean traffic against dsmt_serve --isolate;\n"
      "                        every request must be answered exactly once\n"
      "                        (--crash-storm is shorthand for this mode)\n"
      "  --mode cache-storm    identical request stream from every client\n"
      "                        (a coalescing stampede); all replies must be\n"
      "                        \"ok\" and byte-identical across clients\n"
      "  --mode bitflip        no socket: flip --flips seeded bits in-place\n"
      "                        in --file (cache-segment corruption drill)\n"
      "\n"
      "options:\n"
      "  --clients N         concurrent client connections (default 4)\n"
      "  --requests N        requests per client (default 8)\n"
      "  --poison-percent P  crash-storm: percent of poison traffic\n"
      "                      (1-100, default 10)\n"
      "  --file PATH         bitflip: file to corrupt in place\n"
      "  --flips N           bitflip: number of single-bit flips (default 8)\n"
      "  --seed S            fault/garbage/bitflip stream seed (default 1)\n"
      "  --json              emit the report as JSON on stdout\n"
      "  --help              this text\n"
      "\n"
      "exit codes: 0 = all expectations held, 1 = server misbehaved,\n"
      "2 = usage error\n");
  std::exit(exit_code);
}

// ---- blocking client-side socket plumbing -------------------------------

struct ClientSock {
  int fd = -1;
  ~ClientSock() {
    if (fd >= 0) ::close(fd);
  }
  ClientSock() = default;
  ClientSock(ClientSock&& other) noexcept : fd(other.fd) { other.fd = -1; }
  ClientSock(const ClientSock&) = delete;
  ClientSock& operator=(const ClientSock&) = delete;
};

bool connect_unix(ClientSock& sock, const std::string& path) {
  sock.fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (sock.fd < 0) return false;
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) return false;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  for (;;) {
    if (::connect(sock.fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0)
      return true;
    if (errno != EINTR) return false;
  }
}

bool connect_tcp(ClientSock& sock, std::uint16_t port) {
  sock.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (sock.fd < 0) return false;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  for (;;) {
    if (::connect(sock.fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0)
      return true;
    if (errno != EINTR) return false;
  }
}

bool send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const long n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool recv_all(int fd, char* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const long n = ::recv(fd, data + got, len - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or error before the full read
  }
  return true;
}

/// Reads one complete frame; returns false on EOF/garbage/oversize.
bool recv_frame(int fd, std::string& payload) {
  char header[kFrameHeaderBytes];
  if (!recv_all(fd, header, sizeof header)) return false;
  if (std::memcmp(header, kFrameMagic, sizeof kFrameMagic) != 0) return false;
  std::uint32_t len = 0;
  for (std::size_t i = 4; i < kFrameHeaderBytes; ++i)
    len = (len << 8) | static_cast<unsigned char>(header[i]);
  if (len > (32u << 20)) return false;  // sanity cap on the client side
  payload.resize(len);
  return len == 0 || recv_all(fd, payload.data(), len);
}

// ---- run configuration and results --------------------------------------

struct Options {
  bool use_tcp = false;
  std::string socket_path;
  std::uint16_t port = 0;
  std::string mode = "normal";
  int clients = 4;
  int requests = 8;
  int poison_percent = 10;  ///< crash-storm poison share of traffic [%]
  std::string file;         ///< bitflip: target file
  int flips = 8;            ///< bitflip: single-bit flips to apply
  std::uint64_t seed = 1;
  bool json = false;
};

struct ClientResult {
  int sent = 0;
  int replies = 0;      ///< well-formed frames with the echoed id
  int failures = 0;     ///< connect/send/recv/validation failures
  int poison_sent = 0;  ///< crash-storm: poison requests issued
  int status_ok = 0;           ///< crash-storm replies by status
  int status_crashed = 0;      ///< "worker-crashed"
  int status_other = 0;        ///< anything else
  std::vector<double> latency_ms;         ///< clean (survivor) lanes
  std::vector<double> poison_latency_ms;  ///< crash-storm poison lanes
  std::vector<std::string> reply_bytes;   ///< cache-storm: raw reply payloads
};

bool connect_client(ClientSock& sock, const Options& opt) {
  return opt.use_tcp ? connect_tcp(sock, opt.port)
                     : connect_unix(sock, opt.socket_path);
}

std::string request_payload(int client, int index) {
  dsmt::service::Request req;
  req.id = "load-" + std::to_string(client) + "-" + std::to_string(index);
  req.kind = dsmt::service::RequestKind::kSelfConsistent;
  // Spread duty cycles so the reference cache sees distinct operating
  // points, like a real per-wire query stream would.
  req.duty_cycle = 0.05 + 0.01 * static_cast<double>(index % 40);
  return dsmt::service::request_to_json(req).dump(-1);
}

void run_normal_client(const Options& opt, int client, ClientResult& out) {
  ClientSock sock;
  if (!connect_client(sock, opt)) {
    ++out.failures;
    return;
  }
  std::string payload;
  for (int i = 0; i < opt.requests; ++i) {
    const std::string frame = encode_frame(request_payload(client, i));
    const auto start = std::chrono::steady_clock::now();
    ++out.sent;
    if (!send_all(sock.fd, frame.data(), frame.size()) ||
        !recv_frame(sock.fd, payload)) {
      ++out.failures;
      return;
    }
    const auto stop = std::chrono::steady_clock::now();
    try {
      const dsmt::report::Json doc = dsmt::report::Json::parse(payload);
      const dsmt::report::Json* id = doc.find("id");
      const dsmt::report::Json* status = doc.find("status");
      if (id == nullptr || !id->is_string() ||
          id->as_string() !=
              "load-" + std::to_string(client) + "-" + std::to_string(i) ||
          status == nullptr || !status->is_string()) {
        ++out.failures;
        return;
      }
    } catch (const std::exception&) {
      ++out.failures;
      return;
    }
    ++out.replies;
    out.latency_ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
}

void run_killer_client(const Options& opt, int client, ClientResult& out) {
  ClientSock sock;
  if (!connect_client(sock, opt)) {
    ++out.failures;
    return;
  }
  // A full header promising 64 payload bytes, then half of them, then an
  // abortive close (SO_LINGER 0 turns close() into RST where the transport
  // supports it) — the mid-frame kill attack.
  const std::string payload = request_payload(client, 0);
  const std::string frame = encode_frame(payload + std::string(64, ' '));
  const std::size_t partial = frame.size() / 2;
  ++out.sent;
  if (!send_all(sock.fd, frame.data(), partial)) {
    ++out.failures;
    return;
  }
  struct linger hard = {1, 0};
  ::setsockopt(sock.fd, SOL_SOCKET, SO_LINGER, &hard, sizeof hard);
  ++out.replies;  // the "reply" here is the server surviving; probed later
}

void run_garbage_client(const Options& opt, int client, ClientResult& out) {
  ClientSock sock;
  if (!connect_client(sock, opt)) {
    ++out.failures;
    return;
  }
  // 256 seeded pseudo-random bytes that cannot start with the frame magic.
  std::string junk(256, '\0');
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < junk.size(); ++i) {
    if (i % 8 == 0)
      word = dsmt::service::mix64(opt.seed ^
                                  (static_cast<std::uint64_t>(client) << 32) ^
                                  (i / 8));
    junk[i] = static_cast<char>((word >> ((i % 8) * 8)) & 0xff);
  }
  if (static_cast<unsigned char>(junk[0]) == 'D') junk[0] = '\x7f';
  ++out.sent;
  if (!send_all(sock.fd, junk.data(), junk.size())) {
    ++out.failures;
    return;
  }
  // The server owes exactly one well-formed kInvalidInput frame, then EOF.
  std::string payload;
  if (!recv_frame(sock.fd, payload)) {
    ++out.failures;
    return;
  }
  try {
    const dsmt::report::Json doc = dsmt::report::Json::parse(payload);
    const dsmt::report::Json* status = doc.find("status");
    if (status == nullptr || !status->is_string() ||
        status->as_string() != "invalid-input") {
      ++out.failures;
      return;
    }
  } catch (const std::exception&) {
    ++out.failures;
    return;
  }
  char extra;
  const long n = ::recv(sock.fd, &extra, 1, 0);  // EOF expected
  if (n != 0) {
    ++out.failures;
    return;
  }
  ++out.replies;
}

/// One of four fixed poison identities. The id carries the "poison"
/// substring the server's --crash-faults arm keys on, and the parameters
/// are fixed per identity so every client hits the same canonical request
/// hash — two crashes anywhere in the storm quarantine it fleet-wide.
std::string poison_payload(int which) {
  dsmt::service::Request req;
  req.id = "poison-" + std::to_string(which % 4);
  req.kind = dsmt::service::RequestKind::kSelfConsistent;
  req.duty_cycle = 0.30;
  return dsmt::service::request_to_json(req).dump(-1);
}

/// The crash-storm client: a deterministic interleave of poison and clean
/// requests, each owed exactly one well-formed reply. Clean (survivor)
/// lanes must answer "ok" and feed the main latency percentiles; poison
/// lanes may answer anything well-formed ("worker-crashed" while crashing,
/// "ok" once quarantined onto the analytic rung) and are timed separately.
void run_crash_storm_client(const Options& opt, int client,
                            ClientResult& out) {
  ClientSock sock;
  if (!connect_client(sock, opt)) {
    ++out.failures;
    return;
  }
  const int stride =
      opt.poison_percent >= 100
          ? 1
          : (opt.poison_percent > 0 ? 100 / opt.poison_percent
                                    : opt.requests + 1);
  std::string payload;
  for (int i = 0; i < opt.requests; ++i) {
    const bool poison = stride <= opt.requests && i % stride == 0;
    const std::string expect_id =
        poison ? "poison-" + std::to_string((i / stride) % 4)
               : "load-" + std::to_string(client) + "-" + std::to_string(i);
    const std::string frame = encode_frame(
        poison ? poison_payload((i / stride) % 4)
               : request_payload(client, i));
    const auto start = std::chrono::steady_clock::now();
    ++out.sent;
    if (poison) ++out.poison_sent;
    if (!send_all(sock.fd, frame.data(), frame.size()) ||
        !recv_frame(sock.fd, payload)) {
      ++out.failures;
      return;
    }
    const auto stop = std::chrono::steady_clock::now();
    std::string status;
    try {
      const dsmt::report::Json doc = dsmt::report::Json::parse(payload);
      const dsmt::report::Json* id = doc.find("id");
      const dsmt::report::Json* status_node = doc.find("status");
      if (id == nullptr || !id->is_string() ||
          id->as_string() != expect_id || status_node == nullptr ||
          !status_node->is_string()) {
        ++out.failures;
        return;
      }
      status = status_node->as_string();
    } catch (const std::exception&) {
      ++out.failures;
      return;
    }
    ++out.replies;
    if (status == "ok")
      ++out.status_ok;
    else if (status == "worker-crashed")
      ++out.status_crashed;
    else
      ++out.status_other;
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (poison) {
      out.poison_latency_ms.push_back(ms);
    } else {
      out.latency_ms.push_back(ms);
      // A clean lane that does not answer "ok" means crash containment
      // leaked into innocent traffic — the one thing the storm exists to
      // disprove.
      if (status != "ok") ++out.failures;
    }
  }
}

/// The cache-storm request stream: the SAME ids and parameters for every
/// client, so C clients asking request i concurrently stampede one cache
/// key. Ids are client-independent on purpose — replies can then be
/// compared byte-for-byte across clients.
std::string storm_payload(int index) {
  dsmt::service::Request req;
  req.id = "storm-" + std::to_string(index);
  req.kind = dsmt::service::RequestKind::kSelfConsistent;
  req.duty_cycle = 0.05 + 0.01 * static_cast<double>(index % 40);
  return dsmt::service::request_to_json(req).dump(-1);
}

/// The cache-storm client: every reply must be well-formed and "ok", and
/// the raw payload bytes are kept so main() can assert that client k's
/// reply i equals client 0's reply i — the wire-level proof that cache
/// hits, coalesced hits, and cold solves are indistinguishable.
void run_cache_storm_client(const Options& opt, int client,
                            ClientResult& out) {
  ClientSock sock;
  if (!connect_client(sock, opt)) {
    ++out.failures;
    return;
  }
  (void)client;
  std::string payload;
  for (int i = 0; i < opt.requests; ++i) {
    const std::string frame = encode_frame(storm_payload(i));
    const auto start = std::chrono::steady_clock::now();
    ++out.sent;
    if (!send_all(sock.fd, frame.data(), frame.size()) ||
        !recv_frame(sock.fd, payload)) {
      ++out.failures;
      return;
    }
    const auto stop = std::chrono::steady_clock::now();
    try {
      const dsmt::report::Json doc = dsmt::report::Json::parse(payload);
      const dsmt::report::Json* id = doc.find("id");
      const dsmt::report::Json* status = doc.find("status");
      if (id == nullptr || !id->is_string() ||
          id->as_string() != "storm-" + std::to_string(i) ||
          status == nullptr || !status->is_string() ||
          status->as_string() != "ok") {
        ++out.failures;
        return;
      }
    } catch (const std::exception&) {
      ++out.failures;
      return;
    }
    ++out.replies;
    out.reply_bytes.push_back(payload);
    out.latency_ms.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
}

/// The bitflip drill: --flips seeded single-bit flips applied in place to
/// --file. No socket involved — this corrupts a cache segment between
/// server runs so the recovery path (checksum quarantine, torn-tail
/// truncation) can be exercised by the next start-up. Returns the process
/// exit code.
int run_bitflip(const Options& opt) {
  std::FILE* f = std::fopen(opt.file.c_str(), "r+b");
  if (f == nullptr) {
    print_error("bitflip: cannot open " + opt.file);
    return 1;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size <= 0) {
    print_error("bitflip: " + opt.file + " is empty");
    std::fclose(f);
    return 1;
  }
  for (int k = 0; k < opt.flips; ++k) {
    // Two independent seeded draws per flip: byte position and bit index.
    const std::uint64_t pos_draw = dsmt::service::mix64(
        opt.seed ^ (static_cast<std::uint64_t>(k) * 2 + 1));
    const std::uint64_t bit_draw = dsmt::service::mix64(
        opt.seed ^ (static_cast<std::uint64_t>(k) * 2 + 2));
    const long pos =
        static_cast<long>(pos_draw % static_cast<std::uint64_t>(size));
    std::fseek(f, pos, SEEK_SET);
    const int byte = std::fgetc(f);
    if (byte == EOF) {
      print_error("bitflip: short read at offset " + std::to_string(pos));
      std::fclose(f);
      return 1;
    }
    std::fseek(f, pos, SEEK_SET);
    if (std::fputc(byte ^ (1 << (bit_draw % 8)), f) == EOF) {
      print_error("bitflip: write failed at offset " + std::to_string(pos));
      std::fclose(f);
      return 1;
    }
  }
  if (std::fflush(f) != 0 || std::fclose(f) != 0) {
    print_error("bitflip: flush failed");
    return 1;
  }
  if (opt.json) {
    using dsmt::report::Json;
    Json root = Json::object();
    root.set("tool", Json::string("dsmt_loadgen"))
        .set("mode", Json::string("bitflip"))
        .set("file", Json::string(opt.file))
        .set("bytes", Json::integer(static_cast<long long>(size)))
        .set("flips", Json::integer(opt.flips))
        .set("seed", Json::integer(static_cast<long long>(opt.seed)));
    std::printf("%s\n", root.dump(2).c_str());
  } else {
    std::printf("mode=bitflip file=%s bytes=%ld flips=%d seed=%llu\n",
                opt.file.c_str(), size, opt.flips,
                static_cast<unsigned long long>(opt.seed));
  }
  return 0;
}

/// Post-attack health check: one framed request must still round-trip.
bool probe(const Options& opt) {
  ClientSock sock;
  if (!connect_client(sock, opt)) return false;
  const std::string frame = encode_frame(request_payload(9999, 0));
  std::string payload;
  if (!send_all(sock.fd, frame.data(), frame.size()) ||
      !recv_frame(sock.fd, payload))
    return false;
  try {
    const dsmt::report::Json doc = dsmt::report::Json::parse(payload);
    const dsmt::report::Json* status = doc.find("status");
    return status != nullptr && status->is_string();
  } catch (const std::exception&) {
    return false;
  }
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        print_error(std::string(flag) + " requires a value");
        usage(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") usage(0);
    else if (arg == "--connect") opt.socket_path = value("--connect");
    else if (arg == "--tcp") {
      opt.use_tcp = true;
      opt.port = static_cast<std::uint16_t>(std::stoi(value("--tcp")));
    } else if (arg == "--mode") opt.mode = value("--mode");
    else if (arg == "--crash-storm") opt.mode = "crash-storm";
    else if (arg == "--clients") opt.clients = std::stoi(value("--clients"));
    else if (arg == "--requests") opt.requests = std::stoi(value("--requests"));
    else if (arg == "--poison-percent")
      opt.poison_percent = std::stoi(value("--poison-percent"));
    else if (arg == "--file") opt.file = value("--file");
    else if (arg == "--flips") opt.flips = std::stoi(value("--flips"));
    else if (arg == "--seed") opt.seed = std::stoull(value("--seed"));
    else if (arg == "--json") opt.json = true;
    else {
      print_error("unknown argument: " + arg);
      usage(2);
    }
  }
  if (opt.mode != "normal" && opt.mode != "kill-midframe" &&
      opt.mode != "garbage" && opt.mode != "crash-storm" &&
      opt.mode != "cache-storm" && opt.mode != "bitflip") {
    print_error("unknown mode: " + opt.mode);
    usage(2);
  }
  // bitflip is socket-free: it needs a --file, not a transport.
  if (opt.mode == "bitflip") {
    if (opt.file.empty()) {
      print_error("--mode bitflip requires --file");
      usage(2);
    }
    if (opt.flips < 1) {
      print_error("--flips must be >= 1");
      usage(2);
    }
    return run_bitflip(opt);
  }
  if ((opt.socket_path.empty() && !opt.use_tcp) ||
      (!opt.socket_path.empty() && opt.use_tcp)) {
    print_error("exactly one of --connect or --tcp is required");
    usage(2);
  }
  if (opt.clients < 1 || opt.requests < 1) {
    print_error("--clients and --requests must be >= 1");
    usage(2);
  }
  if (opt.poison_percent < 1 || opt.poison_percent > 100) {
    print_error("--poison-percent must be in [1, 100]");
    usage(2);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<ClientResult> results(static_cast<std::size_t>(opt.clients));
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (int c = 0; c < opt.clients; ++c) {
    ClientResult& slot = results[static_cast<std::size_t>(c)];
    threads.emplace_back([&opt, c, &slot] {
      if (opt.mode == "normal") run_normal_client(opt, c, slot);
      else if (opt.mode == "kill-midframe") run_killer_client(opt, c, slot);
      else if (opt.mode == "crash-storm") run_crash_storm_client(opt, c, slot);
      else if (opt.mode == "cache-storm") run_cache_storm_client(opt, c, slot);
      else run_garbage_client(opt, c, slot);
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  ClientResult total;
  std::vector<double> latencies;
  std::vector<double> poison_latencies;
  for (const ClientResult& r : results) {
    total.sent += r.sent;
    total.replies += r.replies;
    total.failures += r.failures;
    total.poison_sent += r.poison_sent;
    total.status_ok += r.status_ok;
    total.status_crashed += r.status_crashed;
    total.status_other += r.status_other;
    latencies.insert(latencies.end(), r.latency_ms.begin(),
                     r.latency_ms.end());
    poison_latencies.insert(poison_latencies.end(),
                            r.poison_latency_ms.begin(),
                            r.poison_latency_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  std::sort(poison_latencies.begin(), poison_latencies.end());

  // cache-storm: reply i must be byte-identical across every client — the
  // wire-level proof that hits, coalesced hits, and cold solves are
  // indistinguishable.
  int byte_mismatches = 0;
  if (opt.mode == "cache-storm" && !results.empty()) {
    const std::vector<std::string>& reference = results[0].reply_bytes;
    for (std::size_t c = 1; c < results.size(); ++c) {
      const std::vector<std::string>& mine = results[c].reply_bytes;
      const std::size_t n = std::min(reference.size(), mine.size());
      for (std::size_t i = 0; i < n; ++i)
        if (mine[i] != reference[i]) ++byte_mismatches;
    }
  }

  // Attack modes must leave the server serving; normal mode must get every
  // reply it asked for. The crash storm demands both: every request
  // (poison included) answered exactly once, clean lanes "ok", and the
  // server still serving afterwards. The cache storm additionally demands
  // cross-client byte identity.
  bool healthy = total.failures == 0;
  if (opt.mode != "normal") healthy = healthy && probe(opt);
  if (opt.mode == "crash-storm")
    healthy = healthy && total.replies == total.sent;
  if (opt.mode == "cache-storm")
    healthy = healthy && total.replies == total.sent && byte_mismatches == 0;

  using dsmt::report::Json;
  Json latency = Json::object();
  latency.set("p50_ms", Json::number(percentile(latencies, 0.50)))
      .set("p90_ms", Json::number(percentile(latencies, 0.90)))
      .set("p99_ms", Json::number(percentile(latencies, 0.99)))
      .set("max_ms", Json::number(latencies.empty() ? 0.0 : latencies.back()))
      .set("samples", Json::integer(static_cast<long long>(latencies.size())));
  Json root = Json::object();
  root.set("tool", Json::string("dsmt_loadgen"))
      .set("mode", Json::string(opt.mode))
      .set("clients", Json::integer(opt.clients))
      .set("requests_per_client", Json::integer(opt.requests))
      .set("sent", Json::integer(total.sent))
      .set("replies", Json::integer(total.replies))
      .set("failures", Json::integer(total.failures))
      .set("wall_s", Json::number(wall_s))
      .set("rps", Json::number(wall_s > 0.0
                                   ? static_cast<double>(total.replies) / wall_s
                                   : 0.0))
      .set("latency", std::move(latency))
      .set("healthy", Json::boolean(healthy));
  if (opt.mode == "crash-storm") {
    Json statuses = Json::object();
    statuses.set("ok", Json::integer(total.status_ok))
        .set("worker_crashed", Json::integer(total.status_crashed))
        .set("other", Json::integer(total.status_other));
    Json poison = Json::object();
    poison.set("p50_ms", Json::number(percentile(poison_latencies, 0.50)))
        .set("p99_ms", Json::number(percentile(poison_latencies, 0.99)))
        .set("samples",
             Json::integer(static_cast<long long>(poison_latencies.size())));
    root.set("poison_percent", Json::integer(opt.poison_percent))
        .set("poison_sent", Json::integer(total.poison_sent))
        .set("statuses", std::move(statuses))
        .set("poison_latency", std::move(poison));
  }
  if (opt.mode == "cache-storm") {
    root.set("byte_mismatches", Json::integer(byte_mismatches))
        .set("byte_identical", Json::boolean(byte_mismatches == 0));
  }

  if (opt.json) {
    std::printf("%s\n", root.dump(2).c_str());
  } else if (opt.mode == "cache-storm") {
    std::printf(
        "mode=%s clients=%d sent=%d replies=%d failures=%d mismatches=%d "
        "wall=%.3fs p50=%.2fms p99=%.2fms healthy=%s\n",
        opt.mode.c_str(), opt.clients, total.sent, total.replies,
        total.failures, byte_mismatches, wall_s, percentile(latencies, 0.50),
        percentile(latencies, 0.99), healthy ? "yes" : "no");
  } else if (opt.mode == "crash-storm") {
    std::printf(
        "mode=%s clients=%d sent=%d (poison=%d) replies=%d failures=%d "
        "ok=%d crashed=%d other=%d wall=%.3fs survivor_p50=%.2fms "
        "survivor_p99=%.2fms healthy=%s\n",
        opt.mode.c_str(), opt.clients, total.sent, total.poison_sent,
        total.replies, total.failures, total.status_ok, total.status_crashed,
        total.status_other, wall_s, percentile(latencies, 0.50),
        percentile(latencies, 0.99), healthy ? "yes" : "no");
  } else {
    std::printf("mode=%s clients=%d sent=%d replies=%d failures=%d "
                "wall=%.3fs p50=%.2fms p99=%.2fms healthy=%s\n",
                opt.mode.c_str(), opt.clients, total.sent, total.replies,
                total.failures, wall_s, percentile(latencies, 0.50),
                percentile(latencies, 0.99), healthy ? "yes" : "no");
  }
  return healthy ? 0 : 1;
}
