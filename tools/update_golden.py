#!/usr/bin/env python3
"""Regenerates the golden snapshots in tests/golden/.

Builds the dsmt_golden_gen target (in an existing build tree, configuring
one if necessary) and runs it with tests/golden/ as the output directory.
The generator and the regression test share tests/golden_cases.h, so what
this script writes is exactly what tests/test_golden_regression.cpp checks.

Run it when a change is *supposed* to move the numbers, then review the
CSV diff like code — it is the numeric impact of the change. Never edit
the snapshots by hand.

The generator writes into a staging directory first and the results are
published with os.replace(), so an interrupted regeneration (ctrl-C,
OOM-kill, generator crash) leaves tests/golden/ exactly as it was — the
same whole-file-or-nothing contract the library's own emitters follow via
core/atomic_file.

Usage: update_golden.py [--build-dir build] [--jobs N]
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def run(cmd: list[str], **kwargs) -> None:
    print("+ " + " ".join(cmd))
    subprocess.run(cmd, check=True, **kwargs)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build",
                    help="CMake build tree (configured if missing)")
    ap.add_argument("--jobs", type=int, default=0,
                    help="parallel build jobs (0 = CMake default)")
    args = ap.parse_args()

    build_dir = (REPO_ROOT / args.build_dir).resolve()
    if not (build_dir / "CMakeCache.txt").exists():
        run(["cmake", "-S", str(REPO_ROOT), "-B", str(build_dir)])

    build_cmd = ["cmake", "--build", str(build_dir), "--target",
                 "dsmt_golden_gen"]
    if args.jobs > 0:
        build_cmd += ["-j", str(args.jobs)]
    run(build_cmd)

    golden_dir = REPO_ROOT / "tests" / "golden"
    golden_dir.mkdir(parents=True, exist_ok=True)
    gen = build_dir / "tests" / "dsmt_golden_gen"
    if not gen.exists():
        print(f"update_golden: generator not found at {gen}", file=sys.stderr)
        return 1
    # Stage in a sibling temp dir (same filesystem, so os.replace is atomic),
    # then publish each snapshot only after the generator finished cleanly.
    with tempfile.TemporaryDirectory(dir=golden_dir.parent,
                                     prefix="golden.stage.") as stage:
        run([str(gen), stage])
        for staged in sorted(pathlib.Path(stage).iterdir()):
            staged.replace(golden_dir / staged.name)
            print(f"published {golden_dir / staged.name}")
    print("update_golden: done — review `git diff tests/golden/` before "
          "committing")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except subprocess.CalledProcessError as e:
        print(f"update_golden: command failed with exit {e.returncode}",
              file=sys.stderr)
        sys.exit(e.returncode)
