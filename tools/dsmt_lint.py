#!/usr/bin/env python3
"""Physics-aware lint gate for the dsmt library sources.

Rules (library code under src/ only — tests/bench/examples are exempt):

  R1 unit-tag     Exported function declarations in headers must not take
                  raw `double` parameters unless the parameter is documented
                  with a `[unit]` tag (e.g. [1], [K], [s], [m], [W/(m*K)])
                  in a doc comment within the preceding lines, or on the
                  same line. Strong types from core/units.h need no tag.
  R2 no-stdio     Library code must not write to std::cout / std::cerr or
                  call printf: the library computes, callers report.
  R3 constants    Physical-constant literals (273.15, Boltzmann, elementary
                  charge, vacuum permittivity, ...) may appear only in
                  core/units.h — everywhere else use the named constant.
  R4 pragma-once  Every header must start its preprocessor life with
                  `#pragma once`.
  R5 converged-check  `.converged` may be written anywhere but read only
                  inside the status layer (core/status, numeric/roots,
                  numeric/sparse, numeric/fault_injection): call sites must
                  go through .ok() / the SolverDiag chain so failures carry
                  their StatusCode instead of collapsing to a bare bool.
  R6 no-raw-thread  `std::thread` / `std::jthread` / `std::async` may appear
                  only under src/parallel/ — everywhere else must go through
                  parallel::parallel_for / parallel_map so the determinism
                  contract (static partitioning, ordered reduction, first-
                  error propagation) cannot be bypassed.
  R7 wall-clock   Wall-clock reads (`std::chrono::system_clock`, `time()`,
                  `std::time()`) are banned from src/: deadlines and
                  timeouts must use std::chrono::steady_clock via
                  core::RunContext, so an NTP step can neither expire nor
                  extend a run budget. Method calls like `res.time()` are
                  not wall-clock reads and do not fire.
  R8 service-io   src/service/ is the hardened request path: file I/O
                  (fstream, fopen, FILE*, freopen, std::getline) and
                  unbounded node-based queues (std::deque, std::queue,
                  std::list) are banned there. The service reads requests
                  its caller already parsed and holds bursts in
                  fixed-capacity index-addressed vectors; a file handle or
                  a growable queue on that path is exactly how overload
                  stops being explicit shedding and becomes OOM.
  R9 lock-vocabulary  The annotated concurrent subsystems (src/parallel/,
                  src/service/, core/signoff, core/run_context,
                  core/checkpoint, numeric/fault_injection) must use the
                  capability-annotated dsmt::Mutex / dsmt::MutexLock /
                  dsmt::CondVar from core/thread_annotations.h. Raw
                  std::mutex / std::lock_guard / std::unique_lock /
                  std::condition_variable there silently opt shared state
                  out of Clang's -Wthread-safety analysis.
                  core/thread_annotations.h itself is the one sanctioned
                  home of the raw types (it wraps them).
  R10 guarded-state  (heuristic) In the same subsystems, a mutable global
                  (g_-prefixed, by repo convention) or a primitive/container
                  class member (trailing-underscore name) must be
                  std::atomic, DSMT_GUARDED_BY-annotated, const/constexpr,
                  thread_local, a capability type (Mutex/CondVar), or carry
                  an explicit `R10-ok:` justification comment on or just
                  above its declaration. Worker threads reach all of these
                  subsystems; unprotected mutable state there is a data
                  race waiting for a scheduler seed.
  R11 net-syscalls  src/net/ is the sole home of raw socket/fd syscalls
                  (read/write/recv/send/accept/poll/socket/bind/...):
                  everywhere else in src/ must go through the net::
                  wrappers, so the EINTR/EAGAIN/SIGPIPE disciplines cannot
                  be bypassed. Inside src/net/, every interruptible data
                  syscall site must visibly handle EINTR (the token must
                  appear within 8 lines of the call). Member calls
                  (`decoder_.next(...)`, `ctx.poll()`) and nullary accessor
                  declarations (`StatusCode poll() const`) do not fire.
                  tests/, tools/, and examples/ are exempt, like all rules.
  R12 hot-path-solver  The many-instance hot paths (selfconsistent/sweep.cpp,
                  core/variation.cpp, src/service/) must solve Eq. 13
                  through the batch API (solve_batch / solve_one,
                  selfconsistent/batch.h): a raw scalar
                  `selfconsistent::solve(` or `numeric::brent_robust(` call
                  there quietly reverts the path to one-Brent-per-lane and
                  falls off the committed BENCH_* perf trajectory.
                  selfconsistent/solver.cpp is the exempt home — it IS the
                  scalar chain the batch API transcribes. Look-alikes
                  (`solve_one(`, `solve_batch(`, `resolve(`, member
                  `.solve(`) do not fire.
  R14 cache-primitives  src/cache/ is the sole home of cache-file I/O and
                  checksum primitives. (a) The FNV-1a constants (offset
                  bases and prime, decimal or hex) may be spelled only in
                  cache/fnv.h — everywhere else calls cache::fnv1a, so a
                  typo'd prime cannot silently fork the hash that segment
                  checksums, shard routing, and quarantine keys agree on.
                  core/checkpoint.{h,cpp} are exempt: the core layer cannot
                  depend on cache/ and its config-hash predates the cache.
                  (b) The segment primitives (core::AppendLog,
                  truncate_file_to, the "DSC1" magic) may appear only under
                  src/cache/ and in core/atomic_file.{h,cpp}, their
                  implementation home — durable cache I/O goes through
                  cache/segment.h so the recovery/quarantine policy cannot
                  be re-implemented ad hoc. tests/, tools/, and examples/
                  are exempt, like all rules.
  R13 process-syscalls  src/supervise/ is the sole home of child-process
                  management syscalls (fork/vfork/exec*/waitpid/wait4/
                  socketpair/setrlimit/kill/_exit): everywhere else in src/
                  must go through supervise::WorkerPool, so crash
                  containment — reap-and-classify, restart backoff, poison
                  quarantine — cannot be re-implemented ad hoc around it.
                  Member calls (`worker.kill(`), suffixed identifiers
                  (`forked(`, `task_kill(`), and nullary unqualified
                  declarations do not fire. tests/, tools/, and examples/
                  are exempt, like all rules.

Exit status 0 when clean, 1 when any violation is found.

Usage: dsmt_lint.py [--root DIR] [--self-test]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Files that define the constants / unit vocabulary and are allowed to spell
# the raw literals.
CONSTANT_HOMES = {"core/units.h", "core/units.cpp", "numeric/constants.h"}

# Physical constants that must be referenced by name, with enough context to
# not fire on arbitrary numerics (regexes anchored on the literal).
PHYSICAL_CONSTANTS = [
    (re.compile(r"\b273\.15\b"), "celsius offset (use kCelsiusOffset)"),
    (re.compile(r"\b373\.15\b"), "reference temperature (use kTrefK)"),
    (re.compile(r"\b1\.380649e-23\b"), "Boltzmann constant (use kBoltzmannJ)"),
    (re.compile(r"\b8\.617333262(?:e-5|e-05)\b"),
     "Boltzmann constant in eV (use kBoltzmannEv)"),
    (re.compile(r"\b1\.602176634e-19\b"),
     "elementary charge (use kElementaryCharge)"),
    (re.compile(r"\b8\.8541878128e-12\b"),
     "vacuum permittivity (use kEpsilon0)"),
]

STDIO_RE = re.compile(r"std::cout\b|std::cerr\b|(?<![\w:])printf\s*\(")

# Files that implement the failure-status layer and are allowed to read the
# raw `.converged` flag; everyone else must use .ok() / SolverDiag.
CONVERGED_HOMES = {
    "core/status.h", "core/status.cpp",
    "numeric/fault_injection.h", "numeric/fault_injection.cpp",
    "numeric/roots.cpp", "numeric/sparse.cpp",
    # The checkpoint slot codec round-trips the flag verbatim (serialization,
    # not a convergence branch).
    "selfconsistent/sweep.cpp",
}

# A `.converged` occurrence that is not a plain assignment (writes stay
# legal everywhere: kernels populate the flag, they just may not branch
# on it outside the status layer).
CONVERGED_READ_RE = re.compile(r"\.converged\b(?!\s*=(?!=))")

# The only directory allowed to create threads; everyone else uses the
# deterministic fan-out layer it exports.
THREAD_HOME_PREFIX = "parallel/"

RAW_THREAD_RE = re.compile(r"std::(?:jthread|thread|async)\b")

# Wall-clock reads. The bare `time(` alternative must not match member or
# suffixed calls (`res.time()`, `->time()`, `crossing_time(`), hence the
# lookbehind, and must not match nullary accessor declarations (`time()
# const`), hence the required argument — C's time() always takes one.
# `std::time(` needs its own alternative because the lookbehind would
# otherwise reject the qualifying `::`.
WALL_CLOCK_RE = re.compile(
    r"std::chrono::system_clock\b|std::time\s*\(|"
    r"(?<![\w.:>])time\s*\(\s*[^)\s]")

# The hardened request path: no file I/O, no unbounded queue containers.
SERVICE_PREFIX = "service/"

# File-I/O vocabulary. `FILE` needs the word boundary so `ProFILE` stays
# legal; std::getline is the istream reader, never needed on the service
# path (requests arrive as parsed Json).
SERVICE_FILE_IO_RE = re.compile(
    r"std::(?:[io]?fstream|getline)\b|(?<![\w:])(?:fopen|freopen)\s*\(|"
    r"(?<![\w:])FILE\s*\*")

# Node-based growable containers whose per-element allocation makes queue
# growth invisible until the allocator fails: bursts must live in
# fixed-capacity vectors sized by admission control.
SERVICE_UNBOUNDED_RE = re.compile(r"std::(?:deque|queue|list)\s*<")

# The annotated concurrent subsystems: every file here is expected to use
# the capability-annotated lock vocabulary (R9) and to protect its mutable
# state visibly (R10). core/thread_annotations.h is the single sanctioned
# home of the raw std types — it is what wraps them.
CONCURRENCY_FENCE_PREFIXES = ("parallel/", "service/", "net/", "supervise/",
                              "cache/")
CONCURRENCY_FENCE_FILES = {
    "core/signoff.cpp",
    "core/run_context.h", "core/run_context.cpp",
    "core/checkpoint.h", "core/checkpoint.cpp",
    "numeric/fault_injection.h", "numeric/fault_injection.cpp",
}
THREAD_ANNOTATIONS_HOME = "core/thread_annotations.h"

RAW_LOCK_RE = re.compile(
    r"std::(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable(?:_any)?)\b")

# R10 heuristic vocabulary. Primitive and standard-container types whose
# mutation from two threads is a data race; internally synchronized class
# types (CircuitBreaker, ReferenceCache, ...) and smart-pointer handles are
# deliberately not matched — their pointees are judged at their own
# declarations.
R10_TYPES = (
    r"(?:bool|char|short|int|long|unsigned|float|double|size_t|"
    r"std::size_t|std::u?int\d+_t|std::string|std::vector|std::deque|"
    r"std::map|std::unordered_map|std::set|std::unordered_set|std::list|"
    r"std::function|std::optional|std::exception_ptr)")
# Class member: primitive/container type followed (possibly via template
# args) by a trailing-underscore name.
R10_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:static\s+)?" + R10_TYPES +
    r"(?:<[^;]*?>)?[\s*&]+(\w+_)\b")
# Namespace-scope mutable global: any type token followed by a g_ name
# (repo convention). The keyword guard keeps `delete g_pool;` and
# `return g_x;` statements from matching.
R10_GLOBAL_RE = re.compile(
    r"^\s*(?!delete\b|return\b|new\b|throw\b|case\b)"
    r"(?:static\s+)?[\w:]+(?:<[^;]*?>)?[\s*&]+(g_\w+)\b")
# Markers that satisfy R10 when present on the declaration's line span (the
# line, a continuation through ';', or up to two preceding comment lines).
R10_MARKER_RE = re.compile(
    r"std::atomic|DSMT_GUARDED_BY|DSMT_PT_GUARDED_BY|\bconst\b|"
    r"\bconstexpr\b|\bthread_local\b|\bMutex\b|\bCondVar\b|R10-ok:")

# The one directory allowed to make raw socket/fd syscalls (R11); its
# wrappers (net/socket_io.h) enforce the EINTR/EAGAIN/SIGPIPE disciplines.
NET_PREFIX = "net/"
# Files with a sanctioned, self-contained fd discipline of their own that
# R11's outside-net ban does not apply to: the durable-write helper retries
# EINTR at every write and must not route file I/O through socket wrappers.
R11_EXEMPT_FILES = ("core/atomic_file.cpp",)


def _syscall_re(names: str) -> re.Pattern:
    """Raw syscall call sites: either explicitly global-qualified
    (`::read(...)`) or unqualified with at least one argument — the
    argument requirement keeps nullary accessor declarations
    (`StatusCode poll() const`) quiet, and the lookbehind keeps member
    calls (`decoder_.next(`), suffixed names (`read_some(`), and
    std-qualified names (`std::bind(`) quiet."""
    return re.compile(
        r"(?<![\w:])::(?:" + names + r")\s*\(|"
        r"(?<![\w.:>])(?:" + names + r")\s*\(\s*[^)\s]")


# Interruptible data-path syscalls: these can fail EINTR mid-stream, so
# every call site in src/net/ must visibly handle it.
SYSCALL_DATA_NAMES = (
    r"pread|read|pwrite|write|recvfrom|recvmsg|recv|sendto|sendmsg|send|"
    r"accept4|accept|ppoll|poll|connect|close")
# Setup-path syscalls: banned outside src/net/ with the rest, but no EINTR
# discipline demanded at the site (bind/listen/socket do not EINTR).
SYSCALL_SETUP_NAMES = (
    r"socket|bind|listen|setsockopt|getsockname|shutdown|pipe2|pipe")

SYSCALL_ANY_RE = _syscall_re(SYSCALL_DATA_NAMES + r"|" + SYSCALL_SETUP_NAMES)
SYSCALL_DATA_RE = _syscall_re(SYSCALL_DATA_NAMES)
# EINTR handling must be visible within this many lines of the call site.
EINTR_SPAN = 8
EINTR_RE = re.compile(r"\bEINTR\b")

# The many-instance Eq.-13 hot paths (R12): every solver entry there must be
# solve_batch / solve_one so the SoA batch core (and its bench trajectory)
# cannot be silently bypassed. selfconsistent/solver.cpp is the exempt home
# of the scalar chain itself.
R12_HOT_PATH_PREFIXES = ("service/",)
R12_HOT_PATH_FILES = {
    "selfconsistent/sweep.cpp",
    "core/variation.cpp",
}
R12_SOLVER_HOME = "selfconsistent/solver.cpp"

# A raw scalar solver call: `solve(...)` (optionally selfconsistent::
# qualified) or `brent_robust(...)` (optionally numeric:: qualified). The
# lookbehind keeps member calls (`.solve(`), suffixed/prefixed identifiers
# (`resolve(`), and the sanctioned batch entries (`solve_one(`,
# `solve_batch(` — different identifiers entirely) from matching.
R12_SCALAR_SOLVE_RE = re.compile(
    r"(?<![\w.:>])(?:selfconsistent::)?solve\s*\(|"
    r"(?<![\w.:>])(?:numeric::)?brent_robust\s*\(")


def in_r12_hot_path(rel: str) -> bool:
    return rel.startswith(R12_HOT_PATH_PREFIXES) or rel in R12_HOT_PATH_FILES


# The one directory allowed to manage child processes (R13): the supervised
# worker pool owns fork / exec / reap / kill / rlimit rails, so crash
# containment (death classification, seeded restart backoff, poison
# quarantine) lives in exactly one place.
SUPERVISE_PREFIX = "supervise/"
PROCESS_SYSCALL_NAMES = (
    r"vfork|fork|execvpe?|execve?|execl[ep]?|waitpid|waitid|wait4|"
    r"socketpair|setrlimit|kill|_exit")
PROCESS_SYSCALL_RE = _syscall_re(PROCESS_SYSCALL_NAMES)


# The one header allowed to spell the FNV-1a constants (R14a): every
# checksum and content hash in the tree calls cache::fnv1a, so segment
# checksums, shard routing, and quarantine keys agree on one hash and a
# typo'd prime cannot silently fork it. 1469598103934665603 is the frozen
# historical canonical-request basis (PR 9's supervise hash) — changing or
# re-deriving it would orphan every persisted quarantine table and segment.
# core/checkpoint.{h,cpp} keep a private pre-cache copy: the core layer
# cannot depend on cache/, so their config hash is exempt.
FNV_HOME = "cache/fnv.h"
FNV_EXEMPT_FILES = ("core/checkpoint.h", "core/checkpoint.cpp")
FNV_LITERAL_RE = re.compile(
    r"\b(?:14695981039346656037|1469598103934665603|1099511628211)"
    r"[uUlL]*\b|"
    r"0[xX](?:cbf29ce484222325|100000001b3)[uUlL]*\b",
    re.IGNORECASE)

# The segment-file primitives (R14b): the fsync'd append log, the torn-tail
# truncation helper, and the segment magic may appear only under src/cache/
# and in core/atomic_file.{h,cpp}, their implementation home. Durable cache
# I/O goes through cache/segment.h so the recovery/quarantine policy is
# written exactly once.
CACHE_PREFIX = "cache/"
CACHE_IO_EXEMPT_FILES = ("core/atomic_file.h", "core/atomic_file.cpp")
CACHE_IO_RE = re.compile(r"\bAppendLog\b|\btruncate_file_to\b|\"DSC1\"")


# A doc line counts as carrying a unit tag when it contains [...] with a
# plausible unit expression: [1], [K], [s], [A/m^2], [W/(m*K)], [K*m/W], ...
UNIT_TAG_RE = re.compile(r"\[[\w\s./*^()%-]+\]")

# Parameter declared as raw double (not double* / double& / std::function /
# vector<double> — those are data containers, not single physical values).
RAW_DOUBLE_PARAM_RE = re.compile(r"(?<![\w<])double\s+(\w+)\s*[,)=]")


def strip_comments(line: str) -> str:
    return re.sub(r"//.*$", "", line)


def find_decl_params(text: str):
    """Yield (line_no, param_name, context_lines) for raw-double params of
    function declarations at namespace/class scope in a header."""
    lines = text.split("\n")
    depth = 0
    for i, raw in enumerate(lines):
        line = strip_comments(raw)
        # Only consider declaration-ish lines outside function bodies: we
        # track brace depth but allow depth 1-2 (namespace + class).
        open_b = line.count("{")
        close_b = line.count("}")
        if depth <= 3 and "(" in line and "double" in line:
            # Skip control flow and macro lines.
            stripped = line.strip()
            if not stripped.startswith(("if", "for", "while", "switch", "#",
                                        "return", "throw")):
                for m in RAW_DOUBLE_PARAM_RE.finditer(line):
                    context = lines[max(0, i - 6):i + 1]
                    yield i + 1, m.group(1), context
        depth += open_b - close_b


def has_unit_tag(context_lines) -> bool:
    for line in context_lines:
        if ("//" in line or "/*" in line or "*" in line.strip()[:1]) and \
                UNIT_TAG_RE.search(line):
            return True
    # Same-line trailing comment also counts.
    last = context_lines[-1]
    return "//" in last and UNIT_TAG_RE.search(last.split("//", 1)[1]) is not None


def in_concurrency_fence(rel: str) -> bool:
    return (rel.startswith(CONCURRENCY_FENCE_PREFIXES) or
            rel in CONCURRENCY_FENCE_FILES)


def r10_span_has_marker(lines, i: int) -> bool:
    """True when the declaration starting at raw line i carries an R10
    marker on its line span (through the terminating ';', max 3 lines) or in
    the contiguous comment block immediately above it."""
    span = []
    for j in range(i, min(i + 3, len(lines))):
        span.append(lines[j])
        if ";" in lines[j]:
            break
    for j in range(i - 1, max(i - 6, -1), -1):
        s = lines[j].strip()
        if s.startswith("//") or s.startswith("*") or s.startswith("/*"):
            span.append(lines[j])
        else:
            break
    return any(R10_MARKER_RE.search(line) for line in span)


def lint_file(path: pathlib.Path, rel: str, errors: list):
    text = path.read_text(encoding="utf-8")
    lines = text.split("\n")

    is_header = rel.endswith(".h")

    # R4: #pragma once must be the first preprocessor directive.
    if is_header:
        for line in lines:
            s = line.strip()
            if not s or s.startswith("//"):
                continue
            if s != "#pragma once":
                errors.append(f"{rel}:1: [pragma-once] header does not start "
                              f"with '#pragma once'")
            break

    # R2: no stdio in library code.
    for i, raw in enumerate(lines):
        line = strip_comments(raw)
        m = STDIO_RE.search(line)
        if m:
            errors.append(f"{rel}:{i + 1}: [no-stdio] library code writes to "
                          f"stdio ('{m.group(0).strip()}') — return data, "
                          f"let callers report")

    # R3: physical-constant literals only in their home files.
    if rel not in CONSTANT_HOMES:
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            for pat, what in PHYSICAL_CONSTANTS:
                if pat.search(line):
                    errors.append(f"{rel}:{i + 1}: [constants] literal "
                                  f"{what}")

    # R5: `.converged` reads only inside the status layer.
    if rel not in CONVERGED_HOMES:
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            if CONVERGED_READ_RE.search(line):
                errors.append(f"{rel}:{i + 1}: [converged-check] raw "
                              f"'.converged' read outside the status layer — "
                              f"use .ok() or the SolverDiag chain")

    # R6: raw threading primitives only under src/parallel/.
    if not rel.startswith(THREAD_HOME_PREFIX):
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            m = RAW_THREAD_RE.search(line)
            if m:
                errors.append(f"{rel}:{i + 1}: [no-raw-thread] raw "
                              f"'{m.group(0)}' outside src/parallel/ — use "
                              f"parallel::parallel_for / parallel_map to keep "
                              f"results thread-count invariant")

    # R7: no wall-clock reads in library code — monotonic budgets only.
    for i, raw in enumerate(lines):
        line = strip_comments(raw)
        m = WALL_CLOCK_RE.search(line)
        if m:
            errors.append(f"{rel}:{i + 1}: [wall-clock] wall-clock read "
                          f"('{m.group(0).strip()}') — deadlines must use "
                          f"std::chrono::steady_clock (core::RunContext)")

    # R8: src/service/ is the hardened path — no file I/O, no unbounded
    # queues. The batch front end (examples/dsmt_serve.cpp) owns the file
    # handles; admission control owns the memory bound.
    if rel.startswith(SERVICE_PREFIX):
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            m = SERVICE_FILE_IO_RE.search(line)
            if m:
                errors.append(f"{rel}:{i + 1}: [service-io] file I/O "
                              f"('{m.group(0).strip()}') on the hardened "
                              f"service path — parse input at the edge "
                              f"(examples/dsmt_serve.cpp), pass Json in")
            m = SERVICE_UNBOUNDED_RE.search(line)
            if m:
                errors.append(f"{rel}:{i + 1}: [service-io] unbounded queue "
                              f"container ('{m.group(0).strip()}') on the "
                              f"service path — hold bursts in fixed-capacity "
                              f"vectors sized by admission control")

    # R9 + R10: the annotated concurrent subsystems. R9 fences the raw std
    # lock vocabulary out (it is invisible to -Wthread-safety); R10 demands
    # that mutable globals / primitive members there be visibly protected.
    if in_concurrency_fence(rel) and rel != THREAD_ANNOTATIONS_HOME:
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            m = RAW_LOCK_RE.search(line)
            if m:
                errors.append(f"{rel}:{i + 1}: [lock-vocabulary] raw "
                              f"'{m.group(0)}' in an annotated subsystem — "
                              f"use dsmt::Mutex / dsmt::MutexLock / "
                              f"dsmt::CondVar (core/thread_annotations.h) so "
                              f"Clang's -Wthread-safety sees the acquisition")
            decl = R10_MEMBER_RE.match(line) or R10_GLOBAL_RE.match(line)
            if decl and not r10_span_has_marker(lines, i):
                errors.append(f"{rel}:{i + 1}: [guarded-state] mutable state "
                              f"'{decl.group(1)}' in an annotated subsystem "
                              f"is neither std::atomic nor DSMT_GUARDED_BY — "
                              f"annotate it, make it atomic, or justify with "
                              f"an 'R10-ok:' comment above the declaration")

    # R11: raw socket/fd syscalls live in src/net/ only; inside src/net/,
    # every interruptible data syscall visibly handles EINTR nearby.
    if not rel.startswith(NET_PREFIX):
        if rel not in R11_EXEMPT_FILES:
            for i, raw in enumerate(lines):
                line = strip_comments(raw)
                m = SYSCALL_ANY_RE.search(line)
                if m:
                    errors.append(f"{rel}:{i + 1}: [net-syscalls] raw fd "
                                  f"syscall ('{m.group(0).strip()}') outside "
                                  f"src/net/ — go through the net::socket_io "
                                  f"wrappers so the EINTR/EAGAIN/SIGPIPE "
                                  f"disciplines hold")
    else:
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            m = SYSCALL_DATA_RE.search(line)
            if not m:
                continue
            lo = max(0, i - EINTR_SPAN)
            hi = min(len(lines), i + EINTR_SPAN + 1)
            if not any(EINTR_RE.search(lines[j]) for j in range(lo, hi)):
                errors.append(f"{rel}:{i + 1}: [net-syscalls] interruptible "
                              f"syscall ('{m.group(0).strip()}') with no "
                              f"visible EINTR handling within {EINTR_SPAN} "
                              f"lines — retry the call (or document why the "
                              f"interrupt cannot occur) at the site")

    # R12: the many-instance hot paths solve Eq. 13 through the batch API
    # only; the scalar chain lives in selfconsistent/solver.cpp.
    if in_r12_hot_path(rel) and rel != R12_SOLVER_HOME:
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            m = R12_SCALAR_SOLVE_RE.search(line)
            if m:
                errors.append(f"{rel}:{i + 1}: [hot-path-solver] raw scalar "
                              f"solver call ('{m.group(0).strip()}') on a "
                              f"many-instance hot path — go through "
                              f"selfconsistent::solve_batch / solve_one "
                              f"(selfconsistent/batch.h) so the SoA batch "
                              f"core cannot be bypassed")

    # R13: child-process management syscalls live in src/supervise/ only —
    # the worker pool is the single owner of fork/reap/kill/rlimit, so
    # crash containment cannot be re-implemented ad hoc around it.
    if not rel.startswith(SUPERVISE_PREFIX):
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            m = PROCESS_SYSCALL_RE.search(line)
            if m:
                errors.append(f"{rel}:{i + 1}: [process-syscalls] raw "
                              f"process syscall ('{m.group(0).strip()}') "
                              f"outside src/supervise/ — child processes are "
                              f"owned by supervise::WorkerPool (fork, reap, "
                              f"kill, rlimit rails) so crash containment "
                              f"stays in one place")

    # R14: cache-file I/O and checksum primitives are fenced into
    # src/cache/. (a) The FNV-1a constants may be spelled only in
    # cache/fnv.h (core/checkpoint's private pre-cache copy is exempt);
    # everyone else calls cache::fnv1a. (b) The segment append/truncate
    # primitives and the segment magic live under src/cache/ and in their
    # implementation home core/atomic_file.{h,cpp}.
    if rel != FNV_HOME and rel not in FNV_EXEMPT_FILES:
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            m = FNV_LITERAL_RE.search(line)
            if m:
                errors.append(f"{rel}:{i + 1}: [cache-primitives] FNV-1a "
                              f"constant '{m.group(0).strip()}' spelled "
                              f"outside cache/fnv.h — call cache::fnv1a so "
                              f"segment checksums, shard routing, and "
                              f"quarantine keys stay on one hash")
    if not rel.startswith(CACHE_PREFIX) and rel not in CACHE_IO_EXEMPT_FILES:
        for i, raw in enumerate(lines):
            line = strip_comments(raw)
            m = CACHE_IO_RE.search(line)
            if m:
                errors.append(f"{rel}:{i + 1}: [cache-primitives] cache "
                              f"segment primitive ('{m.group(0).strip()}') "
                              f"outside src/cache/ — durable cache I/O goes "
                              f"through cache/segment.h + core/atomic_file "
                              f"so recovery and checksum policy are written "
                              f"once")

    # R1: raw double params in exported header decls need a [unit] doc tag.
    # core/units.h is the unit vocabulary itself: its factory helpers and
    # scalar operators are exactly the sanctioned raw-double boundary.
    if is_header and rel not in CONSTANT_HOMES:
        for line_no, name, context in find_decl_params(text):
            if not has_unit_tag(context):
                errors.append(
                    f"{rel}:{line_no}: [unit-tag] raw double parameter "
                    f"'{name}' lacks a [unit] doc tag — use a strong type "
                    f"from core/units.h or document the unit")


def run(root: pathlib.Path) -> int:
    src = root / "src"
    # A missing tree must not read as "clean": a typo'd --root in CI would
    # otherwise pass the gate vacuously.
    if not src.is_dir():
        print(f"dsmt_lint: error: no src/ directory under {root}",
              file=sys.stderr)
        return 2
    errors: list[str] = []
    for path in sorted(src.rglob("*.h")) + sorted(src.rglob("*.cpp")):
        rel = path.relative_to(src).as_posix()
        lint_file(path, rel, errors)
    for e in errors:
        print(e)
    if errors:
        print(f"\ndsmt_lint: {len(errors)} violation(s)")
        return 1
    print("dsmt_lint: clean")
    return 0


SELF_TEST_BAD_HEADER = """\
#include <cmath>
#pragma once

namespace dsmt {

/// Converts a temperature with no unit documentation anywhere.
double shady_convert(double temperature);

inline double to_kelvin(double t_c) { return t_c + 273.15; }

inline void report(double x) { std::cout << x; }  // [1]

inline bool is_done(const Result& r) { return r.converged; }

inline void race() { std::thread([] {}).join(); }

inline long stamp() { return time(nullptr); }  // [s]

}  // namespace dsmt
"""

SELF_TEST_GOOD_HEADER = """\
// A well-behaved header.
#pragma once

namespace dsmt {

/// Scales a ratio [1] by gain [1].
double scale(double ratio, double gain);

/// Writing the flag is legal everywhere — only reads are fenced in.
inline void mark(Result& r) { r.converged = true; }

/// Member and suffixed calls are not wall-clock reads; steady_clock is the
/// sanctioned clock.
inline double last(const Series& s) { return s.time(); }
inline double tick() { return crossing_time(1.0); }

}  // namespace dsmt
"""


SELF_TEST_BAD_SERVICE = """\
// Everything R8 bans, in one service file.
#pragma once

#include <deque>
#include <fstream>
#include <queue>

namespace dsmt::service {

inline void spool(const Request& r) {
  std::ofstream out("spool.json");          // file I/O on the hot path
  FILE* raw = nullptr;
  raw = fopen("spool.bin", "wb");
  std::string line;
  std::getline(std::cin, line);
}

inline void buffer(const Request& r) {
  static std::deque<Request> backlog;       // grows until the allocator fails
  static std::queue<Request> pending;
  static std::list<Request> retired;
}

}  // namespace dsmt::service
"""

SELF_TEST_GOOD_SERVICE = """\
// The sanctioned shapes: bounded vectors, profiles, no file handles.
#pragma once

#include <map>
#include <vector>

namespace dsmt::service {

/// Index-addressed burst storage sized by admission control [1].
inline std::vector<Response> hold(std::size_t capacity) {
  std::vector<Response> out;
  out.reserve(capacity);
  return out;
}

/// `ProFILE *` must not trip the FILE* pattern, nor queue_capacity the
/// container one.
inline void shapes(const ProFILE* profile, std::size_t queue_capacity) {}

}  // namespace dsmt::service
"""


SELF_TEST_BAD_CONCURRENCY = """\
// Everything R9/R10 bans, in one fenced file: raw lock vocabulary plus
// unguarded mutable state.
#pragma once

#include <mutex>
#include <vector>

namespace dsmt::parallel {

class Worklist {
 public:
  void push(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(v);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<int> pending_;
  bool draining_ = false;
};

int g_epoch = 0;

}  // namespace dsmt::parallel
"""

SELF_TEST_GOOD_CONCURRENCY = """\
// The sanctioned shapes: annotated vocabulary, visibly protected state.
#pragma once

namespace dsmt::service {

class Tally {
 public:
  void bump() {
    MutexLock lock(mu_);
    ++count_;
  }

 private:
  mutable Mutex mu_;
  std::uint64_t count_ DSMT_GUARDED_BY(mu_) = 0;
  std::atomic<int> fast{0};
  // The marker may sit on a continuation line of the declaration...
  std::map<std::string, int> lookup_
      DSMT_GUARDED_BY(mu_);
  // R10-ok: seeded once in the constructor before the object is shared
  // with workers; never written again.
  std::size_t capacity_ = 0;
  static constexpr int kBurst = 8;
};

}  // namespace dsmt::service
"""

SELF_TEST_BAD_SYSCALL = """\
// Raw fd syscalls in three shapes R11 must catch when the file is outside
// src/net/ — and flag for missing interrupt-retry handling when inside.
#pragma once

namespace dsmt::demo {

inline long pull(int fd, char* buf, unsigned long n) {
  return ::read(fd, buf, n);
}

inline long push(int fd, const char* buf, unsigned long n) {
  return send(fd, buf, n, 0);
}

inline int wait_ready(void* fds, int n, int timeout_ms) {
  return poll(fds, n, timeout_ms);
}

}  // namespace dsmt::demo
"""

SELF_TEST_GOOD_NET = """\
// The sanctioned src/net/ shapes: every interruptible syscall handles
// EINTR visibly, and look-alikes (member calls, nullary accessor
// declarations, suffixed wrapper names) must not fire at all.
#pragma once

namespace dsmt::net {

inline long pull(int fd, char* buf, unsigned long n) {
  for (;;) {
    const long got = ::recv(fd, buf, n, 0);
    if (got >= 0) return got;
    if (errno == EINTR) continue;  // interrupted before any byte: retry
    return -1;
  }
}

class Probe {
 public:
  int poll() const;           // nullary accessor declaration, not poll(2)
  long drain(Decoder& d) {
    return d.read(16);        // member call, not read(2)
  }
  long fill(int fd, char* buf, unsigned long n) {
    return read_some(fd, buf, n);  // suffixed wrapper name, not read(2)
  }
};

}  // namespace dsmt::net
"""

SELF_TEST_BAD_HOTPATH = """\
// Raw scalar solver entries in the three shapes R12 must catch when the
// file sits on a many-instance hot path.
#include "selfconsistent/batch.h"

namespace dsmt::selfconsistent {

void drive(const Problem& p, std::vector<Problem>& ps) {
  auto a = solve(p);                                // bare scalar call
  auto b = selfconsistent::solve(p);                // qualified scalar call
  auto r = numeric::brent_robust([](double t) { return t; }, 0.0, 1.0);
}

}  // namespace dsmt::selfconsistent
"""

SELF_TEST_GOOD_HOTPATH = """\
// The sanctioned hot-path shapes: the batch API, plus every look-alike
// identifier R12 must stay quiet on.
#include "selfconsistent/batch.h"

namespace dsmt::selfconsistent {

void drive(const Problem& p, std::vector<Problem>& ps) {
  auto one = solve_one(p);             // 1-lane adapter: sanctioned
  BatchProblem bp;
  for (const Problem& q : ps) bp.push_back(q);
  auto bs = solve_batch(bp);           // batch entry: sanctioned
  auto x = resolve(p);                 // suffix look-alike, not solve()
  auto y = engine.solve(p);            // member call, not the scalar chain
}

}  // namespace dsmt::selfconsistent
"""

SELF_TEST_BAD_PROCESS = """\
// Raw process-management syscalls in the four shapes R13 must catch when
// the file sits outside src/supervise/.
#pragma once

namespace dsmt::demo {

inline int spawn() {
  return ::fork();
}

inline void reap(int pid) {
  int status = 0;
  waitpid(pid, &status, 0);
  kill(pid, 9);
}

inline bool rail(unsigned long bytes) {
  return setrlimit(9, nullptr) == 0;
}

}  // namespace dsmt::demo
"""

SELF_TEST_GOOD_PROCESS = """\
// Look-alikes R13 must stay quiet on: member calls, suffixed identifiers,
// nullary unqualified declarations, and names embedded in longer words.
#pragma once

namespace dsmt::demo {

class Task {
 public:
  int fork() const;                 // nullary declaration, not fork(2)
  void stop(Worker& worker) {
    worker.kill(SIGTERM);           // member call, not kill(2)
  }
  void purge(const char* name) {
    killall(name);                  // longer identifier, not kill(2)
    task_kill(7);                   // prefixed identifier, not kill(2)
  }
  bool forked(int pid) {            // suffixed identifier, not fork(2)
    return pid > 0;
  }
};

}  // namespace dsmt::demo
"""

SELF_TEST_BAD_CACHE = """\
// FNV-1a constants and segment primitives in the shapes R14 must catch
// when the file sits outside src/cache/.
#pragma once

#include <cstdint>
#include <string>

namespace dsmt::demo {

inline std::uint64_t my_hash(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  h ^= 1469598103934665603ULL;
  return h ^ 0xcbf29ce484222325ULL;
}

inline void rewrite_segment(const std::string& path) {
  core::AppendLog log(path);
  core::truncate_file_to(path, 0);
  log.append("DSC1");
}

}  // namespace dsmt::demo
"""

SELF_TEST_GOOD_CACHE = """\
// Look-alikes R14 must stay quiet on: the sanctioned cache::fnv1a call,
// nearby-but-different numerics, longer/suffixed identifiers, and a
// different file magic.
#pragma once

#include <cstdint>
#include <string>

namespace dsmt::demo {

inline std::uint64_t content_key(const std::string& s) {
  return cache::fnv1a(s);                       // the sanctioned entry point
}

inline std::uint64_t near_misses() {
  const std::uint64_t a = 1099511627776ull;     // 2^40, not the FNV prime
  const std::uint64_t b = 14695981039346656036ull;  // basis off by one
  return a ^ b;
}

class AppendLogger {                            // longer identifier
 public:
  void truncate_file_to_zero();                 // suffixed identifier
  const char* magic() const { return "DSC2"; }  // a different magic
};

}  // namespace dsmt::demo
"""

SELF_TEST_WRAPPER_HOME = """\
// Minimal slice of core/thread_annotations.h: the one sanctioned home of
// the raw std lock types, which it wraps in annotated capabilities.
#pragma once

#include <condition_variable>
#include <mutex>

namespace dsmt {

class Mutex {
 private:
  std::mutex mu_;
};

class CondVar {
 private:
  std::condition_variable cv_;
};

}  // namespace dsmt
"""


def self_test() -> int:
    import tempfile

    with tempfile.TemporaryDirectory() as d:
        root = pathlib.Path(d)
        (root / "src" / "demo").mkdir(parents=True)
        (root / "src" / "service").mkdir(parents=True)
        bad = root / "src" / "demo" / "bad.h"
        bad.write_text(SELF_TEST_BAD_HEADER)
        good = root / "src" / "demo" / "good.h"
        good.write_text(SELF_TEST_GOOD_HEADER)
        bad_svc = root / "src" / "service" / "bad_service.h"
        bad_svc.write_text(SELF_TEST_BAD_SERVICE)
        good_svc = root / "src" / "service" / "good_service.h"
        good_svc.write_text(SELF_TEST_GOOD_SERVICE)
        (root / "src" / "parallel").mkdir(parents=True)
        (root / "src" / "core").mkdir(parents=True)
        bad_conc = root / "src" / "parallel" / "bad_conc.h"
        bad_conc.write_text(SELF_TEST_BAD_CONCURRENCY)
        good_conc = root / "src" / "service" / "good_conc.h"
        good_conc.write_text(SELF_TEST_GOOD_CONCURRENCY)
        wrapper = root / "src" / "core" / "thread_annotations.h"
        wrapper.write_text(SELF_TEST_WRAPPER_HOME)
        (root / "src" / "net").mkdir(parents=True)
        bad_sys = root / "src" / "demo" / "bad_io.h"
        bad_sys.write_text(SELF_TEST_BAD_SYSCALL)
        good_net = root / "src" / "net" / "good_io.h"
        good_net.write_text(SELF_TEST_GOOD_NET)
        (root / "src" / "selfconsistent").mkdir(parents=True)
        bad_hot = root / "src" / "selfconsistent" / "sweep.cpp"
        bad_hot.write_text(SELF_TEST_BAD_HOTPATH)
        good_hot = root / "src" / "service" / "good_hot.cpp"
        good_hot.write_text(SELF_TEST_GOOD_HOTPATH)
        bad_proc = root / "src" / "demo" / "bad_proc.h"
        bad_proc.write_text(SELF_TEST_BAD_PROCESS)
        good_proc = root / "src" / "demo" / "good_proc.h"
        good_proc.write_text(SELF_TEST_GOOD_PROCESS)
        bad_cache = root / "src" / "demo" / "bad_cache.h"
        bad_cache.write_text(SELF_TEST_BAD_CACHE)
        good_cache = root / "src" / "demo" / "good_cache.h"
        good_cache.write_text(SELF_TEST_GOOD_CACHE)

        errors: list[str] = []
        lint_file(bad, "demo/bad.h", errors)
        tags = sorted({re.search(r"\[([\w-]+)\]", e).group(1) for e in errors})
        expect = ["constants", "converged-check", "no-raw-thread", "no-stdio",
                  "pragma-once", "unit-tag", "wall-clock"]
        if tags != expect:
            print(f"self-test FAILED: bad.h raised {tags}, expected {expect}")
            for e in errors:
                print("  " + e)
            return 1

        errors = []
        lint_file(good, "demo/good.h", errors)
        if errors:
            print("self-test FAILED: good.h should be clean:")
            for e in errors:
                print("  " + e)
            return 1

        # R8 fires on every banned shape in a service file...
        errors = []
        lint_file(bad_svc, "service/bad_service.h", errors)
        svc = [e for e in errors if "[service-io]" in e]
        if len(svc) != 7:  # ofstream, fopen, FILE*, getline, deque/queue/list
            print(f"self-test FAILED: bad_service.h raised {len(svc)} "
                  f"service-io violations, expected 7:")
            for e in errors:
                print("  " + e)
            return 1

        # ... stays quiet on the sanctioned shapes ...
        errors = []
        lint_file(good_svc, "service/good_service.h", errors)
        if errors:
            print("self-test FAILED: good_service.h should be clean:")
            for e in errors:
                print("  " + e)
            return 1

        # ... and is scoped to src/service/: the same banned shapes outside
        # the fence raise no service-io violation.
        errors = []
        lint_file(bad_svc, "demo/bad_service.h", errors)
        if any("[service-io]" in e for e in errors):
            print("self-test FAILED: service-io fired outside src/service/")
            return 1

        # R9/R10 fire on every banned shape inside the concurrency fence...
        errors = []
        lint_file(bad_conc, "parallel/bad_conc.h", errors)
        r9 = [e for e in errors if "[lock-vocabulary]" in e]
        r10 = [e for e in errors if "[guarded-state]" in e]
        if len(r9) != 3 or len(r10) != 3:
            print(f"self-test FAILED: bad_conc.h raised {len(r9)} "
                  f"lock-vocabulary + {len(r10)} guarded-state violations, "
                  f"expected 3 + 3:")
            for e in errors:
                print("  " + e)
            return 1

        # ... stay quiet on the annotated shapes (guard on line, guard on a
        # continuation line, atomic, R10-ok comment, constexpr) ...
        errors = []
        lint_file(good_conc, "service/good_conc.h", errors)
        if errors:
            print("self-test FAILED: good_conc.h should be clean:")
            for e in errors:
                print("  " + e)
            return 1

        # ... are scoped to the fence: the same shapes in an unfenced
        # subsystem raise nothing ...
        errors = []
        lint_file(bad_conc, "demo/bad_conc.h", errors)
        if any("[lock-vocabulary]" in e or "[guarded-state]" in e
               for e in errors):
            print("self-test FAILED: R9/R10 fired outside the fence")
            return 1

        # ... and exempt core/thread_annotations.h, the wrapper home of the
        # raw types.
        errors = []
        lint_file(wrapper, "core/thread_annotations.h", errors)
        if errors:
            print("self-test FAILED: thread_annotations.h home should be "
                  "exempt:")
            for e in errors:
                print("  " + e)
            return 1

        # R11 fires on every raw syscall shape outside src/net/ ...
        errors = []
        lint_file(bad_sys, "demo/bad_io.h", errors)
        sys_errs = [e for e in errors if "[net-syscalls]" in e]
        if len(sys_errs) != 3:  # ::read, send, poll
            print(f"self-test FAILED: bad_io.h outside net/ raised "
                  f"{len(sys_errs)} net-syscalls violations, expected 3:")
            for e in errors:
                print("  " + e)
            return 1

        # ... demands visible EINTR handling at the same sites inside
        # src/net/ ...
        errors = []
        lint_file(bad_sys, "net/bad_io.h", errors)
        sys_errs = [e for e in errors if "[net-syscalls]" in e]
        if len(sys_errs) != 3 or any("EINTR" not in e for e in sys_errs):
            print(f"self-test FAILED: bad_io.h inside net/ raised "
                  f"{len(sys_errs)} EINTR-discipline violations, expected 3:")
            for e in errors:
                print("  " + e)
            return 1

        # ... and stays quiet on the sanctioned net/ shapes: EINTR-handled
        # syscalls, member calls, nullary accessor declarations, suffixed
        # wrapper names.
        errors = []
        lint_file(good_net, "net/good_io.h", errors)
        if errors:
            print("self-test FAILED: good_io.h should be clean:")
            for e in errors:
                print("  " + e)
            return 1

        # R12 fires on every raw scalar solver shape on a hot path ...
        errors = []
        lint_file(bad_hot, "selfconsistent/sweep.cpp", errors)
        hot = [e for e in errors if "[hot-path-solver]" in e]
        if len(hot) != 3:  # solve, selfconsistent::solve, brent_robust
            print(f"self-test FAILED: hot-path sweep.cpp raised {len(hot)} "
                  f"hot-path-solver violations, expected 3:")
            for e in errors:
                print("  " + e)
            return 1

        # ... stays quiet on the batch API and the look-alike identifiers ...
        errors = []
        lint_file(good_hot, "service/good_hot.cpp", errors)
        if any("[hot-path-solver]" in e for e in errors):
            print("self-test FAILED: good_hot.cpp should be R12-clean:")
            for e in errors:
                print("  " + e)
            return 1

        # ... is scoped to the hot paths: the same scalar calls in an
        # unfenced subsystem raise nothing ...
        errors = []
        lint_file(bad_hot, "demo/free_solver.cpp", errors)
        if any("[hot-path-solver]" in e for e in errors):
            print("self-test FAILED: R12 fired outside the hot paths")
            return 1

        # ... and exempts selfconsistent/solver.cpp, the home of the scalar
        # chain itself (hypothetically hot-pathed here to prove the carve-out
        # beats the fence).
        errors = []
        lint_file(bad_hot, "selfconsistent/solver.cpp", errors)
        if any("[hot-path-solver]" in e for e in errors):
            print("self-test FAILED: R12 fired on the solver.cpp exempt home")
            return 1

        # R13 fires on every raw process-syscall shape outside
        # src/supervise/ ...
        errors = []
        lint_file(bad_proc, "demo/bad_proc.h", errors)
        proc = [e for e in errors if "[process-syscalls]" in e]
        if len(proc) != 4:  # ::fork, waitpid, kill, setrlimit
            print(f"self-test FAILED: bad_proc.h raised {len(proc)} "
                  f"process-syscalls violations, expected 4:")
            for e in errors:
                print("  " + e)
            return 1

        # ... stays quiet on the look-alike identifiers ...
        errors = []
        lint_file(good_proc, "demo/good_proc.h", errors)
        if any("[process-syscalls]" in e for e in errors):
            print("self-test FAILED: good_proc.h should be R13-clean:")
            for e in errors:
                print("  " + e)
            return 1

        # ... and exempts src/supervise/, the fence's home: the same shapes
        # there raise nothing.
        errors = []
        lint_file(bad_proc, "supervise/bad_proc.h", errors)
        if any("[process-syscalls]" in e for e in errors):
            print("self-test FAILED: R13 fired inside src/supervise/")
            return 1

        # R14 fires on every FNV literal (decimal, hex, the frozen canonical
        # basis) and every segment primitive outside src/cache/ ...
        errors = []
        lint_file(bad_cache, "demo/bad_cache.h", errors)
        cache_errs = [e for e in errors if "[cache-primitives]" in e]
        if len(cache_errs) != 7:  # 4 FNV literals + AppendLog/truncate/magic
            print(f"self-test FAILED: bad_cache.h raised {len(cache_errs)} "
                  f"cache-primitives violations, expected 7:")
            for e in errors:
                print("  " + e)
            return 1

        # ... stays quiet on the sanctioned call and the look-alikes ...
        errors = []
        lint_file(good_cache, "demo/good_cache.h", errors)
        if any("[cache-primitives]" in e for e in errors):
            print("self-test FAILED: good_cache.h should be R14-clean:")
            for e in errors:
                print("  " + e)
            return 1

        # ... exempts src/cache/ itself (both halves of the fence) ...
        errors = []
        lint_file(bad_cache, "cache/fnv.h", errors)
        if any("[cache-primitives]" in e for e in errors):
            print("self-test FAILED: R14 fired inside src/cache/")
            return 1

        # ... exempts core/checkpoint's private FNV copy while still fencing
        # the segment primitives there ...
        errors = []
        lint_file(bad_cache, "core/checkpoint.cpp", errors)
        cache_errs = [e for e in errors if "[cache-primitives]" in e]
        if len(cache_errs) != 3 or any("FNV" in e for e in cache_errs):
            print(f"self-test FAILED: checkpoint.cpp raised "
                  f"{len(cache_errs)} cache-primitives violations, expected "
                  f"3 segment-primitive ones:")
            for e in errors:
                print("  " + e)
            return 1

        # ... and exempts core/atomic_file, the segment primitives'
        # implementation home, while still fencing the FNV constants there.
        errors = []
        lint_file(bad_cache, "core/atomic_file.cpp", errors)
        cache_errs = [e for e in errors if "[cache-primitives]" in e]
        if len(cache_errs) != 4 or any("FNV" not in e for e in cache_errs):
            print(f"self-test FAILED: atomic_file.cpp raised "
                  f"{len(cache_errs)} cache-primitives violations, expected "
                  f"4 FNV-constant ones:")
            for e in errors:
                print("  " + e)
            return 1

    print("dsmt_lint: self-test passed (rules R1-R14)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".",
                    help="repository root (contains src/)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in rule self-test and exit")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    return run(pathlib.Path(args.root).resolve())


if __name__ == "__main__":
    sys.exit(main())
