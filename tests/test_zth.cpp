// Transient thermal impedance tests.
#include <gtest/gtest.h>

#include <cmath>

#include "numeric/constants.h"
#include "tech/ntrs.h"
#include "thermal/impedance.h"
#include "thermal/zth.h"

namespace dsmt::thermal {
namespace {

ZthSpec m6_line() {
  const auto tech = tech::make_ntrs_250nm_cu();
  const auto& layer = tech.layer(6);
  ZthSpec spec;
  spec.metal = tech.metal;
  spec.w_m = metres(layer.width);
  spec.t_m = metres(layer.thickness);
  spec.stack = tech.stack_below(6, materials::make_oxide());
  spec.w_eff = effective_width(metres(layer.width),
                               metres(spec.stack.total_thickness()), 2.45);
  return spec;
}

TEST(Zth, MonotoneRiseToDcLimit) {
  const auto spec = m6_line();
  const auto curve = zth_step_response(spec, seconds(1e-9), seconds(1e-2), 36);
  ASSERT_EQ(curve.zth.size(), 36u);
  for (std::size_t i = 1; i < curve.zth.size(); ++i)
    EXPECT_GE(curve.zth[i], curve.zth[i - 1] * (1.0 - 1e-9));
  // Long-time limit = the DC R'_th (within discretization).
  EXPECT_NEAR(curve.zth.back(), curve.rth_dc, 0.06 * curve.rth_dc);
  // Short-time limit far below DC.
  EXPECT_LT(curve.zth.front(), 0.1 * curve.rth_dc);
}

TEST(Zth, EarlyTimeIsAdiabaticWireHeating) {
  // For t << tau, Z ~ t / C'_wire (all heat stays in the metal).
  const auto spec = m6_line();
  const auto curve = zth_step_response(spec, seconds(1e-10), seconds(1e-3), 40);
  const double c_wire = spec.metal.c_volumetric * spec.w_m * spec.t_m;
  const double z_expected = curve.time.front() / c_wire;
  EXPECT_NEAR(curve.zth.front(), z_expected, 0.3 * z_expected);
}

TEST(Zth, InterpolationClampsAndMatchesSamples) {
  const auto spec = m6_line();
  const auto curve = zth_step_response(spec, seconds(1e-9), seconds(1e-3), 20);
  EXPECT_DOUBLE_EQ(zth_at(curve, seconds(1e-12)), curve.zth.front());
  EXPECT_DOUBLE_EQ(zth_at(curve, seconds(1.0)), curve.zth.back());
  EXPECT_NEAR(zth_at(curve, seconds(curve.time[7])), curve.zth[7], 1e-12);
  const double mid = std::sqrt(curve.time[7] * curve.time[8]);
  EXPECT_GT(zth_at(curve, seconds(mid)), curve.zth[7]);
  EXPECT_LT(zth_at(curve, seconds(mid)), curve.zth[8]);
}

TEST(Zth, PulsedRatingSweepsBetweenRegimes) {
  const auto spec = m6_line();
  const auto curve = zth_step_response(spec, seconds(1e-9), seconds(1e-2), 40);
  const auto dt_max = kelvin_delta(20.0);
  double prev = 1e300;
  for (double tp : {1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3}) {
    const double j = pulsed_current_rating(spec, curve, seconds(tp), dt_max, kTrefK);
    EXPECT_LT(j, prev);  // shorter pulses allow more current
    prev = j;
  }
  // DC-ish rating consistent with the steady model: dT = j^2 rho t W R'_th.
  const double j_dc = pulsed_current_rating(spec, curve, seconds(1e-2), dt_max, kTrefK);
  const double rho = spec.metal.resistivity(kTrefK + kelvin_delta(10.0));
  const double j_expected = std::sqrt(
      dt_max / (rho * spec.t_m * spec.w_m * curve.rth_dc));
  EXPECT_NEAR(j_dc, j_expected, 0.1 * j_expected);
  // Short-pulse rating approaches the ESD scale (tens of MA/cm^2).
  const double j_esd = pulsed_current_rating(spec, curve, seconds(1e-8), kelvin_delta(900.0),
                            kTrefK);
  EXPECT_GT(to_MA_per_cm2(j_esd), 20.0);
}

TEST(Zth, Validation) {
  auto spec = m6_line();
  EXPECT_THROW(zth_step_response(spec, seconds(0.0), seconds(1e-3)), std::invalid_argument);
  EXPECT_THROW(zth_step_response(spec, seconds(1e-3), seconds(1e-4)), std::invalid_argument);
  spec.w_eff = metres(0.0);
  EXPECT_THROW(zth_step_response(spec, seconds(1e-9), seconds(1e-3)), std::invalid_argument);
  EXPECT_THROW(zth_at({}, seconds(1e-6)), std::invalid_argument);
}

}  // namespace
}  // namespace dsmt::thermal
