// Determinism contract of the parallel layer: every fan-out adopted on top
// of src/parallel/ must produce bit-identical results for any thread count,
// and a solver failure inside a worker must surface on the caller with its
// SolverDiag chain intact — parallelization changes wall-clock, nothing else.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/engine.h"
#include "core/status.h"
#include "core/variation.h"
#include "numeric/constants.h"
#include "numeric/fault_injection.h"
#include "parallel/parallel_for.h"
#include "selfconsistent/sweep.h"
#include "tech/ntrs.h"
#include "thermal/fd2d.h"
#include "thermal/impedance.h"

namespace dsmt {
namespace {

using numeric::fault::FaultKind;
using numeric::fault::ScopedFault;

// Exact binary equality — EXPECT_DOUBLE_EQ tolerates 4 ulps, which would
// hide exactly the class of drift this suite exists to forbid.
void expect_bits_equal(double a, double b, const std::string& what) {
  EXPECT_EQ(std::memcmp(&a, &b, sizeof a), 0)
      << what << ": " << a << " != " << b;
}

selfconsistent::Problem fig2_problem() {
  selfconsistent::Problem p;
  p.metal = materials::make_copper();
  p.metal.em.activation_energy_ev = 0.7;
  p.j0 = MA_per_cm2(0.6);
  const auto weff =
      thermal::effective_width(um(3.0), um(3.0), thermal::kPhiQuasi1D);
  const auto rth =
      thermal::rth_per_length_uniform(um(3.0), W_per_mK(1.15), weff);
  p.heating_coefficient =
      selfconsistent::heating_coefficient(um(3.0), um(0.5), rth);
  return p;
}

selfconsistent::TableSpec table_spec() {
  selfconsistent::TableSpec spec;
  spec.technology = tech::make_ntrs_100nm_cu();
  spec.gap_fills = materials::paper_dielectrics();
  spec.levels = {5, 6, 7, 8};
  spec.duty_cycles = {0.1, 1.0};
  spec.j0 = MA_per_cm2(0.6);
  return spec;
}

/// Runs `compute` at each thread count and compares every result against
/// the 1-thread reference bitwise via `compare(reference, candidate)`.
template <typename Compute, typename Compare>
void for_thread_counts(Compute&& compute, Compare&& compare) {
  parallel::set_thread_count(1);
  const auto reference = compute();
  for (std::size_t n : {std::size_t{2}, std::size_t{8}}) {
    parallel::set_thread_count(n);
    compare(reference, compute(), "threads=" + std::to_string(n));
  }
  parallel::set_thread_count(0);  // restore the DSMT_THREADS/hardware default
}

TEST(ParallelDeterminism, SweepDutyCycleBitIdentical) {
  const auto duties = selfconsistent::log_spaced(1e-4, 1.0, 33);
  for_thread_counts(
      [&] { return selfconsistent::sweep_duty_cycle(fig2_problem(), duties); },
      [](const auto& ref, const auto& got, const std::string& tag) {
        ASSERT_EQ(ref.size(), got.size()) << tag;
        for (std::size_t k = 0; k < ref.size(); ++k) {
          expect_bits_equal(ref[k].sc.t_metal, got[k].sc.t_metal,
                            tag + " t_metal[" + std::to_string(k) + "]");
          expect_bits_equal(ref[k].sc.j_peak, got[k].sc.j_peak,
                            tag + " j_peak[" + std::to_string(k) + "]");
          expect_bits_equal(ref[k].jpeak_thermal_only,
                            got[k].jpeak_thermal_only,
                            tag + " jth[" + std::to_string(k) + "]");
        }
      });
}

TEST(ParallelDeterminism, DesignRuleTableBitIdentical) {
  for_thread_counts(
      [&] { return selfconsistent::generate_design_rule_table(table_spec()); },
      [](const auto& ref, const auto& got, const std::string& tag) {
        ASSERT_EQ(ref.size(), got.size()) << tag;
        for (std::size_t c = 0; c < ref.size(); ++c) {
          // Identical cell ordering is part of the contract: downstream
          // table printers index by position.
          EXPECT_EQ(ref[c].level, got[c].level) << tag;
          EXPECT_EQ(ref[c].dielectric, got[c].dielectric) << tag;
          expect_bits_equal(ref[c].sol.j_peak, got[c].sol.j_peak,
                            tag + " cell " + std::to_string(c));
          expect_bits_equal(ref[c].sol.t_metal, got[c].sol.t_metal,
                            tag + " cell " + std::to_string(c));
        }
      });
}

TEST(ParallelDeterminism, SweepJ0BitIdentical) {
  const std::vector<double> j0s = {MA_per_cm2(0.6), MA_per_cm2(1.2),
                                   MA_per_cm2(1.8), MA_per_cm2(2.4)};
  const auto duties = selfconsistent::log_spaced(1e-3, 1.0, 9);
  for_thread_counts(
      [&] { return selfconsistent::sweep_j0(fig2_problem(), j0s, duties); },
      [](const auto& ref, const auto& got, const std::string& tag) {
        ASSERT_EQ(ref.size(), got.size()) << tag;
        for (std::size_t i = 0; i < ref.size(); ++i)
          for (std::size_t k = 0; k < ref[i].size(); ++k)
            expect_bits_equal(ref[i][k].sc.j_peak, got[i][k].sc.j_peak,
                              tag + " [" + std::to_string(i) + "][" +
                                  std::to_string(k) + "]");
      });
}

TEST(ParallelDeterminism, MonteCarloBitIdentical) {
  core::VariationSpec spec;
  for_thread_counts(
      [&] {
        return core::monte_carlo_jpeak(tech::make_ntrs_100nm_cu(), 8,
                                       materials::make_hsq(), 2.45, 0.1,
                                       MA_per_cm2(1.8), spec, 64);
      },
      [](const auto& ref, const auto& got, const std::string& tag) {
        ASSERT_EQ(ref.samples.size(), got.samples.size()) << tag;
        for (std::size_t s = 0; s < ref.samples.size(); ++s)
          expect_bits_equal(ref.samples[s], got.samples[s],
                            tag + " sample " + std::to_string(s));
        // The ordered reduction makes the summary bit-stable too, not just
        // statistically equal.
        expect_bits_equal(ref.mean, got.mean, tag + " mean");
        expect_bits_equal(ref.stddev, got.stddev, tag + " stddev");
        expect_bits_equal(ref.p01, got.p01, tag + " p01");
        expect_bits_equal(ref.p99, got.p99, tag + " p99");
      });
}

TEST(ParallelDeterminism, CrossSectionCouplingBitIdentical) {
  auto build = [] {
    thermal::CrossSection2D xs(12e-6, 8e-6, 1.4);
    xs.add_band(2e-6, 2.5e-6, 0.4);
    for (int w = 0; w < 5; ++w)
      xs.add_wire({1e-6 + 2e-6 * w, 1.8e-6 + 2e-6 * w, 2.1e-6, 2.4e-6}, 395.0);
    return xs;
  };
  for_thread_counts(
      [&] { return build().coupling_matrix({}); },
      [](const auto& ref, const auto& got, const std::string& tag) {
        for (std::size_t i = 0; i < 5; ++i)
          for (std::size_t j = 0; j < 5; ++j)
            expect_bits_equal(ref(i, j), got(i, j),
                              tag + " theta(" + std::to_string(i) + "," +
                                  std::to_string(j) + ")");
      });
}

TEST(ParallelDeterminism, EngineCheckLayersBitIdentical) {
  const core::DesignRuleEngine engine(tech::make_ntrs_100nm_cu(),
                                      MA_per_cm2(1.8));
  for_thread_counts(
      [&] { return engine.check_layers({5, 6, 7, 8}, 2.0,
                                       materials::make_hsq()); },
      [](const auto& ref, const auto& got, const std::string& tag) {
        ASSERT_EQ(ref.size(), got.size()) << tag;
        for (std::size_t i = 0; i < ref.size(); ++i) {
          EXPECT_EQ(ref[i].pass, got[i].pass) << tag;
          expect_bits_equal(ref[i].jpeak_margin, got[i].jpeak_margin,
                            tag + " margin " + std::to_string(i));
        }
      });
}

// A fault armed inside one sweep must surface from the worker thread as a
// SolveError whose diag chain still tells the whole story — the parallel
// layer carries the exception object across the join, it does not flatten
// it into a generic error.
TEST(ParallelDeterminism, FaultInSweepCellSurfacesAcrossThreads) {
  parallel::set_thread_count(8);
  // "numeric/b" poisons Brent AND its bisection fallback — the recovery
  // chain exhausts, so the failure must escape the worker as a SolveError.
  ScopedFault fault({FaultKind::kNanResidual, "numeric/b", 1, 0.0});
  try {
    (void)selfconsistent::generate_design_rule_table(table_spec());
    FAIL() << "expected SolveError from the poisoned sweep";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.status(), core::StatusCode::kNonFinite);
    ASSERT_FALSE(e.diag().chain.empty());
    // The chain records the failed Brent attempt (and its bisection
    // fallback), proving the diagnostics crossed the thread boundary.
    bool saw_brent = false;
    for (const auto& ev : e.diag().chain)
      saw_brent |= ev.kernel.find("numeric/") != std::string::npos;
    EXPECT_TRUE(saw_brent) << e.diag().to_string();
  }
  parallel::set_thread_count(0);
}

// The propagated failure is the one a serial loop would have hit first
// (lowest flattened index), independent of thread scheduling.
TEST(ParallelDeterminism, FirstFailureIsDeterministic) {
  std::string serial_what, parallel_what;
  {
    parallel::set_thread_count(1);
    ScopedFault fault({FaultKind::kExhaustIterations, "numeric/b", 1, 0.0});
    try {
      (void)selfconsistent::generate_design_rule_table(table_spec());
    } catch (const SolveError& e) {
      serial_what = e.what();
    }
  }
  for (int repeat = 0; repeat < 3; ++repeat) {
    parallel::set_thread_count(8);
    ScopedFault fault({FaultKind::kExhaustIterations, "numeric/b", 1, 0.0});
    try {
      (void)selfconsistent::generate_design_rule_table(table_spec());
      FAIL() << "expected SolveError";
    } catch (const SolveError& e) {
      parallel_what = e.what();
    }
    EXPECT_EQ(serial_what, parallel_what) << "repeat " << repeat;
  }
  parallel::set_thread_count(0);
  EXPECT_FALSE(serial_what.empty());
}

TEST(ParallelDeterminism, ThreadCountEnvAndOverride) {
  parallel::set_thread_count(3);
  EXPECT_EQ(parallel::thread_count(), 3u);
  ::setenv("DSMT_THREADS", "5", 1);
  // Explicit override wins over the environment...
  EXPECT_EQ(parallel::thread_count(), 3u);
  // ...and resetting to 0 falls back to DSMT_THREADS.
  parallel::set_thread_count(0);
  EXPECT_EQ(parallel::thread_count(), 5u);
  ::unsetenv("DSMT_THREADS");
  EXPECT_GE(parallel::thread_count(), 1u);
}

TEST(ParallelDeterminism, ParallelForCoversEveryIndexOnce) {
  parallel::set_thread_count(8);
  std::vector<int> hits(1000, 0);
  parallel::parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i], 1) << "index " << i;
  parallel::set_thread_count(0);
}

TEST(ParallelDeterminism, NestedParallelForRunsInline) {
  parallel::set_thread_count(4);
  std::vector<int> sums(8, 0);
  parallel::parallel_for(sums.size(), [&](std::size_t i) {
    // Inner region must not deadlock on the shared pool.
    parallel::parallel_for(16, [&](std::size_t) { sums[i] += 1; });
  });
  for (int s : sums) EXPECT_EQ(s, 16);
  parallel::set_thread_count(0);
}

}  // namespace
}  // namespace dsmt
